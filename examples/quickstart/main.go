// Quickstart: two applications share a simulated Hadoop cluster with
// IBIS's SFQ(D2) scheduler interposed on every datanode. A 32:1 I/O
// weight protects the light WordCount job from the write-flooding
// TeraGen, while the work-conserving scheduler keeps the disks busy.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ibis"
)

func main() {
	// Run the same contention scenario under native Hadoop and under
	// IBIS, and compare WordCount's fate.
	for _, policy := range []ibis.Policy{ibis.Native, ibis.SFQD2} {
		sim, err := ibis.New(ibis.Config{Policy: policy, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}

		// WordCount over ~6 GB with 32× the I/O weight, pinned to half
		// the cluster's CPU and memory.
		wc := ibis.WordCount(6e9, 6)
		wc.Weight = 32
		wc.CPUQuota = 48
		wc.Pool = "wordcount"
		sim.DefinePool("wordcount", 48, 96)

		// TeraGen writing ~60 GB as fast as the disks allow.
		tg := ibis.TeraGen(60e9, 48)
		tg.Weight = 1
		tg.CPUQuota = 48
		tg.Pool = "teragen"
		tg.OutputReplication = 1
		sim.DefinePool("teragen", 48, 96)

		jwc, err := sim.Submit(wc, 0)
		if err != nil {
			log.Fatal(err)
		}
		jtg, err := sim.Submit(tg, 0)
		if err != nil {
			log.Fatal(err)
		}

		sim.Run()

		fmt.Printf("%-8s wordcount %6.1fs   teragen %6.1fs   cluster wrote %.1f GB\n",
			policy, jwc.Result().Runtime(), jtg.Result().Runtime(),
			sim.Storage().WriteBytes/1e9)
	}
	fmt.Println("\nIBIS (SFQ(D2)) restores WordCount's runtime while TeraGen keeps the spare bandwidth.")
}
