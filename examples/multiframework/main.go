// Multiframework: the Section 7.4 scenario — a Hive data-warehouse
// query (TPC-H Q21) and a MapReduce batch job (TeraSort) share one
// cluster. YARN can split the CPUs and memory between the frameworks,
// but without IBIS the shared HDFS and local-disk I/O is a free-for-all
// and the latency-sensitive query suffers.
//
// Run with:
//
//	go run ./examples/multiframework
package main

import (
	"fmt"
	"log"

	"ibis"
)

func runQuery(policy ibis.Policy, withTS bool, queryWeight float64) (queryRt, tsRt float64) {
	sim, err := ibis.New(ibis.Config{Policy: policy, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	sim.DefinePool("hive", 48, 96)

	var tsJob *ibis.Job
	if withTS {
		ts := ibis.TeraSort(25e9, 24)
		ts.Weight = 1
		ts.CPUQuota = 48
		ts.Pool = "mapreduce"
		sim.DefinePool("mapreduce", 48, 96)
		tsJob, err = sim.Submit(ts, 0)
		if err != nil {
			log.Fatal(err)
		}
	}
	exec, err := sim.SubmitQuery(ibis.Q21(), ibis.QueryOptions{
		Weight:     queryWeight,
		CPUQuota:   48,
		Pool:       "hive",
		ScaleBytes: 0.125, // 1/8 of the paper's table volumes
	})
	if err != nil {
		log.Fatal(err)
	}
	sim.Run()
	if !exec.Done() {
		log.Fatal("query incomplete")
	}
	if tsJob != nil {
		tsRt = tsJob.Result().Runtime()
	}
	return exec.Runtime(), tsRt
}

func main() {
	saQ, _ := runQuery(ibis.Native, false, 1)
	fmt.Printf("TPC-H Q21 standalone: %.1fs\n\n", saQ)
	fmt.Printf("%-10s %12s %12s %10s\n", "policy", "query(s)", "query-rel", "ts(s)")

	for _, c := range []struct {
		name   string
		policy ibis.Policy
		weight float64
	}{
		{"native", ibis.Native, 1},
		{"ibis", ibis.SFQD2, 100},
	} {
		q, ts := runQuery(c.policy, true, c.weight)
		fmt.Printf("%-10s %12.1f %12.2f %10.1f\n", c.name, q, saQ/q, ts)
	}
	fmt.Println("\nWith IBIS the query runs near its standalone speed while TeraSort")
	fmt.Println("keeps making progress on the spare bandwidth (work conservation).")
}
