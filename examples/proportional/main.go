// Proportional: the Figure 11/12 policy — equal slowdown for two very
// different applications. CPU shares alone cannot equalize TeraSort and
// TeraGen (throttling one starves the other's I/O indirectly and wastes
// the disks); tuning CPU shares *and* IBIS I/O weights together reaches
// a smaller slowdown gap at a lower average slowdown, with the
// Scheduling Broker coordinating total-service sharing across
// datanodes.
//
// Run with:
//
//	go run ./examples/proportional
package main

import (
	"fmt"
	"log"
	"math"

	"ibis"
)

const (
	tsBytes = 25e9
	tgBytes = 125e9
)

func standalone(spec ibis.JobSpec) float64 {
	sim, err := ibis.New(ibis.Config{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	j, err := sim.Submit(spec, 0)
	if err != nil {
		log.Fatal(err)
	}
	sim.Run()
	return j.Result().Runtime()
}

func contend(policy ibis.Policy, coordinate bool, tsCores, tgCores int, tsW, tgW float64) (ts, tg float64) {
	sim, err := ibis.New(ibis.Config{Policy: policy, Coordinate: coordinate, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	tsSpec := ibis.TeraSort(tsBytes, 24)
	tsSpec.Weight = tsW
	tsSpec.CPUQuota = tsCores
	tsSpec.Pool = "ts"
	sim.DefinePool("ts", tsCores, 192*float64(tsCores)/96)
	tgSpec := ibis.TeraGen(tgBytes, 96)
	tgSpec.Weight = tgW
	tgSpec.CPUQuota = tgCores
	tgSpec.Pool = "tg"
	sim.DefinePool("tg", tgCores, 192*float64(tgCores)/96)

	jts, err := sim.Submit(tsSpec, 0)
	if err != nil {
		log.Fatal(err)
	}
	jtg, err := sim.Submit(tgSpec, 0)
	if err != nil {
		log.Fatal(err)
	}
	sim.Run()
	return jts.Result().Runtime(), jtg.Result().Runtime()
}

func main() {
	saTS := standalone(ibis.TeraSort(tsBytes, 24))
	saTG := standalone(ibis.TeraGen(tgBytes, 96))
	fmt.Printf("standalone: terasort %.1fs, teragen %.1fs\n\n", saTS, saTG)
	fmt.Printf("%-28s %9s %9s %7s\n", "config", "ts-slow", "tg-slow", "gap")

	show := func(name string, ts, tg float64) {
		s1 := ts/saTS - 1
		s2 := tg/saTG - 1
		fmt.Printf("%-28s %8.0f%% %8.0f%% %6.0f%%\n", name, s1*100, s2*100, math.Abs(s1-s2)*100)
	}

	// CPU-only tuning (no I/O management): throttle TeraGen's I/O
	// indirectly by starving its cores.
	ts, tg := contend(ibis.Native, false, 72, 24, 1, 1)
	show("fair-scheduler 72:24", ts, tg)

	// Joint CPU + IBIS I/O tuning with broker coordination.
	ts, tg = contend(ibis.SFQD2, true, 64, 32, 2, 1)
	show("fs 64:32 + ibis 2:1 (sync)", ts, tg)
}
