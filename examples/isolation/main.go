// Isolation: the Figure 6 experiment as a standalone program — sweep
// the SFQ(D) dispatch depth and compare against the adaptive SFQ(D2),
// reporting WordCount's slowdown (fairness) and the pair's total
// throughput (utilization). Small static depths isolate but waste the
// device; large depths utilize but leak interference; SFQ(D2) finds
// the operating point automatically.
//
// Run with:
//
//	go run ./examples/isolation
package main

import (
	"fmt"
	"log"

	"ibis"
)

const (
	wcBytes = 6e9
	tgBytes = 125e9
)

func run(policy ibis.Policy, depth int, withTG bool) (wcRuntime, totalBytes, duration float64) {
	sim, err := ibis.New(ibis.Config{Policy: policy, SFQDepth: depth, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	wc := ibis.WordCount(wcBytes, 6)
	wc.Weight = 32
	wc.CPUQuota = 48
	wc.Pool = "wc"
	sim.DefinePool("wc", 48, 96)
	jwc, err := sim.Submit(wc, 0)
	if err != nil {
		log.Fatal(err)
	}
	if withTG {
		tg := ibis.TeraGen(tgBytes, 96)
		tg.CPUQuota = 48
		tg.Pool = "tg"
		tg.OutputReplication = 1
		sim.DefinePool("tg", 48, 96)
		if _, err := sim.Submit(tg, 0); err != nil {
			log.Fatal(err)
		}
	}
	end := sim.Run()
	st := sim.Storage()
	return jwc.Result().Runtime(), st.ReadBytes + st.WriteBytes, end
}

func main() {
	alone, _, _ := run(ibis.Native, 0, false)
	fmt.Printf("WordCount alone: %.1fs\n\n", alone)
	fmt.Printf("%-12s %10s %10s %14s\n", "scheduler", "wc(s)", "slowdown", "tput(MB/s)")

	type cfg struct {
		name   string
		policy ibis.Policy
		depth  int
	}
	for _, c := range []cfg{
		{"native", ibis.Native, 0},
		{"sfq(d=12)", ibis.SFQD, 12},
		{"sfq(d=8)", ibis.SFQD, 8},
		{"sfq(d=4)", ibis.SFQD, 4},
		{"sfq(d=2)", ibis.SFQD, 2},
		{"sfq(d2)", ibis.SFQD2, 0},
	} {
		rt, bytes, dur := run(c.policy, c.depth, true)
		fmt.Printf("%-12s %10.1f %9.0f%% %14.1f\n",
			c.name, rt, (rt/alone-1)*100, bytes/dur/1e6)
	}
}
