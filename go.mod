module ibis

go 1.22
