package ibis_test

import (
	"math"
	"testing"

	"ibis"
	"ibis/internal/iosched"
)

func TestQuickstartScenario(t *testing.T) {
	sim, err := ibis.New(ibis.Config{Policy: ibis.SFQD2})
	if err != nil {
		t.Fatal(err)
	}
	wc := ibis.WordCount(3e9, 4)
	wc.Weight = 32
	wc.CPUQuota = 48
	tg := ibis.TeraGen(20e9, 48)
	tg.Weight = 1
	tg.CPUQuota = 48
	jwc, err := sim.Submit(wc, 0)
	if err != nil {
		t.Fatal(err)
	}
	jtg, err := sim.Submit(tg, 0)
	if err != nil {
		t.Fatal(err)
	}
	end := sim.Run()
	if !jwc.Done() || !jtg.Done() {
		t.Fatal("jobs did not finish")
	}
	if end <= 0 || sim.Now() != end {
		t.Fatalf("end = %v now = %v", end, sim.Now())
	}
	st := sim.Storage()
	if st.ReadBytes <= 0 || st.WriteBytes <= 0 {
		t.Fatalf("storage counters empty: %+v", st)
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	sim, err := ibis.New(ibis.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.TotalCores() != 96 {
		t.Fatalf("TotalCores = %d, want 96", sim.TotalCores())
	}
}

func TestQueryExecution(t *testing.T) {
	sim, err := ibis.New(ibis.Config{Policy: ibis.Native})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := sim.SubmitQuery(ibis.Q21(), ibis.QueryOptions{ScaleBytes: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if !exec.Done() {
		t.Fatal("query incomplete")
	}
	if exec.Runtime() <= 0 {
		t.Fatalf("runtime = %v", exec.Runtime())
	}
}

func TestIsolationEndToEnd(t *testing.T) {
	// The paper's headline behaviour through the public API: under
	// SFQ(D2) with a 32:1 weight, WordCount's slowdown against TeraGen
	// collapses compared to the native run.
	runtimeOf := func(policy ibis.Policy, withTG bool) float64 {
		sim, err := ibis.New(ibis.Config{Policy: policy, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		wc := ibis.WordCount(4e9, 4)
		wc.Weight = 32
		wc.CPUQuota = 48
		wc.Pool = "wc"
		sim.DefinePool("wc", 48, 96)
		j, err := sim.Submit(wc, 0)
		if err != nil {
			t.Fatal(err)
		}
		if withTG {
			tg := ibis.TeraGen(60e9, 48)
			tg.CPUQuota = 48
			tg.Pool = "tg"
			tg.OutputReplication = 1
			sim.DefinePool("tg", 48, 96)
			if _, err := sim.Submit(tg, 0); err != nil {
				t.Fatal(err)
			}
		}
		sim.Run()
		return j.Result().Runtime()
	}
	alone := runtimeOf(ibis.Native, false)
	native := runtimeOf(ibis.Native, true)
	isolated := runtimeOf(ibis.SFQD2, true)
	nativeSlow := native/alone - 1
	isoSlow := isolated/alone - 1
	if nativeSlow < 0.3 {
		t.Fatalf("native slowdown %.2f too small for the scenario", nativeSlow)
	}
	if isoSlow > nativeSlow/2 {
		t.Fatalf("SFQ(D2) slowdown %.2f not well below native %.2f", isoSlow, nativeSlow)
	}
}

func TestCoordinationVisibleThroughAPI(t *testing.T) {
	sim, err := ibis.New(ibis.Config{Policy: ibis.SFQD2, Coordinate: true})
	if err != nil {
		t.Fatal(err)
	}
	tg := ibis.TeraGen(10e9, 24)
	tg.OutputReplication = 1
	j, err := sim.Submit(tg, 0)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if !j.Done() {
		t.Fatal("job incomplete")
	}
	if sim.BrokerTotal(j.App) <= 0 {
		t.Fatal("broker never learned the app's service")
	}
}

func TestIOObserverThroughAPI(t *testing.T) {
	sim, err := ibis.New(ibis.Config{})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	sim.SetIOObserver(func(_ int, req *iosched.Request, _ float64) { count++ })
	tg := ibis.TeraGen(2e9, 8)
	tg.OutputReplication = 1
	sim.Submit(tg, 0)
	sim.Run()
	if count == 0 {
		t.Fatal("observer saw no I/O")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() float64 {
		sim, _ := ibis.New(ibis.Config{Policy: ibis.SFQD2, Seed: 11})
		ts := ibis.TeraSort(4e9, 4)
		j, _ := sim.Submit(ts, 0)
		sim.Run()
		return j.Result().Runtime()
	}
	a, b := run(), run()
	if a != b || math.IsNaN(a) {
		t.Fatalf("nondeterministic runtimes %v vs %v", a, b)
	}
}

func TestRunUntil(t *testing.T) {
	sim, _ := ibis.New(ibis.Config{})
	ts := ibis.TeraSort(8e9, 4)
	j, _ := sim.Submit(ts, 0)
	sim.RunUntil(1)
	if j.Done() {
		t.Fatal("job finished suspiciously fast")
	}
	sim.Run()
	if !j.Done() {
		t.Fatal("job incomplete after full run")
	}
}

func TestFailureInjectionThroughAPI(t *testing.T) {
	sim, err := ibis.New(ibis.Config{Policy: ibis.SFQD2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := ibis.TeraSort(8e9, 4)
	j, err := sim.Submit(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	sim.Schedule(2, func() { sim.FailNode(3) })
	sim.Run()
	if !j.Done() {
		t.Fatalf("job state %v; replication 3 must survive one node failure", j.State())
	}
}
