package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"ibis"
)

// runTraceCmd implements the `trace` subcommand: run the standard
// two-app contention scenario under any policy with request-lifecycle
// tracing (and optionally invariant auditing) on, then dump the trace.
func runTraceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	policy := fs.String("policy", "sfqd2", "scheduling policy: native|sfqd|sfqd2|cgweight|cgthrottle|reserve")
	coordinate := fs.Bool("coordinate", false, "enable the Scheduling Broker")
	ssd := fs.Bool("ssd", false, "use the SSD device model")
	seed := fs.Int64("seed", 1, "simulation seed")
	capacity := fs.Int("cap", 1<<16, "trace ring capacity (records)")
	format := fs.String("format", "summary", "output format: jsonl|chrome|summary")
	audit := fs.Bool("audit", true, "run the invariant auditor alongside the trace")
	output := fs.String("o", "-", "output file (- = stdout)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: ibis-trace trace [flags]\n\n"+
			"Runs a weight-32 WordCount against a weight-1 TeraGen and dumps the\n"+
			"request-level I/O trace of every interposed scheduler.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	pol, err := parsePolicy(*policy)
	if err != nil {
		return err
	}
	switch *format {
	case "jsonl", "chrome", "summary":
	default:
		return fmt.Errorf("unknown format %q (want jsonl, chrome, or summary)", *format)
	}
	cfg := ibis.Config{
		Policy:        pol,
		Coordinate:    *coordinate,
		SSD:           *ssd,
		Seed:          *seed,
		TraceCapacity: *capacity,
		Audit:         *audit,
	}
	if pol == ibis.CGThrottle {
		cfg.ThrottleLimits = map[ibis.AppID]float64{"teragen": 50e6}
	}
	if pol == ibis.Reserve {
		cfg.ReservationDefault = 50e6
	}
	sim, err := ibis.New(cfg)
	if err != nil {
		return err
	}
	wc := ibis.WordCount(1.5e9, 2)
	wc.App = "wordcount"
	wc.Weight = 32
	wc.CPUQuota = 48
	tg := ibis.TeraGen(6e9, 24)
	tg.App = "teragen"
	tg.Weight = 1
	tg.CPUQuota = 48
	if _, err := sim.Submit(wc, 0); err != nil {
		return err
	}
	if _, err := sim.Submit(tg, 0); err != nil {
		return err
	}
	sim.Run()

	var w io.Writer = os.Stdout
	if *output != "-" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	tr := sim.Trace()
	switch *format {
	case "jsonl":
		if err := tr.WriteJSONL(w); err != nil {
			return err
		}
	case "chrome":
		if err := tr.WriteChromeTrace(w); err != nil {
			return err
		}
	case "summary":
		writeTraceSummary(w, sim)
	default:
		return fmt.Errorf("unknown format %q (want jsonl, chrome, or summary)", *format)
	}

	if au := sim.Audit(); au != nil {
		if err := au.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "AUDIT FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "audit clean: %s\n", checksLine(au.Checks()))
	}
	return nil
}

func parsePolicy(s string) (ibis.Policy, error) {
	switch strings.ToLower(s) {
	case "native":
		return ibis.Native, nil
	case "sfqd":
		return ibis.SFQD, nil
	case "sfqd2":
		return ibis.SFQD2, nil
	case "cgweight":
		return ibis.CGWeight, nil
	case "cgthrottle":
		return ibis.CGThrottle, nil
	case "reserve":
		return ibis.Reserve, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

// writeTraceSummary aggregates the per-request lifecycles into a
// per-app, per-device table: request counts, bytes, mean queue delay
// and mean device service time.
func writeTraceSummary(w io.Writer, sim *ibis.Simulation) {
	tr := sim.Trace()
	type agg struct {
		n          int
		bytes      float64
		queueDelay float64
		service    float64
		completed  int
	}
	rows := map[string]*agg{}
	for _, rt := range tr.Requests() {
		key := fmt.Sprintf("%-12s %-6s %s", rt.App, rt.Dev, rt.Class)
		a := rows[key]
		if a == nil {
			a = &agg{}
			rows[key] = a
		}
		a.n++
		a.bytes += rt.Size
		if qd := rt.QueueDelay(); qd >= 0 {
			a.queueDelay += qd
		}
		if st := rt.ServiceTime(); st >= 0 {
			a.service += st
			a.completed++
		}
	}
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "trace: %d records held (%d total, %d overwritten), t_end=%.1fs\n\n",
		tr.Len(), tr.Total(), tr.Dropped(), sim.Now())
	fmt.Fprintf(w, "%-12s %-6s %-18s %8s %9s %12s %12s\n",
		"app", "dev", "class", "reqs", "MB", "mean-queue", "mean-service")
	for _, k := range keys {
		a := rows[k]
		mq, ms := 0.0, 0.0
		if a.completed > 0 {
			mq = a.queueDelay / float64(a.completed)
			ms = a.service / float64(a.completed)
		}
		fmt.Fprintf(w, "%-38s %8d %9.1f %11.2fms %11.2fms\n",
			k, a.n, a.bytes/1e6, mq*1e3, ms*1e3)
	}
}

// checksLine renders the audit evaluation counters compactly.
func checksLine(m map[string]uint64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, " ")
}
