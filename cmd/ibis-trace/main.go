// Command ibis-trace regenerates the paper's time-series figures as
// plot-ready CSV files:
//
//	fig2  — the I/O throughput profiles of TeraSort and WordCount
//	fig7  — the SFQ(D2) depth/latency adaptation trace
//	fig9  — the Facebook2009 job-runtime CDFs
//
// Usage:
//
//	ibis-trace [-scale 0.125] [-out .] [fig2|fig7|fig9 ...]
//
// With no figure arguments, all three are produced.
//
// The `trace` subcommand instead runs a contention scenario with
// request-level lifecycle tracing and invariant auditing enabled, and
// dumps the trace as JSONL, a Chrome trace-event file (load it in
// chrome://tracing or Perfetto), or a per-app summary table:
//
//	ibis-trace trace [-policy sfqd2] [-coordinate] [-ssd] [-seed 1]
//	                 [-cap 65536] [-format jsonl|chrome|summary] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ibis/internal/experiments"
	"ibis/internal/export"
	"ibis/internal/metrics"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		if err := runTraceCmd(os.Args[2:]); err != nil {
			log.Fatalf("trace: %v", err)
		}
		return
	}
	scale := flag.Float64("scale", experiments.DefaultScale, "data scale factor")
	out := flag.String("out", ".", "output directory for CSV files")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[a] = true
	}
	all := len(want) == 0

	if all || want["fig2"] {
		if err := writeFig2(*scale, *out); err != nil {
			log.Fatalf("fig2: %v", err)
		}
	}
	if all || want["fig7"] {
		if err := writeFig7(*scale, *out); err != nil {
			log.Fatalf("fig7: %v", err)
		}
	}
	if all || want["fig9"] {
		if err := writeFig9(*scale, *out); err != nil {
			log.Fatalf("fig9: %v", err)
		}
	}
}

func writeFig2(scale float64, dir string) error {
	res, err := experiments.Fig02(scale)
	if err != nil {
		return err
	}
	series := map[string][]float64{
		"fig2_terasort_read.csv":   res.TeraSortRead,
		"fig2_terasort_write.csv":  res.TeraSortWrite,
		"fig2_wordcount_read.csv":  res.WordCountRead,
		"fig2_wordcount_write.csv": res.WordCountWrite,
	}
	for name, data := range series {
		ts := metrics.NewTimeSeries(1)
		for i, mbps := range data {
			ts.Add(float64(i), mbps) // already MB/s per 1 s bin
		}
		if err := writeCSV(filepath.Join(dir, name), func(f *os.File) error {
			return export.TimeSeriesCSV(f, "throughput_MBps", ts)
		}); err != nil {
			return err
		}
	}
	return nil
}

func writeFig7(scale float64, dir string) error {
	res, err := experiments.Fig07(scale)
	if err != nil {
		return err
	}
	return writeCSV(filepath.Join(dir, "fig7_depth_trace.csv"), func(f *os.File) error {
		return export.DepthTraceCSV(f, res.Trace)
	})
}

func writeFig9(scale float64, dir string) error {
	res, err := experiments.Fig09(scale)
	if err != nil {
		return err
	}
	for _, c := range res.Cases {
		name := fmt.Sprintf("fig9_cdf_%s.csv", c.Name)
		c := c
		if err := writeCSV(filepath.Join(dir, name), func(f *os.File) error {
			return export.CDFCSV(f, "runtime_s", c.Runtimes)
		}); err != nil {
			return err
		}
	}
	return nil
}

func writeCSV(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fill(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return f.Close()
}
