// Command ibis-sim runs one contention scenario on the simulated
// cluster, configured entirely from flags, and prints per-job runtimes
// and cluster I/O totals. It is the interactive counterpart to the
// ibis-bench experiment suite.
//
// Examples:
//
//	ibis-sim -policy sfqd2 -a wordcount:6e9:32 -b teragen:60e9:1
//	ibis-sim -policy sfqd -depth 2 -a terasort:25e9:4 -b teragen:125e9:1 -coordinate
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"ibis"
)

func main() {
	policyFlag := flag.String("policy", "native", "native | sfqd | sfqd2 | cgweight | cgthrottle")
	depth := flag.Int("depth", 4, "static depth for sfqd/cgweight")
	coordinate := flag.Bool("coordinate", false, "enable the scheduling broker (Sync)")
	ssd := flag.Bool("ssd", false, "use the SSD device model")
	seed := flag.Int64("seed", 0, "placement / sampling seed")
	aSpec := flag.String("a", "wordcount:6e9:32", "first app: name:bytes:weight")
	bSpec := flag.String("b", "teragen:60e9:1", "second app: name:bytes:weight (empty = standalone)")
	cores := flag.Int("cores", 48, "CPU quota per app (0 = unlimited)")
	flag.Parse()

	policies := map[string]ibis.Policy{
		"native":     ibis.Native,
		"sfqd":       ibis.SFQD,
		"sfqd2":      ibis.SFQD2,
		"cgweight":   ibis.CGWeight,
		"cgthrottle": ibis.CGThrottle,
	}
	policy, ok := policies[strings.ToLower(*policyFlag)]
	if !ok {
		log.Fatalf("unknown policy %q", *policyFlag)
	}

	sim, err := ibis.New(ibis.Config{
		Policy:     policy,
		SFQDepth:   *depth,
		Coordinate: *coordinate,
		SSD:        *ssd,
		Seed:       *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	var jobs []*ibis.Job
	for i, s := range []string{*aSpec, *bSpec} {
		if s == "" {
			continue
		}
		spec, err := parseApp(s, *cores)
		if err != nil {
			log.Fatalf("app %d: %v", i+1, err)
		}
		if *cores > 0 {
			spec.Pool = fmt.Sprintf("pool-%d", i)
			sim.DefinePool(spec.Pool, *cores, 192*float64(*cores)/96)
		}
		j, err := sim.Submit(spec, 0)
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	end := sim.Run()
	fmt.Printf("policy=%s coordinate=%v ssd=%v makespan=%.1fs\n", *policyFlag, *coordinate, *ssd, end)
	for _, j := range jobs {
		r := j.Result()
		fmt.Printf("  %-14s runtime %8.1fs (map %6.1fs, reduce %6.1fs)\n",
			j.Spec.Name, r.Runtime(), r.MapPhase(), r.ReducePhase())
	}
	st := sim.Storage()
	fmt.Printf("  storage: read %.1f GB, wrote %.1f GB, %d write-back flushes\n",
		st.ReadBytes/1e9, st.WriteBytes/1e9, st.Flushes)
}

// parseApp turns "name:bytes:weight" into a JobSpec.
func parseApp(s string, cores int) (ibis.JobSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return ibis.JobSpec{}, fmt.Errorf("want name:bytes:weight, got %q", s)
	}
	bytes, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || bytes <= 0 {
		return ibis.JobSpec{}, fmt.Errorf("bad byte volume %q", parts[1])
	}
	weight, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || weight <= 0 {
		return ibis.JobSpec{}, fmt.Errorf("bad weight %q", parts[2])
	}
	var spec ibis.JobSpec
	switch parts[0] {
	case "wordcount":
		spec = ibis.WordCount(bytes, 6)
	case "teragen":
		spec = ibis.TeraGen(bytes, 96)
		spec.OutputReplication = 1
	case "terasort":
		spec = ibis.TeraSort(bytes, 24)
	case "teravalidate":
		spec = ibis.TeraValidate(bytes)
	default:
		return ibis.JobSpec{}, fmt.Errorf("unknown app %q (wordcount|teragen|terasort|teravalidate)", parts[0])
	}
	spec.Weight = weight
	spec.CPUQuota = cores
	return spec, nil
}
