package main

import "testing"

func TestParseApp(t *testing.T) {
	cases := []struct {
		in    string
		ok    bool
		name  string
		bytes float64
		w     float64
	}{
		{"wordcount:6e9:32", true, "wordcount", 6e9, 32},
		{"teragen:1e12:1", true, "teragen", 1e12, 1},
		{"terasort:5e10:4", true, "terasort", 5e10, 4},
		{"teravalidate:1e11:2", true, "teravalidate", 1e11, 2},
		{"nosuch:1e9:1", false, "", 0, 0},
		{"wordcount:1e9", false, "", 0, 0},
		{"wordcount:zero:1", false, "", 0, 0},
		{"wordcount:-5:1", false, "", 0, 0},
		{"wordcount:1e9:0", false, "", 0, 0},
		{"", false, "", 0, 0},
	}
	for _, c := range cases {
		spec, err := parseApp(c.in, 48)
		if c.ok != (err == nil) {
			t.Errorf("parseApp(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if spec.Name != c.name || spec.Weight != c.w {
			t.Errorf("parseApp(%q) = %q w=%v", c.in, spec.Name, spec.Weight)
		}
		if spec.CPUQuota != 48 {
			t.Errorf("parseApp(%q) quota = %d", c.in, spec.CPUQuota)
		}
		total := spec.InputBytes + spec.DirectOutputBytes
		if total != c.bytes {
			t.Errorf("parseApp(%q) volume = %v, want %v", c.in, total, c.bytes)
		}
	}
}

func TestParseAppTeraGenReplication(t *testing.T) {
	spec, err := parseApp("teragen:1e9:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if spec.OutputReplication != 1 {
		t.Fatalf("teragen replication = %d, want 1", spec.OutputReplication)
	}
	if spec.CPUQuota != 0 {
		t.Fatalf("quota = %d, want uncapped", spec.CPUQuota)
	}
}
