// Command ibis-loc reports the development cost of this IBIS
// reimplementation by component, the analogue of the paper's Table 3
// (which lists 6552 lines across interposition, SFQ(D), SFQ(D2), and
// scheduling coordination).
//
// Run from the repository root:
//
//	go run ./cmd/ibis-loc [root]
package main

import (
	"fmt"
	"log"
	"os"

	"ibis/internal/experiments"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	res, err := experiments.Table3(root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)
}
