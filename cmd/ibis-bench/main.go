// Command ibis-bench regenerates the IBIS paper's tables and figures on
// the simulated cluster and prints paper-vs-measured rows.
//
// Usage:
//
//	ibis-bench [-scale 0.125] [-run fig06] [-parallel N] [-list]
//	           [-cpuprofile out.prof] [-memprofile out.prof]
//	           [-fault-seed 1 -fault-outages 2 -fault-loss 0.2
//	            -fault-restarts 2 -fault-degrades 1]
//
// The -fault-* flags parameterize the "fault-custom" experiment: a
// deterministic seed-driven fault schedule (broker outages, message
// loss/delay, scheduler restarts, device degradation) injected into
// the coordination plane of the uneven-presence microbenchmark, with
// invariant auditing on. "fault-matrix" runs the fixed scenario set.
//
// Without -run, every experiment executes in order. Experiments are
// independent deterministic simulations, so -parallel N (default
// GOMAXPROCS) fans them out across a bounded worker pool; results are
// printed strictly in experiment order, so stdout is byte-identical to
// a -parallel 1 run. Per-experiment wall times go to stderr (they vary
// run to run and would otherwise break that guarantee).
//
// Two independent levels of parallelism compose:
//
//   - -parallel N is experiment-level: whole experiments run
//     concurrently, each on its own single-threaded simulation.
//   - -shards N is intra-experiment: the "shards" experiment runs ONE
//     simulation across per-node engines with N worker goroutines
//     under conservative synchronization, bit-identical to N=1.
//
// Use -parallel for throughput over the whole suite and -shards to
// accelerate one large simulation; running both oversubscribes cores
// harmlessly (the schedulers time-slice) but measures neither cleanly,
// so benchmark runs should pin one of the two to 1. Experiments whose
// results are wall-clock comparisons (the "shards" experiment itself)
// print the nondeterministic numbers to stderr, e.g.
// "shards: shards=8 speedup=3.10x".
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"ibis/internal/experiments"
	"ibis/internal/faults"
	"ibis/internal/iosched"
)

// shardsFlag sets the worker-goroutine count for the intra-experiment
// parallel fabric (the "shards" experiment): the one simulation is
// partitioned into per-node engines advanced by this many workers,
// with results bit-identical to -shards 1.
var shardsFlag = flag.Int("shards", runtime.GOMAXPROCS(0),
	"worker goroutines inside the sharded-fabric experiment (1 = serial)")

// reweightFlag parameterizes the "reweight" experiment: a live weight
// change scripted as t=<time>,app=<id>,w=<weight>.
var reweightFlag = flag.String("reweight", "",
	"reweight schedule t=<time>,app=<id>,w=<weight> for the reweight experiment (empty = t=30,app=hot,w=8)")

// parseReweight turns the flag into a spec; the empty string keeps the
// default schedule.
func parseReweight(s string) (experiments.ReweightSpec, error) {
	spec := experiments.DefaultReweightSpec()
	if s == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return spec, fmt.Errorf("reweight: malformed field %q (want k=v)", kv)
		}
		switch k {
		case "t":
			if _, err := fmt.Sscanf(v, "%g", &spec.At); err != nil {
				return spec, fmt.Errorf("reweight: bad time %q", v)
			}
		case "app":
			spec.App = iosched.AppID(v)
		case "w":
			if _, err := fmt.Sscanf(v, "%g", &spec.Weight); err != nil {
				return spec, fmt.Errorf("reweight: bad weight %q", v)
			}
		default:
			return spec, fmt.Errorf("reweight: unknown field %q (want t/app/w)", k)
		}
	}
	return spec, nil
}

// scaleSpecFlag parameterizes the "scale" experiment: the hollow-node
// population shape as nodes=<n>,tenants=<n>,flows=<n>[,apps=<n>]
// [,shards=<n>][,seed=<n>][,horizon=<s>].
var scaleSpecFlag = flag.String("scale-spec", "",
	"hollow-node scale population nodes=,tenants=,flows=[,apps=][,shards=][,seed=][,horizon=] (empty = 200 nodes, 1000 tenants, 100k flows)")

// parseScaleSpec turns the flag into a spec; the empty string keeps
// the CI-sized default shape.
func parseScaleSpec(s string) (experiments.ScaleSpec, error) {
	spec := experiments.DefaultScaleSpec()
	if s == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return spec, fmt.Errorf("scale-spec: malformed field %q (want k=v)", kv)
		}
		var err error
		switch k {
		case "nodes":
			_, err = fmt.Sscanf(v, "%d", &spec.Nodes)
		case "tenants":
			_, err = fmt.Sscanf(v, "%d", &spec.Tenants)
		case "apps":
			_, err = fmt.Sscanf(v, "%d", &spec.Apps)
		case "flows":
			_, err = fmt.Sscanf(v, "%d", &spec.Flows)
		case "shards":
			_, err = fmt.Sscanf(v, "%d", &spec.Shards)
		case "seed":
			_, err = fmt.Sscanf(v, "%d", &spec.Seed)
		case "horizon":
			_, err = fmt.Sscanf(v, "%g", &spec.Horizon)
		default:
			return spec, fmt.Errorf("scale-spec: unknown field %q", k)
		}
		if err != nil {
			return spec, fmt.Errorf("scale-spec: bad value %q for %s", v, k)
		}
	}
	return spec, nil
}

// federationSpecFlag parameterizes the "federation" experiment: the
// federated population shape as nodes=<n>,tenants=<n>,partitions=<n>
// [,apps=<n>][,shards=<n>][,seed=<n>][,horizon=<s>].
var federationSpecFlag = flag.String("federation-spec", "",
	"federated broker population nodes=,tenants=,partitions=[,apps=][,shards=][,seed=][,horizon=] (empty = 200 nodes, 1000 tenants, 4 partitions)")

// parseFederationSpec turns the flag into a spec; the empty string
// keeps the CI-sized default shape.
func parseFederationSpec(s string) (experiments.FederationSpec, error) {
	spec := experiments.DefaultFederationSpec()
	if s == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return spec, fmt.Errorf("federation-spec: malformed field %q (want k=v)", kv)
		}
		var err error
		switch k {
		case "nodes":
			_, err = fmt.Sscanf(v, "%d", &spec.Nodes)
		case "tenants":
			_, err = fmt.Sscanf(v, "%d", &spec.Tenants)
		case "apps":
			_, err = fmt.Sscanf(v, "%d", &spec.Apps)
		case "partitions":
			_, err = fmt.Sscanf(v, "%d", &spec.Partitions)
		case "shards":
			_, err = fmt.Sscanf(v, "%d", &spec.Shards)
		case "seed":
			_, err = fmt.Sscanf(v, "%d", &spec.Seed)
		case "horizon":
			_, err = fmt.Sscanf(v, "%g", &spec.Horizon)
		default:
			return spec, fmt.Errorf("federation-spec: unknown field %q", k)
		}
		if err != nil {
			return spec, fmt.Errorf("federation-spec: bad value %q for %s", v, k)
		}
	}
	return spec, nil
}

// Fault-injection flags, consumed by the "fault-custom" experiment.
var (
	faultSeed     = flag.Int64("fault-seed", 1, "seed driving generated fault schedules and message-fault rolls")
	faultOutages  = flag.Int("fault-outages", 1, "generated broker-outage windows")
	faultLoss     = flag.Float64("fault-loss", 0, "exchange request-drop probability [0,1)")
	faultDelay    = flag.Float64("fault-delay", 0, "exchange response-delay probability [0,1)")
	faultRestarts = flag.Int("fault-restarts", 0, "generated scheduler restarts (spread over all clients)")
	faultDegrades = flag.Int("fault-degrades", 0, "generated device-degradation windows")
)

// customFaultSpec assembles the Spec the fault flags describe; targets
// default to every coordination client / HDFS device of the 8-node
// microbenchmark cluster.
func customFaultSpec() faults.Spec {
	ids := faults.ClientIDs(8)
	devs := make([]string, 0, len(ids)/2)
	for _, id := range ids {
		if len(id) > 5 && id[len(id)-4:] == "hdfs" {
			devs = append(devs, id)
		}
	}
	return faults.Spec{
		Seed:           *faultSeed,
		Horizon:        50, // faults land inside the measured run
		OutageCount:    *faultOutages,
		DropProb:       *faultLoss,
		DelayProb:      *faultDelay,
		RestartCount:   *faultRestarts,
		RestartTargets: ids,
		DegradeCount:   *faultDegrades,
		DegradeTargets: devs,
	}
}

func main() {
	scale := flag.Float64("scale", experiments.DefaultScale, "data scale factor (1 = paper volumes)")
	run := flag.String("run", "", "run a single experiment (e.g. fig06); empty = all")
	list := flag.Bool("list", false, "list experiment names and exit")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max experiments in flight (1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	type exp struct {
		name string
		fn   func(float64) (fmt.Stringer, error)
	}
	expts := []exp{
		{"fig02", wrap(func(s float64) (fmt.Stringer, error) { return experiments.Fig02(s) })},
		{"fig03a", wrap(func(s float64) (fmt.Stringer, error) { return experiments.Fig03(s, false) })},
		{"fig03b", wrap(func(s float64) (fmt.Stringer, error) { return experiments.Fig03(s, true) })},
		{"fig06", wrap(func(s float64) (fmt.Stringer, error) { return experiments.Fig06(s) })},
		{"fig07", wrap(func(s float64) (fmt.Stringer, error) { return experiments.Fig07(s) })},
		{"fig08", wrap(func(s float64) (fmt.Stringer, error) { return experiments.Fig08(s) })},
	}
	if more := extraExperiments(); more != nil {
		for _, e := range more {
			expts = append(expts, exp{e.name, e.fn})
		}
	}

	if *list {
		names := make([]string, 0, len(expts))
		for _, e := range expts {
			names = append(names, e.name)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	var jobs []experiments.Job
	for _, e := range expts {
		if *run != "" && e.name != *run {
			continue
		}
		fn := e.fn
		jobs = append(jobs, experiments.Job{
			Name: e.name,
			Run:  func() (fmt.Stringer, error) { return fn(*scale) },
		})
	}
	if len(jobs) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *run)
		os.Exit(1)
	}

	failed := false
	err := experiments.RunAll(jobs, *parallel, func(r experiments.JobResult) error {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.Name, r.Err)
			failed = true
			return r.Err
		}
		fmt.Fprintf(os.Stderr, "%s: wall %.1fs\n", r.Name, r.Wall.Seconds())
		// Experiments comparing wall-clock (the sharded fabric) surface
		// their nondeterministic numbers here, keeping stdout stable.
		if n, ok := r.Output.(interface{ StderrNote() string }); ok {
			if note := n.StderrNote(); note != "" {
				fmt.Fprintf(os.Stderr, "%s: %s\n", r.Name, note)
			}
		}
		// A self-gating experiment (the shards determinism pin) fails
		// the whole run even though it produced printable output.
		if g, ok := r.Output.(interface{ GateErr() error }); ok {
			if gerr := g.GateErr(); gerr != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", r.Name, gerr)
				failed = true
			}
		}
		fmt.Printf("=== %s ===\n%s\n", r.Name, r.Output)
		return nil
	})
	if err != nil || failed {
		exit(1, *memprofile, *cpuprofile)
	}
	exit(0, *memprofile, *cpuprofile)
}

// exit writes the requested profiles (deferred StopCPUProfile does not
// run across os.Exit, so flush explicitly) and terminates.
func exit(code int, memprofile, cpuprofile string) {
	if cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
	os.Exit(code)
}

func wrap(fn func(float64) (fmt.Stringer, error)) func(float64) (fmt.Stringer, error) {
	return fn
}

type namedExp struct {
	name string
	fn   func(float64) (fmt.Stringer, error)
}

// extraExperiments is extended as more drivers land.
func extraExperiments() []namedExp { return extras }

var extras = []namedExp{
	{"fig09", func(s float64) (fmt.Stringer, error) { return experiments.Fig09(s) }},
	{"fig10", func(s float64) (fmt.Stringer, error) { return experiments.Fig10(s) }},
	{"fig11", func(s float64) (fmt.Stringer, error) { return experiments.Fig11(s) }},
	{"fig12", func(s float64) (fmt.Stringer, error) { return experiments.Fig12(s) }},
	{"fig13", func(s float64) (fmt.Stringer, error) { return experiments.Fig13(s) }},
	{"table2", func(s float64) (fmt.Stringer, error) { return experiments.Table2(s) }},
	{"table3", func(float64) (fmt.Stringer, error) { return experiments.Table3(".") }},
	// Ablations and extensions beyond the paper's figures.
	{"abl-writeahead", func(s float64) (fmt.Stringer, error) { return experiments.AblationWriteAhead(s) }},
	{"abl-lref", func(s float64) (fmt.Stringer, error) { return experiments.AblationLref(s) }},
	{"abl-gain", func(s float64) (fmt.Stringer, error) { return experiments.AblationGain(s) }},
	{"abl-coordperiod", func(float64) (fmt.Stringer, error) { return experiments.AblationCoordPeriod() }},
	{"ext-spectrum", func(s float64) (fmt.Stringer, error) { return experiments.ExtSpectrum(s) }},
	{"ext-netsched", func(s float64) (fmt.Stringer, error) { return experiments.ExtNetworkSched(s) }},
	{"ext-terasort-sweep", func(s float64) (fmt.Stringer, error) { return experiments.ExtTeraSortSweep(s) }},
	{"ext-ssd-promotion", func(float64) (fmt.Stringer, error) { return experiments.ExtSSDPromotion() }},
	{"ext-scalability", func(float64) (fmt.Stringer, error) { return experiments.ExtScalability() }},
	// Parallel simulation: the sharded fabric vs its own serial mode.
	{"shards", func(s float64) (fmt.Stringer, error) { return experiments.Shards(s, *shardsFlag) }},
	// Robustness: coordination-plane fault injection.
	{"fault-matrix", func(float64) (fmt.Stringer, error) { return experiments.FaultMatrix() }},
	{"fault-custom", func(float64) (fmt.Stringer, error) { return experiments.FaultCustom(customFaultSpec()) }},
	// Scale: the hollow-node harness, parameterized by -scale-spec.
	{"scale", func(float64) (fmt.Stringer, error) {
		spec, err := parseScaleSpec(*scaleSpecFlag)
		if err != nil {
			return nil, err
		}
		return experiments.ScaleBench(spec)
	}},
	// Federation: partitioned coordination with delta-compressed
	// hierarchical aggregation, parameterized by -federation-spec.
	{"federation", func(float64) (fmt.Stringer, error) {
		spec, err := parseFederationSpec(*federationSpecFlag)
		if err != nil {
			return nil, err
		}
		return experiments.FederationBench(spec)
	}},
	// Runtime control plane: live mid-run reweighting through the
	// share tree, parameterized by -reweight.
	{"reweight", func(float64) (fmt.Stringer, error) {
		spec, err := parseReweight(*reweightFlag)
		if err != nil {
			return nil, err
		}
		return experiments.Reweight(spec)
	}},
}
