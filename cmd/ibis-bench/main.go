// Command ibis-bench regenerates the IBIS paper's tables and figures on
// the simulated cluster and prints paper-vs-measured rows.
//
// Usage:
//
//	ibis-bench [-scale 0.125] [-run fig06] [-list]
//
// Without -run, every experiment executes in order.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"ibis/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", experiments.DefaultScale, "data scale factor (1 = paper volumes)")
	run := flag.String("run", "", "run a single experiment (e.g. fig06); empty = all")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	type exp struct {
		name string
		fn   func(float64) (fmt.Stringer, error)
	}
	expts := []exp{
		{"fig02", wrap(func(s float64) (fmt.Stringer, error) { return experiments.Fig02(s) })},
		{"fig03a", wrap(func(s float64) (fmt.Stringer, error) { return experiments.Fig03(s, false) })},
		{"fig03b", wrap(func(s float64) (fmt.Stringer, error) { return experiments.Fig03(s, true) })},
		{"fig06", wrap(func(s float64) (fmt.Stringer, error) { return experiments.Fig06(s) })},
		{"fig07", wrap(func(s float64) (fmt.Stringer, error) { return experiments.Fig07(s) })},
		{"fig08", wrap(func(s float64) (fmt.Stringer, error) { return experiments.Fig08(s) })},
	}
	if more := extraExperiments(); more != nil {
		for _, e := range more {
			expts = append(expts, exp{e.name, e.fn})
		}
	}

	if *list {
		names := make([]string, 0, len(expts))
		for _, e := range expts {
			names = append(names, e.name)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	ran := 0
	for _, e := range expts {
		if *run != "" && e.name != *run {
			continue
		}
		ran++
		start := time.Now()
		res, err := e.fn(*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (wall %.1fs) ===\n%s\n", e.name, time.Since(start).Seconds(), res)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *run)
		os.Exit(1)
	}
}

func wrap(fn func(float64) (fmt.Stringer, error)) func(float64) (fmt.Stringer, error) {
	return fn
}

type namedExp struct {
	name string
	fn   func(float64) (fmt.Stringer, error)
}

// extraExperiments is extended as more drivers land.
func extraExperiments() []namedExp { return extras }

var extras = []namedExp{
	{"fig09", func(s float64) (fmt.Stringer, error) { return experiments.Fig09(s) }},
	{"fig10", func(s float64) (fmt.Stringer, error) { return experiments.Fig10(s) }},
	{"fig11", func(s float64) (fmt.Stringer, error) { return experiments.Fig11(s) }},
	{"fig12", func(s float64) (fmt.Stringer, error) { return experiments.Fig12(s) }},
	{"fig13", func(s float64) (fmt.Stringer, error) { return experiments.Fig13(s) }},
	{"table2", func(s float64) (fmt.Stringer, error) { return experiments.Table2(s) }},
	{"table3", func(float64) (fmt.Stringer, error) { return experiments.Table3(".") }},
	// Ablations and extensions beyond the paper's figures.
	{"abl-writeahead", func(s float64) (fmt.Stringer, error) { return experiments.AblationWriteAhead(s) }},
	{"abl-lref", func(s float64) (fmt.Stringer, error) { return experiments.AblationLref(s) }},
	{"abl-gain", func(s float64) (fmt.Stringer, error) { return experiments.AblationGain(s) }},
	{"abl-coordperiod", func(float64) (fmt.Stringer, error) { return experiments.AblationCoordPeriod() }},
	{"ext-spectrum", func(s float64) (fmt.Stringer, error) { return experiments.ExtSpectrum(s) }},
	{"ext-netsched", func(s float64) (fmt.Stringer, error) { return experiments.ExtNetworkSched(s) }},
	{"ext-terasort-sweep", func(s float64) (fmt.Stringer, error) { return experiments.ExtTeraSortSweep(s) }},
	{"ext-ssd-promotion", func(float64) (fmt.Stringer, error) { return experiments.ExtSSDPromotion() }},
	{"ext-scalability", func(float64) (fmt.Stringer, error) { return experiments.ExtScalability() }},
}
