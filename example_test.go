package ibis_test

import (
	"fmt"

	"ibis"
)

// Example demonstrates the minimal IBIS workflow: build a simulated
// cluster with the SFQ(D2) policy, pin two applications to half the
// resources each, weight their I/O 32:1, and run to completion.
func Example() {
	sim, err := ibis.New(ibis.Config{Policy: ibis.SFQD2, Seed: 1})
	if err != nil {
		panic(err)
	}

	wc := ibis.WordCount(2e9, 4)
	wc.Weight = 32
	wc.CPUQuota = 48

	tg := ibis.TeraGen(10e9, 24)
	tg.Weight = 1
	tg.CPUQuota = 48
	tg.OutputReplication = 1

	jwc, _ := sim.Submit(wc, 0)
	jtg, _ := sim.Submit(tg, 0)
	sim.Run()

	fmt.Println("wordcount done:", jwc.Done())
	fmt.Println("teragen done:", jtg.Done())
	fmt.Println("wordcount finished first:", jwc.Result().EndTime < jtg.Result().EndTime)
	// Output:
	// wordcount done: true
	// teragen done: true
	// wordcount finished first: true
}

// ExampleSimulation_SubmitQuery runs a TPC-H query through the Hive
// layer: the query compiles to sequential MapReduce stages sharing one
// application ID, so the interposed schedulers manage it as one flow.
func ExampleSimulation_SubmitQuery() {
	sim, err := ibis.New(ibis.Config{Policy: ibis.Native, Seed: 2})
	if err != nil {
		panic(err)
	}
	exec, err := sim.SubmitQuery(ibis.Q21(), ibis.QueryOptions{
		Weight:     1,
		ScaleBytes: 0.001, // tiny demo volumes
	})
	if err != nil {
		panic(err)
	}
	sim.Run()
	fmt.Println("query done:", exec.Done())
	fmt.Println("stages run:", len(exec.StageJobs()))
	// Output:
	// query done: true
	// stages run: 6
}

// ExampleSimulation_coordination shows the Scheduling Broker learning
// the cluster-wide service an application received.
func ExampleSimulation_coordination() {
	sim, err := ibis.New(ibis.Config{
		Policy:     ibis.SFQD2,
		Coordinate: true,
		Seed:       3,
	})
	if err != nil {
		panic(err)
	}
	tg := ibis.TeraGen(5e9, 12)
	tg.OutputReplication = 1
	j, _ := sim.Submit(tg, 0)
	sim.Run()
	fmt.Println("job done:", j.Done())
	fmt.Println("broker saw service:", sim.BrokerTotal(j.App) > 0)
	// Output:
	// job done: true
	// broker saw service: true
}
