package ibis_test

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"strings"
	"testing"

	"ibis"
)

// reweightStep is one scripted control-plane action.
type reweightStep struct {
	at     float64
	app    ibis.AppID
	weight float64
}

// reweightDigest runs the standard traced contention workload with a
// scripted mid-run reweight schedule and returns the sha256 of the
// JSONL trace export.
func reweightDigest(t *testing.T, seed int64, schedule []reweightStep) [32]byte {
	t.Helper()
	sim, err := ibis.New(ibis.Config{
		Policy:        ibis.SFQD2,
		Seed:          seed,
		TraceCapacity: 1 << 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	wc := ibis.WordCount(0.5e9, 2)
	wc.App = "wordcount"
	wc.Weight = 8
	tg := ibis.TeraGen(1e9, 8)
	tg.App = "teragen"
	tg.Weight = 1
	if _, err := sim.Submit(wc, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Submit(tg, 0); err != nil {
		t.Fatal(err)
	}
	for _, st := range schedule {
		st := st
		sim.Schedule(st.at, func() {
			if err := sim.SetWeight(st.app, st.weight); err != nil {
				t.Errorf("SetWeight(%s, %g): %v", st.app, st.weight, err)
			}
		})
	}
	sim.Run()

	var buf bytes.Buffer
	if err := sim.Trace().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(buf.Bytes())
}

// TestReweightReplayDeterminism extends the reproducibility promise to
// the control plane: identical (seed, reweight schedule) pairs replay
// byte-identically, and the schedule itself is part of the identity —
// changing it changes the trace.
func TestReweightReplayDeterminism(t *testing.T) {
	schedule := []reweightStep{
		{at: 5, app: "wordcount", weight: 1},
		{at: 12, app: "teragen", weight: 16},
	}
	a := reweightDigest(t, 42, schedule)
	b := reweightDigest(t, 42, schedule)
	if a != b {
		t.Fatalf("same (seed, schedule) produced different traces:\n  %x\n  %x", a, b)
	}
	c := reweightDigest(t, 42, []reweightStep{{at: 5, app: "wordcount", weight: 2}})
	if a == c {
		t.Fatal("different reweight schedules produced identical traces; reweight is not reaching the schedulers")
	}
	d := reweightDigest(t, 42, nil)
	if a == d {
		t.Fatal("reweight schedule had no observable effect on the trace")
	}
}

// TestReweightPreservesTagInvariants is the mid-run reweighting safety
// property: a weight change at a random virtual time must never produce
// a tag-monotonicity, virtual-time, work-conservation, or lifecycle
// audit violation. Weight resolution happens at tag time, so a
// reweight can shrink or grow a flow's finish-tag stride — but both
// operands of the start-tag max() only grow, which is exactly what the
// auditor checks here.
func TestReweightPreservesTagInvariants(t *testing.T) {
	// Invariants that must hold unconditionally, reweight or not. The
	// proportional-share family is exempt only inside the declared
	// epoch reconvergence windows, which the auditor handles itself.
	hard := []string{
		"start-tag-monotonicity",
		"tag-consistency",
		"vtime-monotonicity",
		"work-conservation",
		"lifecycle",
		"depth-bound",
	}
	rng := rand.New(rand.NewSource(1309))
	for trial := 0; trial < 5; trial++ {
		seed := rng.Int63n(1 << 30)
		at := 1 + rng.Float64()*15
		w := []float64{0.5, 2, 4, 16, 32}[rng.Intn(5)]
		app := []ibis.AppID{"wordcount", "teragen"}[rng.Intn(2)]

		sim, err := ibis.New(ibis.Config{
			Policy:     ibis.SFQD2,
			Coordinate: true,
			Audit:      true,
			Seed:       seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		wc := ibis.WordCount(0.5e9, 2)
		wc.App = "wordcount"
		wc.Weight = 8
		tg := ibis.TeraGen(1e9, 8)
		tg.App = "teragen"
		tg.Weight = 1
		if _, err := sim.Submit(wc, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Submit(tg, 0); err != nil {
			t.Fatal(err)
		}
		sim.Schedule(at, func() {
			if err := sim.SetWeight(app, w); err != nil {
				t.Errorf("SetWeight: %v", err)
			}
		})
		sim.Run()

		au := sim.Audit()
		for _, v := range au.Violations() {
			for _, inv := range hard {
				if v.Invariant == inv {
					t.Errorf("trial %d (seed=%d reweight %s->%g at t=%.2f): %s",
						trial, seed, app, w, at, v.String())
				}
			}
		}
		checks := au.Checks()
		for _, inv := range []string{"start-tag-monotonicity", "work-conservation"} {
			if checks[inv] == 0 {
				t.Fatalf("trial %d: invariant %q never exercised — property is vacuous", trial, inv)
			}
		}
		if checks["epoch-noted"] == 0 {
			t.Fatalf("trial %d: reweight never reached the auditor's epoch stream", trial)
		}
		if sim.ShareEpoch() == 0 {
			t.Fatalf("trial %d: share tree epoch still 0 after reweight", trial)
		}
	}
}

// TestReweightTransitionLog pins the public control-plane surface:
// tenants, live reweights, class multipliers, and the epoch log.
func TestReweightTransitionLog(t *testing.T) {
	sim, err := ibis.New(ibis.Config{Policy: ibis.SFQD})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Tenant("analytics", 3); err != nil {
		t.Fatal(err)
	}
	if err := sim.Tenant("", 1); err == nil {
		t.Fatal("empty tenant name accepted")
	}
	if err := sim.Tenant("~sneaky", 1); err == nil {
		t.Fatal("reserved tenant prefix accepted")
	}
	if err := sim.SetWeight("etl", 8); err != nil {
		t.Fatal(err)
	}
	if err := sim.SetWeight("etl", -1); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := sim.SetClassWeight("etl", ibis.IntermediateWrite, 0.25); err != nil {
		t.Fatal(err)
	}
	if got := sim.EffectiveWeight("etl", ibis.PersistentRead); got != 8 {
		t.Fatalf("EffectiveWeight = %g, want 8 (1 x 8 x 1)", got)
	}
	if got := sim.EffectiveWeight("etl", ibis.IntermediateWrite); got != 2 {
		t.Fatalf("EffectiveWeight = %g, want 2 (1 x 8 x 0.25)", got)
	}
	if sim.ShareEpoch() == 0 {
		t.Fatal("epoch did not advance")
	}
	log := sim.ShareTransitions()
	if len(log) == 0 {
		t.Fatal("transition log empty")
	}
	var kinds []string
	for _, tr := range log {
		kinds = append(kinds, tr.Kind)
	}
	joined := strings.Join(kinds, ",")
	for _, want := range []string{"tenant", "bind", "class-weight"} {
		if !strings.Contains(joined, want) {
			t.Errorf("transition log %v missing kind %q", kinds, want)
		}
	}
}
