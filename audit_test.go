package ibis_test

import (
	"testing"

	"ibis"
)

// contend runs the standard two-app contention scenario (a light
// weight-32 WordCount against a write-flooding weight-1 TeraGen) under
// cfg and returns the finished simulation.
func contend(t *testing.T, cfg ibis.Config) *ibis.Simulation {
	t.Helper()
	sim, err := ibis.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wc := ibis.WordCount(1.5e9, 2)
	wc.App = "wordcount"
	wc.Weight = 32
	wc.CPUQuota = 48
	tg := ibis.TeraGen(6e9, 24)
	tg.App = "teragen"
	tg.Weight = 1
	tg.CPUQuota = 48
	tg.OutputReplication = 1
	if _, err := sim.Submit(wc, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Submit(tg, 0); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	return sim
}

// TestAuditCleanOnAllPolicies is the acceptance gate for the invariant
// auditor: every shipping policy must run the contention scenario with
// zero violations, and the SFQ-specific invariants must actually be
// exercised (non-zero check counts) where the policy uses SFQ queues.
func TestAuditCleanOnAllPolicies(t *testing.T) {
	cases := []struct {
		name string
		cfg  ibis.Config
		// sfq marks configs whose schedulers include SFQ queues, so the
		// tag/depth/conservation invariants must have been evaluated.
		sfq bool
	}{
		{"Native", ibis.Config{Policy: ibis.Native, Seed: 1}, false},
		{"SFQD", ibis.Config{Policy: ibis.SFQD, Seed: 2}, true},
		{"SFQD2", ibis.Config{Policy: ibis.SFQD2, Seed: 3}, true},
		{"SFQD2+Coordinate", ibis.Config{Policy: ibis.SFQD2, Coordinate: true, Seed: 4}, true},
		{"CGWeight", ibis.Config{Policy: ibis.CGWeight, Seed: 5}, true},
		{"CGThrottle", ibis.Config{
			Policy:         ibis.CGThrottle,
			ThrottleLimits: map[ibis.AppID]float64{"teragen": 50e6},
			Seed:           6,
		}, false},
		{"Reserve", ibis.Config{Policy: ibis.Reserve, ReservationDefault: 50e6, Seed: 7}, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := tc.cfg
			cfg.Audit = true
			sim := contend(t, cfg)
			au := sim.Audit()
			if au == nil {
				t.Fatal("Audit() = nil with Config.Audit set")
			}
			if err := au.Err(); err != nil {
				for _, v := range au.Violations() {
					t.Logf("violation: %s", v)
				}
				t.Fatalf("audit: %v", err)
			}
			checks := au.Checks()
			if checks["lifecycle"] == 0 {
				t.Fatal("lifecycle invariant never evaluated")
			}
			if tc.sfq {
				for _, inv := range []string{
					"start-tag-monotonicity", "tag-consistency",
					"vtime-monotonicity", "depth-bound", "work-conservation",
				} {
					if checks[inv] == 0 {
						t.Errorf("SFQ invariant %q never evaluated (checks: %v)", inv, checks)
					}
				}
			}
			if tc.cfg.Coordinate && checks["broker-conservation"] == 0 {
				t.Error("broker-conservation never evaluated with coordination on")
			}
		})
	}
}

// shareScenario floods the DFS from two replicated TeraGens with a 32:1
// weight ratio: 3× replication spreads the write pipelines across all
// datanodes, so both flows stay continuously backlogged on shared
// devices and the windowed share checks have eligible pairs.
func shareScenario(t *testing.T, cfg ibis.Config) *ibis.Simulation {
	t.Helper()
	sim, err := ibis.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := ibis.TeraGen(8e9, 48)
	a.App = "gen-a"
	a.Weight = 32
	a.CPUQuota = 48
	b := ibis.TeraGen(8e9, 48)
	b.App = "gen-b"
	b.Weight = 1
	b.CPUQuota = 48
	if _, err := sim.Submit(a, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Submit(b, 0); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	return sim
}

// TestAuditProportionalShareExercised pins the non-vacuousness of the
// windowed fairness check: under contention with overlapping backlogged
// flows it must evaluate real pairs and find the shares within bound.
func TestAuditProportionalShareExercised(t *testing.T) {
	sim := shareScenario(t, ibis.Config{Policy: ibis.SFQD, Seed: 21, Audit: true})
	au := sim.Audit()
	if err := au.Err(); err != nil {
		for _, v := range au.Violations() {
			t.Logf("violation: %s", v)
		}
		t.Fatalf("audit: %v", err)
	}
	if n := au.Checks()["proportional-share"]; n == 0 {
		t.Fatalf("proportional-share never evaluated (checks: %v)", au.Checks())
	}
}

// TestAuditTotalShareExercised is the coordinated analog: with the
// Scheduling Broker on, the cluster-wide total-service fairness check
// and broker conservation must both run clean on real pairs.
func TestAuditTotalShareExercised(t *testing.T) {
	sim := shareScenario(t, ibis.Config{Policy: ibis.SFQD2, Coordinate: true, Seed: 21, Audit: true})
	au := sim.Audit()
	if err := au.Err(); err != nil {
		for _, v := range au.Violations() {
			t.Logf("violation: %s", v)
		}
		t.Fatalf("audit: %v", err)
	}
	checks := au.Checks()
	if checks["total-proportional-share"] == 0 {
		t.Fatalf("total-proportional-share never evaluated (checks: %v)", checks)
	}
	if checks["broker-conservation"] == 0 {
		t.Fatalf("broker-conservation never evaluated (checks: %v)", checks)
	}
}
