package ibis_test

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"ibis"
)

// traceDigest runs a small traced contention workload with the given
// seed and returns the sha256 of its JSONL trace export.
func traceDigest(t *testing.T, seed int64) [32]byte {
	t.Helper()
	sim, err := ibis.New(ibis.Config{
		Policy:        ibis.SFQD2,
		Seed:          seed,
		TraceCapacity: 1 << 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	wc := ibis.WordCount(0.5e9, 2)
	wc.App = "wordcount"
	wc.Weight = 8
	tg := ibis.TeraGen(1e9, 8)
	tg.App = "teragen"
	tg.Weight = 1
	if _, err := sim.Submit(wc, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Submit(tg, 0); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	var buf bytes.Buffer
	if err := sim.Trace().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("trace export is empty; nothing was recorded")
	}
	return sha256.Sum256(buf.Bytes())
}

// TestTraceDeterminism pins the end-to-end reproducibility promise:
// two simulations with the same Config.Seed must export byte-identical
// request traces, and a different seed must change the trace.
func TestTraceDeterminism(t *testing.T) {
	a := traceDigest(t, 42)
	b := traceDigest(t, 42)
	if a != b {
		t.Fatalf("same seed produced different traces:\n  %x\n  %x", a, b)
	}
	c := traceDigest(t, 43)
	if a == c {
		t.Fatal("different seeds produced identical traces; seed is not reaching the workload")
	}
}
