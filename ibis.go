// Package ibis is a faithful reimplementation of IBIS — the Interposed
// Big-data I/O Scheduler (Xu & Zhao, HPDC 2016) — on a deterministic
// discrete-event simulation of a Hadoop/YARN cluster.
//
// IBIS provides I/O performance differentiation for applications that
// share a big-data system. Its pieces, all implemented here:
//
//   - an I/O interposition layer on every datanode that tags and
//     schedules persistent (HDFS), intermediate (local FS), and shuffle
//     I/O per application;
//   - SFQ(D2), a proportional-share start-time-fair-queueing scheduler
//     whose dispatch depth D is adapted online by an integral feedback
//     controller steering observed latency toward a profiled reference;
//   - a centralized Scheduling Broker that lets the distributed
//     schedulers enforce proportional sharing of the *total* cluster
//     I/O service (the DSFQ delay rule);
//   - the substrates the paper evaluates on: an HDFS-like DFS, a
//     MapReduce/YARN execution engine with a fair slot scheduler, a
//     Hive-style query compiler, calibrated HDD/SSD device models, and
//     the cgroups baselines IBIS is compared against.
//
// # Quick start
//
//	sim, _ := ibis.New(ibis.Config{Policy: ibis.SFQD2})
//	wc := ibis.WordCount(6e9, 6)
//	wc.Weight = 32
//	tg := ibis.TeraGen(125e9, 96)
//	tg.Weight = 1
//	sim.Submit(wc, 0)
//	sim.Submit(tg, 0)
//	sim.Run()
//
// Runs are fully deterministic: a fixed Config.Seed reproduces the
// exact same virtual-time execution.
package ibis

import (
	"fmt"

	"ibis/internal/audit"
	"ibis/internal/broker"
	"ibis/internal/cluster"
	"ibis/internal/dfs"
	"ibis/internal/faults"
	"ibis/internal/hive"
	"ibis/internal/iosched"
	"ibis/internal/mapreduce"
	"ibis/internal/metrics"
	"ibis/internal/shares"
	"ibis/internal/sim"
	"ibis/internal/storage"
	"ibis/internal/trace"
	"ibis/internal/workloads"
)

// Policy selects the per-datanode I/O scheduling configuration.
type Policy = cluster.Policy

// Scheduling policies.
const (
	// Native is stock Hadoop/YARN: no I/O management.
	Native = cluster.Native
	// SFQD is classic SFQ(D) with a static dispatch depth.
	SFQD = cluster.SFQD
	// SFQD2 is the paper's adaptive-depth scheduler.
	SFQD2 = cluster.SFQD2
	// CGWeight is the cgroups proportional-weight baseline.
	CGWeight = cluster.CGWeight
	// CGThrottle is the cgroups bandwidth-cap baseline.
	CGThrottle = cluster.CGThrottle
	// Reserve is the non-work-conserving strict-partitioning extreme
	// (paper §9).
	Reserve = cluster.Reserve
)

// AppID identifies an application cluster-wide.
type AppID = iosched.AppID

// Class identifies an I/O class (persistent vs. intermediate, read vs.
// write); see iosched.Class.
type Class = iosched.Class

// I/O classes, re-exported for SetClassWeight.
const (
	PersistentRead    = iosched.PersistentRead
	PersistentWrite   = iosched.PersistentWrite
	IntermediateRead  = iosched.IntermediateRead
	IntermediateWrite = iosched.IntermediateWrite
)

// ShareTree is the cluster's runtime weight control plane — the
// tenant → application → I/O-class share tree; see internal/shares.
type ShareTree = shares.Tree

// ShareTransition records one control-plane mutation (reweight, bind,
// tenant declaration) with the epoch it produced.
type ShareTransition = shares.Transition

// JobSpec describes a MapReduce application (see mapreduce.JobSpec).
type JobSpec = mapreduce.JobSpec

// Job is a submitted application.
type Job = mapreduce.Job

// JobResult summarizes a finished job.
type JobResult = mapreduce.Result

// Query is a Hive query plan.
type Query = hive.Query

// QueryExecution tracks a running Hive query.
type QueryExecution = hive.Execution

// QueryOptions configure SubmitQuery.
type QueryOptions = hive.RunOptions

// Workload constructors, re-exported for convenience.
var (
	// TeraGen builds a map-only generator writing totalBytes.
	TeraGen = workloads.TeraGenSpec
	// TeraSort builds a full sort over inputBytes.
	TeraSort = workloads.TeraSortSpec
	// WordCount builds a compute-heavy scan with small output.
	WordCount = workloads.WordCountSpec
	// TeraValidate builds a read-mostly scan.
	TeraValidate = workloads.TeraValidateSpec
	// Q9 and Q21 are the paper's TPC-H query plans.
	Q9  = hive.Q9
	Q21 = hive.Q21
)

// Config describes the simulated cluster and scheduling policy. The
// zero value reproduces the paper's testbed: 8 datanodes with 12 cores,
// 24 GB of task memory and two HDDs each, gigabit Ethernet, 128 MB DFS
// blocks with 3× replication, and the Native (no I/O management)
// policy.
type Config struct {
	// Nodes, CoresPerNode, MemGBPerNode shape the cluster.
	Nodes        int
	CoresPerNode int
	MemGBPerNode float64
	// SSD switches both per-node devices to the flash model.
	SSD bool
	// Policy picks the I/O scheduler; SFQDepth applies to SFQD and
	// CGWeight.
	Policy   Policy
	SFQDepth int
	// Coordinate enables the Scheduling Broker (total-service
	// proportional sharing).
	Coordinate bool
	// ThrottleLimits caps apps (bytes/second) under CGThrottle.
	ThrottleLimits map[AppID]float64
	// ReservationRates / ReservationDefault configure the Reserve
	// policy (per-device cost units per second).
	ReservationRates   map[AppID]float64
	ReservationDefault float64
	// ScheduleNetwork adds weighted fair scheduling on the NICs (the
	// paper's OpenFlow-style extension).
	ScheduleNetwork bool
	// CoordinationPeriod is the broker exchange period in seconds
	// (0 = the paper's 1 s).
	CoordinationPeriod float64
	// BlockSize and Replication configure the DFS (0 = Table 1
	// defaults: 128 MB, 3).
	BlockSize   float64
	Replication int
	// Seed drives all randomness (placement, workload sampling).
	Seed int64

	// TraceCapacity, when positive, enables request-level lifecycle
	// tracing into a ring buffer of that many records (use
	// trace.DefaultCapacity for a sensible size). The trace is
	// retrievable via Simulation.Trace.
	TraceCapacity int
	// Audit enables online invariant auditing of every scheduler (and
	// the broker, when coordinating); results via Simulation.Audit.
	Audit bool
	// AuditWindow overrides the proportional-share audit period in
	// virtual seconds (0 = default 5 s).
	AuditWindow float64

	// Faults, when non-nil, compiles and injects a deterministic fault
	// schedule into the coordination plane: broker outages, per-node
	// partitions, message loss/delay, scheduler restarts, and device
	// degradation windows, all pure functions of (Faults.Seed, virtual
	// time). Requires Coordinate for the coordination faults to have a
	// target; device degradations apply regardless.
	Faults *FaultSpec
	// Retry tunes the coordination clients' failure handling (timeouts,
	// bounded retries with exponential backoff, degradation threshold).
	// Zero fields take defaults derived from CoordinationPeriod.
	Retry RetryPolicy
	// DelayClamp caps the per-arrival DSFQ delay increment in cost
	// units (0 disables); it bounds how hard a stale burst of remote
	// totals can penalize a flow after a partition heals.
	DelayClamp float64
}

// FaultSpec declares the deterministic fault schedule; see
// internal/faults.Spec.
type FaultSpec = faults.Spec

// FaultWindow is a [start, end) virtual-time interval.
type FaultWindow = faults.Window

// RetryPolicy tunes coordination-client failure handling; see
// internal/broker.RetryPolicy.
type RetryPolicy = broker.RetryPolicy

// CoordinationHealth aggregates the coordination plane's
// failure-handling counters; see internal/metrics.
type CoordinationHealth = metrics.CoordinationHealth

// Tracer is the request-level lifecycle trace buffer; see
// internal/trace.
type Tracer = trace.Tracer

// TraceRecord is one traced lifecycle event.
type TraceRecord = trace.Record

// Auditor is the online invariant checker; see internal/audit.
type Auditor = audit.Auditor

// AuditViolation is one observed invariant breach.
type AuditViolation = audit.Violation

// Simulation is an assembled cluster plus execution engine.
type Simulation struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	nn  *dfs.Namenode
	rt  *mapreduce.Runtime
	tr  *trace.Tracer
	au  *audit.Auditor
}

// New assembles a simulation.
func New(cfg Config) (*Simulation, error) {
	eng := sim.NewEngine()
	disk := storage.HDDSpec()
	if cfg.SSD {
		disk = storage.SSDSpec()
	}
	var inj *faults.Injector
	if cfg.Faults != nil {
		inj = faults.New(*cfg.Faults)
	}
	cl, err := cluster.New(eng, cluster.Config{
		Nodes:              cfg.Nodes,
		CoresPerNode:       cfg.CoresPerNode,
		MemGBPerNode:       cfg.MemGBPerNode,
		HDFSDisk:           disk,
		LocalDisk:          disk,
		Policy:             cfg.Policy,
		SFQDepth:           cfg.SFQDepth,
		ThrottleLimits:     cfg.ThrottleLimits,
		ReservationRates:   cfg.ReservationRates,
		ReservationDefault: cfg.ReservationDefault,
		ScheduleNetwork:    cfg.ScheduleNetwork,
		Coordinate:         cfg.Coordinate,
		CoordinationPeriod: cfg.CoordinationPeriod,
		Faults:             inj,
		Retry:              cfg.Retry,
		DelayClamp:         cfg.DelayClamp,
	})
	if err != nil {
		return nil, fmt.Errorf("ibis: %w", err)
	}
	nn := dfs.NewNamenode(dfs.Config{
		Nodes:       len(cl.Nodes),
		BlockSize:   cfg.BlockSize,
		Replication: cfg.Replication,
		Seed:        cfg.Seed,
	})
	rt := mapreduce.NewRuntime(eng, cl, nn, mapreduce.Config{})
	s := &Simulation{eng: eng, cl: cl, nn: nn, rt: rt}
	if cfg.TraceCapacity > 0 {
		s.tr = trace.New(cfg.TraceCapacity)
	}
	if cfg.Audit {
		s.au = audit.New(audit.Options{
			Window:             cfg.AuditWindow,
			CoordinationPeriod: cfg.CoordinationPeriod,
		})
		if cl.Broker != nil {
			s.au.AttachBroker(cl.Broker)
		}
		// Switch audit regimes in lockstep with client degradation:
		// local checks relax to the degraded variant, the total-share
		// check is suspended until K periods after recovery.
		cl.SetDegradeObserver(s.au.NoteDegradeStart, s.au.NoteDegradeEnd)
	}
	// Wire the control plane's epoch stream into the instrumentation:
	// audit opens a reconvergence window around every live weight
	// change, trace records the transition for offline analysis.
	if s.au != nil {
		s.au.SetShares(cl.Shares())
	}
	cl.Shares().OnChange(func(tr shares.Transition) {
		if s.au != nil {
			s.au.NoteEpochChange(tr.Time)
		}
		if s.tr != nil {
			s.tr.NoteEpoch(tr.Time, tr.Epoch,
				fmt.Sprintf("%s %s/%s %g->%g", tr.Kind, tr.Tenant, tr.App, tr.Old, tr.New))
		}
	})
	if s.tr != nil || s.au != nil {
		cl.Instrument(func(node int, dev string, sched iosched.Scheduler) iosched.Probe {
			var ps []iosched.Probe
			if s.tr != nil {
				ps = append(ps, s.tr.Probe(node, trace.DeviceKindOf(dev)))
			}
			if s.au != nil {
				ps = append(ps, s.au.Probe(node, dev, sched))
			}
			return iosched.MultiProbe(ps...)
		})
	}
	return s, nil
}

// Submit schedules a job after delay seconds of virtual time.
func (s *Simulation) Submit(spec JobSpec, delay float64) (*Job, error) {
	return s.rt.Submit(spec, delay)
}

// SubmitQuery schedules a Hive query (its stages chain automatically).
func (s *Simulation) SubmitQuery(q Query, opts QueryOptions) (*QueryExecution, error) {
	return hive.Run(s.rt, q, opts)
}

// DefinePool declares a Fair Scheduler pool with aggregate core and
// memory caps; jobs join it via JobSpec.Pool.
func (s *Simulation) DefinePool(name string, maxCores int, maxMemGB float64) {
	s.rt.DefinePool(name, maxCores, maxMemGB)
}

// OnJobDone registers a completion callback (fires for failed jobs
// too; check Job.Failed).
func (s *Simulation) OnJobDone(fn func(*Job)) { s.rt.OnJobDone(fn) }

// FailNode injects a datanode failure at the current virtual time:
// running tasks are killed and requeued, completed map outputs on the
// node re-execute, and the DFS falls back to surviving replicas. A job
// that loses every replica of an input block fails gracefully.
func (s *Simulation) FailNode(idx int) { s.rt.FailNode(idx) }

// Schedule runs fn after delay seconds of virtual time — the hook for
// scripting failure injection and other mid-run interventions.
func (s *Simulation) Schedule(delay float64, fn func()) { s.eng.Schedule(delay, fn) }

// Run executes until all submitted work completes and returns the
// final virtual time in seconds. If auditing is enabled the open audit
// windows are closed at the end of the run.
func (s *Simulation) Run() float64 {
	t := s.eng.Run()
	if s.au != nil {
		s.au.Finish()
	}
	return t
}

// RunUntil executes events up to the virtual-time limit. If auditing
// is enabled the open audit windows are closed at the limit.
func (s *Simulation) RunUntil(limit float64) float64 {
	t := s.eng.RunUntil(limit)
	if s.au != nil {
		s.au.Finish()
	}
	return t
}

// Shares returns the cluster's share tree for direct control-plane
// access (the convenience methods below cover the common operations).
func (s *Simulation) Shares() *ShareTree { return s.cl.Shares() }

// Tenant declares a tenant with the given cluster-wide weight, or
// updates it live. Jobs and queries join a tenant via JobSpec.Tenant /
// QueryOptions.Tenant; undeclared tenants are auto-created at weight 1
// on first use.
func (s *Simulation) Tenant(name string, weight float64) error {
	return s.cl.Shares().Tenant(name, weight)
}

// SetWeight changes an application's I/O weight live: the new weight
// takes effect cluster-wide at the app's next request tag, without
// resubmission and without breaking tag monotonicity. It also pins the
// weight against later job-submission overrides.
func (s *Simulation) SetWeight(app AppID, weight float64) error {
	return s.cl.Shares().SetAppWeight(app, weight)
}

// SetClassWeight sets an application's per-I/O-class weight multiplier
// (default 1) — e.g. deprioritize intermediate spills relative to
// persistent reads of the same app.
func (s *Simulation) SetClassWeight(app AppID, class Class, mult float64) error {
	return s.cl.Shares().SetClassWeight(app, class, mult)
}

// EffectiveWeight resolves the weight a scheduler would use right now
// for (app, class): tenantWeight × appWeight × classMultiplier.
func (s *Simulation) EffectiveWeight(app AppID, class Class) float64 {
	w, _ := s.cl.Shares().EffectiveWeight(app, class)
	return w
}

// ShareEpoch returns the share tree's current version; it increments
// on every control-plane mutation.
func (s *Simulation) ShareEpoch() uint64 { return s.cl.Shares().Epoch() }

// ShareTransitions returns the control-plane mutation log.
func (s *Simulation) ShareTransitions() []ShareTransition {
	return s.cl.Shares().Transitions()
}

// Trace returns the lifecycle tracer, or nil when Config.TraceCapacity
// was zero.
func (s *Simulation) Trace() *Tracer { return s.tr }

// Audit returns the invariant auditor, or nil when Config.Audit was
// false.
func (s *Simulation) Audit() *Auditor { return s.au }

// Now returns the current virtual time.
func (s *Simulation) Now() float64 { return s.eng.Now() }

// Jobs lists all submitted jobs in submission order.
func (s *Simulation) Jobs() []*Job { return s.rt.Jobs() }

// TotalCores returns the cluster's CPU slot count.
func (s *Simulation) TotalCores() int { return s.cl.TotalCores() }

// CoordinationHealth returns the merged failure-handling counters of
// every coordination client (all zero without coordination).
func (s *Simulation) CoordinationHealth() CoordinationHealth {
	return s.cl.CoordinationHealth()
}

// Cluster exposes the underlying cluster for advanced fault scripting
// (detaching nodes, retiring apps, inspecting clients).
func (s *Simulation) Cluster() *cluster.Cluster { return s.cl }

// BrokerTotal returns the cluster-wide cumulative I/O service (cost
// units) the Scheduling Broker has recorded for an app; zero without
// coordination.
func (s *Simulation) BrokerTotal(app AppID) float64 {
	if s.cl.Broker == nil {
		return 0
	}
	return s.cl.Broker.Total(app)
}

// DeviceStats aggregates cluster-wide storage counters.
type DeviceStats struct {
	ReadBytes  float64
	WriteBytes float64
	Flushes    uint64
}

// Storage returns aggregate device counters across all datanodes.
func (s *Simulation) Storage() DeviceStats {
	var out DeviceStats
	for _, n := range s.cl.Nodes {
		for _, d := range []*storage.Device{n.HDFS, n.Local} {
			st := d.Stats()
			out.ReadBytes += st.ReadBytes
			out.WriteBytes += st.WriteBytes
			out.Flushes += st.Flushes
		}
	}
	return out
}

// IOObserver receives every completed I/O request; see
// cluster.IOObserver.
type IOObserver = cluster.IOObserver

// SetIOObserver installs a completion observer on every scheduler.
func (s *Simulation) SetIOObserver(obs IOObserver) { s.cl.SetIOObserver(obs) }
