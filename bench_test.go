// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 7). Each benchmark regenerates its experiment on
// the simulated cluster and reports the headline quantities as custom
// metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Shapes — who wins, by what factor —
// are the comparison target; EXPERIMENTS.md records paper-vs-measured
// for every row.
package ibis_test

import (
	"fmt"
	"testing"
	"time"

	"ibis/internal/experiments"
)

// benchScale keeps the full suite fast while preserving task counts and
// wave structure (see experiments.DefaultScale).
const benchScale = experiments.DefaultScale

func BenchmarkFig02_IOProfiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig02(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		peakTS, _ := maxOf(res.TeraSortWrite)
		peakWC, _ := maxOf(res.WordCountWrite)
		b.ReportMetric(peakTS, "terasort-peak-write-MB/s")
		b.ReportMetric(peakWC, "wordcount-peak-write-MB/s")
	}
}

// BenchmarkFig02_TracingOverhead times the Figure 2 TeraSort profile
// with request tracing off (no probes installed) and on (64Ki-record
// ring), reporting the enabled-path cost as a percentage. The
// disabled path is the guarded configuration: it must stay within
// noise of the untraced baseline.
func BenchmarkFig02_TracingOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := experiments.Fig02Bench(benchScale, 0); err != nil {
			b.Fatal(err)
		}
		off := time.Since(t0)

		t1 := time.Now()
		res, err := experiments.Fig02Bench(benchScale, 1<<16)
		if err != nil {
			b.Fatal(err)
		}
		on := time.Since(t1)
		if res.Trace == nil || res.Trace.Total() == 0 {
			b.Fatal("tracing-enabled run recorded nothing")
		}
		b.ReportMetric(float64(on-off)/float64(off)*100, "trace-overhead-%")
	}
}

func maxOf(v []float64) (float64, int) {
	best, idx := 0.0, -1
	for i, x := range v {
		if x > best {
			best, idx = x, i
		}
	}
	return best, idx
}

func BenchmarkFig03_NativeInterferenceHDD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig03(benchScale, false)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.Slowdown*100, row.CoRunner+"-slowdown-%")
		}
	}
}

func BenchmarkFig03_NativeInterferenceSSD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig03(benchScale, true)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.Slowdown*100, row.CoRunner+"-slowdown-%")
		}
	}
}

func BenchmarkFig06_IsolationHDD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig06(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.Slowdown*100, row.Config+"-slowdown-%")
			b.ReportMetric(row.ThroughputLoss*100, row.Config+"-tput-loss-%")
		}
	}
}

func BenchmarkFig07_DepthAdaptation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig07(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := res.DepthRange()
		b.ReportMetric(float64(lo), "depth-min")
		b.ReportMetric(float64(hi), "depth-max")
		b.ReportMetric(float64(len(res.Trace)), "control-periods")
	}
}

func BenchmarkFig08_IsolationSSD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig08(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.Slowdown*100, row.Config+"-slowdown-%")
		}
	}
}

func BenchmarkFig09_Facebook(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig09(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Cases {
			b.ReportMetric(c.Runtimes.Percentile(90), c.Name+"-p90-s")
			b.ReportMetric(c.Runtimes.Mean(), c.Name+"-mean-s")
		}
	}
}

func BenchmarkFig10_MultiFramework(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range res.Queries {
			for _, row := range q.Rows {
				b.ReportMetric(row.QueryRel, q.Query+"-"+row.Policy+"-query-rel")
			}
		}
	}
}

func BenchmarkFig11_ProportionalSlowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FSBest.Gap()*100, "fs-only-gap-%")
		b.ReportMetric(res.FSIBISBest.Gap()*100, "fs+ibis-gap-%")
		b.ReportMetric(res.FSBest.Avg()*100, "fs-only-avg-slowdown-%")
		b.ReportMetric(res.FSIBISBest.Avg()*100, "fs+ibis-avg-slowdown-%")
	}
}

func BenchmarkFig12_Coordination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.NoSync.Avg()*100, "no-sync-avg-slowdown-%")
		b.ReportMetric(res.Sync.Avg()*100, "sync-avg-slowdown-%")
		b.ReportMetric(res.MicroNoSyncRatio, "micro-no-sync-ratio")
		b.ReportMetric(res.MicroSyncRatio, "micro-sync-ratio")
	}
}

func BenchmarkFig13_Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.Overhead*100, row.App+"-overhead-%")
		}
	}
}

func BenchmarkTable2_ResourceUsage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		var msgs uint64
		for _, row := range res.Rows {
			msgs += row.BrokerExchanges
		}
		b.ReportMetric(float64(msgs), "broker-exchanges")
	}
}

func BenchmarkTable3_LinesOfCode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(".")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalCode), "code-lines")
		b.ReportMetric(float64(res.TotalTests), "test-lines")
	}
}

// BenchmarkShardsFig03HDD runs the Figure 3-class HDD co-run on the
// sharded parallel fabric at 1 worker (the serial reference every
// parallel run must match bit for bit) and at 8 workers. The digest
// metric positions aside, ns/op is the headline: on a multi-core host
// workers8 should approach the Amdahl bound set by the coordinator
// shard's event share; on a single core it documents the dispatch
// overhead instead.
func BenchmarkShardsFig03HDD(b *testing.B) {
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row, err := experiments.ShardsOnce(benchScale, w)
				if err != nil {
					b.Fatal(err)
				}
				if row.Violations != 0 {
					b.Fatalf("audit violations: %d", row.Violations)
				}
				b.ReportMetric(float64(row.Events), "events")
				b.ReportMetric(float64(row.Windows), "windows")
				b.ReportMetric(float64(row.ParWindows), "parallel-windows")
				b.ReportMetric(float64(row.Messages), "cross-shard-msgs")
				// The measured serial term: the Amdahl ceiling is
				// 1/coord-event-frac if the coordinator were the only
				// serial section.
				b.ReportMetric(row.ShardLoad.CoordEventFraction(), "coord-event-frac")
			}
		})
	}
}

// --- Ablations & extensions beyond the paper's figures ---

func BenchmarkAblationWriteAhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationWriteAhead(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[len(res.Rows)-1].WCSlowdown*100, "deepest-window-slowdown-%")
	}
}

func BenchmarkAblationLref(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationLref(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].WCSlowdown*100, "tight-lref-slowdown-%")
		b.ReportMetric(res.Rows[0].Throughput, "tight-lref-tput-MB/s")
	}
}

func BenchmarkAblationGain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGain(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCoordPeriod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationCoordPeriod()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].ServiceRatio, "fast-period-ratio")
		b.ReportMetric(res.Rows[len(res.Rows)-1].ServiceRatio, "slow-period-ratio")
	}
}

func BenchmarkExtSpectrum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtSpectrum(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.WCSlowdown*100, row.Policy+"-slowdown-%")
		}
	}
}

func BenchmarkExtNetworkSched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtNetworkSched(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.StorageOnly*100, "storage-only-slowdown-%")
		b.ReportMetric(res.WithNetSched*100, "with-nic-sched-slowdown-%")
	}
}

func BenchmarkExtTeraSortSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtTeraSortSweep(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[len(res.Rows)-1].MBPerSec, "400GB-rate-MB/s")
	}
}

func BenchmarkExtSSDPromotion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtSSDPromotion(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtScalability()
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.ServiceRatio, "ratio-at-64-nodes")
		b.ReportMetric(last.BytesPerSec, "broker-bytes/s-at-64-nodes")
	}
}
