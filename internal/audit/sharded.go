package audit

import (
	"sort"

	"ibis/internal/iosched"
)

// Deferred adapts an Auditor to sharded parallel simulation. The
// auditor's window and cluster state is deeply shared — one Observe can
// touch per-scheduler flows, the cluster aggregate and the global
// violation list — so it cannot run inside parallel windows. Instead,
// each shard's probes append eagerly-captured samples to that shard's
// private log (append-only, no synchronization, no foreign state), and
// Finish merges the logs by (event time, shard, log order) and replays
// them through the unmodified invariant battery.
//
// The merge key makes the replayed stream — and with it every check
// count and violation — a pure function of the simulated system,
// independent of worker count: per-shard logs are already in
// nondecreasing time order (each shard's engine clock is monotonic),
// and ties across shards are broken by shard id exactly as the trace
// merge does.
//
// Samples must be value copies: request objects are pooled and
// retagged after completion, so by replay time the pointer a live probe
// would have dereferenced describes a different request.
type Deferred struct {
	a      *Auditor
	shards []shardLog
	done   bool
}

type shardLog struct {
	entries []deferredEntry
}

const (
	entrySample = iota
	entryDegradeStart
	entryDegradeEnd
)

type deferredEntry struct {
	time  float64
	kind  uint8
	sched *schedState // sample entries
	smp   sample
	node  int // degrade entries
	dev   string
}

// NewDeferred wraps an auditor for an n-shard run.
func NewDeferred(a *Auditor, n int) *Deferred {
	return &Deferred{a: a, shards: make([]shardLog, n)}
}

// Auditor returns the wrapped auditor. Read its results only after
// Finish.
func (d *Deferred) Auditor() *Auditor { return d.a }

// deferredProbe records one scheduler's lifecycle events into its
// shard's log.
type deferredProbe struct {
	d     *Deferred
	shard int
	sched *schedState
}

// Observe implements iosched.Probe.
func (p *deferredProbe) Observe(req *iosched.Request, st iosched.ProbeState) {
	log := &p.d.shards[p.shard]
	log.entries = append(log.entries, deferredEntry{
		time:  st.Time,
		kind:  entrySample,
		sched: p.sched,
		smp:   makeSample(req, st),
	})
}

// Probe registers the scheduler at (node, dev) with the auditor and
// returns a probe that records into shard's log. The probe must only be
// driven by that shard's engine.
func (d *Deferred) Probe(shard, node int, dev string, sched iosched.Scheduler) iosched.Probe {
	s := d.a.Probe(node, dev, sched).(*schedState)
	return &deferredProbe{d: d, shard: shard, sched: s}
}

// NoteDegradeStart is the deferred analog of Auditor.NoteDegradeStart;
// it is called from the degraded client's shard and replayed in merged
// order, so the regime switch lands between exactly the samples it did
// in the simulation.
func (d *Deferred) NoteDegradeStart(shard, node int, dev string, t float64) {
	log := &d.shards[shard]
	log.entries = append(log.entries, deferredEntry{time: t, kind: entryDegradeStart, node: node, dev: dev})
}

// NoteDegradeEnd is the deferred analog of Auditor.NoteDegradeEnd.
func (d *Deferred) NoteDegradeEnd(shard, node int, dev string, t float64) {
	log := &d.shards[shard]
	log.entries = append(log.entries, deferredEntry{time: t, kind: entryDegradeEnd, node: node, dev: dev})
}

// Finish merges the shard logs deterministically, replays them through
// the auditor, and closes its windows (Auditor.Finish). Call once the
// fabric has drained; subsequent calls are no-ops beyond re-running the
// auditor's own idempotent Finish.
func (d *Deferred) Finish() {
	if !d.done {
		d.done = true
		type tagged struct {
			shard, idx int
		}
		var order []tagged
		for si := range d.shards {
			for i := range d.shards[si].entries {
				order = append(order, tagged{shard: si, idx: i})
			}
		}
		sort.Slice(order, func(i, j int) bool {
			a, b := order[i], order[j]
			ea, eb := &d.shards[a.shard].entries[a.idx], &d.shards[b.shard].entries[b.idx]
			if ea.time != eb.time {
				return ea.time < eb.time
			}
			if a.shard != b.shard {
				return a.shard < b.shard
			}
			return a.idx < b.idx
		})
		for _, t := range order {
			e := &d.shards[t.shard].entries[t.idx]
			switch e.kind {
			case entrySample:
				e.sched.observeSample(&e.smp)
			case entryDegradeStart:
				d.a.NoteDegradeStart(e.node, e.dev, e.time)
			case entryDegradeEnd:
				d.a.NoteDegradeEnd(e.node, e.dev, e.time)
			}
		}
		for si := range d.shards {
			d.shards[si].entries = nil
		}
	}
	d.a.Finish()
}
