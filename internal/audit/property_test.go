package audit_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ibis/internal/audit"
	"ibis/internal/broker"
	"ibis/internal/iosched"
	"ibis/internal/sim"
	"ibis/internal/storage"
)

// Property tests: for randomized weight mixes (3–8 apps, weights 1–64)
// of continuously backlogged flows on HDD and SSD device models, the
// audit layer's proportional-share invariants must hold under SFQ(D),
// SFQ(D2), and coordinated SFQ(D) — and must actually be evaluated,
// not skipped for eligibility reasons. Every failure message carries
// the trial seed for deterministic replay.

type propPolicy int

const (
	propSFQD propPolicy = iota
	propSFQD2
	propCoordinate
)

func (p propPolicy) String() string {
	switch p {
	case propSFQD:
		return "sfqd"
	case propSFQD2:
		return "sfqd2"
	default:
		return "coordinate"
	}
}

// profileCache memoizes device profiling (it runs a calibration sim).
var (
	profileMu    sync.Mutex
	profileCache = map[string]storage.Profile{}
)

func profileFor(t *testing.T, spec storage.Spec) storage.Profile {
	t.Helper()
	profileMu.Lock()
	defer profileMu.Unlock()
	if p, ok := profileCache[spec.Name]; ok {
		return p
	}
	p, err := storage.ProfileDevice(spec, storage.ProfileOptions{})
	if err != nil {
		t.Fatalf("profiling %s: %v", spec.Name, err)
	}
	profileCache[spec.Name] = p
	return p
}

// runShareTrial builds one randomized backlogged-flows scenario and
// returns the auditor after the run.
func runShareTrial(t *testing.T, seed int64, pol propPolicy, spec storage.Spec) *audit.Auditor {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nApps := 3 + rng.Intn(6) // 3..8 apps
	type flow struct {
		app    iosched.AppID
		weight float64
		size   float64
	}
	flows := make([]flow, nApps)
	for i := range flows {
		flows[i] = flow{
			app:    iosched.AppID(fmt.Sprintf("app%02d", i)),
			weight: float64(1 + rng.Intn(64)),
			size:   (0.25 + rng.Float64()*0.75) * 1e6,
		}
	}

	const (
		horizon     = 24.0 // virtual seconds
		window      = 4.0  // audit window
		brokPeriod  = 0.5
		staticDepth = 4
	)
	eng := sim.NewEngine()
	au := audit.New(audit.Options{Window: window, CoordinationPeriod: brokPeriod})

	newSched := func(name string) *iosched.SFQ {
		dev := storage.NewDevice(eng, name, spec)
		if pol == propSFQD2 {
			prof := profileFor(t, spec)
			return iosched.NewSFQD2(eng, dev, iosched.ControllerConfig{
				ReadLref:  prof.ReadLref,
				WriteLref: prof.WriteLref,
				MaxDepth:  8,
			})
		}
		return iosched.NewSFQD(eng, dev, staticDepth)
	}

	var scheds []*iosched.SFQ
	if pol == propCoordinate {
		s1, s2 := newSched("d1"), newSched("d2")
		b := broker.New()
		s1.SetCoordinator(broker.NewClient(eng, b, "n1", s1.Accounting(), brokPeriod))
		s2.SetCoordinator(broker.NewClient(eng, b, "n2", s2.Accounting(), brokPeriod))
		au.AttachBroker(b)
		scheds = []*iosched.SFQ{s1, s2}
	} else {
		scheds = []*iosched.SFQ{newSched("d1")}
	}
	// Coordination is detected at probe-attach time, so probes go on
	// after any SetCoordinator call.
	for i, s := range scheds {
		s.SetProbe(au.Probe(i, "disk", s))
	}

	// Keep every flow continuously backlogged at every scheduler:
	// outstanding strictly above the (maximum) dispatch depth so the
	// wait queue never empties while the trial runs.
	outstanding := 2 * staticDepth
	if pol == propSFQD2 {
		outstanding = 16 // above the controller's MaxDepth of 8
	}
	for _, s := range scheds {
		s := s
		for _, f := range flows {
			f := f
			var issue func()
			issue = func() {
				s.Submit(&iosched.Request{
					App: f.app, Shares: iosched.FixedWeight(f.weight), Class: iosched.PersistentRead, Size: f.size,
					OnDone: func(float64) {
						if eng.Now() < horizon {
							issue()
						}
					},
				})
			}
			for i := 0; i < outstanding; i++ {
				issue()
			}
		}
	}

	eng.RunUntil(horizon)
	au.Finish()
	return au
}

func assertCleanAndExercised(t *testing.T, au *audit.Auditor, seed int64, shareInv string) {
	t.Helper()
	if err := au.Err(); err != nil {
		for _, v := range au.Violations() {
			t.Logf("violation: %s", v)
		}
		t.Fatalf("audit failed (replay with seed %d): %v", seed, err)
	}
	checks := au.Checks()
	if checks[shareInv] == 0 {
		t.Fatalf("%s never evaluated (replay with seed %d): checks=%v", shareInv, seed, checks)
	}
}

func TestPropertyProportionalShare(t *testing.T) {
	devices := []struct {
		name string
		spec storage.Spec
	}{
		{"hdd", storage.HDDSpec()},
		{"ssd", storage.SSDSpec()},
	}
	for _, pol := range []propPolicy{propSFQD, propSFQD2, propCoordinate} {
		pol := pol
		for _, dev := range devices {
			dev := dev
			for trial := 0; trial < 3; trial++ {
				seed := int64(1000*int(pol) + 100*trial + len(dev.name))
				t.Run(fmt.Sprintf("%s/%s/seed%d", pol, dev.name, seed), func(t *testing.T) {
					t.Parallel()
					au := runShareTrial(t, seed, pol, dev.spec)
					inv := "proportional-share"
					if pol == propCoordinate {
						inv = "total-proportional-share"
					}
					assertCleanAndExercised(t, au, seed, inv)
					if pol == propCoordinate && au.Checks()["broker-conservation"] == 0 {
						t.Fatalf("broker-conservation never evaluated (replay with seed %d)", seed)
					}
				})
			}
		}
	}
}
