package audit

// Internal tests for the degradation bookkeeping: the cluster-level
// relaxation spans NoteDegradeStart/End maintain, the per-scheduler
// degraded regime, and the regime switching of the window checks.

import (
	"math"
	"testing"

	"ibis/internal/iosched"
	"ibis/internal/sim"
	"ibis/internal/storage"
)

func TestDegradeSkipSpans(t *testing.T) {
	a := New(Options{CoordinationPeriod: 1, RecoveryPeriods: 5})
	a.NoteDegradeStart(0, "d", 10)
	if a.skipWindow(0, 10) {
		t.Error("window before the degrade start is skipped")
	}
	if !a.skipWindow(9.5, 10.5) {
		t.Error("window overlapping the degrade start is not skipped")
	}
	if !a.skipWindow(100, 101) {
		t.Error("open degrade span must skip every later window")
	}

	a.NoteDegradeEnd(0, "d", 20)
	// Grace: K=5 periods × 1 s → the span relaxes [10, 25).
	if !a.skipWindow(24, 25) {
		t.Error("window inside the recovery grace is not skipped")
	}
	if a.skipWindow(25, 26) {
		t.Error("window past the recovery grace is still skipped")
	}
	if a.checks["degrade-noted"] != 1 || a.checks["recover-noted"] != 1 {
		t.Errorf("note counters = %d/%d, want 1/1",
			a.checks["degrade-noted"], a.checks["recover-noted"])
	}
}

func TestDegradeEndWithoutStartIsSafe(t *testing.T) {
	a := New(Options{})
	a.NoteDegradeEnd(3, "x", 7) // never started; must not panic or open a span
	if len(a.skips) != 0 {
		t.Errorf("spans = %+v, want none", a.skips)
	}
	if a.skipWindow(0, 100) {
		t.Error("phantom skip span")
	}
}

// Interleaved degradations must close only their own span: scheduler A
// recovering while B is still down may not re-tighten the cluster
// bound early.
func TestInterleavedDegradeSpansCloseIndependently(t *testing.T) {
	a := New(Options{CoordinationPeriod: 1, RecoveryPeriods: 5})
	a.NoteDegradeStart(0, "hdfs", 10)
	a.NoteDegradeStart(1, "hdfs", 15)
	a.NoteDegradeEnd(0, "hdfs", 20) // span [10, 25)
	if !a.skipWindow(26, 27) {
		t.Error("B still degraded, but window no longer skipped")
	}
	a.NoteDegradeEnd(1, "hdfs", 30) // span [15, 35)
	if len(a.skips) != 2 {
		t.Fatalf("spans = %d, want 2", len(a.skips))
	}
	if a.skips[0].to != 25 || a.skips[1].to != 35 {
		t.Errorf("span ends = %v/%v, want 25/35", a.skips[0].to, a.skips[1].to)
	}
	if a.skipWindow(35, 36) {
		t.Error("window after the last grace is still skipped")
	}
}

func TestFullyDegradedRequiresCompleteCoverage(t *testing.T) {
	s := &schedState{degraded: []span{{from: 10, to: 20}, {from: 30, to: math.Inf(1)}}}
	for _, tc := range []struct {
		ws, we float64
		want   bool
	}{
		{10, 20, true},
		{12, 18, true},
		{8, 12, false},  // straddles the start
		{18, 22, false}, // straddles the end
		{22, 28, false}, // between spans
		{30, 1e9, true}, // open span covers everything after
	} {
		if got := s.fullyDegraded(tc.ws, tc.we); got != tc.want {
			t.Errorf("fullyDegraded(%v, %v) = %v, want %v", tc.ws, tc.we, got, tc.want)
		}
	}
}

// A coordinated scheduler's windows are normally exempt from the local
// proportional-share bound (the delay rule skews local shares by
// design). Degraded windows lose the exemption: the same imbalance
// that is legal under coordination must violate once the window is
// fully inside a degraded span.
func TestDegradedWindowChecksLocalShare(t *testing.T) {
	mkState := func(a *Auditor) *schedState {
		s := &schedState{a: a, sfq: true, coordinated: true, flows: make(map[iosched.AppID]*flowAudit)}
		for app, svc := range map[iosched.AppID]float64{"a": 100, "b": 0.1} {
			f := s.flow(app)
			f.service = svc
			f.requests = 10
			f.weight = 1
			f.maxUnit = 0.1
			f.zeroSince = -1 // continuously backlogged
		}
		return s
	}

	// Coordinated and healthy: no local check, no violation.
	a := New(Options{})
	s := mkState(a)
	s.closeWindow()
	if a.checks["proportional-share"] != 0 || a.checks["proportional-share-degraded"] != 0 {
		t.Errorf("healthy coordinated window ran a local share check: %v", a.checks)
	}
	if a.ViolationCount() != 0 {
		t.Errorf("healthy coordinated window violated: %v", a.Violations())
	}

	// Same state fully degraded: the local bound applies and the 1000×
	// imbalance breaks it.
	a = New(Options{})
	s = mkState(a)
	s.degraded = []span{{from: 0, to: math.Inf(1)}}
	s.closeWindow()
	if a.checks["proportional-share-degraded"] == 0 {
		t.Fatal("degraded window did not run the local share check")
	}
	if a.ViolationCount() != 1 {
		t.Fatalf("violations = %d, want 1", a.ViolationCount())
	}
	if v := a.Violations()[0]; v.Invariant != "proportional-share-degraded" {
		t.Errorf("invariant = %q, want proportional-share-degraded", v.Invariant)
	}
}

// zeroCoord marks a scheduler as coordinated without ever delaying it:
// the delay rule sees zero remote service, so behavior is identical to
// local SFQ while the auditor applies the coordinated regime.
type zeroCoord struct{}

func (zeroCoord) OtherService(iosched.AppID) float64 { return 0 }

// TestRegimeSwitchingEndToEnd runs a real coordinated scheduler
// through degrade → recover and checks the full regime sequence: local
// degraded checks inside the span, cluster total-share checks
// suspended through span + grace, and re-engaged (passing) after.
func TestRegimeSwitchingEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", storage.Spec{
		Name: "flat", ReadBW: 100e6, WriteBW: 100e6,
		Curve: []float64{1}, CurveDecay: 1, MinCurve: 1,
	})
	sched := iosched.NewSFQD(eng, dev, 2)
	sched.SetCoordinator(zeroCoord{})
	au := New(Options{Window: 1, CoordinationPeriod: 0.5, RecoveryPeriods: 2, MinWindowRequests: 1})
	sched.SetProbe(au.Probe(0, "d", sched))

	const horizon = 8.0
	for _, app := range []iosched.AppID{"a", "b"} {
		app := app
		var issue func()
		issue = func() {
			sched.Submit(&iosched.Request{
				App: app, Shares: iosched.FixedWeight(1), Class: iosched.PersistentRead, Size: 1e6,
				OnDone: func(float64) {
					if eng.Now() < horizon {
						issue()
					}
				},
			})
		}
		// Enough outstanding requests that the app's queue never runs
		// dry (an empty queue disqualifies the flow from share checks).
		for i := 0; i < 6; i++ {
			issue()
		}
	}
	// Degraded [0, 3); grace 2 × 0.5 s extends the skip to t = 4.
	au.NoteDegradeStart(0, "d", 0)
	eng.Schedule(3, func() { au.NoteDegradeEnd(0, "d", 3) })

	eng.RunUntil(horizon)
	au.Finish()

	if err := au.Err(); err != nil {
		t.Fatalf("audit: %v", err)
	}
	if au.checks["proportional-share-degraded"] == 0 {
		t.Error("no degraded local-share checks in windows [0,3)")
	}
	if au.checks["total-proportional-share-skipped"] == 0 {
		t.Error("cluster check never suspended during the degraded span")
	}
	if au.checks["total-proportional-share"] == 0 {
		t.Error("cluster check never re-engaged after the recovery grace")
	}
}
