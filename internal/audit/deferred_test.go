package audit_test

import (
	"reflect"
	"testing"

	"ibis/internal/audit"
	"ibis/internal/iosched"
	"ibis/internal/sim"
	"ibis/internal/storage"
)

// feedStream pushes a fixed lifecycle stream carrying five invariant
// breaches through the probe, mutating the (shared, pool-style) request
// object between observations — the deferred path must have copied
// every field eagerly or the replay sees retagged garbage.
func feedStream(p iosched.Probe) {
	req := &iosched.Request{App: "x", Shares: iosched.FixedWeight(1), Class: iosched.PersistentRead, Size: 1e6}
	p.Observe(req, iosched.ProbeState{Event: iosched.ProbeComplete, Time: 0.5, Latency: -0.5})
	req.App = "y" // simulate freelist reuse between events
	p.Observe(req, iosched.ProbeState{Event: iosched.ProbeArrive, Time: 1.0, Queued: -1})
	req.App = "z"
	p.Observe(req, iosched.ProbeState{Event: iosched.ProbeDispatch, Time: 1.5, InFlight: 5, Depth: 2})
	p.Observe(req, iosched.ProbeState{Event: iosched.ProbeDispatch, Time: 2.0, InFlight: 1, Depth: 2, VTime: 10})
	p.Observe(req, iosched.ProbeState{Event: iosched.ProbeDispatch, Time: 2.5, InFlight: 2, Depth: 2, VTime: 5})
	p.Observe(req, iosched.ProbeState{Event: iosched.ProbeComplete, Time: 3.0, Queued: 3, InFlight: 0, Depth: 2, Latency: 0.1})
}

func newAuditedSched() iosched.Scheduler {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", storage.Spec{
		Name: "flat", ReadBW: 100e6, WriteBW: 100e6,
		Curve: []float64{1}, CurveDecay: 1, MinCurve: 1,
	})
	return iosched.NewSFQD(eng, dev, 2)
}

// TestDeferredReplayMatchesDirect pins the deferred-audit contract: a
// stream recorded into per-shard logs and replayed at Finish yields
// exactly the verdict the direct (online) auditor gives the same
// stream — same violation count, same check tallies — and nothing is
// judged before Finish.
func TestDeferredReplayMatchesDirect(t *testing.T) {
	direct := audit.New(audit.Options{})
	feedStream(direct.Probe(0, "disk", newAuditedSched()))
	direct.Finish()
	if direct.ViolationCount() == 0 {
		t.Fatal("direct auditor missed the injected breaches; test stream is broken")
	}

	deferredAud := audit.New(audit.Options{})
	d := audit.NewDeferred(deferredAud, 2)
	feedStream(d.Probe(1, 0, "disk", newAuditedSched()))
	if got := deferredAud.ViolationCount(); got != 0 {
		t.Fatalf("deferred auditor judged %d violations before Finish, want 0", got)
	}
	d.Finish()

	if got, want := deferredAud.ViolationCount(), direct.ViolationCount(); got != want {
		t.Fatalf("deferred replay found %d violations, direct found %d", got, want)
	}
	if !reflect.DeepEqual(deferredAud.Checks(), direct.Checks()) {
		t.Fatalf("check tallies differ:\n  deferred %v\n  direct   %v", deferredAud.Checks(), direct.Checks())
	}
	for i, v := range deferredAud.Violations() {
		if v.Invariant != direct.Violations()[i].Invariant {
			t.Fatalf("violation %d: deferred %q vs direct %q", i, v.Invariant, direct.Violations()[i].Invariant)
		}
	}
}

// TestDeferredMergesShardLogsInTimeOrder plants one breach per shard
// with the later breach in the lower-numbered shard's log: if Finish
// concatenated the logs instead of merging by (time, shard), the
// violations would come out time-reversed.
func TestDeferredMergesShardLogsInTimeOrder(t *testing.T) {
	a := audit.New(audit.Options{})
	d := audit.NewDeferred(a, 3)
	p1 := d.Probe(1, 0, "disk", newAuditedSched())
	p2 := d.Probe(2, 1, "disk", newAuditedSched())
	req := &iosched.Request{App: "x", Shares: iosched.FixedWeight(1), Class: iosched.PersistentRead, Size: 1e6}
	// Shard 2's breach happens at t=1.0, shard 1's at t=2.0 — log
	// order (shard 1 first) is the reverse of time order.
	p2.Observe(req, iosched.ProbeState{Event: iosched.ProbeComplete, Time: 1.0, Latency: -1})
	p1.Observe(req, iosched.ProbeState{Event: iosched.ProbeComplete, Time: 2.0, Latency: -1})
	d.Finish()
	vs := a.Violations()
	if len(vs) != 2 {
		t.Fatalf("replay found %d violations, want 2: %v", len(vs), vs)
	}
	if vs[0].Time != 1.0 || vs[1].Time != 2.0 {
		t.Fatalf("violations out of time order (logs concatenated, not merged): %v then %v", vs[0], vs[1])
	}
}
