// Package audit provides online invariant checking for the IBIS
// schedulers: a set of machine-checked properties derived from the
// paper's correctness claims, evaluated continuously against the live
// request stream via the iosched lifecycle probes.
//
// Invariants checked (names as reported by Checks and Violation):
//
//   - lifecycle: queue/in-flight counters never go negative, latencies
//     are non-negative (all policies);
//   - start-tag-monotonicity: per flow, SFQ start tags never decrease;
//   - tag-consistency: F(r) = S(r) + cost/weight and S(r) ≥ v(arrival)
//     per the SFQ tagging rules;
//   - vtime-monotonicity: the scheduler's virtual time (the start tag
//     of the most recently dispatched request) never decreases;
//   - depth-bound: at dispatch, outstanding requests never exceed the
//     dispatch depth D in force;
//   - work-conservation: when a completion leaves the queue non-empty,
//     the dispatch window is full (inflight ≥ D) — the device never
//     idles against a backlog;
//   - proportional-share: per audit window, any two continuously
//     backlogged flows' normalized service (cost/weight) differs by at
//     most the SFQ(D) fairness bound (D+1)(c_f/w_f + c_g/w_g), within
//     slack (local check; skipped under DSFQ coordination, which
//     intentionally skews local shares);
//   - total-proportional-share: the cluster-wide analog under
//     coordination, comparing flows continuously backlogged on the
//     same set of schedulers;
//   - tenant-proportional-share / total-tenant-proportional-share: the
//     hierarchical analogs with a share tree attached (SetShares):
//     each tenant's aggregate normalized service (total service over
//     the summed effective weights of its qualifying members) is a
//     weighted average of its members' per-flow ratios, so any
//     tenant-pair difference is bounded by the worst member-pair
//     bound — checked per window, locally and cluster-wide;
//   - broker-conservation: the sum of the schedulers' reported local
//     service vectors equals the broker's global totals, checked at
//     every exchange.
//
// Live reweights (share-tree epoch changes) open a bounded
// reconvergence window: share checks are suspended for windows
// overlapping [t, t + RecoveryPeriods × CoordinationPeriod] after a
// change at t, because windowed normalized service mixes service
// earned under two different weights. Tag invariants are NOT relaxed —
// monotonicity and consistency must hold through a reweight, which is
// exactly the tag-time-resolution contract.
//
// The auditor is wired through cluster.Instrument (or directly via
// Probe) and accumulates Violations; a clean run reports none. Checks
// exposes per-invariant evaluation counts so tests can assert an
// invariant was actually exercised rather than vacuously skipped.
package audit

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ibis/internal/broker"
	"ibis/internal/iosched"
	"ibis/internal/storage"
)

// Options tune the auditor.
type Options struct {
	// Window is the proportional-share audit period in virtual seconds
	// (default 5).
	Window float64
	// ShareSlack is the relative slack multiplied onto the theoretical
	// fairness bound to absorb device-model noise and window-boundary
	// effects (default 0.5, i.e. bound × 1.5).
	ShareSlack float64
	// MinWindowRequests is the minimum completions a flow needs inside
	// a window before it participates in share checks (default 4).
	MinWindowRequests int
	// BacklogSlack is the fraction of a window a flow's queue may be
	// empty while still counting as continuously backlogged for the
	// share checks (default 0.02). The fairness bound only applies to
	// backlogged flows; a small tolerance keeps closed-loop workloads
	// with instantaneous resubmission gaps eligible.
	BacklogSlack float64
	// CoordinationPeriod is the broker exchange period in seconds,
	// used to size the staleness allowance of the cluster-level share
	// check (default 1, matching the paper's heartbeat piggyback).
	CoordinationPeriod float64
	// FederationStaleness is the extra staleness (seconds) a federated
	// coordination plane adds on top of the exchange period: service on
	// another partition is visible only after that partition's uplink
	// and this partition's downlink, so the cluster wires two
	// aggregation periods plus slack here. Non-zero switches the
	// cluster-level share check into the share-federated regime: same
	// invariant, wider — and still CI-enforced — staleness term.
	FederationStaleness float64
	// RecoveryPeriods is K: how many coordination periods after a
	// degraded scheduler recovers the cluster-level share bound is
	// still relaxed before it must re-tighten (default 5).
	RecoveryPeriods int
	// MaxViolations caps stored violations; excess ones are counted
	// but dropped (default 256).
	MaxViolations int
}

func (o *Options) defaults() {
	if o.Window <= 0 {
		o.Window = 5
	}
	if o.ShareSlack <= 0 {
		o.ShareSlack = 0.5
	}
	if o.MinWindowRequests <= 0 {
		o.MinWindowRequests = 4
	}
	if o.BacklogSlack <= 0 {
		o.BacklogSlack = 0.02
	}
	if o.CoordinationPeriod <= 0 {
		o.CoordinationPeriod = 1
	}
	if o.RecoveryPeriods <= 0 {
		o.RecoveryPeriods = 5
	}
	if o.MaxViolations <= 0 {
		o.MaxViolations = 256
	}
}

// Violation is one observed invariant breach.
type Violation struct {
	// Time is the virtual time of the violating event (for window
	// checks, the window end).
	Time float64
	// Invariant names the breached property (see package comment).
	Invariant string
	// Node and Dev locate the scheduler (-1/"" for cluster-level and
	// broker checks).
	Node int
	Dev  string
	// App is the implicated application, when one is identifiable.
	App iosched.AppID
	// Detail is a human-readable description with the numbers.
	Detail string
}

// String renders the violation.
func (v Violation) String() string {
	where := "cluster"
	if v.Node >= 0 {
		where = fmt.Sprintf("node%d/%s", v.Node, v.Dev)
	}
	return fmt.Sprintf("t=%.3fs %s [%s] app=%s: %s", v.Time, v.Invariant, where, v.App, v.Detail)
}

// Auditor evaluates scheduler invariants online. It is not safe for
// concurrent use; the simulation is single-threaded by construction.
type Auditor struct {
	opts       Options
	scheds     []*schedState
	byKey      map[string]*schedState
	cluster    *clusterState
	brokers    []*broker.Broker
	violations []Violation
	dropped    uint64
	checks     map[string]uint64
	lastTime   float64

	// Degradation bookkeeping (see NoteDegradeStart): skips are the
	// cluster-level relaxation intervals — each degraded stretch plus
	// K recovery periods of grace — and openSkips tracks the interval
	// each currently-degraded scheduler opened.
	skips     []span
	openSkips map[string]int

	// Epoch bookkeeping (see NoteEpochChange): reconvergence intervals
	// around live weight changes, during which share checks (but not
	// tag checks) are suspended.
	epochSkips []span
	// shares attributes apps to tenants for the hierarchical checks
	// (nil disables them).
	shares broker.ShareView
}

// SetShares attaches the share tree view used to group flows into
// tenants for the hierarchical proportional-share invariants.
func (a *Auditor) SetShares(v broker.ShareView) { a.shares = v }

// NoteEpochChange records a live weight change at virtual time t: all
// share checks are suspended for windows overlapping the reconvergence
// interval [t, t + RecoveryPeriods × CoordinationPeriod]. Wire it to
// shares.Tree.OnChange. Windows past the interval are checked again —
// the system must actually reconverge to the new targets.
func (a *Auditor) NoteEpochChange(t float64) {
	a.count("epoch-noted")
	grace := float64(a.opts.RecoveryPeriods) * a.opts.CoordinationPeriod
	a.epochSkips = append(a.epochSkips, span{from: t, to: t + grace})
}

// epochSkipWindow reports whether [ws, we) overlaps any reweight
// reconvergence interval.
func (a *Auditor) epochSkipWindow(ws, we float64) bool {
	for _, sp := range a.epochSkips {
		if sp.from < we && ws < sp.to {
			return true
		}
	}
	return false
}

// span is a virtual-time interval; to is +Inf while still open.
type span struct{ from, to float64 }

// New creates an auditor.
func New(opts Options) *Auditor {
	opts.defaults()
	return &Auditor{
		opts:      opts,
		byKey:     make(map[string]*schedState),
		checks:    make(map[string]uint64),
		openSkips: make(map[string]int),
	}
}

// Probe returns the lifecycle probe auditing one scheduler, labeled
// with its node index and device name. SFQ schedulers get the full
// invariant set; other policies get lifecycle sanity checks only.
func (a *Auditor) Probe(node int, dev string, sched iosched.Scheduler) iosched.Probe {
	s := &schedState{
		a:     a,
		node:  node,
		dev:   dev,
		id:    len(a.scheds),
		flows: make(map[iosched.AppID]*flowAudit),
	}
	if sfq, ok := sched.(*iosched.SFQ); ok {
		s.sfq = true
		s.coordinated = sfq.Coordinated()
	} else if rb, ok := sched.(readSFQBacked); ok {
		// cgroups Weight: reads pass through an inner SFQ, writes are
		// uncontrolled pass-through — audit the controlled half only.
		s.sfq = true
		s.readsOnly = true
		s.coordinated = rb.ReadSFQ().Coordinated()
	}
	if s.coordinated {
		if a.cluster == nil {
			a.cluster = &clusterState{a: a, flows: make(map[iosched.AppID]*clusterFlow)}
		}
		a.cluster.members++
	}
	a.scheds = append(a.scheds, s)
	a.byKey[schedKey(node, dev)] = s
	return s
}

func schedKey(node int, dev string) string { return fmt.Sprintf("%d/%s", node, dev) }

// NoteDegradeStart records that the scheduler at (node, dev) suspended
// DSFQ coordination at time t. The auditor switches invariant regimes
// for it: the cluster-wide total-share bound stops applying (the
// degraded member no longer tracks remote service), the *local*
// proportional-share bound starts applying to it (the guarantee
// degradation preserves), and per-flow start-tag monotonicity is reset
// once — suspension clamps accumulated delay-rule debt down to the
// scheduler's virtual time, which legitimately regresses tags at that
// single instant.
func (a *Auditor) NoteDegradeStart(node int, dev string, t float64) {
	a.count("degrade-noted")
	if s := a.byKey[schedKey(node, dev)]; s != nil {
		s.degraded = append(s.degraded, span{from: t, to: math.Inf(1)})
		for _, f := range s.flows {
			f.lastStart = 0
		}
	}
	key := schedKey(node, dev)
	a.openSkips[key] = len(a.skips)
	a.skips = append(a.skips, span{from: t, to: math.Inf(1)})
}

// NoteDegradeEnd records recovery at time t. The scheduler's local
// degraded regime ends immediately; the cluster-level bound stays
// relaxed for K = RecoveryPeriods coordination periods more, after
// which total-service proportionality must re-tighten.
func (a *Auditor) NoteDegradeEnd(node int, dev string, t float64) {
	a.count("recover-noted")
	if s := a.byKey[schedKey(node, dev)]; s != nil {
		if n := len(s.degraded); n > 0 && math.IsInf(s.degraded[n-1].to, 1) {
			s.degraded[n-1].to = t
		}
	}
	key := schedKey(node, dev)
	if idx, ok := a.openSkips[key]; ok {
		grace := float64(a.opts.RecoveryPeriods) * a.opts.CoordinationPeriod
		a.skips[idx].to = t + grace
		delete(a.openSkips, key)
	}
}

// skipWindow reports whether [ws, we) overlaps any cluster-level
// relaxation interval.
func (a *Auditor) skipWindow(ws, we float64) bool {
	for _, sp := range a.skips {
		if sp.from < we && ws < sp.to {
			return true
		}
	}
	return false
}

// AttachBroker audits service conservation on every exchange of b.
func (a *Auditor) AttachBroker(b *broker.Broker) {
	a.brokers = append(a.brokers, b)
	b.SetProbe(func(string, *broker.Broker) { a.checkBroker(b) })
}

// AttachBrokerDeferred audits b's conservation only at Finish. For
// partition brokers: their exchanges run on partition shards inside
// parallel fabric windows, where a live probe would mutate the auditor
// concurrently with the coordinator-shard probes.
func (a *Auditor) AttachBrokerDeferred(b *broker.Broker) {
	a.brokers = append(a.brokers, b)
}

// AttachAggregator audits the federation root on every applied uplink:
// the per-partition mirrors must sum to the global per-app quanta and
// their tenant regrouping must match the global tenant quanta — exact
// int64 equalities, no tolerance (invariant federation-conservation).
func (a *Auditor) AttachAggregator(ag *broker.Aggregator) {
	ag.SetProbe(func() {
		a.count("federation-conservation")
		if err := ag.CheckConservation(); err != nil {
			a.violate(Violation{
				Time: a.lastTime, Invariant: "federation-conservation", Node: -1,
				Detail: err.Error(),
			})
		}
	})
}

// Finish closes the open audit windows and re-checks broker
// conservation. Call it once the simulation has drained; it is safe to
// call more than once.
func (a *Auditor) Finish() {
	for _, s := range a.scheds {
		s.roll(a.lastTime)
		s.closeWindow()
	}
	if a.cluster != nil {
		a.cluster.roll(a.lastTime)
		a.cluster.closeWindow()
	}
	for _, b := range a.brokers {
		a.checkBroker(b)
	}
}

// Violations returns the recorded breaches (up to MaxViolations).
func (a *Auditor) Violations() []Violation {
	out := make([]Violation, len(a.violations))
	copy(out, a.violations)
	return out
}

// ViolationCount returns the total number of breaches observed,
// including ones dropped past the MaxViolations cap.
func (a *Auditor) ViolationCount() uint64 {
	return uint64(len(a.violations)) + a.dropped
}

// Checks returns per-invariant evaluation counts — how many times each
// property was actually tested.
func (a *Auditor) Checks() map[string]uint64 {
	out := make(map[string]uint64, len(a.checks))
	for k, v := range a.checks {
		out[k] = v
	}
	return out
}

// Err returns nil for a clean run, else an error summarizing the first
// violations.
func (a *Auditor) Err() error {
	if a.ViolationCount() == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d invariant violation(s)", a.ViolationCount())
	for i, v := range a.violations {
		if i >= 5 {
			fmt.Fprintf(&b, "; ...")
			break
		}
		fmt.Fprintf(&b, "; %s", v.String())
	}
	return fmt.Errorf("%s", b.String())
}

func (a *Auditor) count(inv string) { a.checks[inv]++ }

func (a *Auditor) violate(v Violation) {
	if len(a.violations) >= a.opts.MaxViolations {
		a.dropped++
		return
	}
	a.violations = append(a.violations, v)
}

// checkBroker verifies that the per-app sum of the latest local service
// vectors equals the broker's incrementally maintained totals.
func (a *Auditor) checkBroker(b *broker.Broker) {
	a.count("broker-conservation")
	sums := b.ReportedTotals()
	for _, app := range b.Apps() {
		total := b.Total(app)
		if diff := math.Abs(sums[app] - total); diff > 1e-6*math.Max(1, math.Abs(total)) {
			a.violate(Violation{
				Time: a.lastTime, Invariant: "broker-conservation", Node: -1, App: app,
				Detail: fmt.Sprintf("sum of reports %.6g != broker total %.6g (diff %.3g)", sums[app], total, diff),
			})
		}
	}
}

// flowAudit is one application's per-scheduler audit state.
type flowAudit struct {
	lastStart float64 // last start tag seen at arrival
	waiting   int     // arrived but not yet dispatched (queued)
	// Backlog tracking is time-weighted: zeroDur accumulates virtual
	// time the flow's queue spent empty this window. The SFQ fairness
	// bound applies to flows whose queue is continuously non-empty —
	// requests merely in flight are demand, not backlog — so the
	// share checks only compare flows that kept requests waiting.
	zeroSince float64 // when the queue last emptied (-1 while waiting > 0)
	zeroDur   float64 // empty-queue time accumulated this window
	// Window accumulators.
	service  float64
	requests int
	weight   float64
	maxUnit  float64 // running max cost/weight (the bound's c_f/w_f)
}

// schedState audits one scheduler.
// readSFQBacked is satisfied by schedulers that wrap an SFQ queue for
// reads while passing writes through uncontrolled (cgroups Weight).
type readSFQBacked interface {
	ReadSFQ() *iosched.SFQ
}

type schedState struct {
	a           *Auditor
	node        int
	dev         string
	id          int
	sfq         bool
	readsOnly   bool // SFQ invariants apply to read-class requests only
	coordinated bool

	lastVTime   float64
	lastDepth   int
	windowStart float64
	maxDepth    int // max depth seen this window
	flows       map[iosched.AppID]*flowAudit
	// degraded intervals (NoteDegradeStart/End): while one is open the
	// scheduler runs pure local SFQ(D), so local proportional sharing
	// is checked even though the scheduler is nominally coordinated.
	degraded []span
}

// fullyDegraded reports whether [ws, we) lies inside one degraded
// interval — only then was every completion in the window produced
// under pure local fairness.
func (s *schedState) fullyDegraded(ws, we float64) bool {
	for _, sp := range s.degraded {
		if ws >= sp.from && we <= sp.to {
			return true
		}
	}
	return false
}

func (s *schedState) flow(app iosched.AppID) *flowAudit {
	f := s.flows[app]
	if f == nil {
		// A new flow counts as empty since the window opened.
		f = &flowAudit{zeroSince: s.windowStart}
		s.flows[app] = f
	}
	return f
}

// tagEps is the float-comparison slack for tag arithmetic.
func tagEps(x, y float64) float64 { return 1e-9 * (math.Abs(x) + math.Abs(y) + 1) }

// sample captures everything the invariant checks read from a request
// at probe time. Request objects are pooled and retagged after
// completion, so deferred auditing (see Deferred) must copy the fields
// eagerly rather than hold the pointer.
type sample struct {
	app    iosched.AppID
	class  iosched.Class
	start  float64
	finish float64
	cost   float64
	weight float64
	st     iosched.ProbeState
}

func makeSample(req *iosched.Request, st iosched.ProbeState) sample {
	return sample{
		app:    req.App,
		class:  req.Class,
		start:  req.StartTag(),
		finish: req.FinishTag(),
		cost:   req.Cost(),
		weight: req.Weight(),
		st:     st,
	}
}

// Observe implements iosched.Probe.
func (s *schedState) Observe(req *iosched.Request, st iosched.ProbeState) {
	smp := makeSample(req, st)
	s.observeSample(&smp)
}

// observeSample runs the full invariant battery on one captured
// lifecycle event. It is the single entry point for both the live path
// (Observe) and the deferred sharded path (Deferred.Finish).
func (s *schedState) observeSample(smp *sample) {
	a := s.a
	st := smp.st
	if st.Time > a.lastTime {
		a.lastTime = st.Time
	}
	a.count("lifecycle")
	if st.Queued < 0 || st.InFlight < 0 {
		a.violate(Violation{Time: st.Time, Invariant: "lifecycle", Node: s.node, Dev: s.dev, App: smp.app,
			Detail: fmt.Sprintf("negative counters: queued=%d inflight=%d", st.Queued, st.InFlight)})
	}
	if st.Event == iosched.ProbeComplete && st.Latency < 0 {
		a.violate(Violation{Time: st.Time, Invariant: "lifecycle", Node: s.node, Dev: s.dev, App: smp.app,
			Detail: fmt.Sprintf("negative latency %g", st.Latency)})
	}

	s.roll(st.Time)
	if s.coordinated && a.cluster != nil {
		a.cluster.roll(st.Time)
	}
	if st.Depth > s.maxDepth {
		s.maxDepth = st.Depth
	}
	s.lastDepth = st.Depth
	if s.readsOnly && smp.class.OpKind() != storage.Read {
		// Uncontrolled write-back pass-through: lifecycle sanity only.
		return
	}

	f := s.flow(smp.app)
	switch st.Event {
	case iosched.ProbeArrive:
		if f.waiting == 0 && f.zeroSince >= 0 {
			if from := math.Max(f.zeroSince, s.windowStart); st.Time > from {
				f.zeroDur += st.Time - from
			}
			f.zeroSince = -1
		}
		f.waiting++
		if s.sfq {
			a.count("start-tag-monotonicity")
			if smp.start < f.lastStart-tagEps(smp.start, f.lastStart) {
				a.violate(Violation{Time: st.Time, Invariant: "start-tag-monotonicity", Node: s.node, Dev: s.dev, App: smp.app,
					Detail: fmt.Sprintf("start tag %.9g < previous %.9g", smp.start, f.lastStart)})
			}
			f.lastStart = smp.start
			a.count("tag-consistency")
			want := smp.start + smp.cost/smp.weight
			if math.Abs(smp.finish-want) > tagEps(smp.finish, want) {
				a.violate(Violation{Time: st.Time, Invariant: "tag-consistency", Node: s.node, Dev: s.dev, App: smp.app,
					Detail: fmt.Sprintf("finish tag %.9g != start %.9g + cost/w %.9g", smp.finish, smp.start, smp.cost/smp.weight)})
			}
			if smp.start < st.VTime-tagEps(smp.start, st.VTime) {
				a.violate(Violation{Time: st.Time, Invariant: "tag-consistency", Node: s.node, Dev: s.dev, App: smp.app,
					Detail: fmt.Sprintf("start tag %.9g below virtual time %.9g at arrival", smp.start, st.VTime)})
			}
		}
		if s.coordinated && a.cluster != nil {
			a.cluster.arrive(smp.app, s.id, st.Time)
		}
	case iosched.ProbeDispatch:
		f.waiting--
		if f.waiting <= 0 {
			f.waiting = 0
			f.zeroSince = st.Time
		}
		if s.coordinated && a.cluster != nil {
			a.cluster.dispatch(smp.app, s.id, st.Time)
		}
		if s.sfq {
			a.count("vtime-monotonicity")
			if st.VTime < s.lastVTime-tagEps(st.VTime, s.lastVTime) {
				a.violate(Violation{Time: st.Time, Invariant: "vtime-monotonicity", Node: s.node, Dev: s.dev, App: smp.app,
					Detail: fmt.Sprintf("virtual time %.9g < previous %.9g", st.VTime, s.lastVTime)})
			}
			s.lastVTime = st.VTime
			if st.Depth > 0 {
				a.count("depth-bound")
				if st.InFlight > st.Depth {
					a.violate(Violation{Time: st.Time, Invariant: "depth-bound", Node: s.node, Dev: s.dev, App: smp.app,
						Detail: fmt.Sprintf("dispatched with %d in flight > depth %d", st.InFlight, st.Depth)})
				}
			}
		}
	case iosched.ProbeComplete:
		if s.sfq && st.Depth > 0 {
			a.count("work-conservation")
			if st.Queued > 0 && st.InFlight < st.Depth {
				a.violate(Violation{Time: st.Time, Invariant: "work-conservation", Node: s.node, Dev: s.dev, App: smp.app,
					Detail: fmt.Sprintf("queue has %d waiting but only %d of %d slots in flight", st.Queued, st.InFlight, st.Depth)})
			}
		}
		f.service += smp.cost
		f.requests++
		f.weight = smp.weight
		if u := smp.cost / smp.weight; u > f.maxUnit {
			f.maxUnit = u
		}
		if s.coordinated && a.cluster != nil {
			a.cluster.complete(smp.app, smp.cost, smp.weight, s.id, st.Time)
		}
	}
}

// roll closes audit windows up to time t.
func (s *schedState) roll(t float64) {
	for w := s.a.opts.Window; t >= s.windowStart+w; s.windowStart += w {
		s.closeWindow()
	}
}

// closeWindow runs the per-window proportional-share check and resets
// the window accumulators. The local check applies to uncoordinated
// SFQ schedulers; under DSFQ coordination the delay rule intentionally
// skews local shares toward total-service fairness, so the cluster
// state checks the global analog instead.
func (s *schedState) closeWindow() {
	w := s.a.opts.Window
	end := s.windowStart + w
	// Accrue open empty-queue intervals up to the window end.
	for _, f := range s.flows {
		if f.zeroSince >= 0 {
			if from := math.Max(f.zeroSince, s.windowStart); end > from {
				f.zeroDur += end - from
			}
			f.zeroSince = end
		}
	}
	invariant := ""
	switch {
	case s.sfq && !s.coordinated:
		invariant = "proportional-share"
	case s.sfq && s.coordinated && s.fullyDegraded(s.windowStart, end):
		// Degradation's contract: with the delay rule suspended the
		// scheduler is a plain local SFQ(D), so the per-node bound
		// applies for windows spent fully degraded.
		invariant = "proportional-share-degraded"
	}
	if invariant != "" && s.a.epochSkipWindow(s.windowStart, end) {
		// A live reweight landed in (or near) this window: normalized
		// service mixes the old and new weights, so share comparisons
		// are suspended for the declared reconvergence interval.
		s.a.count("share-skipped-epoch")
		invariant = ""
	}
	if invariant != "" {
		maxZero := w * s.a.opts.BacklogSlack
		apps := make([]iosched.AppID, 0, len(s.flows))
		for app, f := range s.flows {
			if f.zeroDur <= maxZero && f.requests >= s.a.opts.MinWindowRequests && f.weight > 0 {
				apps = append(apps, app)
			}
		}
		sort.Slice(apps, func(i, j int) bool { return apps[i] < apps[j] })
		d := s.maxDepth
		if d < 1 {
			d = 1
		}
		for i := 0; i < len(apps); i++ {
			for j := i + 1; j < len(apps); j++ {
				fi, fj := s.flows[apps[i]], s.flows[apps[j]]
				s.a.count(invariant)
				ri, rj := fi.service/fi.weight, fj.service/fj.weight
				bound := float64(d+1) * (fi.maxUnit + fj.maxUnit) * (1 + s.a.opts.ShareSlack)
				if diff := math.Abs(ri - rj); diff > bound {
					s.a.violate(Violation{
						Time: s.windowStart + s.a.opts.Window, Invariant: invariant,
						Node: s.node, Dev: s.dev, App: apps[i],
						Detail: fmt.Sprintf("window [%.1fs,%.1fs): normalized service %s=%.4g vs %s=%.4g, |diff| %.4g > bound %.4g (D=%d)",
							s.windowStart, s.windowStart+s.a.opts.Window, apps[i], ri, apps[j], rj, math.Abs(ri-rj), bound, d),
					})
				}
			}
		}
		// Hierarchical check: a tenant's aggregate normalized service
		// (Σ service / Σ effective weight over qualifying members) is a
		// weighted average of its members' per-flow ratios, so any
		// tenant-pair difference is bounded by the worst member-pair
		// bound. Singleton-vs-singleton pairs duplicate the per-app
		// check above and are skipped.
		if s.a.shares != nil && len(apps) > 1 {
			names, aggs := tenantAggregates(apps, s.a.shares, func(app iosched.AppID) (float64, float64, float64) {
				f := s.flows[app]
				return f.service, f.weight, f.maxUnit
			})
			for i := 0; i < len(names); i++ {
				for j := i + 1; j < len(names); j++ {
					ti, tj := aggs[names[i]], aggs[names[j]]
					if ti.members < 2 && tj.members < 2 {
						continue
					}
					s.a.count("tenant-" + invariant)
					ri, rj := ti.service/ti.weight, tj.service/tj.weight
					bound := float64(d+1) * (ti.maxUnit + tj.maxUnit) * (1 + s.a.opts.ShareSlack)
					if diff := math.Abs(ri - rj); diff > bound {
						s.a.violate(Violation{
							Time: s.windowStart + s.a.opts.Window, Invariant: "tenant-" + invariant,
							Node: s.node, Dev: s.dev,
							Detail: fmt.Sprintf("window [%.1fs,%.1fs): tenant normalized service %s=%.4g vs %s=%.4g, |diff| %.4g > bound %.4g (D=%d)",
								s.windowStart, s.windowStart+s.a.opts.Window, names[i], ri, names[j], rj, diff, bound, d),
						})
					}
				}
			}
		}
	}
	for _, f := range s.flows {
		f.service = 0
		f.requests = 0
		f.zeroDur = 0
	}
	s.maxDepth = s.lastDepth
}

// tenantAgg aggregates the qualifying member flows of one tenant for
// the hierarchical share checks.
type tenantAgg struct {
	service float64
	weight  float64 // Σ member effective weights
	maxUnit float64 // max member cost/weight
	members int
}

// tenantAggregates groups qualifying apps (already sorted) by tenant,
// accumulating in app order so float rounding is deterministic. get
// returns one flow's (service, weight, maxUnit) window accumulators.
func tenantAggregates(apps []iosched.AppID, shares broker.ShareView, get func(iosched.AppID) (float64, float64, float64)) ([]string, map[string]*tenantAgg) {
	aggs := make(map[string]*tenantAgg)
	var names []string
	for _, app := range apps {
		tn := shares.TenantOf(app)
		ag := aggs[tn]
		if ag == nil {
			ag = &tenantAgg{}
			aggs[tn] = ag
			names = append(names, tn)
		}
		service, weight, maxUnit := get(app)
		ag.service += service
		ag.weight += weight
		ag.members++
		if maxUnit > ag.maxUnit {
			ag.maxUnit = maxUnit
		}
	}
	sort.Strings(names)
	return names, aggs
}

// clusterFlow is one application's cluster-wide audit state under
// coordination, tracked per scheduler id.
type clusterFlow struct {
	waiting   map[int]int     // scheduler id → queued (undispatched) requests
	zeroSince map[int]float64 // scheduler id → when queue emptied (-1 while busy)
	zeroDur   map[int]float64 // scheduler id → empty-queue time this window
	service   float64
	requests  int
	weight    float64
	maxUnit   float64
}

// touch ensures per-scheduler backlog state exists, treating a newly
// seen scheduler as empty since the window opened.
func (f *clusterFlow) touch(sched int, windowStart float64) {
	if _, ok := f.zeroSince[sched]; !ok {
		f.zeroSince[sched] = windowStart
	}
}

// clusterState audits total-service proportional sharing across all
// coordinated schedulers.
type clusterState struct {
	a           *Auditor
	members     int
	windowStart float64
	maxDepth    int
	flows       map[iosched.AppID]*clusterFlow
}

func (c *clusterState) flow(app iosched.AppID) *clusterFlow {
	f := c.flows[app]
	if f == nil {
		f = &clusterFlow{
			waiting:   make(map[int]int),
			zeroSince: make(map[int]float64),
			zeroDur:   make(map[int]float64),
		}
		c.flows[app] = f
	}
	return f
}

func (c *clusterState) arrive(app iosched.AppID, sched int, t float64) {
	f := c.flow(app)
	f.touch(sched, c.windowStart)
	if f.waiting[sched] == 0 && f.zeroSince[sched] >= 0 {
		if from := math.Max(f.zeroSince[sched], c.windowStart); t > from {
			f.zeroDur[sched] += t - from
		}
		f.zeroSince[sched] = -1
	}
	f.waiting[sched]++
}

func (c *clusterState) dispatch(app iosched.AppID, sched int, t float64) {
	f := c.flow(app)
	f.touch(sched, c.windowStart)
	f.waiting[sched]--
	if f.waiting[sched] <= 0 {
		f.waiting[sched] = 0
		f.zeroSince[sched] = t
	}
}

func (c *clusterState) complete(app iosched.AppID, cost, weight float64, sched int, t float64) {
	f := c.flow(app)
	f.service += cost
	f.requests++
	f.weight = weight
	if u := cost / weight; u > f.maxUnit {
		f.maxUnit = u
	}
	// Track the deepest dispatch bound any coordinated scheduler used.
	for _, s := range c.a.scheds {
		if s.coordinated && s.maxDepth > c.maxDepth {
			c.maxDepth = s.maxDepth
		}
	}
}

func (c *clusterState) roll(t float64) {
	for w := c.a.opts.Window; t >= c.windowStart+w; c.windowStart += w {
		c.closeWindow()
	}
}

// backloggedSet returns the scheduler ids a flow kept a non-empty
// queue on for (nearly) the whole window.
func (f *clusterFlow) backloggedSet(maxZero float64) map[int]bool {
	set := make(map[int]bool, len(f.zeroSince))
	for id := range f.zeroSince {
		if f.zeroDur[id] <= maxZero {
			set[id] = true
		}
	}
	return set
}

// closeWindow compares total normalized service between flows that
// share at least one continuously backlogged scheduler — the DSFQ
// regime: the delay rule at a shared scheduler compensates each flow
// for service received elsewhere, making *total* service proportional.
// The bound carries one (D+1)(c/w) term per coordinated scheduler plus
// a staleness term for service accrued during the coordination period
// but not yet reflected in the delay functions.
func (c *clusterState) closeWindow() {
	w := c.a.opts.Window
	end := c.windowStart + w
	// Accrue open empty-queue intervals up to the window end.
	for _, f := range c.flows {
		for id, since := range f.zeroSince {
			if since < 0 {
				continue
			}
			if from := math.Max(since, c.windowStart); end > from {
				f.zeroDur[id] += end - from
			}
			f.zeroSince[id] = end
		}
	}
	maxZero := w * c.a.opts.BacklogSlack
	apps := make([]iosched.AppID, 0, len(c.flows))
	sets := make(map[iosched.AppID]map[int]bool, len(c.flows))
	for app, f := range c.flows {
		if f.requests < c.a.opts.MinWindowRequests || f.weight <= 0 {
			continue
		}
		set := f.backloggedSet(maxZero)
		if len(set) == 0 {
			continue
		}
		apps = append(apps, app)
		sets[app] = set
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i] < apps[j] })
	d := c.maxDepth
	if d < 1 {
		d = 1
	}
	// While any member is degraded — and for K recovery periods after —
	// the delay functions are allowed to be stale, so the cluster-wide
	// bound is suspended (it relaxes to the per-node bounds the
	// degraded schedulers are checked against). Past the grace the
	// window is checked again: reconvergence must actually happen.
	skipped := c.a.skipWindow(c.windowStart, end)
	if skipped && len(apps) > 0 {
		c.a.count("total-proportional-share-skipped")
	}
	if !skipped && c.a.epochSkipWindow(c.windowStart, end) {
		// Reweight reconvergence: the delay functions are converging
		// toward the new targets for a bounded number of coordination
		// periods; past the grace the bound re-tightens.
		skipped = true
		if len(apps) > 0 {
			c.a.count("share-skipped-epoch")
		}
	}
	// Staleness allowance: up to one coordination period of each flow's
	// cluster-wide service rate may be unreported on both the rising
	// and falling edge of the window — plus, under a federated plane,
	// the hierarchy's aggregation lag (FederationStaleness), which also
	// renames the invariant to the share-federated regime.
	lag := c.a.opts.CoordinationPeriod + c.a.opts.FederationStaleness
	totalInv := "total-proportional-share"
	if c.a.opts.FederationStaleness > 0 {
		totalInv = "share-federated"
	}
	for i := 0; i < len(apps) && !skipped; i++ {
		for j := i + 1; j < len(apps); j++ {
			if !intersects(sets[apps[i]], sets[apps[j]]) {
				continue
			}
			fi, fj := c.flows[apps[i]], c.flows[apps[j]]
			c.a.count(totalInv)
			ri, rj := fi.service/fi.weight, fj.service/fj.weight
			stale := 2 * lag * (ri + rj) / w
			bound := float64(d+1)*(fi.maxUnit+fj.maxUnit)*float64(c.members+1)*(1+c.a.opts.ShareSlack) + stale
			if diff := math.Abs(ri - rj); diff > bound {
				c.a.violate(Violation{
					Time: end, Invariant: totalInv,
					Node: -1, App: apps[i],
					Detail: fmt.Sprintf("window [%.1fs,%.1fs): total normalized service %s=%.4g vs %s=%.4g, |diff| %.4g > bound %.4g (D=%d)",
						c.windowStart, end, apps[i], ri, apps[j], rj, diff, bound, d),
				})
			}
		}
	}
	// Hierarchical cluster-wide check, by the same weighted-average
	// argument as the local one: tenant aggregate ratios are bounded by
	// the worst member-pair bound. Tenant pairs qualify when their
	// members' backlogged-scheduler sets intersect and at least one
	// tenant has two or more qualifying members (singleton pairs
	// duplicate the per-app check).
	if !skipped && c.a.shares != nil && len(apps) > 1 {
		names, aggs := tenantAggregates(apps, c.a.shares, func(app iosched.AppID) (float64, float64, float64) {
			f := c.flows[app]
			return f.service, f.weight, f.maxUnit
		})
		union := make(map[string]map[int]bool, len(names))
		for _, app := range apps {
			tn := c.a.shares.TenantOf(app)
			if union[tn] == nil {
				union[tn] = make(map[int]bool)
			}
			for id := range sets[app] {
				union[tn][id] = true
			}
		}
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				ti, tj := aggs[names[i]], aggs[names[j]]
				if ti.members < 2 && tj.members < 2 {
					continue
				}
				if !intersects(union[names[i]], union[names[j]]) {
					continue
				}
				c.a.count("total-tenant-proportional-share")
				ri, rj := ti.service/ti.weight, tj.service/tj.weight
				stale := 2 * lag * (ri + rj) / w
				bound := float64(d+1)*(ti.maxUnit+tj.maxUnit)*float64(c.members+1)*(1+c.a.opts.ShareSlack) + stale
				if diff := math.Abs(ri - rj); diff > bound {
					c.a.violate(Violation{
						Time: end, Invariant: "total-tenant-proportional-share",
						Node: -1,
						Detail: fmt.Sprintf("window [%.1fs,%.1fs): tenant normalized service %s=%.4g vs %s=%.4g, |diff| %.4g > bound %.4g (D=%d)",
							c.windowStart, end, names[i], ri, names[j], rj, diff, bound, d),
					})
				}
			}
		}
	}
	for _, f := range c.flows {
		f.service = 0
		f.requests = 0
		for id := range f.zeroDur {
			f.zeroDur[id] = 0
		}
	}
}

// intersects reports whether two scheduler sets share an element.
func intersects(a, b map[int]bool) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for id := range a {
		if b[id] {
			return true
		}
	}
	return false
}
