package audit_test

import (
	"strings"
	"testing"

	"ibis/internal/audit"
	"ibis/internal/iosched"
	"ibis/internal/sim"
	"ibis/internal/storage"
)

// The positive tests prove the auditor stays quiet on correct
// schedulers; this one proves it is not quiet by construction. We feed
// the probe hand-crafted lifecycle streams that break each invariant
// and check that every breach is caught, that the violation cap holds,
// and that Err summarizes without truncating the count.
func TestAuditorDetectsInjectedViolations(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", storage.Spec{
		Name: "flat", ReadBW: 100e6, WriteBW: 100e6,
		Curve: []float64{1}, CurveDecay: 1, MinCurve: 1,
	})
	sched := iosched.NewSFQD(eng, dev, 2) // real SFQ so the full invariant set arms
	au := audit.New(audit.Options{MaxViolations: 3})
	p := au.Probe(0, "disk", sched)
	req := &iosched.Request{App: "x", Shares: iosched.FixedWeight(1), Class: iosched.PersistentRead, Size: 1e6}

	// 1: negative latency at completion.
	p.Observe(req, iosched.ProbeState{Event: iosched.ProbeComplete, Time: 0.5, Latency: -0.5})
	// 2: negative queue counter.
	p.Observe(req, iosched.ProbeState{Event: iosched.ProbeArrive, Time: 1.0, Queued: -1})
	// 3: dispatch overruns the depth bound.
	p.Observe(req, iosched.ProbeState{Event: iosched.ProbeDispatch, Time: 1.5, InFlight: 5, Depth: 2})
	// 4: virtual time moves backwards across dispatches.
	p.Observe(req, iosched.ProbeState{Event: iosched.ProbeDispatch, Time: 2.0, InFlight: 1, Depth: 2, VTime: 10})
	p.Observe(req, iosched.ProbeState{Event: iosched.ProbeDispatch, Time: 2.5, InFlight: 2, Depth: 2, VTime: 5})
	// 5: idle dispatch slots while requests wait (work conservation).
	p.Observe(req, iosched.ProbeState{Event: iosched.ProbeComplete, Time: 3.0, Queued: 3, InFlight: 0, Depth: 2, Latency: 0.1})

	if got := au.ViolationCount(); got != 5 {
		for _, v := range au.Violations() {
			t.Logf("violation: %s", v)
		}
		t.Fatalf("ViolationCount() = %d, want 5 injected breaches", got)
	}
	if got := len(au.Violations()); got != 3 {
		t.Fatalf("retained %d violations, want MaxViolations cap of 3", got)
	}
	err := au.Err()
	if err == nil {
		t.Fatal("Err() = nil despite violations")
	}
	if !strings.Contains(err.Error(), "5 invariant violation") {
		t.Fatalf("Err() lost the dropped-violation count: %v", err)
	}
	want := []string{"lifecycle", "lifecycle", "depth-bound"}
	for i, v := range au.Violations() {
		if v.Invariant != want[i] {
			t.Fatalf("violation %d is %q, want %q", i, v.Invariant, want[i])
		}
	}
}

// A probed non-SFQ scheduler must get lifecycle checks only — the SFQ
// invariants are meaningless there and would misfire.
func TestAuditorLifecycleOnlyForUntaggedSchedulers(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", storage.Spec{
		Name: "flat", ReadBW: 100e6, WriteBW: 100e6,
		Curve: []float64{1}, CurveDecay: 1, MinCurve: 1,
	})
	fifo := iosched.NewFIFO(eng, dev)
	au := audit.New(audit.Options{})
	fifo.SetProbe(au.Probe(0, "disk", fifo))
	for i := 0; i < 8; i++ {
		fifo.Submit(&iosched.Request{App: "a", Shares: iosched.FixedWeight(1), Class: iosched.PersistentRead, Size: 1e6})
	}
	eng.Run()
	au.Finish()
	if err := au.Err(); err != nil {
		t.Fatalf("FIFO run flagged: %v", err)
	}
	checks := au.Checks()
	if checks["lifecycle"] == 0 {
		t.Fatal("lifecycle checks never ran")
	}
	for _, inv := range []string{"start-tag-monotonicity", "tag-consistency", "vtime-monotonicity", "depth-bound", "work-conservation", "proportional-share"} {
		if checks[inv] != 0 {
			t.Fatalf("SFQ invariant %q evaluated %d times on a FIFO scheduler", inv, checks[inv])
		}
	}
}
