package broker

import (
	"bytes"
	"testing"
)

func decodeInto(t *testing.T, d *DeltaDec, msg []byte) (bool, map[string]int64) {
	t.Helper()
	applied := map[string]int64{}
	snap, _, err := d.Decode(msg, func(name string, old, new int64) {
		applied[name] = new
	})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return snap, applied
}

func TestDeltaRoundTrip(t *testing.T) {
	var enc DeltaEnc
	var dec DeltaDec
	cur := map[string]int64{"app-a": 10, "app-b": 3}
	msg, entries := enc.Encode(cur, true)
	if entries != 2 {
		t.Fatalf("entries = %d, want 2", entries)
	}
	snap, _ := decodeInto(t, &dec, msg)
	if !snap {
		t.Fatal("first message not flagged snapshot")
	}
	if st := dec.State(); st["app-a"] != 10 || st["app-b"] != 3 || len(st) != 2 {
		t.Fatalf("decoder state = %v", st)
	}

	// Second message: only the changed key travels, and the dict name
	// is not re-sent.
	cur["app-a"] = 15
	msg2, entries2 := enc.Encode(cur, false)
	if entries2 != 1 {
		t.Fatalf("delta entries = %d, want 1", entries2)
	}
	if bytes.Contains(msg2, []byte("app-a")) {
		t.Fatal("interned name re-sent on delta")
	}
	if len(msg2) >= len(msg) {
		t.Fatalf("delta (%dB) not smaller than snapshot (%dB)", len(msg2), len(msg))
	}
	if _, applied := decodeInto(t, &dec, msg2); applied["app-a"] != 15 || len(applied) != 1 {
		t.Fatalf("applied = %v", applied)
	}
}

func TestDeltaAbsentKnownKeyEncodesZero(t *testing.T) {
	var enc DeltaEnc
	var dec DeltaDec
	msg, _ := enc.Encode(map[string]int64{"a": 7, "b": 2}, true)
	decodeInto(t, &dec, msg)
	// "a" vanishes from the current state (retired app): the codec must
	// ship an explicit transition to zero.
	msg2, entries := enc.Encode(map[string]int64{"b": 2}, false)
	if entries != 1 {
		t.Fatalf("entries = %d, want 1 (the zeroing of a)", entries)
	}
	_, applied := decodeInto(t, &dec, msg2)
	if v, ok := applied["a"]; !ok || v != 0 {
		t.Fatalf("applied = %v, want a -> 0", applied)
	}
	if st := dec.State(); len(st) != 1 || st["b"] != 2 {
		t.Fatalf("decoder state = %v, want only b=2", st)
	}
}

func TestDeltaNoChangeIsEmptyish(t *testing.T) {
	var enc DeltaEnc
	cur := map[string]int64{"a": 1, "b": 2, "c": 3}
	enc.Encode(cur, true)
	msg, entries := enc.Encode(cur, false)
	if entries != 0 {
		t.Fatalf("idle entries = %d, want 0", entries)
	}
	// Idle sync cost is O(1) bytes — the heart of the O(delta) claim.
	if len(msg) > 4 {
		t.Fatalf("idle message %d bytes, want <= 4", len(msg))
	}
}

func TestDeltaSeqGapRejected(t *testing.T) {
	var enc DeltaEnc
	var dec DeltaDec
	m1, _ := enc.Encode(map[string]int64{"a": 1}, true)
	m2, _ := enc.Encode(map[string]int64{"a": 2}, false)
	m3, _ := enc.Encode(map[string]int64{"a": 3}, false)
	decodeInto(t, &dec, m1)
	_ = m2 // lost on the wire
	if _, _, err := dec.Decode(m3, func(string, int64, int64) {}); err == nil {
		t.Fatal("decoder accepted a sequence gap")
	}
	// A snapshot heals the gap.
	m4, _ := enc.Encode(map[string]int64{"a": 4}, true)
	snap, applied := decodeInto(t, &dec, m4)
	if !snap || applied["a"] != 4 {
		t.Fatalf("snapshot resync failed: snap=%v applied=%v", snap, applied)
	}
}

func TestDeltaSnapshotZeroesStaleDecoderState(t *testing.T) {
	var enc DeltaEnc
	var dec DeltaDec
	m1, _ := enc.Encode(map[string]int64{"a": 5, "b": 9}, true)
	decodeInto(t, &dec, m1)
	// Encoder restarts from scratch (leader crash) with different
	// content; the decoder must zero what disappeared.
	enc = DeltaEnc{}
	m2, _ := enc.Encode(map[string]int64{"b": 4}, true)
	total := map[string]int64{"a": 5, "b": 9}
	if _, _, err := dec.Decode(m2, func(name string, old, new int64) {
		total[name] += new - old
	}); err != nil {
		t.Fatal(err)
	}
	if total["a"] != 0 || total["b"] != 4 {
		t.Fatalf("merged totals after snapshot = %v", total)
	}
	if st := dec.State(); len(st) != 1 || st["b"] != 4 {
		t.Fatalf("decoder state after snapshot = %v", st)
	}
}

func TestDeltaDecodeGarbageNeverPanics(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		{0xff},
		{0x01, 0x00, 0xff, 0xff, 0xff, 0xff, 0xff},
		bytes.Repeat([]byte{0x80}, 64),
		{0x01, 0x00, 0x01, 0xff}, // name length far beyond payload
	}
	for _, in := range inputs {
		var dec DeltaDec
		_, _, _ = dec.Decode(in, func(string, int64, int64) {})
	}
}

func TestDeltaTruncationsRejectedAtomically(t *testing.T) {
	var enc DeltaEnc
	full, _ := enc.Encode(map[string]int64{"alpha": 100, "beta": 7}, true)
	for cut := 0; cut < len(full); cut++ {
		var dec DeltaDec
		mutated := 0
		_, _, err := dec.Decode(full[:cut], func(string, int64, int64) { mutated++ })
		if err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(full))
		}
		if mutated != 0 {
			t.Fatalf("truncation at %d applied %d entries before failing", cut, mutated)
		}
		if len(dec.State()) != 0 {
			t.Fatalf("truncation at %d left decoder state %v", cut, dec.State())
		}
	}
}
