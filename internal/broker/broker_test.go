package broker

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ibis/internal/iosched"
	"ibis/internal/sim"
	"ibis/internal/storage"
)

func TestExchangeAggregatesAcrossSchedulers(t *testing.T) {
	b := New()
	b.Exchange("n1", map[iosched.AppID]float64{"A": 100, "B": 50})
	resp := b.Exchange("n2", map[iosched.AppID]float64{"A": 40})
	if resp.Apps["A"] != 140 {
		t.Fatalf("total A = %v, want 140", resp.Apps["A"])
	}
	if resp.Tenants["~A"] != 140 {
		t.Fatalf("tenant total ~A = %v, want 140", resp.Tenants["~A"])
	}
	if b.Total("B") != 50 {
		t.Fatalf("total B = %v, want 50", b.Total("B"))
	}
}

func TestExchangeIsCumulative(t *testing.T) {
	b := New()
	b.Exchange("n1", map[iosched.AppID]float64{"A": 100})
	b.Exchange("n1", map[iosched.AppID]float64{"A": 150}) // +50, not +150
	if got := b.Total("A"); got != 150 {
		t.Fatalf("total A = %v, want 150 (cumulative reporting)", got)
	}
}

func TestExchangeResponseScopedToReportedApps(t *testing.T) {
	b := New()
	b.Exchange("n1", map[iosched.AppID]float64{"A": 1, "B": 2})
	resp := b.Exchange("n2", map[iosched.AppID]float64{"B": 3})
	if _, ok := resp.Apps["A"]; ok {
		t.Fatal("response leaked app the scheduler does not serve")
	}
	if _, ok := resp.Tenants["~A"]; ok {
		t.Fatal("response leaked tenant the scheduler does not serve")
	}
	if resp.Apps["B"] != 5 {
		t.Fatalf("total B = %v, want 5", resp.Apps["B"])
	}
}

func TestBrokerAppsSorted(t *testing.T) {
	b := New()
	b.Exchange("n1", map[iosched.AppID]float64{"z": 1, "a": 1, "m": 1})
	apps := b.Apps()
	if len(apps) != 3 || apps[0] != "a" || apps[1] != "m" || apps[2] != "z" {
		t.Fatalf("Apps = %v", apps)
	}
}

func TestBrokerStats(t *testing.T) {
	b := New()
	b.Exchange("n1", map[iosched.AppID]float64{"A": 1, "B": 2})
	b.Exchange("n2", map[iosched.AppID]float64{"A": 3})
	st := b.Stats()
	if st.Exchanges != 2 || st.EntriesUp != 3 || st.EntriesDown != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// 3 entries up, 3 app entries down, 3 implicit-tenant entries down.
	if st.BytesApprox() != 9*24 {
		t.Fatalf("BytesApprox = %d", st.BytesApprox())
	}
}

type fakeReporter map[iosched.AppID]float64

func (f fakeReporter) CostVector() map[iosched.AppID]float64 {
	out := make(map[iosched.AppID]float64, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func TestClientOtherService(t *testing.T) {
	b := New()
	eng := sim.NewEngine()
	r1 := fakeReporter{"A": 100}
	r2 := fakeReporter{"A": 60}
	c1 := NewClient(eng, b, "n1", r1, 1)
	c2 := NewClient(eng, b, "n2", r2, 1)
	c1.ExchangeNow()
	c2.ExchangeNow()
	c1.ExchangeNow() // refresh n1's view after n2 reported
	if got := c1.OtherService("A"); got != 60 {
		t.Fatalf("n1 sees other service %v, want 60", got)
	}
	if got := c2.OtherService("A"); got != 100 {
		t.Fatalf("n2 sees other service %v, want 100", got)
	}
}

func TestClientUnknownAppZero(t *testing.T) {
	c := &Client{otherTenant: map[string]float64{}, tenantCache: map[iosched.AppID]string{}}
	if c.OtherService("nope") != 0 {
		t.Fatal("unknown app should have zero other-service")
	}
}

func TestClientNilBrokerNoSync(t *testing.T) {
	eng := sim.NewEngine()
	c := NewClient(eng, nil, "n1", fakeReporter{"A": 5}, 1)
	c.ExchangeNow()
	if c.OtherService("A") != 0 {
		t.Fatal("No Sync client returned non-zero other service")
	}
	if c.Rounds() != 0 {
		t.Fatal("No Sync client counted a round")
	}
}

func TestClientPeriodicDaemonTicks(t *testing.T) {
	b := New()
	eng := sim.NewEngine()
	NewClient(eng, b, "n1", fakeReporter{"A": 7}, 1)
	// Daemon ticks alone must not keep the sim alive.
	end := eng.Run()
	if end != 0 {
		t.Fatalf("daemon-only sim advanced to %v, want 0", end)
	}
	// With live work spanning 5.5s, ~5 exchanges happen.
	eng.Schedule(5.5, func() {})
	eng.Run()
	if got := b.Stats().Exchanges; got < 4 || got > 6 {
		t.Fatalf("exchanges = %d over 5.5s at 1s period, want ≈5", got)
	}
}

func TestClientDefaultPeriod(t *testing.T) {
	b := New()
	eng := sim.NewEngine()
	NewClient(eng, b, "n1", fakeReporter{}, 0) // invalid period -> 1s default
	eng.Schedule(2.5, func() {})
	eng.Run()
	if got := b.Stats().Exchanges; got != 2 {
		t.Fatalf("exchanges = %d, want 2", got)
	}
}

// Property: broker totals always equal the sum of the latest per-
// scheduler reports, regardless of interleaving.
func TestPropertyBrokerTotalsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New()
		latest := map[string]map[iosched.AppID]float64{}
		scheds := []string{"n1", "n2", "n3", "n4"}
		apps := []iosched.AppID{"A", "B", "C"}
		cums := map[string]map[iosched.AppID]float64{}
		for _, s := range scheds {
			cums[s] = map[iosched.AppID]float64{}
		}
		for i := 0; i < 40; i++ {
			s := scheds[rng.Intn(len(scheds))]
			vec := map[iosched.AppID]float64{}
			for _, a := range apps {
				if rng.Intn(2) == 0 {
					cums[s][a] += rng.Float64() * 100
				}
				if cums[s][a] > 0 {
					vec[a] = cums[s][a]
				}
			}
			b.Exchange(s, vec)
			if latest[s] == nil {
				latest[s] = map[iosched.AppID]float64{}
			}
			for a, v := range vec {
				latest[s][a] = v
			}
		}
		for _, a := range apps {
			want := 0.0
			for _, s := range scheds {
				want += latest[s][a]
			}
			if math.Abs(b.Total(a)-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Integration: two SFQ schedulers on two devices with a shared broker
// achieve total-service proportionality even when one app can only use
// one of the devices (the uneven-distribution problem of Section 5).
func TestCoordinationBalancesTotalService(t *testing.T) {
	eng := sim.NewEngine()
	spec := storage.Spec{
		Name: "flat", ReadBW: 100e6, WriteBW: 100e6,
		Curve: []float64{1}, CurveDecay: 1, MinCurve: 1,
	}
	dev1 := storage.NewDevice(eng, "d1", spec)
	dev2 := storage.NewDevice(eng, "d2", spec)
	s1 := iosched.NewSFQD(eng, dev1, 1)
	s2 := iosched.NewSFQD(eng, dev2, 1)
	b := New()
	c1 := NewClient(eng, b, "n1", s1.Accounting(), 0.5)
	c2 := NewClient(eng, b, "n2", s2.Accounting(), 0.5)
	s1.SetCoordinator(c1)
	s2.SetCoordinator(c2)

	// App X runs on both nodes; app Y only on node 1. Equal weights.
	// Without coordination X gets node2 exclusively plus half of node1
	// (total 1.5 shares vs Y's 0.5). With DSFQ delays, node 1 should
	// compensate Y so totals approach 1:1.
	var xBytes, yBytes float64
	keep := func(s *iosched.SFQ, app iosched.AppID, served *float64) {
		var issue func()
		issue = func() {
			s.Submit(&iosched.Request{
				App: app, Shares: iosched.FixedWeight(1), Class: iosched.PersistentRead, Size: 1e6,
				OnDone: func(float64) {
					*served += 1e6
					if eng.Now() < 60 {
						issue()
					}
				},
			})
		}
		for i := 0; i < 2; i++ {
			issue()
		}
	}
	keep(s1, "X", &xBytes)
	keep(s2, "X", &xBytes)
	keep(s1, "Y", &yBytes)
	eng.RunUntil(60)

	ratio := xBytes / yBytes
	if math.Abs(ratio-1) > 0.25 {
		t.Fatalf("coordinated total-service ratio X/Y = %.3f, want ≈1 (X=%.0f Y=%.0f)", ratio, xBytes, yBytes)
	}
}

// The same scenario without coordination must be visibly unfair,
// establishing that the previous test's fairness is the broker's doing.
func TestNoCoordinationIsUnfair(t *testing.T) {
	eng := sim.NewEngine()
	spec := storage.Spec{
		Name: "flat", ReadBW: 100e6, WriteBW: 100e6,
		Curve: []float64{1}, CurveDecay: 1, MinCurve: 1,
	}
	dev1 := storage.NewDevice(eng, "d1", spec)
	dev2 := storage.NewDevice(eng, "d2", spec)
	s1 := iosched.NewSFQD(eng, dev1, 1)
	s2 := iosched.NewSFQD(eng, dev2, 1)

	var xBytes, yBytes float64
	keep := func(s *iosched.SFQ, app iosched.AppID, served *float64) {
		var issue func()
		issue = func() {
			s.Submit(&iosched.Request{
				App: app, Shares: iosched.FixedWeight(1), Class: iosched.PersistentRead, Size: 1e6,
				OnDone: func(float64) {
					*served += 1e6
					if eng.Now() < 60 {
						issue()
					}
				},
			})
		}
		for i := 0; i < 2; i++ {
			issue()
		}
	}
	keep(s1, "X", &xBytes)
	keep(s2, "X", &xBytes)
	keep(s1, "Y", &yBytes)
	eng.RunUntil(60)

	if ratio := xBytes / yBytes; ratio < 2.5 {
		t.Fatalf("uncoordinated ratio X/Y = %.3f, want ≈3 (local fairness only)", ratio)
	}
}
