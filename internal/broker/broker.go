// Package broker implements IBIS's distributed I/O scheduling
// coordination (Section 5 of the paper): a centralized Scheduling Broker
// that aggregates each local scheduler's per-application service vector
// and returns the cluster-wide totals, plus the per-scheduler client
// that feeds those totals into the DSFQ delay rule of the local SFQ(D2)
// scheduler.
//
// In the Hadoop prototype the broker lives inside the YARN Resource
// Manager and its messages are piggybacked on the existing Node Manager
// heartbeats; here the exchange is modeled as a periodic call whose
// message sizes are accounted so the coordination overhead claims remain
// measurable.
package broker

import (
	"sort"

	"ibis/internal/iosched"
	"ibis/internal/sim"
)

// Stats tracks coordination traffic for overhead accounting.
type Stats struct {
	// Exchanges counts report/response round trips.
	Exchanges uint64
	// EntriesUp is the total number of (app, service) pairs sent by
	// schedulers to the broker.
	EntriesUp uint64
	// EntriesDown is the total number of pairs returned.
	EntriesDown uint64
}

// BytesApprox estimates the wire volume of the coordination traffic,
// assuming 8-byte service values plus 16-byte application identifiers.
func (s Stats) BytesApprox() uint64 {
	return (s.EntriesUp + s.EntriesDown) * 24
}

// Broker is the centralized aggregation point. It keeps, per reporting
// scheduler, the last cumulative service vector, and maintains the
// per-application totals incrementally — the state is "simply a vector
// of total I/O service amount for all the applications in the system".
type Broker struct {
	reports map[string]map[iosched.AppID]float64
	totals  map[iosched.AppID]float64
	stats   Stats
	probe   Probe
}

// Probe observes each completed exchange: the reporting scheduler's id
// plus the broker itself, for invariant auditing (e.g. service
// conservation: the per-app sum of the latest local vectors must equal
// the global totals).
type Probe func(scheduler string, b *Broker)

// SetProbe installs the exchange probe (nil disables).
func (b *Broker) SetProbe(p Probe) { b.probe = p }

// New creates an empty broker.
func New() *Broker {
	return &Broker{
		reports: make(map[string]map[iosched.AppID]float64),
		totals:  make(map[iosched.AppID]float64),
	}
}

// Exchange is one coordination round trip for the named scheduler: it
// reports its cumulative per-app service (cost units) and receives the
// cluster-wide totals for exactly the apps it reported — the response
// "is bounded by the number of applications that the scheduler
// currently serves".
func (b *Broker) Exchange(scheduler string, vector map[iosched.AppID]float64) map[iosched.AppID]float64 {
	prev := b.reports[scheduler]
	if prev == nil {
		prev = make(map[iosched.AppID]float64)
		b.reports[scheduler] = prev
	}
	for app, cum := range vector {
		b.totals[app] += cum - prev[app]
		prev[app] = cum
	}
	resp := make(map[iosched.AppID]float64, len(vector))
	for app := range vector {
		resp[app] = b.totals[app]
	}
	b.stats.Exchanges++
	b.stats.EntriesUp += uint64(len(vector))
	b.stats.EntriesDown += uint64(len(resp))
	if b.probe != nil {
		b.probe(scheduler, b)
	}
	return resp
}

// ReportedTotals sums the latest per-scheduler service vectors per app —
// the quantity that must equal the incrementally maintained totals if
// the broker conserves service.
func (b *Broker) ReportedTotals() map[iosched.AppID]float64 {
	sums := make(map[iosched.AppID]float64, len(b.totals))
	for _, vec := range b.reports {
		for app, cum := range vec {
			sums[app] += cum
		}
	}
	return sums
}

// Total returns the cluster-wide cumulative service for one app.
func (b *Broker) Total(app iosched.AppID) float64 { return b.totals[app] }

// Apps returns all known apps, sorted.
func (b *Broker) Apps() []iosched.AppID {
	ids := make([]iosched.AppID, 0, len(b.totals))
	for id := range b.totals {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Stats returns the accumulated traffic counters.
func (b *Broker) Stats() Stats { return b.stats }

// Reporter exposes the cumulative per-app service of a local scheduler;
// *iosched.Accounting satisfies it.
type Reporter interface {
	CostVector() map[iosched.AppID]float64
}

// Client performs the periodic exchange for one local scheduler and
// implements iosched.Coordinator: OtherService(app) returns the service
// the app has received on all *other* nodes, per the broker's latest
// response. A Client with a nil broker never coordinates (No Sync).
type Client struct {
	id       string
	broker   *Broker
	reporter Reporter
	other    map[iosched.AppID]float64
	rounds   uint64
}

var _ iosched.Coordinator = (*Client)(nil)

// NewClient wires a scheduler's accounting into the broker with the
// given coordination period (seconds; the paper uses 1 s, piggybacked on
// heartbeats). The periodic exchange is a daemon event: it does not keep
// the simulation alive once the workload drains.
func NewClient(eng *sim.Engine, b *Broker, id string, reporter Reporter, period float64) *Client {
	if period <= 0 {
		period = 1
	}
	c := &Client{
		id:       id,
		broker:   b,
		reporter: reporter,
		other:    make(map[iosched.AppID]float64),
	}
	var tick func()
	tick = func() {
		c.ExchangeNow()
		eng.ScheduleDaemon(period, tick)
	}
	eng.ScheduleDaemon(period, tick)
	return c
}

// ExchangeNow performs one immediate report/response round trip.
func (c *Client) ExchangeNow() {
	if c.broker == nil {
		return
	}
	vec := c.reporter.CostVector()
	totals := c.broker.Exchange(c.id, vec)
	for app, total := range totals {
		other := total - vec[app]
		if other < 0 {
			other = 0
		}
		c.other[app] = other
	}
	c.rounds++
}

// OtherService implements iosched.Coordinator.
func (c *Client) OtherService(app iosched.AppID) float64 {
	return c.other[app]
}

// Rounds returns the number of exchanges performed.
func (c *Client) Rounds() uint64 { return c.rounds }
