// Package broker implements IBIS's distributed I/O scheduling
// coordination (Section 5 of the paper): a centralized Scheduling Broker
// that aggregates each local scheduler's per-application service vector
// and returns the cluster-wide totals, plus the per-scheduler client
// that feeds those totals into the DSFQ delay rule of the local SFQ(D2)
// scheduler.
//
// In the Hadoop prototype the broker lives inside the YARN Resource
// Manager and its messages are piggybacked on the existing Node Manager
// heartbeats; here the exchange is modeled as a periodic call whose
// message sizes are accounted so the coordination overhead claims remain
// measurable.
//
// The exchange path is failure-aware: a Transport carries the round
// trips and may fail (broker outage, message loss) or delay responses.
// The Client reacts with bounded retries under exponential backoff, and
// when exchanges keep failing for at least one coordination period it
// degrades gracefully — suspending the DSFQ delay rule so the local
// scheduler falls back to pure local SFQ(D) fairness — then reconciles
// on recovery via the idempotent cumulative vectors. Scheduler restarts
// wipe the client's in-memory view and force an explicit re-register
// handshake before exchanges resume.
package broker

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ibis/internal/iosched"
	"ibis/internal/metrics"
	"ibis/internal/sim"
)

// Transport errors. ErrUnavailable means the broker could not be
// reached at all (outage or partition); ErrLost means a message was
// dropped in flight — the broker may or may not have applied the
// report, which the cumulative protocol makes safe to retry; ErrTimeout
// is synthesized by the client when a response outlives the retry
// policy's timeout.
var (
	ErrUnavailable = errors.New("broker: unavailable")
	ErrLost        = errors.New("broker: message lost")
	ErrTimeout     = errors.New("broker: exchange timed out")
)

// Stats tracks coordination traffic for overhead accounting.
type Stats struct {
	// Exchanges counts report/response round trips.
	Exchanges uint64
	// EntriesUp is the total number of (app, service) pairs sent by
	// schedulers to the broker.
	EntriesUp uint64
	// EntriesDown is the total number of pairs returned.
	EntriesDown uint64
	// TenantEntriesDown is the number of (tenant, service) aggregates
	// piggybacked on responses for the tenant-level delay rule.
	TenantEntriesDown uint64
}

// BytesApprox estimates the wire volume of the coordination traffic,
// assuming 8-byte service values plus 16-byte identifiers for both
// per-app entries and the piggybacked tenant aggregates.
func (s Stats) BytesApprox() uint64 {
	return (s.EntriesUp + s.EntriesDown + s.TenantEntriesDown) * 24
}

// Broker is the centralized aggregation point. It keeps, per reporting
// scheduler, the last cumulative service vector, and maintains the
// per-application totals incrementally — the state is "simply a vector
// of total I/O service amount for all the applications in the system".
type Broker struct {
	reports map[string]map[iosched.AppID]float64
	totals  map[iosched.AppID]float64
	retired map[iosched.AppID]bool
	// finals are tombstones: the cluster-wide total each retired app
	// had at retirement. They keep the service observable (Total)
	// after cleanup without participating in exchanges.
	finals map[iosched.AppID]float64
	// retireSnaps hold, per retired app, the per-scheduler entries
	// Retire scrubbed, so Revive can restore exact continuity instead
	// of rebuilding the total piecemeal from future exchanges.
	retireSnaps map[iosched.AppID]map[string]float64
	shares      ShareView
	stats       Stats
	probe       Probe
}

// ShareView is the slice of the share tree the coordination plane
// needs: tenant attribution for aggregation and the epoch to piggyback
// on responses. *shares.Tree implements it. A nil view treats every
// app as its own implicit singleton tenant, which reproduces the flat
// per-app coordination exactly.
type ShareView interface {
	TenantOf(app iosched.AppID) string
	Epoch() uint64
}

// SetShares attaches the share tree the broker aggregates tenants
// against (nil reverts to implicit singleton tenants).
func (b *Broker) SetShares(v ShareView) { b.shares = v }

func (b *Broker) tenantOf(app iosched.AppID) string {
	if b.shares != nil {
		return b.shares.TenantOf(app)
	}
	return implicitTenant(app)
}

// implicitTenant mirrors shares.ImplicitTenant without importing the
// shares package (which would be legal, but the coordination plane
// should not depend on the control plane's full API for one string).
func implicitTenant(app iosched.AppID) string { return "~" + string(app) }

// Response is one coordination response: the cluster-wide totals for
// the apps the scheduler reported, plus tenant-level aggregates and
// the share-tree epoch they were computed at.
type Response struct {
	// Apps maps each reported (non-retired) app to its cluster-wide
	// cumulative service.
	Apps map[iosched.AppID]float64
	// Tenants maps each tenant owning a reported app to the
	// cluster-wide cumulative service across ALL of that tenant's apps
	// — including apps this scheduler does not serve. This is the
	// aggregate the tenant-level DSFQ delay rule charges against, so
	// proportionality is enforced between tenants, not just between
	// the apps a single node happens to see.
	Tenants map[string]float64
	// Epoch is the share-tree version the tenant attribution was
	// resolved at. Clients invalidate cached app→tenant bindings when
	// it moves.
	Epoch uint64
}

// Probe observes each completed exchange: the reporting scheduler's id
// plus the broker itself, for invariant auditing (e.g. service
// conservation: the per-app sum of the latest local vectors must equal
// the global totals).
type Probe func(scheduler string, b *Broker)

// SetProbe installs the exchange probe (nil disables).
func (b *Broker) SetProbe(p Probe) { b.probe = p }

// New creates an empty broker.
func New() *Broker {
	return &Broker{
		reports:     make(map[string]map[iosched.AppID]float64),
		totals:      make(map[iosched.AppID]float64),
		retired:     make(map[iosched.AppID]bool),
		finals:      make(map[iosched.AppID]float64),
		retireSnaps: make(map[iosched.AppID]map[string]float64),
	}
}

// ResetReports models the broker process restarting with empty memory:
// every report vector and every live total is dropped, and the next
// exchanges rebuild them — each scheduler's full cumulative vector
// applies as a fresh delta from zero, so totals reconverge without
// double counting. Retirement state (flags, tombstones) survives: it
// is control-plane membership knowledge, not broker memory.
func (b *Broker) ResetReports() {
	b.reports = make(map[string]map[iosched.AppID]float64)
	b.totals = make(map[iosched.AppID]float64)
	b.retireSnaps = make(map[iosched.AppID]map[string]float64)
}

// Exchange is one coordination round trip for the named scheduler: it
// reports its cumulative per-app service (cost units) and receives the
// cluster-wide totals for exactly the apps it reported — the response
// "is bounded by the number of applications that the scheduler
// currently serves". The response is a fresh map each call; mutating it
// (or the request vector, afterwards) cannot corrupt broker state.
// Retired apps are skipped in both directions: their pruned state must
// not be resurrected by the stale entries local accounting still
// carries.
func (b *Broker) Exchange(scheduler string, vector map[iosched.AppID]float64) Response {
	prev := b.reports[scheduler]
	if prev == nil {
		prev = make(map[iosched.AppID]float64)
		b.reports[scheduler] = prev
	}
	up := 0
	for app, cum := range vector {
		if b.retired[app] {
			continue
		}
		b.totals[app] += cum - prev[app]
		prev[app] = cum
		up++
	}
	resp := Response{Apps: make(map[iosched.AppID]float64, up)}
	for app := range vector {
		if b.retired[app] {
			continue
		}
		resp.Apps[app] = b.totals[app]
	}
	// Tenant aggregates: for every tenant owning a reported app, sum
	// the totals of all that tenant's apps. The accumulation iterates
	// apps in sorted order so float rounding is deterministic across
	// runs regardless of map layout.
	need := make(map[string]bool, len(resp.Apps))
	for app := range resp.Apps {
		need[b.tenantOf(app)] = true
	}
	resp.Tenants = make(map[string]float64, len(need))
	for _, app := range b.Apps() {
		if t := b.tenantOf(app); need[t] {
			resp.Tenants[t] += b.totals[app]
		}
	}
	if b.shares != nil {
		resp.Epoch = b.shares.Epoch()
	}
	b.stats.Exchanges++
	b.stats.EntriesUp += uint64(up)
	b.stats.EntriesDown += uint64(len(resp.Apps))
	b.stats.TenantEntriesDown += uint64(len(resp.Tenants))
	if b.probe != nil {
		b.probe(scheduler, b)
	}
	return resp
}

// Register ensures the scheduler has a report slot. It is idempotent —
// re-registration after a scheduler restart keeps the previous
// cumulative vector, which is exactly what makes the restarted
// client's full re-report apply as a no-op delta.
func (b *Broker) Register(scheduler string) {
	if b.reports[scheduler] == nil {
		b.reports[scheduler] = make(map[iosched.AppID]float64)
	}
}

// Unregister removes a scheduler (a dead node's device): its last
// reported vector is subtracted from the totals so the dead node's
// service stops counting forever, and per-app totals no longer backed
// by any live report are pruned.
func (b *Broker) Unregister(scheduler string) {
	vec, ok := b.reports[scheduler]
	if !ok {
		return
	}
	delete(b.reports, scheduler)
	for app, cum := range vec {
		b.totals[app] -= cum
	}
	b.pruneUnbacked()
}

// Retire drops an application that finished: its entries are pruned
// from every report and from the totals, and further exchanges skip it
// (local accounting never forgets an app, so without the skip the next
// report would resurrect the full cumulative value). The final total is
// kept as a tombstone so the app's cluster-wide service stays
// observable through Total after cleanup.
func (b *Broker) Retire(app iosched.AppID) {
	if b.retired[app] {
		return
	}
	b.retired[app] = true
	b.finals[app] = b.totals[app]
	var snap map[string]float64
	for sched, vec := range b.reports {
		if cum, ok := vec[app]; ok {
			if snap == nil {
				snap = make(map[string]float64)
			}
			snap[sched] = cum
			delete(vec, app)
		}
	}
	if snap != nil {
		b.retireSnaps[app] = snap
	}
	delete(b.totals, app)
}

// Revive reverses Retire for an application that starts doing I/O again
// (e.g. a later stage of a multi-stage query reusing the app id). The
// per-scheduler entries Retire scrubbed are re-snapshotted into the
// report vectors — for schedulers still registered — and the total is
// rebuilt from them, so the app resumes with exact continuity: the
// next exchange applies only the true delta accrued since retirement.
// Without the snapshot the total would rebuild piecemeal (partial
// until every scheduler re-reported) and, if the backing reports
// unregistered first, pruneUnbacked would drop the rebuilt value and
// Total would surface the stale tombstone.
func (b *Broker) Revive(app iosched.AppID) {
	if !b.retired[app] {
		return
	}
	delete(b.retired, app)
	total := 0.0
	if snap := b.retireSnaps[app]; snap != nil {
		// Restore in sorted-scheduler order for deterministic rounding;
		// entries whose scheduler unregistered during retirement stay
		// dropped — Unregister would have subtracted them anyway.
		scheds := make([]string, 0, len(snap))
		for sched := range snap {
			if _, ok := b.reports[sched]; ok {
				scheds = append(scheds, sched)
			}
		}
		sort.Strings(scheds)
		for _, sched := range scheds {
			b.reports[sched][app] = snap[sched]
			total += snap[sched]
		}
		delete(b.retireSnaps, app)
	}
	if total > 0 {
		b.totals[app] = total
	}
	delete(b.finals, app)
}

// Retired reports whether the app is currently retired.
func (b *Broker) Retired(app iosched.AppID) bool { return b.retired[app] }

// pruneUnbacked deletes totals entries for apps present in no report.
// Their remaining value is float residue from subtraction, not service.
func (b *Broker) pruneUnbacked() {
	for app := range b.totals {
		backed := false
		for _, vec := range b.reports {
			if _, ok := vec[app]; ok {
				backed = true
				break
			}
		}
		if !backed {
			delete(b.totals, app)
		}
	}
}

// ReportedTotals sums the latest per-scheduler service vectors per app —
// the quantity that must equal the incrementally maintained totals if
// the broker conserves service.
func (b *Broker) ReportedTotals() map[iosched.AppID]float64 {
	sums := make(map[iosched.AppID]float64, len(b.totals))
	for _, vec := range b.reports {
		for app, cum := range vec {
			sums[app] += cum
		}
	}
	return sums
}

// Total returns the cluster-wide cumulative service for one app. For a
// retired app this is its tombstoned final total (a revived app
// resumes live accounting at its first exchange).
func (b *Broker) Total(app iosched.AppID) float64 {
	if v, ok := b.totals[app]; ok {
		return v
	}
	return b.finals[app]
}

// Apps returns all known apps, sorted.
func (b *Broker) Apps() []iosched.AppID {
	ids := make([]iosched.AppID, 0, len(b.totals))
	for id := range b.totals {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TenantTotals aggregates the live per-app totals by tenant,
// accumulating in sorted-app order for deterministic rounding. Used by
// the audit layer's cluster-wide hierarchical invariant.
func (b *Broker) TenantTotals() map[string]float64 {
	out := make(map[string]float64)
	for _, app := range b.Apps() {
		out[b.tenantOf(app)] += b.totals[app]
	}
	return out
}

// Schedulers returns the registered scheduler ids, sorted.
func (b *Broker) Schedulers() []string {
	ids := make([]string, 0, len(b.reports))
	for id := range b.reports {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Stats returns the accumulated traffic counters.
func (b *Broker) Stats() Stats { return b.stats }

// Reporter exposes the cumulative per-app service of a local scheduler;
// *iosched.Accounting satisfies it.
type Reporter interface {
	CostVector() map[iosched.AppID]float64
}

// Transport carries the coordination round trips. Implementations may
// fail or delay them; the direct in-process transport never does.
type Transport interface {
	// Exchange performs one report/response round trip. rtt is the
	// virtual-time delay until the response reaches the client (0 =
	// instantaneous, applied synchronously). On error no response is
	// delivered; the broker may or may not have applied the report
	// (response loss) — retrying is safe because vectors are
	// cumulative.
	Exchange(id string, vector map[iosched.AppID]float64) (resp Response, rtt float64, err error)
	// Register performs the (re-)registration handshake.
	Register(id string) (rtt float64, err error)
	// Unregister removes the scheduler's report from the broker. It
	// models out-of-band node-death detection (YARN's liveness
	// tracking), so it is not subject to message faults.
	Unregister(id string)
}

// AsyncTransport is the message-passing variant of Transport used when
// the broker lives on a different simulation shard than the client: the
// request travels as an inter-shard message, the broker processes it on
// its own shard, and the response travels back the same way. done is
// invoked on the client's shard when the response arrives — possibly
// never (request or response lost), which the client covers with its
// own timeout event. A transport given to ClientOptions.Transport may
// additionally implement AsyncTransport; the client then uses the
// async protocol exclusively.
type AsyncTransport interface {
	// ExchangeAsync sends the vector toward the broker; done fires when
	// (and if) the response arrives. A non-nil err reports a delivered
	// failure (e.g. broker down); a lost message simply never calls
	// done.
	ExchangeAsync(id string, vector map[iosched.AppID]float64, done func(resp Response, err error))
	// RegisterAsync is the async registration handshake.
	RegisterAsync(id string, done func(err error))
}

// directTransport is the perfectly reliable, instantaneous in-process
// transport the pre-fault broker modeled.
type directTransport struct{ b *Broker }

// NewDirectTransport wraps a broker in the reliable transport.
func NewDirectTransport(b *Broker) Transport { return directTransport{b} }

func (d directTransport) Exchange(id string, vec map[iosched.AppID]float64) (Response, float64, error) {
	return d.b.Exchange(id, vec), 0, nil
}

func (d directTransport) Register(id string) (float64, error) { d.b.Register(id); return 0, nil }

func (d directTransport) Unregister(id string) { d.b.Unregister(id) }

// RetryPolicy tunes the client's failure handling. The zero value takes
// defaults derived from the coordination period.
type RetryPolicy struct {
	// MaxRetries bounds re-attempts per round after the first failure
	// (default 3; negative disables retries).
	MaxRetries int
	// BaseBackoff is the first retry delay; each further retry doubles
	// it up to MaxBackoff (defaults period/20 and period/4).
	BaseBackoff float64
	MaxBackoff  float64
	// JitterFrac adds up to this fraction of the backoff as
	// deterministic jitter, decorrelating clients (default 0.25).
	JitterFrac float64
	// Timeout is how long the client waits for a response before
	// declaring the attempt dead (default period/4). Responses arriving
	// later are discarded.
	Timeout float64
	// DegradeAfter is how long exchanges must keep failing before the
	// client suspends the DSFQ delay rule and falls back to local
	// fairness (default one period, per the paper's staleness bound).
	DegradeAfter float64
}

func (p RetryPolicy) withDefaults(period float64) RetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = period / 20
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = period / 4
	}
	if p.JitterFrac <= 0 {
		p.JitterFrac = 0.25
	}
	if p.Timeout <= 0 {
		p.Timeout = period / 4
	}
	if p.DegradeAfter <= 0 {
		p.DegradeAfter = period
	}
	return p
}

// ClientState is the client's position in the degradation state
// machine.
type ClientState int

const (
	// StateHealthy: exchanges are succeeding; the delay rule is live.
	StateHealthy ClientState = iota
	// StateRetrying: exchanges are failing but the failure stretch is
	// still shorter than DegradeAfter; the delay rule runs on the last
	// good totals.
	StateRetrying
	// StateDegraded: coordination is suspended; the scheduler enforces
	// pure local SFQ(D) fairness until an exchange succeeds.
	StateDegraded
)

// String names the state.
func (s ClientState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateRetrying:
		return "retrying"
	case StateDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("ClientState(%d)", int(s))
	}
}

// ClientOptions configure NewClientWithOptions.
type ClientOptions struct {
	// Transport carries the exchanges; nil means the client never
	// coordinates (the paper's "No Sync").
	Transport Transport
	// Period is the coordination period in seconds (default 1).
	Period float64
	// Retry tunes failure handling; zero fields take period-derived
	// defaults.
	Retry RetryPolicy
	// Shares attributes apps to tenants on the client side (nil means
	// implicit singleton tenants, i.e. flat per-app coordination).
	Shares ShareView
}

// Client performs the periodic exchange for one local scheduler and
// implements iosched.Coordinator: OtherService(app) returns the service
// the app's *tenant* has received on all other nodes, per the broker's
// latest applied response. With only implicit singleton tenants this is
// exactly the app's own remote service (the flat pre-tree semantics);
// with declared tenants the DSFQ delay charges the whole tenant's
// remote service, enforcing tenant-level proportionality. A Client
// with a nil transport never coordinates (No Sync).
type Client struct {
	id        string
	transport Transport
	async     AsyncTransport // non-nil when transport is asynchronous
	reporter  Reporter
	eng       *sim.Engine
	period    float64
	policy    RetryPolicy
	shares    ShareView

	otherTenant map[string]float64
	// tenantCache memoizes app→tenant attribution so the per-arrival
	// OtherService lookup stays allocation-free; it is invalidated
	// whenever a response carries a newer share-tree epoch.
	tenantCache map[iosched.AppID]string
	shareEpoch  uint64
	rounds      uint64

	sched     *iosched.SFQ
	onDegrade func(t float64)
	onRecover func(t float64)

	state        ClientState
	failingSince float64 // start of the current failure stretch; -1 when none
	degradedAt   float64
	attempt      int  // retries consumed in the current round
	inRound      bool // a round (or its retries/timeout) is outstanding
	needRegister bool
	detached     bool

	// epoch obsoletes in-flight continuations across restart/detach;
	// the (nextSeq, appliedHi) pair discards out-of-order responses.
	epoch     uint64
	nextSeq   uint64
	appliedHi uint64

	retryEv sim.Event

	health metrics.CoordinationHealth
}

var _ iosched.Coordinator = (*Client)(nil)

// NewClient wires a scheduler's accounting into the broker over the
// reliable direct transport with the given coordination period
// (seconds; the paper uses 1 s, piggybacked on heartbeats). The
// periodic exchange is a daemon event: it does not keep the simulation
// alive once the workload drains.
func NewClient(eng *sim.Engine, b *Broker, id string, reporter Reporter, period float64) *Client {
	var tr Transport
	if b != nil {
		tr = directTransport{b}
	}
	return NewClientWithOptions(eng, id, reporter, ClientOptions{Transport: tr, Period: period})
}

// NewClientWithOptions is NewClient with an explicit transport and
// retry policy.
func NewClientWithOptions(eng *sim.Engine, id string, reporter Reporter, opts ClientOptions) *Client {
	period := opts.Period
	if period <= 0 {
		period = 1
	}
	c := &Client{
		id:           id,
		transport:    opts.Transport,
		reporter:     reporter,
		eng:          eng,
		period:       period,
		policy:       opts.Retry.withDefaults(period),
		shares:       opts.Shares,
		otherTenant:  make(map[string]float64),
		tenantCache:  make(map[iosched.AppID]string),
		failingSince: -1,
		nextSeq:      1,
	}
	c.async, _ = opts.Transport.(AsyncTransport)
	var tick func()
	tick = func() {
		c.tick()
		if !c.detached {
			eng.ScheduleDaemon(period, tick)
		}
	}
	eng.ScheduleDaemon(period, tick)
	return c
}

// BindScheduler links the client to its local SFQ scheduler so
// degradation can suspend and resume the DSFQ delay rule.
func (c *Client) BindScheduler(s *iosched.SFQ) { c.sched = s }

// SetOnDegrade installs a callback fired when the client enters the
// degraded state (for audit wiring).
func (c *Client) SetOnDegrade(fn func(t float64)) { c.onDegrade = fn }

// SetOnRecover installs a callback fired when a degraded client
// recovers.
func (c *Client) SetOnRecover(fn func(t float64)) { c.onRecover = fn }

// tick is the periodic coordination round.
func (c *Client) tick() {
	if c.transport == nil || c.detached {
		return
	}
	if c.inRound {
		// The previous round is still retrying or awaiting a response;
		// don't stack rounds on a struggling broker — but keep the
		// degradation clock honest.
		c.health.SkippedRounds++
		c.maybeDegrade(c.eng.Now())
		return
	}
	c.beginRound()
}

// ExchangeNow performs one immediate round trip (a no-op while a round
// is already outstanding).
func (c *Client) ExchangeNow() {
	if c.transport == nil || c.detached || c.inRound {
		return
	}
	c.beginRound()
}

func (c *Client) beginRound() {
	c.inRound = true
	c.attempt = 0
	c.sendAttempt()
}

// sendAttempt issues one exchange (or re-register handshake) attempt.
func (c *Client) sendAttempt() {
	if c.detached {
		c.inRound = false
		return
	}
	if c.needRegister {
		c.sendRegister()
		return
	}
	if c.async != nil {
		c.sendAttemptAsync()
		return
	}
	now := c.eng.Now()
	seq := c.nextSeq
	c.nextSeq++
	c.health.Attempts++
	vec := c.reporter.CostVector()
	resp, rtt, err := c.transport.Exchange(c.id, vec)
	if err != nil {
		c.fail(now)
		return
	}
	if rtt <= 0 {
		c.appliedHi = seq
		c.apply(vec, resp, now)
		return
	}
	epoch := c.epoch
	if rtt > c.policy.Timeout {
		// The response will arrive after the client gave up on it:
		// count the timeout when the policy says so, and the stale
		// drop when the late response lands.
		c.health.Timeouts++
		c.eng.ScheduleDaemon(rtt, func() {
			if c.epoch == epoch {
				c.health.StaleDrops++
			}
		})
		c.eng.ScheduleDaemon(c.policy.Timeout, func() {
			if c.epoch == epoch {
				c.fail(c.eng.Now())
			}
		})
		return
	}
	c.eng.ScheduleDaemon(rtt, func() {
		if c.epoch != epoch || seq <= c.appliedHi {
			c.health.StaleDrops++
			return
		}
		c.appliedHi = seq
		c.apply(vec, resp, c.eng.Now())
	})
}

// sendAttemptAsync is the exchange attempt over an AsyncTransport. The
// response may arrive at any later event, or never; a local timeout
// daemon bounds the wait. The delivered/timedOut flags arbitrate the
// race between the two continuations — both run on the client's shard,
// so plain variables suffice.
func (c *Client) sendAttemptAsync() {
	seq := c.nextSeq
	c.nextSeq++
	c.health.Attempts++
	vec := c.reporter.CostVector()
	epoch := c.epoch
	delivered, timedOut := false, false
	c.eng.ScheduleDaemon(c.policy.Timeout, func() {
		if delivered || c.epoch != epoch {
			return
		}
		timedOut = true
		c.health.Timeouts++
		c.fail(c.eng.Now())
	})
	c.async.ExchangeAsync(c.id, vec, func(resp Response, err error) {
		if c.epoch != epoch || timedOut || seq <= c.appliedHi {
			c.health.StaleDrops++
			return
		}
		delivered = true
		if err != nil {
			c.fail(c.eng.Now())
			return
		}
		c.appliedHi = seq
		c.apply(vec, resp, c.eng.Now())
	})
}

// sendRegister performs the explicit post-restart handshake; on success
// it chains straight into a normal exchange to re-seed the client's
// remote-service view.
func (c *Client) sendRegister() {
	if c.async != nil {
		c.sendRegisterAsync()
		return
	}
	now := c.eng.Now()
	c.health.Attempts++
	rtt, err := c.transport.Register(c.id)
	if err != nil {
		c.fail(now)
		return
	}
	epoch := c.epoch
	finish := func() {
		if c.epoch != epoch {
			c.health.StaleDrops++
			return
		}
		c.needRegister = false
		c.health.ReRegisters++
		c.attempt = 0
		c.sendAttempt()
	}
	if rtt <= 0 {
		finish()
		return
	}
	if rtt > c.policy.Timeout {
		c.health.Timeouts++
		c.eng.ScheduleDaemon(rtt, func() {
			if c.epoch == epoch {
				c.health.StaleDrops++
			}
		})
		c.eng.ScheduleDaemon(c.policy.Timeout, func() {
			if c.epoch == epoch {
				c.fail(c.eng.Now())
			}
		})
		return
	}
	c.eng.ScheduleDaemon(rtt, finish)
}

// sendRegisterAsync is the registration handshake over an
// AsyncTransport, mirroring sendAttemptAsync's timeout arbitration.
func (c *Client) sendRegisterAsync() {
	c.health.Attempts++
	epoch := c.epoch
	delivered, timedOut := false, false
	c.eng.ScheduleDaemon(c.policy.Timeout, func() {
		if delivered || c.epoch != epoch {
			return
		}
		timedOut = true
		c.health.Timeouts++
		c.fail(c.eng.Now())
	})
	c.async.RegisterAsync(c.id, func(err error) {
		if c.epoch != epoch || timedOut {
			c.health.StaleDrops++
			return
		}
		delivered = true
		if err != nil {
			c.fail(c.eng.Now())
			return
		}
		c.needRegister = false
		c.health.ReRegisters++
		c.attempt = 0
		c.sendAttempt()
	})
}

// apply folds a successful response into the client's remote-service
// view and completes the round. The view is tenant-level: for each
// tenant in the response, remote service = cluster-wide tenant total
// minus the local per-tenant sum of the vector this round reported.
func (c *Client) apply(vec map[iosched.AppID]float64, resp Response, now float64) {
	if resp.Epoch != c.shareEpoch {
		// Bindings may have moved between tenants; recompute
		// attribution lazily from the shares view.
		c.shareEpoch = resp.Epoch
		for app := range c.tenantCache {
			delete(c.tenantCache, app)
		}
	}
	// Local per-tenant sums, accumulated in sorted-app order so float
	// rounding stays deterministic.
	apps := make([]iosched.AppID, 0, len(vec))
	for app := range vec {
		apps = append(apps, app)
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i] < apps[j] })
	local := make(map[string]float64, len(resp.Tenants))
	for _, app := range apps {
		local[c.tenant(app)] += vec[app]
	}
	for t, total := range resp.Tenants {
		other := total - local[t]
		if other < 0 {
			other = 0
		}
		c.otherTenant[t] = other
	}
	// Prune entries the broker no longer returns (retired apps /
	// dissolved tenants) so long-lived clients don't leak entries.
	for t := range c.otherTenant {
		if _, ok := resp.Tenants[t]; !ok {
			delete(c.otherTenant, t)
		}
	}
	c.rounds++
	c.health.Successes++
	c.noteSuccess(now)
}

// tenant memoizes the app→tenant attribution.
func (c *Client) tenant(app iosched.AppID) string {
	if t, ok := c.tenantCache[app]; ok {
		return t
	}
	var t string
	if c.shares != nil {
		t = c.shares.TenantOf(app)
	} else {
		t = implicitTenant(app)
	}
	c.tenantCache[app] = t
	return t
}

func (c *Client) noteSuccess(now float64) {
	c.inRound = false
	c.attempt = 0
	c.failingSince = -1
	wasDegraded := c.state == StateDegraded
	c.state = StateHealthy
	if wasDegraded {
		c.health.Recoveries++
		c.health.DegradedTime += now - c.degradedAt
		// Resume with a resync: the scheduler re-snapshots the fresh
		// remote totals per flow instead of charging the whole outage's
		// accumulated delta — the stale-total clamp that keeps a
		// returning node from being starved.
		if c.sched != nil {
			c.sched.ResumeCoordination()
		}
		if c.onRecover != nil {
			c.onRecover(now)
		}
	}
}

// fail handles one failed attempt: backoff-retry while the budget
// lasts, then abandon the round to the next periodic tick.
func (c *Client) fail(now float64) {
	c.health.Failures++
	if c.failingSince < 0 {
		c.failingSince = now
		if c.state == StateHealthy {
			c.state = StateRetrying
		}
	}
	c.maybeDegrade(now)
	if c.attempt < c.policy.MaxRetries {
		c.attempt++
		c.health.Retries++
		epoch := c.epoch
		c.retryEv = c.eng.ScheduleDaemon(c.backoff(c.attempt), func() {
			if c.epoch == epoch {
				c.sendAttempt()
			}
		})
		return
	}
	c.inRound = false
	c.health.SkippedRounds++
}

// backoff returns the delay before retry `attempt` (1-based):
// exponential from BaseBackoff, capped at MaxBackoff, plus
// deterministic jitter hashed from (client id, attempt sequence).
func (c *Client) backoff(attempt int) float64 {
	d := c.policy.BaseBackoff * math.Pow(2, float64(attempt-1))
	if d > c.policy.MaxBackoff {
		d = c.policy.MaxBackoff
	}
	return d + c.policy.JitterFrac*d*hash01(c.id, c.nextSeq)
}

func (c *Client) maybeDegrade(now float64) {
	if c.state == StateDegraded || c.failingSince < 0 {
		return
	}
	if now-c.failingSince < c.policy.DegradeAfter-1e-12 {
		return
	}
	c.degrade(now)
}

func (c *Client) degrade(now float64) {
	c.state = StateDegraded
	c.degradedAt = now
	c.health.Degradations++
	if c.sched != nil {
		c.sched.SuspendCoordination()
	}
	if c.onDegrade != nil {
		c.onDegrade(now)
	}
}

// Restart models the scheduler process restarting: the client's
// in-memory view of remote service is wiped, in-flight continuations
// (retries, delayed responses) are obsoleted, and the client must
// complete an explicit re-register handshake before exchanging again.
// Until that succeeds the client runs degraded — a freshly restarted
// node has no basis for the delay rule.
func (c *Client) Restart() {
	if c.detached || c.transport == nil {
		return
	}
	now := c.eng.Now()
	c.health.Restarts++
	c.epoch++
	c.eng.Cancel(c.retryEv)
	c.otherTenant = make(map[string]float64)
	c.tenantCache = make(map[iosched.AppID]string)
	c.inRound = false
	c.attempt = 0
	c.needRegister = true
	if c.failingSince < 0 {
		c.failingSince = now
	}
	if c.state != StateDegraded {
		c.degrade(now)
	}
	// The restarted process comes straight back up and re-registers
	// (subject to whatever faults the transport injects).
	c.beginRound()
}

// Detach permanently removes the client from coordination: ticks stop,
// in-flight continuations are obsoleted, and the broker unregisters
// the scheduler so a dead node's last vector stops counting toward the
// totals forever.
func (c *Client) Detach() {
	if c.detached {
		return
	}
	c.detached = true
	c.epoch++
	c.eng.Cancel(c.retryEv)
	c.inRound = false
	if c.transport != nil {
		c.transport.Unregister(c.id)
	}
}

// Detached reports whether the client has been permanently detached.
func (c *Client) Detached() bool { return c.detached }

// OtherService implements iosched.Coordinator: the remote service of
// the app's tenant. For implicit singleton tenants this is the app's
// own remote service, bit-identical to the flat semantics.
func (c *Client) OtherService(app iosched.AppID) float64 {
	return c.otherTenant[c.tenant(app)]
}

// Rounds returns the number of successful exchanges applied.
func (c *Client) Rounds() uint64 { return c.rounds }

// State returns the client's degradation state.
func (c *Client) State() ClientState { return c.state }

// ID returns the scheduler id the client reports as.
func (c *Client) ID() string { return c.id }

// Health returns a copy of the fault-tolerance counters. For a client
// currently degraded, DegradedTime excludes the open interval.
func (c *Client) Health() metrics.CoordinationHealth { return c.health }

// hash01 maps (id, n) to [0,1) via FNV-1a into a splitmix64 finalizer —
// a pure function so jitter never perturbs determinism.
func hash01(id string, n uint64) float64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return float64(splitmix64(h^n)>>11) / float64(1<<53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
