package broker

import (
	"testing"
)

// FuzzDeltaCodec drives the delta codec two ways from the same input:
// raw bytes straight into a decoder (must never panic, never partially
// apply), and as a script of monotone state updates through a real
// encoder→decoder→merge pipeline, asserting exact state round-trip and
// never-negative merged totals — the two properties the federation
// plane's correctness rests on.
func FuzzDeltaCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0x00, 0x00})
	f.Add([]byte{3, 2, 0, 10, 1, 50, 2, 1, 7, 200, 30})
	f.Add([]byte{0xff, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Raw robustness: arbitrary bytes must decode to an error or a
		// consistent state, never panic, and a failed decode must leave
		// the decoder untouched.
		var raw DeltaDec
		applied := 0
		if _, _, err := raw.Decode(data, func(string, int64, int64) { applied++ }); err != nil {
			if applied != 0 {
				t.Fatalf("failed decode applied %d entries", applied)
			}
			if len(raw.State()) != 0 || raw.Seq() != 0 {
				t.Fatalf("failed decode mutated decoder: state=%v seq=%d", raw.State(), raw.Seq())
			}
		}

		// Structured pipeline: interpret data as update rounds over a
		// small key space with non-decreasing values (service quanta are
		// cumulative), with occasional snapshots and encoder crashes.
		keys := []string{"t0", "t1", "t2", "t3", "tenant-with-longer-name", "t5", "t6", "t7"}
		i := 0
		next := func() byte {
			if i >= len(data) {
				return 0
			}
			b := data[i]
			i++
			return b
		}
		var enc DeltaEnc
		var dec DeltaDec
		cur := map[string]int64{}
		merged := map[string]int64{} // decoder-side running totals
		rounds := int(next())%12 + 1
		for r := 0; r < rounds; r++ {
			n := int(next()) % 10
			for k := 0; k < n; k++ {
				cur[keys[int(next())%len(keys)]] += int64(next())
			}
			snap := next()%5 == 0
			if next()%17 == 0 {
				// Encoder crash: state rebuilt from scratch; the next
				// message must be a snapshot to stay decodable.
				enc = DeltaEnc{}
				snap = true
			}
			msg, _ := enc.Encode(cur, snap)
			gotSnap, _, err := dec.Decode(msg, func(name string, old, new int64) {
				merged[name] += new - old
			})
			if err != nil {
				t.Fatalf("round %d: decode of own encoding failed: %v", r, err)
			}
			if gotSnap != snap {
				t.Fatalf("round %d: snapshot flag %v != %v", r, gotSnap, snap)
			}
			// Exact state round-trip: the decoder mirror must equal the
			// nonzero subset of the encoded state.
			st := dec.State()
			for k, v := range cur {
				if v != 0 && st[k] != v {
					t.Fatalf("round %d: key %q decoded %d, want %d", r, k, st[k], v)
				}
			}
			for k, v := range st {
				if cur[k] != v {
					t.Fatalf("round %d: decoder has stale key %q=%d (want %d)", r, k, v, cur[k])
				}
			}
			// Never-negative merged totals: with monotone inputs the
			// delta-merged view can never dip below zero, snapshots and
			// crashes included.
			for k, v := range merged {
				if v < 0 {
					t.Fatalf("round %d: merged total %q = %d < 0", r, k, v)
				}
				if v != cur[k] {
					t.Fatalf("round %d: merged total %q = %d, want %d", r, k, v, cur[k])
				}
			}
		}
	})
}
