package broker

import (
	"testing"

	"ibis/internal/iosched"
	"ibis/internal/sim"
	"ibis/internal/storage"
)

// mapReporter is a hand-driven Reporter.
type mapReporter map[iosched.AppID]float64

func (m mapReporter) CostVector() map[iosched.AppID]float64 {
	out := make(map[iosched.AppID]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// hookTransport scripts every leg of the protocol.
type hookTransport struct {
	exchange     func(id string, vec map[iosched.AppID]float64) (map[iosched.AppID]float64, float64, error)
	register     func(id string) (float64, error)
	unregistered []string
}

// Exchange adapts the scripted per-app map into a Response, deriving
// the implicit singleton tenant totals the real broker would send.
func (h *hookTransport) Exchange(id string, vec map[iosched.AppID]float64) (Response, float64, error) {
	m, rtt, err := h.exchange(id, vec)
	if err != nil {
		return Response{}, rtt, err
	}
	resp := Response{Apps: m, Tenants: make(map[string]float64, len(m))}
	for a, v := range m {
		resp.Tenants[implicitTenant(a)] = v
	}
	return resp, rtt, nil
}

func (h *hookTransport) Register(id string) (float64, error) {
	if h.register == nil {
		return 0, nil
	}
	return h.register(id)
}

func (h *hookTransport) Unregister(id string) { h.unregistered = append(h.unregistered, id) }

// faultyClient builds a client on a scripted transport with a 1 s
// period and no jitter-relevant knobs changed.
func faultyClient(eng *sim.Engine, tr Transport, rep Reporter) *Client {
	return NewClientWithOptions(eng, "n0", rep, ClientOptions{Transport: tr, Period: 1})
}

func TestClientRetriesAndRecoversWithinRound(t *testing.T) {
	eng := sim.NewEngine()
	rep := mapReporter{"a": 10}
	calls := 0
	tr := &hookTransport{exchange: func(id string, vec map[iosched.AppID]float64) (map[iosched.AppID]float64, float64, error) {
		calls++
		if calls < 3 {
			return nil, 0, ErrUnavailable
		}
		return map[iosched.AppID]float64{"a": 25}, 0, nil
	}}
	c := faultyClient(eng, tr, rep)
	eng.Schedule(1.5, func() {}) // keep the sim alive past the first round
	eng.RunUntil(1.5)

	if c.State() != StateHealthy {
		t.Fatalf("state = %v, want healthy", c.State())
	}
	if got := c.OtherService("a"); got != 15 {
		t.Errorf("OtherService = %g, want 15", got)
	}
	h := c.Health()
	if h.Failures != 2 || h.Retries != 2 || h.Successes != 1 {
		t.Errorf("health = %+v, want 2 failures, 2 retries, 1 success", h)
	}
	if h.Degradations != 0 {
		t.Errorf("degraded on a sub-period failure stretch: %+v", h)
	}
}

func TestClientBackoffIsExponentialAndBounded(t *testing.T) {
	eng := sim.NewEngine()
	c := NewClientWithOptions(eng, "n0", mapReporter{}, ClientOptions{
		Transport: &hookTransport{exchange: func(string, map[iosched.AppID]float64) (map[iosched.AppID]float64, float64, error) {
			return nil, 0, ErrUnavailable
		}},
		Period: 1,
		Retry:  RetryPolicy{BaseBackoff: 0.05, MaxBackoff: 0.1, JitterFrac: 1e-9},
	})
	_ = c
	// Backoffs: 0.05, 0.1, then capped at 0.1 (plus negligible jitter).
	prev := 0.0
	for attempt, want := range map[int]float64{1: 0.05, 2: 0.1, 3: 0.1, 4: 0.1} {
		got := c.backoff(attempt)
		if got < want || got > want*1.01 {
			t.Errorf("backoff(%d) = %g, want ≈%g", attempt, got, want)
		}
		_ = prev
	}
}

func TestClientDegradesAfterOnePeriodAndSuspendsScheduler(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d0", storage.Spec{
		Name: "flat", ReadBW: 100e6, WriteBW: 100e6,
		Curve: []float64{1}, CurveDecay: 1, MinCurve: 1,
	})
	sfq := iosched.NewSFQD(eng, dev, 2)
	down := true
	tr := &hookTransport{exchange: func(id string, vec map[iosched.AppID]float64) (map[iosched.AppID]float64, float64, error) {
		if down {
			return nil, 0, ErrUnavailable
		}
		return map[iosched.AppID]float64{}, 0, nil
	}}
	c := NewClientWithOptions(eng, "n0", sfq.Accounting(), ClientOptions{Transport: tr, Period: 1})
	c.BindScheduler(sfq)
	sfq.SetCoordinator(c)

	var degradedAt, recoveredAt float64 = -1, -1
	c.SetOnDegrade(func(tm float64) { degradedAt = tm })
	c.SetOnRecover(func(tm float64) { recoveredAt = tm })

	eng.Schedule(10, func() {})
	eng.RunUntil(2.5)
	if c.State() != StateDegraded {
		t.Fatalf("state after 2.5s of outage = %v, want degraded", c.State())
	}
	if !sfq.CoordinationSuspended() {
		t.Fatal("scheduler not suspended on degradation")
	}
	if degradedAt < 2-1e-9 || degradedAt > 2.5 {
		t.Errorf("degraded at %g, want ≈2 (first failure at 1 + DegradeAfter 1)", degradedAt)
	}

	down = false
	eng.RunUntil(4.5)
	if c.State() != StateHealthy {
		t.Fatalf("state after recovery = %v, want healthy", c.State())
	}
	if sfq.CoordinationSuspended() {
		t.Fatal("scheduler still suspended after recovery")
	}
	if recoveredAt < 3-1e-9 {
		t.Errorf("recovered at %g, want ≥3", recoveredAt)
	}
	h := c.Health()
	if h.Degradations != 1 || h.Recoveries != 1 {
		t.Errorf("health = %+v, want 1 degradation + 1 recovery", h)
	}
	if h.DegradedTime <= 0 {
		t.Errorf("DegradedTime = %g, want > 0", h.DegradedTime)
	}
}

func TestClientTimeoutThenStaleResponseDropped(t *testing.T) {
	eng := sim.NewEngine()
	slow := true
	tr := &hookTransport{exchange: func(id string, vec map[iosched.AppID]float64) (map[iosched.AppID]float64, float64, error) {
		if slow {
			slow = false
			// Response arrives after the 0.25 s default timeout.
			return map[iosched.AppID]float64{"a": 999}, 0.6, nil
		}
		return map[iosched.AppID]float64{"a": 5}, 0, nil
	}}
	c := faultyClient(eng, tr, mapReporter{"a": 0})
	eng.Schedule(5, func() {})
	eng.RunUntil(3)

	// The late 999-total response must never have been applied: the
	// timed-out attempt was abandoned and the retry's fresh response
	// won the race.
	if got := c.OtherService("a"); got != 5 {
		t.Errorf("OtherService = %g, want 5 (late response applied?)", got)
	}
	h := c.Health()
	if h.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", h.Timeouts)
	}
	if h.StaleDrops != 1 {
		t.Errorf("stale drops = %d, want 1", h.StaleDrops)
	}
}

func TestClientSerializesRounds(t *testing.T) {
	eng := sim.NewEngine()
	var calls int
	tr := &hookTransport{exchange: func(id string, vec map[iosched.AppID]float64) (map[iosched.AppID]float64, float64, error) {
		calls++
		if calls == 1 {
			return map[iosched.AppID]float64{"a": 100}, 0.2, nil
		}
		return map[iosched.AppID]float64{"a": 200}, 0.01, nil
	}}
	c := faultyClient(eng, tr, mapReporter{"a": 0})
	// ExchangeNow while round 1's response is still in flight must not
	// start a concurrent round — responses stay ordered by design.
	eng.Schedule(1.05, func() { c.ExchangeNow() })
	eng.Schedule(1.5, func() {
		if calls != 1 {
			t.Errorf("ExchangeNow during in-flight round issued a concurrent exchange (calls=%d)", calls)
		}
		if got := c.OtherService("a"); got != 100 {
			t.Errorf("OtherService = %g at t=1.5, want 100", got)
		}
	})
	eng.Schedule(3, func() {})
	eng.RunUntil(3)

	if calls != 2 {
		t.Errorf("calls = %d, want 2 (t=1 and t=2 rounds)", calls)
	}
	if got := c.OtherService("a"); got != 200 {
		t.Errorf("OtherService = %g, want 200 after round 2", got)
	}
	if c.Rounds() != 2 {
		t.Errorf("rounds = %d, want 2", c.Rounds())
	}
}

func TestClientRestartWipesViewAndReRegisters(t *testing.T) {
	eng := sim.NewEngine()
	b := New()
	rep := mapReporter{"a": 10}
	other := NewClientWithOptions(eng, "n1", mapReporter{"a": 40}, ClientOptions{Transport: NewDirectTransport(b), Period: 1})
	_ = other
	c := NewClientWithOptions(eng, "n0", rep, ClientOptions{Transport: NewDirectTransport(b), Period: 1})
	eng.Schedule(10, func() {})
	eng.RunUntil(1.5)
	if got := c.OtherService("a"); got != 40 {
		t.Fatalf("pre-restart OtherService = %g, want 40", got)
	}

	c.Restart()
	// The in-memory view is rebuilt from the broker by the re-register
	// handshake chaining into an exchange — and because vectors are
	// cumulative and the broker kept n0's previous report, the full
	// re-report applies as a no-op delta: totals are NOT double
	// counted.
	if got := c.OtherService("a"); got != 40 {
		t.Errorf("post-restart OtherService = %g, want 40 (idempotent resync)", got)
	}
	if got := b.Total("a"); got != 50 {
		t.Errorf("broker total = %g, want 50 (no double counting)", got)
	}
	h := c.Health()
	if h.Restarts != 1 || h.ReRegisters != 1 {
		t.Errorf("health = %+v, want 1 restart + 1 re-register", h)
	}
	if h.Degradations != 1 {
		t.Errorf("restart must pass through degraded: %+v", h)
	}
	if c.State() != StateHealthy {
		t.Errorf("state = %v, want healthy after successful resync", c.State())
	}
}

func TestClientRestartDuringOutageStaysDegraded(t *testing.T) {
	eng := sim.NewEngine()
	tr := &hookTransport{
		exchange: func(string, map[iosched.AppID]float64) (map[iosched.AppID]float64, float64, error) {
			return nil, 0, ErrUnavailable
		},
		register: func(string) (float64, error) { return 0, ErrUnavailable },
	}
	c := faultyClient(eng, tr, mapReporter{"a": 1})
	eng.Schedule(2, func() { c.Restart() })
	eng.Schedule(6, func() {})
	eng.RunUntil(6)
	if c.State() != StateDegraded {
		t.Fatalf("state = %v, want degraded while registration keeps failing", c.State())
	}
	h := c.Health()
	if h.ReRegisters != 0 {
		t.Errorf("re-registered through a dead transport: %+v", h)
	}
	if h.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", h.Restarts)
	}
}

func TestClientDetachUnregistersAndGoesSilent(t *testing.T) {
	eng := sim.NewEngine()
	calls := 0
	tr := &hookTransport{exchange: func(string, map[iosched.AppID]float64) (map[iosched.AppID]float64, float64, error) {
		calls++
		return map[iosched.AppID]float64{}, 0, nil
	}}
	c := faultyClient(eng, tr, mapReporter{"a": 1})
	eng.Schedule(2.5, func() { c.Detach() })
	eng.Schedule(10, func() {})
	eng.RunUntil(10)

	if !c.Detached() {
		t.Fatal("client not detached")
	}
	if calls != 2 {
		t.Errorf("exchanges after detach: %d calls total, want 2 (t=1, t=2)", calls)
	}
	if len(tr.unregistered) != 1 || tr.unregistered[0] != "n0" {
		t.Errorf("unregistered = %v, want [n0]", tr.unregistered)
	}
	// Idempotent.
	c.Detach()
	if len(tr.unregistered) != 1 {
		t.Errorf("double detach unregistered twice: %v", tr.unregistered)
	}
}

func TestBrokerUnregisterWithdrawsServiceAndPrunes(t *testing.T) {
	b := New()
	b.Exchange("n0", map[iosched.AppID]float64{"a": 10, "b": 4})
	b.Exchange("n1", map[iosched.AppID]float64{"a": 6})
	b.Unregister("n0")
	if got := b.Total("a"); got != 6 {
		t.Errorf("total a = %g, want 6 after n0 withdrew", got)
	}
	if got := b.Total("b"); got != 0 {
		t.Errorf("total b = %g, want 0 (pruned: no live report backs it)", got)
	}
	if apps := b.Apps(); len(apps) != 1 || apps[0] != "a" {
		t.Errorf("apps = %v, want [a]", apps)
	}
	// Unregistering an unknown scheduler is a no-op.
	b.Unregister("ghost")
	if got := b.Total("a"); got != 6 {
		t.Errorf("total a = %g after ghost unregister, want 6", got)
	}
}

func TestBrokerExchangeReturnsDefensiveCopy(t *testing.T) {
	b := New()
	resp := b.Exchange("n0", map[iosched.AppID]float64{"a": 10})
	resp.Apps["a"] = 1e12 // mutate the response
	resp.Tenants["~a"] = 1e12
	if got := b.Total("a"); got != 10 {
		t.Errorf("total mutated through response: %g, want 10", got)
	}
	resp2 := b.Exchange("n1", map[iosched.AppID]float64{"a": 5})
	if got := resp2.Apps["a"]; got != 15 {
		t.Errorf("second response = %g, want 15", got)
	}
}

func TestBrokerRetireBlocksResurrection(t *testing.T) {
	b := New()
	b.Exchange("n0", map[iosched.AppID]float64{"a": 10, "live": 1})
	b.Retire("a")
	// The live totals are pruned (the app no longer appears in Apps or
	// in exchanges) but the final total stays observable as a tombstone.
	if got := b.Total("a"); got != 10 {
		t.Fatalf("retired tombstone total = %g, want 10", got)
	}
	for _, app := range b.Apps() {
		if app == "a" {
			t.Error("retired app still listed in Apps()")
		}
	}
	// A straggler report with the app's full cumulative value must not
	// resurrect it — local accounting never forgets an app.
	resp := b.Exchange("n0", map[iosched.AppID]float64{"a": 12, "live": 2})
	if _, ok := resp.Apps["a"]; ok {
		t.Error("retired app present in exchange response")
	}
	if got := b.Total("a"); got != 10 {
		t.Errorf("retired app resurrected: total = %g, want tombstone 10", got)
	}
	if got := b.Total("live"); got != 2 {
		t.Errorf("live app total = %g, want 2", got)
	}

	// Revive: the next full cumulative report re-adds the service.
	b.Revive("a")
	b.Exchange("n0", map[iosched.AppID]float64{"a": 12, "live": 2})
	if got := b.Total("a"); got != 12 {
		t.Errorf("revived total = %g, want 12", got)
	}
}

func TestBrokerSchedulersSorted(t *testing.T) {
	b := New()
	b.Register("n2")
	b.Register("n0")
	b.Register("n1")
	got := b.Schedulers()
	want := []string{"n0", "n1", "n2"}
	if len(got) != len(want) {
		t.Fatalf("schedulers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schedulers = %v, want %v", got, want)
		}
	}
}

func TestClientStateStrings(t *testing.T) {
	for s, want := range map[ClientState]string{
		StateHealthy:   "healthy",
		StateRetrying:  "retrying",
		StateDegraded:  "degraded",
		ClientState(9): "ClientState(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults(2)
	if p.MaxRetries != 3 || p.BaseBackoff != 0.1 || p.MaxBackoff != 0.5 || p.Timeout != 0.5 || p.DegradeAfter != 2 {
		t.Errorf("defaults = %+v", p)
	}
	// Negative MaxRetries disables retries entirely.
	p = RetryPolicy{MaxRetries: -1}.withDefaults(1)
	if p.MaxRetries != -1 {
		t.Errorf("MaxRetries = %d, want -1 preserved", p.MaxRetries)
	}
}

func TestClientNoRetriesWhenDisabled(t *testing.T) {
	eng := sim.NewEngine()
	calls := 0
	tr := &hookTransport{exchange: func(string, map[iosched.AppID]float64) (map[iosched.AppID]float64, float64, error) {
		calls++
		return nil, 0, ErrUnavailable
	}}
	c := NewClientWithOptions(eng, "n0", mapReporter{}, ClientOptions{
		Transport: tr, Period: 1, Retry: RetryPolicy{MaxRetries: -1},
	})
	eng.Schedule(3.5, func() {})
	eng.RunUntil(3.5)
	if calls != 3 {
		t.Errorf("attempts = %d, want 3 (one per tick, no retries)", calls)
	}
	if h := c.Health(); h.Retries != 0 {
		t.Errorf("retries = %d, want 0", h.Retries)
	}
}
