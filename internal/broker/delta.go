// Delta-compressed state sync for the federated coordination plane.
//
// A DeltaEnc/DeltaDec pair keeps mirrored views of one key→int64 map
// across a link (partition→root service quanta per app, root→partition
// global quanta per tenant). Each Encode call takes the sender's
// complete current state and emits only what changed since the last
// message: newly seen keys are interned into a shared append-only
// dictionary (string sent once, ever), and changed values are encoded
// as zigzag varints of the difference from the mirror — for cumulative
// service counters that difference is one period's worth of quanta,
// a byte or two, against the 24-byte (id, float64) wire entries of the
// centralized full-vector exchange. Keys absent from the current state
// are part of the contract too: a known key missing from cur is an
// explicit transition to zero (retired apps, pruned totals), so the
// mirror never wedges a stale value.
//
// Messages are sequence-numbered; the decoder rejects gaps, which the
// sender repairs with a snapshot: a message from a fresh encoder
// (flagged, full dictionary and state re-sent) that makes the decoder
// zero and reset its mirror before applying. Leader crash recovery
// rides the same path — the recovering partition's sync state is gone,
// so it simply starts a fresh encoder and flags the first message.
//
// Values travel in integer quanta (DefaultQuantum cost units) rather
// than floats: int64 arithmetic is exact, so the root's conservation
// invariant — per-partition mirrors summing to the global totals — is
// an equality, not a tolerance.
package broker

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// DefaultQuantum is the service quantization unit in cost units
// (bytes): fine enough that the delay rule's view is off by at most one
// quantum per tenant per link, coarse enough that one period's delta
// fits a short varint.
const DefaultQuantum = 4096.0

// Codec errors. ErrSeqGap means messages were lost between encoder and
// decoder; the decoder's state is untouched and the sender must resync
// with a snapshot.
var (
	ErrSeqGap     = errors.New("broker: delta message sequence gap")
	errDeltaShort = errors.New("broker: truncated delta message")
)

const (
	deltaFlagSnapshot = 1 << 0

	// maxDeltaName bounds interned key lengths so a corrupt length
	// prefix cannot demand a huge allocation.
	maxDeltaName = 4096
)

// DeltaEnc is the sending half of one link. The zero value is ready to
// use (fresh dictionary, empty mirror, sequence 0).
type DeltaEnc struct {
	idx   map[string]int
	names []string
	prev  []int64
	seq   uint64
}

// Encode emits one message carrying the difference between cur — the
// sender's complete current state — and the mirror, then advances the
// mirror. A known key absent from cur encodes as a transition to zero.
// When snapshot is set the encoder resets itself first, so the message
// is self-contained: full dictionary, every nonzero value, and a flag
// telling the decoder to reset before applying. entries is the number
// of (key, value) changes carried.
func (e *DeltaEnc) Encode(cur map[string]int64, snapshot bool) (msg []byte, entries int) {
	if snapshot {
		e.idx = nil
		e.names = nil
		e.prev = nil
		e.seq = 0
	}
	if e.idx == nil {
		e.idx = make(map[string]int)
	}
	// Intern unseen keys in sorted order so dictionary growth — and the
	// encoded bytes — are a pure function of the state, not map layout.
	var fresh []string
	for k, v := range cur {
		if _, ok := e.idx[k]; !ok && v != 0 {
			fresh = append(fresh, k)
		}
	}
	sort.Strings(fresh)
	for _, k := range fresh {
		e.idx[k] = len(e.names)
		e.names = append(e.names, k)
		e.prev = append(e.prev, 0)
	}
	// Changed entries: every dict index whose current value (0 when the
	// key is absent from cur) differs from the mirror.
	changed := make([]int, 0, len(fresh))
	for i, name := range e.names {
		if cur[name] != e.prev[i] {
			changed = append(changed, i)
		}
	}

	e.seq++
	var flags byte
	if snapshot {
		flags |= deltaFlagSnapshot
	}
	buf := make([]byte, 0, 16+len(changed)*4)
	buf = binary.AppendUvarint(buf, e.seq)
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(fresh)))
	for _, k := range fresh {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(changed)))
	last := -1
	for _, i := range changed {
		buf = binary.AppendUvarint(buf, uint64(i-last))
		buf = binary.AppendVarint(buf, cur[e.names[i]]-e.prev[i])
		e.prev[i] = cur[e.names[i]]
		last = i
	}
	return buf, len(changed)
}

// Seq returns the sequence number of the last encoded message.
func (e *DeltaEnc) Seq() uint64 { return e.seq }

// DeltaDec is the receiving half of one link. The zero value mirrors a
// zero-value DeltaEnc.
type DeltaDec struct {
	names []string
	prev  []int64
	seq   uint64
}

// Decode applies one message to the mirror, invoking apply(name, old,
// new) for every value change — including the implicit zeroing of every
// nonzero entry when a snapshot resets the mirror — so the caller can
// fold deltas into derived aggregates incrementally. On any error
// (sequence gap, truncation, corruption) the mirror is left unchanged
// and no apply calls have been made.
func (d *DeltaDec) Decode(msg []byte, apply func(name string, old, new int64)) (snapshot bool, entries int, err error) {
	seq, n := binary.Uvarint(msg)
	if n <= 0 {
		return false, 0, errDeltaShort
	}
	msg = msg[n:]
	if len(msg) < 1 {
		return false, 0, errDeltaShort
	}
	flags := msg[0]
	msg = msg[1:]
	snapshot = flags&deltaFlagSnapshot != 0
	if !snapshot && seq != d.seq+1 {
		return snapshot, 0, fmt.Errorf("%w: got %d want %d", ErrSeqGap, seq, d.seq+1)
	}

	// Parse fully before mutating, so errors cannot leave the mirror
	// half-applied.
	nFresh, n := binary.Uvarint(msg)
	if n <= 0 || nFresh > uint64(len(msg)) {
		return snapshot, 0, errDeltaShort
	}
	msg = msg[n:]
	fresh := make([]string, 0, nFresh)
	for i := uint64(0); i < nFresh; i++ {
		l, n := binary.Uvarint(msg)
		if n <= 0 || l > maxDeltaName || uint64(len(msg[n:])) < l {
			return snapshot, 0, errDeltaShort
		}
		fresh = append(fresh, string(msg[n:n+int(l)]))
		msg = msg[n+int(l):]
	}
	nEnt, n := binary.Uvarint(msg)
	if n <= 0 || nEnt > uint64(len(msg)) {
		return snapshot, 0, errDeltaShort
	}
	msg = msg[n:]
	type change struct {
		idx int
		d   int64
	}
	changes := make([]change, 0, nEnt)
	base := len(d.names)
	if snapshot {
		base = 0
	}
	last := -1
	for i := uint64(0); i < nEnt; i++ {
		gap, n := binary.Uvarint(msg)
		if n <= 0 {
			return snapshot, 0, errDeltaShort
		}
		msg = msg[n:]
		v, n := binary.Varint(msg)
		if n <= 0 {
			return snapshot, 0, errDeltaShort
		}
		msg = msg[n:]
		idx := last + int(gap)
		if gap == 0 || idx >= base+len(fresh) {
			return snapshot, 0, fmt.Errorf("broker: delta entry index %d out of range", idx)
		}
		changes = append(changes, change{idx: idx, d: v})
		last = idx
	}

	// Commit: reset on snapshot (zeroing the old mirror through apply),
	// grow the dictionary, fold the changes.
	if snapshot {
		for i, v := range d.prev {
			if v != 0 && apply != nil {
				apply(d.names[i], v, 0)
			}
		}
		d.names = nil
		d.prev = nil
	}
	d.seq = seq
	d.names = append(d.names, fresh...)
	for range fresh {
		d.prev = append(d.prev, 0)
	}
	for _, c := range changes {
		old := d.prev[c.idx]
		d.prev[c.idx] += c.d
		if apply != nil {
			apply(d.names[c.idx], old, d.prev[c.idx])
		}
	}
	return snapshot, len(changes), nil
}

// State returns a copy of the mirror's nonzero entries.
func (d *DeltaDec) State() map[string]int64 {
	out := make(map[string]int64)
	for i, v := range d.prev {
		if v != 0 {
			out[d.names[i]] = v
		}
	}
	return out
}

// Seq returns the sequence number of the last applied message.
func (d *DeltaDec) Seq() uint64 { return d.seq }
