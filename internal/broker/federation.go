// Federated coordination plane: the centralized Scheduling Broker
// split into N partition brokers and one root aggregator.
//
// Each Partition owns a disjoint slice of the cluster's schedulers and
// serves their periodic exchanges exactly like the centralized broker
// — same cumulative-vector protocol, same Response shape — against its
// local state. Once per aggregation period it syncs with the root: the
// uplink carries its per-app cumulative service as delta-compressed
// integer quanta (see delta.go), the root folds the changes into
// global per-app and per-tenant totals, and the downlink reply carries
// the changed global tenant quanta back. A client's exchange response
// then merges fresh local tenant totals with the root's view of the
// rest of the cluster:
//
//	Tenants[t] = local_t + max(0, down_t − up_t) × quantum
//
// where down_t is the tenant's global quanta from the last applied
// downlink and up_t this partition's own contribution as of the uplink
// that downlink acknowledged — the subtraction removes the partition's
// double-counted share, and the clamp absorbs the sub-period window
// where local service has outrun the sync. The DSFQ delay rule only
// needs eventually-consistent remote totals, so the hierarchy's extra
// staleness (≤ 2 aggregation periods plus the round trip) widens the
// audit's fairness bound rather than breaking it; the audit's
// share-federated regime makes that bound explicit.
//
// Failure model. A partition leader can be down (SetDownOracle):
// exchanges and registrations fail with ErrUnavailable — clients
// retry, degrade to local SFQ(D), recover, exactly as under a
// centralized outage — and syncs stop. Recovery is a crash recovery:
// the leader's in-memory sync state is gone, so it resets its report
// state (the cumulative client protocol re-fills it idempotently) and
// resyncs with a snapshot uplink; the root answers with a snapshot
// downlink. A partition that has not applied a downlink for
// StaleAfter seconds fails exchanges too, so schedulers fall back to
// local fairness instead of running on arbitrarily stale totals.
package broker

import (
	"fmt"

	"ibis/internal/iosched"
	"ibis/internal/sim"
)

// FedStats counts federation-plane traffic: the partition↔root sync
// messages, their decoded entries, and their actual wire bytes — the
// numbers behind the O(delta) claim.
type FedStats struct {
	// Syncs counts uplink messages applied by the root (each produces
	// one downlink reply).
	Syncs uint64
	// Snapshots counts snapshot resyncs among them.
	Snapshots uint64
	// UpEntries / DownEntries are decoded (key, value) changes carried.
	UpEntries, DownEntries uint64
	// UpBytes / DownBytes are encoded message bytes on the wire.
	UpBytes, DownBytes uint64
	// SeqGaps counts uplinks rejected for a sequence gap (the sender
	// repairs with a snapshot on its next period).
	SeqGaps uint64
}

// Bytes returns total federation-plane wire volume.
func (s FedStats) Bytes() uint64 { return s.UpBytes + s.DownBytes }

// Merge folds other into s.
func (s *FedStats) Merge(o FedStats) {
	s.Syncs += o.Syncs
	s.Snapshots += o.Snapshots
	s.UpEntries += o.UpEntries
	s.DownEntries += o.DownEntries
	s.UpBytes += o.UpBytes
	s.DownBytes += o.DownBytes
	s.SeqGaps += o.SeqGaps
}

// Partition is one partition broker: a local Broker for its slice of
// schedulers plus the sync state of its link to the root.
type Partition struct {
	id      int
	b       *Broker
	quantum float64

	// StaleAfter bounds downlink staleness: past it, exchanges fail
	// with ErrUnavailable until a sync lands (0 disables).
	staleAfter float64
	down       func(now float64) bool // leader-outage oracle; nil = never

	upEnc DeltaEnc
	upCur map[string]int64 // scratch for BuildUplink

	downDec     DeltaDec
	downTenantQ map[string]int64 // tenant → global quanta, last applied downlink
	// upTenantQ is this partition's per-tenant quanta as of the uplink
	// the last downlink acknowledged; pendingUpTenantQ is the same for
	// the uplink still in flight (promoted when its downlink arrives).
	upTenantQ        map[string]int64
	pendingUpTenantQ map[string]int64

	wasDown      bool
	needSnapshot bool
	synced       bool
	lastDownAt   float64
}

// NewPartition creates partition p's broker. shares attributes apps to
// tenants (as in Broker.SetShares); staleAfter bounds tolerated
// downlink staleness in seconds (the cluster wires K × aggregation
// period).
func NewPartition(id int, shares ShareView, staleAfter float64) *Partition {
	b := New()
	b.SetShares(shares)
	return &Partition{
		id:         id,
		b:          b,
		quantum:    DefaultQuantum,
		staleAfter: staleAfter,
		// The first uplink is an explicit snapshot: a replaced leader
		// must overwrite whatever mirror the root still holds for this
		// partition id.
		needSnapshot: true,
		upCur:        make(map[string]int64),
		downTenantQ:  make(map[string]int64),
		upTenantQ:    make(map[string]int64),
	}
}

// Broker returns the partition's local broker (its exchange stats are
// the per-partition slice of the centralized-equivalent traffic).
func (p *Partition) Broker() *Broker { return p.b }

// ID returns the partition index.
func (p *Partition) ID() int { return p.id }

// SetDownOracle installs the leader-outage oracle (nil = always up).
func (p *Partition) SetDownOracle(fn func(now float64) bool) { p.down = fn }

// Down reports whether the leader is down at time now.
func (p *Partition) Down(now float64) bool { return p.down != nil && p.down(now) }

// Stale reports whether the partition's root view is older than the
// staleness budget allows.
func (p *Partition) Stale(now float64) bool {
	return p.staleAfter > 0 && p.synced && now-p.lastDownAt > p.staleAfter
}

// Exchange serves one scheduler's coordination round against the local
// broker, then widens the tenant aggregates to the cluster-wide totals
// using the root's last downlink. It fails with ErrUnavailable while
// the leader is down or its root view too stale — the client-side
// retry/degrade machinery handles both exactly like a centralized
// outage.
func (p *Partition) Exchange(scheduler string, vector map[iosched.AppID]float64, now float64) (Response, error) {
	if p.Down(now) {
		p.wasDown = true
		return Response{}, ErrUnavailable
	}
	p.recoverIfNeeded(now)
	if p.Stale(now) {
		return Response{}, ErrUnavailable
	}
	resp := p.b.Exchange(scheduler, vector)
	for t := range resp.Tenants {
		resp.Tenants[t] += p.remoteTenant(t)
	}
	return resp, nil
}

// Register is the registration handshake, gated like Exchange.
func (p *Partition) Register(scheduler string, now float64) error {
	if p.Down(now) {
		p.wasDown = true
		return ErrUnavailable
	}
	p.recoverIfNeeded(now)
	p.b.Register(scheduler)
	return nil
}

// Unregister removes a scheduler (out-of-band death detection; not
// gated on leader health, matching the centralized transport).
func (p *Partition) Unregister(scheduler string) { p.b.Unregister(scheduler) }

// remoteTenant is the service tenant t received outside this partition,
// per the last sync round trip: global minus own contribution, clamped
// — local service may have outrun the sync by a sub-period amount.
func (p *Partition) remoteTenant(t string) float64 {
	r := p.downTenantQ[t] - p.upTenantQ[t]
	if r <= 0 {
		return 0
	}
	return float64(r) * p.quantum
}

// recoverIfNeeded performs crash recovery on the first contact after
// an outage window — before the partition serves anything, so that
// exchanges arriving between recovery and the next uplink rebuild the
// reports instead of being wiped by a lazily-timed reset.
func (p *Partition) recoverIfNeeded(now float64) {
	if p.wasDown {
		p.crashRecover(now)
	}
}

// BuildUplink assembles the next sync message at time now, or returns
// ok=false while the leader is down. The first call after an outage
// performs crash recovery: report and sync state are reset (the
// cumulative client protocol re-fills the reports idempotently) and
// the message is a snapshot from a fresh encoder.
func (p *Partition) BuildUplink(now float64) (msg []byte, entries int, ok bool) {
	if p.Down(now) {
		p.wasDown = true
		return nil, 0, false
	}
	p.recoverIfNeeded(now)
	for k := range p.upCur {
		delete(p.upCur, k)
	}
	for app, total := range p.b.totals {
		p.upCur[string(app)] = int64(total / p.quantum)
	}
	snapshot := p.needSnapshot
	msg, entries = p.upEnc.Encode(p.upCur, snapshot)
	p.needSnapshot = false
	// Remember this uplink's per-tenant contribution; it becomes the
	// subtraction base when the matching downlink arrives.
	pend := make(map[string]int64, len(p.upTenantQ))
	for app, q := range p.upCur {
		pend[p.b.tenantOf(iosched.AppID(app))] += q
	}
	p.pendingUpTenantQ = pend
	return msg, entries, true
}

// crashRecover models the leader process coming back empty: sync state
// and report vectors are gone (retirement tombstones survive — they
// are control-plane state from the resource manager, not leader
// memory), and the next uplink must be a snapshot. Client exchanges
// rebuild the reports cumulatively; until the rebuild and the next
// sync land, the partition's totals are partial, which is exactly the
// window the audit's degradation grace covers.
func (p *Partition) crashRecover(now float64) {
	p.wasDown = false
	p.needSnapshot = true
	p.b.ResetReports()
	p.upEnc = DeltaEnc{}
	p.downDec = DeltaDec{}
	p.downTenantQ = make(map[string]int64)
	p.upTenantQ = make(map[string]int64)
	p.pendingUpTenantQ = nil
	p.synced = false
	p.lastDownAt = now
}

// ApplyDownlink folds one root reply into the partition's remote view.
func (p *Partition) ApplyDownlink(msg []byte, now float64) error {
	_, _, err := p.downDec.Decode(msg, func(tenant string, _, new int64) {
		if new == 0 {
			delete(p.downTenantQ, tenant)
			return
		}
		p.downTenantQ[tenant] = new
	})
	if err != nil {
		// A gap here means the root answered from state we never sent
		// (possible only around crashes); force a snapshot round.
		p.needSnapshot = true
		return err
	}
	if p.pendingUpTenantQ != nil {
		p.upTenantQ = p.pendingUpTenantQ
		p.pendingUpTenantQ = nil
	}
	p.synced = true
	p.lastDownAt = now
	return nil
}

// Aggregator is the root of the federation: per-partition mirrors of
// uplinked app quanta, global per-app and per-tenant totals maintained
// incrementally in exact int64 arithmetic, and one downlink encoder
// per partition.
type Aggregator struct {
	shares  ShareView
	quantum float64

	parts map[int]*aggPart

	globalApp    map[string]int64
	globalTenant map[string]int64
	tenantCache  map[string]string
	shareEpoch   uint64

	probe func()
	stats FedStats
}

type aggPart struct {
	dec DeltaDec
	enc DeltaEnc
	// tenantQ regroups the partition's mirror by tenant — the hosted
	// set its downlink is scoped to. A tenant whose apps never crossed
	// one quantum in this partition is not hosted: its sub-quantum local
	// service needs no cross-partition compensation.
	tenantQ map[string]int64
}

// NewAggregator creates the root. shares must attribute apps to
// tenants identically to every partition's view (the cluster passes
// the same tree to both).
func NewAggregator(shares ShareView) *Aggregator {
	return &Aggregator{
		shares:       shares,
		quantum:      DefaultQuantum,
		parts:        make(map[int]*aggPart),
		globalApp:    make(map[string]int64),
		globalTenant: make(map[string]int64),
		tenantCache:  make(map[string]string),
	}
}

// SetProbe installs a callback fired after every applied uplink (the
// audit wires its conservation check here).
func (a *Aggregator) SetProbe(fn func()) { a.probe = fn }

func (a *Aggregator) part(p int) *aggPart {
	ap := a.parts[p]
	if ap == nil {
		ap = &aggPart{tenantQ: make(map[string]int64)}
		a.parts[p] = ap
	}
	return ap
}

func (a *Aggregator) tenant(app string) string {
	if t, ok := a.tenantCache[app]; ok {
		return t
	}
	var t string
	if a.shares != nil {
		t = a.shares.TenantOf(iosched.AppID(app))
	} else {
		t = implicitTenant(iosched.AppID(app))
	}
	a.tenantCache[app] = t
	return t
}

// refreshEpoch invalidates tenant attribution when the share tree
// moved, rebuilding the tenant totals from the app totals (rare:
// epochs move on reweights and bindings, not on traffic).
func (a *Aggregator) refreshEpoch() {
	if a.shares == nil || a.shares.Epoch() == a.shareEpoch {
		return
	}
	a.shareEpoch = a.shares.Epoch()
	a.tenantCache = make(map[string]string)
	a.globalTenant = make(map[string]int64)
	for app, q := range a.globalApp {
		a.globalTenant[a.tenant(app)] += q
	}
	for _, ap := range a.parts {
		ap.tenantQ = make(map[string]int64)
		for app, q := range ap.dec.State() {
			ap.tenantQ[a.tenant(app)] += q
		}
	}
}

// HandleUplink applies one partition sync message and returns the
// downlink reply: the changed global quanta of the tenants this
// partition hosts — not the whole cluster's tenant table, which would
// make the downlink O(tenants) regardless of locality (full state, as
// a snapshot, when the uplink was one — the partition's downlink
// decoder is fresh too). A sequence-gap uplink is rejected with
// ErrSeqGap and no reply; the sender snapshots next period.
func (a *Aggregator) HandleUplink(p int, msg []byte) (down []byte, err error) {
	a.refreshEpoch()
	ap := a.part(p)
	snapshot, entries, err := ap.dec.Decode(msg, func(app string, old, new int64) {
		a.bump(app, new-old)
		t := a.tenant(app)
		if v := ap.tenantQ[t] + new - old; v == 0 {
			delete(ap.tenantQ, t)
		} else {
			ap.tenantQ[t] = v
		}
	})
	if err != nil {
		a.stats.SeqGaps++
		return nil, err
	}
	a.stats.Syncs++
	if snapshot {
		a.stats.Snapshots++
		ap.enc = DeltaEnc{}
	}
	a.stats.UpEntries += uint64(entries)
	a.stats.UpBytes += uint64(len(msg))
	downCur := make(map[string]int64, len(ap.tenantQ))
	for t := range ap.tenantQ {
		downCur[t] = a.globalTenant[t]
	}
	down, n := ap.enc.Encode(downCur, snapshot)
	a.stats.DownEntries += uint64(n)
	a.stats.DownBytes += uint64(len(down))
	if a.probe != nil {
		a.probe()
	}
	return down, nil
}

func (a *Aggregator) bump(app string, delta int64) {
	if delta == 0 {
		return
	}
	if v := a.globalApp[app] + delta; v == 0 {
		delete(a.globalApp, app)
	} else {
		a.globalApp[app] = v
	}
	t := a.tenant(app)
	if v := a.globalTenant[t] + delta; v == 0 {
		delete(a.globalTenant, t)
	} else {
		a.globalTenant[t] = v
	}
}

// TotalQuanta returns the global cumulative quanta of one app.
func (a *Aggregator) TotalQuanta(app iosched.AppID) int64 { return a.globalApp[string(app)] }

// TenantQuanta returns the global cumulative quanta of one tenant.
func (a *Aggregator) TenantQuanta(tenant string) int64 { return a.globalTenant[tenant] }

// Stats returns the accumulated federation traffic counters.
func (a *Aggregator) Stats() FedStats { return a.stats }

// CheckConservation verifies the root's books in exact arithmetic: the
// per-app sum of the partition mirrors must equal the global app
// totals, and the per-tenant regrouping of the app totals must equal
// the global tenant totals. It returns the first discrepancy found.
func (a *Aggregator) CheckConservation() error {
	sums := make(map[string]int64, len(a.globalApp))
	for _, ap := range a.parts {
		for app, q := range ap.dec.State() {
			sums[app] += q
		}
	}
	for app, q := range a.globalApp {
		if sums[app] != q {
			return fmt.Errorf("broker: federation conservation: app %s mirrors sum %d != global %d", app, sums[app], q)
		}
	}
	for app, q := range sums {
		if a.globalApp[app] != q {
			return fmt.Errorf("broker: federation conservation: app %s mirrors sum %d != global %d", app, q, a.globalApp[app])
		}
	}
	tenants := make(map[string]int64, len(a.globalTenant))
	for app, q := range a.globalApp {
		tenants[a.tenant(app)] += q
	}
	for t, q := range a.globalTenant {
		if tenants[t] != q {
			return fmt.Errorf("broker: federation conservation: tenant %s regrouped %d != global %d", t, tenants[t], q)
		}
	}
	for t, q := range tenants {
		if a.globalTenant[t] != q {
			return fmt.Errorf("broker: federation conservation: tenant %s regrouped %d != global %d", t, q, a.globalTenant[t])
		}
	}
	for p, ap := range a.parts {
		regroup := make(map[string]int64, len(ap.tenantQ))
		for app, q := range ap.dec.State() {
			regroup[a.tenant(app)] += q
		}
		for t, q := range regroup {
			if ap.tenantQ[t] != q {
				return fmt.Errorf("broker: federation conservation: partition %d tenant %s hosted %d != regrouped %d", p, t, ap.tenantQ[t], q)
			}
		}
		for t, q := range ap.tenantQ {
			if regroup[t] != q {
				return fmt.Errorf("broker: federation conservation: partition %d tenant %s hosted %d != regrouped %d", p, t, q, regroup[t])
			}
		}
	}
	return nil
}

// PartitionTransport is the direct in-process transport to one
// partition broker — the federated analog of NewDirectTransport, used
// by single-engine tests. Exchange outcomes depend on virtual time
// (leader outages, staleness), hence the engine.
type PartitionTransport struct {
	P   *Partition
	Eng *sim.Engine
}

var _ Transport = (*PartitionTransport)(nil)

// Exchange implements Transport.
func (t *PartitionTransport) Exchange(id string, vec map[iosched.AppID]float64) (Response, float64, error) {
	resp, err := t.P.Exchange(id, vec, t.Eng.Now())
	return resp, 0, err
}

// Register implements Transport.
func (t *PartitionTransport) Register(id string) (float64, error) {
	return 0, t.P.Register(id, t.Eng.Now())
}

// Unregister implements Transport.
func (t *PartitionTransport) Unregister(id string) { t.P.Unregister(id) }
