package broker

import (
	"errors"
	"testing"

	"ibis/internal/iosched"
)

// sync runs one partition↔root round trip, failing the test on any
// protocol error.
func sync(t *testing.T, ag *Aggregator, p *Partition, now float64) {
	t.Helper()
	msg, _, ok := p.BuildUplink(now)
	if !ok {
		t.Fatalf("t=%v: uplink suppressed", now)
	}
	down, err := ag.HandleUplink(p.ID(), msg)
	if err != nil {
		t.Fatalf("t=%v: uplink rejected: %v", now, err)
	}
	if err := p.ApplyDownlink(down, now); err != nil {
		t.Fatalf("t=%v: downlink rejected: %v", now, err)
	}
}

// TestFederationMergesRemoteTenantService: a scheduler on partition 0
// must see partition 1's service for the same tenant folded into its
// exchange response — the quantity the DSFQ delay rule feeds on.
func TestFederationMergesRemoteTenantService(t *testing.T) {
	ag := NewAggregator(nil)
	p0 := NewPartition(0, nil, 0)
	p1 := NewPartition(1, nil, 0)

	q := DefaultQuantum
	if _, err := p0.Exchange("n0", map[iosched.AppID]float64{"A": 10 * q}, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Exchange("n1", map[iosched.AppID]float64{"A": 30 * q}, 0.1); err != nil {
		t.Fatal(err)
	}
	sync(t, ag, p0, 1)
	sync(t, ag, p1, 1)
	// p0 uplinked before p1's service reached the root; one more round
	// lands the global view everywhere.
	sync(t, ag, p0, 2)
	sync(t, ag, p1, 2)

	if got := ag.TotalQuanta("A"); got != 40 {
		t.Fatalf("root quanta = %d, want 40", got)
	}
	resp, err := p0.Exchange("n0", map[iosched.AppID]float64{"A": 10 * q}, 2.1)
	if err != nil {
		t.Fatal(err)
	}
	// Local 10q plus remote 30q, at quantum granularity.
	if got := resp.Tenants["~A"]; got != 40*q {
		t.Fatalf("merged tenant service = %v, want %v", got, 40*q)
	}
	// The app-level view stays local: cross-partition reconciliation is
	// tenant-granular by design.
	if got := resp.Apps["A"]; got != 10*q {
		t.Fatalf("local app service = %v, want %v", got, 10*q)
	}
	if err := ag.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestFederationLeaderOutageRecovery: while the leader is down,
// exchanges fail with ErrUnavailable (clients degrade); the first
// uplink after recovery is a snapshot that resyncs the root from the
// rebuilt local state without double counting.
func TestFederationLeaderOutageRecovery(t *testing.T) {
	ag := NewAggregator(nil)
	p := NewPartition(0, nil, 0)
	down := false
	p.SetDownOracle(func(float64) bool { return down })

	q := DefaultQuantum
	if _, err := p.Exchange("n0", map[iosched.AppID]float64{"A": 5 * q}, 0.5); err != nil {
		t.Fatal(err)
	}
	sync(t, ag, p, 1)
	if got := ag.TotalQuanta("A"); got != 5 {
		t.Fatalf("root quanta = %d, want 5", got)
	}

	down = true
	if _, err := p.Exchange("n0", map[iosched.AppID]float64{"A": 6 * q}, 1.5); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("exchange during outage: %v, want ErrUnavailable", err)
	}
	if _, _, ok := p.BuildUplink(2); ok {
		t.Fatal("dead leader produced an uplink")
	}

	down = false
	// The recovered leader restarts with empty report memory; the
	// scheduler's cumulative vector rebuilds the total in one exchange.
	if _, err := p.Exchange("n0", map[iosched.AppID]float64{"A": 8 * q}, 2.5); err != nil {
		t.Fatal(err)
	}
	msg, _, ok := p.BuildUplink(3)
	if !ok {
		t.Fatal("recovered leader suppressed uplink")
	}
	downMsg, err := ag.HandleUplink(0, msg)
	if err != nil {
		t.Fatal(err)
	}
	if got := ag.Stats().Snapshots; got < 2 {
		t.Fatalf("snapshots = %d: crash recovery did not snapshot", got)
	}
	if err := p.ApplyDownlink(downMsg, 3); err != nil {
		t.Fatal(err)
	}
	if got := ag.TotalQuanta("A"); got != 8 {
		t.Fatalf("root quanta after recovery = %d, want 8 (no double count)", got)
	}
	if err := ag.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestFederationStalenessFailsExchanges: a partition cut off from the
// root past its staleness bound must fail exchanges rather than run the
// delay rule on an arbitrarily old remote view.
func TestFederationStalenessFailsExchanges(t *testing.T) {
	ag := NewAggregator(nil)
	p := NewPartition(0, nil, 2.0) // staleAfter = 2 s
	if _, err := p.Exchange("n0", map[iosched.AppID]float64{"A": 1 * DefaultQuantum}, 0.5); err != nil {
		t.Fatal(err)
	}
	// Never synced: exchanges keep working on purely local totals (the
	// bound starts at the first applied downlink).
	if _, err := p.Exchange("n0", map[iosched.AppID]float64{"A": 2 * DefaultQuantum}, 5); err != nil {
		t.Fatalf("unsynced partition must stay local, got %v", err)
	}
	sync(t, ag, p, 6)
	if _, err := p.Exchange("n0", map[iosched.AppID]float64{"A": 3 * DefaultQuantum}, 7); err != nil {
		t.Fatalf("fresh view: %v", err)
	}
	if _, err := p.Exchange("n0", map[iosched.AppID]float64{"A": 4 * DefaultQuantum}, 8.5); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("stale view exchange: %v, want ErrUnavailable", err)
	}
	if !p.Stale(8.5) {
		t.Fatal("Stale(8.5) = false with 2.5s-old view and 2s bound")
	}
	sync(t, ag, p, 9)
	if _, err := p.Exchange("n0", map[iosched.AppID]float64{"A": 5 * DefaultQuantum}, 9.5); err != nil {
		t.Fatalf("resynced view: %v", err)
	}
}

// TestFederationDownlinkScopedToHostedTenants: partition 0's downlink
// must carry only tenants partition 0 hosts — the O(delta)-per-link
// property the bytes gate regresses on.
func TestFederationDownlinkScopedToHostedTenants(t *testing.T) {
	ag := NewAggregator(nil)
	p0 := NewPartition(0, nil, 0)
	p1 := NewPartition(1, nil, 0)
	q := DefaultQuantum
	if _, err := p0.Exchange("n0", map[iosched.AppID]float64{"A": 10 * q}, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Exchange("n1", map[iosched.AppID]float64{"B": 20 * q}, 0.1); err != nil {
		t.Fatal(err)
	}
	sync(t, ag, p0, 1)
	sync(t, ag, p1, 1)
	sync(t, ag, p0, 2)

	// p0 hosts only tenant ~A; p1's tenant ~B must not appear in its
	// remote view even though the root knows it.
	if got := ag.TenantQuanta("~B"); got != 20 {
		t.Fatalf("root has ~B = %d, want 20", got)
	}
	resp, err := p0.Exchange("n0", map[iosched.AppID]float64{"A": 10 * q}, 2.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.Tenants["~B"]; ok {
		t.Fatal("downlink leaked a tenant the partition does not host")
	}
	if err := ag.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestFederationRetirePropagatesAsExplicitZero: retiring an app on the
// partition broker must flow to the root as an explicit zero delta,
// removing its quanta from the global totals without a snapshot.
func TestFederationRetirePropagatesAsExplicitZero(t *testing.T) {
	ag := NewAggregator(nil)
	p := NewPartition(0, nil, 0)
	q := DefaultQuantum
	if _, err := p.Exchange("n0", map[iosched.AppID]float64{"A": 10 * q, "B": 4 * q}, 0.1); err != nil {
		t.Fatal(err)
	}
	sync(t, ag, p, 1)
	if got := ag.TotalQuanta("A"); got != 10 {
		t.Fatalf("root quanta A = %d, want 10", got)
	}
	p.Broker().Retire("A")
	sync(t, ag, p, 2)
	if got := ag.TotalQuanta("A"); got != 0 {
		t.Fatalf("root quanta A after retire = %d, want 0", got)
	}
	if got := ag.TotalQuanta("B"); got != 4 {
		t.Fatalf("root quanta B = %d, want 4", got)
	}
	if got := ag.Stats().Snapshots; got != 1 {
		t.Fatalf("snapshots = %d: retirement must ride the delta stream", got)
	}
	if err := ag.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
