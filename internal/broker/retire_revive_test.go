package broker

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"ibis/internal/iosched"
)

// TestReviveRestoresExactContinuity pins the Revive snapshot fix: a
// revived app must resume with its full pre-retirement total and
// per-scheduler report baselines, so the next exchange applies only the
// true delta accrued since retirement.
func TestReviveRestoresExactContinuity(t *testing.T) {
	b := New()
	b.Exchange("n1", map[iosched.AppID]float64{"A": 100})
	b.Exchange("n2", map[iosched.AppID]float64{"A": 50})
	b.Retire("A")
	if got := b.Total("A"); got != 150 {
		t.Fatalf("tombstone total = %v, want 150", got)
	}
	b.Revive("A")
	// The regression: Revive used to only clear the retired flag, so the
	// total was 0 here and the next exchange re-added n1's FULL
	// cumulative (100) instead of its delta.
	if got := b.Total("A"); got != 150 {
		t.Fatalf("revived total = %v, want 150 (exact continuity)", got)
	}
	resp := b.Exchange("n1", map[iosched.AppID]float64{"A": 120})
	if got := resp.Apps["A"]; got != 170 {
		t.Fatalf("post-revive exchange total = %v, want 170 (150 + delta 20)", got)
	}
}

// TestReviveThenUnregisterNeverSurfacesTombstone pins the second half
// of the bug: after Revive, unregistering every backing scheduler must
// leave Total at zero — not resurrect the stale tombstone through the
// finals fallback.
func TestReviveThenUnregisterNeverSurfacesTombstone(t *testing.T) {
	b := New()
	b.Exchange("n1", map[iosched.AppID]float64{"A": 100})
	b.Exchange("n2", map[iosched.AppID]float64{"A": 50})
	b.Retire("A")
	b.Revive("A")
	b.Unregister("n1")
	b.Unregister("n2")
	if got := b.Total("A"); got != 0 {
		t.Fatalf("total after revive + full unregister = %v, want 0 (no tombstone leak)", got)
	}
}

// TestReviveDropsEntriesOfDepartedSchedulers: a scheduler that
// unregistered while the app was retired must not be resurrected by
// Revive — its service left the cluster with it.
func TestReviveDropsEntriesOfDepartedSchedulers(t *testing.T) {
	b := New()
	b.Exchange("n1", map[iosched.AppID]float64{"A": 100})
	b.Exchange("n2", map[iosched.AppID]float64{"A": 50})
	b.Retire("A")
	b.Unregister("n2")
	b.Revive("A")
	if got := b.Total("A"); got != 100 {
		t.Fatalf("revived total = %v, want 100 (n2's 50 departed)", got)
	}
	resp := b.Exchange("n1", map[iosched.AppID]float64{"A": 110})
	if got := resp.Apps["A"]; got != 110 {
		t.Fatalf("post-revive total = %v, want 110", got)
	}
}

// TestRetireReviveIdempotence: double Retire keeps the first tombstone;
// Revive of a live app is a no-op.
func TestRetireReviveIdempotence(t *testing.T) {
	b := New()
	b.Exchange("n1", map[iosched.AppID]float64{"A": 100})
	b.Retire("A")
	b.Exchange("n1", map[iosched.AppID]float64{"A": 999}) // skipped while retired
	b.Retire("A")
	if got := b.Total("A"); got != 100 {
		t.Fatalf("double-retire tombstone = %v, want 100", got)
	}
	b.Revive("A")
	b.Revive("A")
	if got := b.Total("A"); got != 100 {
		t.Fatalf("double-revive total = %v, want 100", got)
	}
}

// conservationCheck asserts the broker's core invariant: for every
// non-retired app the incrementally maintained total equals the sum of
// the latest per-scheduler reports.
func conservationCheck(t *testing.T, b *Broker, step string) {
	t.Helper()
	sums := b.ReportedTotals()
	for _, app := range b.Apps() {
		if b.Retired(app) {
			continue
		}
		got, want := b.Total(app), sums[app]
		if diff := math.Abs(got - want); diff > 1e-6*math.Max(1, math.Abs(want)) {
			t.Fatalf("%s: app %s total %v != reported sum %v", step, app, got, want)
		}
		if got < 0 {
			t.Fatalf("%s: app %s total %v negative", step, app, got)
		}
	}
}

// TestRetireReviveUnregisterInterleavings drives seeded random
// interleavings of the full scheduler/app lifecycle — monotone
// cumulative exchanges, retire, revive, unregister, broker restart —
// and asserts conservation plus tombstone stability after every
// operation.
func TestRetireReviveUnregisterInterleavings(t *testing.T) {
	apps := []iosched.AppID{"A", "B", "C"}
	scheds := []string{"s1", "s2", "s3"}
	for seed := uint64(1); seed <= 20; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := seed * 0x9e3779b97f4a7c15
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			b := New()
			// cum[sched][app] is the model's monotone local accounting —
			// it never forgets, exactly like scheduler accounting.
			cum := map[string]map[iosched.AppID]float64{}
			for _, s := range scheds {
				cum[s] = map[iosched.AppID]float64{}
			}
			live := map[string]bool{}
			tombstone := map[iosched.AppID]float64{}
			for op := 0; op < 400; op++ {
				step := fmt.Sprintf("seed %d op %d", seed, op)
				switch next(10) {
				case 0, 1, 2, 3, 4, 5: // exchange: the common case
					s := scheds[next(len(scheds))]
					for _, a := range apps {
						if next(3) > 0 {
							cum[s][a] += float64(next(100))
						}
					}
					vec := make(map[iosched.AppID]float64, len(cum[s]))
					for a, v := range cum[s] {
						vec[a] = v
					}
					b.Exchange(s, vec)
					live[s] = true
				case 6: // retire
					a := apps[next(len(apps))]
					if !b.Retired(a) {
						b.Retire(a)
						tombstone[a] = b.Total(a)
					}
				case 7: // revive
					a := apps[next(len(apps))]
					b.Revive(a)
					delete(tombstone, a)
				case 8: // unregister
					s := scheds[next(len(scheds))]
					b.Unregister(s)
					delete(live, s)
					// The model forgets with the broker: a re-registering
					// scheduler is a new process reporting from zero.
					cum[s] = map[iosched.AppID]float64{}
				case 9: // broker restart
					b.ResetReports()
					// Live report vectors rebuild on the next exchange of
					// each scheduler; until then conservation holds
					// vacuously (both sides empty). Tombstones survive.
					for s := range live {
						delete(live, s)
						cum[s] = map[iosched.AppID]float64{}
					}
				}
				conservationCheck(t, b, step)
				for a, want := range tombstone {
					if !b.Retired(a) {
						t.Fatalf("%s: app %s lost retired flag", step, a)
					}
					if got := b.Total(a); got != want {
						t.Fatalf("%s: retired app %s total drifted %v -> %v", step, a, want, got)
					}
				}
				// Registered-scheduler view must stay sorted and
				// consistent with the model's live set minus restarts.
				got := b.Schedulers()
				if !sort.StringsAreSorted(got) {
					t.Fatalf("%s: schedulers unsorted: %v", step, got)
				}
			}
		})
	}
}
