package storage

import (
	"fmt"

	"ibis/internal/sim"
)

// ProfilePoint records the outcome of a closed-loop probe at one
// concurrency level.
type ProfilePoint struct {
	Concurrency int
	Throughput  float64 // bytes/second
	MeanLatency float64 // seconds
}

// Profile is the result of running the offline reference-latency
// calibration the paper describes in Section 4: a synthetic workload with
// increasing I/O concurrency, measuring latency and throughput; the
// latency observed just before the device saturates becomes Lref.
type Profile struct {
	Read  []ProfilePoint
	Write []ProfilePoint
	// ReadLref and WriteLref are the chosen reference latencies.
	ReadLref  float64
	WriteLref float64
}

// Lref returns the reference latency weighted by the given read fraction,
// implementing the paper's read/write-mix-weighted reference for
// asymmetric devices.
func (p Profile) Lref(readFrac float64) float64 {
	if readFrac < 0 {
		readFrac = 0
	}
	if readFrac > 1 {
		readFrac = 1
	}
	return readFrac*p.ReadLref + (1-readFrac)*p.WriteLref
}

// ProfileOptions configures the calibration probe.
type ProfileOptions struct {
	// RequestSize is the probe request size, bytes. Default 2 MB — the
	// execution engine's default chunking granularity, so the
	// reference latency is measured with representative requests.
	RequestSize float64
	// MaxConcurrency is the deepest queue probed. Default 16.
	MaxConcurrency int
	// Duration is the probe length per concurrency level, seconds of
	// virtual time. Default 30.
	Duration float64
	// SaturationFraction: the knee search starts at the smallest
	// concurrency achieving this fraction of the peak throughput.
	// Default 0.8.
	SaturationFraction float64
}

func (o *ProfileOptions) defaults() {
	if o.RequestSize <= 0 {
		o.RequestSize = 2e6
	}
	if o.MaxConcurrency <= 0 {
		o.MaxConcurrency = 16
	}
	if o.Duration <= 0 {
		o.Duration = 30
	}
	if o.SaturationFraction <= 0 || o.SaturationFraction >= 1 {
		o.SaturationFraction = 0.8
	}
}

// ProfileDevice performs the offline calibration for a device spec. It
// simulates closed loops of reads and of writes at each concurrency level
// on a private engine (the real device is never disturbed) and derives
// reference latencies. This needs to run once per storage setup, exactly
// as in the paper.
func ProfileDevice(spec Spec, opts ProfileOptions) (Profile, error) {
	if err := spec.Validate(); err != nil {
		return Profile{}, err
	}
	opts.defaults()
	// Flushes are a runtime disturbance, not part of the steady-state
	// reference; profile with them disabled like a short calibration run.
	probeSpec := spec
	probeSpec.FlushThreshold = 0

	var prof Profile
	for _, kind := range []OpKind{Read, Write} {
		points := make([]ProfilePoint, 0, opts.MaxConcurrency)
		for n := 1; n <= opts.MaxConcurrency; n++ {
			points = append(points, probe(probeSpec, kind, n, opts))
		}
		lref, err := pickReference(points, opts.SaturationFraction)
		if err != nil {
			return Profile{}, fmt.Errorf("storage: profiling %s %s: %w", spec.Name, kind, err)
		}
		if kind == Read {
			prof.Read = points
			prof.ReadLref = lref
		} else {
			prof.Write = points
			prof.WriteLref = lref
		}
	}
	return prof, nil
}

// probe runs one closed-loop measurement: n outstanding requests are kept
// in flight for the configured duration.
func probe(spec Spec, kind OpKind, n int, opts ProfileOptions) ProfilePoint {
	eng := sim.NewEngine()
	dev := NewDevice(eng, "probe", spec)
	var bytes, latSum float64
	var ops uint64
	var issue func()
	issue = func() {
		dev.Submit(kind, opts.RequestSize, func(lat float64) {
			bytes += opts.RequestSize
			latSum += lat
			ops++
			if eng.Now() < opts.Duration {
				issue()
			}
		})
	}
	for i := 0; i < n; i++ {
		issue()
	}
	end := eng.Run()
	if end <= 0 || ops == 0 {
		return ProfilePoint{Concurrency: n}
	}
	return ProfilePoint{
		Concurrency: n,
		Throughput:  bytes / end,
		MeanLatency: latSum / float64(ops),
	}
}

// pickReference selects the mean latency at the knee of the
// throughput-vs-concurrency curve: the smallest concurrency where both
// (a) throughput has reached satFrac of the eventual peak and (b) the
// marginal gain of one more outstanding request drops below 1% — "the
// I/O latency observed before the storage starts to saturate".
func pickReference(points []ProfilePoint, satFrac float64) (float64, error) {
	peak := 0.0
	for _, p := range points {
		if p.Throughput > peak {
			peak = p.Throughput
		}
	}
	if peak <= 0 {
		return 0, fmt.Errorf("no throughput observed")
	}
	for i, p := range points {
		if p.Throughput < satFrac*peak {
			continue
		}
		if i+1 >= len(points) || points[i+1].Throughput < p.Throughput*1.01 {
			return p.MeanLatency, nil
		}
	}
	return points[len(points)-1].MeanLatency, nil
}
