// Package storage models block storage devices for the IBIS simulator.
//
// A Device wraps a processor-sharing resource whose aggregate service rate
// depends on the number of in-flight requests (the concurrency curve). All
// demands are normalized to "read-byte equivalents": a read of S bytes
// costs S units plus a fixed per-operation overhead, while a write costs
// S scaled by the device's read/write asymmetry. This folds SSD write
// slowness and HDD positioning overheads into a single capacity model —
// exactly the properties the SFQ(D)/SFQ(D2) depth parameter interacts
// with.
//
// HDDs additionally exhibit periodic write-back flushes: once enough
// dirty write bytes accumulate, capacity temporarily collapses, producing
// the latency spikes visible in Figure 7 of the paper.
package storage

import (
	"fmt"
	"math"

	"ibis/internal/sim"
)

// OpKind distinguishes reads from writes.
type OpKind int

const (
	// Read is a data read operation.
	Read OpKind = iota
	// Write is a data write operation.
	Write
)

// String returns "read" or "write".
func (k OpKind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Spec describes a device model. All bandwidths are bytes/second at the
// peak of the concurrency curve.
type Spec struct {
	// Name labels the model ("hdd", "ssd").
	Name string
	// ReadBW is the peak aggregate read bandwidth.
	ReadBW float64
	// WriteBW is the peak aggregate write bandwidth. Write demands are
	// scaled by ReadBW/WriteBW so the shared capacity is expressed in
	// read-byte equivalents.
	WriteBW float64
	// PerOpOverhead is the fixed cost of each operation, in read-byte
	// equivalents (positioning/setup time times ReadBW).
	PerOpOverhead float64
	// Curve[i] is the capacity multiplier (on ReadBW) with i+1 requests
	// in flight. Beyond the end of the curve each additional request
	// multiplies capacity by CurveDecay (thrashing); values are floored
	// at MinCurve.
	Curve []float64
	// CurveDecay is the per-extra-request multiplier past the curve end.
	CurveDecay float64
	// MinCurve floors the capacity multiplier.
	MinCurve float64
	// FlushThreshold is the dirty write volume (bytes) that triggers a
	// write-back flush; zero disables flushes.
	FlushThreshold float64
	// FlushDuration is how long a flush depresses capacity, seconds.
	FlushDuration float64
	// FlushFactor is the capacity multiplier while flushing.
	FlushFactor float64
}

// Validate reports configuration errors in the spec.
func (s *Spec) Validate() error {
	if s.ReadBW <= 0 || s.WriteBW <= 0 {
		return fmt.Errorf("storage: %s: bandwidths must be positive (read=%g write=%g)", s.Name, s.ReadBW, s.WriteBW)
	}
	if len(s.Curve) == 0 {
		return fmt.Errorf("storage: %s: empty concurrency curve", s.Name)
	}
	for i, c := range s.Curve {
		if c <= 0 {
			return fmt.Errorf("storage: %s: curve[%d] = %g must be positive", s.Name, i, c)
		}
	}
	if s.CurveDecay <= 0 || s.CurveDecay > 1 {
		return fmt.Errorf("storage: %s: curve decay %g outside (0,1]", s.Name, s.CurveDecay)
	}
	if s.MinCurve <= 0 {
		return fmt.Errorf("storage: %s: min curve %g must be positive", s.Name, s.MinCurve)
	}
	if s.FlushThreshold > 0 && (s.FlushFactor <= 0 || s.FlushFactor > 1 || s.FlushDuration <= 0) {
		return fmt.Errorf("storage: %s: invalid flush parameters", s.Name)
	}
	return nil
}

// WriteCost returns the multiplier applied to write sizes.
func (s *Spec) WriteCost() float64 { return s.ReadBW / s.WriteBW }

// multiplier evaluates the concurrency curve at n in-flight requests.
func (s *Spec) multiplier(n int) float64 {
	if n < 1 {
		n = 1
	}
	var m float64
	if n <= len(s.Curve) {
		m = s.Curve[n-1]
	} else {
		m = s.Curve[len(s.Curve)-1] * math.Pow(s.CurveDecay, float64(n-len(s.Curve)))
	}
	if m < s.MinCurve {
		m = s.MinCurve
	}
	return m
}

// HDDSpec models one 7.2K RPM SAS disk of the paper's testbed era:
// ~130 MB/s streaming reads, slightly slower writes, milliseconds of
// positioning per op, throughput that peaks around 4–8 concurrent
// streams and degrades with more (seek thrashing), and periodic
// write-back flushes.
func HDDSpec() Spec {
	return Spec{
		Name:          "hdd",
		ReadBW:        130e6,
		WriteBW:       110e6,
		PerOpOverhead: 0.15e6, // ≈1.2 ms amortized positioning (elevator)
		// Throughput climbs steeply until ~6 concurrent streams, then
		// keeps inching up as deeper queues give the elevator more
		// merging opportunities: an unbounded queue maximizes
		// utilization (the work-conserving appeal of native Hadoop)
		// while per-request latency grows linearly with depth (the
		// fairness cost SFQ(D) trades against).
		Curve:          hddCurve(),
		CurveDecay:     1.0,
		MinCurve:       0.60,
		FlushThreshold: 8e9, // dirty bytes before a write-back stall
		FlushDuration:  4,
		FlushFactor:    0.35,
	}
}

// hddCurve builds the HDD concurrency curve: a steep climb to ~1.0 at
// six streams, then a slow rise to 1.06 by depth 32 (queue-merging
// gains), flat afterwards.
func hddCurve() []float64 {
	curve := []float64{0.62, 0.78, 0.88, 0.95, 0.98, 1.0}
	for n := 7; n <= 32; n++ {
		curve = append(curve, 1.0+0.06*float64(n-6)/26)
	}
	return curve
}

// SSDSpec models an Intel 120 GB MLC SATA flash device: fast reads,
// writes roughly half the read rate, tiny per-op overhead, and internal
// parallelism that keeps improving up to a deep queue. No flush stalls.
func SSDSpec() Spec {
	return Spec{
		Name:          "ssd",
		ReadBW:        260e6,
		WriteBW:       125e6,
		PerOpOverhead: 0.03e6, // ≈0.12 ms
		Curve: []float64{
			0.48, 0.66, 0.78, 0.87, 0.92, 0.96, 0.98, 1.0, 1.0, 1.0, 1.0, 1.0,
		},
		CurveDecay: 1.0,
		MinCurve:   0.45,
	}
}

// Stats aggregates device-side accounting.
type Stats struct {
	ReadBytes    float64
	WriteBytes   float64
	ReadOps      uint64
	WriteOps     uint64
	Flushes      uint64
	TotalLatency float64 // summed in-device latency, seconds
}

// Ops returns the total operation count.
func (s Stats) Ops() uint64 { return s.ReadOps + s.WriteOps }

// MeanLatency returns average in-device latency over all completed ops.
func (s Stats) MeanLatency() float64 {
	n := s.Ops()
	if n == 0 {
		return 0
	}
	return s.TotalLatency / float64(n)
}

// Device is a simulated block device. Submit places a request directly in
// service (schedulers above the device decide admission: the dispatch
// depth D bounds how many requests a scheduler keeps in flight here).
type Device struct {
	eng   *sim.Engine
	spec  Spec
	res   *sim.PSResource
	stats Stats

	dirty    float64
	flushing bool
	flushEnd sim.Event
}

// NewDevice builds a device from a spec, panicking on invalid specs
// (specs are programmer-supplied configuration, not runtime input).
func NewDevice(eng *sim.Engine, name string, spec Spec) *Device {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	d := &Device{eng: eng, spec: spec}
	d.res = sim.NewPSResource(eng, name, func(n int) float64 {
		return spec.ReadBW * spec.multiplier(n)
	})
	return d
}

// Spec returns the device's model parameters.
func (d *Device) Spec() Spec { return d.spec }

// InFlight returns the number of requests currently in service.
func (d *Device) InFlight() int { return d.res.InFlight() }

// Stats returns a copy of the accumulated counters.
func (d *Device) Stats() Stats { return d.stats }

// BusyTime returns seconds the device spent non-idle.
func (d *Device) BusyTime() float64 { return d.res.BusyTime() }

// Flushing reports whether a write-back flush is in progress.
func (d *Device) Flushing() bool { return d.flushing }

// Cost converts an operation to service units (read-byte equivalents).
func (d *Device) Cost(kind OpKind, size float64) float64 {
	units := size
	if kind == Write {
		units *= d.spec.WriteCost()
	}
	return units + d.spec.PerOpOverhead
}

// Submit starts servicing a request of `size` bytes. onDone receives the
// in-device latency in seconds when the request completes.
func (d *Device) Submit(kind OpKind, size float64, onDone func(latency float64)) {
	if size < 0 {
		panic(fmt.Sprintf("storage: negative request size %g", size))
	}
	start := d.eng.Now()
	d.res.Submit(d.Cost(kind, size), func() {
		lat := d.eng.Now() - start
		d.stats.TotalLatency += lat
		switch kind {
		case Read:
			d.stats.ReadBytes += size
			d.stats.ReadOps++
		case Write:
			d.stats.WriteBytes += size
			d.stats.WriteOps++
			d.noteDirty(size)
		}
		if onDone != nil {
			onDone(lat)
		}
	})
}

// SetDisturbance scales the device's capacity by factor until called
// again. It is intended for fault/disturbance injection in tests and
// experiments; the device's own flush mechanism overrides it while a
// flush is in progress.
func (d *Device) SetDisturbance(factor float64) {
	if !d.flushing {
		d.res.SetDisturbance(factor)
	}
}

// noteDirty accumulates dirty write bytes and triggers a flush stall when
// the threshold is crossed.
func (d *Device) noteDirty(bytes float64) {
	if d.spec.FlushThreshold <= 0 {
		return
	}
	d.dirty += bytes
	if d.dirty >= d.spec.FlushThreshold && !d.flushing {
		d.beginFlush()
	}
}

func (d *Device) beginFlush() {
	d.flushing = true
	d.dirty = 0
	d.stats.Flushes++
	d.res.SetDisturbance(d.spec.FlushFactor)
	d.flushEnd = d.eng.Schedule(d.spec.FlushDuration, func() {
		d.flushing = false
		d.res.SetDisturbance(1)
	})
}
