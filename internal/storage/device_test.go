package storage

import (
	"math"
	"testing"
	"testing/quick"

	"ibis/internal/sim"
)

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		ok     bool
	}{
		{"hdd default", func(*Spec) {}, true},
		{"zero read bw", func(s *Spec) { s.ReadBW = 0 }, false},
		{"zero write bw", func(s *Spec) { s.WriteBW = 0 }, false},
		{"empty curve", func(s *Spec) { s.Curve = nil }, false},
		{"negative curve point", func(s *Spec) { s.Curve = []float64{0.5, -1} }, false},
		{"decay > 1", func(s *Spec) { s.CurveDecay = 1.5 }, false},
		{"zero decay", func(s *Spec) { s.CurveDecay = 0 }, false},
		{"zero min curve", func(s *Spec) { s.MinCurve = 0 }, false},
		{"flush without duration", func(s *Spec) { s.FlushThreshold = 1; s.FlushDuration = 0 }, false},
		{"flush factor > 1", func(s *Spec) { s.FlushThreshold = 1; s.FlushFactor = 2 }, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := HDDSpec()
			c.mutate(&s)
			err := s.Validate()
			if (err == nil) != c.ok {
				t.Fatalf("Validate() error = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestBuiltinSpecsValid(t *testing.T) {
	for _, s := range []Spec{HDDSpec(), SSDSpec()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestWriteCostAsymmetry(t *testing.T) {
	ssd := SSDSpec()
	if ssd.WriteCost() <= 1.5 {
		t.Fatalf("SSD write cost %v, want pronounced asymmetry > 1.5", ssd.WriteCost())
	}
	hdd := HDDSpec()
	if hdd.WriteCost() < 1 || hdd.WriteCost() > 1.5 {
		t.Fatalf("HDD write cost %v, want mild asymmetry in [1, 1.5]", hdd.WriteCost())
	}
}

func TestCurveMultiplier(t *testing.T) {
	s := Spec{
		Name: "toy", ReadBW: 100e6, WriteBW: 100e6,
		Curve:      []float64{0.5, 0.8, 1.0},
		CurveDecay: 0.9,
		MinCurve:   0.4,
	}
	if got := s.multiplier(0); got != s.Curve[0] {
		t.Fatalf("multiplier(0) = %v, want clamped to curve[0]", got)
	}
	if got := s.multiplier(1); got != s.Curve[0] {
		t.Fatalf("multiplier(1) = %v, want %v", got, s.Curve[0])
	}
	last := s.Curve[len(s.Curve)-1]
	if got := s.multiplier(len(s.Curve)); got != last {
		t.Fatalf("multiplier(end) = %v, want %v", got, last)
	}
	beyond := s.multiplier(len(s.Curve) + 3)
	want := last * math.Pow(s.CurveDecay, 3)
	if math.Abs(beyond-want) > 1e-12 {
		t.Fatalf("multiplier beyond curve = %v, want %v", beyond, want)
	}
	// Very deep queues floor at MinCurve.
	if got := s.multiplier(10000); got != s.MinCurve {
		t.Fatalf("deep multiplier = %v, want floor %v", got, s.MinCurve)
	}
}

func TestHDDCurveShape(t *testing.T) {
	s := HDDSpec()
	for i := 1; i < len(s.Curve); i++ {
		if s.Curve[i] < s.Curve[i-1] {
			t.Fatalf("HDD curve not monotone at %d", i)
		}
	}
	if last := s.Curve[len(s.Curve)-1]; math.Abs(last-1.06) > 0.01 {
		t.Fatalf("HDD curve tail = %v, want ≈1.06 (queue-merging gain)", last)
	}
}

func TestSingleReadLatency(t *testing.T) {
	eng := sim.NewEngine()
	spec := HDDSpec()
	dev := NewDevice(eng, "d", spec)
	var lat float64
	size := 4e6
	dev.Submit(Read, size, func(l float64) { lat = l })
	eng.Run()
	want := (size + spec.PerOpOverhead) / (spec.ReadBW * spec.Curve[0])
	if math.Abs(lat-want) > 1e-9 {
		t.Fatalf("latency = %v, want %v", lat, want)
	}
}

func TestWriteSlowerThanReadOnSSD(t *testing.T) {
	spec := SSDSpec()
	latOf := func(kind OpKind) float64 {
		eng := sim.NewEngine()
		dev := NewDevice(eng, "d", spec)
		var lat float64
		dev.Submit(kind, 8e6, func(l float64) { lat = l })
		eng.Run()
		return lat
	}
	r, w := latOf(Read), latOf(Write)
	if w <= r*1.5 {
		t.Fatalf("ssd write latency %v vs read %v, want write much slower", w, r)
	}
}

func TestStatsAccounting(t *testing.T) {
	eng := sim.NewEngine()
	dev := NewDevice(eng, "d", SSDSpec())
	dev.Submit(Read, 1e6, nil)
	dev.Submit(Write, 2e6, nil)
	dev.Submit(Write, 3e6, nil)
	eng.Run()
	st := dev.Stats()
	if st.ReadOps != 1 || st.WriteOps != 2 {
		t.Fatalf("ops = %d/%d, want 1/2", st.ReadOps, st.WriteOps)
	}
	if st.ReadBytes != 1e6 || st.WriteBytes != 5e6 {
		t.Fatalf("bytes = %g/%g, want 1e6/5e6", st.ReadBytes, st.WriteBytes)
	}
	if st.Ops() != 3 {
		t.Fatalf("Ops() = %d, want 3", st.Ops())
	}
	if st.MeanLatency() <= 0 {
		t.Fatalf("MeanLatency() = %v, want > 0", st.MeanLatency())
	}
}

func TestMeanLatencyZeroOps(t *testing.T) {
	var st Stats
	if st.MeanLatency() != 0 {
		t.Fatal("MeanLatency with zero ops should be 0")
	}
}

func TestNegativeSizePanics(t *testing.T) {
	eng := sim.NewEngine()
	dev := NewDevice(eng, "d", SSDSpec())
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	dev.Submit(Read, -1, nil)
}

func TestInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid spec did not panic")
		}
	}()
	NewDevice(sim.NewEngine(), "d", Spec{})
}

func TestFlushTriggersAndRecovers(t *testing.T) {
	eng := sim.NewEngine()
	spec := HDDSpec()
	spec.FlushThreshold = 50e6
	spec.FlushDuration = 2
	spec.FlushFactor = 0.25
	dev := NewDevice(eng, "d", spec)

	// Stream writes until past the threshold.
	var issued float64
	var issue func()
	issue = func() {
		if issued >= 80e6 {
			return
		}
		issued += 8e6
		dev.Submit(Write, 8e6, func(float64) { issue() })
	}
	issue()
	eng.Run()
	if dev.Stats().Flushes == 0 {
		t.Fatal("no flush triggered past the dirty threshold")
	}
	if dev.Flushing() {
		t.Fatal("device still flushing after run completed")
	}
}

func TestFlushSlowsRequests(t *testing.T) {
	baseSpec := HDDSpec()
	baseSpec.FlushThreshold = 0
	elapsedNoFlush := writeStream(t, baseSpec, 40, 8e6)

	flushSpec := HDDSpec()
	flushSpec.FlushThreshold = 100e6
	flushSpec.FlushDuration = 5
	flushSpec.FlushFactor = 0.2
	elapsedFlush := writeStream(t, flushSpec, 40, 8e6)

	if elapsedFlush <= elapsedNoFlush*1.05 {
		t.Fatalf("flush run %vs vs clean run %vs; want clearly slower", elapsedFlush, elapsedNoFlush)
	}
}

// writeStream issues count sequential writes of size bytes and returns
// the virtual completion time.
func writeStream(t *testing.T, spec Spec, count int, size float64) float64 {
	t.Helper()
	eng := sim.NewEngine()
	dev := NewDevice(eng, "d", spec)
	remaining := count
	var issue func()
	issue = func() {
		if remaining == 0 {
			return
		}
		remaining--
		dev.Submit(Write, size, func(float64) { issue() })
	}
	issue()
	return eng.Run()
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("OpKind.String mismatch")
	}
}

func TestOpCostMonotonicInSize(t *testing.T) {
	eng := sim.NewEngine()
	dev := NewDevice(eng, "d", HDDSpec())
	f := func(a, b uint32) bool {
		sa, sb := float64(a), float64(b)
		if sa > sb {
			sa, sb = sb, sa
		}
		return dev.Cost(Read, sa) <= dev.Cost(Read, sb) &&
			dev.Cost(Write, sa) <= dev.Cost(Write, sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Throughput under concurrency should exceed single-stream throughput
// (the device rewards a deeper queue up to the knee).
func TestConcurrencyImprovesThroughput(t *testing.T) {
	for _, spec := range []Spec{HDDSpec(), SSDSpec()} {
		spec.FlushThreshold = 0
		tput := func(n int) float64 {
			eng := sim.NewEngine()
			dev := NewDevice(eng, "d", spec)
			var bytes float64
			var issue func()
			issue = func() {
				dev.Submit(Read, 4e6, func(float64) {
					bytes += 4e6
					if eng.Now() < 20 {
						issue()
					}
				})
			}
			for i := 0; i < n; i++ {
				issue()
			}
			end := eng.Run()
			return bytes / end
		}
		t1, t4 := tput(1), tput(4)
		if t4 <= t1 {
			t.Errorf("%s: throughput at depth 4 (%.1f MB/s) not above depth 1 (%.1f MB/s)",
				spec.Name, t4/1e6, t1/1e6)
		}
	}
}

func TestHDDDeepQueueKeepsThroughput(t *testing.T) {
	// The work-conserving appeal of native Hadoop: an unbounded queue
	// never loses aggregate throughput — only per-request latency.
	spec := HDDSpec()
	spec.FlushThreshold = 0
	tput := func(n int) float64 {
		eng := sim.NewEngine()
		dev := NewDevice(eng, "d", spec)
		var bytes float64
		var issue func()
		issue = func() {
			dev.Submit(Read, 4e6, func(float64) {
				bytes += 4e6
				if eng.Now() < 20 {
					issue()
				}
			})
		}
		for i := 0; i < n; i++ {
			issue()
		}
		return bytes / eng.Run()
	}
	if t64, t8 := tput(64), tput(8); t64 < t8 {
		t.Fatalf("deep queue throughput %.1f < knee throughput %.1f; elevator merging should keep it up", t64/1e6, t8/1e6)
	}
}

func TestLatencyGrowsWithConcurrency(t *testing.T) {
	spec := HDDSpec()
	spec.FlushThreshold = 0
	meanLat := func(n int) float64 {
		eng := sim.NewEngine()
		dev := NewDevice(eng, "d", spec)
		var latSum float64
		var ops int
		var issue func()
		issue = func() {
			dev.Submit(Read, 4e6, func(l float64) {
				latSum += l
				ops++
				if eng.Now() < 20 {
					issue()
				}
			})
		}
		for i := 0; i < n; i++ {
			issue()
		}
		eng.Run()
		return latSum / float64(ops)
	}
	if l1, l12 := meanLat(1), meanLat(12); l12 <= l1*2 {
		t.Fatalf("latency at depth 12 (%v) not well above depth 1 (%v)", l12, l1)
	}
}
