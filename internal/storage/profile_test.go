package storage

import (
	"testing"
)

func TestProfileHDD(t *testing.T) {
	prof, err := ProfileDevice(HDDSpec(), ProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prof.ReadLref <= 0 || prof.WriteLref <= 0 {
		t.Fatalf("references not positive: read=%v write=%v", prof.ReadLref, prof.WriteLref)
	}
	if len(prof.Read) != 16 || len(prof.Write) != 16 {
		t.Fatalf("profile points = %d/%d, want 16/16", len(prof.Read), len(prof.Write))
	}
	// Throughput should be nondecreasing up to the knee of the HDD curve.
	if prof.Read[3].Throughput <= prof.Read[0].Throughput {
		t.Fatal("read throughput did not improve with concurrency")
	}
	// Latency should grow monotonically with concurrency in a closed loop.
	for i := 1; i < len(prof.Read); i++ {
		if prof.Read[i].MeanLatency < prof.Read[i-1].MeanLatency-1e-9 {
			t.Fatalf("read latency not monotone at n=%d: %v < %v",
				i+1, prof.Read[i].MeanLatency, prof.Read[i-1].MeanLatency)
		}
	}
}

func TestProfileSSDAsymmetry(t *testing.T) {
	prof, err := ProfileDevice(SSDSpec(), ProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prof.WriteLref <= prof.ReadLref {
		t.Fatalf("SSD WriteLref %v <= ReadLref %v; want writes slower", prof.WriteLref, prof.ReadLref)
	}
}

func TestProfileLrefBelowDeepQueueLatency(t *testing.T) {
	prof, err := ProfileDevice(HDDSpec(), ProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	deepest := prof.Read[len(prof.Read)-1].MeanLatency
	if prof.ReadLref >= deepest {
		t.Fatalf("ReadLref %v not below deepest-queue latency %v; the knee must come before full saturation", prof.ReadLref, deepest)
	}
}

func TestProfileMixWeighting(t *testing.T) {
	p := Profile{ReadLref: 0.010, WriteLref: 0.030}
	cases := []struct {
		frac float64
		want float64
	}{
		{1, 0.010},
		{0, 0.030},
		{0.5, 0.020},
		{-1, 0.030}, // clamped
		{2, 0.010},  // clamped
	}
	for _, c := range cases {
		if got := p.Lref(c.frac); got != c.want {
			t.Errorf("Lref(%v) = %v, want %v", c.frac, got, c.want)
		}
	}
}

func TestProfileInvalidSpec(t *testing.T) {
	if _, err := ProfileDevice(Spec{}, ProfileOptions{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestProfileOptionsDefaults(t *testing.T) {
	var o ProfileOptions
	o.defaults()
	if o.RequestSize <= 0 || o.MaxConcurrency <= 0 || o.Duration <= 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	if o.SaturationFraction <= 0 || o.SaturationFraction >= 1 {
		t.Fatalf("saturation default out of range: %v", o.SaturationFraction)
	}
}

func TestPickReferenceEmptyThroughput(t *testing.T) {
	if _, err := pickReference([]ProfilePoint{{Concurrency: 1}}, 0.9); err == nil {
		t.Fatal("pickReference accepted all-zero throughput")
	}
}
