// Package faults provides deterministic, seed-driven fault injection
// for the IBIS coordination plane. A Spec describes what can go wrong —
// broker outages (full and per-client partitions), message loss, delay
// and reordering on exchange round trips, scheduler restarts that wipe
// a client's in-memory vector, and device degradation windows that
// stress the SFQ(D2) controller — and an Injector compiles it into a
// concrete schedule.
//
// Every fault is a deterministic function of (seed, sim time): windows
// and restart times are pre-generated from a seeded source at
// construction, and per-message faults are pure hashes of (seed, leg,
// client id, message sequence). Identical (seed, schedule) therefore
// produce byte-identical traces, keeping chaos tests and benches
// reproducible.
package faults

import (
	"math/rand"
	"sort"

	"ibis/internal/broker"
	"ibis/internal/iosched"
	"ibis/internal/sim"
)

// Window is a half-open virtual-time interval [Start, End).
type Window struct {
	Start, End float64
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t float64) bool { return t >= w.Start && t < w.End }

// Duration returns End − Start.
func (w Window) Duration() float64 { return w.End - w.Start }

// Spec describes a fault schedule. Explicit windows/times are used
// verbatim; the *Count fields additionally generate that many random
// entries from the seed. The zero value injects nothing.
type Spec struct {
	// Seed drives all schedule generation and per-message fault rolls.
	Seed int64
	// Horizon bounds generated fault start times (default 120 s).
	Horizon float64

	// Outages are full broker blackouts: every exchange fails with
	// ErrUnavailable while one is open.
	Outages       []Window
	OutageCount   int
	OutageMeanDur float64 // default 5 s

	// Partitions cut individual clients off the broker while the rest
	// of the cluster coordinates normally, keyed by client id.
	Partitions       map[string][]Window
	PartitionCount   int      // generated entries, spread over PartitionTargets
	PartitionMeanDur float64  // default 5 s
	PartitionTargets []string // required when PartitionCount > 0

	// Restarts schedule scheduler-process restarts, keyed by client id.
	Restarts       map[string][]float64
	RestartCount   int
	RestartTargets []string // required when RestartCount > 0

	// Per-message faults on exchange round trips. DropProb loses the
	// request before it reaches the broker; RespDropProb loses the
	// response after the broker applied the report; DelayProb delays a
	// response by a uniform draw from [DelayMin, DelayMax], which also
	// reorders responses across attempts.
	DropProb     float64
	RespDropProb float64
	DelayProb    float64
	DelayMin     float64
	DelayMax     float64 // default 0.5 s when DelayProb > 0

	// DeviceDegrade inflates device latency (capacity × DegradeFactor)
	// during windows, keyed by device name ("node3-hdfs").
	DeviceDegrade  map[string][]Window
	DegradeCount   int
	DegradeMeanDur float64  // default 5 s
	DegradeTargets []string // required when DegradeCount > 0
	DegradeFactor  float64  // default 0.25

	// LeaderOutages kill individual partition-broker leaders in the
	// federated coordination plane, keyed by partition index: while a
	// window is open that partition's client exchanges fail with
	// ErrUnavailable and its root syncs stop; recovery is a crash
	// recovery (snapshot resync). Ignored by centralized topologies.
	LeaderOutages       map[int][]Window
	LeaderOutageCount   int
	LeaderOutageMeanDur float64 // default 5 s
	LeaderTargets       []int   // required when LeaderOutageCount > 0
}

// RestartEvent is one scheduled scheduler restart.
type RestartEvent struct {
	ID string // client id
	At float64
}

// DegradeWindow is one device-degradation interval.
type DegradeWindow struct {
	Device string
	Window Window
	Factor float64
}

// Injector is a compiled fault schedule. Construction draws every
// random decision; all query methods are pure.
type Injector struct {
	seed       uint64
	outages    []Window
	partitions map[string][]Window
	restarts   []RestartEvent
	degrades   []DegradeWindow
	leaders    map[int][]Window

	dropProb, respDropProb, delayProb float64
	delayMin, delayMax                float64
}

// New compiles a spec into a concrete schedule.
func New(spec Spec) *Injector {
	horizon := spec.Horizon
	if horizon <= 0 {
		horizon = 120
	}
	meanOr := func(v, def float64) float64 {
		if v <= 0 {
			return def
		}
		return v
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	genWindows := func(explicit []Window, count int, meanDur float64) []Window {
		ws := append([]Window(nil), explicit...)
		for i := 0; i < count; i++ {
			start := rng.Float64() * horizon
			dur := meanDur * (0.5 + rng.Float64())
			ws = append(ws, Window{Start: start, End: start + dur})
		}
		return normalize(ws)
	}

	inj := &Injector{
		seed:         uint64(spec.Seed),
		partitions:   make(map[string][]Window),
		dropProb:     spec.DropProb,
		respDropProb: spec.RespDropProb,
		delayProb:    spec.DelayProb,
		delayMin:     spec.DelayMin,
		delayMax:     spec.DelayMax,
	}
	if inj.delayProb > 0 && inj.delayMax <= 0 {
		inj.delayMax = 0.5
	}
	if inj.delayMin < 0 {
		inj.delayMin = 0
	}
	if inj.delayMin > inj.delayMax {
		inj.delayMin = inj.delayMax
	}

	inj.outages = genWindows(spec.Outages, spec.OutageCount, meanOr(spec.OutageMeanDur, 5))

	// Generation iterates explicit maps in sorted-key order and spreads
	// generated entries round-robin over sorted targets, so the draw
	// sequence — and with it the whole schedule — is deterministic.
	for _, id := range sortedKeys(spec.Partitions) {
		inj.partitions[id] = normalize(append([]Window(nil), spec.Partitions[id]...))
	}
	if spec.PartitionCount > 0 && len(spec.PartitionTargets) > 0 {
		targets := append([]string(nil), spec.PartitionTargets...)
		sort.Strings(targets)
		meanDur := meanOr(spec.PartitionMeanDur, 5)
		for i := 0; i < spec.PartitionCount; i++ {
			id := targets[i%len(targets)]
			start := rng.Float64() * horizon
			dur := meanDur * (0.5 + rng.Float64())
			inj.partitions[id] = append(inj.partitions[id], Window{Start: start, End: start + dur})
		}
		for id := range inj.partitions {
			inj.partitions[id] = normalize(inj.partitions[id])
		}
	}

	for _, id := range sortedKeys(spec.Restarts) {
		for _, at := range spec.Restarts[id] {
			inj.restarts = append(inj.restarts, RestartEvent{ID: id, At: at})
		}
	}
	if spec.RestartCount > 0 && len(spec.RestartTargets) > 0 {
		targets := append([]string(nil), spec.RestartTargets...)
		sort.Strings(targets)
		for i := 0; i < spec.RestartCount; i++ {
			inj.restarts = append(inj.restarts, RestartEvent{
				ID: targets[i%len(targets)],
				At: rng.Float64() * horizon,
			})
		}
	}
	sort.Slice(inj.restarts, func(i, j int) bool {
		if inj.restarts[i].At != inj.restarts[j].At {
			return inj.restarts[i].At < inj.restarts[j].At
		}
		return inj.restarts[i].ID < inj.restarts[j].ID
	})

	factor := spec.DegradeFactor
	if factor <= 0 || factor > 1 {
		factor = 0.25
	}
	degmap := make(map[string][]Window)
	for dev, ws := range spec.DeviceDegrade {
		degmap[dev] = append(degmap[dev], ws...)
	}
	if spec.DegradeCount > 0 && len(spec.DegradeTargets) > 0 {
		targets := append([]string(nil), spec.DegradeTargets...)
		sort.Strings(targets)
		meanDur := meanOr(spec.DegradeMeanDur, 5)
		for i := 0; i < spec.DegradeCount; i++ {
			start := rng.Float64() * horizon
			dur := meanDur * (0.5 + rng.Float64())
			degmap[targets[i%len(targets)]] = append(degmap[targets[i%len(targets)]], Window{Start: start, End: start + dur})
		}
	}
	// Merge per device so arming set/reset pairs can't interleave.
	for _, dev := range sortedKeys(degmap) {
		for _, w := range normalize(degmap[dev]) {
			inj.degrades = append(inj.degrades, DegradeWindow{Device: dev, Window: w, Factor: factor})
		}
	}
	sort.Slice(inj.degrades, func(i, j int) bool {
		if inj.degrades[i].Window.Start != inj.degrades[j].Window.Start {
			return inj.degrades[i].Window.Start < inj.degrades[j].Window.Start
		}
		return inj.degrades[i].Device < inj.degrades[j].Device
	})

	inj.leaders = make(map[int][]Window)
	leaderIdxs := make([]int, 0, len(spec.LeaderOutages))
	for p := range spec.LeaderOutages {
		leaderIdxs = append(leaderIdxs, p)
	}
	sort.Ints(leaderIdxs)
	for _, p := range leaderIdxs {
		inj.leaders[p] = normalize(append([]Window(nil), spec.LeaderOutages[p]...))
	}
	if spec.LeaderOutageCount > 0 && len(spec.LeaderTargets) > 0 {
		targets := append([]int(nil), spec.LeaderTargets...)
		sort.Ints(targets)
		meanDur := meanOr(spec.LeaderOutageMeanDur, 5)
		for i := 0; i < spec.LeaderOutageCount; i++ {
			p := targets[i%len(targets)]
			start := rng.Float64() * horizon
			dur := meanDur * (0.5 + rng.Float64())
			inj.leaders[p] = append(inj.leaders[p], Window{Start: start, End: start + dur})
		}
		for p := range inj.leaders {
			inj.leaders[p] = normalize(inj.leaders[p])
		}
	}
	return inj
}

// normalize sorts windows and merges overlaps.
func normalize(ws []Window) []Window {
	sort.Slice(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
	out := ws[:0]
	for _, w := range ws {
		if w.End <= w.Start {
			continue
		}
		if n := len(out); n > 0 && w.Start <= out[n-1].End {
			if w.End > out[n-1].End {
				out[n-1].End = w.End
			}
			continue
		}
		out = append(out, w)
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// BrokerDown reports whether a full outage is open at time t.
func (inj *Injector) BrokerDown(t float64) bool { return inWindows(inj.outages, t) }

// Partitioned reports whether the named client is cut off at time t
// (by a partition or a full outage).
func (inj *Injector) Partitioned(id string, t float64) bool {
	return inWindows(inj.partitions[id], t)
}

func inWindows(ws []Window, t float64) bool {
	// Windows are sorted and disjoint; schedules are short, scan.
	for _, w := range ws {
		if t < w.Start {
			return false
		}
		if t < w.End {
			return true
		}
	}
	return false
}

// LeaderDown reports whether partition p's broker leader is dead at
// time t (a full broker outage takes every leader down too).
func (inj *Injector) LeaderDown(p int, t float64) bool {
	return inj.BrokerDown(t) || inWindows(inj.leaders[p], t)
}

// LeaderOutagesFor returns the compiled outage windows of partition
// p's leader.
func (inj *Injector) LeaderOutagesFor(p int) []Window {
	return append([]Window(nil), inj.leaders[p]...)
}

// Outages returns the compiled broker outage windows (sorted, merged).
func (inj *Injector) Outages() []Window { return append([]Window(nil), inj.outages...) }

// PartitionsFor returns the compiled partition windows of one client.
func (inj *Injector) PartitionsFor(id string) []Window {
	return append([]Window(nil), inj.partitions[id]...)
}

// RestartSchedule returns every scheduled restart, sorted by (time,
// id) so arming them preserves determinism.
func (inj *Injector) RestartSchedule() []RestartEvent {
	return append([]RestartEvent(nil), inj.restarts...)
}

// DegradeSchedule returns every device-degradation window, sorted by
// (start, device).
func (inj *Injector) DegradeSchedule() []DegradeWindow {
	return append([]DegradeWindow(nil), inj.degrades...)
}

// Message-fault legs, salted so the rolls are independent streams.
const (
	saltReqDrop uint64 = iota + 1
	saltRespDrop
	saltDelay
	saltDelayAmt
)

// roll maps (seed, salt, id, seq) to [0,1) via FNV-1a into a
// splitmix64 finalizer — pure, so replaying a schedule replays every
// message fault.
func (inj *Injector) roll(salt uint64, id string, seq uint64) float64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	h ^= inj.seed * 0x9e3779b97f4a7c15
	h ^= salt * 0xff51afd7ed558ccd
	return float64(splitmix64(h^seq)>>11) / float64(1<<53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// MsgFate is the fate of one coordination round trip under the
// injected fault model, pre-evaluated by Fate.
type MsgFate struct {
	// Unavailable: the broker is down or the client partitioned — the
	// exchange fails with an explicit error.
	Unavailable bool
	// ReqDrop / RespDrop: the request (resp. response) is lost in
	// flight. A dropped request never reaches the broker; a dropped
	// response leaves the report applied but the client unanswered.
	ReqDrop, RespDrop bool
	// Delay is extra response latency in seconds (0 = none rolled).
	Delay float64
}

// Fate evaluates the fate of message seq from client id at virtual
// time now. It is a pure function of (seed, id, seq, now), so callers
// that keep their own per-client sequence counters — the sharded
// transport, whose messages from different clients have no global
// order — get fates independent of cross-client interleaving.
func (inj *Injector) Fate(id string, seq uint64, now float64) MsgFate {
	var f MsgFate
	if inj.BrokerDown(now) || inj.Partitioned(id, now) {
		f.Unavailable = true
		return f
	}
	f.ReqDrop = inj.dropProb > 0 && inj.roll(saltReqDrop, id, seq) < inj.dropProb
	f.RespDrop = inj.respDropProb > 0 && inj.roll(saltRespDrop, id, seq) < inj.respDropProb
	if inj.delayProb > 0 && inj.roll(saltDelay, id, seq) < inj.delayProb {
		f.Delay = inj.delayMin + (inj.delayMax-inj.delayMin)*inj.roll(saltDelayAmt, id, seq)
	}
	return f
}

// ClientIDs returns the coordination client ids of an n-node cluster
// ("node<i>-hdfs", "node<i>-local") — the names fault schedules and
// device-degradation targets use.
func ClientIDs(nodes int) []string {
	ids := make([]string, 0, 2*nodes)
	for i := 0; i < nodes; i++ {
		ids = append(ids, nodeDev(i, "hdfs"), nodeDev(i, "local"))
	}
	return ids
}

func nodeDev(i int, dev string) string {
	// Matches cluster's device naming without importing it.
	return "node" + itoa(i) + "-" + dev
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// Transport implements broker.Transport with the injector's faults
// applied to every round trip. The uplink is modeled as instantaneous
// (the broker applies a surviving report at send time); rtt delays only
// the response's arrival at the client, which is where loss, staleness
// and reordering matter for the protocol.
type Transport struct {
	eng *sim.Engine
	inj *Injector
	b   *broker.Broker
	seq uint64
}

var _ broker.Transport = (*Transport)(nil)

// NewTransport wires an injector in front of a broker.
func NewTransport(eng *sim.Engine, inj *Injector, b *broker.Broker) *Transport {
	return &Transport{eng: eng, inj: inj, b: b}
}

// Exchange implements broker.Transport.
func (t *Transport) Exchange(id string, vec map[iosched.AppID]float64) (broker.Response, float64, error) {
	now := t.eng.Now()
	seq := t.seq
	t.seq++
	if t.inj.BrokerDown(now) || t.inj.Partitioned(id, now) {
		return broker.Response{}, 0, broker.ErrUnavailable
	}
	if t.inj.dropProb > 0 && t.inj.roll(saltReqDrop, id, seq) < t.inj.dropProb {
		return broker.Response{}, 0, broker.ErrLost
	}
	resp := t.b.Exchange(id, vec)
	if t.inj.respDropProb > 0 && t.inj.roll(saltRespDrop, id, seq) < t.inj.respDropProb {
		return broker.Response{}, 0, broker.ErrLost
	}
	var rtt float64
	if t.inj.delayProb > 0 && t.inj.roll(saltDelay, id, seq) < t.inj.delayProb {
		rtt = t.inj.delayMin + (t.inj.delayMax-t.inj.delayMin)*t.inj.roll(saltDelayAmt, id, seq)
	}
	return resp, rtt, nil
}

// Register implements broker.Transport: the handshake rides the same
// faulty channel as exchanges.
func (t *Transport) Register(id string) (float64, error) {
	now := t.eng.Now()
	seq := t.seq
	t.seq++
	if t.inj.BrokerDown(now) || t.inj.Partitioned(id, now) {
		return 0, broker.ErrUnavailable
	}
	if t.inj.dropProb > 0 && t.inj.roll(saltReqDrop, id, seq) < t.inj.dropProb {
		return 0, broker.ErrLost
	}
	t.b.Register(id)
	if t.inj.respDropProb > 0 && t.inj.roll(saltRespDrop, id, seq) < t.inj.respDropProb {
		return 0, broker.ErrLost
	}
	var rtt float64
	if t.inj.delayProb > 0 && t.inj.roll(saltDelay, id, seq) < t.inj.delayProb {
		rtt = t.inj.delayMin + (t.inj.delayMax-t.inj.delayMin)*t.inj.roll(saltDelayAmt, id, seq)
	}
	return rtt, nil
}

// Unregister implements broker.Transport. Node death is detected out
// of band (the resource manager's liveness tracking), so it is not
// subject to message faults.
func (t *Transport) Unregister(id string) { t.b.Unregister(id) }
