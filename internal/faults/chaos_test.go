package faults_test

// Chaos property tests: randomized seed-driven fault schedules run
// against a full coordinated cluster under invariant auditing. The
// properties under test are the degradation contract itself —
//
//  1. no schedule, however hostile to the coordination plane, may
//     produce a fault-aware invariant violation (local proportional
//     sharing holds in degraded windows, the cluster total-share bound
//     holds whenever it is in force), and
//  2. identical (seed, schedule) pairs produce identical runs: same
//     event count, same service totals, same health counters.
//
// These live in an external test package because they drive
// ibis/internal/cluster, which itself imports faults.

import (
	"testing"

	"ibis/internal/audit"
	"ibis/internal/cluster"
	"ibis/internal/faults"
	"ibis/internal/iosched"
	"ibis/internal/metrics"
	"ibis/internal/sim"
)

// chaosOutcome is the comparable fingerprint of one chaos run.
type chaosOutcome struct {
	Fired          uint64
	Wide, Narrow   float64
	Health         metrics.CoordinationHealth
	Violations     uint64
	DegradedChecks uint64
	TotalChecks    uint64
}

const chaosHorizon = 40

// chaosRun executes the uneven-presence workload (wide w=3 on every
// node, narrow w=1 on the first quarter — weights chosen so the
// proportional target matches the physical optimum and the total-share
// bound is satisfiable when coordination is healthy) under the given
// fault schedule, with full auditing.
func chaosRun(t *testing.T, spec faults.Spec, nodes int) chaosOutcome {
	t.Helper()
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{
		Nodes:              nodes,
		Policy:             cluster.SFQD,
		SFQDepth:           2,
		Coordinate:         true,
		CoordinationPeriod: 1,
		Faults:             faults.New(spec),
	})
	if err != nil {
		t.Fatal(err)
	}
	au := audit.New(audit.Options{CoordinationPeriod: 1})
	au.AttachBroker(cl.Broker)
	cl.Instrument(func(node int, dev string, sched iosched.Scheduler) iosched.Probe {
		return au.Probe(node, dev, sched)
	})
	cl.SetDegradeObserver(au.NoteDegradeStart, au.NoteDegradeEnd)

	var wide, narrow float64
	backlog := func(n *cluster.Node, app iosched.AppID, weight float64, served *float64) {
		var issue func()
		issue = func() {
			n.SubmitIO(&iosched.Request{
				App: app, Shares: iosched.FixedWeight(weight), Class: iosched.PersistentRead, Size: 2e6,
				OnDone: func(float64) {
					*served += 2e6
					if eng.Now() < chaosHorizon {
						issue()
					}
				},
			})
		}
		for i := 0; i < 4; i++ {
			issue()
		}
	}
	quarter := nodes / 4
	if quarter < 1 {
		quarter = 1
	}
	for i, n := range cl.Nodes {
		backlog(n, "wide", 3, &wide)
		if i < quarter {
			backlog(n, "narrow", 1, &narrow)
		}
	}

	eng.RunUntil(chaosHorizon)
	au.Finish()

	if err := au.Err(); err != nil {
		t.Errorf("audit (seed %d): %v", spec.Seed, err)
	}
	checks := au.Checks()
	return chaosOutcome{
		Fired:          eng.Fired(),
		Wide:           wide,
		Narrow:         narrow,
		Health:         cl.CoordinationHealth(),
		Violations:     au.ViolationCount(),
		DegradedChecks: checks["proportional-share-degraded"],
		TotalChecks:    checks["total-proportional-share"],
	}
}

// chaosSpec derives a mixed randomized fault schedule from a seed:
// generated outages, partitions, restarts and device degradation plus
// message loss and delay, all landing inside the run.
func chaosSpec(seed int64, nodes int) faults.Spec {
	ids := faults.ClientIDs(nodes)
	return faults.Spec{
		Seed: seed,
		// Faults start by t=20 and (at mean duration 4, max 6) end by
		// t=26; the K=5-period recovery grace then expires inside the
		// 40 s run, so the total-share check always re-engages.
		Horizon:          chaosHorizon / 2,
		OutageCount:      1,
		OutageMeanDur:    4,
		PartitionCount:   2,
		PartitionMeanDur: 4,
		PartitionTargets: ids,
		RestartCount:     2,
		RestartTargets:   ids,
		DegradeCount:     1,
		DegradeMeanDur:   4,
		DegradeTargets:   []string{"node0-hdfs", "node1-hdfs"},
		DropProb:         0.15,
		RespDropProb:     0.1,
		DelayProb:        0.3,
		DelayMax:         0.2,
	}
}

// TestChaosRandomSchedulesAuditClean is the main chaos property: across
// a spread of seeds, every randomized schedule must leave the run
// audit-clean and every degradation must eventually recover.
func TestChaosRandomSchedulesAuditClean(t *testing.T) {
	const nodes = 8
	for seed := int64(1); seed <= 6; seed++ {
		out := chaosRun(t, chaosSpec(seed, nodes), nodes)
		if out.Violations != 0 {
			t.Errorf("seed %d: %d fault-aware invariant violations, want 0", seed, out.Violations)
		}
		if out.TotalChecks == 0 {
			t.Errorf("seed %d: cluster total-share check never engaged", seed)
		}
		if out.Narrow <= 0 || out.Wide <= 0 {
			t.Errorf("seed %d: starved workload (wide=%v narrow=%v)", seed, out.Wide, out.Narrow)
		}
		// Every client that degraded must have come back: the schedule's
		// horizon ends well before the run does.
		if out.Health.Degradations != out.Health.Recoveries {
			t.Errorf("seed %d: %d degradations but %d recoveries",
				seed, out.Health.Degradations, out.Health.Recoveries)
		}
		// The schedules always contain an outage or partition, so some
		// failure handling must actually have been exercised.
		if out.Health.Failures == 0 {
			t.Errorf("seed %d: schedule exercised no failures", seed)
		}
	}
}

// TestChaosDeterminism re-runs identical (seed, schedule) pairs and
// demands identical traces: same fired-event count, same service
// totals, same health counters, same audit evaluation counts.
func TestChaosDeterminism(t *testing.T) {
	const nodes = 8
	for _, seed := range []int64{3, 17} {
		spec := chaosSpec(seed, nodes)
		a := chaosRun(t, spec, nodes)
		b := chaosRun(t, spec, nodes)
		if a != b {
			t.Errorf("seed %d: non-deterministic chaos run\n a=%+v\n b=%+v", seed, a, b)
		}
	}
}

// TestChaosSeedSensitivity guards against the degenerate opposite of
// determinism: different seeds must actually produce different runs
// (otherwise the injector is ignoring its seed).
func TestChaosSeedSensitivity(t *testing.T) {
	const nodes = 4
	a := chaosRun(t, chaosSpec(21, nodes), nodes)
	b := chaosRun(t, chaosSpec(22, nodes), nodes)
	if a == b {
		t.Error("seeds 21 and 22 produced identical runs; injector seed has no effect")
	}
}
