package faults

import (
	"math"
	"reflect"
	"testing"

	"ibis/internal/broker"
	"ibis/internal/iosched"
	"ibis/internal/sim"
)

func TestWindowContains(t *testing.T) {
	w := Window{Start: 2, End: 5}
	for _, tc := range []struct {
		t    float64
		want bool
	}{{1.9, false}, {2, true}, {4.999, true}, {5, false}, {6, false}} {
		if got := w.Contains(tc.t); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	if w.Duration() != 3 {
		t.Errorf("Duration() = %v, want 3", w.Duration())
	}
}

func TestNormalizeMergesAndSorts(t *testing.T) {
	got := normalize([]Window{
		{Start: 10, End: 12},
		{Start: 1, End: 3},
		{Start: 2, End: 5},     // overlaps [1,3)
		{Start: 5, End: 6},     // touches [1,5) -> merged
		{Start: 8, End: 8},     // empty, dropped
		{Start: 9, End: 7},     // inverted, dropped
		{Start: 11, End: 11.5}, // inside [10,12)
	})
	want := []Window{{Start: 1, End: 6}, {Start: 10, End: 12}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("normalize = %+v, want %+v", got, want)
	}
}

func TestInjectorExplicitWindows(t *testing.T) {
	inj := New(Spec{
		Outages: []Window{{Start: 20, End: 30}, {Start: 25, End: 40}},
		Partitions: map[string][]Window{
			"n1": {{Start: 5, End: 8}},
		},
	})
	if got, want := inj.Outages(), []Window{{Start: 20, End: 40}}; !reflect.DeepEqual(got, want) {
		t.Errorf("Outages = %+v, want %+v", got, want)
	}
	for _, tc := range []struct {
		t    float64
		down bool
	}{{19.9, false}, {20, true}, {39.9, true}, {40, false}} {
		if got := inj.BrokerDown(tc.t); got != tc.down {
			t.Errorf("BrokerDown(%v) = %v, want %v", tc.t, got, tc.down)
		}
	}
	if !inj.Partitioned("n1", 6) || inj.Partitioned("n1", 8) || inj.Partitioned("n2", 6) {
		t.Error("Partitioned window semantics wrong")
	}
}

func TestInjectorGenerationDeterministic(t *testing.T) {
	spec := Spec{
		Seed:             42,
		Horizon:          60,
		OutageCount:      3,
		PartitionCount:   4,
		PartitionTargets: []string{"b", "a"},
		RestartCount:     3,
		RestartTargets:   []string{"b", "a"},
		DegradeCount:     2,
		DegradeTargets:   []string{"d1", "d0"},
	}
	a, b := New(spec), New(spec)
	if !reflect.DeepEqual(a.Outages(), b.Outages()) ||
		!reflect.DeepEqual(a.RestartSchedule(), b.RestartSchedule()) ||
		!reflect.DeepEqual(a.DegradeSchedule(), b.DegradeSchedule()) ||
		!reflect.DeepEqual(a.PartitionsFor("a"), b.PartitionsFor("a")) {
		t.Fatal("identical specs compiled to different schedules")
	}

	spec2 := spec
	spec2.Seed = 43
	c := New(spec2)
	if reflect.DeepEqual(a.Outages(), c.Outages()) && reflect.DeepEqual(a.RestartSchedule(), c.RestartSchedule()) {
		t.Error("different seeds produced the identical schedule")
	}

	// Generated entries respect the horizon and the mean duration band.
	for _, w := range a.Outages() {
		if w.Start < 0 || w.Start > 60 {
			t.Errorf("outage start %v outside horizon", w.Start)
		}
	}
	if n := len(a.RestartSchedule()); n != 3 {
		t.Errorf("restarts generated = %d, want 3", n)
	}
}

func TestRestartScheduleSortedAndSpread(t *testing.T) {
	inj := New(Spec{
		Seed:           7,
		RestartCount:   4,
		RestartTargets: []string{"z", "a"},
		Restarts:       map[string][]float64{"m": {10, 3}},
	})
	evs := inj.RestartSchedule()
	if len(evs) != 6 {
		t.Fatalf("restart events = %d, want 6", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("restart schedule unsorted: %+v", evs)
		}
	}
	// Round-robin spread over sorted targets: two each for "a" and "z".
	count := map[string]int{}
	for _, e := range evs {
		count[e.ID]++
	}
	if count["a"] != 2 || count["z"] != 2 || count["m"] != 2 {
		t.Errorf("restart spread = %v, want 2 each", count)
	}
}

func TestDegradeScheduleMergesPerDevice(t *testing.T) {
	inj := New(Spec{
		DeviceDegrade: map[string][]Window{
			"d0": {{Start: 4, End: 6}, {Start: 5, End: 9}},
			"d1": {{Start: 1, End: 2}},
		},
		DegradeFactor: 2, // invalid: >1 falls back to 0.25
	})
	ws := inj.DegradeSchedule()
	want := []DegradeWindow{
		{Device: "d1", Window: Window{Start: 1, End: 2}, Factor: 0.25},
		{Device: "d0", Window: Window{Start: 4, End: 9}, Factor: 0.25},
	}
	if !reflect.DeepEqual(ws, want) {
		t.Errorf("DegradeSchedule = %+v, want %+v", ws, want)
	}
}

func TestRollPureAndCalibrated(t *testing.T) {
	inj := New(Spec{Seed: 11})
	if inj.roll(saltReqDrop, "n0", 5) != inj.roll(saltReqDrop, "n0", 5) {
		t.Fatal("roll is not pure")
	}
	if inj.roll(saltReqDrop, "n0", 5) == inj.roll(saltRespDrop, "n0", 5) {
		t.Error("salts do not separate streams")
	}
	if inj.roll(saltReqDrop, "n0", 5) == inj.roll(saltReqDrop, "n1", 5) {
		t.Error("ids do not separate streams")
	}
	// Uniformity sanity: the empirical mean of a [0,1) uniform over 4k
	// draws is 0.5 ± a few percent.
	var sum float64
	const n = 4096
	for seq := uint64(0); seq < n; seq++ {
		v := inj.roll(saltDelay, "n0", seq)
		if v < 0 || v >= 1 {
			t.Fatalf("roll out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.03 {
		t.Errorf("roll mean = %.3f, want ≈0.5", mean)
	}
}

func TestClientIDs(t *testing.T) {
	got := ClientIDs(3)
	want := []string{"node0-hdfs", "node0-local", "node1-hdfs", "node1-local", "node2-hdfs", "node2-local"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ClientIDs(3) = %v, want %v", got, want)
	}
	if ids := ClientIDs(12); ids[22] != "node11-hdfs" {
		t.Errorf("ClientIDs(12)[22] = %s, want node11-hdfs", ids[22])
	}
}

func TestTransportOutageAndPartition(t *testing.T) {
	eng := sim.NewEngine()
	b := broker.New()
	tr := NewTransport(eng, New(Spec{
		Outages:    []Window{{Start: 10, End: 20}},
		Partitions: map[string][]Window{"n0": {{Start: 30, End: 40}}},
	}), b)

	vec := map[iosched.AppID]float64{"a": 1}
	if _, _, err := tr.Exchange("n0", vec); err != nil {
		t.Fatalf("healthy exchange failed: %v", err)
	}
	eng.Schedule(15, func() {
		if _, _, err := tr.Exchange("n0", vec); err != broker.ErrUnavailable {
			t.Errorf("exchange during outage: err = %v, want ErrUnavailable", err)
		}
		if _, err := tr.Register("n0"); err != broker.ErrUnavailable {
			t.Errorf("register during outage: err = %v, want ErrUnavailable", err)
		}
	})
	eng.Schedule(35, func() {
		if _, _, err := tr.Exchange("n0", vec); err != broker.ErrUnavailable {
			t.Errorf("exchange while partitioned: err = %v, want ErrUnavailable", err)
		}
		if _, _, err := tr.Exchange("n1", vec); err != nil {
			t.Errorf("unpartitioned peer blocked: %v", err)
		}
	})
	eng.Run()
}

func TestTransportRequestDropNeverReachesBroker(t *testing.T) {
	eng := sim.NewEngine()
	b := broker.New()
	tr := NewTransport(eng, New(Spec{DropProb: 1}), b)
	b.Register("n0")
	if _, _, err := tr.Exchange("n0", map[iosched.AppID]float64{"a": 7}); err != broker.ErrLost {
		t.Fatalf("err = %v, want ErrLost", err)
	}
	if got := b.Total("a"); got != 0 {
		t.Errorf("dropped request still applied: Total(a) = %v", got)
	}
}

func TestTransportResponseDropAppliesReport(t *testing.T) {
	eng := sim.NewEngine()
	b := broker.New()
	tr := NewTransport(eng, New(Spec{RespDropProb: 1}), b)
	b.Register("n0")
	if _, _, err := tr.Exchange("n0", map[iosched.AppID]float64{"a": 7}); err != broker.ErrLost {
		t.Fatalf("err = %v, want ErrLost", err)
	}
	// The loss is on the downlink: the broker did see the report. The
	// client's idempotent cumulative vector makes the retry harmless.
	if got := b.Total("a"); got != 7 {
		t.Errorf("Total(a) = %v, want 7 (uplink delivered)", got)
	}
}

func TestTransportDelayBounds(t *testing.T) {
	eng := sim.NewEngine()
	b := broker.New()
	tr := NewTransport(eng, New(Spec{DelayProb: 1, DelayMin: 0.1, DelayMax: 0.2}), b)
	b.Register("n0")
	for i := 0; i < 64; i++ {
		_, rtt, err := tr.Exchange("n0", map[iosched.AppID]float64{"a": float64(i)})
		if err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
		if rtt < 0.1 || rtt > 0.2 {
			t.Fatalf("rtt %v outside [0.1, 0.2]", rtt)
		}
	}
}

func TestTransportDelayDefaultMax(t *testing.T) {
	inj := New(Spec{DelayProb: 0.5})
	if inj.delayMax != 0.5 {
		t.Errorf("default DelayMax = %v, want 0.5", inj.delayMax)
	}
	inj = New(Spec{DelayProb: 0.5, DelayMin: 0.9, DelayMax: 0.3})
	if inj.delayMin != 0.3 {
		t.Errorf("DelayMin not clamped to DelayMax: %v", inj.delayMin)
	}
}
