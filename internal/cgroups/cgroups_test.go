package cgroups

import (
	"math"
	"testing"

	"ibis/internal/iosched"
	"ibis/internal/sim"
	"ibis/internal/storage"
)

func flatSpec() storage.Spec {
	return storage.Spec{
		Name: "flat", ReadBW: 100e6, WriteBW: 100e6,
		Curve: []float64{1}, CurveDecay: 1, MinCurve: 1,
	}
}

func newThrottle(t *testing.T, eng *sim.Engine, dev *storage.Device, limits map[iosched.AppID]float64) *Throttle {
	t.Helper()
	s, err := NewThrottle(eng, dev, limits)
	if err != nil {
		t.Fatalf("NewThrottle: %v", err)
	}
	return s
}

func TestWeightIsProportional(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := NewWeight(eng, dev, 2)
	var a, b float64
	keep := func(app iosched.AppID, w float64, served *float64) {
		var issue func()
		issue = func() {
			s.Submit(&iosched.Request{
				App: app, Shares: iosched.FixedWeight(w), Class: iosched.IntermediateRead, Size: 1e6,
				OnDone: func(float64) {
					*served += 1e6
					if eng.Now() < 30 {
						issue()
					}
				},
			})
		}
		for i := 0; i < 4; i++ {
			issue()
		}
	}
	keep("A", 4, &a)
	keep("B", 1, &b)
	eng.RunUntil(30)
	if got := a / b; math.Abs(got-4)/4 > 0.2 {
		t.Fatalf("weight-mode service ratio %.3f, want ≈4", got)
	}
}

func TestThrottleCapsRate(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := newThrottle(t, eng, dev, map[iosched.AppID]float64{"capped": 5e6})
	var served float64
	var issue func()
	issue = func() {
		s.Submit(&iosched.Request{
			App: "capped", Shares: iosched.FixedWeight(1), Class: iosched.IntermediateRead, Size: 1e6,
			OnDone: func(float64) {
				served += 1e6
				if eng.Now() < 20 {
					issue()
				}
			},
		})
	}
	for i := 0; i < 4; i++ {
		issue()
	}
	eng.RunUntil(25)
	rate := served / 25
	if rate > 5e6*1.25 {
		t.Fatalf("capped app achieved %.1f MB/s, cap was 5 MB/s", rate/1e6)
	}
	if rate < 5e6*0.5 {
		t.Fatalf("capped app achieved only %.1f MB/s, cap was 5 MB/s", rate/1e6)
	}
}

func TestThrottleNonWorkConserving(t *testing.T) {
	// Device idle, yet the capped app still waits: that's the
	// underutilization the paper attributes to cgroups throttling.
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := newThrottle(t, eng, dev, map[iosched.AppID]float64{"capped": 1e6})
	var done float64
	s.Submit(&iosched.Request{
		App: "capped", Shares: iosched.FixedWeight(1), Class: iosched.IntermediateRead, Size: 10e6,
		OnDone: func(float64) { done = eng.Now() },
	})
	eng.Run()
	// 10 MB at 1 MB/s needs ≈9s of token accumulation (1s burst) even
	// though the device could do it in 0.1s.
	if done < 5 {
		t.Fatalf("capped request finished at %.2fs on an idle device; throttle not enforced", done)
	}
	if dev.BusyTime() > 1 {
		t.Fatalf("device busy %v s, want mostly idle (non-work-conserving)", dev.BusyTime())
	}
}

func TestThrottleUncappedPassthrough(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := newThrottle(t, eng, dev, map[iosched.AppID]float64{"capped": 1e6})
	var freeDone float64
	s.Submit(&iosched.Request{
		App: "free", Shares: iosched.FixedWeight(1), Class: iosched.IntermediateRead, Size: 10e6,
		OnDone: func(float64) { freeDone = eng.Now() },
	})
	eng.Run()
	if freeDone > 0.2 {
		t.Fatalf("uncapped request took %.2fs, want immediate dispatch", freeDone)
	}
}

func TestThrottleFIFOWithinApp(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := newThrottle(t, eng, dev, map[iosched.AppID]float64{"c": 2e6})
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Submit(&iosched.Request{
			App: "c", Shares: iosched.FixedWeight(1), Class: iosched.IntermediateRead, Size: 1e6,
			OnDone: func(float64) { order = append(order, i) },
		})
	}
	eng.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("completion order %v, want FIFO", order)
		}
	}
	if s.Queued() != 0 || s.InFlight() != 0 {
		t.Fatalf("leftovers: queued=%d inflight=%d", s.Queued(), s.InFlight())
	}
}

func TestThrottleAccounting(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := newThrottle(t, eng, dev, nil)
	s.Submit(&iosched.Request{App: "A", Shares: iosched.FixedWeight(1), Class: iosched.IntermediateRead, Size: 3e6})
	eng.Run()
	svc := s.Accounting().Service("A")
	if svc.Bytes != 3e6 || svc.Requests != 1 {
		t.Fatalf("accounting = %+v", svc)
	}
	if svc.Cost <= 0 {
		t.Fatalf("cost = %v, want positive", svc.Cost)
	}
	if s.Name() != "cgroups-throttle" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestThrottleInvalidRateRejected(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewThrottle(eng, storage.NewDevice(eng, "d", flatSpec()), map[iosched.AppID]float64{"x": 0}); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestThrottleObserver(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := newThrottle(t, eng, dev, nil)
	count := 0
	s.SetObserver(func(*iosched.Request, float64) { count++ })
	for i := 0; i < 3; i++ {
		s.Submit(&iosched.Request{App: "A", Shares: iosched.FixedWeight(1), Class: iosched.IntermediateRead, Size: 1e5})
	}
	eng.Run()
	if count != 3 {
		t.Fatalf("observer saw %d completions, want 3", count)
	}
}

func TestThrottleWritesBypassCap(t *testing.T) {
	// blkio v1 semantics: buffered writes are not attributed to the
	// cgroup and escape the throttle entirely.
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := newThrottle(t, eng, dev, map[iosched.AppID]float64{"capped": 1e6})
	done := -1.0
	s.Submit(&iosched.Request{
		App: "capped", Shares: iosched.FixedWeight(1), Class: iosched.IntermediateWrite, Size: 10e6,
		OnDone: func(float64) { done = eng.Now() },
	})
	eng.Run()
	if done > 0.5 {
		t.Fatalf("buffered write finished at %.2fs; writes must bypass the v1 throttle", done)
	}
}

func TestWeightWritesBypass(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	w := NewWeight(eng, dev, 2)
	// Submit many writes: they all dispatch immediately (no queueing).
	for i := 0; i < 10; i++ {
		w.Submit(&iosched.Request{App: "A", Shares: iosched.FixedWeight(1), Class: iosched.IntermediateWrite, Size: 1e6})
	}
	if w.InFlight() != 10 {
		t.Fatalf("InFlight = %d, want 10 unmanaged writes", w.InFlight())
	}
	if w.Queued() != 0 {
		t.Fatalf("Queued = %d, want 0", w.Queued())
	}
	eng.Run()
	if got := w.Accounting().Service("A").Bytes; got != 10e6 {
		t.Fatalf("accounted bytes = %v", got)
	}
	if w.Name() != "cgroups-weight" {
		t.Fatalf("Name = %q", w.Name())
	}
}

func TestWeightObserverBothPaths(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	w := NewWeight(eng, dev, 2)
	count := 0
	w.SetObserver(func(*iosched.Request, float64) { count++ })
	w.Submit(&iosched.Request{App: "A", Shares: iosched.FixedWeight(1), Class: iosched.IntermediateRead, Size: 1e6})
	w.Submit(&iosched.Request{App: "A", Shares: iosched.FixedWeight(1), Class: iosched.IntermediateWrite, Size: 1e6})
	eng.Run()
	if count != 2 {
		t.Fatalf("observer saw %d events, want 2", count)
	}
}
