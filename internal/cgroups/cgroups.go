// Package cgroups models the cgroups-blkio-based baselines the paper
// compares against in Section 7.4. Both modes share cgroups' fundamental
// limitation: they can only control I/Os issued directly to the local
// file system (intermediate I/O). Distributed HDFS I/O is serviced by
// the shared datanode daemon and passes through unscheduled — the wiring
// in the cluster package routes persistent I/O around these schedulers,
// reproducing that blind spot.
//
// Weight mode approximates blkio.weight: proportional sharing of the
// local device among competing applications. Throttle mode approximates
// blkio.throttle.*_bps_device: a hard per-application bandwidth cap,
// non-work-conserving by construction.
package cgroups

import (
	"container/heap"
	"fmt"

	"ibis/internal/iosched"
	"ibis/internal/sim"
	"ibis/internal/storage"
)

// Weight is the blkio.weight baseline: CFQ group scheduling applied to
// the I/O the cgroup controller can actually attribute. Reads are
// weight-scheduled through an SFQ(D) queue; buffered writes reach the
// device through the kernel write-back path *outside* the issuing
// task's cgroup, so they pass through uncontrolled — the second half of
// why the paper finds cgroups "can only improve the query performance
// by 1.2%".
type Weight struct {
	eng      *sim.Engine
	dev      *storage.Device
	reads    *iosched.SFQ
	acct     *iosched.Accounting
	observer iosched.Observer
	probe    iosched.Probe
	inflight int
	writeSeq uint64
}

// NewWeight builds the proportional-sharing cgroups baseline for one
// device. It must only be wired to intermediate (local) I/O.
func NewWeight(eng *sim.Engine, dev *storage.Device, depth int) *Weight {
	w := &Weight{
		eng:   eng,
		dev:   dev,
		reads: iosched.NewSFQD(eng, dev, depth),
		acct:  iosched.NewAccounting(),
	}
	w.reads.SetObserver(func(req *iosched.Request, lat float64) {
		w.acct.AddExternal(req, w.dev.Cost(req.Class.OpKind(), req.Size))
		if w.observer != nil {
			w.observer(req, lat)
		}
	})
	return w
}

var _ iosched.Scheduler = (*Weight)(nil)

// Name implements iosched.Scheduler.
func (w *Weight) Name() string { return "cgroups-weight" }

// Queued implements iosched.Scheduler.
func (w *Weight) Queued() int { return w.reads.Queued() }

// InFlight implements iosched.Scheduler.
func (w *Weight) InFlight() int { return w.reads.InFlight() + w.inflight }

// Accounting implements iosched.Scheduler. Read-side service is
// accounted inside the inner SFQ; the merged view combines both.
func (w *Weight) Accounting() *iosched.Accounting { return w.acct }

// SetObserver installs a completion observer for both paths.
func (w *Weight) SetObserver(o iosched.Observer) { w.observer = o }

// SetProbe installs a lifecycle probe. The weight-scheduled read path
// reports through the inner SFQ (full tag/depth state); the
// uncontrolled write-back path reports its own pass-through events.
func (w *Weight) SetProbe(p iosched.Probe) {
	w.probe = p
	w.reads.SetProbe(p)
}

// ReadSFQ exposes the inner weight-scheduled read queue, so auditors
// can apply the full SFQ invariant set to the controlled (read) half of
// this scheduler's traffic.
func (w *Weight) ReadSFQ() *iosched.SFQ { return w.reads }

// Submit implements iosched.Scheduler.
func (w *Weight) Submit(req *iosched.Request) error {
	if req.Class.OpKind() == storage.Read {
		return w.reads.Submit(req)
	}
	// Buffered write-back: dispatched immediately, unattributed. The
	// request still resolves its weight so accounting and audit see a
	// tagged request, even though no scheduling decision uses it.
	if err := req.Resolve(); err != nil {
		return err
	}
	arrive := w.eng.Now()
	req.MarkExternalArrival(w.writeSeq, arrive)
	w.writeSeq++
	w.inflight++
	if w.probe != nil {
		st := iosched.ProbeState{Event: iosched.ProbeArrive, Time: arrive, InFlight: w.inflight}
		w.probe.Observe(req, st)
		st.Event = iosched.ProbeDispatch
		w.probe.Observe(req, st)
	}
	w.dev.Submit(storage.Write, req.Size, func(float64) {
		w.inflight--
		lat := w.eng.Now() - arrive
		w.acct.AddExternal(req, w.dev.Cost(storage.Write, req.Size))
		if w.probe != nil {
			w.probe.Observe(req, iosched.ProbeState{
				Event:    iosched.ProbeComplete,
				Time:     w.eng.Now(),
				InFlight: w.inflight,
				Latency:  lat,
			})
		}
		if w.observer != nil {
			w.observer(req, lat)
		}
		if req.OnDone != nil {
			req.OnDone(lat)
		}
	})
	return nil
}

// Throttle is the blkio throttling baseline: applications with a
// configured cap are released by a token bucket at that rate; everything
// else passes straight through. Throttled requests wait even when the
// device is idle (non-work-conserving), which is exactly why the paper
// finds it underutilizes storage and slows the capped application by up
// to 16% more than IBIS.
type Throttle struct {
	eng      *sim.Engine
	dev      *storage.Device
	acct     *iosched.Accounting
	observer iosched.Observer
	probe    iosched.Probe
	limits   map[iosched.AppID]float64
	buckets  map[iosched.AppID]*bucket
	inflight int
	queued   int
	seq      uint64
}

type bucket struct {
	rate    float64 // bytes/second
	tokens  float64
	last    float64
	waiting waitHeap
	release sim.Event
	seq     uint64
}

type waitItem struct {
	req  *throttledReq
	seq  uint64
	cost float64
}

type throttledReq struct {
	req    *iosched.Request
	arrive float64
}

// NewThrottle builds the throttling baseline. limits maps each capped
// application to its bandwidth cap in bytes/second; applications absent
// from the map are uncapped. Limits arrive from the public cluster
// config, so a non-positive rate is reported as an input error rather
// than a panic.
func NewThrottle(eng *sim.Engine, dev *storage.Device, limits map[iosched.AppID]float64) (*Throttle, error) {
	for app, rate := range limits {
		if rate <= 0 {
			return nil, fmt.Errorf("cgroups: throttle rate for %q must be positive, got %g", app, rate)
		}
	}
	t := &Throttle{
		eng:     eng,
		dev:     dev,
		acct:    iosched.NewAccounting(),
		limits:  limits,
		buckets: make(map[iosched.AppID]*bucket),
	}
	return t, nil
}

var _ iosched.Scheduler = (*Throttle)(nil)

// Name implements iosched.Scheduler.
func (t *Throttle) Name() string { return "cgroups-throttle" }

// Queued implements iosched.Scheduler.
func (t *Throttle) Queued() int { return t.queued }

// InFlight implements iosched.Scheduler.
func (t *Throttle) InFlight() int { return t.inflight }

// Accounting implements iosched.Scheduler.
func (t *Throttle) Accounting() *iosched.Accounting { return t.acct }

// SetObserver installs a completion observer.
func (t *Throttle) SetObserver(o iosched.Observer) { t.observer = o }

// SetProbe installs a lifecycle probe.
func (t *Throttle) SetProbe(p iosched.Probe) { t.probe = p }

// Submit implements iosched.Scheduler. Uncapped apps dispatch
// immediately (FIFO behaviour); capped apps consume tokens. Buffered
// writes bypass the throttle entirely — blkio v1 cannot attribute
// write-back I/O to the issuing cgroup.
func (t *Throttle) Submit(req *iosched.Request) error {
	if err := req.Resolve(); err != nil {
		return err
	}
	rate, capped := t.limits[req.App]
	if req.Class.OpKind() == storage.Write {
		capped = false
	}
	tr := &throttledReq{req: req, arrive: t.eng.Now()}
	req.MarkExternalArrival(t.seq, tr.arrive)
	t.seq++
	if t.probe != nil {
		t.probe.Observe(req, iosched.ProbeState{
			Event:    iosched.ProbeArrive,
			Time:     tr.arrive,
			Queued:   t.queued,
			InFlight: t.inflight,
		})
	}
	if !capped {
		t.dispatch(tr)
		return nil
	}
	b := t.buckets[req.App]
	if b == nil {
		b = &bucket{rate: rate, last: t.eng.Now()}
		t.buckets[req.App] = b
	}
	t.refill(b)
	if len(b.waiting) == 0 && b.tokens >= req.Size {
		b.tokens -= req.Size
		t.dispatch(tr)
		return nil
	}
	heap.Push(&b.waiting, &waitItem{req: tr, seq: b.seq, cost: req.Size})
	b.seq++
	t.queued++
	t.armRelease(b)
	return nil
}

func (t *Throttle) refill(b *bucket) {
	now := t.eng.Now()
	b.tokens += (now - b.last) * b.rate
	b.last = now
	// Cap the burst at one second of tokens, as blkio does in effect —
	// but never below the head-of-line request's cost, or a request
	// larger than one second's budget could never be released.
	burst := b.rate
	if len(b.waiting) > 0 && b.waiting[0].cost > burst {
		burst = b.waiting[0].cost
	}
	if b.tokens > burst {
		b.tokens = burst
	}
}

// armRelease schedules the next token-driven release for the bucket.
func (t *Throttle) armRelease(b *bucket) {
	if b.release.Scheduled() || len(b.waiting) == 0 {
		return
	}
	need := b.waiting[0].cost - b.tokens
	delay := 0.0
	if need > 0 {
		delay = need / b.rate
	}
	b.release = t.eng.Schedule(delay, func() {
		b.release = sim.Event{}
		t.refill(b)
		// Release within a small epsilon of the cost so float rounding
		// in the refill arithmetic cannot stall the queue forever.
		for len(b.waiting) > 0 && b.tokens >= b.waiting[0].cost-tokenEps(b.waiting[0].cost) {
			item := heap.Pop(&b.waiting).(*waitItem)
			b.tokens -= item.cost
			if b.tokens < 0 {
				b.tokens = 0
			}
			t.queued--
			t.dispatch(item.req)
		}
		t.armRelease(b)
	})
}

func (t *Throttle) dispatch(tr *throttledReq) {
	req := tr.req
	t.inflight++
	if t.probe != nil {
		t.probe.Observe(req, iosched.ProbeState{
			Event:    iosched.ProbeDispatch,
			Time:     t.eng.Now(),
			Queued:   t.queued,
			InFlight: t.inflight,
		})
	}
	t.dev.Submit(req.Class.OpKind(), req.Size, func(float64) {
		t.inflight--
		lat := t.eng.Now() - tr.arrive
		t.account(req)
		if t.probe != nil {
			t.probe.Observe(req, iosched.ProbeState{
				Event:    iosched.ProbeComplete,
				Time:     t.eng.Now(),
				Queued:   t.queued,
				InFlight: t.inflight,
				Latency:  lat,
			})
		}
		if t.observer != nil {
			t.observer(req, lat)
		}
		if req.OnDone != nil {
			req.OnDone(lat)
		}
	})
}

// account records completed service. Throttle computes its own cost via
// the device so the Accounting cost vector stays comparable with the
// SFQ-based schedulers.
func (t *Throttle) account(req *iosched.Request) {
	// Recreate the request-side bookkeeping Submit would have done in
	// the iosched package.
	clone := *req
	cloneCost := t.dev.Cost(req.Class.OpKind(), req.Size)
	t.acct.AddExternal(&clone, cloneCost)
}

// tokenEps is the release slop: absolute plus relative to the cost.
func tokenEps(cost float64) float64 { return 1e-9 + cost*1e-9 }

// waitHeap orders waiting requests FIFO by sequence.
type waitHeap []*waitItem

func (h waitHeap) Len() int           { return len(h) }
func (h waitHeap) Less(i, j int) bool { return h[i].seq < h[j].seq }
func (h waitHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *waitHeap) Push(x any)        { *h = append(*h, x.(*waitItem)) }
func (h *waitHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return popped
}
