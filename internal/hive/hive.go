// Package hive models the Hive data-warehouse framework the paper uses
// for its multi-framework experiments (Section 7.4): a SQL query
// compiles to a DAG of sequential MapReduce stages, each reading the
// previous stage's materialized HDFS output, shuffling through local
// storage, and writing its result back to HDFS. The two TPC-H queries
// the paper evaluates are provided with stage volumes matching the
// published totals:
//
//	Q9  (product type profit):            53 GB input, 120 GB
//	    intermediate I/O, ≤15 jobs, 5 KB final output.
//	Q21 (suppliers who kept orders waiting): 45 GB input, 40 GB
//	    intermediate I/O, ≤15 jobs, 2.6 GB final output.
package hive

import (
	"fmt"

	"ibis/internal/iosched"
	"ibis/internal/mapreduce"
)

// Stage is one MapReduce job in a query plan. Volumes are fractions of
// gigabytes at full (paper) scale.
type Stage struct {
	// Label names the stage ("scan-lineitem", "join-1", ...).
	Label string
	// InputGB is the HDFS data read by the stage's maps (initial table
	// scans or previous stages' materialized outputs).
	InputGB float64
	// ShuffleGB is the intermediate (local FS + network) volume.
	ShuffleGB float64
	// OutputGB is the HDFS output materialized for later stages (or
	// the final result).
	OutputGB float64
	// MapCPU / ReduceCPU are seconds per MB.
	MapCPU    float64
	ReduceCPU float64
}

// Query is a named sequence of stages executed one after another, as
// Hive's execution engine "spawns a series of MapReduce jobs for query
// fulfillment".
type Query struct {
	Name   string
	Stages []Stage
}

// TotalInputGB sums the first-stage scan volumes (the paper's "initial
// input" figure counts the table scans).
func (q Query) TotalInputGB() float64 {
	t := 0.0
	for _, s := range q.Stages {
		if len(s.Label) >= 4 && s.Label[:4] == "scan" {
			t += s.InputGB
		}
	}
	return t
}

// TotalShuffleGB sums intermediate volume across stages.
func (q Query) TotalShuffleGB() float64 {
	t := 0.0
	for _, s := range q.Stages {
		t += s.ShuffleGB
	}
	return t
}

// FinalOutputGB is the last stage's output.
func (q Query) FinalOutputGB() float64 {
	if len(q.Stages) == 0 {
		return 0
	}
	return q.Stages[len(q.Stages)-1].OutputGB
}

// Q9 returns the TPC-H Q9 (product type profit) plan: five table scans
// feeding a deep join/aggregation pipeline. Scans total 53 GB, shuffle
// totals 120 GB, final output is 5 KB.
func Q9() Query {
	return Query{
		Name: "q9",
		Stages: []Stage{
			{Label: "scan-lineitem-part", InputGB: 40, ShuffleGB: 30, OutputGB: 20, MapCPU: 0.012, ReduceCPU: 0.015},
			{Label: "scan-orders-supplier-partsupp", InputGB: 13, ShuffleGB: 10, OutputGB: 8, MapCPU: 0.012, ReduceCPU: 0.015},
			{Label: "join-1", InputGB: 28, ShuffleGB: 30, OutputGB: 15, MapCPU: 0.018, ReduceCPU: 0.022},
			{Label: "join-2", InputGB: 15, ShuffleGB: 20, OutputGB: 10, MapCPU: 0.018, ReduceCPU: 0.022},
			{Label: "agg-1", InputGB: 10, ShuffleGB: 15, OutputGB: 5, MapCPU: 0.015, ReduceCPU: 0.020},
			{Label: "agg-2", InputGB: 5, ShuffleGB: 10, OutputGB: 2, MapCPU: 0.015, ReduceCPU: 0.020},
			{Label: "sort", InputGB: 2, ShuffleGB: 4, OutputGB: 0.5, MapCPU: 0.012, ReduceCPU: 0.015},
			{Label: "final", InputGB: 0.5, ShuffleGB: 1, OutputGB: 5e-6, MapCPU: 0.012, ReduceCPU: 0.015},
		},
	}
}

// Q21 returns the TPC-H Q21 (suppliers who kept orders waiting) plan:
// scans total 45 GB, shuffle totals 40 GB, final output 2.6 GB.
func Q21() Query {
	return Query{
		Name: "q21",
		Stages: []Stage{
			{Label: "scan-lineitem", InputGB: 30, ShuffleGB: 12, OutputGB: 10, MapCPU: 0.012, ReduceCPU: 0.015},
			{Label: "scan-orders-supplier-nation", InputGB: 15, ShuffleGB: 8, OutputGB: 6, MapCPU: 0.012, ReduceCPU: 0.015},
			{Label: "join-1", InputGB: 16, ShuffleGB: 8, OutputGB: 6, MapCPU: 0.020, ReduceCPU: 0.025},
			{Label: "join-2", InputGB: 6, ShuffleGB: 5, OutputGB: 3, MapCPU: 0.020, ReduceCPU: 0.025},
			{Label: "agg", InputGB: 3, ShuffleGB: 4, OutputGB: 2.8, MapCPU: 0.015, ReduceCPU: 0.020},
			{Label: "sort", InputGB: 2.8, ShuffleGB: 3, OutputGB: 2.6, MapCPU: 0.012, ReduceCPU: 0.015},
		},
	}
}

// Q1 returns a TPC-H Q1 (pricing summary report) plan: a single heavy
// scan-and-aggregate over lineitem — the simplest query shape, useful
// as a light decision-support workload. Volumes follow the same 100 GB
// scale-factor world as Q9/Q21.
func Q1() Query {
	return Query{
		Name: "q1",
		Stages: []Stage{
			{Label: "scan-lineitem", InputGB: 46, ShuffleGB: 6, OutputGB: 0.5, MapCPU: 0.020, ReduceCPU: 0.020},
			{Label: "sort", InputGB: 0.5, ShuffleGB: 0.6, OutputGB: 1e-5, MapCPU: 0.012, ReduceCPU: 0.015},
		},
	}
}

// Q5 returns a TPC-H Q5 (local supplier volume) plan: a six-table join
// pipeline with moderate intermediate volume.
func Q5() Query {
	return Query{
		Name: "q5",
		Stages: []Stage{
			{Label: "scan-lineitem-orders", InputGB: 42, ShuffleGB: 18, OutputGB: 12, MapCPU: 0.014, ReduceCPU: 0.018},
			{Label: "scan-customer-supplier-nation-region", InputGB: 6, ShuffleGB: 3, OutputGB: 2, MapCPU: 0.012, ReduceCPU: 0.015},
			{Label: "join-1", InputGB: 14, ShuffleGB: 12, OutputGB: 6, MapCPU: 0.018, ReduceCPU: 0.022},
			{Label: "join-2", InputGB: 6, ShuffleGB: 5, OutputGB: 2, MapCPU: 0.018, ReduceCPU: 0.022},
			{Label: "agg-sort", InputGB: 2, ShuffleGB: 2, OutputGB: 1e-4, MapCPU: 0.014, ReduceCPU: 0.018},
		},
	}
}

// RunOptions control query execution.
type RunOptions struct {
	// Weight is the I/O weight every stage carries. It seeds the
	// query's node in the share tree; the control plane can reweight
	// the query live while it runs.
	Weight float64
	// Tenant attributes the query to a named tenant in the share tree
	// (empty = the query's own implicit singleton tenant).
	Tenant string
	// CPUWeight / CPUQuota mirror the mapreduce spec fields.
	CPUWeight float64
	CPUQuota  int
	// Pool assigns every stage to a Fair Scheduler pool (define its
	// caps on the runtime before calling Run).
	Pool string
	// ScaleBytes scales all stage volumes (1 = paper scale, GB units).
	ScaleBytes float64
	// NumReducesPerStage bounds stage parallelism; default 12.
	NumReducesPerStage int
	// Delay postpones the first stage's submission.
	Delay float64
}

// Execution tracks a running query.
type Execution struct {
	Query     Query
	App       iosched.AppID
	StartTime float64
	EndTime   float64
	done      bool
	failed    bool
	onDone    []func(*Execution)
	stages    []*mapreduce.Job
}

// Done reports successful completion of the final stage.
func (e *Execution) Done() bool { return e.done && !e.failed }

// Failed reports that a stage failed (e.g. node failures lost its
// input); no further stages run.
func (e *Execution) Failed() bool { return e.failed }

// Runtime returns end-to-end query latency (first submission to final
// stage completion).
func (e *Execution) Runtime() float64 { return e.EndTime - e.StartTime }

// OnDone registers a completion callback.
func (e *Execution) OnDone(fn func(*Execution)) { e.onDone = append(e.onDone, fn) }

// StageJobs returns the per-stage jobs materialized so far.
func (e *Execution) StageJobs() []*mapreduce.Job { return e.stages }

// Run submits a query to the MapReduce runtime, chaining each stage on
// the completion of the previous one. All stages share one application
// ID, so the interposed schedulers see the query as a single flow with
// one I/O weight — how IBIS manages a Hive query end to end.
func Run(rt *mapreduce.Runtime, q Query, opts RunOptions) (*Execution, error) {
	if len(q.Stages) == 0 {
		return nil, fmt.Errorf("hive: query %q has no stages", q.Name)
	}
	if opts.Weight <= 0 {
		opts.Weight = 1
	}
	if opts.ScaleBytes <= 0 {
		opts.ScaleBytes = 1
	}
	if opts.NumReducesPerStage <= 0 {
		opts.NumReducesPerStage = 12
	}
	app := iosched.AppID(fmt.Sprintf("hive-%s", q.Name))
	exec := &Execution{Query: q, App: app, StartTime: opts.Delay}

	var submit func(i int) error
	submit = func(i int) error {
		st := q.Stages[i]
		gb := 1e9 * opts.ScaleBytes
		spec := mapreduce.JobSpec{
			Name:              fmt.Sprintf("%s-%s", q.Name, st.Label),
			App:               app,
			Weight:            opts.Weight,
			Tenant:            opts.Tenant,
			CPUWeight:         opts.CPUWeight,
			CPUQuota:          opts.CPUQuota,
			Pool:              opts.Pool,
			InputBytes:        st.InputGB * gb,
			MapOutputBytes:    st.ShuffleGB * gb,
			NumReduces:        opts.NumReducesPerStage,
			OutputBytes:       st.OutputGB * gb,
			MapCPUSecPerMB:    st.MapCPU,
			ReduceCPUSecPerMB: st.ReduceCPU,
		}
		delay := 0.0
		if i == 0 {
			delay = opts.Delay
		}
		job, err := rt.Submit(spec, delay)
		if err != nil {
			return err
		}
		exec.stages = append(exec.stages, job)
		return nil
	}
	if err := submit(0); err != nil {
		return nil, err
	}
	// Chain the remaining stages via the runtime's completion hook.
	next := 1
	rt.OnJobDone(func(j *Job) {
		if exec.done || exec.failed || next > len(q.Stages) {
			return
		}
		if len(exec.stages) == 0 || j != exec.stages[len(exec.stages)-1] {
			return
		}
		if j.Failed() {
			// A lost stage aborts the query.
			exec.failed = true
			exec.done = true
			exec.EndTime = rt.Engine().Now()
			for _, fn := range exec.onDone {
				fn(exec)
			}
			return
		}
		if next < len(q.Stages) {
			i := next
			next++
			if err := submit(i); err != nil {
				panic(err) // specs are validated at build time
			}
			return
		}
		next++
		exec.done = true
		exec.EndTime = rt.Engine().Now()
		for _, fn := range exec.onDone {
			fn(exec)
		}
	})
	return exec, nil
}

// Job aliases mapreduce.Job for the OnJobDone callback signature.
type Job = mapreduce.Job
