package hive

import (
	"math"
	"testing"

	"ibis/internal/cluster"
	"ibis/internal/dfs"
	"ibis/internal/mapreduce"
	"ibis/internal/sim"
)

func TestQ9Volumes(t *testing.T) {
	q := Q9()
	if got := q.TotalInputGB(); math.Abs(got-53) > 0.5 {
		t.Fatalf("Q9 scan input = %v GB, want 53", got)
	}
	if got := q.TotalShuffleGB(); math.Abs(got-120) > 0.5 {
		t.Fatalf("Q9 shuffle = %v GB, want 120", got)
	}
	if got := q.FinalOutputGB(); got > 1e-4 {
		t.Fatalf("Q9 final output = %v GB, want ≈5 KB", got)
	}
	if len(q.Stages) > 15 {
		t.Fatalf("Q9 has %d stages, paper says up to 15 jobs", len(q.Stages))
	}
}

func TestQ21Volumes(t *testing.T) {
	q := Q21()
	if got := q.TotalInputGB(); math.Abs(got-45) > 0.5 {
		t.Fatalf("Q21 scan input = %v GB, want 45", got)
	}
	if got := q.TotalShuffleGB(); math.Abs(got-40) > 0.5 {
		t.Fatalf("Q21 shuffle = %v GB, want 40", got)
	}
	if got := q.FinalOutputGB(); math.Abs(got-2.6) > 0.1 {
		t.Fatalf("Q21 final output = %v GB, want 2.6", got)
	}
	if len(q.Stages) > 15 {
		t.Fatalf("Q21 has %d stages", len(q.Stages))
	}
}

func newRT(t *testing.T) (*sim.Engine, *mapreduce.Runtime) {
	t.Helper()
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{Nodes: 4, CoresPerNode: 4, Policy: cluster.Native})
	if err != nil {
		t.Fatal(err)
	}
	nn := dfs.NewNamenode(dfs.Config{Nodes: 4, BlockSize: 32e6, Seed: 3})
	return eng, mapreduce.NewRuntime(eng, cl, nn, mapreduce.Config{ChunkBytes: 4e6})
}

func TestQueryRunsStagesSequentially(t *testing.T) {
	eng, rt := newRT(t)
	exec, err := Run(rt, Q21(), RunOptions{ScaleBytes: 0.002}) // tiny scale
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !exec.Done() {
		t.Fatalf("query incomplete: %d stages materialized", len(exec.StageJobs()))
	}
	jobs := exec.StageJobs()
	if len(jobs) != len(Q21().Stages) {
		t.Fatalf("stages run = %d, want %d", len(jobs), len(Q21().Stages))
	}
	// Sequential: each stage starts no earlier than the previous ends.
	for i := 1; i < len(jobs); i++ {
		if jobs[i].SubmitTime < jobs[i-1].EndTime-1e-9 {
			t.Fatalf("stage %d submitted at %v before stage %d ended at %v",
				i, jobs[i].SubmitTime, i-1, jobs[i-1].EndTime)
		}
	}
	if exec.Runtime() <= 0 {
		t.Fatalf("runtime = %v", exec.Runtime())
	}
}

func TestQuerySharesOneAppID(t *testing.T) {
	eng, rt := newRT(t)
	exec, err := Run(rt, Q21(), RunOptions{ScaleBytes: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for i, j := range exec.StageJobs() {
		if j.App != exec.App {
			t.Fatalf("stage %d app = %q, want %q", i, j.App, exec.App)
		}
	}
}

func TestQueryOnDoneFires(t *testing.T) {
	eng, rt := newRT(t)
	exec, _ := Run(rt, Q21(), RunOptions{ScaleBytes: 0.002})
	fired := false
	exec.OnDone(func(e *Execution) {
		fired = true
		if e != exec {
			t.Error("wrong execution in callback")
		}
	})
	eng.Run()
	if !fired {
		t.Fatal("OnDone never fired")
	}
}

func TestEmptyQueryRejected(t *testing.T) {
	_, rt := newRT(t)
	if _, err := Run(rt, Query{Name: "empty"}, RunOptions{}); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestQueryDelay(t *testing.T) {
	eng, rt := newRT(t)
	exec, _ := Run(rt, Q21(), RunOptions{ScaleBytes: 0.002, Delay: 5})
	eng.Run()
	if got := exec.StageJobs()[0].SubmitTime; got != 5 {
		t.Fatalf("first stage submitted at %v, want 5", got)
	}
	if exec.StartTime != 5 {
		t.Fatalf("StartTime = %v", exec.StartTime)
	}
}

func TestTwoQueriesConcurrently(t *testing.T) {
	eng, rt := newRT(t)
	e9, err := Run(rt, Q9(), RunOptions{ScaleBytes: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	e21, err := Run(rt, Q21(), RunOptions{ScaleBytes: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !e9.Done() || !e21.Done() {
		t.Fatal("concurrent queries did not both finish")
	}
}

func TestQ1AndQ5Shapes(t *testing.T) {
	q1 := Q1()
	if len(q1.Stages) != 2 || q1.TotalInputGB() < 40 {
		t.Fatalf("Q1 shape wrong: %d stages, %v GB scans", len(q1.Stages), q1.TotalInputGB())
	}
	if q1.FinalOutputGB() > 0.01 {
		t.Fatalf("Q1 output = %v GB, want tiny report", q1.FinalOutputGB())
	}
	q5 := Q5()
	if len(q5.Stages) != 5 {
		t.Fatalf("Q5 stages = %d", len(q5.Stages))
	}
	if q5.TotalShuffleGB() < 30 || q5.TotalShuffleGB() > 50 {
		t.Fatalf("Q5 shuffle = %v GB", q5.TotalShuffleGB())
	}
}

func TestQ1RunsEndToEnd(t *testing.T) {
	eng, rt := newRT(t)
	exec, err := Run(rt, Q1(), RunOptions{ScaleBytes: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !exec.Done() || exec.Failed() {
		t.Fatal("Q1 incomplete")
	}
}

func TestQueryFailurePropagates(t *testing.T) {
	eng, rt := newRT(t)
	exec, err := Run(rt, Q5(), RunOptions{ScaleBytes: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	exec.OnDone(func(e *Execution) { fired = true })
	// Kill 3 of 4 nodes mid-flight: some stage must lose its input
	// (replication 2 in this harness) and the query must abort.
	eng.Schedule(2, func() {
		rt.FailNode(0)
		rt.FailNode(1)
		rt.FailNode(2)
	})
	eng.Run()
	if exec.Done() {
		t.Fatal("query claims success after catastrophic failure")
	}
	if !exec.Failed() {
		// Losing 3/4 nodes with replication 2 must lose some block of
		// some stage input.
		t.Fatalf("query neither done nor failed (stages=%d)", len(exec.StageJobs()))
	}
	if !fired {
		t.Fatal("OnDone not fired for failed query")
	}
}
