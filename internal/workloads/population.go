package workloads

// Generated multi-tenant populations for the scale harness: thousands
// of tenants × apps with log-uniform weights, deterministic replica
// placement across hollow datanodes, and open-loop arrival rates sized
// so every app stays continuously backlogged (the regime in which
// proportional-share fairness is defined and the audit's share checks
// engage). Everything is a pure function of the seed — the same
// PopulationConfig yields byte-identical populations on every run and
// every shard worker count.

import (
	"fmt"
	"math"

	"ibis/internal/iosched"
	"ibis/internal/shares"
)

// PopulationConfig parameterizes Generate. Zero fields take defaults
// sized for a small smoke population.
type PopulationConfig struct {
	// Tenants and AppsPerTenant size the population; the share tree
	// gets Tenants × AppsPerTenant leaves.
	Tenants       int
	AppsPerTenant int
	// Seed drives every sampled weight and placement offset.
	Seed uint64
	// TenantWeightMax and AppWeightMax bound the log-uniform weight
	// draws; the minimum is 1. Defaults: 8 and 4.
	TenantWeightMax float64
	AppWeightMax    float64
	// Nodes is the hollow cluster size apps are placed onto; Replicas
	// is how many nodes each app runs on (clamped to Nodes).
	Nodes    int
	Replicas int
	// LoadFactor scales every app's arrival rate relative to its fair
	// share of node service capacity. Values above 1 keep queues
	// non-empty (open-loop overload); default 1.4.
	LoadFactor float64
}

func (c *PopulationConfig) defaults() {
	if c.Tenants <= 0 {
		c.Tenants = 16
	}
	if c.AppsPerTenant <= 0 {
		c.AppsPerTenant = 1
	}
	if c.TenantWeightMax < 1 {
		c.TenantWeightMax = 8
	}
	if c.AppWeightMax < 1 {
		c.AppWeightMax = 4
	}
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Replicas > c.Nodes {
		c.Replicas = c.Nodes
	}
	if c.LoadFactor <= 0 {
		c.LoadFactor = 1.4
	}
}

// AppSpec is one generated application: an interned ID, its weight
// inside the tenant, the nodes it runs on, and its share of the
// open-loop load (RateShare sums to 1 over the population; the harness
// multiplies by aggregate cluster load).
type AppSpec struct {
	ID        iosched.AppID
	Tenant    string
	Weight    float64
	Nodes     []int
	RateShare float64
}

// TenantSpec is one generated tenant with its apps.
type TenantSpec struct {
	Name   string
	Weight float64
	Apps   []AppSpec
}

// Population is a generated tenant/app universe plus the interner that
// canonicalized its IDs.
type Population struct {
	Tenants  []TenantSpec
	Interner *iosched.Interner

	cfg PopulationConfig
}

// splitmix64 is the SplitMix64 step — a tiny, allocation-free,
// stdlib-independent PRNG adequate for weight and placement draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a splitmix output to (0,1).
func unit(x uint64) float64 {
	return (float64(x>>11) + 0.5) / (1 << 53)
}

// Generate builds the population for cfg. Tenant t gets name
// "tenant-<t>"; its apps are "tenant-<t>/app-<a>". Weights are
// log-uniform in [1, max]; replica placement strides the node ring so
// per-node populations stay balanced (each node hosts
// ≈ Tenants×AppsPerTenant×Replicas/Nodes apps).
func Generate(cfg PopulationConfig) *Population {
	cfg.defaults()
	p := &Population{Interner: iosched.NewInterner(), cfg: cfg}
	rng := splitmix64(cfg.Seed ^ 0x1b15) // domain-separate from other users of the seed
	appIdx := 0
	stride := cfg.Nodes / cfg.Replicas
	if stride == 0 {
		stride = 1
	}
	// First pass draws weights; effective weight density determines
	// RateShare, so backlog pressure tracks entitlement.
	totalEff := 0.0
	for t := 0; t < cfg.Tenants; t++ {
		rng = splitmix64(rng)
		ts := TenantSpec{
			Name:   fmt.Sprintf("tenant-%04d", t),
			Weight: math.Exp(unit(rng) * math.Log(cfg.TenantWeightMax)),
		}
		for a := 0; a < cfg.AppsPerTenant; a++ {
			rng = splitmix64(rng)
			w := math.Exp(unit(rng) * math.Log(cfg.AppWeightMax))
			nodes := make([]int, cfg.Replicas)
			base := appIdx % cfg.Nodes
			for r := 0; r < cfg.Replicas; r++ {
				nodes[r] = (base + r*stride) % cfg.Nodes
			}
			id := p.Interner.Intern(fmt.Sprintf("%s/app-%02d", ts.Name, a))
			ts.Apps = append(ts.Apps, AppSpec{
				ID:     id,
				Tenant: ts.Name,
				Weight: w,
				Nodes:  nodes,
			})
			totalEff += ts.Weight * w
			appIdx++
		}
		p.Tenants = append(p.Tenants, ts)
	}
	for t := range p.Tenants {
		ts := &p.Tenants[t]
		for a := range ts.Apps {
			app := &ts.Apps[a]
			app.RateShare = ts.Weight * app.Weight / totalEff
		}
	}
	return p
}

// Apps returns every generated app in deterministic (tenant, app)
// order.
func (p *Population) Apps() []AppSpec {
	var out []AppSpec
	for _, t := range p.Tenants {
		out = append(out, t.Apps...)
	}
	return out
}

// NumApps returns the population size in apps.
func (p *Population) NumApps() int {
	return len(p.Tenants) * p.cfg.AppsPerTenant
}

// Bind populates the share tree with every tenant and app, pinning app
// weights explicitly so later Binds cannot override them. The tree
// must be fully populated before a sharded run starts — node shards
// resolve weights at tag time and the tree's auto-bind-on-read would
// be a cross-shard mutation — which is exactly what Bind guarantees.
func (p *Population) Bind(tree *shares.Tree) error {
	for _, t := range p.Tenants {
		if err := tree.Tenant(t.Name, t.Weight); err != nil {
			return err
		}
		for _, a := range t.Apps {
			if err := tree.Bind(a.ID, t.Name, a.Weight); err != nil {
				return err
			}
			if err := tree.SetAppWeight(a.ID, a.Weight); err != nil {
				return err
			}
		}
	}
	return nil
}

// ArrivalRate returns app's open-loop request arrival rate in
// requests/second given the per-node service rate (requests/second a
// node sustains) — sized so the aggregate offered load is LoadFactor ×
// the capacity of the nodes, split across apps by weight. Per node the
// app submits ArrivalRate/len(Nodes).
func (p *Population) ArrivalRate(app AppSpec, nodeServiceRate float64) float64 {
	capacity := float64(p.cfg.Nodes) * nodeServiceRate
	return app.RateShare * capacity * p.cfg.LoadFactor
}
