package workloads

import (
	"math"
	"testing"

	"ibis/internal/cluster"
	"ibis/internal/dfs"
	"ibis/internal/mapreduce"
	"ibis/internal/sim"
)

func TestTeraGenShape(t *testing.T) {
	s := TeraGenSpec(1e12, 0)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.InputBytes != 0 || s.NumReduces != 0 {
		t.Fatal("TeraGen must be a map-only generator")
	}
	if s.DirectOutputBytes != 1e12 {
		t.Fatalf("output = %v", s.DirectOutputBytes)
	}
	if s.NumMaps != 96 {
		t.Fatalf("default maps = %d", s.NumMaps)
	}
	if s.MapCPUSecPerMB > 0.01 {
		t.Fatal("TeraGen should be nearly compute-free")
	}
}

func TestTeraSortShape(t *testing.T) {
	s := TeraSortSpec(50e9, 0)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.MapOutputBytes != s.InputBytes || s.OutputBytes != s.InputBytes {
		t.Fatal("TeraSort shuffles and outputs its full input")
	}
}

func TestWordCountShape(t *testing.T) {
	s := WordCountSpec(50e9, 0)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.OutputBytes >= 0.2*s.InputBytes {
		t.Fatal("WordCount output should be much smaller than input")
	}
	if s.MapOutputBytes <= s.OutputBytes {
		t.Fatal("WordCount still writes plenty of intermediate data")
	}
	ts := TeraSortSpec(50e9, 0)
	if s.MapCPUSecPerMB <= ts.MapCPUSecPerMB*5 {
		t.Fatal("WordCount should be far more compute-intensive than TeraSort")
	}
}

func TestTeraValidateShape(t *testing.T) {
	s := TeraValidateSpec(100e9)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.MapOutputBytes > 0.01*s.InputBytes || s.OutputBytes > 0.01*s.InputBytes {
		t.Fatal("TeraValidate is a read-mostly scan")
	}
}

func TestFacebookWorkloadStatistics(t *testing.T) {
	jobs := FacebookWorkload(FacebookConfig{Seed: 42})
	if len(jobs) != 50 {
		t.Fatalf("jobs = %d, want 50", len(jobs))
	}
	prevArrival := -1.0
	small := 0
	for i, j := range jobs {
		if err := j.Spec.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
		if j.Arrival < prevArrival {
			t.Fatal("arrivals not nondecreasing")
		}
		prevArrival = j.Arrival
		if j.Spec.InputBytes < 10e9 {
			small++
		}
	}
	// "including both small and large jobs" — dominated by small ones.
	if small < 30 {
		t.Fatalf("only %d/50 jobs below 10 GB; SWIM mixes skew small", small)
	}
}

func TestFacebookDeterministic(t *testing.T) {
	a := FacebookWorkload(FacebookConfig{Seed: 7})
	b := FacebookWorkload(FacebookConfig{Seed: 7})
	for i := range a {
		if a[i].Spec.InputBytes != b[i].Spec.InputBytes || a[i].Arrival != b[i].Arrival {
			t.Fatal("sampler not deterministic")
		}
	}
	c := FacebookWorkload(FacebookConfig{Seed: 8})
	same := true
	for i := range a {
		if a[i].Spec.InputBytes != c[i].Spec.InputBytes {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestFacebookScale(t *testing.T) {
	full := FacebookWorkload(FacebookConfig{Seed: 1, ScaleBytes: 1})
	scaled := FacebookWorkload(FacebookConfig{Seed: 1, ScaleBytes: 0.125})
	for i := range full {
		want := full[i].Spec.InputBytes * 0.125
		if math.Abs(scaled[i].Spec.InputBytes-want)/want > 1e-9 {
			t.Fatalf("job %d: scaled input %v, want %v", i, scaled[i].Spec.InputBytes, want)
		}
	}
}

func TestFacebookRatioRanges(t *testing.T) {
	jobs := FacebookWorkload(FacebookConfig{Seed: 3, Jobs: 200})
	for i, j := range jobs {
		s := j.Spec
		if s.MapOutputBytes == 0 {
			continue
		}
		ratio := s.InputBytes / s.MapOutputBytes
		// After the small-job cap, input/shuffle must stay within
		// [0.05/4-ish, 1000].
		if ratio < 0.24 || ratio > 1001 {
			t.Fatalf("job %d input/shuffle ratio %v outside range", i, ratio)
		}
	}
}

// End-to-end: the classic workloads all run to completion on a small
// cluster.
func TestWorkloadsRunEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{Nodes: 4, CoresPerNode: 4, Policy: cluster.Native})
	if err != nil {
		t.Fatal(err)
	}
	nn := dfs.NewNamenode(dfs.Config{Nodes: 4, BlockSize: 32e6, Seed: 2})
	rt := mapreduce.NewRuntime(eng, cl, nn, mapreduce.Config{ChunkBytes: 4e6})
	specs := []mapreduce.JobSpec{
		TeraGenSpec(256e6, 8),
		TeraSortSpec(128e6, 4),
		WordCountSpec(128e6, 2),
		TeraValidateSpec(128e6),
	}
	var jobs []*mapreduce.Job
	for i, s := range specs {
		j, err := rt.Submit(s, float64(i))
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		jobs = append(jobs, j)
	}
	eng.Run()
	for _, j := range jobs {
		if !j.Done() {
			t.Fatalf("%s did not finish", j.Spec.Name)
		}
	}
}
