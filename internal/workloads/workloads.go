// Package workloads defines the benchmark applications the paper
// evaluates with: TeraGen, TeraSort, TeraValidate, WordCount, and the
// SWIM-style Facebook2009 job mix. Each constructor returns a
// mapreduce.JobSpec whose data volumes and compute intensities are
// modeled after the published I/O profiles (Figure 2) and descriptions:
//
//   - TeraGen: write-only data generator, nearly no computation —
//     "highly I/O-intensive".
//   - TeraSort: intensive HDFS reads and local spills in the map phase,
//     intensive HDFS writes in the reduce phase; intermediate volume
//     equals the input.
//   - WordCount: compute-heavy maps, output much smaller than input,
//     but "plenty of intermediate writes throughout".
//   - TeraValidate: read-mostly scan with negligible output.
//
// Callers set scheduling policy fields (Weight, CPUQuota, CPUWeight) on
// the returned specs.
package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"ibis/internal/mapreduce"
)

// TeraGenSpec builds the TeraGen generator writing totalBytes to the
// DFS across numMaps map-only tasks.
func TeraGenSpec(totalBytes float64, numMaps int) mapreduce.JobSpec {
	if numMaps <= 0 {
		numMaps = 96
	}
	return mapreduce.JobSpec{
		Name:              "teragen",
		Weight:            1,
		NumMaps:           numMaps,
		DirectOutputBytes: totalBytes,
		MapCPUSecPerMB:    0.0015,
	}
}

// TeraSortSpec builds a TeraSort over inputBytes: shuffle and output
// volumes both equal the input.
func TeraSortSpec(inputBytes float64, numReduces int) mapreduce.JobSpec {
	if numReduces <= 0 {
		numReduces = 24
	}
	return mapreduce.JobSpec{
		Name:              "terasort",
		Weight:            1,
		InputBytes:        inputBytes,
		MapOutputBytes:    inputBytes,
		NumReduces:        numReduces,
		OutputBytes:       inputBytes,
		MapCPUSecPerMB:    0.010,
		ReduceCPUSecPerMB: 0.012,
	}
}

// WordCountSpec builds a WordCount over inputBytes: combiner-compressed
// intermediate data (≈25% of input), tiny final output, compute-heavy
// map function.
func WordCountSpec(inputBytes float64, numReduces int) mapreduce.JobSpec {
	if numReduces <= 0 {
		numReduces = 12
	}
	return mapreduce.JobSpec{
		Name:              "wordcount",
		Weight:            1,
		InputBytes:        inputBytes,
		MapOutputBytes:    0.25 * inputBytes,
		NumReduces:        numReduces,
		OutputBytes:       0.05 * inputBytes,
		MapCPUSecPerMB:    0.150,
		ReduceCPUSecPerMB: 0.020,
	}
}

// TeraValidateSpec builds the TeraValidate scan over inputBytes:
// read-dominated, negligible intermediate and output volumes.
func TeraValidateSpec(inputBytes float64) mapreduce.JobSpec {
	return mapreduce.JobSpec{
		Name:              "teravalidate",
		Weight:            1,
		InputBytes:        inputBytes,
		MapOutputBytes:    0.0005 * inputBytes,
		NumReduces:        1,
		OutputBytes:       0.0001 * inputBytes,
		MapCPUSecPerMB:    0.004,
		ReduceCPUSecPerMB: 0.004,
	}
}

// FacebookConfig parameterizes the SWIM-style Facebook2009 sampler.
type FacebookConfig struct {
	// Jobs is the number of sampled jobs (the paper runs 50).
	Jobs int
	// Seed drives the deterministic sampler.
	Seed int64
	// ScaleBytes scales all sampled data volumes (down-scaling "to fit
	// the size of this paper's testbed", and further for simulation).
	ScaleBytes float64
	// MeanInterarrival is the mean Poisson gap between submissions in
	// seconds.
	MeanInterarrival float64
	// Weight and CPU policy applied to every sampled job.
	Weight    float64
	CPUWeight float64
	CPUQuota  int
}

func (c *FacebookConfig) defaults() {
	if c.Jobs <= 0 {
		c.Jobs = 50
	}
	if c.ScaleBytes <= 0 {
		c.ScaleBytes = 1
	}
	if c.MeanInterarrival <= 0 {
		c.MeanInterarrival = 6
	}
	if c.Weight <= 0 {
		c.Weight = 1
	}
	if c.CPUWeight <= 0 {
		c.CPUWeight = 1
	}
}

// FacebookJob is one sampled job plus its arrival offset.
type FacebookJob struct {
	Spec    mapreduce.JobSpec
	Arrival float64
}

// FacebookWorkload samples the Facebook2009 mix following the SWIM
// statistics the paper quotes: the input-to-shuffle ratio varies over
// 0.05–10³ and the shuffle-to-output ratio over 2⁻⁵–10²; job input
// sizes are heavy-tailed with mostly small jobs; arrivals are Poisson.
func FacebookWorkload(cfg FacebookConfig) []FacebookJob {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	jobs := make([]FacebookJob, 0, cfg.Jobs)
	arrival := 0.0
	for i := 0; i < cfg.Jobs; i++ {
		// Heavy-tailed input size: lognormal, median ≈ 1.5 GB, long
		// tail to tens of GB.
		input := 1.5e9 * math.Exp(rng.NormFloat64()*1.1) * cfg.ScaleBytes
		if input < 64e6*cfg.ScaleBytes {
			input = 64e6 * cfg.ScaleBytes
		}
		// input/shuffle ∈ [0.05, 1000] log-uniform ⇒ shuffle = input/r.
		r1 := logUniform(rng, 0.05, 1000)
		shuffle := input / r1
		// Cap shuffle at a multiple of input to keep small jobs small
		// (SWIM samples are dominated by small jobs).
		if shuffle > 4*input {
			shuffle = 4 * input
		}
		// shuffle/output ∈ [2⁻⁵, 100] log-uniform ⇒ output = shuffle/r.
		r2 := logUniform(rng, math.Pow(2, -5), 100)
		output := shuffle / r2
		if output > 4*input {
			output = 4 * input
		}
		reduces := 1 + int(shuffle/(512e6*cfg.ScaleBytes))
		if reduces > 8 {
			reduces = 8
		}
		spec := mapreduce.JobSpec{
			Name:              fmt.Sprintf("fb%02d", i),
			Weight:            cfg.Weight,
			CPUWeight:         cfg.CPUWeight,
			CPUQuota:          cfg.CPUQuota,
			InputBytes:        input,
			MapOutputBytes:    shuffle,
			NumReduces:        reduces,
			OutputBytes:       output,
			MapCPUSecPerMB:    0.010 + rng.Float64()*0.060,
			ReduceCPUSecPerMB: 0.010 + rng.Float64()*0.040,
		}
		if shuffle <= 0 {
			spec.NumReduces = 0
			spec.MapOutputBytes = 0
			spec.OutputBytes = 0
		}
		jobs = append(jobs, FacebookJob{Spec: spec, Arrival: arrival})
		arrival += rng.ExpFloat64() * cfg.MeanInterarrival
	}
	return jobs
}

// logUniform samples log-uniformly from [lo, hi].
func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo * math.Exp(rng.Float64()*math.Log(hi/lo))
}
