package workloads

import (
	"math"
	"reflect"
	"testing"

	"ibis/internal/shares"
)

func TestPopulationDeterministic(t *testing.T) {
	cfg := PopulationConfig{Tenants: 50, AppsPerTenant: 3, Seed: 7, Nodes: 10, Replicas: 3}
	a, b := Generate(cfg), Generate(cfg)
	if !reflect.DeepEqual(a.Tenants, b.Tenants) {
		t.Fatal("same config generated different populations")
	}
	c := Generate(PopulationConfig{Tenants: 50, AppsPerTenant: 3, Seed: 8, Nodes: 10, Replicas: 3})
	if reflect.DeepEqual(a.Tenants, c.Tenants) {
		t.Fatal("different seeds generated identical populations")
	}
}

func TestPopulationShape(t *testing.T) {
	cfg := PopulationConfig{Tenants: 40, AppsPerTenant: 2, Seed: 1, Nodes: 8, Replicas: 3,
		TenantWeightMax: 8, AppWeightMax: 4}
	p := Generate(cfg)
	if len(p.Tenants) != 40 {
		t.Fatalf("tenants = %d, want 40", len(p.Tenants))
	}
	if p.NumApps() != 80 {
		t.Fatalf("apps = %d, want 80", p.NumApps())
	}
	if p.Interner.Len() != 80 {
		t.Fatalf("interned IDs = %d, want 80", p.Interner.Len())
	}
	perNode := map[int]int{}
	totalShare := 0.0
	for _, ts := range p.Tenants {
		if ts.Weight < 1 || ts.Weight > 8 {
			t.Fatalf("tenant weight %v outside [1,8]", ts.Weight)
		}
		for _, a := range ts.Apps {
			if a.Weight < 1 || a.Weight > 4 {
				t.Fatalf("app weight %v outside [1,4]", a.Weight)
			}
			if len(a.Nodes) != 3 {
				t.Fatalf("app on %d nodes, want 3 replicas", len(a.Nodes))
			}
			seen := map[int]bool{}
			for _, n := range a.Nodes {
				if n < 0 || n >= 8 {
					t.Fatalf("placement %d outside cluster", n)
				}
				if seen[n] {
					t.Fatalf("app %s placed twice on node %d", a.ID, n)
				}
				seen[n] = true
				perNode[n]++
			}
			totalShare += a.RateShare
		}
	}
	if math.Abs(totalShare-1) > 1e-9 {
		t.Fatalf("rate shares sum to %v, want 1", totalShare)
	}
	// Placement balance: 80 apps × 3 replicas over 8 nodes = 30 each.
	for n, c := range perNode {
		if c != 30 {
			t.Fatalf("node %d hosts %d app replicas, want 30", n, c)
		}
	}
}

func TestPopulationBind(t *testing.T) {
	p := Generate(PopulationConfig{Tenants: 10, AppsPerTenant: 2, Seed: 3, Nodes: 4})
	tree := shares.NewTree()
	if err := p.Bind(tree); err != nil {
		t.Fatal(err)
	}
	if got := len(tree.Tenants()); got != 10 {
		t.Fatalf("tree has %d tenants, want 10", got)
	}
	for _, ts := range p.Tenants {
		if w := tree.TenantWeight(ts.Name); math.Abs(w-ts.Weight) > 1e-12 {
			t.Fatalf("tenant %s weight %v, want %v", ts.Name, w, ts.Weight)
		}
		for _, a := range ts.Apps {
			if tree.TenantOf(a.ID) != ts.Name {
				t.Fatalf("app %s bound to %q, want %q", a.ID, tree.TenantOf(a.ID), ts.Name)
			}
			if w := tree.AppWeight(a.ID); math.Abs(w-a.Weight) > 1e-12 {
				t.Fatalf("app %s weight %v, want %v", a.ID, w, a.Weight)
			}
		}
	}
}

func TestPopulationArrivalRates(t *testing.T) {
	p := Generate(PopulationConfig{Tenants: 20, AppsPerTenant: 1, Seed: 9, Nodes: 5, LoadFactor: 1.4})
	total := 0.0
	for _, a := range p.Apps() {
		total += p.ArrivalRate(a, 100)
	}
	// Aggregate offered load = LoadFactor × nodes × nodeServiceRate.
	want := 1.4 * 5 * 100
	if math.Abs(total-want) > 1e-6 {
		t.Fatalf("aggregate arrival rate %v, want %v", total, want)
	}
}
