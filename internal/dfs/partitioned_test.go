package dfs

import (
	"reflect"
	"testing"
)

// TestPartitionedCreateMatchesAsyncAssembly: the synchronous Create on
// a partitioned namenode must produce the exact layout the metadata
// shards produce asynchronously (Shape → per-partition PlacePartition
// in index order → Publish). The mapreduce runtime relies on this: a
// single-engine partitioned run and a sharded run draw identical
// placements.
func TestPartitionedCreateMatchesAsyncAssembly(t *testing.T) {
	for _, parts := range []int{2, 3, 5} {
		mk := func() *Namenode {
			return NewNamenode(Config{Nodes: 16, BlockSize: 100, Replication: 3, Seed: 42, Partitions: parts})
		}
		files := []struct {
			name string
			size float64
		}{{"job-0/input", 1250}, {"job-1/input", 730}, {"solo", 99}}

		sync := mk()
		for _, fl := range files {
			if _, err := sync.Create(fl.name, fl.size); err != nil {
				t.Fatal(err)
			}
		}

		async := mk()
		for _, fl := range files {
			sizes := async.Shape(fl.size)
			// Group block indices by owner, then draw per partition in
			// index order — exactly what createAsync does across shards.
			owned := make([][]int, async.Partitions())
			for i := range sizes {
				p := async.Owner(fl.name, i)
				owned[p] = append(owned[p], i)
			}
			replicas := make([][]int, len(sizes))
			for p, idxs := range owned {
				if len(idxs) == 0 {
					continue
				}
				sets := async.PlacePartition(p, len(idxs))
				for k, i := range idxs {
					replicas[i] = sets[k]
				}
			}
			if _, err := async.Publish(fl.name, sizes, replicas); err != nil {
				t.Fatal(err)
			}
		}

		for _, fl := range files {
			a, _ := sync.File(fl.name)
			b, _ := async.File(fl.name)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("parts=%d file %q: sync layout %+v != async layout %+v", parts, fl.name, a, b)
			}
		}
	}
}

// TestPartitionedDrawOrderIndependence: draws on distinct partitions
// commute — interleaving them in any order yields the same per-block
// placements. This is what lets each metadata shard serve its
// partition without coordinating with the others.
func TestPartitionedDrawOrderIndependence(t *testing.T) {
	cfg := Config{Nodes: 12, BlockSize: 50, Replication: 3, Seed: 7, Partitions: 4}
	forward := NewNamenode(cfg)
	reverse := NewNamenode(cfg)

	fwd := make(map[int][][]int)
	for p := 0; p < 4; p++ {
		fwd[p] = forward.PlacePartition(p, 5)
	}
	rev := make(map[int][][]int)
	for p := 3; p >= 0; p-- {
		rev[p] = reverse.PlacePartition(p, 5)
	}
	if !reflect.DeepEqual(fwd, rev) {
		t.Fatalf("partition draws depend on inter-partition order:\nfwd=%v\nrev=%v", fwd, rev)
	}
}

// TestPlaceOutputKeyedPure: keyed output placement is a pure function
// of (seed, key, localNode) — repeated calls and calls on a fresh
// namenode agree, it never consumes shared RNG state, and the
// write-local-first rule holds.
func TestPlaceOutputKeyedPure(t *testing.T) {
	cfg := Config{Nodes: 10, BlockSize: 100, Replication: 3, Seed: 11, Partitions: 2}
	nn := NewNamenode(cfg)
	other := NewNamenode(cfg)

	keys := []uint64{0, 1, 42, 1 << 40, ^uint64(0)}
	for _, k := range keys {
		for local := 0; local < 10; local += 3 {
			a := nn.PlaceOutputKeyed(local, k)
			b := nn.PlaceOutputKeyed(local, k)
			c := other.PlaceOutputKeyed(local, k)
			if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
				t.Fatalf("key %d local %d: placements diverge: %v %v %v", k, local, a, b, c)
			}
			if a[0] != local {
				t.Fatalf("key %d: write-local-first violated: %v (local %d)", k, a, local)
			}
			seen := map[int]bool{}
			for _, n := range a {
				if n < 0 || n >= cfg.Nodes || seen[n] {
					t.Fatalf("key %d: bad replica set %v", k, a)
				}
				seen[n] = true
			}
		}
	}
	// Keyed placement must not advance the legacy or partition RNGs:
	// a Create after many keyed draws matches a Create on a fresh
	// namenode.
	f1, err := nn.Create("f", 500)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := other.Create("f", 500)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Fatalf("keyed draws perturbed namenode state: %+v != %+v", f1, f2)
	}
}

// TestLegacyModeUnchanged: Partitions ≤ 1 keeps the single-RNG
// namenode bit for bit — the partitioned plumbing must not leak into
// legacy layouts.
func TestLegacyModeUnchanged(t *testing.T) {
	a := NewNamenode(Config{Nodes: 8, BlockSize: 100, Replication: 3, Seed: 9})
	b := NewNamenode(Config{Nodes: 8, BlockSize: 100, Replication: 3, Seed: 9, Partitions: 1})
	fa, _ := a.Create("x", 1000)
	fb, _ := b.Create("x", 1000)
	if !reflect.DeepEqual(fa, fb) {
		t.Fatalf("Partitions=1 changed legacy layout")
	}
	if a.Partitions() != 1 || b.Partitions() != 1 {
		t.Fatalf("legacy Partitions() = %d/%d, want 1/1", a.Partitions(), b.Partitions())
	}
}
