package dfs

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCreateSplitsIntoBlocks(t *testing.T) {
	nn := NewNamenode(Config{Nodes: 8, BlockSize: 100, Replication: 3})
	f, err := nn.Create("data", 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(f.Blocks))
	}
	if f.Blocks[0].Size != 100 || f.Blocks[1].Size != 100 || f.Blocks[2].Size != 50 {
		t.Fatalf("block sizes = %v %v %v", f.Blocks[0].Size, f.Blocks[1].Size, f.Blocks[2].Size)
	}
	total := 0.0
	for _, b := range f.Blocks {
		total += b.Size
	}
	if total != 250 {
		t.Fatalf("block total = %v, want 250", total)
	}
}

func TestReplicasDistinctAndInRange(t *testing.T) {
	nn := NewNamenode(Config{Nodes: 8, Replication: 3, BlockSize: 10})
	f, _ := nn.Create("data", 1000)
	for _, b := range f.Blocks {
		if len(b.Replicas) != 3 {
			t.Fatalf("block %d has %d replicas", b.Index, len(b.Replicas))
		}
		seen := map[int]bool{}
		for _, r := range b.Replicas {
			if r < 0 || r >= 8 {
				t.Fatalf("replica node %d out of range", r)
			}
			if seen[r] {
				t.Fatalf("block %d has duplicate replica %d", b.Index, r)
			}
			seen[r] = true
		}
	}
}

func TestDuplicateCreateFails(t *testing.T) {
	nn := NewNamenode(Config{Nodes: 4})
	if _, err := nn.Create("x", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := nn.Create("x", 10); err == nil {
		t.Fatal("duplicate create succeeded")
	}
}

func TestNegativeSizeFails(t *testing.T) {
	nn := NewNamenode(Config{Nodes: 4})
	if _, err := nn.Create("x", -1); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestFileLookupAndDelete(t *testing.T) {
	nn := NewNamenode(Config{Nodes: 4})
	nn.Create("a", 10)
	if _, ok := nn.File("a"); !ok {
		t.Fatal("file not found")
	}
	if _, ok := nn.File("b"); ok {
		t.Fatal("phantom file")
	}
	nn.Delete("a")
	if _, ok := nn.File("a"); ok {
		t.Fatal("file survived delete")
	}
	nn.Delete("a") // idempotent
}

func TestFilesSorted(t *testing.T) {
	nn := NewNamenode(Config{Nodes: 4})
	nn.Create("zz", 1)
	nn.Create("aa", 1)
	names := nn.Files()
	if len(names) != 2 || names[0] != "aa" || names[1] != "zz" {
		t.Fatalf("Files = %v", names)
	}
}

func TestDefaults(t *testing.T) {
	nn := NewNamenode(Config{Nodes: 8})
	if nn.BlockSize() != DefaultBlockSize {
		t.Fatalf("block size = %v", nn.BlockSize())
	}
	if nn.Replication() != DefaultReplication {
		t.Fatalf("replication = %v", nn.Replication())
	}
}

func TestReplicationClampedToNodes(t *testing.T) {
	nn := NewNamenode(Config{Nodes: 2, Replication: 3})
	if nn.Replication() != 2 {
		t.Fatalf("replication = %d, want clamped to 2", nn.Replication())
	}
	f, _ := nn.Create("x", 10)
	if len(f.Blocks[0].Replicas) != 2 {
		t.Fatalf("replicas = %v", f.Blocks[0].Replicas)
	}
}

func TestZeroNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero nodes accepted")
		}
	}()
	NewNamenode(Config{})
}

func TestPlaceOutputLocalFirst(t *testing.T) {
	nn := NewNamenode(Config{Nodes: 8, Replication: 3})
	for node := 0; node < 8; node++ {
		reps := nn.PlaceOutput(node)
		if reps[0] != node {
			t.Fatalf("PlaceOutput(%d) primary = %d", node, reps[0])
		}
		if len(reps) != 3 {
			t.Fatalf("PlaceOutput(%d) = %v", node, reps)
		}
	}
}

func TestPlaceOutputInvalidNode(t *testing.T) {
	nn := NewNamenode(Config{Nodes: 4, Replication: 2})
	reps := nn.PlaceOutput(-1)
	if len(reps) != 2 {
		t.Fatalf("PlaceOutput(-1) = %v", reps)
	}
}

func TestHasReplicaOn(t *testing.T) {
	b := Block{Replicas: []int{1, 5, 7}}
	if !b.HasReplicaOn(5) || b.HasReplicaOn(2) {
		t.Fatal("HasReplicaOn wrong")
	}
}

func TestDeterministicPlacement(t *testing.T) {
	layout := func() [][]int {
		nn := NewNamenode(Config{Nodes: 8, Seed: 99, BlockSize: 10})
		f, _ := nn.Create("d", 200)
		var out [][]int
		for _, b := range f.Blocks {
			out = append(out, b.Replicas)
		}
		return out
	}
	a, b := layout(), layout()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("placement not deterministic at block %d", i)
			}
		}
	}
}

func TestPlacementRoughlyBalanced(t *testing.T) {
	nn := NewNamenode(Config{Nodes: 8, Replication: 3, BlockSize: 1, Seed: 1})
	f, _ := nn.Create("big", 4000)
	counts := make([]int, 8)
	for _, b := range f.Blocks {
		for _, r := range b.Replicas {
			counts[r]++
		}
	}
	// 4000 blocks × 3 replicas / 8 nodes = 1500 expected per node.
	for i, c := range counts {
		if math.Abs(float64(c)-1500)/1500 > 0.1 {
			t.Fatalf("node %d holds %d replicas, want ≈1500 (skewed placement)", i, c)
		}
	}
}

func TestBlockCountFor(t *testing.T) {
	nn := NewNamenode(Config{Nodes: 4, BlockSize: 128})
	cases := []struct {
		size float64
		want int
	}{
		{0, 0}, {-3, 0}, {1, 1}, {128, 1}, {129, 2}, {1280, 10},
	}
	for _, c := range cases {
		if got := nn.BlockCountFor(c.size); got != c.want {
			t.Errorf("BlockCountFor(%v) = %d, want %d", c.size, got, c.want)
		}
	}
}

// Property: any file's blocks cover exactly the file size and replicas
// are always distinct.
func TestPropertyCreateInvariants(t *testing.T) {
	f := func(sizeRaw uint32, nodesRaw, repRaw uint8) bool {
		nodes := 1 + int(nodesRaw%16)
		rep := 1 + int(repRaw%5)
		size := float64(sizeRaw % 100000)
		nn := NewNamenode(Config{Nodes: nodes, Replication: rep, BlockSize: 997})
		file, err := nn.Create("f", size)
		if err != nil {
			return false
		}
		total := 0.0
		for _, b := range file.Blocks {
			total += b.Size
			if b.Size <= 0 || b.Size > 997 {
				return false
			}
			seen := map[int]bool{}
			for _, r := range b.Replicas {
				if r < 0 || r >= nodes || seen[r] {
					return false
				}
				seen[r] = true
			}
			if len(b.Replicas) != nn.Replication() {
				return false
			}
		}
		return math.Abs(total-size) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
