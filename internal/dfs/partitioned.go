package dfs

// Partitioned namenode: block metadata sharded by block-id hash.
//
// The classic single namenode is a serial point — every placement
// decision draws from one RNG, so placements must happen in one global
// order, on one engine. Partitioning removes that order dependence:
//
//   - Each block of a file is owned by the partition FNV-1a(file,
//     index) hashes to. A partition draws placements for its blocks
//     from its own RNG, so two partitions' draws commute — they can
//     run on different metadata shards without coordinating.
//   - Output placement (PlaceOutputKeyed) is a pure function of a
//     caller-supplied key: the "owner" partition's answer is
//     computable anywhere, so datanode-shard writers place blocks
//     without a namenode round trip, and the layout is independent of
//     the order concurrent writers reach it.
//
// Reads never consult the namenode at all once a file is published —
// Block.Replicas is immutable after Publish/Create — so lookups
// resolve on whichever shard holds the *File.
//
// A Namenode with Partitions ≤ 1 keeps the legacy behavior bit for
// bit: one RNG, draws in call order, PlaceOutput consuming the shared
// stream. The partitioned mode is opt-in (sharded assemblies).

import (
	"fmt"
	"hash/fnv"
	"math/rand"
)

// Owner returns the partition owning the given block. Only meaningful
// in partitioned mode; with Partitions ≤ 1 it returns 0.
func (nn *Namenode) Owner(file string, index int) int {
	if len(nn.parts) == 0 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(file))
	var buf [8]byte
	for i, v := 0, uint64(index); i < 8; i++ {
		buf[i] = byte(v)
		v >>= 8
	}
	h.Write(buf[:])
	return int(h.Sum64() % uint64(len(nn.parts)))
}

// Partitions returns the metadata partition count (1 in legacy mode).
func (nn *Namenode) Partitions() int {
	if len(nn.parts) == 0 {
		return 1
	}
	return len(nn.parts)
}

// Shape returns the per-block sizes a file of the given size splits
// into under the configured block size.
func (nn *Namenode) Shape(size float64) []float64 {
	n := nn.BlockCountFor(size)
	sizes := make([]float64, n)
	remaining := size
	for i := range sizes {
		bs := nn.cfg.BlockSize
		if remaining < bs {
			bs = remaining
		}
		sizes[i] = bs
		remaining -= bs
	}
	return sizes
}

// PlacePartition draws replica sets on partition p for count blocks,
// in request order. The caller is responsible for running all of
// partition p's draws on a single owner (the partition's metadata
// shard); draws on distinct partitions are independent.
func (nn *Namenode) PlacePartition(p, count int) [][]int {
	if len(nn.parts) == 0 {
		panic("dfs: PlacePartition on a non-partitioned namenode")
	}
	out := make([][]int, count)
	for i := range out {
		out[i] = nn.pickFrom(nn.parts[p], -1)
	}
	return out
}

// Publish registers a file assembled from per-partition placement
// draws: sizes[i] and replicas[i] describe block i. It is the
// partitioned counterpart of Create's registration step and runs on
// the coordinator after every owner partition has answered.
func (nn *Namenode) Publish(name string, sizes []float64, replicas [][]int) (*File, error) {
	if _, ok := nn.files[name]; ok {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	if len(sizes) != len(replicas) {
		return nil, fmt.Errorf("dfs: %d block sizes but %d replica sets", len(sizes), len(replicas))
	}
	f := &File{Name: name}
	for i, bs := range sizes {
		f.Size += bs
		f.Blocks = append(f.Blocks, Block{
			File:     name,
			Index:    i,
			Size:     bs,
			Replicas: replicas[i],
		})
	}
	nn.files[name] = f
	return f, nil
}

// PlaceOutputKeyed is placement as a pure function: the replica set
// for an output block identified by key, written from localNode. Any
// shard computes the same answer without touching shared namenode
// state, so concurrent writers on different datanode shards place
// deterministically regardless of completion interleaving. The
// write-local-first rule is preserved.
func (nn *Namenode) PlaceOutputKeyed(localNode int, key uint64) []int {
	rng := rand.New(rand.NewSource(int64(mix64(uint64(nn.cfg.Seed) ^ key))))
	if localNode < 0 || localNode >= nn.cfg.Nodes {
		return nn.pickFrom(rng, -1)
	}
	return nn.pickFrom(rng, localNode)
}

// mix64 is the SplitMix64 finalizer — a cheap, well-distributed hash
// to decorrelate adjacent placement keys before seeding.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pickFrom is pickReplicas against an explicit RNG (a partition's, or
// a keyed throwaway).
func (nn *Namenode) pickFrom(rng *rand.Rand, first int) []int {
	r := nn.cfg.Replication
	replicas := make([]int, 0, r)
	used := make(map[int]bool, r)
	if first >= 0 {
		replicas = append(replicas, first)
		used[first] = true
	}
	for len(replicas) < r {
		n := rng.Intn(nn.cfg.Nodes)
		if !used[n] {
			used[n] = true
			replicas = append(replicas, n)
		}
	}
	return replicas
}
