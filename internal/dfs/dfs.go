// Package dfs models the GFS/HDFS-style distributed file system
// underlying the simulated big-data cluster: files are split into
// fixed-size blocks, each block is replicated on a set of distinct
// datanodes, and the namenode answers placement and locality queries.
// The paper's Table 1 configuration (128 MB blocks, replication 3) is
// the default.
package dfs

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// DefaultBlockSize matches dfs.block.size = 134217728 from Table 1.
const DefaultBlockSize = 134217728

// DefaultReplication matches dfs.replication = 3 from Table 1.
const DefaultReplication = 3

// Config parameterizes the namenode.
type Config struct {
	// Nodes is the number of datanodes.
	Nodes int
	// BlockSize in bytes; defaults to DefaultBlockSize.
	BlockSize float64
	// Replication factor; defaults to DefaultReplication, clamped to
	// the node count.
	Replication int
	// Seed drives the deterministic placement RNG.
	Seed int64
	// Partitions shards block metadata by block-id hash across this
	// many independent partitions, each with its own placement RNG
	// (see partitioned.go). ≤ 1 keeps the legacy single-RNG namenode.
	Partitions int
}

func (c *Config) defaults() {
	if c.BlockSize <= 0 {
		c.BlockSize = DefaultBlockSize
	}
	if c.Replication <= 0 {
		c.Replication = DefaultReplication
	}
	if c.Replication > c.Nodes {
		c.Replication = c.Nodes
	}
}

// Block is one replicated unit of a file.
type Block struct {
	// File is the owning file's name.
	File string
	// Index is the block's ordinal within the file.
	Index int
	// Size in bytes (the final block may be short).
	Size float64
	// Replicas lists the datanode indices holding a copy, primary
	// first.
	Replicas []int
}

// HasReplicaOn reports whether the block has a copy on the given node.
func (b *Block) HasReplicaOn(node int) bool {
	for _, r := range b.Replicas {
		if r == node {
			return true
		}
	}
	return false
}

// File is a named collection of blocks.
type File struct {
	Name   string
	Size   float64
	Blocks []Block
}

// Namenode places blocks and answers locality queries. All placement is
// driven by a seeded RNG, so a given seed reproduces an identical data
// layout.
type Namenode struct {
	cfg   Config
	rng   *rand.Rand
	files map[string]*File
	// parts holds the per-partition placement RNGs in partitioned mode
	// (nil in legacy mode); partition p's state is only ever advanced
	// by p's owner shard.
	parts []*rand.Rand
}

// NewNamenode constructs a namenode for the given cluster size.
func NewNamenode(cfg Config) *Namenode {
	if cfg.Nodes <= 0 {
		panic(fmt.Sprintf("dfs: cluster must have at least one node, got %d", cfg.Nodes))
	}
	cfg.defaults()
	nn := &Namenode{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		files: make(map[string]*File),
	}
	if cfg.Partitions > 1 {
		nn.parts = make([]*rand.Rand, cfg.Partitions)
		for p := range nn.parts {
			// Distinct streams per partition; the +1 keeps partition 0
			// off the legacy seed so layouts differ from legacy mode.
			nn.parts[p] = rand.New(rand.NewSource(cfg.Seed + int64(p) + 1))
		}
	}
	return nn
}

// Config returns the effective (defaulted) configuration.
func (nn *Namenode) Config() Config { return nn.cfg }

// BlockSize returns the configured block size.
func (nn *Namenode) BlockSize() float64 { return nn.cfg.BlockSize }

// Replication returns the effective replication factor.
func (nn *Namenode) Replication() int { return nn.cfg.Replication }

// Create allocates a file of the given size, placing every block on
// Replication distinct datanodes chosen uniformly at random.
func (nn *Namenode) Create(name string, size float64) (*File, error) {
	if _, ok := nn.files[name]; ok {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	if size < 0 {
		return nil, fmt.Errorf("dfs: negative file size %g", size)
	}
	f := &File{Name: name, Size: size}
	nBlocks := int(math.Ceil(size / nn.cfg.BlockSize))
	remaining := size
	for i := 0; i < nBlocks; i++ {
		bs := nn.cfg.BlockSize
		if remaining < bs {
			bs = remaining
		}
		remaining -= bs
		var replicas []int
		if len(nn.parts) > 0 {
			// Partitioned: the block's owner draws. Walking blocks in
			// index order, each partition sees its blocks in index
			// order too, so this synchronous path produces the exact
			// layout the metadata shards produce asynchronously.
			replicas = nn.pickFrom(nn.parts[nn.Owner(name, i)], -1)
		} else {
			replicas = nn.pickReplicas(-1)
		}
		f.Blocks = append(f.Blocks, Block{
			File:     name,
			Index:    i,
			Size:     bs,
			Replicas: replicas,
		})
	}
	nn.files[name] = f
	return f, nil
}

// File returns a previously created file.
func (nn *Namenode) File(name string) (*File, bool) {
	f, ok := nn.files[name]
	return f, ok
}

// Files lists all file names, sorted.
func (nn *Namenode) Files() []string {
	names := make([]string, 0, len(nn.files))
	for n := range nn.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Delete removes a file; deleting a missing file is a no-op (HDFS
// semantics for -f).
func (nn *Namenode) Delete(name string) { delete(nn.files, name) }

// PlaceOutput returns a replica set for an output block being written
// from the given node: the writer's node first (HDFS's write-local-
// first rule), then Replication−1 distinct random remotes.
func (nn *Namenode) PlaceOutput(localNode int) []int {
	if localNode < 0 || localNode >= nn.cfg.Nodes {
		return nn.pickReplicas(-1)
	}
	return nn.pickReplicas(localNode)
}

// pickReplicas selects Replication distinct nodes from the legacy
// shared RNG; if first >= 0 it is forced into the first slot.
func (nn *Namenode) pickReplicas(first int) []int {
	return nn.pickFrom(nn.rng, first)
}

// BlockCountFor returns how many blocks a file of the given size
// occupies under this namenode's block size.
func (nn *Namenode) BlockCountFor(size float64) int {
	if size <= 0 {
		return 0
	}
	return int(math.Ceil(size / nn.cfg.BlockSize))
}
