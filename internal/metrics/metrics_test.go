package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeSeriesBinning(t *testing.T) {
	ts := NewTimeSeries(10)
	ts.Add(0, 5)
	ts.Add(9.99, 5)
	ts.Add(10, 7)
	ts.Add(35, 3)
	bins := ts.Bins()
	want := []float64{10, 7, 0, 3}
	if len(bins) != len(want) {
		t.Fatalf("bins = %v, want %v", bins, want)
	}
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bins = %v, want %v", bins, want)
		}
	}
}

func TestTimeSeriesRateAndTotal(t *testing.T) {
	ts := NewTimeSeries(2)
	ts.Add(0, 10)
	ts.Add(3, 30)
	if got := ts.Total(); got != 40 {
		t.Fatalf("Total = %v", got)
	}
	rate := ts.Rate()
	if rate[0] != 5 || rate[1] != 15 {
		t.Fatalf("Rate = %v", rate)
	}
	if got := ts.PeakRate(); got != 15 {
		t.Fatalf("PeakRate = %v", got)
	}
	if got := ts.MeanRateOverSpan(); got != 10 {
		t.Fatalf("MeanRateOverSpan = %v (total 40 over 4s)", got)
	}
}

func TestTimeSeriesNegativeTimeClamped(t *testing.T) {
	ts := NewTimeSeries(1)
	ts.Add(-5, 3)
	if ts.Bins()[0] != 3 {
		t.Fatal("negative time not clamped into first bin")
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	ts := NewTimeSeries(1)
	if ts.Total() != 0 || ts.PeakRate() != 0 || ts.MeanRateOverSpan() != 0 {
		t.Fatal("empty series nonzero")
	}
	if len(ts.Bins()) != 0 {
		t.Fatal("empty series has bins")
	}
}

func TestTimeSeriesInvalidWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bin width accepted")
		}
	}()
	NewTimeSeries(0)
}

func TestDistributionBasics(t *testing.T) {
	d := NewDistribution()
	for _, v := range []float64{4, 1, 3, 2, 5} {
		d.Add(v)
	}
	if d.N() != 5 || d.Mean() != 3 || d.Min() != 1 || d.Max() != 5 {
		t.Fatalf("stats: n=%d mean=%v min=%v max=%v", d.N(), d.Mean(), d.Min(), d.Max())
	}
	if got := d.Percentile(50); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := d.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := d.Percentile(100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
}

func TestDistributionEmpty(t *testing.T) {
	d := NewDistribution()
	if d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 || d.Percentile(50) != 0 {
		t.Fatal("empty distribution nonzero")
	}
	v, f := d.CDF()
	if v != nil || f != nil {
		t.Fatal("empty CDF non-nil")
	}
	if d.FractionBelow(10) != 0 {
		t.Fatal("empty FractionBelow nonzero")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	d := NewDistribution()
	d.Add(0)
	d.Add(10)
	if got := d.Percentile(50); got != 5 {
		t.Fatalf("p50 of {0,10} = %v, want 5", got)
	}
	if got := d.Percentile(90); math.Abs(got-9) > 1e-12 {
		t.Fatalf("p90 of {0,10} = %v, want 9", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	d := NewDistribution()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		d.Add(rng.Float64() * 50)
	}
	vals, fracs := d.CDF()
	if !sort.Float64sAreSorted(vals) {
		t.Fatal("CDF values not sorted")
	}
	for i := 1; i < len(fracs); i++ {
		if fracs[i] <= fracs[i-1] {
			t.Fatal("CDF fractions not strictly increasing")
		}
	}
	if fracs[len(fracs)-1] != 1 {
		t.Fatalf("final fraction = %v, want 1", fracs[len(fracs)-1])
	}
}

func TestFractionBelow(t *testing.T) {
	d := NewDistribution()
	for _, v := range []float64{1, 2, 3, 4} {
		d.Add(v)
	}
	cases := []struct{ v, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := d.FractionBelow(c.v); got != c.want {
			t.Errorf("FractionBelow(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestSlowdownAndRelativePerformance(t *testing.T) {
	if got := Slowdown(207, 100); math.Abs(got-1.07) > 1e-12 {
		t.Fatalf("Slowdown = %v, want 1.07", got)
	}
	if got := Slowdown(100, 0); got != 0 {
		t.Fatalf("Slowdown with zero baseline = %v", got)
	}
	if got := RelativePerformance(200, 100); got != 0.5 {
		t.Fatalf("RelativePerformance = %v, want 0.5", got)
	}
	if got := RelativePerformance(0, 100); got != 0 {
		t.Fatalf("RelativePerformance with zero runtime = %v", got)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []uint16, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		d := NewDistribution()
		for _, r := range raw {
			d.Add(float64(r))
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		pa, pb := d.Percentile(a), d.Percentile(b)
		return pa <= pb+1e-9 && pa >= d.Min()-1e-9 && pb <= d.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: time series total equals the sum of added values.
func TestPropertyTimeSeriesConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		ts := NewTimeSeries(3)
		sum := 0.0
		for i, r := range raw {
			v := float64(r)
			sum += v
			ts.Add(float64(i%97), v)
		}
		return math.Abs(ts.Total()-sum) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
