// Package metrics provides the measurement primitives behind the paper's
// figures: windowed throughput time series, latency statistics, CDFs,
// and slowdown computations.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// TimeSeries accumulates values into fixed-width time bins. It backs the
// throughput-versus-time plots (Figure 2) and the depth/latency traces
// (Figure 7).
type TimeSeries struct {
	binWidth float64
	bins     []float64
}

// NewTimeSeries creates a series with the given bin width in seconds.
func NewTimeSeries(binWidth float64) *TimeSeries {
	if binWidth <= 0 {
		panic(fmt.Sprintf("metrics: bin width %g must be positive", binWidth))
	}
	return &TimeSeries{binWidth: binWidth}
}

// BinWidth returns the bin width in seconds.
func (ts *TimeSeries) BinWidth() float64 { return ts.binWidth }

// Add accumulates value into the bin containing time t (seconds).
func (ts *TimeSeries) Add(t, value float64) {
	if t < 0 {
		t = 0
	}
	idx := int(t / ts.binWidth)
	for idx >= len(ts.bins) {
		ts.bins = append(ts.bins, 0)
	}
	ts.bins[idx] += value
}

// Bins returns a copy of the accumulated bins.
func (ts *TimeSeries) Bins() []float64 {
	out := make([]float64, len(ts.bins))
	copy(out, ts.bins)
	return out
}

// Rate returns the per-second rates (bin value divided by bin width).
func (ts *TimeSeries) Rate() []float64 {
	out := make([]float64, len(ts.bins))
	for i, v := range ts.bins {
		out[i] = v / ts.binWidth
	}
	return out
}

// Total returns the sum over all bins.
func (ts *TimeSeries) Total() float64 {
	t := 0.0
	for _, v := range ts.bins {
		t += v
	}
	return t
}

// PeakRate returns the maximum per-second rate over all bins.
func (ts *TimeSeries) PeakRate() float64 {
	peak := 0.0
	for _, v := range ts.bins {
		if r := v / ts.binWidth; r > peak {
			peak = r
		}
	}
	return peak
}

// MeanRateOverSpan returns total divided by the span [0, end of last
// non-empty bin]; zero if empty.
func (ts *TimeSeries) MeanRateOverSpan() float64 {
	last := -1
	for i, v := range ts.bins {
		if v > 0 {
			last = i
		}
	}
	if last < 0 {
		return 0
	}
	span := float64(last+1) * ts.binWidth
	return ts.Total() / span
}

// Distribution summarizes a sample set; it backs the Facebook2009 CDF
// (Figure 9) and latency statistics.
type Distribution struct {
	samples []float64
	sorted  bool
}

// NewDistribution returns an empty sample set.
func NewDistribution() *Distribution { return &Distribution{} }

// Add records one sample.
func (d *Distribution) Add(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// N returns the sample count.
func (d *Distribution) N() int { return len(d.samples) }

// Mean returns the arithmetic mean (0 for an empty set).
func (d *Distribution) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range d.samples {
		s += v
	}
	return s / float64(len(d.samples))
}

// Min returns the smallest sample (0 for an empty set).
func (d *Distribution) Min() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	return d.samples[0]
}

// Max returns the largest sample (0 for an empty set).
func (d *Distribution) Max() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	return d.samples[len(d.samples)-1]
}

// Percentile returns the p-th percentile (p in [0,100]) using nearest-
// rank interpolation; 0 for an empty set.
func (d *Distribution) Percentile(p float64) float64 {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	d.ensureSorted()
	if p <= 0 {
		return d.samples[0]
	}
	if p >= 100 {
		return d.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return d.samples[lo]
	}
	frac := rank - float64(lo)
	return d.samples[lo]*(1-frac) + d.samples[hi]*frac
}

// CDF returns (value, cumulative fraction) pairs over the sorted
// samples — the exact series plotted in Figure 9.
func (d *Distribution) CDF() (values, fractions []float64) {
	n := len(d.samples)
	if n == 0 {
		return nil, nil
	}
	d.ensureSorted()
	values = make([]float64, n)
	fractions = make([]float64, n)
	copy(values, d.samples)
	for i := range fractions {
		fractions[i] = float64(i+1) / float64(n)
	}
	return values, fractions
}

// FractionBelow returns the fraction of samples <= v.
func (d *Distribution) FractionBelow(v float64) float64 {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	d.ensureSorted()
	idx := sort.SearchFloat64s(d.samples, math.Nextafter(v, math.Inf(1)))
	return float64(idx) / float64(n)
}

func (d *Distribution) ensureSorted() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// CoordinationHealth aggregates the fault-tolerance counters of the
// coordination plane: exchange attempts and outcomes, retry/backoff
// activity, and the degradation state machine's transitions. One value
// per broker client; Merge folds clients into a cluster-wide view.
type CoordinationHealth struct {
	// Attempts counts exchange round trips initiated (including
	// retries); Successes those whose response was applied.
	Attempts  uint64
	Successes uint64
	// Failures counts attempts that errored (broker unavailable,
	// message lost) and Timeouts those abandoned because the response
	// exceeded the retry policy's timeout.
	Failures uint64
	Timeouts uint64
	// Retries counts backoff-scheduled re-attempts; SkippedRounds
	// counts periodic rounds abandoned after exhausting retries (or
	// skipped because a previous round was still retrying).
	Retries       uint64
	SkippedRounds uint64
	// StaleDrops counts responses discarded on arrival: out of order
	// behind a newer applied response, late past the timeout, or
	// obsoleted by a restart.
	StaleDrops uint64
	// Degradations and Recoveries count transitions into and out of
	// the degraded (local-fairness-only) mode; DegradedTime is the
	// total virtual seconds spent degraded.
	Degradations uint64
	Recoveries   uint64
	DegradedTime float64
	// Restarts counts injected scheduler restarts; ReRegisters counts
	// completed re-registration handshakes after them.
	Restarts    uint64
	ReRegisters uint64
}

// Merge accumulates o into h.
func (h *CoordinationHealth) Merge(o CoordinationHealth) {
	h.Attempts += o.Attempts
	h.Successes += o.Successes
	h.Failures += o.Failures
	h.Timeouts += o.Timeouts
	h.Retries += o.Retries
	h.SkippedRounds += o.SkippedRounds
	h.StaleDrops += o.StaleDrops
	h.Degradations += o.Degradations
	h.Recoveries += o.Recoveries
	h.DegradedTime += o.DegradedTime
	h.Restarts += o.Restarts
	h.ReRegisters += o.ReRegisters
}

// String renders the counters on one line.
func (h CoordinationHealth) String() string {
	return fmt.Sprintf(
		"attempts=%d ok=%d fail=%d timeout=%d retries=%d skipped=%d stale=%d degraded=%d recovered=%d degraded-time=%.1fs restarts=%d reregisters=%d",
		h.Attempts, h.Successes, h.Failures, h.Timeouts, h.Retries,
		h.SkippedRounds, h.StaleDrops, h.Degradations, h.Recoveries,
		h.DegradedTime, h.Restarts, h.ReRegisters)
}

// Slowdown returns the fractional slowdown (runtime/standalone − 1),
// the metric on top of the bars in Figures 3, 6, 11 and 12: WordCount
// "slowed down by 107%" means its runtime was 2.07× the standalone run.
func Slowdown(runtime, standalone float64) float64 {
	if standalone <= 0 {
		return 0
	}
	return runtime/standalone - 1
}

// RelativePerformance returns standalone/runtime, the "relative
// application performance" metric of Figure 10 (1.0 = as fast as
// running alone).
func RelativePerformance(runtime, standalone float64) float64 {
	if runtime <= 0 {
		return 0
	}
	return standalone / runtime
}
