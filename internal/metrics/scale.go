package metrics

// Scale-run metrics: the memory and throughput envelope of a hollow
// cluster run. Fairness tells whether the scheduler is right at scale;
// these numbers tell whether it is affordable — bytes of heap per
// in-flight request, bytes of heap per node, and simulator events per
// wall-clock second are the three axes the scale gates regress on.

import (
	"fmt"
	"runtime"
	"strings"
)

// HeapWatermark tracks live-heap growth over a run. Take the baseline
// after constructing the model (a forced GC makes it comparable across
// runs), Sample during the run, and read Growth at the end. Samples use
// HeapAlloc without forcing collection, so the watermark includes
// float garbage and is an upper bound on live state — the
// conservative side for a memory gate.
type HeapWatermark struct {
	baseline uint64
	peak     uint64
}

// NewHeapWatermark forces a GC and records the post-construction
// baseline.
func NewHeapWatermark() *HeapWatermark {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return &HeapWatermark{baseline: m.HeapAlloc, peak: m.HeapAlloc}
}

// Sample reads the current heap and raises the watermark.
func (h *HeapWatermark) Sample() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	if m.HeapAlloc > h.peak {
		h.peak = m.HeapAlloc
	}
}

// Baseline returns the post-construction heap in bytes.
func (h *HeapWatermark) Baseline() uint64 { return h.baseline }

// Peak returns the highest sampled heap in bytes.
func (h *HeapWatermark) Peak() uint64 { return h.peak }

// Growth returns peak minus baseline — the run's working set.
func (h *HeapWatermark) Growth() uint64 {
	if h.peak < h.baseline {
		return 0
	}
	return h.peak - h.baseline
}

// ScaleStats is the recorded envelope of one scale run. The simulation
// outcome fields (population, traffic, fairness, digest) are
// deterministic; the host-dependent fields (wall seconds, events/sec,
// heap) vary by machine and are reported separately from the
// deterministic digest surface.
type ScaleStats struct {
	// Population shape.
	Nodes, Tenants, Apps int
	// Traffic totals.
	Submitted, Completed uint64
	BytesServed          float64
	// PeakInFlight is the maximum simultaneous outstanding requests,
	// cluster-wide, observed at sampling ticks.
	PeakInFlight int
	// FairnessMaxRatio is the worst per-node max/min ratio of
	// weight-normalized service among continuously backlogged apps
	// (1.0 = perfect proportional sharing).
	FairnessMaxRatio float64
	// Digest fingerprints the full completion stream; equal digests
	// mean bit-identical runs.
	Digest uint64

	// Federation plane (all zero when the broker is centralized). The
	// sync counts and wire bytes are deterministic — encoding and sync
	// cadence are pure functions of the virtual timeline. BaselineBytes
	// is what a centralized full-vector broker would have shipped for
	// the same client exchange traffic; FedUpBytes+FedDownBytes against
	// it is the delta-compression ratio the federation gate enforces.
	Partitions    int
	FedSyncs      uint64
	FedSnapshots  uint64
	FedUpBytes    uint64
	FedDownBytes  uint64
	BaselineBytes uint64

	// Host-dependent envelope.
	Events        uint64
	WallSeconds   float64
	EventsPerSec  float64
	PeakHeapBytes uint64
	BytesPerFlow  float64
	BytesPerNode  float64

	// ShardLoad is the per-shard occupancy of the run (events are
	// deterministic, busy time is host wall clock); see ShardStats.
	ShardLoad ShardStats
}

// Deterministic formats the machine-independent outcome fields — the
// byte-identical-stdout surface of the scale experiment.
func (s ScaleStats) Deterministic() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes=%d tenants=%d apps=%d\n", s.Nodes, s.Tenants, s.Apps)
	fmt.Fprintf(&b, "submitted=%d completed=%d bytes=%.0f\n", s.Submitted, s.Completed, s.BytesServed)
	fmt.Fprintf(&b, "peak-in-flight=%d fairness-max-ratio=%.4f\n", s.PeakInFlight, s.FairnessMaxRatio)
	fmt.Fprintf(&b, "digest=%016x\n", s.Digest)
	if s.Partitions > 0 {
		fmt.Fprintf(&b, "partitions=%d fed-syncs=%d fed-snapshots=%d fed-bytes=%d baseline-bytes=%d\n",
			s.Partitions, s.FedSyncs, s.FedSnapshots, s.FedUpBytes+s.FedDownBytes, s.BaselineBytes)
	}
	return b.String()
}

// FedCompression returns the baseline-to-federation wire-volume ratio
// (0 when centralized or nothing was shipped).
func (s ScaleStats) FedCompression() float64 {
	fed := s.FedUpBytes + s.FedDownBytes
	if s.Partitions == 0 || fed == 0 {
		return 0
	}
	return float64(s.BaselineBytes) / float64(fed)
}

// Envelope formats the host-dependent throughput and memory numbers.
func (s ScaleStats) Envelope() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events=%d wall=%.2fs events/sec=%.0f\n", s.Events, s.WallSeconds, s.EventsPerSec)
	fmt.Fprintf(&b, "peak-heap=%.1fMB bytes/flow=%.0f bytes/node=%.0f\n",
		float64(s.PeakHeapBytes)/1e6, s.BytesPerFlow, s.BytesPerNode)
	if s.ShardLoad.Shards() > 0 {
		fmt.Fprintf(&b, "%s\n", s.ShardLoad.Note())
	}
	return b.String()
}
