package metrics

// Per-shard occupancy of a sharded (fabric) run: how much of the
// simulation's work the coordinator shard actually performs, measured
// instead of estimated. Events-per-shard is a deterministic function of
// the model (identical for every worker count); busy-time is wall clock
// and belongs on the host-dependent envelope only. The coordinator
// fractions are the serial term of Amdahl's law for the run — the
// number the coordinator-decomposition work drives down.

import (
	"fmt"
	"strings"
)

// ShardStats records per-shard execution load for one fabric run.
// Index 0 is the coordinator shard by convention.
type ShardStats struct {
	// Events is the number of events each shard executed (deterministic).
	Events []uint64
	// Busy is the wall-clock seconds each shard spent executing windows
	// (host-dependent).
	Busy []float64
}

// Shards returns the shard count.
func (s ShardStats) Shards() int { return len(s.Events) }

// TotalEvents sums events across shards.
func (s ShardStats) TotalEvents() uint64 {
	var n uint64
	for _, e := range s.Events {
		n += e
	}
	return n
}

// CoordEventFraction returns the coordinator shard's share of all
// executed events — the deterministic Amdahl fraction (0 when empty).
func (s ShardStats) CoordEventFraction() float64 {
	total := s.TotalEvents()
	if len(s.Events) == 0 || total == 0 {
		return 0
	}
	return float64(s.Events[0]) / float64(total)
}

// CoordBusyFraction returns the coordinator shard's share of total
// wall-clock execution time (host-dependent; 0 when nothing ran).
func (s ShardStats) CoordBusyFraction() float64 {
	var total float64
	for _, b := range s.Busy {
		total += b
	}
	if len(s.Busy) == 0 || total == 0 {
		return 0
	}
	return s.Busy[0] / total
}

// MaxEvents returns the busiest shard's index and event count.
func (s ShardStats) MaxEvents() (shard int, events uint64) {
	for i, e := range s.Events {
		if e > events {
			shard, events = i, e
		}
	}
	return shard, events
}

// Note formats the occupancy as a one-line summary for stderr
// envelopes: coordinator fraction by events and by busy time, plus the
// busiest shard.
func (s ShardStats) Note() string {
	if len(s.Events) == 0 {
		return "shard-occupancy: n/a"
	}
	var b strings.Builder
	maxShard, maxEv := s.MaxEvents()
	fmt.Fprintf(&b, "shard-occupancy: shards=%d coord-events=%.1f%% coord-busy=%.1f%% max-shard=%d (%d events)",
		s.Shards(), 100*s.CoordEventFraction(), 100*s.CoordBusyFraction(), maxShard, maxEv)
	return b.String()
}
