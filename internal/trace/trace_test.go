package trace_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ibis/internal/iosched"
	"ibis/internal/sim"
	"ibis/internal/storage"
	"ibis/internal/trace"
)

func flatSpec() storage.Spec {
	return storage.Spec{
		Name:   "flat",
		ReadBW: 100e6, WriteBW: 100e6,
		Curve: []float64{1}, CurveDecay: 1, MinCurve: 1,
	}
}

// runTraced pushes nReqs closed-loop 1 MB reads from two apps through
// an SFQ(D=2) scheduler with the tracer's probe attached and runs the
// simulation to completion.
func runTraced(tr *trace.Tracer, nReqs int) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := iosched.NewSFQD(eng, dev, 2)
	s.SetProbe(tr.Probe(0, trace.DevHDFS))
	apps := []iosched.AppID{"alpha", "beta"}
	for i := 0; i < nReqs; i++ {
		s.Submit(&iosched.Request{
			App: apps[i%2], Shares: iosched.FixedWeight(float64(1 + i%2)), Class: iosched.PersistentRead, Size: 1e6,
		})
	}
	eng.Run()
}

func TestTracerRecordsFullLifecycles(t *testing.T) {
	tr := trace.New(1 << 10)
	const n = 20
	runTraced(tr, n)
	if got := tr.Total(); got != 3*n {
		t.Fatalf("Total() = %d, want %d (3 events per request)", got, 3*n)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped() = %d with ample capacity, want 0", tr.Dropped())
	}
	reqs := tr.Requests()
	if len(reqs) != n {
		t.Fatalf("Requests() grouped %d lifecycles, want %d", len(reqs), n)
	}
	for _, r := range reqs {
		if r.Arrive < 0 || r.Dispatch < r.Arrive || r.Complete < r.Dispatch {
			t.Fatalf("lifecycle out of order: arrive=%v dispatch=%v complete=%v", r.Arrive, r.Dispatch, r.Complete)
		}
		if r.QueueDelay() < 0 || r.ServiceTime() <= 0 || r.Latency <= 0 {
			t.Fatalf("phase durations: queue=%v service=%v latency=%v", r.QueueDelay(), r.ServiceTime(), r.Latency)
		}
		if r.StartTag == 0 && r.FinishTag == 0 {
			t.Fatalf("request %s/%d has no SFQ tags recorded", r.App, r.Seq)
		}
	}
}

func TestTracerRingWraparound(t *testing.T) {
	const capacity = 16
	tr := trace.New(capacity)
	const n = 40 // 120 events >> capacity
	runTraced(tr, n)
	if tr.Len() != capacity {
		t.Fatalf("Len() = %d, want full ring %d", tr.Len(), capacity)
	}
	if want := uint64(3*n) - capacity; tr.Dropped() != want {
		t.Fatalf("Dropped() = %d, want %d", tr.Dropped(), want)
	}
	recs := tr.Records()
	if len(recs) != capacity {
		t.Fatalf("Records() = %d, want %d", len(recs), capacity)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Time < recs[i-1].Time {
			t.Fatalf("records out of order after wrap: t[%d]=%v < t[%d]=%v", i, recs[i].Time, i-1, recs[i-1].Time)
		}
	}
	// The survivors must be the newest events, i.e. the tail of the run.
	if recs[len(recs)-1].Event != iosched.ProbeComplete {
		t.Fatalf("last surviving record is %v, want the final completion", recs[len(recs)-1].Event)
	}
}

func TestTracerDisabledRecordsNothing(t *testing.T) {
	tr := trace.New(64)
	tr.SetEnabled(false)
	runTraced(tr, 5)
	if tr.Total() != 0 {
		t.Fatalf("disabled tracer recorded %d events", tr.Total())
	}
	tr.SetEnabled(true)
	runTraced(tr, 1)
	if tr.Total() != 3 {
		t.Fatalf("re-enabled tracer recorded %d events, want 3", tr.Total())
	}
}

func TestTracerReset(t *testing.T) {
	tr := trace.New(64)
	runTraced(tr, 4)
	tr.Reset()
	if tr.Len() != 0 || tr.Total() != 0 {
		t.Fatalf("after Reset: Len=%d Total=%d, want 0,0", tr.Len(), tr.Total())
	}
	if tr.Capacity() != 64 {
		t.Fatalf("Reset changed capacity to %d", tr.Capacity())
	}
}

func TestJSONLDeterministicAndParseable(t *testing.T) {
	export := func() string {
		tr := trace.New(1 << 10)
		runTraced(tr, 10)
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := export(), export()
	if a != b {
		t.Fatal("identical runs exported different JSONL")
	}
	lines := strings.Split(strings.TrimRight(a, "\n"), "\n")
	if len(lines) != 30 {
		t.Fatalf("JSONL has %d lines, want 30", len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("unparseable JSONL line %q: %v", line, err)
		}
		for _, field := range []string{"t", "node", "dev", "ev", "app", "class", "seq"} {
			if _, ok := m[field]; !ok {
				t.Fatalf("JSONL line missing %q: %s", field, line)
			}
		}
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	tr := trace.New(1 << 10)
	runTraced(tr, 10)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	// 2 thread-name metadata events + 2 slices per completed request.
	if len(doc.TraceEvents) != 2+2*10 {
		t.Fatalf("Chrome trace has %d events, want 22", len(doc.TraceEvents))
	}
}

func TestMultiProbeFansOut(t *testing.T) {
	t1, t2 := trace.New(256), trace.New(256)
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := iosched.NewSFQD(eng, dev, 2)
	s.SetProbe(iosched.MultiProbe(t1.Probe(0, trace.DevHDFS), nil, t2.Probe(0, trace.DevLocal)))
	for i := 0; i < 6; i++ {
		s.Submit(&iosched.Request{App: "a", Shares: iosched.FixedWeight(1), Class: iosched.PersistentRead, Size: 1e6})
	}
	eng.Run()
	if t1.Total() != 18 || t2.Total() != 18 {
		t.Fatalf("fan-out totals %d/%d, want 18/18", t1.Total(), t2.Total())
	}
	if trace.DeviceKindOf("local") != trace.DevLocal || trace.DeviceKindOf("nic") != trace.DevNIC {
		t.Fatal("DeviceKindOf label mapping broken")
	}
}
