package trace_test

import (
	"bytes"
	"testing"

	"ibis/internal/iosched"
	"ibis/internal/sim"
	"ibis/internal/storage"
	"ibis/internal/trace"
)

// runShardTraced drives one shard's scheduler on its own engine with
// the sharded tracer's probe for that shard attached, offsetting
// arrivals so shards interleave in time.
func runShardTraced(sh *trace.Sharded, shard, nReqs int, offset float64) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := iosched.NewSFQD(eng, dev, 2)
	s.SetProbe(sh.Probe(shard, shard, trace.DevHDFS))
	for i := 0; i < nReqs; i++ {
		i := i
		eng.Schedule(offset+float64(i)*0.001, func() {
			s.Submit(&iosched.Request{
				App: "alpha", Shares: iosched.FixedWeight(1), Class: iosched.PersistentRead, Size: 1e6,
			})
		})
	}
	eng.Run()
}

// TestShardedMergeDeterministicOrder pins the merge contract: records
// from independently-filled per-shard rings come out in (time, shard,
// ring order) order, the export surface works on the merged tracer,
// and repeated merges are byte-identical.
func TestShardedMergeDeterministicOrder(t *testing.T) {
	const n = 16
	sh := trace.NewSharded(3, 1<<10)
	// Interleaved offsets so the merge actually has to reorder across
	// shards rather than concatenate.
	runShardTraced(sh, 2, n, 0.0002)
	runShardTraced(sh, 0, n, 0.0000)
	runShardTraced(sh, 1, n, 0.0001)

	if got := sh.Total(); got != 3*3*n {
		t.Fatalf("Total() = %d, want %d", got, 3*3*n)
	}
	m := sh.Merge()
	recs := m.Records()
	if len(recs) != 3*3*n {
		t.Fatalf("merged %d records, want %d", len(recs), 3*3*n)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Time < recs[i-1].Time {
			t.Fatalf("merged records out of time order at %d: %v after %v", i, recs[i].Time, recs[i-1].Time)
		}
	}
	var a, b bytes.Buffer
	if err := m.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := sh.Merge().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two merges of the same rings produced different JSONL")
	}
	if a.Len() == 0 {
		t.Fatal("merged JSONL is empty")
	}
}
