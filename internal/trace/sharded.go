package trace

import (
	"sort"

	"ibis/internal/iosched"
)

// Sharded is a set of per-shard tracers for parallel simulation: each
// shard's schedulers record into their own ring with zero
// synchronization, and Merge assembles one Tracer deterministically
// after the run. The merge key is (event time, shard, ring order):
// per-shard rings are already in nondecreasing time order (each shard's
// engine clock is monotonic), so the merged order — and any digest
// taken over the merged trace — is a pure function of the simulated
// system, independent of how many worker goroutines executed it.
type Sharded struct {
	tracers []*Tracer
	epochs  []EpochMark
	enabled bool
}

// NewSharded creates n per-shard tracers, each with the given ring
// capacity (the same rounding as New).
func NewSharded(n, capacity int) *Sharded {
	s := &Sharded{enabled: true}
	for i := 0; i < n; i++ {
		s.tracers = append(s.tracers, New(capacity))
	}
	return s
}

// Shard returns shard i's tracer. Probes built from it must only be
// installed on schedulers owned by that shard.
func (s *Sharded) Shard(i int) *Tracer { return s.tracers[i] }

// Probe returns a probe recording into shard's tracer, labeled with the
// node index and device kind.
func (s *Sharded) Probe(shard, node int, dev DeviceKind) iosched.Probe {
	return s.tracers[shard].Probe(node, dev)
}

// SetEnabled switches recording on or off on every shard.
func (s *Sharded) SetEnabled(on bool) {
	s.enabled = on
	for _, t := range s.tracers {
		t.SetEnabled(on)
	}
}

// NoteEpoch records a share-tree transition mark. Transitions are
// control-plane events that occur outside parallel windows (sharded
// runs forbid mid-run tree mutation), so a single list needs no
// synchronization.
func (s *Sharded) NoteEpoch(time float64, epoch uint64, detail string) {
	if !s.enabled {
		return
	}
	s.epochs = append(s.epochs, EpochMark{Time: time, Epoch: epoch, Detail: detail})
}

// Total sums the records ever written across shards.
func (s *Sharded) Total() uint64 {
	var n uint64
	for _, t := range s.tracers {
		n += t.Total()
	}
	return n
}

// Merge assembles the per-shard rings into one Tracer in deterministic
// (time, shard, ring order) order. Call it after the run; the returned
// Tracer supports the full export surface (JSONL, Chrome trace,
// Requests). Records a shard's ring dropped are simply absent, exactly
// as with a single ring of the same per-shard capacity.
func (s *Sharded) Merge() *Tracer {
	type tagged struct {
		r     Record
		shard int
		idx   int
	}
	var all []tagged
	for si, t := range s.tracers {
		for i, r := range t.Records() {
			all = append(all, tagged{r: r, shard: si, idx: i})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if a.r.Time != b.r.Time {
			return a.r.Time < b.r.Time
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.idx < b.idx
	})
	m := New(ceilPow2(len(all)))
	for _, e := range all {
		m.absorb(e.r)
	}
	m.epochs = append([]EpochMark(nil), s.epochs...)
	return m
}
