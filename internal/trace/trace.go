// Package trace provides request-level lifecycle tracing for the IBIS
// simulator: every I/O request's arrival, dispatch, and completion on
// every interposed scheduler is recorded into a fixed-capacity ring
// buffer, annotated with the application, I/O class, node, device, SFQ
// tags, virtual time, queue depth, and dispatch depth in force.
//
// The tracer is built for production-style overhead discipline:
//
//   - recording a lifecycle event is a handful of stores into a
//     pre-allocated ring slot — no allocation per event;
//   - a disabled tracer costs one branch per event;
//   - with no probe installed at all, schedulers pay a single nil check.
//
// Two export formats are supported: JSONL (one record per line, fixed
// field order, deterministic formatting — byte-identical across runs
// with the same Config.Seed) and the Chrome trace-event format
// (chrome://tracing, Perfetto), where each request renders as a "queue"
// slice (arrival → dispatch) followed by a "device" slice (dispatch →
// completion).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ibis/internal/iosched"
)

// DeviceKind identifies which interposed scheduler of a node produced a
// record.
type DeviceKind uint8

const (
	// DevHDFS is the persistent-data device's scheduler.
	DevHDFS DeviceKind = iota
	// DevLocal is the intermediate-data device's scheduler.
	DevLocal
	// DevNIC is the egress NIC scheduler (OpenFlow-style extension).
	DevNIC
)

// String names the device.
func (d DeviceKind) String() string {
	switch d {
	case DevHDFS:
		return "hdfs"
	case DevLocal:
		return "local"
	case DevNIC:
		return "nic"
	default:
		return "dev(?)"
	}
}

// DeviceKindOf maps the cluster package's device labels ("hdfs",
// "local", "nic") to a DeviceKind.
func DeviceKindOf(label string) DeviceKind {
	switch label {
	case "local":
		return DevLocal
	case "nic":
		return DevNIC
	default:
		return DevHDFS
	}
}

// Record is one traced lifecycle event. Records are fixed-size and live
// in the ring buffer; all fields are plain values so a record write
// never allocates.
type Record struct {
	// Time is the virtual time of the event (seconds).
	Time float64
	// Node is the datanode index.
	Node int32
	// Dev is the scheduler the event occurred on.
	Dev DeviceKind
	// Event is the lifecycle point.
	Event iosched.ProbeEvent
	// App, Class, Seq, Size, Weight describe the request; Seq is unique
	// per (Node, Dev, Class direction) stream. Weight is the effective
	// weight resolved at tag time, and Epoch the share-tree version it
	// was resolved against (0 for fixed weight sources).
	App    iosched.AppID
	Class  iosched.Class
	Seq    uint64
	Size   float64
	Weight float64
	Epoch  uint64
	// Cost is the normalized device cost assigned at submission.
	Cost float64
	// StartTag, FinishTag, VTime are the SFQ tags and scheduler virtual
	// time (zero for untagged schedulers).
	StartTag  float64
	FinishTag float64
	VTime     float64
	// Queued, InFlight, Depth snapshot the scheduler after the event
	// (Depth 0 = unbounded).
	Queued   int32
	InFlight int32
	Depth    int32
	// Latency is the request's total latency (ProbeComplete only).
	Latency float64
}

// DefaultCapacity is the ring size used when New is given a
// non-positive capacity (64Ki records ≈ a few MB).
const DefaultCapacity = 1 << 16

// rec is the in-ring record layout: Record with the app string replaced
// by an intern-table index. No field carries a pointer, so a ring write
// is barrier-free and the garbage collector never scans the buffer —
// the two costs that dominated tracing overhead with the exported
// layout in the ring.
type rec struct {
	time      float64
	seq       uint64
	size      float64
	weight    float64
	epoch     uint64
	cost      float64
	startTag  float64
	finishTag float64
	vtime     float64
	latency   float64
	node      int32
	queued    int32
	inFlight  int32
	depth     int32
	app       uint32
	dev       DeviceKind
	event     iosched.ProbeEvent
	class     iosched.Class
}

// Tracer is a ring-buffered lifecycle recorder. It is not safe for
// concurrent use; each Tracer belongs to one simulation engine (in
// sharded runs, one per shard — see Sharded).
type Tracer struct {
	buf     []rec
	mask    uint64 // len(buf)-1; the capacity is a power of two
	next    uint64 // total records ever written
	epochs  []EpochMark
	enabled bool

	// App-string interning: apps holds each distinct AppID once, ring
	// records store the index. A one-entry cache catches the common
	// case (runs of records from the same app) without a map lookup.
	apps     []iosched.AppID
	appIdx   map[iosched.AppID]uint32
	lastApp  iosched.AppID
	lastIdx  uint32
	haveLast bool
}

// New creates a tracer with the given ring capacity (non-positive =
// DefaultCapacity; other values round up to the next power of two so
// the ring index is a mask, not a division). The ring is allocated up
// front so recording never allocates; the tracer starts enabled.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	capacity = ceilPow2(capacity)
	return &Tracer{
		buf:     make([]rec, capacity),
		mask:    uint64(capacity - 1),
		enabled: true,
		appIdx:  make(map[iosched.AppID]uint32),
	}
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// intern returns the stable index of app in the tracer's app table.
func (t *Tracer) intern(app iosched.AppID) uint32 {
	if t.haveLast && app == t.lastApp {
		return t.lastIdx
	}
	idx, ok := t.appIdx[app]
	if !ok {
		idx = uint32(len(t.apps))
		t.apps = append(t.apps, app)
		t.appIdx[app] = idx
	}
	t.lastApp, t.lastIdx, t.haveLast = app, idx, true
	return idx
}

// export materializes one ring record in the public layout.
func (t *Tracer) export(r *rec) Record {
	return Record{
		Time: r.time, Node: r.node, Dev: r.dev, Event: r.event,
		App: t.apps[r.app], Class: r.class, Seq: r.seq, Size: r.size,
		Weight: r.weight, Epoch: r.epoch, Cost: r.cost,
		StartTag: r.startTag, FinishTag: r.finishTag, VTime: r.vtime,
		Queued: r.queued, InFlight: r.inFlight, Depth: r.depth,
		Latency: r.latency,
	}
}

// absorb writes an exported record back into the ring (deterministic
// merge of per-shard tracers).
func (t *Tracer) absorb(r Record) {
	s := &t.buf[t.next&t.mask]
	t.next++
	s.time = r.Time
	s.node = r.Node
	s.dev = r.Dev
	s.event = r.Event
	s.app = t.intern(r.App)
	s.class = r.Class
	s.seq = r.Seq
	s.size = r.Size
	s.weight = r.Weight
	s.epoch = r.Epoch
	s.cost = r.Cost
	s.startTag = r.StartTag
	s.finishTag = r.FinishTag
	s.vtime = r.VTime
	s.queued = r.Queued
	s.inFlight = r.InFlight
	s.depth = r.Depth
	s.latency = r.Latency
}

// SetEnabled switches recording on or off; records already captured are
// kept.
func (t *Tracer) SetEnabled(on bool) { t.enabled = on }

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t.enabled }

// Capacity returns the ring size.
func (t *Tracer) Capacity() int { return len(t.buf) }

// Total returns how many records were ever written (including ones the
// ring has since overwritten).
func (t *Tracer) Total() uint64 { return t.next }

// Len returns how many records are currently held.
func (t *Tracer) Len() int {
	if t.next < uint64(len(t.buf)) {
		return int(t.next)
	}
	return len(t.buf)
}

// Dropped returns how many records were overwritten by ring wrap.
func (t *Tracer) Dropped() uint64 {
	if t.next <= uint64(len(t.buf)) {
		return 0
	}
	return t.next - uint64(len(t.buf))
}

// Reset discards all records and epoch marks (capacity and the app
// intern table are kept).
func (t *Tracer) Reset() { t.next = 0; t.epochs = nil }

// Records returns the held records, oldest first.
func (t *Tracer) Records() []Record {
	n := t.Len()
	out := make([]Record, n)
	if t.next <= uint64(len(t.buf)) {
		for i := 0; i < n; i++ {
			out[i] = t.export(&t.buf[i])
		}
		return out
	}
	start := int(t.next & t.mask)
	for i := 0; i < n; i++ {
		out[i] = t.export(&t.buf[(start+i)&int(t.mask)])
	}
	return out
}

// Probe returns an iosched.Probe that records this scheduler's events
// labeled with the node index and device kind. One probe per scheduler;
// all share the tracer's single ring.
func (t *Tracer) Probe(node int, dev DeviceKind) iosched.Probe {
	return probe{t: t, node: int32(node), dev: dev}
}

type probe struct {
	t    *Tracer
	node int32
	dev  DeviceKind
}

// Observe implements iosched.Probe: one barrier-free ring write, no
// allocation, no division (the ring index is a mask).
func (p probe) Observe(req *iosched.Request, st iosched.ProbeState) {
	t := p.t
	if !t.enabled {
		return
	}
	r := &t.buf[t.next&t.mask]
	t.next++
	r.time = st.Time
	r.node = p.node
	r.dev = p.dev
	r.event = st.Event
	r.app = t.intern(req.App)
	r.class = req.Class
	r.seq = req.Seq()
	r.size = req.Size
	r.weight = req.Weight()
	r.epoch = req.ShareEpoch()
	r.cost = req.Cost()
	r.startTag = req.StartTag()
	r.finishTag = req.FinishTag()
	r.vtime = st.VTime
	r.queued = int32(st.Queued)
	r.inFlight = int32(st.InFlight)
	r.depth = int32(st.Depth)
	r.latency = st.Latency
}

// EpochMark records one share-tree transition observed while tracing,
// so an exported trace can be aligned with the control-plane timeline.
type EpochMark struct {
	// Time is the virtual time of the transition.
	Time float64
	// Epoch is the tree version after the transition.
	Epoch uint64
	// Detail describes the mutation ("app-weight app=a 2→6", ...).
	Detail string
}

// NoteEpoch records a share-tree transition mark (wire it to
// shares.Tree.OnChange). Marks are unbounded but transitions are
// control-plane events — a handful per run, not per request.
func (t *Tracer) NoteEpoch(time float64, epoch uint64, detail string) {
	if !t.enabled {
		return
	}
	t.epochs = append(t.epochs, EpochMark{Time: time, Epoch: epoch, Detail: detail})
}

// Epochs returns the recorded share-tree transition marks, in order.
func (t *Tracer) Epochs() []EpochMark {
	out := make([]EpochMark, len(t.epochs))
	copy(out, t.epochs)
	return out
}

// ftoa formats a float compactly and deterministically.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteJSONL writes every held record as one JSON object per line, in
// capture order with a fixed field order, so equal traces produce
// byte-identical output.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	var b strings.Builder
	for _, r := range t.Records() {
		b.Reset()
		b.WriteString(`{"t":`)
		b.WriteString(ftoa(r.Time))
		b.WriteString(`,"node":`)
		b.WriteString(strconv.Itoa(int(r.Node)))
		b.WriteString(`,"dev":"`)
		b.WriteString(r.Dev.String())
		b.WriteString(`","ev":"`)
		b.WriteString(r.Event.String())
		b.WriteString(`","app":`)
		b.WriteString(strconv.Quote(string(r.App)))
		b.WriteString(`,"class":"`)
		b.WriteString(r.Class.String())
		b.WriteString(`","seq":`)
		b.WriteString(strconv.FormatUint(r.Seq, 10))
		b.WriteString(`,"size":`)
		b.WriteString(ftoa(r.Size))
		b.WriteString(`,"cost":`)
		b.WriteString(ftoa(r.Cost))
		b.WriteString(`,"w":`)
		b.WriteString(ftoa(r.Weight))
		b.WriteString(`,"epoch":`)
		b.WriteString(strconv.FormatUint(r.Epoch, 10))
		b.WriteString(`,"stag":`)
		b.WriteString(ftoa(r.StartTag))
		b.WriteString(`,"ftag":`)
		b.WriteString(ftoa(r.FinishTag))
		b.WriteString(`,"vt":`)
		b.WriteString(ftoa(r.VTime))
		b.WriteString(`,"q":`)
		b.WriteString(strconv.Itoa(int(r.Queued)))
		b.WriteString(`,"inflight":`)
		b.WriteString(strconv.Itoa(int(r.InFlight)))
		b.WriteString(`,"depth":`)
		b.WriteString(strconv.Itoa(int(r.Depth)))
		b.WriteString(`,"lat":`)
		b.WriteString(ftoa(r.Latency))
		b.WriteString("}\n")
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// RequestTrace is one request's assembled lifecycle. Phase times are -1
// when the corresponding event fell outside the ring (overwritten or
// not yet occurred).
type RequestTrace struct {
	Node   int32
	Dev    DeviceKind
	App    iosched.AppID
	Class  iosched.Class
	Seq    uint64
	Size   float64
	Weight float64
	Cost   float64
	// StartTag/FinishTag are the SFQ tags (zero for untagged paths).
	StartTag  float64
	FinishTag float64
	// Arrive, Dispatch, Complete are the phase times (-1 = unobserved).
	Arrive   float64
	Dispatch float64
	Complete float64
	// Latency is the total latency reported at completion.
	Latency float64
}

// QueueDelay returns dispatch − arrival, or -1 if either is unobserved.
func (r RequestTrace) QueueDelay() float64 {
	if r.Arrive < 0 || r.Dispatch < 0 {
		return -1
	}
	return r.Dispatch - r.Arrive
}

// ServiceTime returns complete − dispatch, or -1 if either is
// unobserved.
func (r RequestTrace) ServiceTime() float64 {
	if r.Dispatch < 0 || r.Complete < 0 {
		return -1
	}
	return r.Complete - r.Dispatch
}

type reqKey struct {
	node  int32
	dev   DeviceKind
	class iosched.Class
	app   iosched.AppID
	seq   uint64
}

// Requests groups the held records into per-request lifecycles, ordered
// by first-observed event time (ties broken by node, device, sequence).
func (t *Tracer) Requests() []RequestTrace {
	idx := make(map[reqKey]int)
	var out []RequestTrace
	for _, r := range t.Records() {
		k := reqKey{r.Node, r.Dev, r.Class, r.App, r.Seq}
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, RequestTrace{
				Node: r.Node, Dev: r.Dev, App: r.App, Class: r.Class,
				Seq: r.Seq, Size: r.Size, Weight: r.Weight,
				Arrive: -1, Dispatch: -1, Complete: -1, Latency: -1,
			})
		}
		rt := &out[i]
		if r.Cost != 0 {
			rt.Cost = r.Cost
		}
		if r.StartTag != 0 {
			rt.StartTag = r.StartTag
		}
		if r.FinishTag != 0 {
			rt.FinishTag = r.FinishTag
		}
		switch r.Event {
		case iosched.ProbeArrive:
			rt.Arrive = r.Time
		case iosched.ProbeDispatch:
			rt.Dispatch = r.Time
		case iosched.ProbeComplete:
			rt.Complete = r.Time
			rt.Latency = r.Latency
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		ti, tj := firstTime(out[i]), firstTime(out[j])
		if ti != tj {
			return ti < tj
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		if out[i].Dev != out[j].Dev {
			return out[i].Dev < out[j].Dev
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

func firstTime(r RequestTrace) float64 {
	for _, t := range []float64{r.Arrive, r.Dispatch, r.Complete} {
		if t >= 0 {
			return t
		}
	}
	return -1
}

// WriteChromeTrace writes the held records in the Chrome trace-event
// JSON format (load in chrome://tracing or Perfetto): pid = node,
// tid = application (assigned in first-appearance order), one "queue"
// slice from arrival to dispatch and one "device" slice from dispatch
// to completion per request. Virtual seconds map to microseconds.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	reqs := t.Requests()
	tids := make(map[iosched.AppID]int)
	var meta []string
	tidOf := func(app iosched.AppID) int {
		if id, ok := tids[app]; ok {
			return id
		}
		id := len(tids) + 1
		tids[app] = id
		meta = append(meta, fmt.Sprintf(
			`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":%s}}`,
			id, strconv.Quote(string(app))))
		return id
	}
	var events []string
	emit := func(name string, r RequestTrace, from, to float64) {
		if from < 0 || to < 0 {
			return
		}
		events = append(events, fmt.Sprintf(
			`{"name":%s,"cat":"%s","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{"app":%s,"class":"%s","seq":%d,"size":%s,"weight":%s,"stag":%s,"ftag":%s}}`,
			strconv.Quote(name), r.Dev.String(),
			ftoa(from*1e6), ftoa((to-from)*1e6),
			r.Node, tidOf(r.App), strconv.Quote(string(r.App)), r.Class.String(), r.Seq,
			ftoa(r.Size), ftoa(r.Weight), ftoa(r.StartTag), ftoa(r.FinishTag)))
	}
	for _, r := range reqs {
		emit("queue", r, r.Arrive, r.Dispatch)
		emit("device", r, r.Dispatch, r.Complete)
	}
	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	all := append(meta, events...)
	for i, e := range all {
		sep := ","
		if i == len(all)-1 {
			sep = ""
		}
		if _, err := io.WriteString(w, "\n"+e+sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}
