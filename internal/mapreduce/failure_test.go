package mapreduce

import (
	"testing"

	"ibis/internal/cluster"
)

// failureHarness builds a 4-node cluster with replication 2 so one
// node failure is always survivable.
func failureSpec() JobSpec {
	return JobSpec{
		Name:              "victim",
		Weight:            1,
		InputBytes:        256e6,
		MapOutputBytes:    256e6,
		NumReduces:        2,
		OutputBytes:       64e6,
		MapCPUSecPerMB:    0.01,
		ReduceCPUSecPerMB: 0.01,
	}
}

func TestJobSurvivesNodeFailureDuringMapPhase(t *testing.T) {
	h := newHarness(t, cluster.Native, 4)
	job, err := h.rt.Submit(failureSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	h.eng.Schedule(1, func() { h.rt.FailNode(2) })
	h.eng.Run()
	if !job.Done() {
		t.Fatalf("job did not survive the failure: maps %d/%d reduces %d/%d",
			job.MapsDone(), job.NumMaps(), job.ReducesDone(), job.NumReduces())
	}
	if h.rt.FailedTasks() == 0 && h.rt.RerunMaps() == 0 {
		t.Log("failure hit an idle moment (no task was on node 2); still a valid survival test")
	}
	if h.cl.Nodes[2].UsedCores != 0 {
		t.Fatalf("dead node still holds %d cores", h.cl.Nodes[2].UsedCores)
	}
}

func TestJobSurvivesNodeFailureDuringShuffle(t *testing.T) {
	h := newHarness(t, cluster.Native, 4)
	spec := failureSpec()
	spec.InputBytes = 512e6
	spec.MapOutputBytes = 512e6
	job, err := h.rt.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Fail once the job is deep into execution (maps completing,
	// reduces shuffling).
	var arm func()
	arm = func() {
		if job.MapsDone() >= job.NumMaps()/2 {
			h.rt.FailNode(1)
			return
		}
		h.eng.Schedule(0.2, arm)
	}
	h.eng.Schedule(0.2, arm)
	h.eng.Run()
	if !job.Done() {
		t.Fatalf("job did not survive mid-shuffle failure: maps %d/%d reduces %d/%d",
			job.MapsDone(), job.NumMaps(), job.ReducesDone(), job.NumReduces())
	}
	// Some completed map outputs lived on node 1; they must have been
	// re-executed.
	if h.rt.RerunMaps() == 0 {
		t.Error("no completed maps were re-run despite lost outputs")
	}
	for _, m := range job.maps {
		if m.node != nil && m.node.Dead {
			t.Error("a map's final attempt reports a dead node")
		}
	}
}

func TestFailNodeIdempotent(t *testing.T) {
	h := newHarness(t, cluster.Native, 2)
	job, _ := h.rt.Submit(failureSpec(), 0)
	h.eng.Schedule(0.5, func() {
		h.rt.FailNode(1)
		h.rt.FailNode(1) // no-op
	})
	h.eng.Run()
	if !job.Done() {
		t.Fatal("job did not finish")
	}
}

func TestDeadNodeReceivesNoNewTasks(t *testing.T) {
	h := newHarness(t, cluster.Native, 3)
	spec := failureSpec()
	spec.InputBytes = 512e6
	spec.MapOutputBytes = 0
	spec.NumReduces = 0
	spec.OutputBytes = 0
	job, _ := h.rt.Submit(spec, 0)
	h.eng.Schedule(0.5, func() { h.rt.FailNode(0) })
	violated := false
	var probe func()
	probe = func() {
		if h.eng.Now() > 0.6 && h.cl.Nodes[0].UsedCores > 0 {
			violated = true
		}
		if !job.Done() {
			h.eng.Schedule(0.1, probe)
		}
	}
	h.eng.Schedule(0.7, probe)
	h.eng.Run()
	if violated {
		t.Fatal("dead node was assigned new tasks")
	}
	if !job.Done() {
		t.Fatal("job stuck after failure")
	}
	// Every map must have run on a surviving node.
	for _, m := range job.maps {
		if m.node == nil || m.node.Index == 0 {
			t.Fatalf("map %d attributed to the dead node", m.index)
		}
	}
}

func TestReduceRestartRefetchesEverything(t *testing.T) {
	h := newHarness(t, cluster.Native, 4)
	spec := failureSpec()
	job, _ := h.rt.Submit(spec, 0)
	// Fail whichever node hosts reduce 0 once it is running.
	var arm func()
	arm = func() {
		for _, r := range job.reduces {
			if r.state == taskRunning {
				h.rt.FailNode(r.node.Index)
				return
			}
		}
		h.eng.Schedule(0.1, arm)
	}
	h.eng.Schedule(0.1, arm)
	h.eng.Run()
	if !job.Done() {
		t.Fatal("job did not finish after reduce-hosting node failed")
	}
	restarted := false
	for _, r := range job.reduces {
		if r.attempt > 0 {
			restarted = true
			if r.node == nil || r.node.Dead {
				t.Fatal("restarted reduce ended on a dead node")
			}
		}
	}
	if !restarted {
		t.Skip("failure landed before any reduce was placed; covered elsewhere")
	}
}

func TestGeneratorJobSurvivesFailure(t *testing.T) {
	h := newHarness(t, cluster.Native, 3)
	spec := JobSpec{
		Name: "gen", Weight: 1,
		NumMaps: 12, DirectOutputBytes: 240e6, MapCPUSecPerMB: 0.02,
	}
	job, _ := h.rt.Submit(spec, 0)
	h.eng.Schedule(0.5, func() { h.rt.FailNode(2) })
	h.eng.Run()
	if !job.Done() {
		t.Fatal("generator job did not survive")
	}
}

func TestTwoFailuresEitherSurviveOrFailGracefully(t *testing.T) {
	// With replication 2 on 4 nodes, two failures may lose a block:
	// the job must then fail *gracefully* (Failed state), never hang
	// or panic.
	h := newHarness(t, cluster.Native, 4)
	spec := failureSpec()
	spec.InputBytes = 512e6
	spec.MapOutputBytes = 512e6
	job, _ := h.rt.Submit(spec, 0)
	h.eng.Schedule(2, func() { h.rt.FailNode(0) })
	h.eng.Schedule(4, func() { h.rt.FailNode(1) })
	h.eng.Run()
	if !job.Done() && !job.Failed() {
		t.Fatalf("job neither completed nor failed: %v (maps %d/%d)",
			job.State(), job.MapsDone(), job.NumMaps())
	}
	if h.rt.FailedTasks()+h.rt.RerunMaps() == 0 {
		t.Error("two failures mid-run left no trace in the counters")
	}
}

func TestDataLossFailsJobGracefully(t *testing.T) {
	// Kill every node that holds replicas of the input: the job must
	// report Failed.
	h := newHarness(t, cluster.Native, 4)
	spec := failureSpec()
	spec.InputBytes = 512e6
	job, _ := h.rt.Submit(spec, 0)
	h.eng.Schedule(1, func() {
		h.rt.FailNode(0)
		h.rt.FailNode(1)
		h.rt.FailNode(2)
	})
	h.eng.Run()
	// With 3 of 4 nodes dead and replication 2, some block must have
	// lost both replicas (replicas are spread over 4 nodes).
	if !job.Failed() {
		t.Fatalf("job state = %v, want failed after losing 3/4 nodes", job.State())
	}
	if job.State().String() != "failed" {
		t.Fatalf("state string = %q", job.State().String())
	}
	if job.Runtime() <= 0 {
		t.Fatal("failed job should still report a runtime (submit→fail)")
	}
}
