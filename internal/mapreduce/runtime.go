package mapreduce

import (
	"fmt"
	"math"

	"ibis/internal/cluster"
	"ibis/internal/dfs"
	"ibis/internal/iosched"
	"ibis/internal/sim"
)

// Config tunes the execution engine.
type Config struct {
	// ChunkBytes is the I/O granularity tasks use when streaming data
	// (Hadoop's io.file.buffer / transfer chunking). Default 2 MB.
	ChunkBytes float64
	// SlowstartFraction is the fraction of maps that must finish before
	// reduces become schedulable (mapreduce.job.reduce.slowstart).
	// Default 0.05.
	SlowstartFraction float64
	// ShuffleParallelism is the number of concurrent fetch streams per
	// reduce task (mapreduce.reduce.shuffle.parallelcopies). Default 4.
	ShuffleParallelism int
	// WriteAheadChunks is the write-behind window: how many output
	// chunks a task keeps in flight concurrently. HDFS clients buffer
	// and stream writes ahead of the application, which is exactly why
	// an aggressive writer floods an uncontrolled datanode queue
	// ("TeraGen's I/Os are sent to storage as soon as they come").
	// Default 8 (≈64 MB in flight per stream at the 8 MB chunk size).
	WriteAheadChunks int
	// ShuffleBufferBytes is the reduce-side in-memory shuffle buffer:
	// a reduce whose expected shuffle partition fits entirely within it
	// merges in memory (no spill write, no merge read-back), as Hadoop
	// does. Default 2 GB (25% of the 8 GB reduce heap).
	ShuffleBufferBytes float64
	// DisablePreemption turns off Fair Scheduler preemption. Table 1
	// enables it with a 5 s timeout, so it is on by default.
	DisablePreemption bool
	// PreemptionTimeout is how long a job must sit below its fair share
	// before over-share jobs lose tasks. Default 5 s.
	PreemptionTimeout float64
}

func (c *Config) defaults() {
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 2e6
	}
	if c.SlowstartFraction <= 0 {
		c.SlowstartFraction = 0.05
	}
	if c.ShuffleParallelism <= 0 {
		c.ShuffleParallelism = 4
	}
	if c.WriteAheadChunks <= 0 {
		c.WriteAheadChunks = 8
	}
	if c.ShuffleBufferBytes <= 0 {
		c.ShuffleBufferBytes = 2e9
	}
	if c.PreemptionTimeout <= 0 {
		c.PreemptionTimeout = 5
	}
}

// Runtime executes MapReduce jobs on a simulated cluster.
type Runtime struct {
	eng     *sim.Engine
	cluster *cluster.Cluster
	nn      *dfs.Namenode
	cfg     Config
	fair    *fairScheduler
	jobs    []*Job
	nextID  int
	onDone  []func(*Job)
	pools   map[string]*pool

	// Sharded decomposition (see sharded.go): the coordinator shard
	// and the metadata shards hosting the partitioned namenode. Both
	// nil/empty in single-engine mode, where the legacy inline paths
	// run unchanged.
	coordShard *sim.Shard
	metaShards []*sim.Shard

	// Failure-injection counters (see failure.go).
	failedTasks uint64
	rerunMaps   uint64
}

// NewRuntime wires an execution engine onto a cluster and namenode.
func NewRuntime(eng *sim.Engine, c *cluster.Cluster, nn *dfs.Namenode, cfg Config) *Runtime {
	cfg.defaults()
	rt := &Runtime{eng: eng, cluster: c, nn: nn, cfg: cfg, pools: make(map[string]*pool)}
	if c.Fabric() != nil {
		rt.coordShard = c.CoordShard()
		rt.metaShards = c.MetaShards()
	}
	rt.fair = newFairScheduler(rt)
	if !cfg.DisablePreemption {
		rt.fair.startPreemptionMonitor()
	}
	return rt
}

// pool is one Fair Scheduler queue with aggregate resource caps.
type pool struct {
	maxCores  int
	maxMemGB  float64
	usedCores int
	usedMemGB float64
}

// DefinePool declares a Fair Scheduler pool with aggregate caps
// (0 = unlimited for that dimension). Jobs reference it by name via
// JobSpec.Pool. Redefining a pool updates its caps.
func (rt *Runtime) DefinePool(name string, maxCores int, maxMemGB float64) {
	if p, ok := rt.pools[name]; ok {
		p.maxCores = maxCores
		p.maxMemGB = maxMemGB
		return
	}
	rt.pools[name] = &pool{maxCores: maxCores, maxMemGB: maxMemGB}
}

// poolFor returns the job's pool, creating an uncapped one on first use
// so an undeclared pool name still groups jobs.
func (rt *Runtime) poolFor(j *Job) *pool {
	if j.Spec.Pool == "" {
		return nil
	}
	p, ok := rt.pools[j.Spec.Pool]
	if !ok {
		p = &pool{}
		rt.pools[j.Spec.Pool] = p
	}
	return p
}

// poolAdmits reports whether the job's pool can take one more task of
// the given memory.
func (rt *Runtime) poolAdmits(j *Job, memGB float64) bool {
	p := rt.poolFor(j)
	if p == nil {
		return true
	}
	if p.maxCores > 0 && p.usedCores+1 > p.maxCores {
		return false
	}
	if p.maxMemGB > 0 && p.usedMemGB+memGB > p.maxMemGB {
		return false
	}
	return true
}

func (rt *Runtime) poolCharge(j *Job, memGB float64) {
	if p := rt.poolFor(j); p != nil {
		p.usedCores++
		p.usedMemGB += memGB
	}
}

func (rt *Runtime) poolRelease(j *Job, memGB float64) {
	if p := rt.poolFor(j); p != nil {
		p.usedCores--
		p.usedMemGB -= memGB
	}
}

// Engine returns the simulation engine driving this runtime.
func (rt *Runtime) Engine() *sim.Engine { return rt.eng }

// Cluster returns the underlying cluster.
func (rt *Runtime) Cluster() *cluster.Cluster { return rt.cluster }

// Namenode returns the DFS namenode.
func (rt *Runtime) Namenode() *dfs.Namenode { return rt.nn }

// OnJobDone registers a callback invoked whenever any job completes.
func (rt *Runtime) OnJobDone(fn func(*Job)) { rt.onDone = append(rt.onDone, fn) }

// Jobs returns all submitted jobs in submission order.
func (rt *Runtime) Jobs() []*Job { return rt.jobs }

// Submit schedules a job for execution after delay seconds of virtual
// time. Input files are created in the DFS at submission so map
// locality is well defined.
func (rt *Runtime) Submit(spec JobSpec, delay float64) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	eff := spec.withDefaults()
	app := eff.App
	if app == "" {
		app = iosched.AppID(fmt.Sprintf("%s-%d", eff.Name, rt.nextID))
	}
	seq := rt.nextID
	rt.nextID++

	job := &Job{rt: rt, Spec: eff, App: app, seq: seq, state: Pending}
	// Attribute the job in the cluster's share tree: this is where the
	// submission-time weight and tenant membership enter the runtime
	// control plane. A reserved tenant name is an input error, surfaced
	// here like any other spec problem.
	if err := rt.cluster.Shares().Bind(app, eff.Tenant, eff.Weight); err != nil {
		return nil, err
	}
	// A reused AppID (consecutive Hive stages, resubmitted jobs) may
	// have been retired at the broker when its previous job finished.
	rt.cluster.ReviveApp(app)
	rt.jobs = append(rt.jobs, job)
	rt.eng.Schedule(delay, func() { rt.start(job) })
	return job, nil
}

// start materializes the job's input file and task set and hands the
// tasks to the fair scheduler. In sharded mode with a metadata plane,
// input placement runs asynchronously on the metadata shards (one
// round trip of namenode RPC latency before the first wave launches).
func (rt *Runtime) start(job *Job) {
	job.SubmitTime = rt.eng.Now()
	spec := job.Spec

	if spec.InputBytes > 0 {
		name := fmt.Sprintf("%s-%d/input", spec.Name, job.seq)
		if rt.sharded() && len(rt.metaShards) > 0 && rt.nn.Partitions() > 1 {
			rt.createAsync(name, spec.InputBytes, func(f *dfs.File) {
				rt.materialize(job, f)
			})
			return
		}
		f, err := rt.nn.Create(name, spec.InputBytes)
		if err != nil {
			panic(err) // job sequence numbers are unique; collision is a bug
		}
		rt.materialize(job, f)
		return
	}
	rt.materialize(job, nil)
}

// materialize builds the job's task set from its input file (nil for
// generator jobs) and hands the tasks to the fair scheduler.
func (rt *Runtime) materialize(job *Job, f *dfs.File) {
	spec := job.Spec
	if f != nil {
		job.input = f
		for i := range f.Blocks {
			job.maps = append(job.maps, &mapTask{job: job, index: i, block: &f.Blocks[i]})
		}
		// NumMaps may demand more waves than blocks (rare); cap at
		// block count for input jobs.
	} else {
		// Generator job: synthetic splits, no input reads.
		splitOut := spec.DirectOutputBytes / float64(spec.NumMaps)
		splitInter := spec.MapOutputBytes / float64(spec.NumMaps)
		for i := 0; i < spec.NumMaps; i++ {
			job.maps = append(job.maps, &mapTask{
				job: job, index: i,
				genOutBytes:   splitOut,
				genInterBytes: splitInter,
			})
		}
	}
	for i := 0; i < spec.NumReduces; i++ {
		job.reduces = append(job.reduces, &reduceTask{job: job, index: i})
	}
	rt.fair.pump()
}

// Job is one running or completed application.
type Job struct {
	rt   *Runtime
	Spec JobSpec
	App  iosched.AppID
	seq  int

	SubmitTime  float64
	StartTime   float64
	MapDoneTime float64
	EndTime     float64

	input   *dfs.File
	maps    []*mapTask
	reduces []*reduceTask

	mapsDone    int
	reducesDone int
	usedCores   int
	started     bool
	state       State
}

// State returns the job's lifecycle phase.
func (j *Job) State() State { return j.state }

// Done reports successful completion.
func (j *Job) Done() bool { return j.state == Done }

// Failed reports unrecoverable failure (input data lost).
func (j *Job) Failed() bool { return j.state == Failed }

// finished reports that the job needs no further scheduling.
func (j *Job) finished() bool { return j.state == Done || j.state == Failed }

// fail marks the job failed. In-flight task callbacks drain; no new
// tasks are scheduled. Completion callbacks fire so waiters observe
// the terminal state.
func (j *Job) fail() {
	if j.finished() {
		return
	}
	j.state = Failed
	j.EndTime = j.rt.eng.Now()
	// Release every slot the job still holds; the killed attempts'
	// in-flight callbacks die on their attempt guards.
	for _, m := range j.maps {
		if m.state == taskRunning {
			m.preempt()
		}
	}
	for _, r := range j.reduces {
		if r.state == taskRunning {
			r.restart()
		}
	}
	for _, fn := range j.rt.onDone {
		fn(j)
	}
	j.rt.retireIfUnused(j.App)
	j.rt.fair.pump()
}

// UsedCores returns the job's currently allocated CPU slots.
func (j *Job) UsedCores() int { return j.usedCores }

// MapsDone returns the completed map count.
func (j *Job) MapsDone() int { return j.mapsDone }

// NumMaps returns the total map count.
func (j *Job) NumMaps() int { return len(j.maps) }

// NumReduces returns the reduce count.
func (j *Job) NumReduces() int { return len(j.reduces) }

// ReducesDone returns the completed reduce count.
func (j *Job) ReducesDone() int { return j.reducesDone }

// Result snapshots the job's timings.
func (j *Job) Result() Result {
	return Result{
		App:         j.App,
		Name:        j.Spec.Name,
		SubmitTime:  j.SubmitTime,
		StartTime:   j.StartTime,
		MapDoneTime: j.MapDoneTime,
		EndTime:     j.EndTime,
	}
}

// Runtime returns the job's runtime (NaN while still in flight; for a
// failed job, submit→failure).
func (j *Job) Runtime() float64 {
	if !j.finished() {
		return math.NaN()
	}
	return j.EndTime - j.SubmitTime
}

// TaskTiming reports one task's lifecycle timestamps.
type TaskTiming struct {
	// Kind is "map" or "reduce".
	Kind string
	// Index is the task ordinal within its kind.
	Index int
	// Start is when the task got its slot; End when it released it.
	Start, End float64
	// ShuffleDone (reduces only) is when the last segment arrived.
	ShuffleDone float64
}

// TaskTimings returns the lifecycle timestamps of every task, maps
// first, for performance analysis.
func (j *Job) TaskTimings() []TaskTiming {
	out := make([]TaskTiming, 0, len(j.maps)+len(j.reduces))
	for _, m := range j.maps {
		out = append(out, TaskTiming{Kind: "map", Index: m.index, Start: m.startTime, End: m.endTime})
	}
	for _, r := range j.reduces {
		out = append(out, TaskTiming{
			Kind: "reduce", Index: r.index,
			Start: r.startTime, End: r.endTime, ShuffleDone: r.shuffleDoneTime,
		})
	}
	return out
}

// coreDemand counts unfinished tasks — the cores the job could use.
func (j *Job) coreDemand() int {
	d := 0
	for _, m := range j.maps {
		if m.state != taskDone {
			d++
		}
	}
	for _, r := range j.reduces {
		if r.state != taskDone {
			d++
		}
	}
	return d
}

// reducesEligible reports whether the slowstart threshold has passed.
func (j *Job) reducesEligible() bool {
	if len(j.maps) == 0 {
		return true
	}
	need := int(math.Ceil(j.rt.cfg.SlowstartFraction * float64(len(j.maps))))
	if need < 1 {
		need = 1
	}
	return j.mapsDone >= need
}

func (j *Job) noteTaskStart() {
	if !j.started {
		j.started = true
		j.StartTime = j.rt.eng.Now()
		j.state = Running
	}
}

func (j *Job) noteMapDone(m *mapTask) {
	j.mapsDone++
	if j.mapsDone == len(j.maps) {
		j.MapDoneTime = j.rt.eng.Now()
	}
	// Feed the new map output to every reduce.
	if j.Spec.MapOutputBytes > 0 && len(j.reduces) > 0 {
		per := m.interBytes() / float64(len(j.reduces))
		for _, r := range j.reduces {
			r.addSegment(segment{srcNode: m.node, bytes: per})
		}
	}
	if j.rt.sharded() {
		// The shuffle barrier lives on the node shards: running reduces
		// learn "all maps done" by marker message, not by reading the
		// coordinator's counters.
		if j.mapsDone == len(j.maps) {
			for _, r := range j.reduces {
				if r.state == taskRunning && r.rrun != nil {
					run := r.rrun
					j.rt.toNode(run.node, func() { run.markAllMapsDone() })
				}
			}
		}
	} else {
		// Reduces already running may now be able to close their shuffle.
		for _, r := range j.reduces {
			if r.state == taskRunning {
				r.maybeFinishShuffle()
			}
		}
	}
	j.maybeFinish()
}

func (j *Job) noteReduceDone() {
	j.reducesDone++
	j.maybeFinish()
}

func (j *Job) maybeFinish() {
	if j.finished() {
		return
	}
	if j.mapsDone == len(j.maps) && j.reducesDone == len(j.reduces) {
		j.state = Done
		j.EndTime = j.rt.eng.Now()
		if len(j.reduces) == 0 {
			j.MapDoneTime = j.EndTime
		}
		for _, fn := range j.rt.onDone {
			fn(j)
		}
		j.rt.retireIfUnused(j.App)
	}
}

// retireIfUnused retires app at the broker once no unfinished job
// shares it, so stale straggler reports cannot resurrect its totals.
func (rt *Runtime) retireIfUnused(app iosched.AppID) {
	for _, other := range rt.jobs {
		if other.App == app && !other.finished() {
			return
		}
	}
	rt.cluster.RetireApp(app)
}

// submitIO issues one tagged request on a node for this job. The
// weight resolves through the cluster's share tree at tag time — the
// job only carries its identity. A rejected request (the spec was
// validated at submission, so this indicates control-plane misuse,
// e.g. the job's tree node was removed mid-run) fails the job rather
// than wedging it waiting for a completion that will never come.
func (j *Job) submitIO(n *cluster.Node, class iosched.Class, size float64, done func()) {
	err := n.SubmitIO(&iosched.Request{
		App:   j.App,
		Class: class,
		Size:  size,
		OnDone: func(float64) {
			if done != nil {
				done()
			}
		},
	})
	if err != nil {
		j.fail()
	}
}

// chunked runs fn over size bytes in engine-chunk units, sequentially:
// fn(chunkSize, next) must call next() when the chunk completes. done
// fires after the final chunk.
func (rt *Runtime) chunked(size float64, fn func(chunk float64, next func()), done func()) {
	windowedOn(rt.eng, rt.cfg.ChunkBytes, size, 1, fn, done)
}

// windowed is the pipelined generalization of chunked: up to `window`
// chunks may be in flight concurrently (write-behind). done fires when
// every chunk has completed.
func (rt *Runtime) windowed(size float64, window int, fn func(chunk float64, next func()), done func()) {
	windowedOn(rt.eng, rt.cfg.ChunkBytes, size, window, fn, done)
}

// chunkedOn is chunked against an explicit engine — the node-local
// task pipelines drive their chunk loops on the owning shard's engine.
func chunkedOn(eng *sim.Engine, chunkBytes, size float64, fn func(chunk float64, next func()), done func()) {
	windowedOn(eng, chunkBytes, size, 1, fn, done)
}

// windowedOn is windowed against an explicit engine.
func windowedOn(eng *sim.Engine, chunkBytes, size float64, window int, fn func(chunk float64, next func()), done func()) {
	if size <= 0 {
		eng.Schedule(0, done)
		return
	}
	if window < 1 {
		window = 1
	}
	remaining := size
	outstanding := 0
	var launch func()
	completeOne := func() {
		outstanding--
		if remaining > 0 {
			launch()
		} else if outstanding == 0 {
			done()
		}
	}
	launch = func() {
		if remaining <= 0 {
			return
		}
		c := chunkBytes
		if remaining < c {
			c = remaining
		}
		remaining -= c
		outstanding++
		fn(c, completeOne)
	}
	for i := 0; i < window && remaining > 0; i++ {
		launch()
	}
}

// DebugTasks renders each task's state for failure-analysis tests.
func (j *Job) DebugTasks() []string {
	var out []string
	for _, m := range j.maps {
		if m.state == taskRunning {
			node := -1
			if m.node != nil {
				node = m.node.Index
			}
			out = append(out, fmt.Sprintf("map %d running attempt=%d node=%d replicas=%v",
				m.index, m.attempt, node, m.block.Replicas))
		}
	}
	for _, r := range j.reduces {
		if r.state == taskRunning {
			out = append(out, fmt.Sprintf("reduce %d running attempt=%d fetchers=%d pending=%d segsDone=%d",
				r.index, r.attempt, r.activeFetchers, len(r.pending), r.segsDone))
		}
	}
	return out
}
