package mapreduce

import "ibis/internal/cluster"

// Node-failure injection with Hadoop's recovery semantics:
//
//   - tasks running on the failed node are killed and requeued;
//   - completed map outputs stored on the node are lost, so those maps
//     re-execute if any reduce still needs their partitions;
//   - reduces that were running on the node restart from scratch
//     (their fetched and spilled data lived there);
//   - unfetched shuffle segments pointing at the node are purged — the
//     re-executed maps will republish them;
//   - the fair scheduler stops placing tasks on the node.
//
// The failure model is node-level: in-flight device operations drain
// (no mid-request corruption), block replicas on surviving nodes keep
// the DFS readable as long as the replication factor tolerates the
// loss.

// FailNode marks the datanode dead and triggers recovery. Failing an
// already-dead node is a no-op.
func (rt *Runtime) FailNode(idx int) {
	if rt.sharded() {
		// Recovery walks and mutates task state that now lives on node
		// shards; cluster/sharded.go documents failure injection as
		// unsupported there.
		panic("mapreduce: FailNode is unsupported in sharded mode")
	}
	n := rt.cluster.Nodes[idx]
	if n.Dead {
		return
	}
	n.Dead = true
	// Disconnect the node's coordination clients: its schedulers will
	// never report again, and leaving its last service vectors at the
	// broker would delay surviving nodes' flows against a ghost.
	rt.cluster.DetachNode(idx)
	// Clear every reservation: the headroom math changed with the
	// cluster size, and a reservation whose reduce can no longer be
	// admitted would block its node's maps forever. Viable ones re-form
	// on the next pump.
	rt.fair.reservations = make(map[*cluster.Node]*Job)

	for _, j := range rt.jobs {
		if j.finished() {
			continue
		}
		needOutputs := j.reducesDone < len(j.reduces) && j.Spec.MapOutputBytes > 0
		for _, m := range j.maps {
			switch {
			case m.state == taskRunning && m.node == n:
				m.preempt()
				rt.failedTasks++
			case m.state == taskDone && m.node == n && needOutputs:
				// The map's intermediate output died with the node:
				// re-execute (Hadoop re-schedules completed maps of
				// failed TaskTrackers for exactly this reason).
				m.attempt++
				m.state = taskPending
				m.node = nil
				j.mapsDone--
				rt.rerunMaps++
			}
		}
		for _, r := range j.reduces {
			if r.state == taskRunning && r.node == n {
				r.restart()
				rt.failedTasks++
			}
			if r.state != taskDone {
				kept := r.pending[:0]
				for _, seg := range r.pending {
					if seg.srcNode != n {
						kept = append(kept, seg)
					}
				}
				r.pending = kept
			}
		}
	}
	rt.reclaimShuffleHeadroom()
	rt.fair.pump()
}

// reclaimShuffleHeadroom restarts waiting (shuffling) reduces until the
// headroom guard holds on the shrunken cluster: after losing nodes, the
// survivors' memory could be entirely parked on reduces waiting for
// maps that now have nowhere to run — the deadlock the guard normally
// prevents at placement time.
func (rt *Runtime) reclaimShuffleHeadroom() {
	limit := 0.5 * rt.fair.clusterMemGB()
	for rt.fair.waitingReduceMemGB("") > limit {
		var victim *reduceTask
		for _, j := range rt.jobs {
			if j.finished() || j.mapsDone == len(j.maps) {
				continue
			}
			for _, r := range j.reduces {
				if r.state == taskRunning && !r.finishing {
					victim = r // youngest wins: keep scanning
				}
			}
		}
		if victim == nil {
			return
		}
		victim.restart()
		rt.failedTasks++
	}
}

// FailedTasks returns how many running task attempts node failures have
// killed.
func (rt *Runtime) FailedTasks() uint64 { return rt.failedTasks }

// RerunMaps returns how many completed maps were re-executed because
// their outputs were lost.
func (rt *Runtime) RerunMaps() uint64 { return rt.rerunMaps }

// restart requeues a reduce whose node died: everything it fetched and
// spilled is gone, so it starts from an empty shuffle.
func (r *reduceTask) restart() {
	r.cancelRun()
	job := r.job
	job.rt.fair.releaseReduce(r.node, job, job.Spec.ReduceMemGB)
	r.attempt++
	r.state = taskPending
	r.node = nil
	r.pending = nil
	r.segsDone = 0
	r.fetchedBytes = 0
	r.finishing = false
	r.activeFetchers = 0
	r.shuffleDoneTime = 0
}

// reseedSegments repopulates a restarted reduce's queue from every
// completed map whose output survives.
func (r *reduceTask) reseedSegments() {
	j := r.job
	if j.Spec.MapOutputBytes <= 0 {
		return
	}
	for _, m := range j.maps {
		if m.state != taskDone || m.node == nil || m.node.Dead {
			continue
		}
		if b := m.interBytes(); b > 0 {
			r.pending = append(r.pending, segment{srcNode: m.node, bytes: b / float64(len(j.reduces))})
		}
	}
}
