package mapreduce

import (
	"math"
	"testing"

	"ibis/internal/cluster"
	"ibis/internal/dfs"
	"ibis/internal/iosched"
	"ibis/internal/sim"
	"ibis/internal/storage"
)

// testHarness bundles a small fast cluster for engine tests.
type testHarness struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	nn  *dfs.Namenode
	rt  *Runtime
}

func newHarness(t *testing.T, policy cluster.Policy, nodes int) *testHarness {
	t.Helper()
	eng := sim.NewEngine()
	spec := storage.Spec{
		Name: "fastflat", ReadBW: 200e6, WriteBW: 200e6,
		PerOpOverhead: 0.1e6,
		Curve:         []float64{0.7, 0.85, 1, 1}, CurveDecay: 0.99, MinCurve: 0.5,
	}
	cl, err := cluster.New(eng, cluster.Config{
		Nodes:        nodes,
		CoresPerNode: 4,
		MemGBPerNode: 24,
		HDFSDisk:     spec,
		LocalDisk:    spec,
		Policy:       policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	nn := dfs.NewNamenode(dfs.Config{Nodes: nodes, BlockSize: 32e6, Replication: 2, Seed: 5})
	rt := NewRuntime(eng, cl, nn, Config{ChunkBytes: 4e6})
	return &testHarness{eng: eng, cl: cl, nn: nn, rt: rt}
}

func simpleSpec() JobSpec {
	return JobSpec{
		Name:              "sortish",
		Weight:            1,
		InputBytes:        128e6,
		MapOutputBytes:    128e6,
		NumReduces:        2,
		OutputBytes:       128e6,
		MapCPUSecPerMB:    0.001,
		ReduceCPUSecPerMB: 0.001,
	}
}

func TestSpecValidation(t *testing.T) {
	base := simpleSpec()
	ok := base
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []func(*JobSpec){
		func(s *JobSpec) { s.Name = "" },
		func(s *JobSpec) { s.Weight = 0 },
		func(s *JobSpec) { s.InputBytes = -1 },
		func(s *JobSpec) { s.InputBytes = 0; s.NumMaps = 0 },
		func(s *JobSpec) { s.NumReduces = -1 },
		func(s *JobSpec) { s.NumReduces = 0 }, // shuffle bytes with no reduces
		func(s *JobSpec) { s.MapCPUSecPerMB = -1 },
	}
	for i, mutate := range cases {
		s := base
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, s)
		}
	}
}

func TestSpecDefaults(t *testing.T) {
	s := simpleSpec()
	eff := s.withDefaults()
	if eff.CPUWeight != 1 || eff.MapMemGB != 2 || eff.ReduceMemGB != 8 {
		t.Fatalf("defaults: %+v", eff)
	}
}

func TestJobRunsToCompletion(t *testing.T) {
	h := newHarness(t, cluster.Native, 4)
	job, err := h.rt.Submit(simpleSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var doneJob *Job
	h.rt.OnJobDone(func(j *Job) { doneJob = j })
	end := h.eng.Run()
	if !job.Done() {
		t.Fatalf("job not done (state %v, maps %d/%d, reduces %d/%d)",
			job.State(), job.mapsDone, len(job.maps), job.reducesDone, len(job.reduces))
	}
	if doneJob != job {
		t.Fatal("OnJobDone not fired with the job")
	}
	if end <= 0 || math.IsNaN(job.Runtime()) || job.Runtime() <= 0 {
		t.Fatalf("runtime = %v at end %v", job.Runtime(), end)
	}
	res := job.Result()
	if res.Runtime() != job.Runtime() {
		t.Fatal("Result runtime mismatch")
	}
	if res.MapPhase() <= 0 || res.ReducePhase() < 0 {
		t.Fatalf("phases: map=%v reduce=%v", res.MapPhase(), res.ReducePhase())
	}
}

func TestMapCountFromBlocks(t *testing.T) {
	h := newHarness(t, cluster.Native, 4)
	job, _ := h.rt.Submit(simpleSpec(), 0) // 128 MB / 32 MB blocks = 4 maps
	h.eng.Run()
	if job.NumMaps() != 4 {
		t.Fatalf("maps = %d, want 4", job.NumMaps())
	}
	if job.NumReduces() != 2 {
		t.Fatalf("reduces = %d", job.NumReduces())
	}
}

func TestGeneratorJob(t *testing.T) {
	h := newHarness(t, cluster.Native, 4)
	spec := JobSpec{
		Name:              "gen",
		Weight:            1,
		NumMaps:           8,
		DirectOutputBytes: 256e6,
		MapCPUSecPerMB:    0.0001,
	}
	job, err := h.rt.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.eng.Run()
	if !job.Done() {
		t.Fatal("generator job did not finish")
	}
	// Replication 2: cluster-wide persistent writes = 2 × 256 MB.
	var written float64
	for _, n := range h.cl.Nodes {
		written += n.HDFS.Stats().WriteBytes
	}
	if math.Abs(written-512e6) > 1e6 {
		t.Fatalf("persistent writes = %v, want 512e6 (2× replication)", written)
	}
}

func TestIOVolumeAccounting(t *testing.T) {
	h := newHarness(t, cluster.Native, 4)
	job, _ := h.rt.Submit(simpleSpec(), 0)
	h.eng.Run()

	var pRead, pWrite, iRead, iWrite float64
	for _, n := range h.cl.Nodes {
		pRead += n.HDFS.Stats().ReadBytes
		pWrite += n.HDFS.Stats().WriteBytes
		iRead += n.Local.Stats().ReadBytes
		iWrite += n.Local.Stats().WriteBytes
	}
	// Input read once: 128 MB.
	if math.Abs(pRead-128e6) > 1e6 {
		t.Fatalf("persistent reads = %v, want 128e6", pRead)
	}
	// Output written with replication 2: 256 MB.
	if math.Abs(pWrite-256e6) > 1e6 {
		t.Fatalf("persistent writes = %v, want 256e6", pWrite)
	}
	// Intermediate with the default (large) shuffle buffer: map spill
	// (128 MB) written, shuffle-serve (128 MB) read; the reduce side
	// merges in memory.
	if math.Abs(iWrite-128e6) > 1e6 {
		t.Fatalf("intermediate writes = %v, want 128e6", iWrite)
	}
	if math.Abs(iRead-128e6) > 1e6 {
		t.Fatalf("intermediate reads = %v, want 128e6", iRead)
	}
	_ = job
}

func TestIOVolumeAccountingSpillingShuffle(t *testing.T) {
	h := newHarness(t, cluster.Native, 4)
	// Force the spill path with a tiny shuffle buffer.
	rt := NewRuntime(h.eng, h.cl, h.nn, Config{ChunkBytes: 4e6, ShuffleBufferBytes: 1})
	if _, err := rt.Submit(simpleSpec(), 0); err != nil {
		t.Fatal(err)
	}
	h.eng.Run()
	var iRead, iWrite float64
	for _, n := range h.cl.Nodes {
		iRead += n.Local.Stats().ReadBytes
		iWrite += n.Local.Stats().WriteBytes
	}
	// Map spill (128) + reduce spill (128) writes; shuffle-serve (128)
	// + merge read-back (128) reads.
	if math.Abs(iWrite-256e6) > 1e6 {
		t.Fatalf("intermediate writes = %v, want 256e6", iWrite)
	}
	if math.Abs(iRead-256e6) > 1e6 {
		t.Fatalf("intermediate reads = %v, want 256e6", iRead)
	}
}

func TestCPUQuotaRespected(t *testing.T) {
	h := newHarness(t, cluster.Native, 4) // 16 cores total
	spec := simpleSpec()
	spec.InputBytes = 512e6 // 16 maps
	spec.CPUQuota = 3
	job, _ := h.rt.Submit(spec, 0)
	maxUsed := 0
	h.rt.OnJobDone(func(*Job) {})
	probe := func() {}
	probe = func() {
		if job.UsedCores() > maxUsed {
			maxUsed = job.UsedCores()
		}
		if !job.Done() {
			h.eng.Schedule(0.05, probe)
		}
	}
	h.eng.Schedule(0, probe)
	h.eng.Run()
	if maxUsed > 3 {
		t.Fatalf("job used %d cores, quota 3", maxUsed)
	}
	if !job.Done() {
		t.Fatal("job did not finish under quota")
	}
}

func TestMemoryLimitsReduceCount(t *testing.T) {
	// One node, 4 cores, 24 GB: reduces at 8 GB each → at most 3
	// simultaneously even though a 4th core is free.
	h := newHarness(t, cluster.Native, 1)
	spec := simpleSpec()
	spec.NumReduces = 4
	spec.MapOutputBytes = 64e6
	job, _ := h.rt.Submit(spec, 0)
	over := false
	var probe func()
	probe = func() {
		if h.cl.Nodes[0].UsedMemGB > 24 {
			over = true
		}
		if !job.Done() {
			h.eng.Schedule(0.05, probe)
		}
	}
	h.eng.Schedule(0, probe)
	h.eng.Run()
	if over {
		t.Fatal("node memory over-committed")
	}
	if !job.Done() {
		t.Fatal("job stuck under memory pressure")
	}
}

func TestTwoJobsFairSharing(t *testing.T) {
	h := newHarness(t, cluster.Native, 4)
	a := simpleSpec()
	a.Name = "a"
	a.InputBytes = 4e9
	a.MapOutputBytes = 0
	a.OutputBytes = 0
	a.NumReduces = 0
	a.MapCPUSecPerMB = 0.01
	b := a
	b.Name = "b"
	ja, _ := h.rt.Submit(a, 0)
	jb, _ := h.rt.Submit(b, 0)
	// The first job may briefly monopolize the cluster; Fair Scheduler
	// preemption (5 s timeout) must rebalance after the transient.
	var maxA, maxB, minGapA, minGapB = 0, 0, 99, 99
	var probe func()
	probe = func() {
		if h.eng.Now() > 8 && !(ja.Done() || jb.Done()) {
			if ja.UsedCores() > maxA {
				maxA = ja.UsedCores()
			}
			if jb.UsedCores() > maxB {
				maxB = jb.UsedCores()
			}
			if ja.UsedCores() < minGapA {
				minGapA = ja.UsedCores()
			}
			if jb.UsedCores() < minGapB {
				minGapB = jb.UsedCores()
			}
		}
		if !(ja.Done() && jb.Done()) {
			h.eng.Schedule(0.5, probe)
		}
	}
	h.eng.Schedule(0.01, probe)
	h.eng.Run()
	if !ja.Done() || !jb.Done() {
		t.Fatal("jobs did not finish")
	}
	// After the preemption window, neither job should hold more than
	// ~3/4 of the 16 cores while the other is starved.
	if maxA > 12 || maxB > 12 {
		t.Fatalf("steady-state core usage peaked at %d/%d of 16; preemption failed", maxA, maxB)
	}
	if minGapA > 12 || minGapB > 12 {
		t.Fatalf("a job was never constrained: min usage %d/%d", minGapA, minGapB)
	}
}

func TestReduceSlowstart(t *testing.T) {
	h := newHarness(t, cluster.Native, 4)
	spec := simpleSpec()
	spec.InputBytes = 512e6 // 16 maps
	job, _ := h.rt.Submit(spec, 0)
	h.rt.cfg.SlowstartFraction = 0.5
	reduceStarted := math.Inf(1)
	mapsAtReduceStart := 0
	var probe func()
	probe = func() {
		for _, r := range job.reduces {
			if r.state != taskPending && h.eng.Now() < reduceStarted {
				reduceStarted = h.eng.Now()
				mapsAtReduceStart = job.MapsDone()
			}
		}
		if !job.Done() {
			h.eng.Schedule(0.02, probe)
		}
	}
	h.eng.Schedule(0, probe)
	h.eng.Run()
	if mapsAtReduceStart < 8 {
		t.Fatalf("reduces started with only %d/16 maps done; slowstart 0.5 violated", mapsAtReduceStart)
	}
}

func TestMapOnlyJobPhases(t *testing.T) {
	h := newHarness(t, cluster.Native, 2)
	spec := JobSpec{
		Name: "maponly", Weight: 1,
		NumMaps: 4, DirectOutputBytes: 64e6,
	}
	job, _ := h.rt.Submit(spec, 0)
	h.eng.Run()
	if !job.Done() {
		t.Fatal("map-only job stuck")
	}
	res := job.Result()
	if res.ReducePhase() != 0 {
		t.Fatalf("map-only reduce phase = %v", res.ReducePhase())
	}
}

func TestDelayedSubmission(t *testing.T) {
	h := newHarness(t, cluster.Native, 2)
	job, _ := h.rt.Submit(simpleSpec(), 10)
	h.eng.Run()
	if job.SubmitTime != 10 {
		t.Fatalf("SubmitTime = %v, want 10", job.SubmitTime)
	}
	if job.StartTime < 10 {
		t.Fatalf("StartTime = %v before submission", job.StartTime)
	}
}

func TestSubmitInvalidSpecFails(t *testing.T) {
	h := newHarness(t, cluster.Native, 2)
	if _, err := h.rt.Submit(JobSpec{}, 0); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestLocalityPreferred(t *testing.T) {
	h := newHarness(t, cluster.Native, 4)
	spec := simpleSpec()
	spec.InputBytes = 512e6
	spec.NumReduces = 0
	spec.MapOutputBytes = 0
	spec.OutputBytes = 0
	job, _ := h.rt.Submit(spec, 0)
	h.eng.Run()
	local := 0
	for _, m := range job.maps {
		if m.block.HasReplicaOn(m.node.Index) {
			local++
		}
	}
	// With 2 replicas on 4 nodes and free choice, most maps should be
	// data-local.
	if float64(local)/float64(len(job.maps)) < 0.5 {
		t.Fatalf("only %d/%d maps were data-local", local, len(job.maps))
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() (float64, float64) {
		h := newHarness(t, cluster.SFQD, 4)
		a := simpleSpec()
		a.Name = "a"
		b := simpleSpec()
		b.Name = "b"
		ja, _ := h.rt.Submit(a, 0)
		jb, _ := h.rt.Submit(b, 0.5)
		h.eng.Run()
		return ja.Runtime(), jb.Runtime()
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", a1, b1, a2, b2)
	}
}

func TestStateString(t *testing.T) {
	if Pending.String() != "pending" || Running.String() != "running" || Done.String() != "done" {
		t.Fatal("state strings wrong")
	}
}

func TestJobRuntimeNaNWhileRunning(t *testing.T) {
	h := newHarness(t, cluster.Native, 2)
	job, _ := h.rt.Submit(simpleSpec(), 0)
	if !math.IsNaN(job.Runtime()) {
		t.Fatal("Runtime should be NaN before completion")
	}
	h.eng.Run()
	if math.IsNaN(job.Runtime()) {
		t.Fatal("Runtime NaN after completion")
	}
}

// All tagged I/O must carry the job's app ID and weight.
func TestIOTagging(t *testing.T) {
	h := newHarness(t, cluster.SFQD, 4)
	spec := simpleSpec()
	spec.Weight = 7
	job, _ := h.rt.Submit(spec, 0)
	bad := 0
	h.cl.SetIOObserver(func(_ int, req *iosched.Request, _ float64) {
		if req.App != job.App || req.Weight() != 7 {
			bad++
		}
	})
	h.eng.Run()
	if bad > 0 {
		t.Fatalf("%d requests mis-tagged", bad)
	}
}
