// Package mapreduce implements the simulated MapReduce/YARN execution
// engine: jobs with map and reduce tasks, their multi-phase I/O
// (persistent input reads, intermediate spills, shuffle transfers,
// merge reads, replicated output writes), a weighted fair CPU-slot
// scheduler with memory constraints and data-locality preference, and
// per-job performance accounting.
//
// Every I/O a task performs is tagged with its application's ID and I/O
// weight and submitted through the node's interposed scheduler — the
// package is the workload generator that exercises the IBIS scheduling
// framework exactly the way Hadoop tasks exercise the real prototype.
package mapreduce

import (
	"fmt"

	"ibis/internal/iosched"
)

// JobSpec describes one MapReduce application's shape. All byte figures
// are cluster-wide totals.
type JobSpec struct {
	// Name labels the job ("wordcount", "teragen", ...). The runtime
	// derives the AppID from it.
	Name string
	// App, if set, overrides the generated application ID. Multi-job
	// applications (a Hive query's sequential stages) share one ID so
	// the I/O schedulers treat them as a single flow.
	App iosched.AppID

	// Weight is the I/O service weight given to IBIS. Must be > 0. At
	// submission it seeds the job's node in the cluster's share tree;
	// the control plane can change it live afterwards
	// (shares.Tree.SetAppWeight / Sim.SetWeight).
	Weight float64
	// Tenant attributes the job to a named tenant in the share tree, so
	// cluster-wide proportionality is enforced between tenants and the
	// job competes under its tenant's aggregate share. Empty keeps the
	// job in its own implicit singleton tenant (flat per-app behavior).
	Tenant string
	// CPUWeight is the fair-scheduler share for CPU slots (default 1).
	CPUWeight float64
	// CPUQuota caps the job's concurrently used cores cluster-wide
	// (0 = unlimited). The paper pins CPU allocations (e.g. half the 96
	// cores) while varying only the I/O policy.
	CPUQuota int
	// Pool assigns the job to a named Fair Scheduler pool (queue); the
	// pool's aggregate core/memory caps bound all member jobs together.
	// Empty = no pool.
	Pool string

	// InputBytes is the DFS input read by map tasks. Zero for
	// generator jobs (TeraGen synthesizes its data).
	InputBytes float64
	// NumMaps overrides the map count; if zero it is derived from
	// InputBytes and the DFS block size. Generator jobs must set it.
	NumMaps int
	// MapOutputBytes is the total intermediate data produced by the map
	// phase (spilled locally, then shuffled to reduces).
	MapOutputBytes float64
	// DirectOutputBytes is output written straight to the DFS by map
	// tasks (map-only jobs like TeraGen).
	DirectOutputBytes float64

	// NumReduces is the reduce task count (0 for map-only jobs).
	NumReduces int
	// OutputBytes is the final DFS output written by the reduce phase.
	OutputBytes float64

	// MapCPUSecPerMB is seconds of computation per MB of map input (or
	// generated output for generator jobs).
	MapCPUSecPerMB float64
	// ReduceCPUSecPerMB is seconds of computation per MB of shuffle
	// input.
	ReduceCPUSecPerMB float64

	// MapMemGB and ReduceMemGB are per-task memory demands; defaults
	// follow the paper (1 core + 2 GB per map, 1 core + 8 GB per
	// reduce).
	MapMemGB    float64
	ReduceMemGB float64

	// OutputReplication overrides the DFS replication factor for this
	// job's output (0 = namenode default). dfs.replication=3 in
	// Table 1.
	OutputReplication int
}

func (s *JobSpec) withDefaults() JobSpec {
	out := *s
	if out.CPUWeight <= 0 {
		out.CPUWeight = 1
	}
	if out.MapMemGB <= 0 {
		out.MapMemGB = 2
	}
	if out.ReduceMemGB <= 0 {
		out.ReduceMemGB = 8
	}
	return out
}

// Validate reports configuration errors.
func (s *JobSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("mapreduce: job without a name")
	}
	if s.Weight <= 0 {
		return fmt.Errorf("mapreduce: job %q: weight %g must be positive", s.Name, s.Weight)
	}
	if s.InputBytes < 0 || s.MapOutputBytes < 0 || s.DirectOutputBytes < 0 || s.OutputBytes < 0 {
		return fmt.Errorf("mapreduce: job %q: negative byte volume", s.Name)
	}
	if s.InputBytes == 0 && s.NumMaps == 0 {
		return fmt.Errorf("mapreduce: job %q: generator jobs must set NumMaps", s.Name)
	}
	if s.NumReduces < 0 {
		return fmt.Errorf("mapreduce: job %q: negative reduce count", s.Name)
	}
	if s.NumReduces == 0 && (s.MapOutputBytes > 0 || s.OutputBytes > 0) {
		return fmt.Errorf("mapreduce: job %q: shuffle/output bytes but no reduces", s.Name)
	}
	if s.MapCPUSecPerMB < 0 || s.ReduceCPUSecPerMB < 0 {
		return fmt.Errorf("mapreduce: job %q: negative CPU cost", s.Name)
	}
	return nil
}

// State is a job's lifecycle phase.
type State int

const (
	// Pending: submitted, no task has started.
	Pending State = iota
	// Running: at least one task started.
	Running
	// Done: all tasks finished.
	Done
	// Failed: unrecoverable (e.g. every replica of an input block was
	// lost to node failures).
	Failed
)

// String names the state.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Failed:
		return "failed"
	default:
		return "done"
	}
}

// Result summarizes a completed job for experiment reporting.
type Result struct {
	App        iosched.AppID
	Name       string
	SubmitTime float64
	StartTime  float64
	// MapDoneTime is when the last map task finished.
	MapDoneTime float64
	EndTime     float64
}

// Runtime returns the job's end-to-end runtime (submit to completion),
// the figure the paper's runtime bars report.
func (r Result) Runtime() float64 { return r.EndTime - r.SubmitTime }

// MapPhase returns the duration until the last map finished.
func (r Result) MapPhase() float64 { return r.MapDoneTime - r.SubmitTime }

// ReducePhase returns the trailing portion after the last map finished.
func (r Result) ReducePhase() float64 { return r.EndTime - r.MapDoneTime }
