package mapreduce

import (
	"testing"

	"ibis/internal/cluster"
	"ibis/internal/dfs"
	"ibis/internal/sim"
	"ibis/internal/storage"
)

// newCoordHarness is newHarness with the coordination plane on: DSFQ
// clients exchange with the broker every 0.5 s.
func newCoordHarness(t *testing.T, nodes int) *testHarness {
	t.Helper()
	eng := sim.NewEngine()
	spec := storage.Spec{
		Name: "fastflat", ReadBW: 200e6, WriteBW: 200e6,
		PerOpOverhead: 0.1e6,
		Curve:         []float64{0.7, 0.85, 1, 1}, CurveDecay: 0.99, MinCurve: 0.5,
	}
	cl, err := cluster.New(eng, cluster.Config{
		Nodes:              nodes,
		CoresPerNode:       4,
		MemGBPerNode:       24,
		HDFSDisk:           spec,
		LocalDisk:          spec,
		Policy:             cluster.SFQD,
		Coordinate:         true,
		CoordinationPeriod: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	nn := dfs.NewNamenode(dfs.Config{Nodes: nodes, BlockSize: 32e6, Replication: 2, Seed: 5})
	rt := NewRuntime(eng, cl, nn, Config{ChunkBytes: 4e6})
	return &testHarness{eng: eng, cl: cl, nn: nn, rt: rt}
}

// TestFailNodeDetachesBrokerClients is the regression test for ghost
// coordination vectors: killing a node must unregister its two broker
// clients, withdraw their reported service, and stop their exchanges —
// otherwise survivors are delayed against a dead node's frozen totals
// forever.
func TestFailNodeDetachesBrokerClients(t *testing.T) {
	h := newCoordHarness(t, 4)
	job, err := h.rt.Submit(failureSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}

	registered := func(id string) bool {
		for _, s := range h.cl.Broker.Schedulers() {
			if s == id {
				return true
			}
		}
		return false
	}

	h.eng.Schedule(0.9, func() {
		if !registered("node2-hdfs") || !registered("node2-local") {
			t.Fatalf("node 2's clients never registered: %v", h.cl.Broker.Schedulers())
		}
	})
	h.eng.Schedule(1, func() { h.rt.FailNode(2) })
	h.eng.Schedule(1.01, func() {
		for _, id := range []string{"node2-hdfs", "node2-local"} {
			if registered(id) {
				t.Errorf("dead node's client %s still registered: %v", id, h.cl.Broker.Schedulers())
			}
		}
		if got := len(h.cl.Broker.Schedulers()); got != 6 {
			t.Errorf("registered schedulers = %d, want 6 (3 live nodes × 2)", got)
		}
	})
	h.eng.Run()

	if !job.Done() {
		t.Fatalf("job did not survive the failure: maps %d/%d reduces %d/%d",
			job.MapsDone(), job.NumMaps(), job.ReducesDone(), job.NumReduces())
	}
	// The detached clients must have gone silent: no exchange may have
	// re-registered them after the failure.
	for _, id := range []string{"node2-hdfs", "node2-local"} {
		if registered(id) {
			t.Errorf("dead node's client %s resurrected by a late exchange", id)
		}
	}
	// Survivors keep coordinating.
	health := h.cl.CoordinationHealth()
	if health.Successes == 0 {
		t.Error("no successful coordination exchanges recorded")
	}
}

// TestJobCompletionRetiresApp checks the broker-hygiene satellite: once
// every job of an app finishes, the app's vector is withdrawn from the
// broker so totals cannot pin delay functions of future apps.
func TestJobCompletionRetiresApp(t *testing.T) {
	h := newCoordHarness(t, 4)
	job, err := h.rt.Submit(failureSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	h.eng.Run()
	if !job.Done() {
		t.Fatal("job did not finish")
	}
	if !h.cl.Broker.Retired(job.App) {
		t.Error("finished app was not retired at the broker")
	}
	for _, app := range h.cl.Broker.Apps() {
		if app == job.App {
			t.Error("retired app still listed among live broker apps")
		}
	}
	// The final total stays observable as a tombstone — retirement prunes
	// the live vector, it does not erase history.
	if got := h.cl.Broker.Total(job.App); got <= 0 {
		t.Errorf("tombstoned total = %v, want > 0", got)
	}
}
