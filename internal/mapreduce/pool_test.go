package mapreduce

import (
	"testing"

	"ibis/internal/cluster"
)

func TestPoolCapsCores(t *testing.T) {
	h := newHarness(t, cluster.Native, 4) // 16 cores
	h.rt.DefinePool("small", 3, 0)
	spec := JobSpec{
		Name: "pooled", Weight: 1, Pool: "small",
		NumMaps: 40, DirectOutputBytes: 40e6, MapCPUSecPerMB: 0.5,
	}
	job, err := h.rt.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	maxUsed := 0
	var probe func()
	probe = func() {
		if job.UsedCores() > maxUsed {
			maxUsed = job.UsedCores()
		}
		if !job.Done() {
			h.eng.Schedule(0.1, probe)
		}
	}
	h.eng.Schedule(0, probe)
	h.eng.Run()
	if maxUsed > 3 {
		t.Fatalf("pooled job used %d cores, pool cap 3", maxUsed)
	}
	if !job.Done() {
		t.Fatal("pooled job did not finish")
	}
}

func TestPoolCapsAreAggregate(t *testing.T) {
	h := newHarness(t, cluster.Native, 4)
	h.rt.DefinePool("shared", 4, 0)
	mk := func(name string) JobSpec {
		return JobSpec{
			Name: name, Weight: 1, Pool: "shared",
			NumMaps: 20, DirectOutputBytes: 20e6, MapCPUSecPerMB: 0.5,
		}
	}
	a, _ := h.rt.Submit(mk("a"), 0)
	b, _ := h.rt.Submit(mk("b"), 0)
	maxSum := 0
	var probe func()
	probe = func() {
		if sum := a.UsedCores() + b.UsedCores(); sum > maxSum {
			maxSum = sum
		}
		if !(a.Done() && b.Done()) {
			h.eng.Schedule(0.1, probe)
		}
	}
	h.eng.Schedule(0, probe)
	h.eng.Run()
	if maxSum > 4 {
		t.Fatalf("pool members used %d cores together, cap 4", maxSum)
	}
}

func TestPoolMemoryCap(t *testing.T) {
	h := newHarness(t, cluster.Native, 4) // 4×24 GB
	h.rt.DefinePool("memtight", 0, 6)     // three 2 GB maps at a time
	spec := JobSpec{
		Name: "m", Weight: 1, Pool: "memtight",
		NumMaps: 12, DirectOutputBytes: 12e6, MapCPUSecPerMB: 0.5,
	}
	job, _ := h.rt.Submit(spec, 0)
	maxUsed := 0
	var probe func()
	probe = func() {
		if job.UsedCores() > maxUsed {
			maxUsed = job.UsedCores()
		}
		if !job.Done() {
			h.eng.Schedule(0.1, probe)
		}
	}
	h.eng.Schedule(0, probe)
	h.eng.Run()
	if maxUsed > 3 {
		t.Fatalf("job used %d concurrent maps, memory cap allows 3", maxUsed)
	}
}

func TestUndeclaredPoolIsUncapped(t *testing.T) {
	h := newHarness(t, cluster.Native, 2)
	spec := JobSpec{
		Name: "free", Weight: 1, Pool: "nobody-declared-this",
		NumMaps: 4, DirectOutputBytes: 4e6,
	}
	job, err := h.rt.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.eng.Run()
	if !job.Done() {
		t.Fatal("job in undeclared pool stuck")
	}
}

func TestPoolRedefineUpdatesCaps(t *testing.T) {
	h := newHarness(t, cluster.Native, 2)
	h.rt.DefinePool("p", 1, 0)
	h.rt.DefinePool("p", 8, 0) // relax
	spec := JobSpec{
		Name: "j", Weight: 1, Pool: "p",
		NumMaps: 8, DirectOutputBytes: 8e6, MapCPUSecPerMB: 0.2,
	}
	job, _ := h.rt.Submit(spec, 0)
	maxUsed := 0
	var probe func()
	probe = func() {
		if job.UsedCores() > maxUsed {
			maxUsed = job.UsedCores()
		}
		if !job.Done() {
			h.eng.Schedule(0.05, probe)
		}
	}
	h.eng.Schedule(0, probe)
	h.eng.Run()
	if maxUsed <= 1 {
		t.Fatalf("redefined pool still capped at 1 (max used %d)", maxUsed)
	}
}

func TestPoolReleasedOnCompletion(t *testing.T) {
	h := newHarness(t, cluster.Native, 2)
	h.rt.DefinePool("p", 2, 8)
	spec := JobSpec{Name: "j", Weight: 1, Pool: "p", NumMaps: 4, DirectOutputBytes: 4e6}
	job, _ := h.rt.Submit(spec, 0)
	h.eng.Run()
	if !job.Done() {
		t.Fatal("job stuck")
	}
	p := h.rt.pools["p"]
	if p.usedCores != 0 || p.usedMemGB != 0 {
		t.Fatalf("pool not drained: %+v", p)
	}
}

func TestWindowedPipelinesChunks(t *testing.T) {
	h := newHarness(t, cluster.Native, 1)
	rt := h.rt
	// Track maximum concurrent chunks.
	inFlight, maxInFlight := 0, 0
	done := false
	rt.windowed(20e6, 4, func(c float64, next func()) {
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		h.eng.Schedule(0.1, func() {
			inFlight--
			next()
		})
	}, func() { done = true })
	h.eng.Run()
	if !done {
		t.Fatal("windowed never completed")
	}
	if maxInFlight != 4 {
		t.Fatalf("max in flight = %d, want window 4", maxInFlight)
	}
}

func TestWindowedZeroSize(t *testing.T) {
	h := newHarness(t, cluster.Native, 1)
	done := false
	h.rt.windowed(0, 4, func(float64, func()) {
		t.Fatal("chunk issued for zero size")
	}, func() { done = true })
	h.eng.Run()
	if !done {
		t.Fatal("zero-size windowed never completed")
	}
}

func TestChunkedExactMultiple(t *testing.T) {
	h := newHarness(t, cluster.Native, 1)
	var chunks []float64
	h.rt.chunked(8e6, func(c float64, next func()) {
		chunks = append(chunks, c)
		h.eng.Schedule(0, next)
	}, func() {})
	h.eng.Run()
	total := 0.0
	for _, c := range chunks {
		total += c
		if c > h.rt.cfg.ChunkBytes {
			t.Fatalf("oversized chunk %v", c)
		}
	}
	if total != 8e6 {
		t.Fatalf("chunk total %v, want 8e6", total)
	}
}
