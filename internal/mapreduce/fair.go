package mapreduce

import (
	"ibis/internal/cluster"
)

// fairScheduler allocates CPU slots (cores) and memory to pending
// tasks, modeling the Hadoop Fair Scheduler the paper's Table 1
// configures: the job furthest below its weighted fair share is served
// first, map tasks prefer nodes holding their input block, and per-job
// quotas pin CPU allocations the way the experiments pin them (e.g.
// WordCount gets exactly half the 96 cores).
type fairScheduler struct {
	rt      *Runtime
	pumping bool
	repump  bool
	// belowSince records when each job fell below its fair share, for
	// the preemption timeout.
	belowSince map[*Job]float64
	preempted  uint64
	// reservations implements YARN-style container reservation: a node
	// reserved for a job's reduce stops accepting new maps, so the big
	// (8 GB) reduce container can eventually fit. Without this, 2 GB
	// maps would recycle node memory forever and reduces could never
	// start during the map phase — the paper's Figure 6a explicitly
	// notes first-wave shuffle overlaps the map phase.
	reservations map[*cluster.Node]*Job
}

func newFairScheduler(rt *Runtime) *fairScheduler {
	return &fairScheduler{
		rt:           rt,
		belowSince:   make(map[*Job]float64),
		reservations: make(map[*cluster.Node]*Job),
	}
}

// Preempted returns how many map attempts have been killed by
// preemption.
func (f *fairScheduler) Preempted() uint64 { return f.preempted }

// startPreemptionMonitor arms the Fair Scheduler preemption loop
// (fairscheduler.preemption=true, 5 s in Table 1): once per second it
// measures each starved job's deficit; a job starved past the timeout
// triggers kills of the youngest over-share map attempts.
func (f *fairScheduler) startPreemptionMonitor() {
	eng := f.rt.eng
	var tick func()
	tick = func() {
		f.checkPreemption()
		eng.ScheduleDaemon(1, tick)
	}
	eng.ScheduleDaemon(1, tick)
}

// fairShare computes each active job's weighted fair share of the
// cluster cores, capped by quota and by remaining demand.
func (f *fairScheduler) fairShare() map[*Job]int {
	total := f.rt.cluster.TotalCores()
	var active []*Job
	sumW := 0.0
	for _, j := range f.rt.jobs {
		if j.finished() || (len(j.maps) == 0 && len(j.reduces) == 0) {
			continue
		}
		active = append(active, j)
		sumW += j.Spec.CPUWeight
	}
	shares := make(map[*Job]int, len(active))
	for _, j := range active {
		share := int(float64(total) * j.Spec.CPUWeight / sumW)
		if j.Spec.CPUQuota > 0 && share > j.Spec.CPUQuota {
			share = j.Spec.CPUQuota
		}
		if demand := j.coreDemand(); share > demand {
			share = demand
		}
		shares[j] = share
	}
	return shares
}

// checkPreemption enforces fair shares after the timeout.
func (f *fairScheduler) checkPreemption() {
	now := f.rt.eng.Now()
	shares := f.fairShare()
	deficit := 0
	for j, share := range shares {
		if j.usedCores < share {
			if _, ok := f.belowSince[j]; !ok {
				f.belowSince[j] = now
			}
			if now-f.belowSince[j] >= f.rt.cfg.PreemptionTimeout {
				deficit += share - j.usedCores
			}
		} else {
			delete(f.belowSince, j)
		}
	}
	if deficit == 0 {
		return
	}
	// Kill youngest running maps of jobs above their share, most
	// over-share first.
	for deficit > 0 {
		var victim *Job
		over := 0
		for j, share := range shares {
			if j.usedCores-share > over && f.youngestRunningMap(j) != nil {
				over = j.usedCores - share
				victim = j
			}
		}
		if victim == nil {
			break
		}
		m := f.youngestRunningMap(victim)
		m.preempt()
		f.preempted++
		deficit--
	}
	f.pump()
}

// youngestRunningMap returns the running map with the highest index
// (the most recently launched under in-order assignment).
func (f *fairScheduler) youngestRunningMap(j *Job) *mapTask {
	for i := len(j.maps) - 1; i >= 0; i-- {
		if j.maps[i].state == taskRunning {
			return j.maps[i]
		}
	}
	return nil
}

// pump assigns as many pending tasks to free slots as possible. It is
// re-entrancy-safe: a pump triggered from within a pump is coalesced
// into another pass.
func (f *fairScheduler) pump() {
	if f.pumping {
		f.repump = true
		return
	}
	f.pumping = true
	defer func() { f.pumping = false }()
	for {
		f.repump = false
		for _, n := range f.rt.cluster.Nodes {
			if n.Dead {
				continue
			}
			for n.FreeCores() > 0 {
				if !f.assignOne(n) {
					break
				}
			}
		}
		f.reserveForReduces()
		if !f.repump {
			return
		}
	}
}

// assignOne places the best pending task on node n; false if nothing
// fits.
func (f *fairScheduler) assignOne(n *cluster.Node) bool {
	// A reserved node only admits the reserving job's reduce. Stale
	// reservations (job done or nothing left to place) are dropped so
	// the node cannot be blocked forever.
	if owner, reserved := f.reservations[n]; reserved {
		if owner.finished() || f.pendingReduces(owner) == 0 {
			delete(f.reservations, n)
		} else if r := f.pickReduce(owner, n); r != nil {
			delete(f.reservations, n)
			f.launchReduce(n, owner, r)
			return true
		} else {
			return false
		}
	}
	job := f.pickJob(n)
	if job == nil {
		return false
	}
	// Reduces launch ahead of maps once slowstart has passed, so the
	// shuffle overlaps the remaining map waves (the reduce-slot cap in
	// pickReduce keeps maps from starving).
	if r := f.pickReduce(job, n); r != nil {
		f.launchReduce(n, job, r)
		return true
	}
	if m := f.pickMap(job, n); m != nil {
		f.launchMap(n, job, m)
		return true
	}
	return false
}

// reserveForReduces places reservations for jobs whose eligible reduces
// cannot fit on any node. Called at the end of each pump pass.
func (f *fairScheduler) reserveForReduces() {
	maxReservations := len(f.rt.cluster.Nodes) / 4
	if maxReservations < 1 {
		maxReservations = 1
	}
	for _, j := range f.rt.jobs {
		if j.finished() || !j.reducesEligible() {
			continue
		}
		// Don't reserve for reduces the headroom guard would refuse:
		// a reservation for an unplaceable reduce just blocks maps.
		if !f.reduceHeadroomOK(j) {
			continue
		}
		waiting := f.pendingReduces(j)
		if waiting == 0 {
			continue
		}
		held := 0
		for _, owner := range f.reservations {
			if owner == j {
				held++
			}
		}
		for held < maxReservations && held < waiting {
			n := f.bestReservable(j)
			if n == nil {
				break
			}
			f.reservations[n] = j
			held++
		}
	}
}

// pendingReduces counts schedulable-but-unplaced reduces (respecting
// the reduce-slot cap).
func (f *fairScheduler) pendingReduces(j *Job) int {
	running, pending := 0, 0
	for _, r := range j.reduces {
		switch r.state {
		case taskRunning:
			running++
		case taskPending:
			pending++
		}
	}
	room := f.maxReduceSlots(j) - running
	if room < 0 {
		room = 0
	}
	if pending < room {
		return pending
	}
	return room
}

// bestReservable picks the unreserved node with the most free memory
// (closest to fitting the reduce container).
func (f *fairScheduler) bestReservable(j *Job) *cluster.Node {
	var best *cluster.Node
	for _, n := range f.rt.cluster.Nodes {
		if n.Dead {
			continue
		}
		if _, taken := f.reservations[n]; taken {
			continue
		}
		if n.FreeMemGB() >= j.Spec.ReduceMemGB {
			continue // fits already; no reservation needed
		}
		if best == nil || n.FreeMemGB() > best.FreeMemGB() {
			best = n
		}
	}
	return best
}

// pickJob returns the schedulable job with the lowest weighted usage
// (usedCores / CPUWeight); ties break by submission order.
func (f *fairScheduler) pickJob(n *cluster.Node) *Job {
	var best *Job
	var bestDeficit float64
	for _, j := range f.rt.jobs {
		// Jobs not yet materialized by start() have no tasks; finished
		// jobs have nothing to schedule.
		if j.finished() || (len(j.maps) == 0 && len(j.reduces) == 0) {
			continue
		}
		if j.Spec.CPUQuota > 0 && j.usedCores >= j.Spec.CPUQuota {
			continue
		}
		if f.pickMap(j, n) == nil && f.pickReduce(j, n) == nil {
			continue
		}
		deficit := float64(j.usedCores) / j.Spec.CPUWeight
		if best == nil || deficit < bestDeficit {
			best = j
			bestDeficit = deficit
		}
	}
	return best
}

// pickMap returns the best pending map for the node: a data-local one
// if available, otherwise the first pending map.
func (f *fairScheduler) pickMap(j *Job, n *cluster.Node) *mapTask {
	if n.FreeMemGB() < j.Spec.MapMemGB || !f.rt.poolAdmits(j, j.Spec.MapMemGB) {
		return nil
	}
	// Hold back quota headroom for eligible-but-unplaced reduces:
	// otherwise freed cores are instantly recycled into maps and the
	// shuffle can never overlap the map phase.
	if j.Spec.CPUQuota > 0 && j.reducesEligible() {
		if waiting := f.pendingReduces(j); waiting > 0 && j.usedCores >= j.Spec.CPUQuota-waiting {
			return nil
		}
	}
	var firstPending *mapTask
	for _, m := range j.maps {
		if m.state != taskPending {
			continue
		}
		if m.localOn(n) {
			return m
		}
		if firstPending == nil {
			firstPending = m
		}
	}
	return firstPending
}

// maxReduceSlots bounds the cores a job may devote to reduces so that
// shuffling reduces can never starve the maps they are waiting on.
func (f *fairScheduler) maxReduceSlots(j *Job) int {
	limit := j.Spec.CPUQuota
	if limit <= 0 {
		limit = f.rt.cluster.TotalCores()
	}
	half := limit / 2
	if half < 1 {
		half = 1
	}
	return half
}

// waitingReduceMemGB sums the memory held by running reduces whose
// jobs still have unfinished maps — resources parked on the shuffle.
// With a non-empty pool name, only that pool's jobs are counted.
func (f *fairScheduler) waitingReduceMemGB(poolName string) float64 {
	total := 0.0
	for _, j := range f.rt.jobs {
		if j.finished() || j.mapsDone == len(j.maps) {
			continue
		}
		if poolName != "" && j.Spec.Pool != poolName {
			continue
		}
		for _, r := range j.reduces {
			if r.state == taskRunning {
				total += j.Spec.ReduceMemGB
			}
		}
	}
	return total
}

// reduceHeadroomOK reports whether launching one more shuffling reduce
// for job j keeps at least half of the binding memory scope (the job's
// pool if capped, else the whole cluster) available to maps.
func (f *fairScheduler) reduceHeadroomOK(j *Job) bool {
	if j.mapsDone == len(j.maps) {
		return true // nothing left to wait for
	}
	limit := f.clusterMemGB()
	scope := ""
	if p := f.rt.poolFor(j); p != nil && p.maxMemGB > 0 {
		limit = p.maxMemGB
		scope = j.Spec.Pool
	}
	return f.waitingReduceMemGB(scope)+j.Spec.ReduceMemGB <= 0.5*limit
}

// clusterMemGB returns the total task memory on the surviving nodes.
func (f *fairScheduler) clusterMemGB() float64 {
	total := 0.0
	for _, n := range f.rt.cluster.Nodes {
		if !n.Dead {
			total += n.MemGB
		}
	}
	return total
}

// pickReduce returns the first schedulable pending reduce. Reduces whose
// job still has maps to run may collectively park on at most half the
// cluster's memory — the headroom guard real YARN applies so early-
// started (slowstart) reduces can never deadlock the maps they wait on.
func (f *fairScheduler) pickReduce(j *Job, n *cluster.Node) *reduceTask {
	if !j.reducesEligible() || n.FreeMemGB() < j.Spec.ReduceMemGB || !f.rt.poolAdmits(j, j.Spec.ReduceMemGB) {
		return nil
	}
	if !f.reduceHeadroomOK(j) {
		return nil
	}
	running := 0
	var candidate *reduceTask
	for _, r := range j.reduces {
		switch r.state {
		case taskRunning:
			running++
		case taskPending:
			if candidate == nil {
				candidate = r
			}
		}
	}
	if candidate == nil || running >= f.maxReduceSlots(j) {
		return nil
	}
	return candidate
}

func (f *fairScheduler) launchMap(n *cluster.Node, j *Job, m *mapTask) {
	m.state = taskRunning
	m.startTime = f.rt.eng.Now()
	m.node = n
	n.UsedCores++
	n.UsedMemGB += j.Spec.MapMemGB
	j.usedCores++
	f.rt.poolCharge(j, j.Spec.MapMemGB)
	j.noteTaskStart()
	m.run()
}

func (f *fairScheduler) launchReduce(n *cluster.Node, j *Job, r *reduceTask) {
	r.state = taskRunning
	r.startTime = f.rt.eng.Now()
	r.node = n
	n.UsedCores++
	n.UsedMemGB += j.Spec.ReduceMemGB
	j.usedCores++
	f.rt.poolCharge(j, j.Spec.ReduceMemGB)
	j.noteTaskStart()
	r.run()
}

// release frees a map task's slot.
func (f *fairScheduler) release(n *cluster.Node, j *Job, memGB float64) {
	n.UsedCores--
	n.UsedMemGB -= memGB
	j.usedCores--
	f.rt.poolRelease(j, memGB)
}

// releaseReduce frees a reduce task's slot.
func (f *fairScheduler) releaseReduce(n *cluster.Node, j *Job, memGB float64) {
	n.UsedCores--
	n.UsedMemGB -= memGB
	j.usedCores--
	f.rt.poolRelease(j, memGB)
}
