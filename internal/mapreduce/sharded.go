package mapreduce

// Decomposed (sharded) task execution: the coordinator keeps only the
// per-job barriers.
//
// In the original sharded wiring every task's chunk pipeline — input
// reads, compute interleave, spill writes, shuffle fetches, merge,
// replicated output — ran on the coordinator engine, with each chunk
// bouncing submit and completion messages through shard 0. That made
// the coordinator's event count proportional to the cluster's total
// I/O, the serial term that capped parallel speedup.
//
// Here a launched task attempt becomes a run struct (mapRun /
// reduceRun) posted to the owning datanode's shard. The whole data
// path executes on that node's engine: local device submits are
// direct calls, remote reads and replica writes hop node-to-node, and
// shuffle segments stream source→destination — none of it touches
// shard 0. The coordinator sees exactly three kinds of task messages:
// launch (coordinator→node), completion (node→coordinator, guarded by
// the attempt token against stale attempts), and the all-maps-done
// marker that closes reduce shuffles. Slot accounting, fair-share
// pumping, preemption and job completion stay coordinator-side,
// folding those completions.
//
// Cancellation is message-based for determinism: preempt/restart on
// the coordinator bumps the attempt token immediately (so stale
// completions drop on arrival) and posts a cancel to the run, which
// flips its node-local cancelled flag; every node-side continuation is
// guarded by it. There are no cross-shard reads of mutable state in
// either direction — the run snapshots what it needs at launch, and
// everything else it touches (specs, blocks, share handles) is
// immutable for the attempt's lifetime.
//
// Input placement runs on the metadata shards (createAsync): each
// namenode partition draws its blocks' replica sets on its own shard
// and the coordinator folds the answers — dfs.Namenode's partitioned
// mode guarantees the same layout the synchronous path would produce.
// Output placement needs no messages at all: PlaceOutputKeyed is a
// pure function of the attempt's identity, so the writing node shard
// computes its replica set locally.

import (
	"math/rand"

	"ibis/internal/cluster"
	"ibis/internal/dfs"
	"ibis/internal/iosched"
	"ibis/internal/sim"
)

// sharded reports whether the runtime executes on a fabric with the
// decomposed task path.
func (rt *Runtime) sharded() bool { return rt.coordShard != nil }

// toNode posts fn to node n's shard. Coordinator context only.
func (rt *Runtime) toNode(n *cluster.Node, fn func()) {
	rt.coordShard.Post(n.Shard().ID(), 0, fn)
}

// outputKey identifies one task attempt's DFS output for keyed
// placement: (job, kind, task, attempt) — unique per attempt, so the
// placement is deterministic no matter when or where it is computed.
func outputKey(jobSeq int, kind uint64, index, attempt int) uint64 {
	return uint64(jobSeq)<<32 | kind<<28 | uint64(index)<<8 | uint64(attempt)&0xff
}

const (
	keyKindMap    = 1
	keyKindReduce = 2
)

// createAsync materializes a job input file across the metadata
// shards: each namenode partition draws the placements for the blocks
// it owns on its own shard, and the coordinator publishes the file
// once every owner has answered. One namenode-RPC round trip of
// virtual latency, no serialization on shard 0, and — because each
// partition sees its blocks in index order — the exact layout the
// synchronous dfs.Create would have produced.
func (rt *Runtime) createAsync(name string, size float64, done func(*dfs.File)) {
	nn := rt.nn
	sizes := nn.Shape(size)
	parts := nn.Partitions()
	owned := make([][]int, parts) // block indices per partition, ascending
	for i := range sizes {
		p := nn.Owner(name, i)
		owned[p] = append(owned[p], i)
	}
	replicas := make([][]int, len(sizes))
	remaining := 0
	for p := 0; p < parts; p++ {
		if len(owned[p]) > 0 {
			remaining++
		}
	}
	publish := func() {
		f, err := nn.Publish(name, sizes, replicas)
		if err != nil {
			panic(err) // job sequence numbers are unique; collision is a bug
		}
		done(f)
	}
	if remaining == 0 {
		rt.eng.Schedule(0, publish)
		return
	}
	coordID := rt.coordShard.ID()
	for p := 0; p < parts; p++ {
		idxs := owned[p]
		if len(idxs) == 0 {
			continue
		}
		p := p
		ms := rt.metaShards[p%len(rt.metaShards)]
		rt.coordShard.Post(ms.ID(), 0, func() {
			sets := nn.PlacePartition(p, len(idxs))
			ms.Post(coordID, 0, func() {
				for k, i := range idxs {
					replicas[i] = sets[k]
				}
				if remaining--; remaining == 0 {
					publish()
				}
			})
		})
	}
}

// ioOn submits one tagged request directly on a node's scheduler.
// Caller must be executing on the node's shard; done fires there.
func ioOn(n *cluster.Node, app iosched.AppID, class iosched.Class, size float64, done func()) {
	n.SubmitLocal(&iosched.Request{
		App:   app,
		Class: class,
		Size:  size,
		OnDone: func(float64) {
			if done != nil {
				done()
			}
		},
	})
}

// mapRun is one map attempt executing on its node's shard.
type mapRun struct {
	rt        *Runtime
	m         *mapTask
	job       *Job
	att       int
	node      *cluster.Node
	eng       *sim.Engine
	cancelled bool
}

// alive guards a node-side continuation against a cancelled attempt.
func (mr *mapRun) alive(fn func()) func() {
	return func() {
		if !mr.cancelled {
			fn()
		}
	}
}

// runSharded launches the attempt: build the run on the coordinator,
// post it to the owning node's shard. Replaces run() in sharded mode.
func (m *mapTask) runSharded() {
	rt := m.job.rt
	run := &mapRun{
		rt:   rt,
		m:    m,
		job:  m.job,
		att:  m.attempt,
		node: m.node,
		eng:  rt.cluster.NodeEngine(m.node.Index),
	}
	m.srun = run
	rt.toNode(run.node, func() { run.start() })
}

// completeSharded folds a node-side completion on the coordinator,
// dropping reports from stale attempts.
func (m *mapTask) completeSharded(att int) {
	if m.attempt != att || m.state != taskRunning {
		return
	}
	m.srun = nil
	m.finish()
}

// start runs the map's three phases on the node shard; the pipeline
// mirrors mapTask.run chunk for chunk, minus the coordinator bounces.
func (mr *mapRun) start() {
	m, rt := mr.m, mr.rt
	alive := mr.alive
	mr.consumeInput(alive(func() {
		// Phase 2: spill intermediate output locally (write-behind).
		windowedOn(mr.eng, rt.cfg.ChunkBytes, m.interBytes(), rt.cfg.WriteAheadChunks, func(c float64, next func()) {
			ioOn(mr.node, mr.job.App, iosched.IntermediateWrite, c, alive(next))
		}, alive(func() {
			// Phase 3: direct DFS output (map-only jobs), replicated.
			key := outputKey(mr.job.seq, keyKindMap, m.index, mr.att)
			writeReplicatedLocal(rt, mr.job, mr.node, mr.eng, m.directOutBytes(), key, alive, alive(func() {
				mr.node.Shard().Post(rt.coordShard.ID(), 0, func() {
					m.completeSharded(mr.att)
				})
			}))
		}))
	}))
}

// consumeInput is phase 1 on the node shard: alternate chunk reads
// with computation. Remote chunks hop to the replica's shard for the
// read and stream back node-to-node.
func (mr *mapRun) consumeInput(done func()) {
	m, rt := mr.m, mr.rt
	cpuPerByte := mr.job.Spec.MapCPUSecPerMB / 1e6
	if m.block == nil {
		// Generator: pure computation over the synthesized volume.
		mr.eng.Schedule(m.inputBytes()*cpuPerByte, done)
		return
	}
	alive := mr.alive
	local := m.block.HasReplicaOn(mr.node.Index)
	coordID := rt.coordShard.ID()
	chunkedOn(mr.eng, rt.cfg.ChunkBytes, m.block.Size, func(c float64, next func()) {
		afterRead := alive(func() {
			mr.eng.Schedule(c*cpuPerByte, alive(next))
		})
		if local {
			ioOn(mr.node, mr.job.App, iosched.PersistentRead, c, afterRead)
			return
		}
		src := m.pickReplica(rt)
		if src == nil {
			// Unreachable without node failures (unsupported sharded),
			// but fail the job through the coordinator rather than wedge.
			mr.node.Shard().Post(coordID, 0, func() {
				if m.attempt == mr.att && m.state == taskRunning {
					m.preempt()
					m.job.fail()
				}
			})
			return
		}
		mr.node.Shard().Post(src.Shard().ID(), 0, func() {
			ioOn(src, mr.job.App, iosched.PersistentRead, c, func() {
				src.SendTaggedLocal(mr.node, mr.job.App, c, afterRead)
			})
		})
	}, done)
}

// reduceRun is one reduce attempt executing on its node's shard. It
// owns the shuffle state for the attempt: the coordinator forwards
// segments and the all-maps-done marker as messages and otherwise
// stays out of the data path.
type reduceRun struct {
	rt             *Runtime
	r              *reduceTask
	job            *Job
	att            int
	node           *cluster.Node
	eng            *sim.Engine
	pending        []segment
	activeFetchers int
	segsDone       int
	expected       int
	fetchedBytes   float64
	allMapsDone    bool
	finishing      bool
	cancelled      bool
	inMem          bool
	rng            *rand.Rand
}

func (rr *reduceRun) alive(fn func()) func() {
	return func() {
		if !rr.cancelled {
			fn()
		}
	}
}

// runSharded launches the attempt with a snapshot of the shuffle
// backlog accumulated on the coordinator. Replaces run() sharded.
func (r *reduceTask) runSharded() {
	rt := r.job.rt
	if r.attempt > 0 {
		r.reseedSegments()
	}
	run := &reduceRun{
		rt:          rt,
		r:           r,
		job:         r.job,
		att:         r.attempt,
		node:        r.node,
		eng:         rt.cluster.NodeEngine(r.node.Index),
		pending:     append([]segment(nil), r.pending...),
		segsDone:    r.segsDone,
		expected:    r.expectedSegments(),
		allMapsDone: r.job.mapsDone == len(r.job.maps),
		inMem:       r.inMemoryShuffle(),
		rng:         rand.New(rand.NewSource(int64(r.job.seq)*1009 + int64(r.index))),
	}
	r.rrun = run
	r.pending = nil
	rt.toNode(run.node, func() { run.start() })
}

func (r *reduceTask) completeSharded(att int) {
	if r.attempt != att || r.state != taskRunning {
		return
	}
	r.rrun = nil
	r.finish()
}

func (rr *reduceRun) start() {
	rr.pumpFetchers()
	rr.maybeFinishShuffle()
}

// addSegment receives one map output partition forwarded by the
// coordinator (or snapshot at launch via pending).
func (rr *reduceRun) addSegment(seg segment) {
	if rr.cancelled {
		return
	}
	if seg.bytes <= 0 {
		rr.segsDone++ // trivially fetched
		rr.maybeFinishShuffle()
		return
	}
	rr.pending = append(rr.pending, seg)
	rr.pumpFetchers()
}

// markAllMapsDone is the coordinator's shuffle-barrier marker.
func (rr *reduceRun) markAllMapsDone() {
	if rr.cancelled {
		return
	}
	rr.allMapsDone = true
	rr.maybeFinishShuffle()
}

func (rr *reduceRun) pumpFetchers() {
	for rr.activeFetchers < rr.rt.cfg.ShuffleParallelism && len(rr.pending) > 0 {
		i := rr.rng.Intn(len(rr.pending))
		seg := rr.pending[i]
		rr.pending[i] = rr.pending[len(rr.pending)-1]
		rr.pending = rr.pending[:len(rr.pending)-1]
		rr.activeFetchers++
		rr.fetchSegment(seg, func() {
			if rr.cancelled {
				return // the attempt died; its node state is garbage
			}
			rr.activeFetchers--
			rr.segsDone++
			rr.fetchedBytes += seg.bytes
			rr.pumpFetchers()
			rr.maybeFinishShuffle()
		})
	}
}

// fetchSegment streams one segment source→destination: intermediate
// read on the source's shard, tagged network hop, local spill (unless
// the shuffle fits in memory). The chunk loop advances on the reduce's
// shard; the coordinator is not involved.
func (rr *reduceRun) fetchSegment(seg segment, done func()) {
	rt, node := rr.rt, rr.node
	alive := rr.alive
	chunkedOn(rr.eng, rt.cfg.ChunkBytes, seg.bytes, func(c float64, next func()) {
		land := func() {
			if rr.inMem {
				next()
				return
			}
			ioOn(node, rr.job.App, iosched.IntermediateWrite, c, alive(next))
		}
		if seg.srcNode == node {
			ioOn(node, rr.job.App, iosched.IntermediateRead, c, alive(land))
			return
		}
		src := seg.srcNode
		node.Shard().Post(src.Shard().ID(), 0, func() {
			ioOn(src, rr.job.App, iosched.IntermediateRead, c, func() {
				src.SendTaggedLocal(node, rr.job.App, c, alive(land))
			})
		})
	}, done)
}

// maybeFinishShuffle closes the shuffle once the marker has arrived
// and every expected segment is in, then merges, computes and writes
// replicated output — all node-local.
func (rr *reduceRun) maybeFinishShuffle() {
	if rr.finishing || rr.cancelled {
		return
	}
	if !rr.allMapsDone || rr.segsDone < rr.expected {
		return
	}
	rr.finishing = true
	// shuffleDoneTime is owned by the live attempt; the coordinator
	// only reads task timings after the fabric run completes.
	rr.r.shuffleDoneTime = rr.eng.Now()
	rt := rr.rt
	cpuPerByte := rr.job.Spec.ReduceCPUSecPerMB / 1e6
	alive := rr.alive
	merge := func(c float64, next func()) {
		rr.eng.Schedule(c*cpuPerByte, alive(next))
	}
	if !rr.inMem {
		merge = func(c float64, next func()) {
			ioOn(rr.node, rr.job.App, iosched.IntermediateRead, c, alive(func() {
				rr.eng.Schedule(c*cpuPerByte, alive(next))
			}))
		}
	}
	chunkedOn(rr.eng, rt.cfg.ChunkBytes, rr.fetchedBytes, merge, alive(func() {
		out := 0.0
		if n := rr.job.Spec.NumReduces; n > 0 {
			out = rr.job.Spec.OutputBytes / float64(n)
		}
		key := outputKey(rr.job.seq, keyKindReduce, rr.r.index, rr.att)
		writeReplicatedLocal(rt, rr.job, rr.node, rr.eng, out, key, alive, alive(func() {
			rr.node.Shard().Post(rt.coordShard.ID(), 0, func() {
				rr.r.completeSharded(rr.att)
			})
		}))
	}))
}

// writeReplicatedLocal is the node-local HDFS write pipeline: the
// replica set comes from keyed placement (a pure function — no
// namenode round trip), the local copy writes directly, and remote
// copies stream node-to-node with the window advancing on the writer's
// shard.
func writeReplicatedLocal(rt *Runtime, job *Job, n *cluster.Node, eng *sim.Engine, size float64, key uint64, alive func(func()) func(), done func()) {
	if size <= 0 {
		eng.Schedule(0, done)
		return
	}
	repl := rt.nn.Replication()
	if job.Spec.OutputReplication > 0 && job.Spec.OutputReplication < repl {
		repl = job.Spec.OutputReplication
	}
	replicas := rt.nn.PlaceOutputKeyed(n.Index, key)[:repl]
	myShard := n.Shard()
	windowedOn(eng, rt.cfg.ChunkBytes, size, rt.cfg.WriteAheadChunks, func(c float64, next func()) {
		remainingCopies := len(replicas)
		copyDone := alive(func() {
			remainingCopies--
			if remainingCopies == 0 {
				next()
			}
		})
		for _, idx := range replicas {
			target := rt.cluster.Nodes[idx]
			if target == n {
				ioOn(target, job.App, iosched.PersistentWrite, c, copyDone)
				continue
			}
			n.SendTaggedLocal(target, job.App, c, func() {
				ioOn(target, job.App, iosched.PersistentWrite, c, func() {
					target.Shard().Post(myShard.ID(), 0, copyDone)
				})
			})
		}
	}, done)
}

// cancelRun posts the cancel message for a preempted/restarted map
// attempt. Coordinator context only.
func (m *mapTask) cancelRun() {
	run := m.srun
	if run == nil {
		return
	}
	m.srun = nil
	m.job.rt.toNode(run.node, func() { run.cancelled = true })
}

// cancelRun posts the cancel message for a restarted reduce attempt.
func (r *reduceTask) cancelRun() {
	run := r.rrun
	if run == nil {
		return
	}
	r.rrun = nil
	r.job.rt.toNode(run.node, func() { run.cancelled = true })
}
