package mapreduce

import (
	"math/rand"

	"ibis/internal/cluster"
	"ibis/internal/dfs"
	"ibis/internal/iosched"
)

// taskState tracks a task through its lifecycle.
type taskState int

const (
	taskPending taskState = iota
	taskRunning
	taskDone
)

// mapTask reads one input split (or generates data), spills intermediate
// output to the local file system, and optionally writes direct output
// to the DFS (map-only jobs).
type mapTask struct {
	job   *Job
	index int
	// block is the input split; nil for generator jobs.
	block *dfs.Block
	// genOutBytes / genInterBytes size a generator map's work.
	genOutBytes   float64
	genInterBytes float64

	node  *cluster.Node
	state taskState
	// attempt invalidates in-flight callbacks of a preempted attempt:
	// every continuation checks it before making progress.
	attempt int
	// srun is the node-shard execution of the current attempt in
	// sharded mode (see sharded.go); nil single-engine or between
	// attempts.
	srun *mapRun

	startTime, endTime float64
}

// inputBytes returns the split size this map consumes.
func (m *mapTask) inputBytes() float64 {
	if m.block != nil {
		return m.block.Size
	}
	return m.genOutBytes + m.genInterBytes
}

// interBytes returns the intermediate output this map produces.
func (m *mapTask) interBytes() float64 {
	if m.block == nil {
		return m.genInterBytes
	}
	if m.job.Spec.InputBytes <= 0 {
		return 0
	}
	return m.job.Spec.MapOutputBytes * (m.block.Size / m.job.Spec.InputBytes)
}

// directOutBytes returns DFS output written by this map directly.
func (m *mapTask) directOutBytes() float64 {
	if m.block == nil {
		return m.genOutBytes
	}
	if m.job.Spec.InputBytes <= 0 {
		return 0
	}
	return m.job.Spec.DirectOutputBytes * (m.block.Size / m.job.Spec.InputBytes)
}

// localOn reports whether the map's input has a replica on node n.
func (m *mapTask) localOn(n *cluster.Node) bool {
	if m.block == nil {
		return true // generators have no input affinity
	}
	return m.block.HasReplicaOn(n.Index)
}

// run executes the map task on its assigned node. The phases are
// sequential within the task; concurrency comes from many tasks. Every
// continuation is guarded by the attempt token so a preempted attempt's
// in-flight callbacks die silently.
func (m *mapTask) run() {
	rt := m.job.rt
	if rt.sharded() {
		m.runSharded()
		return
	}
	att := m.attempt
	alive := func(fn func()) func() {
		return func() {
			if m.attempt == att && m.state == taskRunning {
				fn()
			}
		}
	}
	// Phase 1: consume the input split, alternating chunk reads with
	// computation. Generator maps only burn CPU here.
	m.consumeInput(alive, alive(func() {
		// Phase 2: spill intermediate output locally (write-behind).
		rt.windowed(m.interBytes(), rt.cfg.WriteAheadChunks, func(c float64, next func()) {
			m.job.submitIO(m.node, iosched.IntermediateWrite, c, alive(next))
		}, alive(func() {
			// Phase 3: direct DFS output (map-only jobs), replicated.
			m.job.writeReplicated(m.node, m.directOutBytes(), alive(func() {
				m.finish()
			}))
		}))
	}))
}

func (m *mapTask) consumeInput(alive func(func()) func(), done func()) {
	rt := m.job.rt
	cpuPerByte := m.job.Spec.MapCPUSecPerMB / 1e6
	if m.block == nil {
		// Generator: pure computation over the synthesized volume.
		rt.eng.Schedule(m.inputBytes()*cpuPerByte, done)
		return
	}
	local := m.block.HasReplicaOn(m.node.Index)
	node := m.node
	rt.chunked(m.block.Size, func(c float64, next func()) {
		afterRead := alive(func() {
			rt.eng.Schedule(c*cpuPerByte, alive(next))
		})
		if local {
			m.job.submitIO(node, iosched.PersistentRead, c, afterRead)
			return
		}
		// Remote read: serviced by a surviving replica node's HDFS
		// scheduler, then shipped over the network. A block with no
		// surviving replica fails the whole job.
		src := m.pickReplica(rt)
		if src == nil {
			m.preempt()
			m.job.fail()
			return
		}
		m.job.submitIO(src, iosched.PersistentRead, c, func() {
			src.SendTagged(node, m.job.App, c, afterRead)
		})
	}, done)
}

func (m *mapTask) finish() {
	m.state = taskDone
	m.endTime = m.job.rt.eng.Now()
	job := m.job
	job.rt.fair.release(m.node, job, job.Spec.MapMemGB)
	job.noteMapDone(m)
	job.rt.fair.pump()
}

// preempt kills a running map attempt: the slot is released and the task
// requeued from scratch, Fair Scheduler preemption semantics.
func (m *mapTask) preempt() {
	if m.state != taskRunning {
		return
	}
	m.cancelRun()
	job := m.job
	job.rt.fair.release(m.node, job, job.Spec.MapMemGB)
	m.attempt++
	m.state = taskPending
	m.node = nil
}

// segment is one map's partition of shuffle data destined for a reduce.
type segment struct {
	srcNode *cluster.Node
	bytes   float64
}

// reduceTask shuffles its partition from every map output, spills it
// locally, merges, computes, and writes replicated DFS output.
type reduceTask struct {
	job   *Job
	index int
	node  *cluster.Node
	state taskState

	pending        []segment
	activeFetchers int
	segsDone       int
	fetchedBytes   float64
	finishing      bool
	// attempt invalidates in-flight callbacks when the reduce restarts
	// after a node failure.
	attempt int
	// rng picks fetch order: each reduce pulls its backlog in a
	// different order (as Hadoop's shuffle does) so that parallel
	// reduces don't convoy on one source disk.
	rng *rand.Rand
	// rrun is the node-shard execution of the current attempt in
	// sharded mode (see sharded.go); nil single-engine or between
	// attempts.
	rrun *reduceRun

	startTime, shuffleDoneTime, endTime float64
}

// addSegment enqueues one map output partition; if the reduce is
// running, a fetcher may pick it up immediately.
func (r *reduceTask) addSegment(seg segment) {
	// Sharded: a running attempt owns its shuffle state on its node's
	// shard — forward the segment as a message. While the reduce waits
	// for a slot the coordinator accumulates the backlog below, and
	// runSharded snapshots it at launch.
	if rt := r.job.rt; rt.sharded() && r.state == taskRunning {
		if run := r.rrun; run != nil {
			rt.toNode(run.node, func() { run.addSegment(seg) })
		}
		return
	}
	// A restarted reduce waiting for a slot ignores pushes: it rebuilds
	// its whole queue from the surviving map outputs when it launches
	// (reseedSegments), so accepting pushes here would double-count.
	if r.attempt > 0 && r.state == taskPending {
		return
	}
	if seg.bytes <= 0 {
		r.segsDone++ // trivially fetched
		if r.state == taskRunning {
			r.maybeFinishShuffle()
		}
		return
	}
	r.pending = append(r.pending, seg)
	if r.state == taskRunning {
		r.pumpFetchers()
	}
}

// run starts the reduce: fetch whatever is already available and keep
// fetching as maps complete. A restarted attempt first rebuilds its
// segment queue from the surviving completed map outputs.
func (r *reduceTask) run() {
	if r.job.rt.sharded() {
		r.runSharded()
		return
	}
	if r.attempt > 0 {
		r.reseedSegments()
	}
	r.pumpFetchers()
	r.maybeFinishShuffle()
}

// pumpFetchers starts fetch streams up to the configured parallelism.
func (r *reduceTask) pumpFetchers() {
	rt := r.job.rt
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(int64(r.job.seq)*1009 + int64(r.index)))
	}
	att := r.attempt
	for r.activeFetchers < rt.cfg.ShuffleParallelism && len(r.pending) > 0 {
		i := r.rng.Intn(len(r.pending))
		seg := r.pending[i]
		r.pending[i] = r.pending[len(r.pending)-1]
		r.pending = r.pending[:len(r.pending)-1]
		r.activeFetchers++
		r.fetchSegment(seg, func() {
			if r.attempt != att || r.state != taskRunning {
				return // the attempt died with its node
			}
			r.activeFetchers--
			r.segsDone++
			r.fetchedBytes += seg.bytes
			r.pumpFetchers()
			r.maybeFinishShuffle()
		})
	}
}

// inMemoryShuffle reports whether this reduce's whole partition fits in
// the in-memory shuffle buffer (no spill write, no merge read-back).
func (r *reduceTask) inMemoryShuffle() bool {
	n := r.job.Spec.NumReduces
	if n <= 0 {
		return true
	}
	expected := r.job.Spec.MapOutputBytes / float64(n)
	return expected <= r.job.rt.cfg.ShuffleBufferBytes
}

// fetchSegment streams one segment: intermediate read at the source
// (the shuffle-serving I/O the NodeManager servlets perform), a network
// hop if remote, then a local spill write unless the whole partition
// fits in the shuffle buffer.
func (r *reduceTask) fetchSegment(seg segment, done func()) {
	rt := r.job.rt
	inMem := r.inMemoryShuffle()
	att := r.attempt
	node := r.node
	alive := func(fn func()) func() {
		return func() {
			if r.attempt == att && r.state == taskRunning {
				fn()
			}
		}
	}
	rt.chunked(seg.bytes, func(c float64, next func()) {
		land := func() {
			if inMem {
				next()
				return
			}
			r.job.submitIO(node, iosched.IntermediateWrite, c, alive(next))
		}
		r.job.submitIO(seg.srcNode, iosched.IntermediateRead, c, alive(func() {
			if seg.srcNode == node {
				land()
				return
			}
			seg.srcNode.SendTagged(node, r.job.App, c, land)
		}))
	}, done)
}

// expectedSegments returns how many map partitions this reduce must
// collect: one per map when the job shuffles at all, none otherwise.
func (r *reduceTask) expectedSegments() int {
	if r.job.Spec.MapOutputBytes <= 0 {
		return 0
	}
	return len(r.job.maps)
}

// maybeFinishShuffle transitions to merge/compute/output once every
// map's partition has been collected.
func (r *reduceTask) maybeFinishShuffle() {
	if r.finishing || r.state != taskRunning {
		return
	}
	if r.job.mapsDone < len(r.job.maps) || r.segsDone < r.expectedSegments() {
		return
	}
	r.finishing = true
	rt := r.job.rt
	r.shuffleDoneTime = rt.eng.Now()
	cpuPerByte := r.job.Spec.ReduceCPUSecPerMB / 1e6
	att := r.attempt
	node := r.node
	alive := func(fn func()) func() {
		return func() {
			if r.attempt == att && r.state == taskRunning {
				fn()
			}
		}
	}
	// Merge: read back spilled shuffle data (skipped for in-memory
	// merges), interleaved with the reduce computation.
	merge := func(c float64, next func()) {
		rt.eng.Schedule(c*cpuPerByte, alive(next))
	}
	if !r.inMemoryShuffle() {
		merge = func(c float64, next func()) {
			r.job.submitIO(node, iosched.IntermediateRead, c, alive(func() {
				rt.eng.Schedule(c*cpuPerByte, alive(next))
			}))
		}
	}
	rt.chunked(r.fetchedBytes, merge, alive(func() {
		out := 0.0
		if n := r.job.Spec.NumReduces; n > 0 {
			out = r.job.Spec.OutputBytes / float64(n)
		}
		r.job.writeReplicated(node, out, alive(r.finish))
	}))
}

func (r *reduceTask) finish() {
	r.state = taskDone
	r.endTime = r.job.rt.eng.Now()
	job := r.job
	job.rt.fair.releaseReduce(r.node, job, job.Spec.ReduceMemGB)
	job.noteReduceDone()
	job.rt.fair.pump()
}

// writeReplicated writes size bytes of DFS output from node n with the
// job's replication factor: the first copy lands on the local HDFS
// disk, the rest stream through the network to remote datanodes'
// HDFS schedulers — the HDFS write pipeline.
func (j *Job) writeReplicated(n *cluster.Node, size float64, done func()) {
	rt := j.rt
	if size <= 0 {
		rt.eng.Schedule(0, done)
		return
	}
	repl := rt.nn.Replication()
	if j.Spec.OutputReplication > 0 && j.Spec.OutputReplication < repl {
		repl = j.Spec.OutputReplication
	}
	replicas := rt.nn.PlaceOutput(n.Index)[:repl]
	// Replicas placed on dead nodes are dropped (the namenode would
	// re-replicate later; the write pipeline just skips them).
	aliveReplicas := replicas[:0]
	for _, idx := range replicas {
		if !rt.cluster.Nodes[idx].Dead {
			aliveReplicas = append(aliveReplicas, idx)
		}
	}
	replicas = aliveReplicas
	if len(replicas) == 0 {
		replicas = []int{n.Index}
	}
	rt.windowed(size, rt.cfg.WriteAheadChunks, func(c float64, next func()) {
		remainingCopies := len(replicas)
		copyDone := func() {
			remainingCopies--
			if remainingCopies == 0 {
				next()
			}
		}
		for _, idx := range replicas {
			target := rt.cluster.Nodes[idx]
			if target == n {
				j.submitIO(target, iosched.PersistentWrite, c, copyDone)
			} else {
				n.SendTagged(target, j.App, c, func() {
					j.submitIO(target, iosched.PersistentWrite, c, copyDone)
				})
			}
		}
	}, done)
}

// pickReplica returns a surviving replica node for the map's block,
// rotating by task index to spread remote-read load, or nil when every
// replica is gone (unrecoverable data loss).
func (m *mapTask) pickReplica(rt *Runtime) *cluster.Node {
	reps := m.block.Replicas
	for k := 0; k < len(reps); k++ {
		cand := rt.cluster.Nodes[reps[(m.index+k)%len(reps)]]
		if !cand.Dead {
			return cand
		}
	}
	return nil
}
