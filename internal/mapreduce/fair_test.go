package mapreduce

import (
	"testing"

	"ibis/internal/cluster"
)

func TestPreemptionRebalances(t *testing.T) {
	h := newHarness(t, cluster.Native, 4)
	long := JobSpec{
		Name: "hog", Weight: 1,
		NumMaps: 64, DirectOutputBytes: 0, MapCPUSecPerMB: 0,
	}
	// Give each generator map a long CPU body so the hog holds slots.
	long.DirectOutputBytes = 64 * 1e6
	long.MapCPUSecPerMB = 1 // 1 s per MB → 1 s per map
	hog, _ := h.rt.Submit(long, 0)

	late := long
	late.Name = "late"
	victim, _ := h.rt.Submit(late, 2)

	h.eng.Run()
	if !hog.Done() || !victim.Done() {
		t.Fatal("jobs did not finish")
	}
	if h.rt.fair.Preempted() == 0 {
		t.Skip("no preemption was necessary (tasks drained fast enough)")
	}
}

func TestPreemptionDisabled(t *testing.T) {
	h := newHarness(t, cluster.Native, 2)
	rt2 := NewRuntime(h.eng, h.cl, h.nn, Config{DisablePreemption: true})
	spec := JobSpec{Name: "j", Weight: 1, NumMaps: 4, DirectOutputBytes: 16e6}
	job, err := rt2.Submit(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.eng.Run()
	if !job.Done() {
		t.Fatal("job did not finish with preemption disabled")
	}
	if rt2.fair.Preempted() != 0 {
		t.Fatal("preemption fired while disabled")
	}
}

func TestPreemptedMapRestartsCleanly(t *testing.T) {
	h := newHarness(t, cluster.Native, 2)
	// A job whose maps take long enough that a forced preemption mid-
	// flight exercises the attempt-token guards.
	spec := JobSpec{
		Name: "p", Weight: 1,
		InputBytes:     64e6,
		MapOutputBytes: 64e6,
		NumReduces:     1,
		OutputBytes:    1e6,
		MapCPUSecPerMB: 0.05,
	}
	job, _ := h.rt.Submit(spec, 0)
	// Forcefully preempt the first running map shortly after start.
	h.eng.Schedule(0.5, func() {
		for _, m := range job.maps {
			if m.state == taskRunning {
				m.preempt()
				h.rt.fair.pump()
				break
			}
		}
	})
	h.eng.Run()
	if !job.Done() {
		t.Fatal("job did not recover from preemption")
	}
	for _, m := range job.maps {
		if m.state != taskDone {
			t.Fatal("map left unfinished")
		}
	}
}

func TestFairShareComputation(t *testing.T) {
	h := newHarness(t, cluster.Native, 4) // 16 cores
	a := JobSpec{Name: "a", Weight: 1, CPUWeight: 3, NumMaps: 100, DirectOutputBytes: 100e6, MapCPUSecPerMB: 10}
	b := JobSpec{Name: "b", Weight: 1, CPUWeight: 1, NumMaps: 100, DirectOutputBytes: 100e6, MapCPUSecPerMB: 10}
	ja, _ := h.rt.Submit(a, 0)
	jb, _ := h.rt.Submit(b, 0)
	h.eng.Schedule(0.1, func() {
		shares := h.rt.fair.fairShare()
		if shares[ja] != 12 || shares[jb] != 4 {
			t.Errorf("shares = %d/%d, want 12/4 for 3:1 weights on 16 cores", shares[ja], shares[jb])
		}
		h.eng.Halt()
	})
	h.eng.Run()
}

func TestFairShareQuotaCap(t *testing.T) {
	h := newHarness(t, cluster.Native, 4)
	a := JobSpec{Name: "a", Weight: 1, CPUQuota: 2, NumMaps: 50, DirectOutputBytes: 50e6, MapCPUSecPerMB: 10}
	ja, _ := h.rt.Submit(a, 0)
	h.eng.Schedule(0.1, func() {
		shares := h.rt.fair.fairShare()
		if shares[ja] != 2 {
			t.Errorf("share = %d, want quota cap 2", shares[ja])
		}
		h.eng.Halt()
	})
	h.eng.Run()
}

func TestFairShareDemandCap(t *testing.T) {
	h := newHarness(t, cluster.Native, 4)
	a := JobSpec{Name: "a", Weight: 1, NumMaps: 3, DirectOutputBytes: 3e6, MapCPUSecPerMB: 10}
	ja, _ := h.rt.Submit(a, 0)
	h.eng.Schedule(0.1, func() {
		shares := h.rt.fair.fairShare()
		if shares[ja] != 3 {
			t.Errorf("share = %d, want demand cap 3", shares[ja])
		}
		h.eng.Halt()
	})
	h.eng.Run()
}
