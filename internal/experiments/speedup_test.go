package experiments

import (
	"runtime"
	"testing"
	"time"
)

// TestParallelSpeedupGate is the multi-core CI gate on the sharded
// fabric's wall-clock scaling. After the DESIGN.md §14 decomposition
// the coordinator shard holds ~1.6% of events on the Fig03-class
// co-run, so the Amdahl bound no longer binds at pool sizes CI uses;
// what remains is dispatch overhead, and this gate catches it growing
// back. Wall-clock speedup is a property of the host, so the gate
// skips — loudly, with the reason in the log — on boxes that cannot
// express parallelism (GOMAXPROCS < 4): there it would only measure
// scheduler churn. Single-core numbers are still recorded honestly in
// BENCH_2026-08-09_parallel.json.
func TestParallelSpeedupGate(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup gate needs full-length runs; skipped under -short")
	}
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		t.Skipf("speedup gate skipped: GOMAXPROCS=%d < 4 — wall-clock speedup "+
			"needs real cores; digest equality is still enforced by "+
			"TestShardedDeterminismAcrossWorkers", procs)
	}
	workers := procs
	if workers > 8 {
		workers = 8
	}
	// Two timed runs per configuration, keep the faster: one warm-up
	// damps allocator and cache noise on shared CI runners.
	timeIt := func(w int) (time.Duration, ShardsRow) {
		best := time.Duration(0)
		var row ShardsRow
		for i := 0; i < 2; i++ {
			start := time.Now()
			r, err := ShardsOnce(DefaultScale, w)
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			if r.Violations != 0 {
				t.Fatalf("workers=%d: %d audit violations", w, r.Violations)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
			row = r
		}
		return best, row
	}
	serial, srow := timeIt(1)
	parallel, prow := timeIt(workers)
	if srow.Digest != prow.Digest {
		t.Fatalf("digest diverged: workers=1 %s vs workers=%d %s", srow.Digest, workers, prow.Digest)
	}
	speedup := float64(serial) / float64(parallel)
	t.Logf("gomaxprocs=%d workers=%d serial=%v parallel=%v speedup=%.2fx coord-event-frac=%.4f",
		procs, workers, serial, parallel, speedup, prow.ShardLoad.CoordEventFraction())

	// Thresholds are deliberately below the ideal curve: CI runners are
	// shared and the profile has real barrier costs. They exist to
	// catch the serial section growing back (speedup collapsing toward
	// 1), not to benchmark the runner.
	min := 1.8
	if procs >= 8 {
		min = 3.0
	}
	if speedup < min {
		t.Fatalf("speedup %.2fx at %d workers (gomaxprocs=%d), want >= %.1fx — "+
			"has the coordinator's serial share grown back? (coord-event-frac=%.4f)",
			speedup, workers, procs, min, prow.ShardLoad.CoordEventFraction())
	}
}
