package experiments

import (
	"math"
	"testing"

	"ibis/internal/cluster"
	"ibis/internal/faults"
)

// TestFaultMatrix is the acceptance check for the fault-tolerant
// coordination plane: local proportional sharing is preserved during a
// 20-period broker outage, the cluster reconverges to total-service
// sharing within the K=5-period recovery grace, and the whole run is
// audit-clean with the expected regime switches.
func TestFaultMatrix(t *testing.T) {
	res, err := FaultMatrix()
	if err != nil {
		t.Fatal(err)
	}
	rows := make(map[string]FaultMatrixRow, len(res.Rows))
	for _, row := range res.Rows {
		rows[row.Scenario] = row
		if row.Violations != 0 {
			t.Errorf("%s: %d audit violations, want 0", row.Scenario, row.Violations)
		}
		if math.IsInf(row.Pre, 1) || math.IsInf(row.During, 1) || math.IsInf(row.Post, 1) {
			t.Errorf("%s: narrow app starved in some phase (pre=%v during=%v post=%v)",
				row.Scenario, row.Pre, row.During, row.Post)
		}
	}

	base := rows["baseline"]
	if base.Health.Failures != 0 || base.Health.Degradations != 0 {
		t.Errorf("baseline: unexpected failures (%+v)", base.Health)
	}
	if base.Pre < 2.5 || base.Pre > 4 || base.Post < 2.5 || base.Post > 4 {
		t.Errorf("baseline: coordinated ratio out of band: pre=%.2f post=%.2f", base.Pre, base.Post)
	}
	if base.TotalChecks == 0 || base.TotalSkipped != 0 {
		t.Errorf("baseline: total-share checks=%d skipped=%d, want >0 and 0", base.TotalChecks, base.TotalSkipped)
	}

	out := rows["outage"]
	// All 16 clients degrade during the [20,40) blackout and recover.
	if out.Health.Degradations != 16 || out.Health.Recoveries != 16 {
		t.Errorf("outage: degradations=%d recoveries=%d, want 16/16", out.Health.Degradations, out.Health.Recoveries)
	}
	// During the outage the schedulers fall back to pure local 3:1
	// fairness: wide/narrow ≈ 15 on this topology.
	if out.During < 10 {
		t.Errorf("outage: during-ratio %.2f, want ≥10 (local-only fairness)", out.During)
	}
	// Reconvergence: after the K=5-period grace the ratio is back at
	// the coordinated target and the re-engaged total-share check
	// passed (Violations == 0 above covers the "passed" half).
	if out.Post > 4 {
		t.Errorf("outage: post-ratio %.2f, want ≤4 (reconverged)", out.Post)
	}
	if out.DegradedChecks == 0 {
		t.Error("outage: degraded-window local share never checked")
	}
	if out.TotalSkipped == 0 || out.TotalChecks == 0 {
		t.Errorf("outage: total-share skipped=%d checked=%d, want both >0", out.TotalSkipped, out.TotalChecks)
	}

	part := rows["partition"]
	// Only the partitioned node's two clients degrade.
	if part.Health.Degradations != 2 || part.Health.Recoveries != 2 {
		t.Errorf("partition: degradations=%d recoveries=%d, want 2/2", part.Health.Degradations, part.Health.Recoveries)
	}
	if part.During <= part.Pre {
		t.Errorf("partition: during-ratio %.2f not above pre %.2f", part.During, part.Pre)
	}
	if part.Post > 4 {
		t.Errorf("partition: post-ratio %.2f, want ≤4", part.Post)
	}

	loss := rows["loss"]
	// Bounded retries absorb the message loss: coordination holds.
	if loss.Health.Retries == 0 {
		t.Error("loss: no retries recorded under 25% drop probability")
	}
	for ph, r := range map[string]float64{"pre": loss.Pre, "during": loss.During, "post": loss.Post} {
		if r > 4.5 {
			t.Errorf("loss: %s-ratio %.2f, want ≤4.5 (retries should hold coordination)", ph, r)
		}
	}

	rst := rows["restart"]
	if rst.Health.Restarts != 2 || rst.Health.ReRegisters != 2 {
		t.Errorf("restart: restarts=%d reregisters=%d, want 2/2", rst.Health.Restarts, rst.Health.ReRegisters)
	}
	if rst.Post > 4 {
		t.Errorf("restart: post-ratio %.2f, want ≤4", rst.Post)
	}
}

// TestFaultCustom exercises the flag-driven entry point.
func TestFaultCustom(t *testing.T) {
	res, err := FaultCustom(faults.Spec{
		Seed:    9,
		Outages: []faults.Window{{Start: 10, End: 15}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	row := res.Rows[0]
	if row.Violations != 0 {
		t.Errorf("custom: %d violations, want 0", row.Violations)
	}
	if row.Health.Degradations == 0 {
		t.Error("custom: outage produced no degradations")
	}
}

// TestFaultRunDeterminism re-runs a mixed scenario and demands an
// identical outcome: same event count, same service totals, same
// health counters.
func TestFaultRunDeterminism(t *testing.T) {
	spec := &faults.Spec{
		Seed:     7,
		Outages:  []faults.Window{{Start: 12, End: 18}},
		DropProb: 0.2, DelayProb: 0.4, DelayMax: 0.3,
	}
	run := func() FaultMatrixRow {
		row, err := faultRun(FaultScenario{Name: "det", Policy: cluster.SFQD, Spec: spec}, 8)
		if err != nil {
			t.Fatal(err)
		}
		return row
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("non-deterministic fault run:\n a=%+v\n b=%+v", a, b)
	}
}
