package experiments

import (
	"math"
	"testing"
)

func TestAblationWriteAheadMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	res, err := AblationWriteAhead(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Deeper client pipelines must not reduce native interference.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].WCSlowdown < res.Rows[i-1].WCSlowdown-0.02 {
			t.Fatalf("interference not monotone in window: %+v", res.Rows)
		}
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestAblationLrefTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	res, err := AblationLref(testScale)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	// Small Lref: best isolation, worst utilization — and vice versa.
	if first.WCSlowdown > last.WCSlowdown {
		t.Fatalf("isolation did not improve with smaller Lref: %+v", res.Rows)
	}
	if first.Throughput > last.Throughput {
		t.Fatalf("utilization did not improve with larger Lref: %+v", res.Rows)
	}
	// Mean depth must grow with Lref.
	if first.Extra >= last.Extra {
		t.Fatalf("mean depth did not grow with Lref: %v vs %v", first.Extra, last.Extra)
	}
}

func TestAblationGainRobust(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	res, err := AblationGain(testScale)
	if err != nil {
		t.Fatal(err)
	}
	// Across two decades of gain, isolation stays within a factor ~3.
	lo, hi := math.Inf(1), 0.0
	for _, row := range res.Rows {
		if row.WCSlowdown < lo {
			lo = row.WCSlowdown
		}
		if row.WCSlowdown > hi {
			hi = row.WCSlowdown
		}
	}
	if hi > 3*lo+0.3 {
		t.Fatalf("controller outcome too gain-sensitive: [%v, %v]", lo, hi)
	}
}

func TestAblationCoordPeriodTradeoff(t *testing.T) {
	res, err := AblationCoordPeriod()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		// Longer periods: fewer exchanges, worse (higher) service ratio.
		if res.Rows[i].Exchanges >= res.Rows[i-1].Exchanges {
			t.Fatalf("exchanges not decreasing with period: %+v", res.Rows)
		}
		if res.Rows[i].ServiceRatio < res.Rows[i-1].ServiceRatio-0.05 {
			t.Fatalf("fairness improved with a longer period?! %+v", res.Rows)
		}
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestExtSpectrumShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	res, err := ExtSpectrum(testScale)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]SpectrumRow{}
	for _, r := range res.Rows {
		rows[r.Policy] = r
	}
	// Native: best throughput, worst isolation. Reservation: strong
	// isolation, worst throughput. SFQ(D2): work-conserving middle.
	if rows["reservation"].Throughput >= rows["sfq(d2)"].Throughput {
		t.Fatalf("reservation should waste bandwidth: %+v", rows)
	}
	if rows["native"].WCSlowdown <= rows["sfq(d2)"].WCSlowdown {
		t.Fatalf("native should isolate worst: %+v", rows)
	}
	if rows["reservation"].WCSlowdown > rows["native"].WCSlowdown/2 {
		t.Fatalf("reservation isolation too weak: %+v", rows)
	}
}

func TestExtNetworkSched(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	res, err := ExtNetworkSched(testScale)
	if err != nil {
		t.Fatal(err)
	}
	// NIC scheduling must not make the favored app worse.
	if res.WithNetSched > res.StorageOnly+0.05 {
		t.Fatalf("NIC scheduling hurt the favored app: %.2f vs %.2f",
			res.WithNetSched, res.StorageOnly)
	}
}

func TestExtTeraSortSweepScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	res, err := ExtTeraSortSweep(testScale)
	if err != nil {
		t.Fatal(err)
	}
	// Runtime grows with input; the rate stays within ±30% across the
	// sweep (near-linear scaling).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Runtime <= res.Rows[i-1].Runtime {
			t.Fatalf("runtime not increasing: %+v", res.Rows)
		}
	}
	base := res.Rows[0].MBPerSec
	for _, row := range res.Rows {
		if math.Abs(row.MBPerSec-base)/base > 0.3 {
			t.Fatalf("sort rate drifted: %+v", res.Rows)
		}
	}
}

func TestExtSSDPromotion(t *testing.T) {
	res, err := ExtSSDPromotion()
	if err != nil {
		t.Fatal(err)
	}
	// The read-latency minimum must sit at a small depth (the
	// promotion effect), and reads get a larger share at low depth.
	minIdx := 0
	for i, row := range res.Rows {
		if row.ReadLatencyMS < res.Rows[minIdx].ReadLatencyMS {
			minIdx = i
		}
	}
	if res.Rows[minIdx].Depth > 4 {
		t.Fatalf("read latency minimized at depth %d, want small depth: %+v", res.Rows[minIdx].Depth, res.Rows)
	}
	if res.Rows[0].ReadMBps <= res.Rows[len(res.Rows)-1].ReadMBps {
		t.Fatalf("reads did not gain share at low depth: %+v", res.Rows)
	}
}

func TestExtScalability(t *testing.T) {
	res, err := ExtScalability()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// Fairness holds at every size (optimum ≈3 for the 1/4-presence
		// micro).
		if row.ServiceRatio > 4 {
			t.Fatalf("fairness degraded at %d nodes: %.2f", row.Nodes, row.ServiceRatio)
		}
	}
	// Traffic linear in node count.
	if res.Rows[len(res.Rows)-1].Exchanges != res.Rows[0].Exchanges*uint64(res.Rows[len(res.Rows)-1].Nodes)/uint64(res.Rows[0].Nodes) {
		t.Fatalf("broker traffic not linear: %+v", res.Rows)
	}
}
