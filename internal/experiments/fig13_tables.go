package experiments

import (
	"fmt"
	"strings"

	"ibis/internal/cluster"
	"ibis/internal/metrics"
)

// Fig13Row is one application's interposition overhead.
type Fig13Row struct {
	App           string
	NativeRuntime float64
	IBISRuntime   float64
	Overhead      float64
	PaperOverhead float64
}

// Fig13Result reproduces Figure 13: the runtime overhead of IBIS
// interposition and scheduling when each benchmark runs alone with all
// 96 cores.
type Fig13Result struct {
	Scale float64
	Rows  []Fig13Row
}

// Fig13 measures standalone native-vs-IBIS runtimes.
func Fig13(scale float64) (*Fig13Result, error) {
	out := &Fig13Result{Scale: scale}
	apps := []struct {
		name  string
		entry Entry
		paper float64
	}{
		{"wordcount", fullCores(wordCount(scale, 1)), 0.01},
		{"teragen", fullCores(teraGen(scale, 1)), 0.02},
		{"terasort", fullCores(teraSort(scale, 1)), 0.04},
	}
	for _, a := range apps {
		nat, err := standalone(Options{Scale: scale, Policy: cluster.Native}, a.entry)
		if err != nil {
			return nil, err
		}
		ibis, err := standalone(Options{Scale: scale, Policy: cluster.SFQD2, Coordinate: true}, a.entry)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Fig13Row{
			App:           a.name,
			NativeRuntime: nat.Runtime(),
			IBISRuntime:   ibis.Runtime(),
			Overhead:      metrics.Slowdown(ibis.Runtime(), nat.Runtime()),
			PaperOverhead: a.paper,
		})
	}
	return out, nil
}

// String renders the overhead table.
func (r *Fig13Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13: IBIS interposition overhead, each app alone with all cores (scale %.3g)\n", r.Scale)
	fmt.Fprintf(&b, "  %-11s %11s %10s %10s %8s\n", "app", "native(s)", "ibis(s)", "overhead", "paper")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-11s %11.1f %10.1f %9.1f%% %7.0f%%\n",
			row.App, row.NativeRuntime, row.IBISRuntime, row.Overhead*100, row.PaperOverhead*100)
	}
	return b.String()
}

// Table2Row is one resource-usage measurement of the scheduling
// machinery (the simulator's proxy for daemon CPU/memory usage:
// scheduler tag operations, broker traffic, and event counts, all
// normalized per second of virtual time).
type Table2Row struct {
	App             string
	Policy          string
	EventsPerSec    float64
	BrokerExchanges uint64
	BrokerBytes     uint64
}

// Table2Result approximates Table 2: the coordination and scheduling
// machinery's resource overhead is small and bounded.
type Table2Result struct {
	Scale float64
	Rows  []Table2Row
}

// Table2 runs each benchmark alone under native and IBIS and reports
// the bookkeeping costs.
func Table2(scale float64) (*Table2Result, error) {
	out := &Table2Result{Scale: scale}
	apps := []struct {
		name  string
		entry Entry
	}{
		{"wordcount", fullCores(wordCount(scale, 1))},
		{"teragen", fullCores(teraGen(scale, 1))},
		{"terasort", fullCores(teraSort(scale, 1))},
	}
	for _, a := range apps {
		for _, pol := range []cluster.Policy{cluster.Native, cluster.SFQD2} {
			res, err := Run(Options{
				Scale: scale, Policy: pol,
				Coordinate: pol == cluster.SFQD2,
			}, []Entry{a.entry})
			if err != nil {
				return nil, err
			}
			row := Table2Row{
				App:             a.name,
				Policy:          pol.String(),
				BrokerExchanges: res.BrokerExchanges,
				BrokerBytes:     res.BrokerExchanges * 48, // ≈2 entries/exchange
			}
			if res.Duration > 0 {
				row.EventsPerSec = float64(res.EventsFired) / res.Duration
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// String renders the proxy table.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 (proxy): scheduling machinery overhead (scale %.3g)\n", r.Scale)
	fmt.Fprintf(&b, "  %-11s %-9s %14s %12s %12s\n", "app", "policy", "events/sim-s", "broker-msgs", "broker-bytes")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-11s %-9s %14.0f %12d %12d\n",
			row.App, row.Policy, row.EventsPerSec, row.BrokerExchanges, row.BrokerBytes)
	}
	b.WriteString("  (paper: IBIS daemons add <5% CPU and <11% memory; here the proxy is\n")
	b.WriteString("   bounded broker traffic and a modest event-rate increase under IBIS)\n")
	return b.String()
}
