package experiments

import (
	"testing"

	"ibis/internal/cluster"
	"ibis/internal/dfs"
	"ibis/internal/mapreduce"
	"ibis/internal/sim"
	"ibis/internal/storage"
	"ibis/internal/workloads"
)

func TestDebugFacebookStandalone(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	scale := 0.125
	jobs := workloads.FacebookWorkload(workloads.FacebookConfig{
		Seed: 2009, ScaleBytes: scale, Weight: 1, MeanInterarrival: 6,
	})
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{
		CoresPerNode: 6, MemGBPerNode: 12,
		HDFSDisk: storage.HDDSpec(), LocalDisk: storage.HDDSpec(),
		Policy: cluster.Native,
	})
	if err != nil {
		t.Fatal(err)
	}
	nn := dfs.NewNamenode(dfs.Config{Nodes: 8, BlockSize: dfs.DefaultBlockSize * scale, Seed: 0})
	rt := mapreduce.NewRuntime(eng, cl, nn, mapreduce.Config{ChunkBytes: 2e6, ShuffleBufferBytes: 2e9 * scale})
	var hs []*mapreduce.Job
	for _, j := range jobs {
		h, err := rt.Submit(j.Spec, j.Arrival)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	end := eng.Run()
	t.Logf("sim ended at %.1f, live=%d pending-events=%d", end, eng.Live(), eng.Pending())
	for _, h := range hs {
		if !h.Done() {
			t.Errorf("job %s stuck: state=%v maps %d/%d reduces %d/%d usedCores=%d",
				h.App, h.State(), h.MapsDone(), h.NumMaps(), h.ReducesDone(), h.NumReduces(), h.UsedCores())
		}
	}
	for i, n := range cl.Nodes {
		t.Logf("node %d: cores %d/%d mem %.0f/%.0f", i, n.UsedCores, n.Cores, n.UsedMemGB, n.MemGB)
	}
}
