package experiments

import (
	"fmt"
	"strings"

	"ibis/internal/cluster"
	"ibis/internal/iosched"
	"ibis/internal/metrics"
)

// isolationWeightWC is the WordCount:TeraGen sharing ratio used in the
// isolation experiments (32:1 favoring WordCount).
const isolationWeightWC = 32

// Fig06Row is one configuration of the WordCount-vs-TeraGen isolation
// study.
type Fig06Row struct {
	Config         string
	WCRuntime      float64
	Slowdown       float64
	PaperSlowdown  float64
	Throughput     float64 // total MB/s over the run
	ThroughputLoss float64 // vs native
	PaperTputLoss  float64
}

// Fig06Result reproduces Figures 6a and 6b (HDD) — and with SSD=true,
// Figures 8a and 8b.
type Fig06Result struct {
	Scale        float64
	SSD          bool
	StandaloneWC float64
	Rows         []Fig06Row
}

type isolationConfig struct {
	name          string
	policy        cluster.Policy
	depth         int
	paperSlow     float64
	paperTputLoss float64
}

// Fig06 runs the isolation sweep on HDDs: native, SFQ(D) at four
// depths, and SFQ(D2), all with a 32:1 weight favoring WordCount.
func Fig06(scale float64) (*Fig06Result, error) {
	configs := []isolationConfig{
		{"native", cluster.Native, 0, 1.07, 0},
		{"sfq(d=12)", cluster.SFQD, 12, 0.86, -0.11},
		{"sfq(d=8)", cluster.SFQD, 8, 0.52, -0.10},
		{"sfq(d=4)", cluster.SFQD, 4, 0.14, -0.13},
		{"sfq(d=2)", cluster.SFQD, 2, 0.13, -0.20},
		{"sfq(d2)", cluster.SFQD2, 0, 0.08, -0.04},
	}
	return isolationSweep(scale, false, configs)
}

// Fig08 repeats the isolation experiment on the SSD setup (native and
// SFQ(D2) only, as in Figures 8a/8b).
func Fig08(scale float64) (*Fig06Result, error) {
	configs := []isolationConfig{
		{"native", cluster.Native, 0, 0.50, 0},
		{"sfq(d2)", cluster.SFQD2, 0, -0.05, 0.02},
	}
	return isolationSweep(scale, true, configs)
}

func isolationSweep(scale float64, ssd bool, configs []isolationConfig) (*Fig06Result, error) {
	baseOpts := Options{Scale: scale, SSD: ssd, Policy: cluster.Native}
	sa, err := standalone(baseOpts, wordCount(scale, 1))
	if err != nil {
		return nil, err
	}
	out := &Fig06Result{Scale: scale, SSD: ssd, StandaloneWC: sa.Runtime()}

	nativeTput := 0.0
	for _, cfg := range configs {
		opts := Options{Scale: scale, SSD: ssd, Policy: cfg.policy, SFQDepth: cfg.depth}
		res, err := Run(opts, []Entry{
			wordCount(scale, isolationWeightWC),
			teraGen(scale, 1),
		})
		if err != nil {
			return nil, err
		}
		wc := res.JobResult("wordcount")
		tput := res.MeanThroughput() / 1e6
		if cfg.policy == cluster.Native {
			nativeTput = tput
		}
		loss := 0.0
		if nativeTput > 0 {
			loss = tput/nativeTput - 1
		}
		out.Rows = append(out.Rows, Fig06Row{
			Config:         cfg.name,
			WCRuntime:      wc.Runtime(),
			Slowdown:       metrics.Slowdown(wc.Runtime(), sa.Runtime()),
			PaperSlowdown:  cfg.paperSlow,
			Throughput:     tput,
			ThroughputLoss: loss,
			PaperTputLoss:  cfg.paperTputLoss,
		})
	}
	return out, nil
}

// String renders both panels of the figure.
func (r *Fig06Result) String() string {
	figure := "6"
	if r.SSD {
		figure = "8"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %sa/%sb: WordCount vs TeraGen isolation, %s, weights %d:1 (scale %.3g)\n",
		figure, figure, map[bool]string{false: "HDD", true: "SSD"}[r.SSD], isolationWeightWC, r.Scale)
	fmt.Fprintf(&b, "  standalone WordCount runtime: %.1f s\n", r.StandaloneWC)
	fmt.Fprintf(&b, "  %-11s %10s %9s %9s %12s %9s %9s\n",
		"config", "wc(s)", "slow", "paper", "tput(MB/s)", "loss", "paper")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-11s %10.1f %8.0f%% %8.0f%% %12.1f %8.0f%% %8.0f%%\n",
			row.Config, row.WCRuntime, row.Slowdown*100, row.PaperSlowdown*100,
			row.Throughput, row.ThroughputLoss*100, row.PaperTputLoss*100)
	}
	return b.String()
}

// Fig07Result reproduces Figure 7: the SFQ(D2) depth/latency adaptation
// trace on one datanode during the WordCount-vs-TeraGen run.
type Fig07Result struct {
	Scale float64
	Trace []iosched.TracePoint
}

// Fig07 captures the controller trace from node 0's HDFS scheduler.
func Fig07(scale float64) (*Fig07Result, error) {
	res, err := Run(Options{
		Scale:             scale,
		Policy:            cluster.SFQD2,
		CaptureDepthTrace: true,
	}, []Entry{
		wordCount(scale, isolationWeightWC),
		teraGen(scale, 1),
	})
	if err != nil {
		return nil, err
	}
	return &Fig07Result{Scale: scale, Trace: res.DepthTrace}, nil
}

// DepthRange returns the min and max depth over the busy portion of the
// trace.
func (r *Fig07Result) DepthRange() (lo, hi int) {
	lo, hi = 1<<30, 0
	for _, p := range r.Trace {
		if p.Samples == 0 {
			continue
		}
		if p.Depth < lo {
			lo = p.Depth
		}
		if p.Depth > hi {
			hi = p.Depth
		}
	}
	if hi == 0 {
		lo = 0
	}
	return lo, hi
}

// ControllerDips counts the depth collapses of Figure 7: busy periods
// where D fell to ≤2 right after operating at ≥5 — the controller's
// timely reaction to write-back flushes and load bursts (the reaction
// itself suppresses the latency spike, so the dip is the fingerprint).
func (r *Fig07Result) ControllerDips() int {
	dips := 0
	prevDepth := 0
	for _, p := range r.Trace {
		if p.Samples == 0 {
			continue
		}
		if p.Depth <= 2 && prevDepth >= 5 {
			dips++
		}
		prevDepth = p.Depth
	}
	return dips
}

// String summarizes the trace.
func (r *Fig07Result) String() string {
	lo, hi := r.DepthRange()
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: SFQ(D2) adaptation on one datanode (scale %.3g)\n", r.Scale)
	fmt.Fprintf(&b, "  periods=%d depth-range=[%d,%d] controller-dips=%d\n",
		len(r.Trace), lo, hi, r.ControllerDips())
	fmt.Fprintf(&b, "  (paper: D bounded in [1,12], controller reacts to flush spikes in time)\n")
	step := len(r.Trace) / 20
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(r.Trace); i += step {
		p := r.Trace[i]
		fmt.Fprintf(&b, "  t=%6.1fs D=%2d latency=%6.1fms\n", p.Time, p.Depth, p.Latency*1e3)
	}
	return b.String()
}
