package experiments

import (
	"testing"

	"ibis/internal/cluster"
	"ibis/internal/iosched"
)

// TestDebugIsolation is a diagnostic, not an assertion: run with
//
//	go test ./internal/experiments/ -run TestDebugIsolation -v
func TestDebugIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	scale := 0.125
	sa, err := Run(Options{Scale: scale, Policy: cluster.Native}, []Entry{wordCount(scale, 1)})
	if err != nil {
		t.Fatal(err)
	}
	wc := sa.JobResult("wordcount")
	t.Logf("WC alone: runtime=%.1f map=%.1f reduce=%.1f", wc.Runtime(), wc.MapPhase(), wc.ReducePhase())
	for _, j := range sa.JobHandles {
		if j.Spec.Name != "wordcount" {
			continue
		}
		for _, tt := range j.TaskTimings() {
			if tt.Kind == "reduce" {
				t.Logf("  reduce %d: start=%.1f shuffleDone=%.1f end=%.1f", tt.Index, tt.Start, tt.ShuffleDone, tt.End)
			}
		}
	}

	type cfg struct {
		name   string
		policy cluster.Policy
		depth  int
		ssd    bool
	}
	for _, c := range []cfg{
		{"native", cluster.Native, 0, false},
		{"sfq2", cluster.SFQD, 2, false},
		{"sfqd2", cluster.SFQD2, 0, false},
		{"ssd-native", cluster.Native, 0, true},
		{"ssd-sfq2", cluster.SFQD, 2, true},
		{"ssd-sfqd2", cluster.SFQD2, 0, true},
	} {
		res, err := Run(Options{Scale: scale, Policy: c.policy, SFQDepth: c.depth, SSD: c.ssd, CaptureDepthTrace: true},
			[]Entry{wordCount(scale, 32), teraGen(scale, 1)})
		if err != nil {
			t.Fatal(err)
		}
		wc2 := res.JobResult("wordcount")
		tg := res.JobResult("teragen")
		t.Logf("WC+TG %s: wc runtime=%.1f (slow %.0f%%) map=%.1f reduce=%.1f | tg=%.1f",
			c.name, wc2.Runtime(), (wc2.Runtime()/wc.Runtime()-1)*100, wc2.MapPhase(), wc2.ReducePhase(), tg.Runtime())
		if len(res.DepthTrace) > 0 {
			hist := map[int]int{}
			for _, p := range res.DepthTrace {
				if p.Samples > 0 {
					hist[p.Depth]++
				}
			}
			t.Logf("  depth histogram: %v", hist)
		}
		for _, j := range res.JobHandles {
			if j.Spec.Name == "wordcount" {
				rd := res.Latency(j.App, iosched.PersistentRead)
				iw := res.Latency(j.App, iosched.IntermediateWrite)
				var mapDur float64
				var nMaps int
				var busy float64
				for _, tt := range j.TaskTimings() {
					if tt.Kind == "map" {
						mapDur += tt.End - tt.Start
						nMaps++
						busy += tt.End - tt.Start
					}
				}
				var redStart, redEnd float64
				var nRed int
				for _, tt := range j.TaskTimings() {
					if tt.Kind == "reduce" {
						redStart += tt.Start
						redEnd += tt.End
						nRed++
					}
				}
				t.Logf("  wc read lat: n=%d mean=%.0fms p90=%.0fms | spill lat: mean=%.0fms | mean map dur=%.2fs (slot-sec=%.0f phase=%.1f ⇒ slots %.1f) | reduces start avg %.1f end avg %.1f",
					rd.N(), rd.Mean()*1e3, rd.Percentile(90)*1e3, iw.Mean()*1e3,
					mapDur/float64(nMaps), busy, j.Result().MapPhase(), busy/j.Result().MapPhase(),
					redStart/float64(nRed), redEnd/float64(nRed))
			}
		}
	}
}
