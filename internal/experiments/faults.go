package experiments

import (
	"fmt"
	"math"
	"strings"

	"ibis/internal/audit"
	"ibis/internal/cluster"
	"ibis/internal/faults"
	"ibis/internal/iosched"
	"ibis/internal/metrics"
	"ibis/internal/sim"
)

// The fault matrix exercises the coordination plane's failure handling
// on the uneven-presence microbenchmark: a "wide" app (weight 3)
// backlogged on every node versus a "narrow" app (weight 1) backlogged
// on a quarter of them. The 3:1 weights make the narrow app's physical
// optimum — its own disks saturated — exactly the proportional target,
// so under healthy coordination the wide/narrow service ratio sits at
// ≈3 (and the total-share audit bound is satisfiable), while pure
// local 3:1 fairness yields ≈15. Degradation is therefore directly
// visible in the ratio: ≈3 healthy, →15 during a coordination outage,
// back to ≈3 after recovery.
//
// Every scenario runs under full invariant auditing. Degraded windows
// are checked against the local proportional-share bound, the cluster
// total-share check is suspended while any member is degraded and for
// K recovery periods after, and must pass once it re-engages — the
// audit-checked reconvergence the degradation contract promises.

// faultPhases are the measurement intervals, chosen around the
// [20,40) fault window used by the window scenarios: pre ends at the
// fault start, during starts one period past the degradation threshold,
// post starts after the K-period recovery grace has expired.
var faultPhases = []struct {
	Name       string
	Start, End float64
}{
	{"pre", 5, 20},
	{"during", 25, 40},
	{"post", 50, 65},
}

// faultHorizon is the simulated duration of every scenario run.
const faultHorizon = 70

// FaultScenario is one named fault schedule in the matrix.
type FaultScenario struct {
	Name   string
	Policy cluster.Policy
	Spec   *faults.Spec
}

// FaultMatrixRow is the outcome of one scenario.
type FaultMatrixRow struct {
	Scenario string
	// Pre, During, Post are wide/narrow service ratios per phase.
	Pre, During, Post float64
	Health            metrics.CoordinationHealth
	Violations        uint64
	// DegradedChecks / TotalChecks / TotalSkipped are audit evaluation
	// counts: local proportional-share checks in degraded windows, the
	// cluster-wide total-share check, and windows where that check was
	// suspended by an open degradation (plus recovery grace).
	DegradedChecks uint64
	TotalChecks    uint64
	TotalSkipped   uint64
}

// FaultMatrixResult is the full matrix.
type FaultMatrixResult struct {
	Rows []FaultMatrixRow
}

// faultScenarios builds the deterministic scenario set. Nodes is the
// cluster size (8 in the standard matrix).
func faultScenarios(nodes int) []FaultScenario {
	window := []faults.Window{{Start: 20, End: 40}}
	narrow0 := fmt.Sprintf("node%d", 0)
	narrow1 := fmt.Sprintf("node%d", 1)
	return []FaultScenario{
		{Name: "baseline", Policy: cluster.SFQD, Spec: nil},
		{Name: "outage", Policy: cluster.SFQD, Spec: &faults.Spec{
			Seed: 1, Outages: window,
		}},
		{Name: "partition", Policy: cluster.SFQD, Spec: &faults.Spec{
			Seed: 2,
			Partitions: map[string][]faults.Window{
				narrow0 + "-hdfs":  window,
				narrow0 + "-local": window,
			},
		}},
		{Name: "loss", Policy: cluster.SFQD, Spec: &faults.Spec{
			Seed:     3,
			DropProb: 0.25, RespDropProb: 0.15,
			DelayProb: 0.5, DelayMin: 0.01, DelayMax: 0.2,
		}},
		{Name: "restart", Policy: cluster.SFQD, Spec: &faults.Spec{
			Seed: 4,
			Restarts: map[string][]float64{
				narrow1 + "-hdfs":  {30},
				narrow1 + "-local": {30},
			},
		}},
		{Name: "dev-degrade", Policy: cluster.SFQD2, Spec: &faults.Spec{
			Seed: 5,
			DeviceDegrade: map[string][]faults.Window{
				narrow0 + "-hdfs": {{Start: 20, End: 35}},
			},
			DegradeFactor: 0.25,
		}},
	}
}

// FaultMatrix runs every scenario and returns the matrix.
func FaultMatrix() (*FaultMatrixResult, error) {
	out := &FaultMatrixResult{}
	for _, sc := range faultScenarios(8) {
		row, err := faultRun(sc, 8)
		if err != nil {
			return nil, fmt.Errorf("fault-matrix %s: %w", sc.Name, err)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// FaultCustom runs one user-specified fault schedule on the
// microbenchmark (SFQ(D) policy, 8 nodes) and returns a single-row
// matrix — the driver behind ibis-bench's fault flags.
func FaultCustom(spec faults.Spec) (*FaultMatrixResult, error) {
	row, err := faultRun(FaultScenario{Name: "custom", Policy: cluster.SFQD, Spec: &spec}, 8)
	if err != nil {
		return nil, fmt.Errorf("fault-custom: %w", err)
	}
	return &FaultMatrixResult{Rows: []FaultMatrixRow{row}}, nil
}

// faultRun executes one scenario on the uneven-presence microbenchmark
// with full auditing and phase-resolved service accounting.
func faultRun(sc FaultScenario, nodes int) (FaultMatrixRow, error) {
	eng := sim.NewEngine()
	var inj *faults.Injector
	if sc.Spec != nil {
		inj = faults.New(*sc.Spec)
	}
	cl, err := cluster.New(eng, cluster.Config{
		Nodes:              nodes,
		Policy:             sc.Policy,
		SFQDepth:           2,
		Coordinate:         true,
		CoordinationPeriod: 1,
		Faults:             inj,
	})
	if err != nil {
		return FaultMatrixRow{}, err
	}
	au := audit.New(audit.Options{CoordinationPeriod: 1})
	au.AttachBroker(cl.Broker)
	cl.Instrument(func(node int, dev string, sched iosched.Scheduler) iosched.Probe {
		return au.Probe(node, dev, sched)
	})
	cl.SetDegradeObserver(au.NoteDegradeStart, au.NoteDegradeEnd)

	var wide, narrow float64
	backlog := func(n *cluster.Node, app iosched.AppID, weight float64, served *float64) {
		var issue func()
		issue = func() {
			n.SubmitIO(&iosched.Request{
				App: app, Shares: iosched.FixedWeight(weight), Class: iosched.PersistentRead, Size: 2e6,
				OnDone: func(float64) {
					*served += 2e6
					if eng.Now() < faultHorizon {
						issue()
					}
				},
			})
		}
		for i := 0; i < 4; i++ {
			issue()
		}
	}
	quarter := nodes / 4
	if quarter < 1 {
		quarter = 1
	}
	for i, n := range cl.Nodes {
		backlog(n, "wide", 3, &wide)
		if i < quarter {
			backlog(n, "narrow", 1, &narrow)
		}
	}

	// Sample cumulative service at each phase boundary.
	type snap struct{ wide, narrow float64 }
	marks := make(map[float64]snap)
	for _, ph := range faultPhases {
		for _, t := range []float64{ph.Start, ph.End} {
			t := t
			eng.ScheduleDaemon(t, func() { marks[t] = snap{wide, narrow} })
		}
	}

	eng.RunUntil(faultHorizon)
	au.Finish()

	ratio := func(start, end float64) float64 {
		a, b := marks[start], marks[end]
		dw, dn := b.wide-a.wide, b.narrow-a.narrow
		if dn <= 0 {
			return math.Inf(1)
		}
		return dw / dn
	}
	checks := au.Checks()
	row := FaultMatrixRow{
		Scenario:       sc.Name,
		Pre:            ratio(faultPhases[0].Start, faultPhases[0].End),
		During:         ratio(faultPhases[1].Start, faultPhases[1].End),
		Post:           ratio(faultPhases[2].Start, faultPhases[2].End),
		Health:         cl.CoordinationHealth(),
		Violations:     au.ViolationCount(),
		DegradedChecks: checks["proportional-share-degraded"],
		TotalChecks:    checks["total-proportional-share"],
		TotalSkipped:   checks["total-proportional-share-skipped"],
	}
	return row, nil
}

// String renders the matrix.
func (r *FaultMatrixResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault matrix: coordination-plane failures on the uneven-presence microbenchmark\n")
	fmt.Fprintf(&b, "  wide (w=3, 8/8 nodes) vs narrow (w=1, 2/8 nodes); service ratio target ≈3 coordinated, ≈15 local-only\n")
	fmt.Fprintf(&b, "  fault window [20s,40s); phases: pre [5,20) during [25,40) post [50,65)\n")
	fmt.Fprintf(&b, "  %-12s %6s %7s %6s %5s %6s %6s %6s %6s %7s %7s %7s\n",
		"scenario", "pre", "during", "post", "viol", "degr", "recov", "retry", "skip", "chkDeg", "chkTot", "totSkip")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %6.2f %7.2f %6.2f %5d %6d %6d %6d %6d %7d %7d %7d\n",
			row.Scenario, row.Pre, row.During, row.Post,
			row.Violations, row.Health.Degradations, row.Health.Recoveries,
			row.Health.Retries, row.Health.SkippedRounds,
			row.DegradedChecks, row.TotalChecks, row.TotalSkipped)
	}
	fmt.Fprintf(&b, "  degraded rows: ratio rises toward local-only during the fault and reconverges after;\n")
	fmt.Fprintf(&b, "  the audit suspends the total-share check while degraded (+5 periods) and re-tightens it after\n")
	return b.String()
}
