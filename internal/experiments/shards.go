package experiments

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"runtime"
	"strings"
	"time"

	"ibis/internal/cluster"
	"ibis/internal/metrics"
)

// ShardsRow is one run of the sharded-fabric benchmark scenario. The
// deterministic fields (everything except the wall times) must be
// identical for every worker count — the table itself demonstrates the
// pin.
type ShardsRow struct {
	Workers    int
	Duration   float64 // virtual seconds
	Events     uint64
	Windows    uint64 // fabric synchronization windows
	ParWindows uint64 // windows with ≥2 active shards (worker-pool path)
	Messages   uint64 // cross-shard messages delivered
	Digest     string // sha256 prefix of the merged JSONL trace
	Violations uint64 // audit violations (must be 0)
	Wall       time.Duration
	// ShardLoad is the per-shard occupancy: the coordinator event
	// fraction here is the run's measured serial term (Amdahl).
	ShardLoad metrics.ShardStats
}

// ShardsResult reports the sharded parallel-simulation benchmark: the
// Figure 3 HDD co-run (WordCount vs TeraSort under coordinated
// SFQ(D2)) executed on the sharded fabric (8 node shards, 2 metadata
// shards, the coordinator) at 1 worker and at N workers, with traces
// digested and invariants audited on both.
//
// String prints only deterministic fields; wall-clock times and the
// speedup — which vary run to run — are surfaced on stderr through
// StderrNote, preserving ibis-bench's byte-identical-stdout guarantee.
type ShardsResult struct {
	Scale     float64
	Lookahead float64
	Rows      []ShardsRow
	Match     bool // parallel run bit-identical to serial run
}

// shardsScenario is the Figure 3-class contention workload the shards
// benchmark runs: the paper's interference pair on the standard 8-node
// HDD cluster with the broker coordinating.
func shardsScenario(scale float64, workers int) Options {
	return Options{
		Scale:         scale,
		Policy:        cluster.SFQD2,
		Coordinate:    true,
		Seed:          42,
		TraceCapacity: 1 << 15,
		Audit:         true,
		Shards:        workers,
	}
}

// ShardsOnce executes the shards scenario a single time at the given
// worker count — the root benchmark suite's entry point.
func ShardsOnce(scale float64, workers int) (ShardsRow, error) {
	return shardsRun(scale, workers)
}

func shardsRun(scale float64, workers int) (ShardsRow, error) {
	start := time.Now()
	res, err := Run(shardsScenario(scale, workers),
		[]Entry{wordCount(scale, 1), teraSortContender(scale, 1)})
	if err != nil {
		return ShardsRow{}, err
	}
	wall := time.Since(start)
	var buf bytes.Buffer
	if err := res.Trace.WriteJSONL(&buf); err != nil {
		return ShardsRow{}, err
	}
	sum := sha256.Sum256(buf.Bytes())
	row := ShardsRow{
		Workers:    workers,
		Duration:   res.Duration,
		Events:     res.EventsFired,
		Digest:     fmt.Sprintf("%x", sum[:8]),
		Violations: res.Audit.ViolationCount(),
		Wall:       wall,
	}
	if res.FabricStats != nil {
		row.Windows = res.FabricStats.Windows
		row.ParWindows = res.FabricStats.ParallelWindows
		row.Messages = res.FabricStats.Messages
	}
	row.ShardLoad = res.ShardLoad
	return row, nil
}

// Shards runs the sharded-fabric benchmark at 1 worker and at workers
// workers (values below 2 are raised to 2 so the comparison exists).
func Shards(scale float64, workers int) (*ShardsResult, error) {
	if workers < 2 {
		workers = 2
	}
	out := &ShardsResult{Scale: scale, Lookahead: cluster.DefaultLookahead}
	for _, w := range []int{1, workers} {
		row, err := shardsRun(scale, w)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	a, b := out.Rows[0], out.Rows[1]
	out.Match = a.Digest == b.Digest && a.Duration == b.Duration &&
		a.Events == b.Events && a.Violations == b.Violations
	return out, nil
}

// GateErr reports the determinism pin as an error: a parallel run
// whose trace digest (or any deterministic field) differs from the
// serial run is a correctness failure, not a perf data point —
// ibis-bench exits non-zero on it.
func (r *ShardsResult) GateErr() error {
	if len(r.Rows) == 2 && !r.Match {
		return fmt.Errorf("parallel run (workers=%d, digest %s) does not match serial run (digest %s)",
			r.Rows[1].Workers, r.Rows[1].Digest, r.Rows[0].Digest)
	}
	if len(r.Rows) == 2 && (r.Rows[0].Violations > 0 || r.Rows[1].Violations > 0) {
		return fmt.Errorf("audit violations: serial=%d parallel=%d",
			r.Rows[0].Violations, r.Rows[1].Violations)
	}
	return nil
}

// Speedup returns serial wall / parallel wall (0 until both rows ran).
func (r *ShardsResult) Speedup() float64 {
	if len(r.Rows) != 2 || r.Rows[1].Wall <= 0 {
		return 0
	}
	return r.Rows[0].Wall.Seconds() / r.Rows[1].Wall.Seconds()
}

// String renders the deterministic comparison table.
func (r *ShardsResult) String() string {
	var b strings.Builder
	shards := ""
	if len(r.Rows) > 0 && r.Rows[0].ShardLoad.Shards() > 0 {
		shards = fmt.Sprintf("%d shards, ", r.Rows[0].ShardLoad.Shards())
	}
	fmt.Fprintf(&b, "Sharded simulation: Fig03-class HDD co-run, %slookahead %gs (scale %.3g)\n", shards, r.Lookahead, r.Scale)
	fmt.Fprintf(&b, "  %-8s %12s %10s %9s %10s %9s %18s %6s\n",
		"workers", "duration(s)", "events", "windows", "parallel", "messages", "trace digest", "viol")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-8d %12.1f %10d %9d %10d %9d %18s %6d\n",
			row.Workers, row.Duration, row.Events, row.Windows, row.ParWindows, row.Messages, row.Digest, row.Violations)
	}
	fmt.Fprintf(&b, "  parallel run bit-identical to serial: %v\n", r.Match)
	return b.String()
}

// StderrNote reports the wall-clock comparison (nondeterministic, so
// not part of String). GOMAXPROCS is included because worker count is
// logical parallelism only — on a single-core host the speedup is
// honestly ~1.0x and the determinism pin is the point.
func (r *ShardsResult) StderrNote() string {
	if len(r.Rows) != 2 {
		return ""
	}
	note := fmt.Sprintf("shards=%d speedup=%.2fx (serial %.2fs, parallel %.2fs, gomaxprocs=%d)",
		r.Rows[1].Workers, r.Speedup(), r.Rows[0].Wall.Seconds(), r.Rows[1].Wall.Seconds(),
		runtime.GOMAXPROCS(0))
	if r.Rows[1].ShardLoad.Shards() > 0 {
		note += "\n" + r.Rows[1].ShardLoad.Note()
	}
	return note
}
