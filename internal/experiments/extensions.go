package experiments

import (
	"fmt"
	"strings"

	"ibis/internal/cluster"
	"ibis/internal/iosched"
	"ibis/internal/metrics"
	"ibis/internal/sim"
	"ibis/internal/storage"
	"ibis/internal/workloads"
)

// The extensions implement studies the paper defers to future work or
// sketches in its discussion (Section 9).

// SpectrumRow is one policy on the isolation-vs-utilization spectrum.
type SpectrumRow struct {
	Policy     string
	WCSlowdown float64
	Throughput float64 // MB/s
}

// SpectrumResult places the full scheduler family on Section 9's
// spectrum: native (pure work conservation, no isolation) — SFQ(D2) —
// static SFQ(D) — hard reservations (strict isolation, no work
// conservation, "may severely underutilize the storage").
type SpectrumResult struct {
	Scale        float64
	StandaloneWC float64
	Rows         []SpectrumRow
}

// ExtSpectrum runs the WordCount-vs-TeraGen scenario across the whole
// policy family, including the non-work-conserving reservation extreme.
func ExtSpectrum(scale float64) (*SpectrumResult, error) {
	sa, err := standalone(Options{Scale: scale, Policy: cluster.Native}, wordCount(scale, 1))
	if err != nil {
		return nil, err
	}
	out := &SpectrumResult{Scale: scale, StandaloneWC: sa.Runtime()}

	type cfg struct {
		name string
		opts Options
	}
	// Reservation rates per device (cost units/s): WordCount gets a
	// generous 80 MB/s everywhere, TeraGen 50 MB/s — a strict split of
	// the ~130 MB/s disks.
	wcApp, tgApp := iosched.AppID("wordcount"), iosched.AppID("teragen")
	cases := []cfg{
		{"native", Options{Scale: scale, Policy: cluster.Native}},
		{"sfq(d2)", Options{Scale: scale, Policy: cluster.SFQD2}},
		{"sfq(d=2)", Options{Scale: scale, Policy: cluster.SFQD, SFQDepth: 2}},
		{"reservation", Options{Scale: scale, Policy: cluster.Reserve,
			ReservationRates: map[iosched.AppID]float64{wcApp: 80e6, tgApp: 50e6},
		}},
	}
	for _, c := range cases {
		wc := wordCount(scale, isolationWeightWC)
		wc.Spec.App = wcApp
		tg := teraGen(scale, 1)
		tg.Spec.App = tgApp
		res, err := Run(c.opts, []Entry{wc, tg})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, SpectrumRow{
			Policy:     c.name,
			WCSlowdown: metrics.Slowdown(res.JobResult("wordcount").Runtime(), sa.Runtime()),
			Throughput: res.MeanThroughput() / 1e6,
		})
	}
	return out, nil
}

// String renders the spectrum.
func (r *SpectrumResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: isolation-vs-utilization spectrum (paper §9, scale %.3g)\n", r.Scale)
	fmt.Fprintf(&b, "  standalone WordCount: %.1fs\n", r.StandaloneWC)
	fmt.Fprintf(&b, "  %-12s %10s %12s\n", "policy", "wc-slow", "tput(MB/s)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %9.0f%% %12.1f\n", row.Policy, row.WCSlowdown*100, row.Throughput)
	}
	b.WriteString("  (reservations: strict isolation, wasted bandwidth; native: the reverse;\n")
	b.WriteString("   SFQ(D2) sits between, work-conserving with near-best isolation)\n")
	return b.String()
}

// NetworkSchedResult compares IBIS with and without the OpenFlow-style
// NIC scheduling extension (Section 3's future work) on a
// network-heavy pairing: a weighted TeraSort against a 3×-replicated
// TeraGen whose pipeline floods the NICs.
type NetworkSchedResult struct {
	Scale        float64
	StandaloneTS float64
	// StorageOnly / WithNetSched are the TeraSort slowdowns.
	StorageOnly  float64
	WithNetSched float64
}

// ExtNetworkSched runs the comparison.
func ExtNetworkSched(scale float64) (*NetworkSchedResult, error) {
	sa, err := standalone(Options{Scale: scale, Policy: cluster.Native}, fullCores(teraSortContender(scale, 1)))
	if err != nil {
		return nil, err
	}
	out := &NetworkSchedResult{Scale: scale, StandaloneTS: sa.Runtime()}

	run := func(netSched bool) (float64, error) {
		ts := withWeight(teraSortContender(scale, 32), 32)
		tg := fig11TeraGen(scale, 1) // replication 3: heavy NIC traffic
		res, err := Run(Options{
			Scale: scale, Policy: cluster.SFQD2,
			ScheduleNetwork: netSched,
		}, []Entry{ts, tg})
		if err != nil {
			return 0, err
		}
		return metrics.Slowdown(res.JobResult("terasort").Runtime(), sa.Runtime()), nil
	}
	if out.StorageOnly, err = run(false); err != nil {
		return nil, err
	}
	if out.WithNetSched, err = run(true); err != nil {
		return nil, err
	}
	return out, nil
}

// String renders the comparison.
func (r *NetworkSchedResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: NIC scheduling (paper §3 future work, scale %.3g)\n", r.Scale)
	fmt.Fprintf(&b, "  terasort slowdown, storage-endpoint control only: %.0f%%\n", r.StorageOnly*100)
	fmt.Fprintf(&b, "  terasort slowdown, + weighted NIC scheduling:     %.0f%%\n", r.WithNetSched*100)
	b.WriteString("  (the paper argues storage-endpoint control suffices because storage\n")
	b.WriteString("   saturates before the network; the extension quantifies the residual)\n")
	return b.String()
}

// TeraSortSweepRow is one input size of the scaling study.
type TeraSortSweepRow struct {
	InputGB float64
	Runtime float64
	// MBPerSec is input bytes / runtime — the effective sort rate.
	MBPerSec float64
}

// TeraSortSweepResult covers the paper's stated TeraSort range
// (50–400 GB input) standalone, verifying the engine scales the way a
// sort should: near-linearly once the cluster pipelines fill.
type TeraSortSweepResult struct {
	Scale float64
	Rows  []TeraSortSweepRow
}

// ExtTeraSortSweep runs the sweep.
func ExtTeraSortSweep(scale float64) (*TeraSortSweepResult, error) {
	out := &TeraSortSweepResult{Scale: scale}
	for _, gb := range []float64{50, 100, 200, 400} {
		spec := workloads.TeraSortSpec(gb*1e9*scale, 24)
		spec.Weight = 1
		res, err := Run(Options{Scale: scale, Policy: cluster.Native}, []Entry{{Spec: spec}})
		if err != nil {
			return nil, err
		}
		rt := res.JobResult("terasort").Runtime()
		out.Rows = append(out.Rows, TeraSortSweepRow{
			InputGB:  gb,
			Runtime:  rt,
			MBPerSec: gb * 1e9 * scale / rt / 1e6,
		})
	}
	return out, nil
}

// String renders the sweep.
func (r *TeraSortSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: TeraSort input sweep 50–400 GB (paper's stated range, scale %.3g)\n", r.Scale)
	fmt.Fprintf(&b, "  %-9s %12s %14s\n", "input", "runtime(s)", "rate(MB/s)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %6.0fGB %12.1f %14.1f\n", row.InputGB, row.Runtime, row.MBPerSec)
	}
	b.WriteString("  (rate should flatten once the waves pipeline — near-linear scaling)\n")
	return b.String()
}

// SSDPromotionResult studies the read-promotion effect the paper
// attributes its surprising SSD result to (Section 7.2): when writes
// are slow and expensive, shrinking D lets backlogged reads dispatch
// ahead of writes. We measure the mean read latency of a read-heavy
// flow against a write-heavy flow at different depths on the SSD.
type SSDPromotionResult struct {
	Rows []SSDPromotionRow
}

// SSDPromotionRow is one depth point.
type SSDPromotionRow struct {
	Depth         int
	ReadLatencyMS float64
	ReadMBps      float64
	WriteMBps     float64
}

// ExtSSDPromotion runs the microbenchmark on a single SSD.
func ExtSSDPromotion() (*SSDPromotionResult, error) {
	out := &SSDPromotionResult{}
	for _, depth := range []int{1, 2, 4, 8, 12} {
		row := ssdPromotionPoint(depth)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func ssdPromotionPoint(depth int) SSDPromotionRow {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "ssd", storage.SSDSpec())
	s := iosched.NewSFQD(eng, dev, depth)
	var readBytes, writeBytes, latSum float64
	var reads int
	// Equal weights: the promotion effect is purely about write cost.
	keep := func(app iosched.AppID, class iosched.Class, outstanding int, served *float64, lat *float64, n *int) {
		var issue func()
		issue = func() {
			s.Submit(&iosched.Request{
				App: app, Shares: iosched.FixedWeight(1), Class: class, Size: 2e6,
				OnDone: func(l float64) {
					*served += 2e6
					if lat != nil {
						*lat += l
						*n++
					}
					if eng.Now() < 30 {
						issue()
					}
				},
			})
		}
		for i := 0; i < outstanding; i++ {
			issue()
		}
	}
	keep("reader", iosched.PersistentRead, 2, &readBytes, &latSum, &reads)
	keep("writer", iosched.PersistentWrite, 8, &writeBytes, nil, nil)
	eng.RunUntil(30)
	row := SSDPromotionRow{Depth: depth}
	if reads > 0 {
		row.ReadLatencyMS = latSum / float64(reads) * 1e3
	}
	row.ReadMBps = readBytes / 30 / 1e6
	row.WriteMBps = writeBytes / 30 / 1e6
	return row
}

// String renders the study.
func (r *SSDPromotionResult) String() string {
	var b strings.Builder
	b.WriteString("Extension: SSD read promotion (paper §7.2's future-work observation)\n")
	b.WriteString("  depth   read-lat(ms)   read(MB/s)   write(MB/s)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %5d %14.1f %12.1f %13.1f\n",
			row.Depth, row.ReadLatencyMS, row.ReadMBps, row.WriteMBps)
	}
	b.WriteString("  (smaller D ⇒ reads overtake expensive writes ⇒ lower read latency)\n")
	return b.String()
}
