package experiments

import (
	"fmt"
	"strings"

	"ibis/internal/metrics"
	"ibis/internal/scale"
)

// FederationSpec parameterizes the federated-broker experiment: the
// hollow population shape, how many partition brokers split it, and
// the worker counts to pin determinism across.
type FederationSpec struct {
	Nodes   int
	Tenants int
	// Apps is the per-tenant application count.
	Apps int
	// Partitions is the partition-broker count (must be >= 2 to
	// federate; 1 would be the centralized broker).
	Partitions int
	// Shards is the parallel worker count of the second leg (the first
	// leg always runs serial; equal digests pin determinism).
	Shards  int
	Seed    uint64
	Horizon float64
}

// DefaultFederationSpec is a CI-sized federated run: two hundred nodes
// split across four partition brokers.
func DefaultFederationSpec() FederationSpec {
	return FederationSpec{
		Nodes:      200,
		Tenants:    1000,
		Apps:       1,
		Partitions: 4,
		Shards:     4,
		Seed:       1,
		Horizon:    10,
	}
}

func (s FederationSpec) config(workers int) scale.Config {
	return scale.Config{
		Nodes:            s.Nodes,
		Tenants:          s.Tenants,
		AppsPerTenant:    s.Apps,
		Replicas:         3,
		Seed:             s.Seed,
		Horizon:          s.Horizon,
		Workers:          workers,
		Coordinate:       true,
		Partitions:       s.Partitions,
		Audit:            true,
		AuditSampleEvery: max(1, s.Nodes/16),
	}
}

// FederationRow is one leg of the federation experiment.
type FederationRow struct {
	Workers int
	Stats   metrics.ScaleStats
	Checks  map[string]uint64
}

// FederationResult reports the federated-broker experiment: the same
// population coordinated through partition brokers at each worker
// count, with the deterministic surface (traffic, fairness, federation
// byte counters, digest) on stdout and the host-dependent envelope on
// StderrNote. Compression is federation bytes on the wire vs the
// centralized-equivalent client traffic the partition brokers carried.
type FederationResult struct {
	Spec  FederationSpec
	Rows  []FederationRow
	Match bool // all digests identical across worker counts
}

func (r *FederationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "federation: %d partition brokers over %d nodes\n",
		r.Spec.Partitions, r.Spec.Nodes)
	st := r.Rows[0].Stats
	b.WriteString(st.Deterministic())
	fmt.Fprintf(&b, "compression=%.1fx\n", st.FedCompression())
	checks := r.Rows[0].Checks
	fmt.Fprintf(&b, "audit: share-federated=%d federation-conservation=%d\n",
		checks["share-federated"], checks["federation-conservation"])
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "workers=%d digest=%016x\n", row.Workers, row.Stats.Digest)
	}
	fmt.Fprintf(&b, "deterministic-across-workers=%v\n", r.Match)
	return b.String()
}

// StderrNote reports the wall-clock envelope, which varies by host and
// must stay off the deterministic stdout surface.
func (r *FederationResult) StderrNote() string {
	var b strings.Builder
	for i, row := range r.Rows {
		if i > 0 {
			b.WriteString("; ")
		}
		st := row.Stats
		fmt.Fprintf(&b, "workers=%d events/sec=%.0f wall=%.1fs peak-heap=%.0fMB",
			row.Workers, st.EventsPerSec, st.WallSeconds, float64(st.PeakHeapBytes)/1e6)
	}
	return b.String()
}

// FederationBench runs the federated-broker experiment described by
// spec: audit-clean under the share-federated regime, bit-identical
// digests across worker counts, and the federation plane's byte
// counters for the O(delta) compression claim.
func FederationBench(spec FederationSpec) (*FederationResult, error) {
	if spec.Nodes <= 0 || spec.Tenants <= 0 {
		return nil, fmt.Errorf("federation: nodes and tenants must be positive")
	}
	if spec.Partitions < 2 {
		return nil, fmt.Errorf("federation: need >= 2 partitions (1 is the centralized broker)")
	}
	workers := []int{1}
	if spec.Shards > 1 {
		workers = append(workers, spec.Shards)
	}
	res := &FederationResult{Spec: spec, Match: true}
	for _, w := range workers {
		rep, err := scale.Run(spec.config(w))
		if err != nil {
			return nil, err
		}
		if rep.AuditErr != nil {
			return nil, fmt.Errorf("federation: workers=%d audit: %w", w, rep.AuditErr)
		}
		if rep.Stats.Partitions != spec.Partitions {
			return nil, fmt.Errorf("federation: workers=%d ran %d partitions, want %d",
				w, rep.Stats.Partitions, spec.Partitions)
		}
		res.Rows = append(res.Rows, FederationRow{Workers: w, Stats: rep.Stats, Checks: rep.AuditChecks})
		if rep.Stats.Digest != res.Rows[0].Stats.Digest {
			res.Match = false
		}
	}
	if !res.Match {
		return nil, fmt.Errorf("federation: digests diverged across worker counts")
	}
	return res, nil
}
