package experiments

import (
	"testing"

	"ibis/internal/cluster"
)

// The experiment drivers are exercised at a reduced scale where
// possible; shape assertions mirror the paper's qualitative claims.

const testScale = 0.125

func TestFig02Shapes(t *testing.T) {
	res, err := Fig02(testScale)
	if err != nil {
		t.Fatal(err)
	}
	tsPeakW, _ := peak(res.TeraSortWrite)
	wcPeakW, _ := peak(res.WordCountWrite)
	tsPeakR, _ := peak(res.TeraSortRead)
	wcPeakR, _ := peak(res.WordCountRead)
	// "TeraSort has a much more intensive I/O workload than WordCount":
	// its write peaks dominate.
	if tsPeakW < 2*wcPeakW {
		t.Errorf("terasort write peak %.0f not ≫ wordcount %.0f", tsPeakW, wcPeakW)
	}
	if tsPeakR <= 0 || wcPeakR <= 0 {
		t.Error("read profiles empty")
	}
	// WordCount's output is much smaller than its input: mean write
	// rate well below mean read rate.
	if mean(res.WordCountWrite) > mean(res.WordCountRead) {
		t.Error("wordcount writes should be lighter than reads")
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func peak(v []float64) (float64, int) {
	best, idx := 0.0, -1
	for i, x := range v {
		if x > best {
			best, idx = x, i
		}
	}
	return best, idx
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func TestFig03Ordering(t *testing.T) {
	res, err := Fig03(testScale, false)
	if err != nil {
		t.Fatal(err)
	}
	slow := map[string]float64{}
	for _, row := range res.Rows {
		slow[row.CoRunner] = row.Slowdown
	}
	// TeraGen and TeraSort interfere severely; TeraValidate least.
	if slow["teragen"] < 0.4 || slow["terasort"] < 0.3 {
		t.Errorf("heavy co-runners too gentle: %+v", slow)
	}
	if slow["teravalidate"] >= slow["teragen"] || slow["teravalidate"] >= slow["terasort"] {
		t.Errorf("teravalidate should interfere least: %+v", slow)
	}
	if res.StandaloneWC <= 0 {
		t.Error("missing standalone baseline")
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestFig06Shape(t *testing.T) {
	res, err := Fig06(testScale)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Fig06Row{}
	for _, row := range res.Rows {
		rows[row.Config] = row
	}
	native := rows["native"]
	d2 := rows["sfq(d2)"]
	d2static := rows["sfq(d=2)"]
	// Headline: IBIS collapses the interference.
	if d2.Slowdown > native.Slowdown/2 {
		t.Errorf("sfq(d2) slowdown %.2f not well below native %.2f", d2.Slowdown, native.Slowdown)
	}
	// Native is the most work-conserving configuration: highest
	// throughput of all rows.
	for name, row := range rows {
		if name == "native" {
			continue
		}
		if row.Throughput > native.Throughput*1.01 {
			t.Errorf("%s throughput %.1f exceeds native %.1f", name, row.Throughput, native.Throughput)
		}
	}
	// SFQ(D=2) pays the biggest utilization price; SFQ(D2) must beat it.
	if d2.ThroughputLoss < d2static.ThroughputLoss {
		t.Errorf("sfq(d2) tput loss %.2f worse than static d=2 %.2f", d2.ThroughputLoss, d2static.ThroughputLoss)
	}
	// The static ladder: deeper D ⇒ worse isolation than shallow D.
	if rows["sfq(d=12)"].Slowdown < rows["sfq(d=2)"].Slowdown {
		t.Errorf("depth ladder inverted: d=12 %.2f < d=2 %.2f",
			rows["sfq(d=12)"].Slowdown, rows["sfq(d=2)"].Slowdown)
	}
}

func TestFig07Controller(t *testing.T) {
	res, err := Fig07(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) < 50 {
		t.Fatalf("trace too short: %d periods", len(res.Trace))
	}
	lo, hi := res.DepthRange()
	if lo < 1 || hi > 12 {
		t.Fatalf("depth range [%d,%d] outside the paper's [1,12]", lo, hi)
	}
	if hi-lo < 3 {
		t.Fatalf("depth barely adapted: range [%d,%d]", lo, hi)
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestFig08SSD(t *testing.T) {
	res, err := Fig08(testScale)
	if err != nil {
		t.Fatal(err)
	}
	var native, d2 Fig06Row
	for _, row := range res.Rows {
		if row.Config == "native" {
			native = row
		} else {
			d2 = row
		}
	}
	// "Faster storage does not make the I/O contention problem go
	// away" — and IBIS still isolates on SSDs.
	if native.Slowdown < 0.2 {
		t.Errorf("SSD native slowdown %.2f too small", native.Slowdown)
	}
	if d2.Slowdown > native.Slowdown*0.6 {
		t.Errorf("SSD sfq(d2) %.2f not well below native %.2f", d2.Slowdown, native.Slowdown)
	}
}

func TestFig09Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	res, err := Fig09(testScale)
	if err != nil {
		t.Fatal(err)
	}
	sa := res.Case("standalone")
	in := res.Case("interfered")
	d2 := res.Case("sfq(d2)")
	if sa == nil || in == nil || d2 == nil {
		t.Fatal("missing cases")
	}
	// Interfered ≫ isolated ≈ standalone, at both the mean and p90.
	if in.Runtimes.Mean() < 1.5*sa.Runtimes.Mean() {
		t.Errorf("interference too gentle: mean %.1f vs standalone %.1f",
			in.Runtimes.Mean(), sa.Runtimes.Mean())
	}
	if d2.Runtimes.Mean() > 1.4*sa.Runtimes.Mean() {
		t.Errorf("isolation too weak: mean %.1f vs standalone %.1f",
			d2.Runtimes.Mean(), sa.Runtimes.Mean())
	}
	if d2.Runtimes.Percentile(90) > in.Runtimes.Percentile(90) {
		t.Errorf("sfq(d2) p90 %.1f worse than interfered %.1f",
			d2.Runtimes.Percentile(90), in.Runtimes.Percentile(90))
	}
	if sa.Runtimes.N() != 50 {
		t.Errorf("jobs = %d, want 50", sa.Runtimes.N())
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	res, err := Fig10(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range res.Queries {
		rows := map[string]Fig10Row{}
		for _, row := range q.Rows {
			rows[row.Policy] = row
		}
		// IBIS delivers the best query-relative performance.
		for name, row := range rows {
			if name == "ibis" {
				continue
			}
			if row.QueryRel > rows["ibis"].QueryRel+0.02 {
				t.Errorf("%s: %s query-rel %.2f beats ibis %.2f", q.Query, name, row.QueryRel, rows["ibis"].QueryRel)
			}
		}
		// Throttling is non-work-conserving: TeraSort suffers most
		// under it.
		if rows["cg-throttle"].TSRel > rows["ibis"].TSRel {
			t.Errorf("%s: throttled terasort %.2f not worse than ibis %.2f",
				q.Query, rows["cg-throttle"].TSRel, rows["ibis"].TSRel)
		}
		// IBIS achieves the best average relative performance.
		for name, row := range rows {
			if name == "ibis" {
				continue
			}
			if row.AvgRel > rows["ibis"].AvgRel+0.02 {
				t.Errorf("%s: %s avg-rel %.2f beats ibis %.2f", q.Query, name, row.AvgRel, rows["ibis"].AvgRel)
			}
		}
	}
}

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	res, err := Fig11(testScale)
	if err != nil {
		t.Fatal(err)
	}
	// Joint CPU+IBIS tuning reaches a smaller gap AND a lower average
	// slowdown than CPU-only tuning (the paper's 30% improvement).
	if res.FSIBISBest.Gap() > res.FSBest.Gap() {
		t.Errorf("joint tuning gap %.2f worse than fs-only %.2f", res.FSIBISBest.Gap(), res.FSBest.Gap())
	}
	if res.FSIBISBest.Avg() > res.FSBest.Avg() {
		t.Errorf("joint tuning avg %.2f worse than fs-only %.2f", res.FSIBISBest.Avg(), res.FSBest.Avg())
	}
	if len(res.Swept) < 10 {
		t.Errorf("sweep too small: %d", len(res.Swept))
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	res, err := Fig12(testScale)
	if err != nil {
		t.Fatal(err)
	}
	// Coordination must not hurt, and the microbenchmark must show the
	// total-service correction clearly.
	if res.Improvement() < -0.05 {
		t.Errorf("sync made things worse: %.2f", res.Improvement())
	}
	if res.MicroSyncRatio >= res.MicroNoSyncRatio {
		t.Errorf("micro: sync ratio %.2f not below no-sync %.2f", res.MicroSyncRatio, res.MicroNoSyncRatio)
	}
	// Sync should approach the physical optimum (≈3) from ≈7.
	if res.MicroSyncRatio > 4.5 {
		t.Errorf("micro sync ratio %.2f too far from the optimum ≈3", res.MicroSyncRatio)
	}
}

func TestFig13Overhead(t *testing.T) {
	res, err := Fig13(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Overhead > 0.15 {
			t.Errorf("%s: interposition overhead %.1f%% too high", row.App, row.Overhead*100)
		}
		if row.NativeRuntime <= 0 || row.IBISRuntime <= 0 {
			t.Errorf("%s: missing runtimes", row.App)
		}
	}
}

func TestTable2Bounded(t *testing.T) {
	res, err := Table2(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Policy == "Native" && row.BrokerExchanges != 0 {
			t.Errorf("%s native has broker traffic", row.App)
		}
		if row.Policy == "SFQ(D2)" && row.BrokerExchanges == 0 {
			t.Errorf("%s ibis missing broker traffic", row.App)
		}
	}
}

func TestTable3Counts(t *testing.T) {
	res, err := Table3("../..")
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCode < 3000 {
		t.Errorf("code lines = %d, implausibly low", res.TotalCode)
	}
	if res.TotalTests < 1000 {
		t.Errorf("test lines = %d, implausibly low", res.TotalTests)
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestTable3BadRoot(t *testing.T) {
	if _, err := Table3("/nonexistent-path"); err == nil {
		t.Fatal("bad root accepted")
	}
}

func TestHarnessRejectsUnfinishedJobs(t *testing.T) {
	// A RunLimit shorter than the workload must surface an error
	// rather than report partial results.
	_, err := Run(Options{Scale: testScale, Policy: cluster.Native, RunLimit: 1},
		[]Entry{teraGen(testScale, 1)})
	if err == nil {
		t.Fatal("truncated run reported success")
	}
}

func TestResultHelpers(t *testing.T) {
	res, err := Run(Options{Scale: 0.02, Policy: cluster.Native}, []Entry{teraSort(0.02, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanThroughput() <= 0 {
		t.Error("MeanThroughput zero")
	}
	jr := res.JobResult("terasort")
	if jr.Runtime() <= 0 {
		t.Error("runtime zero")
	}
	apps := sortedAppNames(res.PerAppBytes)
	if len(apps) != 1 {
		t.Errorf("apps = %v", apps)
	}
	defer func() {
		if recover() == nil {
			t.Error("JobResult for unknown name did not panic")
		}
	}()
	res.JobResult("nope")
}
