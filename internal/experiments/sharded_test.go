package experiments

import (
	"bytes"
	"crypto/sha256"
	"reflect"
	"testing"

	"ibis/internal/cluster"
)

// shardedRun executes the standard contention scenario (WordCount vs
// TeraSort, coordinated SFQ(D2)) on the sharded fabric with the given
// worker count, returning the result and the sha256 of its merged
// JSONL trace.
func shardedRun(t *testing.T, seed int64, workers int) (*Result, [32]byte) {
	t.Helper()
	scale := 0.0625
	res, err := Run(Options{
		Scale:         scale,
		Policy:        cluster.SFQD2,
		Coordinate:    true,
		Seed:          seed,
		TraceCapacity: 1 << 15,
		Audit:         true,
		Shards:        workers,
	}, []Entry{wordCount(scale, 1), teraSortContender(scale, 1)})
	if err != nil {
		t.Fatalf("sharded run (seed %d, workers %d): %v", seed, workers, err)
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("merged trace is empty; nothing was recorded")
	}
	return res, sha256.Sum256(buf.Bytes())
}

// TestShardedDeterminismAcrossWorkers pins the tentpole promise: the
// worker count is physical parallelism only. For every seed, runs at
// 2, 4 and 8 workers must match the 1-worker run bit for bit — same
// trace bytes, same durations, same event counts, same audit verdict.
func TestShardedDeterminismAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{7, 42, 20260806} {
		base, baseDigest := shardedRun(t, seed, 1)
		if n := base.Audit.ViolationCount(); n != 0 {
			t.Fatalf("seed %d serial run: %d audit violations: %v", seed, n, base.Audit.Err())
		}
		for _, workers := range []int{2, 4, 8} {
			res, digest := shardedRun(t, seed, workers)
			if digest != baseDigest {
				t.Errorf("seed %d: workers=%d trace digest %x != serial %x", seed, workers, digest, baseDigest)
			}
			if res.Duration != base.Duration {
				t.Errorf("seed %d: workers=%d duration %v != serial %v", seed, workers, res.Duration, base.Duration)
			}
			if res.EventsFired != base.EventsFired {
				t.Errorf("seed %d: workers=%d fired %d events, serial %d", seed, workers, res.EventsFired, base.EventsFired)
			}
			if res.TotalBytes != base.TotalBytes {
				t.Errorf("seed %d: workers=%d total bytes %v != serial %v", seed, workers, res.TotalBytes, base.TotalBytes)
			}
			if res.BrokerExchanges != base.BrokerExchanges {
				t.Errorf("seed %d: workers=%d broker exchanges %d != serial %d", seed, workers, res.BrokerExchanges, base.BrokerExchanges)
			}
			if !reflect.DeepEqual(res.Jobs, base.Jobs) {
				t.Errorf("seed %d: workers=%d job results differ from serial", seed, workers)
			}
			if !reflect.DeepEqual(res.Audit.Checks(), base.Audit.Checks()) {
				t.Errorf("seed %d: workers=%d audit check counts differ from serial:\n  %v\nvs\n  %v",
					seed, workers, res.Audit.Checks(), base.Audit.Checks())
			}
			if n := res.Audit.ViolationCount(); n != 0 {
				t.Errorf("seed %d: workers=%d: %d audit violations: %v", seed, workers, n, res.Audit.Err())
			}
		}
	}
}

// TestShardedSeedSensitivity guards against a digest that is blind to
// the workload: different seeds must produce different traces.
func TestShardedSeedSensitivity(t *testing.T) {
	_, a := shardedRun(t, 1, 2)
	_, b := shardedRun(t, 2, 2)
	if a == b {
		t.Fatal("different seeds produced identical sharded traces")
	}
}
