package experiments

import (
	"fmt"
	"strings"

	"ibis/internal/cluster"
	"ibis/internal/mapreduce"
	"ibis/internal/metrics"
	"ibis/internal/workloads"
)

// Fig09Case summarizes one curve of the Facebook2009 CDF.
type Fig09Case struct {
	Name     string
	Runtimes *metrics.Distribution
	// Paper90th and PaperMean are the published reference points.
	Paper90th float64
	PaperMean float64
}

// Fig09Result reproduces Figure 9: the cumulative distribution of
// Facebook2009 job runtimes standalone, interfered by TeraGen on native
// Hadoop, and isolated by IBIS SFQ(D2) at 32:1.
type Fig09Result struct {
	Scale float64
	Seed  int64
	Cases []Fig09Case
}

// Fig09 runs the three Facebook2009 scenarios.
func Fig09(scale float64) (*Fig09Result, error) {
	const seed = 2009
	out := &Fig09Result{Scale: scale, Seed: seed}

	// All Facebook jobs run in a Fair Scheduler pool pinned to half the
	// testbed's CPU and memory, mirroring "the CPU and memory resources
	// allocated to Facebook2009 are kept to half of the total resources
	// for all the cases".
	fbJobs := func(weight float64) []Entry {
		jobs := workloads.FacebookWorkload(workloads.FacebookConfig{
			Seed:             seed,
			ScaleBytes:       scale,
			Weight:           weight,
			MeanInterarrival: 6,
		})
		entries := make([]Entry, 0, len(jobs))
		for _, j := range jobs {
			j.Spec.Pool = "facebook"
			entries = append(entries, Entry{Spec: j.Spec, Delay: j.Arrival})
		}
		return entries
	}
	definePools := func(rt *mapreduce.Runtime) error {
		rt.DefinePool("facebook", halfCores, 96)
		return nil
	}

	collect := func(name string, res *Result, p90, mean float64) {
		d := metrics.NewDistribution()
		for jobName, rs := range res.Jobs {
			if !strings.HasPrefix(jobName, "fb") {
				continue
			}
			for _, r := range rs {
				d.Add(r.Runtime())
			}
		}
		out.Cases = append(out.Cases, Fig09Case{Name: name, Runtimes: d, Paper90th: p90, PaperMean: mean})
	}

	// Standalone: Facebook alone in its half-resources pool.
	sa, err := RunWithSetup(Options{Scale: scale, Policy: cluster.Native}, fbJobs(1), definePools)
	if err != nil {
		return nil, err
	}
	collect("standalone", sa, 120, 98)

	// Interfered: with TeraGen, no I/O management.
	inter, err := RunWithSetup(Options{Scale: scale, Policy: cluster.Native},
		append(fbJobs(1), teraGen(scale, 1)), definePools)
	if err != nil {
		return nil, err
	}
	collect("interfered", inter, 230, 168)

	// SFQ(D2): 32:1 favoring the Facebook jobs.
	d2, err := RunWithSetup(Options{Scale: scale, Policy: cluster.SFQD2},
		append(fbJobs(32), teraGen(scale, 1)), definePools)
	if err != nil {
		return nil, err
	}
	collect("sfq(d2)", d2, 138, 115)
	return out, nil
}

// String renders the CDF summary.
func (r *Fig09Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: Facebook2009 job runtime CDF (50 SWIM jobs, scale %.3g, seed %d)\n", r.Scale, r.Seed)
	fmt.Fprintf(&b, "  %-11s %6s %9s %9s %9s %11s %11s\n",
		"case", "jobs", "mean(s)", "p50(s)", "p90(s)", "paper-p90", "paper-mean")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "  %-11s %6d %9.1f %9.1f %9.1f %11.0f %11.0f\n",
			c.Name, c.Runtimes.N(), c.Runtimes.Mean(),
			c.Runtimes.Percentile(50), c.Runtimes.Percentile(90),
			c.Paper90th, c.PaperMean)
	}
	b.WriteString("  (paper shape: interfered ≫ sfq(d2) ≈ standalone)\n")
	return b.String()
}

// Case returns a named case (nil if absent).
func (r *Fig09Result) Case(name string) *Fig09Case {
	for i := range r.Cases {
		if r.Cases[i].Name == name {
			return &r.Cases[i]
		}
	}
	return nil
}
