package experiments

import (
	"fmt"
	"strings"

	"ibis/internal/cluster"
	"ibis/internal/hive"
	"ibis/internal/iosched"
	"ibis/internal/mapreduce"
	"ibis/internal/metrics"
)

// Fig10Row is one policy of the multi-framework experiment for one
// query.
type Fig10Row struct {
	Policy string
	// QueryRel and TSRel are the runtimes relative to standalone
	// (1.0 = no interference loss), Figure 10a's metric.
	QueryRel float64
	TSRel    float64
	// AvgRel is the average relative performance, Figure 10b's metric.
	AvgRel float64
	// PaperQueryRel is the published relative query performance.
	PaperQueryRel float64
}

// Fig10Query holds the four-policy comparison for one TPC-H query.
type Fig10Query struct {
	Query           string
	StandaloneQuery float64
	StandaloneTS    float64
	Rows            []Fig10Row
}

// Fig10Result reproduces Figures 10a and 10b: TPC-H queries on Hive
// versus TeraSort on MapReduce under Native, cgroups-weight (100:1),
// cgroups-throttle (1 MB/s), and IBIS (100:1).
type Fig10Result struct {
	Scale   float64
	Queries []Fig10Query
}

// Fig10 runs both queries through all four policies.
func Fig10(scale float64) (*Fig10Result, error) {
	out := &Fig10Result{Scale: scale}
	paper := map[string]map[string]float64{
		"q21": {"native": 0.648, "cg-weight": 0.656, "cg-throttle": 0.664, "ibis": 0.80},
		"q9":  {"native": 0.74, "cg-weight": 0.83, "cg-throttle": 0.91, "ibis": 0.91},
	}
	for _, q := range []hive.Query{hive.Q21(), hive.Q9()} {
		fq, err := fig10Query(scale, q, paper[q.Name])
		if err != nil {
			return nil, err
		}
		out.Queries = append(out.Queries, *fq)
	}
	return out, nil
}

// tsApp is the fixed application ID the TeraSort contender carries so
// throttle limits can reference it.
const tsApp = iosched.AppID("terasort")

func fig10Query(scale float64, q hive.Query, paper map[string]float64) (*Fig10Query, error) {
	// Standalone query (half the cores, alone on the cluster).
	queryRuntime := func(opts Options, qWeight float64, withTS bool, tsWeight float64) (qRt, tsRt float64, err error) {
		var exec *hive.Execution
		entries := []Entry{}
		if withTS {
			ts := teraSortContender(scale, tsWeight)
			ts.Spec.App = tsApp
			entries = append(entries, ts)
		}
		res, err := RunWithSetup(opts, entries, func(rt *mapreduce.Runtime) error {
			rt.DefinePool("hive", halfCores, halfMemGB)
			var e2 error
			exec, e2 = hive.Run(rt, q, hive.RunOptions{
				Weight:     qWeight,
				CPUQuota:   halfCores,
				Pool:       "hive",
				ScaleBytes: scale,
			})
			return e2
		})
		if err != nil {
			return 0, 0, err
		}
		if !exec.Done() {
			return 0, 0, fmt.Errorf("fig10: query %s incomplete", q.Name)
		}
		if withTS {
			tsRt = res.JobResult("terasort").Runtime()
		}
		return exec.Runtime(), tsRt, nil
	}

	saQ, _, err := queryRuntime(Options{Scale: scale, Policy: cluster.Native}, 1, false, 1)
	if err != nil {
		return nil, err
	}
	saTSres, err := standalone(Options{Scale: scale, Policy: cluster.Native}, func() Entry {
		ts := teraSortContender(scale, 1)
		ts.Spec.App = tsApp
		return ts
	}())
	if err != nil {
		return nil, err
	}
	saTS := saTSres.Runtime()

	fq := &Fig10Query{Query: q.Name, StandaloneQuery: saQ, StandaloneTS: saTS}
	type policyCase struct {
		name     string
		opts     Options
		qWeight  float64
		tsWeight float64
	}
	cases := []policyCase{
		{"native", Options{Scale: scale, Policy: cluster.Native}, 1, 1},
		{"cg-weight", Options{Scale: scale, Policy: cluster.CGWeight}, 100, 1},
		// The nominal 1 MB/s blkio cap translates to a much higher
		// effective device-level cap: blkio v1 never sees buffered
		// writes or page-cache read hits, which absorb the bulk of the
		// intermediate traffic. 20 MB/s per device (scaled) models the
		// residual direct I/O the throttle actually bites on.
		{"cg-throttle", Options{
			Scale: scale, Policy: cluster.CGThrottle,
			ThrottleLimits: map[iosched.AppID]float64{tsApp: 20e6 * scale * 8},
		}, 1, 1},
		{"ibis", Options{Scale: scale, Policy: cluster.SFQD2}, 100, 1},
	}
	for _, c := range cases {
		qRt, tsRt, err := queryRuntime(c.opts, c.qWeight, true, c.tsWeight)
		if err != nil {
			return nil, err
		}
		qRel := metrics.RelativePerformance(qRt, saQ)
		tsRel := metrics.RelativePerformance(tsRt, saTS)
		fq.Rows = append(fq.Rows, Fig10Row{
			Policy:        c.name,
			QueryRel:      qRel,
			TSRel:         tsRel,
			AvgRel:        (qRel + tsRel) / 2,
			PaperQueryRel: paper[c.name],
		})
	}
	return fq, nil
}

// String renders both panels.
func (r *Fig10Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: TPC-H on Hive vs TeraSort on MapReduce (scale %.3g)\n", r.Scale)
	for _, q := range r.Queries {
		fmt.Fprintf(&b, " %s: standalone query %.1fs, standalone terasort %.1fs\n",
			strings.ToUpper(q.Query), q.StandaloneQuery, q.StandaloneTS)
		fmt.Fprintf(&b, "  %-12s %10s %10s %10s %10s\n", "policy", "query-rel", "paper", "ts-rel", "avg-rel")
		for _, row := range q.Rows {
			fmt.Fprintf(&b, "  %-12s %10.2f %10.2f %10.2f %10.2f\n",
				row.Policy, row.QueryRel, row.PaperQueryRel, row.TSRel, row.AvgRel)
		}
	}
	b.WriteString("  (paper shape: IBIS best query-rel; throttle hurts TeraSort; native worst for Q21)\n")
	return b.String()
}
