package experiments

import (
	"testing"

	"ibis/internal/cluster"
	"ibis/internal/hive"
	"ibis/internal/mapreduce"
)

func TestDebugQ9(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	scale := 0.125
	stageTimes := func(opts Options, weight float64, withTS bool) []float64 {
		var cl *cluster.Cluster
		var exec *hive.Execution
		entries := []Entry{}
		if withTS {
			ts := teraSortContender(scale, 1)
			ts.Spec.App = tsApp
			entries = append(entries, ts)
		}
		res, err := RunWithSetup(opts, entries, func(rt *mapreduce.Runtime) error {
			cl = rt.Cluster()
			var e2 error
			exec, e2 = hive.Run(rt, hive.Q9(), hive.RunOptions{
				Weight: weight, CPUQuota: halfCores, ScaleBytes: scale,
			})
			return e2
		})
		if err != nil {
			t.Fatal(err)
		}
		nicBusy := 0.0
		diskBusy := 0.0
		for _, n := range cl.Nodes {
			nicBusy += n.NICOutBusy()
			diskBusy += n.HDFS.BusyTime() + n.Local.BusyTime()
		}
		t.Logf("  duration=%.1f nic-out-busy=%.1f%% disks-busy=%.1f%%",
			res.Duration, nicBusy/8/res.Duration*100, diskBusy/16/res.Duration*100)
		var out []float64
		for si, j := range exec.StageJobs() {
			out = append(out, j.Result().Runtime())
			if si == 3 {
				firstMapStart, lastMapEnd := 1e18, 0.0
				var redStarts, redShufDone, redEnds []float64
				for _, tt := range j.TaskTimings() {
					if tt.Kind == "map" {
						if tt.Start < firstMapStart {
							firstMapStart = tt.Start
						}
						if tt.End > lastMapEnd {
							lastMapEnd = tt.End
						}
					} else {
						redStarts = append(redStarts, tt.Start)
						redShufDone = append(redShufDone, tt.ShuffleDone)
						redEnds = append(redEnds, tt.End)
					}
				}
				t.Logf("  stage3: submit=%.1f maps [%.1f..%.1f]", j.SubmitTime, firstMapStart, lastMapEnd)
				for i := range redStarts {
					t.Logf("  stage3 reduce %d: start=%.1f shufDone=%.1f end=%.1f", i, redStarts[i], redShufDone[i], redEnds[i])
				}
			}
		}
		return out
	}
	alone := stageTimes(Options{Scale: scale, Policy: cluster.Native}, 1, false)
	ibis := stageTimes(Options{Scale: scale, Policy: cluster.SFQD2}, 100, true)
	for i := range alone {
		t.Logf("stage %d: alone=%.1f ibis=%.1f (x%.2f)", i, alone[i], ibis[i], ibis[i]/alone[i])
	}
}
