package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

type strResult string

func (s strResult) String() string { return string(s) }

func makeJobs(n int, started *atomic.Int32) []Job {
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job{
			Name: fmt.Sprintf("job%02d", i),
			Run: func() (fmt.Stringer, error) {
				if started != nil {
					started.Add(1)
				}
				// Later jobs finish sooner, so parallel completion order
				// inverts submission order — yield order must not.
				time.Sleep(time.Duration(n-i) * time.Millisecond)
				return strResult(fmt.Sprintf("out%02d", i)), nil
			},
		}
	}
	return jobs
}

// TestRunAllOrderPreserved checks the core guarantee: whatever the
// parallelism, results are yielded strictly in submission order, so the
// consumer's output stream is identical to a serial run.
func TestRunAllOrderPreserved(t *testing.T) {
	for _, parallel := range []int{1, 2, 4, 16} {
		var got []string
		err := RunAll(makeJobs(12, nil), parallel, func(r JobResult) error {
			if r.Err != nil {
				return r.Err
			}
			got = append(got, r.Name+":"+r.Output.String())
			return nil
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if len(got) != 12 {
			t.Fatalf("parallel=%d: yielded %d results, want 12", parallel, len(got))
		}
		for i, g := range got {
			want := fmt.Sprintf("job%02d:out%02d", i, i)
			if g != want {
				t.Fatalf("parallel=%d: result %d = %q, want %q (order not preserved)", parallel, i, g, want)
			}
		}
	}
}

// TestRunAllStopsOnYieldError checks that a yield error propagates and
// prevents unstarted jobs from launching.
func TestRunAllStopsOnYieldError(t *testing.T) {
	var started atomic.Int32
	boom := errors.New("boom")
	n := 0
	err := RunAll(makeJobs(50, &started), 2, func(r JobResult) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n != 3 {
		t.Fatalf("yield ran %d times, want 3 (stop after error)", n)
	}
	if got := started.Load(); got == 50 {
		t.Fatal("all 50 jobs started despite early error; launching was not stopped")
	}
}

// TestRunAllJobErrorSurfaced checks a failing job reaches yield with
// its error and a nil output.
func TestRunAllJobErrorSurfaced(t *testing.T) {
	bad := errors.New("experiment exploded")
	jobs := []Job{
		{Name: "ok", Run: func() (fmt.Stringer, error) { return strResult("fine"), nil }},
		{Name: "bad", Run: func() (fmt.Stringer, error) { return nil, bad }},
	}
	var seen []error
	err := RunAll(jobs, 4, func(r JobResult) error {
		seen = append(seen, r.Err)
		return r.Err
	})
	if !errors.Is(err, bad) {
		t.Fatalf("err = %v, want job error", err)
	}
	if len(seen) != 2 || seen[0] != nil || !errors.Is(seen[1], bad) {
		t.Fatalf("yield saw errors %v, want [nil, bad]", seen)
	}
}

// TestRunAllBoundedConcurrency checks the worker pool never exceeds the
// requested parallelism.
func TestRunAllBoundedConcurrency(t *testing.T) {
	const limit = 3
	var inFlight, peak atomic.Int32
	jobs := make([]Job, 20)
	for i := range jobs {
		jobs[i] = Job{
			Name: fmt.Sprintf("j%d", i),
			Run: func() (fmt.Stringer, error) {
				cur := inFlight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				inFlight.Add(-1)
				return strResult("x"), nil
			},
		}
	}
	if err := RunAll(jobs, limit, func(JobResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > limit {
		t.Fatalf("peak concurrency %d exceeds limit %d", p, limit)
	}
}
