package experiments

import (
	"fmt"
	"math"
	"strings"

	"ibis/internal/cluster"
	"ibis/internal/iosched"
	"ibis/internal/metrics"
	"ibis/internal/sim"
)

// Fig11Row is one configuration of the proportional-slowdown study.
type Fig11Row struct {
	Config     string
	TSSlowdown float64
	TGSlowdown float64
	// PaperTS / PaperTG are the published slowdowns.
	PaperTS float64
	PaperTG float64
}

// Gap returns |TS−TG| slowdown — zero is perfect equal slowdown.
func (r Fig11Row) Gap() float64 { return math.Abs(r.TSSlowdown - r.TGSlowdown) }

// Avg returns the mean slowdown of the two applications.
func (r Fig11Row) Avg() float64 { return (r.TSSlowdown + r.TGSlowdown) / 2 }

// Fig11Result reproduces Figure 11: achieving equal slowdown for
// TeraSort and TeraGen. The paper's administrator tunes allocation
// ratios until the slowdowns equalize; the experiment performs that
// tuning as a sweep and reports the best configuration each mechanism
// can reach — CPU-share tuning alone (Fair Scheduler) versus joint
// CPU + IBIS I/O-weight tuning.
type Fig11Result struct {
	Scale        float64
	StandaloneTS float64
	StandaloneTG float64
	// FSBest is the best equal-slowdown point reachable with CPU shares
	// only (paper: 83%/61%); FSIBISBest adds IBIS I/O weights
	// (paper: perfect 42%/42%).
	FSBest     Fig11Row
	FSIBISBest Fig11Row
	// Swept records every configuration tried, for the full picture.
	Swept []Fig11Row
}

// fig11TeraGen builds the TeraGen entry with Table 1's replication 3 —
// the proportional-slowdown experiments follow the stock configuration.
func fig11TeraGen(scale, weight float64) Entry {
	e := teraGen(scale, weight)
	e.Spec.OutputReplication = 0 // namenode default (3)
	return e
}

// Fig11 sweeps the tuning space.
func Fig11(scale float64) (*Fig11Result, error) {
	saTS, err := standalone(Options{Scale: scale, Policy: cluster.Native}, fullCores(teraSortContender(scale, 1)))
	if err != nil {
		return nil, err
	}
	saTG, err := standalone(Options{Scale: scale, Policy: cluster.Native}, fullCores(fig11TeraGen(scale, 1)))
	if err != nil {
		return nil, err
	}
	out := &Fig11Result{Scale: scale, StandaloneTS: saTS.Runtime(), StandaloneTG: saTG.Runtime()}

	measure := func(name string, policy cluster.Policy, tsCores, tgCores int, tsW, tgW float64, coordinate bool) (Fig11Row, error) {
		ts := withShare(withWeight(teraSortContender(scale, tsW), tsW), tsCores)
		tg := withShare(withWeight(fig11TeraGen(scale, tgW), tgW), tgCores)
		res, err := Run(Options{Scale: scale, Policy: policy, Coordinate: coordinate},
			[]Entry{ts, tg})
		if err != nil {
			return Fig11Row{}, err
		}
		return Fig11Row{
			Config:     name,
			TSSlowdown: metrics.Slowdown(res.JobResult("terasort").Runtime(), saTS.Runtime()),
			TGSlowdown: metrics.Slowdown(res.JobResult("teragen").Runtime(), saTG.Runtime()),
		}, nil
	}

	// Phase 1: Fair Scheduler CPU shares only (native I/O path).
	best := Fig11Row{TSSlowdown: math.Inf(1)}
	for _, split := range [][2]int{{80, 16}, {72, 24}, {64, 32}, {48, 48}, {32, 64}} {
		row, err := measure(fmt.Sprintf("fs-%d:%d", split[0], split[1]),
			cluster.Native, split[0], split[1], 1, 1, false)
		if err != nil {
			return nil, err
		}
		out.Swept = append(out.Swept, row)
		if row.Gap() < best.Gap() || math.IsInf(best.TSSlowdown, 1) {
			best = row
		}
	}
	best.PaperTS, best.PaperTG = 0.83, 0.61
	out.FSBest = best

	// Phase 2: joint CPU + IBIS I/O-weight tuning.
	best = Fig11Row{TSSlowdown: math.Inf(1)}
	for _, split := range [][2]int{{72, 24}, {64, 32}, {48, 48}} {
		for _, w := range [][2]float64{{1, 1}, {2, 1}, {4, 1}, {8, 1}, {16, 1}, {32, 1}} {
			row, err := measure(
				fmt.Sprintf("fs-%d:%d+ibis-%g:%g", split[0], split[1], w[0], w[1]),
				cluster.SFQD2, split[0], split[1], w[0], w[1], true)
			if err != nil {
				return nil, err
			}
			out.Swept = append(out.Swept, row)
			if row.Gap() < best.Gap() || math.IsInf(best.TSSlowdown, 1) {
				best = row
			}
		}
	}
	best.PaperTS, best.PaperTG = 0.42, 0.42
	out.FSIBISBest = best
	return out, nil
}

// String renders the comparison.
func (r *Fig11Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: proportional (equal) slowdown of TeraSort vs TeraGen (scale %.3g)\n", r.Scale)
	fmt.Fprintf(&b, "  standalone: terasort %.1fs, teragen %.1fs\n", r.StandaloneTS, r.StandaloneTG)
	fmt.Fprintf(&b, "  %-22s %8s %8s %8s %8s %8s\n", "best config", "ts-slow", "tg-slow", "gap", "paper-ts", "paper-tg")
	for _, row := range []Fig11Row{r.FSBest, r.FSIBISBest} {
		fmt.Fprintf(&b, "  %-22s %7.0f%% %7.0f%% %7.0f%% %7.0f%% %7.0f%%\n",
			row.Config, row.TSSlowdown*100, row.TGSlowdown*100, row.Gap()*100,
			row.PaperTS*100, row.PaperTG*100)
	}
	fmt.Fprintf(&b, "  swept %d configurations; paper shape: joint tuning reaches a smaller gap\n", len(r.Swept))
	return b.String()
}

// Fig12Result reproduces Figure 12: the benefit of distributed
// scheduling coordination (Sync vs No Sync). Two measurements:
//
//  1. The paper's macro experiment — TeraSort vs TeraGen, CPU 1:1, I/O
//     32:1 favoring TeraSort, SFQ(D2) with and without the broker.
//  2. A total-service microbenchmark isolating what coordination
//     provides: an application present on only a quarter of the
//     datanodes versus one backlogged everywhere, equal weights. Local
//     fairness alone gives the narrow app ≈ its share of its own nodes;
//     coordination raises it to its share of the *total* service.
type Fig12Result struct {
	Scale        float64
	StandaloneTS float64
	StandaloneTG float64
	NoSync       Fig11Row
	Sync         Fig11Row
	// Micro ratios: wide-app service ÷ narrow-app service, equal
	// weights (ideal total-service sharing → 1.0).
	MicroNoSyncRatio float64
	MicroSyncRatio   float64
}

// Fig12 runs the coordination ablation.
func Fig12(scale float64) (*Fig12Result, error) {
	saTS, err := standalone(Options{Scale: scale, Policy: cluster.Native}, fullCores(teraSortContender(scale, 1)))
	if err != nil {
		return nil, err
	}
	saTG, err := standalone(Options{Scale: scale, Policy: cluster.Native}, fullCores(fig11TeraGen(scale, 1)))
	if err != nil {
		return nil, err
	}
	out := &Fig12Result{Scale: scale, StandaloneTS: saTS.Runtime(), StandaloneTG: saTG.Runtime()}

	run := func(coordinate bool) (Fig11Row, error) {
		ts := withWeight(teraSortContender(scale, 32), 32)
		tg := fig11TeraGen(scale, 1)
		res, err := Run(Options{Scale: scale, Policy: cluster.SFQD2, Coordinate: coordinate},
			[]Entry{ts, tg})
		if err != nil {
			return Fig11Row{}, err
		}
		name := "no-sync"
		if coordinate {
			name = "sync"
		}
		return Fig11Row{
			Config:     name,
			TSSlowdown: metrics.Slowdown(res.JobResult("terasort").Runtime(), saTS.Runtime()),
			TGSlowdown: metrics.Slowdown(res.JobResult("teragen").Runtime(), saTG.Runtime()),
		}, nil
	}
	if out.NoSync, err = run(false); err != nil {
		return nil, err
	}
	if out.Sync, err = run(true); err != nil {
		return nil, err
	}
	out.MicroNoSyncRatio = microServiceRatio(false)
	out.MicroSyncRatio = microServiceRatio(true)
	return out, nil
}

// microServiceRatio runs the uneven-presence microbenchmark and returns
// wide/narrow total service after 60 simulated seconds.
func microServiceRatio(coordinate bool) float64 {
	ratio, _ := microRun(coordinate, 1, 8)
	return ratio
}

// microRun is the generalized uneven-presence microbenchmark: one app
// backlogged on every node, another on a quarter of them, equal
// weights, SFQ(D=2) schedulers, configurable coordination period and
// cluster size. Returns the wide/narrow service ratio and the broker
// exchange count.
func microRun(coordinate bool, period float64, nodes int) (float64, uint64) {
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{
		Nodes:              nodes,
		Policy:             cluster.SFQD,
		SFQDepth:           2,
		Coordinate:         coordinate,
		CoordinationPeriod: period,
	})
	if err != nil {
		panic(err)
	}
	var wide, narrow float64
	backlog := func(n *cluster.Node, app iosched.AppID, served *float64) {
		var issue func()
		issue = func() {
			n.SubmitIO(&iosched.Request{
				App: app, Shares: iosched.FixedWeight(1), Class: iosched.PersistentRead, Size: 2e6,
				OnDone: func(float64) {
					*served += 2e6
					if eng.Now() < 60 {
						issue()
					}
				},
			})
		}
		for i := 0; i < 4; i++ {
			issue()
		}
	}
	quarter := nodes / 4
	if quarter < 1 {
		quarter = 1
	}
	for i, n := range cl.Nodes {
		backlog(n, "wide", &wide)
		if i < quarter {
			backlog(n, "narrow", &narrow)
		}
	}
	eng.RunUntil(60)
	var exchanges uint64
	if cl.Broker != nil {
		exchanges = cl.Broker.Stats().Exchanges
	}
	if narrow == 0 {
		return math.Inf(1), exchanges
	}
	return wide / narrow, exchanges
}

// Improvement returns how much lower the Sync average slowdown is,
// relative to No Sync (paper: 25%).
func (r *Fig12Result) Improvement() float64 {
	if r.NoSync.Avg() <= 0 {
		return 0
	}
	return 1 - r.Sync.Avg()/r.NoSync.Avg()
}

// String renders the ablation.
func (r *Fig12Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: distributed coordination (CPU 1:1, I/O 32:1 favoring TeraSort, scale %.3g)\n", r.Scale)
	fmt.Fprintf(&b, "  %-9s %9s %9s %9s\n", "mode", "ts-slow", "tg-slow", "avg")
	for _, row := range []Fig11Row{r.NoSync, r.Sync} {
		fmt.Fprintf(&b, "  %-9s %8.0f%% %8.0f%% %8.0f%%\n",
			row.Config, row.TSSlowdown*100, row.TGSlowdown*100, row.Avg()*100)
	}
	fmt.Fprintf(&b, "  macro: sync changes average slowdown by %+.0f%% (paper: 25%% better)\n", r.Improvement()*100)
	fmt.Fprintf(&b, "  micro (app on 2/8 nodes vs app on 8/8, equal weights):\n")
	fmt.Fprintf(&b, "    no-sync wide/narrow service = %.2f   sync = %.2f\n",
		r.MicroNoSyncRatio, r.MicroSyncRatio)
	fmt.Fprintf(&b, "    (≈3.0 is the physical optimum: the narrow app's two disks saturate;\n")
	fmt.Fprintf(&b, "     local-only fairness leaves it ≈7× behind)\n")
	return b.String()
}
