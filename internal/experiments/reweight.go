package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"ibis/internal/audit"
	"ibis/internal/cluster"
	"ibis/internal/iosched"
	"ibis/internal/shares"
	"ibis/internal/sim"
)

// The reweight experiment measures the runtime control plane end to
// end: two tenants backlog every datanode under coordinated SFQ(D),
// one of them is reweighted live through the share tree mid-run, and
// the per-second service-ratio trajectory shows the cluster converging
// from the old proportional target to the new one — with full
// invariant auditing on, and zero violations expected outside the
// declared epoch reconvergence windows.

// reweightHorizon is the simulated duration in seconds.
const reweightHorizon = 60

// ReweightSpec scripts the live weight change.
type ReweightSpec struct {
	// At is the virtual time of the reweight (seconds).
	At float64
	// App is the application to reweight ("hot" or "base" in the
	// microbenchmark).
	App iosched.AppID
	// Weight is the new weight.
	Weight float64
}

// DefaultReweightSpec doubles down on the hot tenant mid-run: 1:1
// service before t=30, 8:1 after.
func DefaultReweightSpec() ReweightSpec {
	return ReweightSpec{At: 30, App: "hot", Weight: 8}
}

// reweightWindow is the trailing measurement window in seconds. The
// DSFQ delay mechanism redistributes service at coordination-period
// granularity, so per-second ratios oscillate by design; a few periods
// of smoothing recover the underlying share.
const reweightWindow = 5

// ReweightPoint is one sampled second of the trajectory.
type ReweightPoint struct {
	T     float64 `json:"t"`
	Ratio float64 `json:"ratio"` // hot/base service over the trailing window
}

// ReweightResult is the measured outcome.
type ReweightResult struct {
	Spec       ReweightSpec    `json:"spec"`
	OldTarget  float64         `json:"old_target"`
	NewTarget  float64         `json:"new_target"`
	Trajectory []ReweightPoint `json:"trajectory"`
	// ConvergedAt is the start of the first post-reweight second from
	// which the ratio stays within 20% of the new target for the rest
	// of the run (+Inf if never).
	ConvergedAt float64 `json:"converged_at"`
	// TenantRatio is the broker's cumulative tenant-level service ratio
	// over the whole run (dominated by the post-reweight regime only as
	// far as the reweight point allows).
	TenantRatio float64 `json:"tenant_ratio"`
	// Epoch is the share tree's final version; EpochWindows counts the
	// audit's epoch-noted reconvergence windows, EpochSkips the share
	// checks suspended inside them.
	Epoch        uint64 `json:"epoch"`
	EpochWindows uint64 `json:"epoch_windows"`
	EpochSkips   uint64 `json:"epoch_skips"`
	// Violations is the total audit violation count — the acceptance
	// bar is zero, since share checks inside epoch windows are
	// suspended rather than failed.
	Violations uint64 `json:"violations"`
}

// Reweight runs the live-reconfiguration microbenchmark: apps "hot"
// and "base" (both weight 1, each under its own named tenant) backlog
// all 8 nodes; spec.App is reweighted at spec.At through the cluster's
// share tree — the same control plane ibis.Sim.SetWeight drives.
func Reweight(spec ReweightSpec) (*ReweightResult, error) {
	if spec.App != "hot" && spec.App != "base" {
		return nil, fmt.Errorf("reweight: app %q not in the microbenchmark (want hot or base)", spec.App)
	}
	if spec.Weight <= 0 {
		return nil, fmt.Errorf("reweight: weight %g must be positive", spec.Weight)
	}
	if spec.At <= 2 || spec.At >= reweightHorizon-5 {
		return nil, fmt.Errorf("reweight: t=%g outside the measurable (2, %d) range", spec.At, reweightHorizon-5)
	}
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{
		Nodes:              8,
		Policy:             cluster.SFQD,
		SFQDepth:           2,
		Coordinate:         true,
		CoordinationPeriod: 1,
	})
	if err != nil {
		return nil, err
	}
	tree := cl.Shares()
	for _, app := range []iosched.AppID{"hot", "base"} {
		if err := tree.Tenant("t-"+string(app), 1); err != nil {
			return nil, err
		}
		if err := tree.Bind(app, "t-"+string(app), 1); err != nil {
			return nil, err
		}
	}

	au := audit.New(audit.Options{CoordinationPeriod: 1})
	au.AttachBroker(cl.Broker)
	au.SetShares(tree)
	cl.Instrument(func(node int, dev string, sched iosched.Scheduler) iosched.Probe {
		return au.Probe(node, dev, sched)
	})
	cl.SetDegradeObserver(au.NoteDegradeStart, au.NoteDegradeEnd)
	tree.OnChange(func(tr shares.Transition) { au.NoteEpochChange(tr.Time) })

	var hot, base float64
	backlog := func(n *cluster.Node, app iosched.AppID, served *float64) {
		var issue func()
		issue = func() {
			// No Shares on the request: SubmitIO resolves through the
			// node's share tree — the path under test.
			if err := n.SubmitIO(&iosched.Request{
				App: app, Class: iosched.PersistentRead, Size: 2e6,
				OnDone: func(float64) {
					*served += 2e6
					if eng.Now() < reweightHorizon {
						issue()
					}
				},
			}); err != nil {
				panic(err)
			}
		}
		for i := 0; i < 4; i++ {
			issue()
		}
	}
	for _, n := range cl.Nodes {
		backlog(n, "hot", &hot)
		backlog(n, "base", &base)
	}

	// The live reweight, through the same tree the schedulers resolve.
	eng.ScheduleDaemon(spec.At, func() {
		if err := tree.SetAppWeight(spec.App, spec.Weight); err != nil {
			panic(err)
		}
	})

	// Per-second service snapshots.
	type snap struct{ hot, base float64 }
	samples := make([]snap, reweightHorizon+1)
	for s := 1; s <= reweightHorizon; s++ {
		s := s
		eng.ScheduleDaemon(float64(s), func() { samples[s] = snap{hot, base} })
	}

	eng.RunUntil(reweightHorizon)
	au.Finish()

	res := &ReweightResult{Spec: spec, OldTarget: 1, NewTarget: spec.Weight}
	if spec.App == "base" {
		res.NewTarget = 1 / spec.Weight
	}
	for s := reweightWindow; s <= reweightHorizon; s++ {
		prev := samples[s-reweightWindow]
		dh, db := samples[s].hot-prev.hot, samples[s].base-prev.base
		pt := ReweightPoint{T: float64(s)}
		if db > 0 {
			pt.Ratio = dh / db
		}
		res.Trajectory = append(res.Trajectory, pt)
	}
	// Convergence: last suffix of the trajectory entirely within 25% of
	// the new target. A point at time T covers (T-window, T], so the
	// first clean window can close no earlier than At+window.
	res.ConvergedAt = -1
	for i := len(res.Trajectory) - 1; i >= 0; i-- {
		pt := res.Trajectory[i]
		if pt.T <= spec.At+reweightWindow {
			break
		}
		if pt.Ratio < res.NewTarget*0.75 || pt.Ratio > res.NewTarget*1.25 {
			break
		}
		res.ConvergedAt = pt.T
	}
	if tt := cl.Broker.TenantTotals(); tt["t-base"] > 0 {
		res.TenantRatio = tt["t-hot"] / tt["t-base"]
	}
	checks := au.Checks()
	res.Epoch = tree.Epoch()
	res.EpochWindows = checks["epoch-noted"]
	res.EpochSkips = checks["share-skipped-epoch"]
	res.Violations = au.ViolationCount()
	return res, nil
}

// String renders the trajectory plus a machine-readable BENCH line.
func (r *ReweightResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Live reweight: %s %g -> %g at t=%gs (8 nodes, SFQ(D), coordinated, audited)\n",
		r.Spec.App, 1.0, r.Spec.Weight, r.Spec.At)
	fmt.Fprintf(&b, "  hot/base service-ratio target: %.3g before, %.3g after\n", r.OldTarget, r.NewTarget)
	fmt.Fprintf(&b, "  %-6s %s\n", "t(s)", fmt.Sprintf("hot/base ratio (trailing %ds window)", reweightWindow))
	for _, pt := range r.Trajectory {
		if int(pt.T)%5 != 0 {
			continue // print every 5s; the BENCH line has every sample
		}
		fmt.Fprintf(&b, "  %-6.0f %.3f\n", pt.T, pt.Ratio)
	}
	conv := "never"
	if r.ConvergedAt >= 0 {
		conv = fmt.Sprintf("%.0fs (%.0fs after the change)", r.ConvergedAt, r.ConvergedAt-r.Spec.At)
	}
	fmt.Fprintf(&b, "  converged (±25%%) at %s; tenant-level cumulative ratio %.3f\n", conv, r.TenantRatio)
	fmt.Fprintf(&b, "  epoch %d, %d epoch windows, %d share checks suspended, %d violations\n",
		r.Epoch, r.EpochWindows, r.EpochSkips, r.Violations)
	if js, err := json.Marshal(r); err == nil {
		fmt.Fprintf(&b, "BENCH %s\n", js)
	}
	return b.String()
}
