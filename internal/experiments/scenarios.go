package experiments

import (
	"ibis/internal/mapreduce"
	"ibis/internal/workloads"
)

// Paper-scale workload volumes (bytes), scaled by Options.Scale at run
// time. The evaluation uses WordCount on 50 GB of Wikipedia text,
// TeraGen producing 1 TB, TeraSort on 50–400 GB, and TeraValidate over
// TeraSort-sized output.
const (
	wcInputFull = 50e9
	tgOutFull   = 1e12
	tsInputFull = 50e9
	// tsCoFull is the TeraSort size used when it acts as the sustained
	// co-runner/contender (the paper sweeps TeraSort 50–400 GB; a large
	// input keeps the contention pressure up for the victim's full
	// runtime).
	tsCoFull    = 200e9
	tvInputFull = 200e9
)

// halfCores is the pinned CPU allocation used throughout Section 7:
// each of the two competing applications gets half of the 96 cores.
const halfCores = 48

// halfMemGB is the matching memory pin: half of the 192 GB task memory.
const halfMemGB = 96

// pinned wraps a spec as an Entry in its own half-resources pool,
// mirroring the paper's "each with half of the CPU cores and memory".
func pinned(s mapreduce.JobSpec) Entry {
	s.CPUQuota = halfCores
	s.Pool = s.Name
	return Entry{Spec: s, PoolCores: halfCores, PoolMemGB: halfMemGB}
}

// withShare re-pins an entry to an arbitrary share of the 96-core,
// 192 GB testbed.
func withShare(e Entry, cores int) Entry {
	e.Spec.CPUQuota = cores
	e.Spec.Pool = e.Spec.Name
	e.PoolCores = cores
	e.PoolMemGB = 192 * float64(cores) / 96
	return e
}

// wordCount builds the standard WordCount entry: 50 GB input, half the
// cluster's resources, and the given I/O weight.
func wordCount(scale, weight float64) Entry {
	s := workloads.WordCountSpec(wcInputFull*scale, 6)
	s.Weight = weight
	return pinned(s)
}

// teraGen builds the TeraGen entry (1 TB output at paper scale). As is
// standard benchmark practice, the generated data is written with
// replication 1; the write pressure stays on the generating node's own
// HDFS disk.
func teraGen(scale, weight float64) Entry {
	s := workloads.TeraGenSpec(tgOutFull*scale, 96)
	s.Weight = weight
	s.OutputReplication = 1
	return pinned(s)
}

// teraSort builds the TeraSort entry (50 GB input at paper scale).
func teraSort(scale, weight float64) Entry {
	s := workloads.TeraSortSpec(tsInputFull*scale, 24)
	s.Weight = weight
	return pinned(s)
}

// teraSortContender builds the sustained 200 GB TeraSort co-runner.
func teraSortContender(scale, weight float64) Entry {
	s := workloads.TeraSortSpec(tsCoFull*scale, 24)
	s.Weight = weight
	return pinned(s)
}

// teraValidate builds the TeraValidate scan entry.
func teraValidate(scale, weight float64) Entry {
	s := workloads.TeraValidateSpec(tvInputFull * scale)
	s.Weight = weight
	return pinned(s)
}

// fullCores removes the CPU and pool caps (standalone overhead runs
// use the whole testbed).
func fullCores(e Entry) Entry {
	e.Spec.CPUQuota = 0
	e.Spec.Pool = ""
	e.PoolCores = 0
	e.PoolMemGB = 0
	return e
}

// withWeight returns a copy of the entry with a different I/O weight.
func withWeight(e Entry, w float64) Entry {
	e.Spec.Weight = w
	return e
}

// standalone runs one entry alone and returns its result.
func standalone(opts Options, e Entry) (mapreduce.Result, error) {
	res, err := Run(opts, []Entry{e})
	if err != nil {
		return mapreduce.Result{}, err
	}
	return res.JobResult(e.Spec.Name), nil
}
