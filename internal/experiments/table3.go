package experiments

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Table3Component is one row of the development-cost table.
type Table3Component struct {
	Name      string
	Dirs      []string
	CodeLines int
	TestLines int
}

// Table3Result is the analogue of the paper's Table 3 (development
// cost of IBIS by component; the Hadoop prototype totals 6552 lines).
type Table3Result struct {
	Root       string
	Components []Table3Component
	TotalCode  int
	TotalTests int
}

// table3Components maps Table 3's rows onto this repository.
var table3Components = []Table3Component{
	{Name: "Interposition (requests, classes, routing)", Dirs: []string{"internal/iosched", "internal/cluster"}},
	{Name: "Scheduling coordination (broker, DSFQ)", Dirs: []string{"internal/broker"}},
	{Name: "Simulation substrate (engine, devices)", Dirs: []string{"internal/sim", "internal/storage"}},
	{Name: "Big-data substrate (DFS, MapReduce, Hive)", Dirs: []string{"internal/dfs", "internal/mapreduce", "internal/hive"}},
	{Name: "Workloads + baselines", Dirs: []string{"internal/workloads", "internal/cgroups"}},
	{Name: "Experiments + metrics + export", Dirs: []string{"internal/experiments", "internal/metrics", "internal/export"}},
	{Name: "Public API + tools + examples", Dirs: []string{".", "cmd", "examples"}},
}

// Table3 counts non-blank Go lines per component under root (the
// repository top). It fails softly: unreadable directories count zero.
func Table3(root string) (*Table3Result, error) {
	if root == "" {
		root = "."
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return nil, fmt.Errorf("experiments: %q does not look like the repository root: %w", root, err)
	}
	res := &Table3Result{Root: root}
	counted := map[string]bool{}
	for _, c := range table3Components {
		row := Table3Component{Name: c.Name, Dirs: c.Dirs}
		for _, d := range c.Dirs {
			code, tests := countGoLines(filepath.Join(root, d), d == ".")
			row.CodeLines += code
			row.TestLines += tests
			if !counted[d] {
				res.TotalCode += code
				res.TotalTests += tests
				counted[d] = true
			}
		}
		res.Components = append(res.Components, row)
	}
	return res, nil
}

// String renders the table.
func (r *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table 3: development cost by component\n")
	fmt.Fprintf(&b, "  %-46s %8s %8s\n", "component", "code", "tests")
	for _, c := range r.Components {
		fmt.Fprintf(&b, "  %-46s %8d %8d\n", c.Name, c.CodeLines, c.TestLines)
	}
	fmt.Fprintf(&b, "  %-46s %8d %8d\n", "TOTAL (unique)", r.TotalCode, r.TotalTests)
	b.WriteString("  (paper: 6552 lines — interposition 2593, SFQ(D) 734, SFQ(D2) 1520, coordination 1705)\n")
	return b.String()
}

// countGoLines counts non-blank lines of .go files under dir; shallow
// limits the scan to the directory itself (used for the repo root so
// subpackages are not double counted).
func countGoLines(dir string, shallow bool) (code, tests int) {
	count := func(path string) {
		if !strings.HasSuffix(path, ".go") {
			return
		}
		n := countFileLines(path)
		if strings.HasSuffix(path, "_test.go") {
			tests += n
		} else {
			code += n
		}
	}
	if shallow {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return
		}
		for _, e := range entries {
			if !e.IsDir() {
				count(filepath.Join(dir, e.Name()))
			}
		}
		return
	}
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil
		}
		count(path)
		return nil
	})
	return
}

func countFileLines(path string) int {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			n++
		}
	}
	return n
}
