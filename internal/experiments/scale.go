package experiments

import (
	"fmt"
	"strings"

	"ibis/internal/metrics"
	"ibis/internal/scale"
)

// ScaleSpec parameterizes the hollow-node scale experiment (the
// kubemark-style harness in internal/scale): the population shape, the
// target in-flight flow count, and the worker counts to pin
// determinism across.
type ScaleSpec struct {
	Nodes   int
	Tenants int
	// Apps is the per-tenant application count.
	Apps int
	// Flows is the target peak in-flight request count; the horizon is
	// derived from it unless Horizon is set explicitly.
	Flows int
	// Shards is the parallel worker count of the second leg (the first
	// leg always runs serial; equal digests pin determinism).
	Shards  int
	Seed    uint64
	Horizon float64
}

// DefaultScaleSpec is a CI-sized hollow run: two hundred nodes, a
// thousand tenants, a hundred thousand flows in flight.
func DefaultScaleSpec() ScaleSpec {
	return ScaleSpec{
		Nodes:   200,
		Tenants: 1000,
		Apps:    1,
		Flows:   100_000,
		Shards:  4,
		Seed:    1,
	}
}

// horizonFor derives the submission horizon that accumulates roughly
// spec.Flows outstanding requests: under the default 1.4× offered load
// with sizes uniform on [0.5, 2)×mean (served mean 1.25×mean), the
// per-node backlog grows at ≈ rate × (1.4 − 1/1.25) ≈ 60 requests/s.
func (s ScaleSpec) horizonFor() float64 {
	if s.Horizon > 0 {
		return s.Horizon
	}
	const backlogPerNode = 60.0
	h := float64(s.Flows) / (backlogPerNode * float64(s.Nodes))
	if h < 5 {
		h = 5
	}
	return h
}

func (s ScaleSpec) config(workers int) scale.Config {
	return scale.Config{
		Nodes:         s.Nodes,
		Tenants:       s.Tenants,
		AppsPerTenant: s.Apps,
		Replicas:      3,
		Seed:          s.Seed,
		Horizon:       s.horizonFor(),
		Workers:       workers,
		Audit:         true,
		// Sample roughly 16 nodes: full probe logs at thousands of
		// nodes would dominate the heap the harness is measuring.
		AuditSampleEvery: max(1, s.Nodes/16),
	}
}

// ScaleRow is one leg of the scale experiment.
type ScaleRow struct {
	Workers int
	Stats   metrics.ScaleStats
}

// ScaleResult reports the hollow-node scale experiment: the same
// generated population run serially and on the sharded fabric, with
// the deterministic surface (population, traffic, fairness, digest)
// printed on stdout and the host-dependent envelope (events/sec, peak
// heap, bytes/flow) surfaced through StderrNote.
type ScaleResult struct {
	Spec  ScaleSpec
	Rows  []ScaleRow
	Match bool // all digests identical across worker counts
}

func (r *ScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scale: hollow-node harness (flows target %d)\n", r.Spec.Flows)
	b.WriteString(r.Rows[0].Stats.Deterministic())
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "workers=%d digest=%016x\n", row.Workers, row.Stats.Digest)
	}
	fmt.Fprintf(&b, "deterministic-across-workers=%v\n", r.Match)
	return b.String()
}

// StderrNote reports the wall-clock envelope, which varies by host and
// must stay off the deterministic stdout surface.
func (r *ScaleResult) StderrNote() string {
	var b strings.Builder
	for i, row := range r.Rows {
		if i > 0 {
			b.WriteString("; ")
		}
		st := row.Stats
		fmt.Fprintf(&b, "workers=%d events/sec=%.0f wall=%.1fs peak-heap=%.0fMB bytes/flow=%.0f",
			row.Workers, st.EventsPerSec, st.WallSeconds, float64(st.PeakHeapBytes)/1e6, st.BytesPerFlow)
	}
	return b.String()
}

// ScaleBench runs the hollow-node scale experiment described by spec.
func ScaleBench(spec ScaleSpec) (*ScaleResult, error) {
	if spec.Nodes <= 0 || spec.Tenants <= 0 {
		return nil, fmt.Errorf("scale: nodes and tenants must be positive")
	}
	workers := []int{1}
	if spec.Shards > 1 {
		workers = append(workers, spec.Shards)
	}
	res := &ScaleResult{Spec: spec, Match: true}
	for _, w := range workers {
		rep, err := scale.Run(spec.config(w))
		if err != nil {
			return nil, err
		}
		if rep.AuditErr != nil {
			return nil, fmt.Errorf("scale: workers=%d audit: %w", w, rep.AuditErr)
		}
		res.Rows = append(res.Rows, ScaleRow{Workers: w, Stats: rep.Stats})
		if rep.Stats.Digest != res.Rows[0].Stats.Digest {
			res.Match = false
		}
	}
	if !res.Match {
		return nil, fmt.Errorf("scale: digests diverged across worker counts")
	}
	return res, nil
}
