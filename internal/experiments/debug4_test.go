package experiments

import (
	"testing"

	"ibis/internal/cluster"
	"ibis/internal/metrics"
)

func TestDebugFig12Variants(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	scale := 0.125
	saTS, _ := standalone(Options{Scale: scale, Policy: cluster.Native}, fullCores(teraSortContender(scale, 1)))
	saTG, _ := standalone(Options{Scale: scale, Policy: cluster.Native}, fullCores(teraGen(scale, 1)))

	variant := func(name string, mkTS func() Entry, mkTG func() Entry) {
		for _, sync := range []bool{false, true} {
			res, err := Run(Options{Scale: scale, Policy: cluster.SFQD2, Coordinate: sync},
				[]Entry{mkTS(), mkTG()})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			ts := res.JobResult("terasort")
			tg := res.JobResult("teragen")
			var tsBytes, tgBytes float64
			for app, b := range res.PerAppBytes {
				if app == "terasort-0" || app == "terasort-1" {
					tsBytes = b
				} else {
					tgBytes = b
				}
			}
			t.Logf("%s sync=%v: ts-slow=%.0f%% tg-slow=%.0f%% service-ratio=%.1f",
				name, sync,
				metrics.Slowdown(ts.Runtime(), saTS.Runtime())*100,
				metrics.Slowdown(tg.Runtime(), saTG.Runtime())*100,
				tsBytes/tgBytes)
		}
	}

	variant("base", func() Entry { return withWeight(teraSortContender(scale, 32), 32) },
		func() Entry { return teraGen(scale, 1) })

	variant("tg-repl3", func() Entry { return withWeight(teraSortContender(scale, 32), 32) },
		func() Entry {
			e := teraGen(scale, 1)
			e.Spec.OutputReplication = 0 // namenode default (3)
			return e
		})
}
