// Package experiments reproduces every table and figure of the IBIS
// paper's evaluation (Section 7) on the simulated cluster: one driver
// per experiment, each returning a typed result with the paper's
// published numbers alongside the measured ones.
//
// All experiments run at a configurable data scale (default 1/8 of the
// paper's volumes, with the DFS block size scaled identically so task
// counts and wave structure are preserved). Shape comparisons — who
// wins, by what factor, where crossovers fall — are scale-invariant.
package experiments

import (
	"fmt"
	"math"
	"sort"

	"ibis/internal/audit"
	"ibis/internal/cluster"
	"ibis/internal/dfs"
	"ibis/internal/iosched"
	"ibis/internal/mapreduce"
	"ibis/internal/metrics"
	"ibis/internal/sim"
	"ibis/internal/storage"
	"ibis/internal/trace"
)

// DefaultScale is the default data down-scaling factor.
const DefaultScale = 0.125

// Options configure one scenario run.
type Options struct {
	// Scale multiplies all data volumes and the DFS block size.
	Scale float64
	// SSD selects the flash storage setup instead of HDDs.
	SSD bool
	// Policy is the I/O scheduling policy for every datanode.
	Policy cluster.Policy
	// SFQDepth is the static depth for the SFQD / CGWeight policies.
	SFQDepth int
	// Gain overrides the SFQ(D2) controller gain (0 = default).
	Gain float64
	// Coordinate enables the Scheduling Broker (total-service sharing).
	Coordinate bool
	// ThrottleLimits configures CGThrottle (per-app bytes/second).
	ThrottleLimits map[iosched.AppID]float64
	// Seed drives DFS placement and any workload randomness.
	Seed int64
	// CaptureThroughput enables cluster-wide read/write time series.
	CaptureThroughput bool
	// CaptureDepthTrace records the SFQ(D2) controller trace of node
	// 0's HDFS scheduler (Figure 7).
	CaptureDepthTrace bool
	// RunLimit aborts the simulation at this virtual time (0 = none).
	RunLimit float64
	// WriteAhead overrides the write-behind window (0 = default).
	WriteAhead int
	// CoresPerNode / MemGBPerNode override the cluster shape (0 =
	// paper defaults); the Facebook standalone runs pin half the
	// testbed's CPU and memory this way.
	CoresPerNode int
	MemGBPerNode float64
	// LrefScale multiplies the profiled reference latencies for SFQD2
	// (the Section 9 isolation-vs-utilization knob; 0 = 1.0).
	LrefScale float64
	// ScheduleNetwork interposes weighted fair scheduling on the NICs
	// (the OpenFlow-style extension); NetworkDepth is its dispatch
	// bound (0 = default).
	ScheduleNetwork bool
	NetworkDepth    int
	// ReservationRates / ReservationDefault configure the Reserve
	// policy (cost units per second per device).
	ReservationRates   map[iosched.AppID]float64
	ReservationDefault float64
	// TraceCapacity, when positive, enables request-lifecycle tracing
	// into a ring of that many records (Result.Trace).
	TraceCapacity int
	// Audit enables online invariant auditing (Result.Audit);
	// AuditWindow overrides the share-check period (0 = default).
	Audit       bool
	AuditWindow float64
	// Shards, when positive, runs the scenario on the sharded parallel
	// fabric (one engine per datanode plus a coordinator) with that
	// many worker goroutines. The worker count changes wall-clock time
	// only: results, traces and audit output are identical for every
	// positive value. Shards=0 is the classic single-engine path.
	Shards int
	// ShardLatency is the fabric lookahead — the virtual latency of
	// every cross-shard edge (0 = cluster.DefaultLookahead). Larger
	// values mean wider synchronization windows and more parallelism,
	// at the price of slower control-plane RPCs in the model.
	ShardLatency float64
}

func (o *Options) defaults() {
	if o.Scale <= 0 {
		o.Scale = DefaultScale
	}
	if o.SFQDepth <= 0 {
		o.SFQDepth = 4
	}
}

// Entry is one job to submit. If the spec names a Fair Scheduler pool,
// PoolCores/PoolMemGB define that pool's aggregate caps (the paper pins
// each application to half the testbed's CPU *and* memory).
type Entry struct {
	Spec      mapreduce.JobSpec
	Delay     float64
	PoolCores int
	PoolMemGB float64
}

// Result captures everything an experiment needs from one run.
type Result struct {
	// Jobs maps spec name to the completed job results (Facebook runs
	// have many jobs; classic scenarios have one per name).
	Jobs map[string][]mapreduce.Result
	// Duration is the virtual time when the last job finished.
	Duration float64
	// ReadSeries / WriteSeries are cluster-wide storage throughput
	// series (bytes per 1 s bin), if captured.
	ReadSeries  *metrics.TimeSeries
	WriteSeries *metrics.TimeSeries
	// PerAppReadSeries/PerAppWriteSeries split by application name
	// prefix, if captured.
	PerAppBytes map[iosched.AppID]float64
	// DepthTrace is the SFQ(D2) controller trace, if captured.
	DepthTrace []iosched.TracePoint
	// TotalBytes is all data serviced by all devices.
	TotalBytes float64
	// Broker stats proxy (exchanges), zero without coordination.
	BrokerExchanges uint64
	// EventsFired is the simulation event count (overhead proxy).
	EventsFired uint64
	// JobHandles exposes the completed jobs for deeper analysis
	// (per-task timings etc.).
	JobHandles []*mapreduce.Job
	// Trace is the request-lifecycle ring buffer, if enabled. In
	// sharded mode it is the deterministic merge of the per-shard rings.
	Trace *trace.Tracer
	// Audit is the invariant auditor, finished, if enabled.
	Audit *audit.Auditor
	// FabricStats reports the parallel fabric's window and message
	// counters (nil in single-engine mode).
	FabricStats *sim.FabricStats
	// ShardLoad is the per-shard occupancy of the run (empty in
	// single-engine mode): how much of the event work the coordinator
	// kept versus what the decomposition moved to node and metadata
	// shards.
	ShardLoad metrics.ShardStats

	latencies map[latKey]*metrics.Distribution
}

type latKey struct {
	app   iosched.AppID
	class iosched.Class
}

// Latency returns the scheduler-observed total latency distribution
// for one app and I/O class (empty distribution if unseen).
func (r *Result) Latency(app iosched.AppID, class iosched.Class) *metrics.Distribution {
	if d, ok := r.latencies[latKey{app, class}]; ok {
		return d
	}
	return metrics.NewDistribution()
}

// JobResult returns the single result for a spec name, panicking if the
// name is absent or ambiguous (experiment-internal convenience).
func (r *Result) JobResult(name string) mapreduce.Result {
	rs := r.Jobs[name]
	if len(rs) != 1 {
		panic(fmt.Sprintf("experiments: %d results for %q", len(rs), name))
	}
	return rs[0]
}

// MeanThroughput returns total bytes / duration (bytes/second).
func (r *Result) MeanThroughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return r.TotalBytes / r.Duration
}

// Run assembles a cluster + runtime, submits entries, runs to
// completion, and collects metrics.
func Run(opts Options, entries []Entry) (*Result, error) {
	return RunWithSetup(opts, entries, nil)
}

// RunWithSetup is Run with a hook that can attach additional workloads
// (e.g. a Hive query's stage chain) to the runtime before execution.
func RunWithSetup(opts Options, entries []Entry, setup func(*mapreduce.Runtime) error) (*Result, error) {
	opts.defaults()
	sharded := opts.Shards > 0
	if sharded && opts.CaptureThroughput {
		// The throughput time series is one shared accumulator stamped
		// with the coordinator clock; completions land on node shards.
		return nil, fmt.Errorf("experiments: CaptureThroughput is unsupported in sharded mode")
	}

	disk := storage.HDDSpec()
	if opts.SSD {
		disk = storage.SSDSpec()
	}
	ctrl := iosched.ControllerConfig{Gain: opts.Gain}
	if opts.LrefScale > 0 && opts.Policy == cluster.SFQD2 {
		prof, err := cluster.ProfileFor(disk)
		if err != nil {
			return nil, err
		}
		ctrl.ReadLref = prof.ReadLref * opts.LrefScale
		ctrl.WriteLref = prof.WriteLref * opts.LrefScale
	}
	var depthTrace []iosched.TracePoint
	cfg := cluster.Config{
		CoresPerNode:       opts.CoresPerNode,
		MemGBPerNode:       opts.MemGBPerNode,
		HDFSDisk:           disk,
		LocalDisk:          disk,
		Policy:             opts.Policy,
		SFQDepth:           opts.SFQDepth,
		Controller:         ctrl,
		ThrottleLimits:     opts.ThrottleLimits,
		ReservationRates:   opts.ReservationRates,
		ReservationDefault: opts.ReservationDefault,
		ScheduleNetwork:    opts.ScheduleNetwork,
		NetworkDepth:       opts.NetworkDepth,
		Coordinate:         opts.Coordinate,
	}
	var cl *cluster.Cluster
	var err error
	if sharded {
		cl, err = cluster.NewSharded(cfg, opts.ShardLatency, sim.FabricOptions{Workers: opts.Shards})
	} else {
		cl, err = cluster.New(sim.NewEngine(), cfg)
	}
	if err != nil {
		return nil, err
	}
	eng := cl.Eng
	if opts.CaptureDepthTrace && opts.Policy == cluster.SFQD2 {
		if sfq, ok := cl.Nodes[0].HDFSSched.(*iosched.SFQ); ok {
			sfq.Controller().SetTrace(func(p iosched.TracePoint) {
				depthTrace = append(depthTrace, p)
			})
		}
	}

	nn := dfs.NewNamenode(dfs.Config{
		Nodes:     len(cl.Nodes),
		BlockSize: dfs.DefaultBlockSize * opts.Scale,
		Seed:      opts.Seed,
		// Sharded: partition block metadata across the cluster's
		// metadata shards so input placement never serializes on the
		// coordinator (see dfs/partitioned.go).
		Partitions: len(cl.MetaShards()),
	})
	// Chunk size stays at the full-scale 2 MB regardless of data scale:
	// I/O granularity is a property of the client, not the data volume,
	// and shrinking it with the data would inflate per-op overheads
	// artificially. The shuffle buffer scales with the data so
	// reduce-side spill behavior matches the full-scale runs.
	rt := mapreduce.NewRuntime(eng, cl, nn, mapreduce.Config{
		ChunkBytes:         2e6,
		ShuffleBufferBytes: 2e9 * opts.Scale,
		WriteAheadChunks:   opts.WriteAhead,
	})

	res := &Result{
		Jobs:        make(map[string][]mapreduce.Result),
		PerAppBytes: make(map[iosched.AppID]float64),
		latencies:   make(map[latKey]*metrics.Distribution),
	}
	if opts.CaptureThroughput {
		res.ReadSeries = metrics.NewTimeSeries(1)
		res.WriteSeries = metrics.NewTimeSeries(1)
	}
	var shTrace *trace.Sharded
	if opts.TraceCapacity > 0 {
		if sharded {
			shTrace = trace.NewSharded(len(cl.Nodes)+1, opts.TraceCapacity)
		} else {
			res.Trace = trace.New(opts.TraceCapacity)
		}
	}
	var deferredAudit *audit.Deferred
	if opts.Audit {
		res.Audit = audit.New(audit.Options{Window: opts.AuditWindow})
		if sharded {
			deferredAudit = audit.NewDeferred(res.Audit, len(cl.Nodes)+1)
		}
		if cl.Broker != nil {
			res.Audit.AttachBroker(cl.Broker)
		}
	}
	if res.Trace != nil || shTrace != nil || res.Audit != nil {
		cl.Instrument(func(node int, dev string, sched iosched.Scheduler) iosched.Probe {
			var ps []iosched.Probe
			switch {
			case shTrace != nil:
				ps = append(ps, shTrace.Probe(node+1, node, trace.DeviceKindOf(dev)))
			case res.Trace != nil:
				ps = append(ps, res.Trace.Probe(node, trace.DeviceKindOf(dev)))
			}
			switch {
			case deferredAudit != nil:
				ps = append(ps, deferredAudit.Probe(node+1, node, dev, sched))
			case res.Audit != nil:
				ps = append(ps, res.Audit.Probe(node, dev, sched))
			}
			return iosched.MultiProbe(ps...)
		})
	}
	// I/O completions fire on the owning node's shard; in sharded mode
	// they accumulate into per-node cells (single-owner by construction)
	// merged in node order after the run — same totals, same
	// distributions, no shared writes inside parallel windows.
	type ioCell struct {
		totalBytes float64
		perApp     map[iosched.AppID]float64
		lats       map[latKey][]float64
	}
	var cells []ioCell
	if sharded {
		cells = make([]ioCell, len(cl.Nodes))
		cl.SetIOObserver(func(node int, req *iosched.Request, lat float64) {
			c := &cells[node]
			if c.perApp == nil {
				c.perApp = make(map[iosched.AppID]float64)
				c.lats = make(map[latKey][]float64)
			}
			c.totalBytes += req.Size
			c.perApp[req.App] += req.Size
			k := latKey{req.App, req.Class}
			c.lats[k] = append(c.lats[k], lat)
		})
	} else {
		cl.SetIOObserver(func(_ int, req *iosched.Request, lat float64) {
			res.TotalBytes += req.Size
			res.PerAppBytes[req.App] += req.Size
			k := latKey{req.App, req.Class}
			d := res.latencies[k]
			if d == nil {
				d = metrics.NewDistribution()
				res.latencies[k] = d
			}
			d.Add(lat)
			if res.ReadSeries != nil {
				if req.Class.OpKind() == storage.Read {
					res.ReadSeries.Add(eng.Now(), req.Size)
				} else {
					res.WriteSeries.Add(eng.Now(), req.Size)
				}
			}
		})
	}

	var jobs []*mapreduce.Job
	for _, e := range entries {
		if e.Spec.Pool != "" && (e.PoolCores > 0 || e.PoolMemGB > 0) {
			rt.DefinePool(e.Spec.Pool, e.PoolCores, e.PoolMemGB)
		}
		j, err := rt.Submit(e.Spec, e.Delay)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	if setup != nil {
		if err := setup(rt); err != nil {
			return nil, err
		}
	}

	if sharded {
		limit := math.Inf(1)
		if opts.RunLimit > 0 {
			limit = opts.RunLimit
		}
		cl.Fabric().RunUntil(limit)
	} else if opts.RunLimit > 0 {
		eng.RunUntil(opts.RunLimit)
	} else {
		eng.Run()
	}
	if deferredAudit != nil {
		deferredAudit.Finish()
	} else if res.Audit != nil {
		res.Audit.Finish()
	}
	if shTrace != nil {
		res.Trace = shTrace.Merge()
	}
	for ni := range cells {
		c := &cells[ni]
		res.TotalBytes += c.totalBytes
		for _, app := range sortedAppNames(c.perApp) {
			res.PerAppBytes[app] += c.perApp[app]
		}
		keys := make([]latKey, 0, len(c.lats))
		for k := range c.lats {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].app != keys[j].app {
				return keys[i].app < keys[j].app
			}
			return keys[i].class < keys[j].class
		})
		for _, k := range keys {
			d := res.latencies[k]
			if d == nil {
				d = metrics.NewDistribution()
				res.latencies[k] = d
			}
			for _, v := range c.lats[k] {
				d.Add(v)
			}
		}
	}

	// Collect every job the runtime saw — including ones attached by
	// the setup hook (e.g. chained Hive stages).
	for _, j := range rt.Jobs() {
		if !j.Done() {
			return nil, fmt.Errorf("experiments: job %s (%s) did not finish", j.App, j.Spec.Name)
		}
		jr := j.Result()
		res.Jobs[j.Spec.Name] = append(res.Jobs[j.Spec.Name], jr)
		if jr.EndTime > res.Duration {
			res.Duration = jr.EndTime
		}
	}
	jobs = rt.Jobs()
	if cl.Broker != nil {
		res.BrokerExchanges = cl.Broker.Stats().Exchanges
	}
	res.JobHandles = jobs
	res.DepthTrace = depthTrace
	if sharded {
		res.EventsFired = cl.Fabric().Fired()
		st := cl.Fabric().Stats()
		res.FabricStats = &st
		ev, busy := cl.Fabric().Occupancy()
		res.ShardLoad = metrics.ShardStats{Events: ev, Busy: busy}
	} else {
		res.EventsFired = eng.Fired()
	}
	return res, nil
}

// sortedAppNames lists apps in a result deterministically.
func sortedAppNames(m map[iosched.AppID]float64) []iosched.AppID {
	out := make([]iosched.AppID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
