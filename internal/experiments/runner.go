package experiments

import (
	"fmt"
	"time"
)

// Job is one named experiment invocation. Run must be self-contained:
// every experiment driver in this package builds its own engine and
// cluster, so jobs are independent deterministic simulations and can
// execute concurrently without sharing state.
type Job struct {
	Name string
	Run  func() (fmt.Stringer, error)
}

// JobResult is the outcome of one Job.
type JobResult struct {
	Name   string
	Output fmt.Stringer // nil when Err != nil
	Err    error
	Wall   time.Duration // wall-clock time the job itself took
}

// RunAll executes jobs with at most parallel concurrent workers and
// delivers results to yield strictly in submission order, so the
// consumer-visible stream is byte-identical to a serial run regardless
// of parallelism. If yield returns an error, no further jobs are
// started and that error is returned after in-flight jobs drain.
// parallel values below 1 are treated as 1.
func RunAll(jobs []Job, parallel int, yield func(JobResult) error) error {
	if parallel < 1 {
		parallel = 1
	}
	if parallel == 1 {
		for _, j := range jobs {
			start := time.Now()
			out, err := j.Run()
			if e := yield(JobResult{Name: j.Name, Output: out, Err: err, Wall: time.Since(start)}); e != nil {
				return e
			}
		}
		return nil
	}

	results := make([]chan JobResult, len(jobs))
	for i := range results {
		results[i] = make(chan JobResult, 1)
	}
	stop := make(chan struct{})
	sem := make(chan struct{}, parallel)
	go func() {
		for i, j := range jobs {
			select {
			case <-stop:
				// Unblock consumers still waiting on unstarted jobs.
				for k := i; k < len(jobs); k++ {
					results[k] <- JobResult{Name: jobs[k].Name}
				}
				return
			case sem <- struct{}{}:
			}
			go func(i int, j Job) {
				defer func() { <-sem }()
				start := time.Now()
				out, err := j.Run()
				results[i] <- JobResult{Name: j.Name, Output: out, Err: err, Wall: time.Since(start)}
			}(i, j)
		}
	}()

	var yieldErr error
	for i := range jobs {
		r := <-results[i]
		if yieldErr != nil {
			continue // drain in-flight jobs, discard their results
		}
		if err := yield(r); err != nil {
			yieldErr = err
			close(stop)
		}
	}
	return yieldErr
}
