package experiments

import (
	"fmt"
	"math"
	"strings"

	"ibis/internal/cluster"
	"ibis/internal/iosched"
	"ibis/internal/metrics"
)

// The ablations quantify the design choices DESIGN.md calls out and the
// tunables the paper's Section 9 discusses. None have a direct figure
// in the paper; they extend the evaluation.

// AblationRow is one point of a single-parameter sweep.
type AblationRow struct {
	Param      string
	WCSlowdown float64
	Throughput float64 // MB/s
	Extra      float64 // sweep-specific (see each driver)
}

// AblationResult is a generic sweep outcome.
type AblationResult struct {
	Name  string
	Scale float64
	Rows  []AblationRow
	Note  string
}

// String renders the sweep.
func (r *AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation %s (scale %.3g)\n", r.Name, r.Scale)
	fmt.Fprintf(&b, "  %-14s %10s %12s %12s\n", "param", "wc-slow", "tput(MB/s)", "extra")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-14s %9.0f%% %12.1f %12.3f\n",
			row.Param, row.WCSlowdown*100, row.Throughput, row.Extra)
	}
	if r.Note != "" {
		fmt.Fprintf(&b, "  %s\n", r.Note)
	}
	return b.String()
}

// AblationWriteAhead sweeps the HDFS client write-behind window: the
// deeper the uncontrolled client pipeline, the worse native
// interference gets — the motivation's mechanism quantified.
func AblationWriteAhead(scale float64) (*AblationResult, error) {
	sa, err := standalone(Options{Scale: scale, Policy: cluster.Native}, wordCount(scale, 1))
	if err != nil {
		return nil, err
	}
	out := &AblationResult{
		Name: "write-ahead window (native)", Scale: scale,
		Note: "extra = TeraGen runtime (s); deeper client pipelines inflate native interference",
	}
	for _, w := range []int{1, 2, 4, 8, 16} {
		res, err := Run(Options{Scale: scale, Policy: cluster.Native, WriteAhead: w},
			[]Entry{wordCount(scale, 1), teraGen(scale, 1)})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AblationRow{
			Param:      fmt.Sprintf("w=%d", w),
			WCSlowdown: metrics.Slowdown(res.JobResult("wordcount").Runtime(), sa.Runtime()),
			Throughput: res.MeanThroughput() / 1e6,
			Extra:      res.JobResult("teragen").Runtime(),
		})
	}
	return out, nil
}

// AblationLref sweeps the SFQ(D2) reference latency — the Section 9
// knob: "further improvement is possible by trading resource
// utilization for performance isolation ... by adjusting Lref".
// Smaller Lref ⇒ shallower equilibrium depth ⇒ stronger isolation,
// lower utilization.
func AblationLref(scale float64) (*AblationResult, error) {
	sa, err := standalone(Options{Scale: scale, Policy: cluster.Native}, wordCount(scale, 1))
	if err != nil {
		return nil, err
	}
	out := &AblationResult{
		Name: "SFQ(D2) reference latency", Scale: scale,
		Note: "extra = mean depth; Lref trades isolation against utilization (paper §9)",
	}
	for _, m := range []float64{0.25, 0.5, 1.0, 2.0, 4.0} {
		var depthSum, depthN float64
		res, err := runWithTrace(Options{
			Scale: scale, Policy: cluster.SFQD2, LrefScale: m, CaptureDepthTrace: true,
		}, []Entry{wordCount(scale, isolationWeightWC), teraGen(scale, 1)}, func(p iosched.TracePoint) {
			if p.Samples > 0 {
				depthSum += float64(p.Depth)
				depthN++
			}
		})
		if err != nil {
			return nil, err
		}
		meanDepth := 0.0
		if depthN > 0 {
			meanDepth = depthSum / depthN
		}
		out.Rows = append(out.Rows, AblationRow{
			Param:      fmt.Sprintf("lref×%g", m),
			WCSlowdown: metrics.Slowdown(res.JobResult("wordcount").Runtime(), sa.Runtime()),
			Throughput: res.MeanThroughput() / 1e6,
			Extra:      meanDepth,
		})
	}
	return out, nil
}

// runWithTrace is Run plus a tap on the depth trace.
func runWithTrace(opts Options, entries []Entry, tap func(iosched.TracePoint)) (*Result, error) {
	res, err := Run(opts, entries)
	if err != nil {
		return nil, err
	}
	for _, p := range res.DepthTrace {
		tap(p)
	}
	return res, nil
}

// AblationGain sweeps the controller's integral gain: too low and the
// depth never converges within the run; too high and it slams between
// the bounds. The run-level outcome is robust across a wide range —
// the paper's controller needed no per-workload tuning.
func AblationGain(scale float64) (*AblationResult, error) {
	sa, err := standalone(Options{Scale: scale, Policy: cluster.Native}, wordCount(scale, 1))
	if err != nil {
		return nil, err
	}
	out := &AblationResult{
		Name: "SFQ(D2) controller gain", Scale: scale,
		Note: "extra = depth std-dev over busy periods; outcomes are robust across ~2 decades of K",
	}
	for _, k := range []float64{10, 40, 120, 400, 1200} {
		var depths []float64
		res, err := runWithTrace(Options{
			Scale: scale, Policy: cluster.SFQD2, Gain: k, CaptureDepthTrace: true,
		}, []Entry{wordCount(scale, isolationWeightWC), teraGen(scale, 1)}, func(p iosched.TracePoint) {
			if p.Samples > 0 {
				depths = append(depths, float64(p.Depth))
			}
		})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AblationRow{
			Param:      fmt.Sprintf("K=%g", k),
			WCSlowdown: metrics.Slowdown(res.JobResult("wordcount").Runtime(), sa.Runtime()),
			Throughput: res.MeanThroughput() / 1e6,
			Extra:      stddev(depths),
		})
	}
	return out, nil
}

func stddev(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := 0.0
	for _, x := range v {
		m += x
	}
	m /= float64(len(v))
	s := 0.0
	for _, x := range v {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(v)-1))
}

// CoordPeriodRow is one point of the coordination-period sweep.
type CoordPeriodRow struct {
	PeriodSeconds float64
	ServiceRatio  float64 // wide/narrow in the uneven-presence micro
	Exchanges     uint64
}

// CoordPeriodResult quantifies Section 5's tradeoff: "more frequent
// coordination reduces transient unfairness but increases the
// overhead; and vice versa".
type CoordPeriodResult struct {
	Rows []CoordPeriodRow
}

// AblationCoordPeriod sweeps the broker exchange period on the
// uneven-presence microbenchmark.
func AblationCoordPeriod() (*CoordPeriodResult, error) {
	out := &CoordPeriodResult{}
	for _, period := range []float64{0.25, 1, 4, 16} {
		ratio, exchanges := microServiceRatioPeriod(true, period, 8)
		out.Rows = append(out.Rows, CoordPeriodRow{
			PeriodSeconds: period,
			ServiceRatio:  ratio,
			Exchanges:     exchanges,
		})
	}
	return out, nil
}

// String renders the sweep.
func (r *CoordPeriodResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: coordination period (uneven-presence micro, ideal ratio ≈3.0)\n")
	fmt.Fprintf(&b, "  %-10s %14s %12s\n", "period(s)", "service-ratio", "exchanges")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10g %14.2f %12d\n", row.PeriodSeconds, row.ServiceRatio, row.Exchanges)
	}
	b.WriteString("  (paper §5: frequent coordination → less transient unfairness, more traffic)\n")
	return b.String()
}

// ScalabilityRow is one cluster size of the broker-scalability study.
type ScalabilityRow struct {
	Nodes        int
	ServiceRatio float64
	Exchanges    uint64
	BytesPerSec  float64
}

// ScalabilityResult extends Section 9's scalability discussion: broker
// traffic grows linearly with scheduler count and stays tiny, while
// total-service fairness holds as the cluster grows.
type ScalabilityResult struct {
	Rows []ScalabilityRow
}

// ExtScalability runs the uneven-presence micro at growing cluster
// sizes.
func ExtScalability() (*ScalabilityResult, error) {
	out := &ScalabilityResult{}
	for _, n := range []int{8, 16, 32, 64} {
		ratio, exchanges := microServiceRatioPeriod(true, 1, n)
		out.Rows = append(out.Rows, ScalabilityRow{
			Nodes:        n,
			ServiceRatio: ratio,
			Exchanges:    exchanges,
			BytesPerSec:  float64(exchanges) * 24 / 60, // ≈24 B/entry over the 60 s run
		})
	}
	return out, nil
}

// String renders the study.
func (r *ScalabilityResult) String() string {
	var b strings.Builder
	b.WriteString("Extension: broker scalability (uneven presence, app on 1/4 of nodes)\n")
	fmt.Fprintf(&b, "  %-7s %14s %12s %14s\n", "nodes", "service-ratio", "exchanges", "≈bytes/sec")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-7d %14.2f %12d %14.1f\n", row.Nodes, row.ServiceRatio, row.Exchanges, row.BytesPerSec)
	}
	b.WriteString("  (traffic linear in schedulers, KB/s at 64 nodes; fairness holds — paper §9)\n")
	return b.String()
}

// microServiceRatioPeriod generalizes the Figure 12 microbenchmark
// with a configurable coordination period and cluster size, returning
// the wide/narrow service ratio and the broker exchange count.
func microServiceRatioPeriod(coordinate bool, period float64, nodes int) (float64, uint64) {
	ratio, exchanges := microRun(coordinate, period, nodes)
	return ratio, exchanges
}
