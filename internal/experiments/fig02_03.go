package experiments

import (
	"fmt"
	"strings"

	"ibis/internal/cluster"
	"ibis/internal/metrics"
)

// Fig02Result reproduces Figure 2: the read/write throughput profiles
// of TeraSort and WordCount, each running alone.
type Fig02Result struct {
	Scale float64
	// TeraSortRead/Write and WordCountRead/Write are cluster-wide MB/s
	// per one-second bin.
	TeraSortRead   []float64
	TeraSortWrite  []float64
	WordCountRead  []float64
	WordCountWrite []float64
}

// Fig02 runs the two profile captures.
func Fig02(scale float64) (*Fig02Result, error) {
	out := &Fig02Result{Scale: scale}
	for _, which := range []string{"terasort", "wordcount"} {
		var e Entry
		if which == "terasort" {
			e = fullCores(teraSort(scale, 1))
		} else {
			e = fullCores(wordCount(scale, 1))
		}
		res, err := Run(Options{Scale: scale, Policy: cluster.Native, CaptureThroughput: true}, []Entry{e})
		if err != nil {
			return nil, err
		}
		read := toMBps(res.ReadSeries)
		write := toMBps(res.WriteSeries)
		if which == "terasort" {
			out.TeraSortRead, out.TeraSortWrite = read, write
		} else {
			out.WordCountRead, out.WordCountWrite = read, write
		}
	}
	return out, nil
}

// Fig02Bench runs the Figure 2 TeraSort profile once with the given
// trace capacity (0 = tracing disabled) — the benchmark harness uses it
// to measure instrumentation overhead on an unmodified workload.
func Fig02Bench(scale float64, traceCapacity int) (*Result, error) {
	return Run(Options{
		Scale:         scale,
		Policy:        cluster.Native,
		TraceCapacity: traceCapacity,
	}, []Entry{fullCores(teraSort(scale, 1))})
}

func toMBps(ts *metrics.TimeSeries) []float64 {
	rates := ts.Rate()
	out := make([]float64, len(rates))
	for i, r := range rates {
		out[i] = r / 1e6
	}
	return out
}

// String renders the two profiles as compact text series.
func (r *Fig02Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: I/O demands of TeraSort and WordCount (scale %.3g)\n", r.Scale)
	fmt.Fprintf(&b, "(paper shape: TeraSort ~700+ MB/s peaks, WordCount much lighter)\n")
	series := []struct {
		name string
		data []float64
	}{
		{"terasort/read", r.TeraSortRead},
		{"terasort/write", r.TeraSortWrite},
		{"wordcount/read", r.WordCountRead},
		{"wordcount/write", r.WordCountWrite},
	}
	for _, s := range series {
		peak, mean := summarize(s.data)
		fmt.Fprintf(&b, "  %-16s span=%4ds peak=%7.1f MB/s mean=%7.1f MB/s\n", s.name, len(s.data), peak, mean)
	}
	return b.String()
}

func summarize(v []float64) (peak, mean float64) {
	if len(v) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, x := range v {
		sum += x
		if x > peak {
			peak = x
		}
	}
	return peak, sum / float64(len(v))
}

// Fig03Row is one bar of Figure 3: WordCount against one co-runner.
type Fig03Row struct {
	CoRunner      string
	WCRuntime     float64
	Slowdown      float64
	PaperSlowdown float64
}

// Fig03Result reproduces Figure 3: WordCount interference on native
// Hadoop for HDD and SSD setups.
type Fig03Result struct {
	Scale        float64
	SSD          bool
	StandaloneWC float64
	Rows         []Fig03Row
}

// Fig03 measures native-Hadoop interference against the three
// co-runners.
func Fig03(scale float64, ssd bool) (*Fig03Result, error) {
	opts := Options{Scale: scale, SSD: ssd, Policy: cluster.Native}
	sa, err := standalone(opts, wordCount(scale, 1))
	if err != nil {
		return nil, err
	}
	out := &Fig03Result{Scale: scale, SSD: ssd, StandaloneWC: sa.Runtime()}

	paper := map[string]float64{ // fractional slowdowns from Figure 3
		"teravalidate": 0.626, "teragen": 1.07, "terasort": 1.08,
	}
	if ssd {
		paper = map[string]float64{
			"teravalidate": 0.09, "teragen": 0.50, "terasort": 0.22,
		}
	}
	coRunners := []struct {
		name  string
		entry Entry
	}{
		{"teravalidate", teraValidate(scale, 1)},
		{"teragen", teraGen(scale, 1)},
		{"terasort", teraSortContender(scale, 1)},
	}
	for _, co := range coRunners {
		res, err := Run(opts, []Entry{wordCount(scale, 1), co.entry})
		if err != nil {
			return nil, err
		}
		wc := res.JobResult("wordcount")
		out.Rows = append(out.Rows, Fig03Row{
			CoRunner:      co.name,
			WCRuntime:     wc.Runtime(),
			Slowdown:      metrics.Slowdown(wc.Runtime(), sa.Runtime()),
			PaperSlowdown: paper[co.name],
		})
	}
	return out, nil
}

// String renders the interference table.
func (r *Fig03Result) String() string {
	setup := "HDD"
	if r.SSD {
		setup = "SSD"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3%s: WordCount on native Hadoop, %s setup (scale %.3g)\n",
		map[bool]string{false: "a", true: "b"}[r.SSD], setup, r.Scale)
	fmt.Fprintf(&b, "  standalone WordCount runtime: %.1f s\n", r.StandaloneWC)
	fmt.Fprintf(&b, "  %-14s %10s %10s %10s\n", "co-runner", "runtime(s)", "slowdown", "paper")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-14s %10.1f %9.0f%% %9.0f%%\n",
			row.CoRunner, row.WCRuntime, row.Slowdown*100, row.PaperSlowdown*100)
	}
	return b.String()
}
