package experiments

import (
	"math"
	"testing"
)

// TestReweightConverges pins the live-reconfiguration acceptance bar:
// the tenant service ratio tracks the old target before the change,
// converges to the new target within a bounded number of coordination
// periods after it, and auditing records zero violations — share
// checks inside the declared epoch windows are suspended, not failed.
func TestReweightConverges(t *testing.T) {
	res, err := Reweight(DefaultReweightSpec())
	if err != nil {
		t.Fatal(err)
	}
	pre, post := 0.0, 0.0
	npre, npost := 0, 0
	for _, pt := range res.Trajectory {
		switch {
		case pt.T <= res.Spec.At:
			pre += pt.Ratio
			npre++
		case pt.T >= res.Spec.At+2*reweightWindow:
			post += pt.Ratio
			npost++
		}
	}
	pre /= float64(npre)
	post /= float64(npost)
	if math.Abs(pre-res.OldTarget)/res.OldTarget > 0.25 {
		t.Errorf("pre-reweight mean ratio %.3f, want ≈%g", pre, res.OldTarget)
	}
	if math.Abs(post-res.NewTarget)/res.NewTarget > 0.25 {
		t.Errorf("post-reweight mean ratio %.3f, want ≈%g", post, res.NewTarget)
	}
	if res.ConvergedAt < 0 {
		t.Error("trajectory never converged to the new target")
	} else if lag := res.ConvergedAt - res.Spec.At; lag > 10 {
		t.Errorf("converged %.0fs after the change, want within 10 coordination periods", lag)
	}
	if res.Violations != 0 {
		t.Errorf("%d audit violations, want 0", res.Violations)
	}
	if res.EpochWindows == 0 {
		t.Error("reweight produced no epoch window — the control plane is not reaching the auditor")
	}
	if res.Epoch == 0 {
		t.Error("share tree epoch still 0")
	}
}

// TestReweightSpecValidation covers the input checks behind the
// -reweight flag.
func TestReweightSpecValidation(t *testing.T) {
	for _, spec := range []ReweightSpec{
		{At: 30, App: "ghost", Weight: 8},
		{At: 30, App: "hot", Weight: 0},
		{At: 0, App: "hot", Weight: 8},
		{At: 59, App: "hot", Weight: 8},
	} {
		if _, err := Reweight(spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}
