package iosched_test

// Pooled-request conformance: the hollow-node fast path (RequestPool
// slab recycling + Interner'd app IDs) must be observationally
// identical to freshly allocated requests with plain string app IDs,
// for every scheduler in the tree. The pin is a digest over the full
// probe stream — event kind, virtual time, app, sequence number, tags,
// and queue/in-flight bookkeeping at each event — which is bit-equal
// across the two allocation strategies.

import (
	"math"
	"testing"

	"ibis/internal/cgroups"
	"ibis/internal/iosched"
	"ibis/internal/sim"
	"ibis/internal/storage"
)

const (
	digestOffset = 14695981039346656037
	digestPrime  = 1099511628211
)

func digestMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * digestPrime
		v >>= 8
	}
	return h
}

func digestStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * digestPrime
	}
	return h
}

// digestProbe folds every probe event into an FNV-1a digest.
type digestProbe struct {
	h uint64
}

func (d *digestProbe) Observe(req *iosched.Request, st iosched.ProbeState) {
	h := digestMix(d.h, uint64(st.Event))
	h = digestMix(h, math.Float64bits(st.Time))
	h = digestStr(h, string(req.App))
	h = digestMix(h, req.Seq())
	h = digestMix(h, math.Float64bits(req.StartTag()))
	h = digestMix(h, math.Float64bits(req.FinishTag()))
	h = digestMix(h, uint64(st.Queued))
	h = digestMix(h, uint64(st.InFlight))
	d.h = h
}

// pooledWorkload replays the exact request mix of conformanceWorkload.
// With pool == nil it allocates fresh requests; otherwise it draws from
// the pool, interns every app ID, and recycles each request at OnDone
// (the earliest safe point: the scheduler's last touch).
func pooledWorkload(t *testing.T, eng *sim.Engine, s iosched.Scheduler, pool *iosched.RequestPool) {
	var intern *iosched.Interner
	if pool != nil {
		intern = iosched.NewInterner()
	}
	apps := []struct {
		id iosched.AppID
		w  float64
	}{{"A", 4}, {"B", 2}, {"C", 1}}
	classes := []iosched.Class{
		iosched.PersistentRead, iosched.IntermediateWrite,
		iosched.IntermediateRead, iosched.PersistentWrite,
	}
	for batch := 0; batch < 6; batch++ {
		batch := batch
		eng.Schedule(float64(batch)*0.5, func() {
			for ai, app := range apps {
				for k := 0; k < 3; k++ {
					size := 1e5 * float64(1+(batch+ai+k)%7)
					var req *iosched.Request
					if pool != nil {
						req = pool.Get()
						req.App = intern.Intern(string(app.id))
						req.Shares = iosched.FixedWeight(app.w)
						req.Class = classes[(batch+ai+k)%len(classes)]
						req.Size = size
						req.OnDone = func(float64) { pool.Put(req) }
					} else {
						req = &iosched.Request{
							App:    app.id,
							Shares: iosched.FixedWeight(app.w),
							Class:  classes[(batch+ai+k)%len(classes)],
							Size:   size,
						}
					}
					if err := s.Submit(req); err != nil {
						t.Fatalf("submit rejected: %v", err)
					}
				}
			}
		})
	}
}

func TestPooledRequestsConformance(t *testing.T) {
	limits := map[iosched.AppID]float64{"B": 10e6}
	rates := map[iosched.AppID]float64{"A": 30e6, "B": 20e6, "C": 10e6}
	cases := []struct {
		name  string
		build func(eng *sim.Engine, dev *storage.Device) (iosched.Scheduler, error)
	}{
		{"fifo", func(eng *sim.Engine, dev *storage.Device) (iosched.Scheduler, error) {
			return iosched.NewFIFO(eng, dev), nil
		}},
		{"sfq(d)", func(eng *sim.Engine, dev *storage.Device) (iosched.Scheduler, error) {
			return iosched.NewSFQD(eng, dev, 4), nil
		}},
		{"sfq(d2)", func(eng *sim.Engine, dev *storage.Device) (iosched.Scheduler, error) {
			return iosched.NewSFQD2(eng, dev, iosched.ControllerConfig{ReadLref: 0.02}), nil
		}},
		{"cgroups-weight", func(eng *sim.Engine, dev *storage.Device) (iosched.Scheduler, error) {
			return cgroups.NewWeight(eng, dev, 4), nil
		}},
		{"cgroups-throttle", func(eng *sim.Engine, dev *storage.Device) (iosched.Scheduler, error) {
			return cgroups.NewThrottle(eng, dev, limits)
		}},
		{"reservation", func(eng *sim.Engine, dev *storage.Device) (iosched.Scheduler, error) {
			return iosched.NewReservation(eng, dev, rates, 5e6)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func(pool *iosched.RequestPool) uint64 {
				eng := sim.NewEngine()
				dev := storage.NewDevice(eng, "d", conformSpec())
				s, err := tc.build(eng, dev)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				dp := &digestProbe{h: digestOffset}
				s.(probeSetter).SetProbe(dp)
				pooledWorkload(t, eng, s, pool)
				eng.Run()
				if s.Queued() != 0 || s.InFlight() != 0 {
					t.Fatalf("not drained: queued=%d inflight=%d", s.Queued(), s.InFlight())
				}
				return dp.h
			}
			fresh := run(nil)
			pool := iosched.NewRequestPool(16)
			pooled := run(pool)
			if fresh != pooled {
				t.Fatalf("probe-stream digest diverged: fresh=%016x pooled=%016x", fresh, pooled)
			}
			if pool.Outstanding() != 0 {
				t.Fatalf("pool leaked %d requests", pool.Outstanding())
			}
		})
	}
}
