package iosched

import (
	"fmt"
	"math"
	"sort"

	"ibis/internal/sim"
	"ibis/internal/storage"
)

// Coordinator supplies the global I/O service information a local
// scheduler needs to apply the DSFQ total-service rule: the cumulative
// service (cost units) an application has received on every node other
// than this one, as currently known from the Scheduling Broker.
type Coordinator interface {
	OtherService(app AppID) float64
}

// flowState is the per-application SFQ bookkeeping on one scheduler.
type flowState struct {
	lastFinish float64 // finish tag of the flow's most recent request
	lastOther  float64 // other-node service snapshot at last arrival
	seenOther  bool    // whether lastOther has been initialized
}

// SFQ is a Start-time Fair Queueing scheduler with a bounded number of
// concurrently outstanding requests (the depth D), per Jin et al.'s
// SFQ(D). With a DepthController attached it becomes the paper's SFQ(D2),
// adapting D each control period. With a Coordinator attached it applies
// the DSFQ delay so that *total* cluster service is shared
// proportionally, not just local service.
type SFQ struct {
	eng      *sim.Engine
	dev      Backend
	acct     *Accounting
	observer Observer

	queue  reqHeap
	flows  map[AppID]*flowState
	vtime  float64
	seq    uint64
	coord  Coordinator
	probe  Probe
	static int // static depth; used when ctrl == nil
	ctrl   *DepthController

	// coordSuspended gates the DSFQ delay rule: while true the
	// scheduler enforces pure local SFQ(D) fairness (graceful
	// degradation during coordination-plane outages).
	coordSuspended bool
	// delayClamp, when positive, caps the remote-service delta charged
	// per arrival (cost units); excess is forgiven. It bounds the
	// delay a flow can be handed from a stale burst of totals after a
	// partition heals without passing through the degraded state.
	delayClamp float64

	inflight int

	// Counters for overhead accounting (Table 2 proxy).
	dispatched uint64
	tagOps     uint64
}

// NewSFQD builds a classic SFQ(D) scheduler with a static depth.
func NewSFQD(eng *sim.Engine, dev Backend, depth int) *SFQ {
	if depth < 1 {
		panic(fmt.Sprintf("iosched: SFQ(D) depth %d < 1", depth))
	}
	return &SFQ{
		eng:    eng,
		dev:    dev,
		acct:   NewAccounting(),
		flows:  make(map[AppID]*flowState),
		static: depth,
	}
}

// NewSFQD2 builds the paper's SFQ(D2): SFQ whose depth is driven by the
// supplied feedback controller. The controller is started immediately.
func NewSFQD2(eng *sim.Engine, dev Backend, cfg ControllerConfig) *SFQ {
	s := &SFQ{
		eng:   eng,
		dev:   dev,
		acct:  NewAccounting(),
		flows: make(map[AppID]*flowState),
	}
	s.ctrl = newDepthController(eng, cfg, func() {
		// Depth may have increased; try to fill the new slots.
		s.dispatch()
	})
	return s
}

// SetCoordinator attaches the distributed-coordination delay source.
// Passing nil disables coordination (the paper's "No Sync" mode).
func (s *SFQ) SetCoordinator(c Coordinator) { s.coord = c }

// SetObserver installs a completion observer.
func (s *SFQ) SetObserver(o Observer) { s.observer = o }

// SetProbe installs a lifecycle probe (tracing/auditing).
func (s *SFQ) SetProbe(p Probe) { s.probe = p }

// SetDelayClamp caps the per-arrival DSFQ delay increment at clamp
// cost units (0 disables). See the delayClamp field.
func (s *SFQ) SetDelayClamp(clamp float64) { s.delayClamp = clamp }

// Coordinated reports whether a Coordinator is attached (the DSFQ
// delay rule is in force, so local service shares are intentionally
// skewed toward total-service fairness).
func (s *SFQ) Coordinated() bool { return s.coord != nil }

// CoordinationSuspended reports whether the delay rule is currently
// suspended (degraded to pure local fairness).
func (s *SFQ) CoordinationSuspended() bool { return s.coordSuspended }

// SuspendCoordination degrades the scheduler to pure local SFQ(D)
// fairness: the delay rule stops applying, and the tag debt flows have
// already accumulated from it is cancelled — per-flow virtual-time
// state and the tags of queued requests are clamped down to the
// current virtual time. Without the clamp a flow present on many nodes
// would enter the outage with tags far ahead of vtime (its delay debt
// grows at the remote service rate) and starve locally for the whole
// outage, the opposite of the guarantee degradation is meant to keep.
// Idempotent; a no-op effect-wise when no debt exists.
func (s *SFQ) SuspendCoordination() {
	if s.coordSuspended {
		return
	}
	s.coordSuspended = true
	// Cancel per-flow tag debt…
	for _, f := range s.flows {
		if f.lastFinish > s.vtime {
			f.lastFinish = s.vtime
		}
	}
	// …then replay local SFQ tagging over the queued requests in
	// arrival order: each request's tags shrink to where they would be
	// had the delay rule never applied (never grow — tags at or below
	// the replay position were fairly earned and are kept).
	if len(s.queue) > 0 {
		old := append([]*Request(nil), s.queue...)
		sort.Slice(old, func(i, j int) bool { return old[i].seq < old[j].seq })
		for _, r := range old {
			f := s.flows[r.App]
			if replay := math.Max(s.vtime, f.lastFinish); r.startTag > replay {
				r.startTag = replay
				r.finishTag = replay + r.cost/r.weight
			}
			if r.finishTag > f.lastFinish {
				f.lastFinish = r.finishTag
			}
		}
		s.queue = s.queue[:0]
		for _, r := range old {
			s.queue.push(r)
		}
	}
}

// ResumeCoordination re-enables the delay rule after recovery. Every
// flow re-snapshots the remote-service totals at its next arrival
// instead of being charged the outage's accumulated delta — the
// stale-total clamp that keeps a returning node from being starved.
func (s *SFQ) ResumeCoordination() {
	if !s.coordSuspended {
		return
	}
	s.coordSuspended = false
	for _, f := range s.flows {
		f.seenOther = false
	}
}

// Name implements Scheduler.
func (s *SFQ) Name() string {
	if s.ctrl != nil {
		return "sfq(d2)"
	}
	return fmt.Sprintf("sfq(d=%d)", s.static)
}

// Queued implements Scheduler.
func (s *SFQ) Queued() int { return s.queue.Len() }

// InFlight implements Scheduler.
func (s *SFQ) InFlight() int { return s.inflight }

// Accounting implements Scheduler.
func (s *SFQ) Accounting() *Accounting { return s.acct }

// Depth returns the current dispatch bound.
func (s *SFQ) Depth() int {
	if s.ctrl != nil {
		return s.ctrl.Depth()
	}
	return s.static
}

// Controller returns the depth controller (nil for static SFQ(D)).
func (s *SFQ) Controller() *DepthController { return s.ctrl }

// VirtualTime returns the scheduler's current virtual time (the start
// tag of the most recently dispatched request).
func (s *SFQ) VirtualTime() float64 { return s.vtime }

// Dispatched returns the number of requests sent to the device so far.
func (s *SFQ) Dispatched() uint64 { return s.dispatched }

// TagOps returns the number of tag computations performed, a proxy for
// the scheduler's CPU overhead.
func (s *SFQ) TagOps() uint64 { return s.tagOps }

// Submit implements Scheduler. Tags are computed per SFQ:
//
//	S(r) = max(v(arrival), F(prev_f) [+ δ_f/w_f])
//	F(r) = S(r) + cost(r)/w_f
//
// where δ_f is the DSFQ delay — the service flow f received on other
// nodes since its previous arrival here.
//
// The weight w_f is resolved through the request's WeightSource right
// here, at tag time. A live reweight therefore takes effect on the
// flow's next arrival and cannot break tag monotonicity: S(r) is the
// max of the virtual time and the flow's previous finish tag, both of
// which only grow, and the new weight only scales the *increments*
// (cost/w and δ/w) added on top. Already-queued requests keep the tags
// they were admitted with — virtual time owes them the service they
// were promised at arrival.
func (s *SFQ) Submit(req *Request) error {
	if err := req.prepare(); err != nil {
		return err
	}
	req.arrive = s.eng.Now()
	req.cost = s.dev.Cost(req.Class.OpKind(), req.Size)
	req.seq = s.seq
	s.seq++
	s.tagOps++

	f := s.flows[req.App]
	if f == nil {
		f = &flowState{lastFinish: s.vtime}
		s.flows[req.App] = f
	}

	base := f.lastFinish
	if s.coord != nil && !s.coordSuspended {
		other := s.coord.OtherService(req.App)
		if !f.seenOther {
			// First arrival: no delay, just take the snapshot.
			f.lastOther = other
			f.seenOther = true
		} else if other > f.lastOther {
			delta := other - f.lastOther
			if s.delayClamp > 0 && delta > s.delayClamp {
				// Forgive the excess of a stale burst of totals (e.g.
				// a partition healing): charge at most the clamp.
				delta = s.delayClamp
			}
			base += delta / req.weight
			f.lastOther = other
		}
	}
	req.startTag = math.Max(s.vtime, base)
	req.finishTag = req.startTag + req.cost/req.weight
	f.lastFinish = req.finishTag

	s.queue.push(req)
	if s.probe != nil {
		s.probe.Observe(req, ProbeState{
			Event:    ProbeArrive,
			Time:     req.arrive,
			Queued:   s.queue.Len(),
			InFlight: s.inflight,
			Depth:    s.Depth(),
			VTime:    s.vtime,
		})
	}
	s.dispatch()
	return nil
}

// dispatch sends queued requests to the device while capacity remains.
func (s *SFQ) dispatch() {
	for s.queue.Len() > 0 && s.inflight < s.Depth() {
		req := s.queue.pop()
		s.vtime = req.startTag
		s.inflight++
		s.dispatched++
		req.dispatch = s.eng.Now()
		if s.probe != nil {
			s.probe.Observe(req, ProbeState{
				Event:    ProbeDispatch,
				Time:     req.dispatch,
				Queued:   s.queue.Len(),
				InFlight: s.inflight,
				Depth:    s.Depth(),
				VTime:    s.vtime,
			})
		}
		s.dev.Submit(req.Class.OpKind(), req.Size, func(devLat float64) {
			s.complete(req, devLat)
		})
	}
}

func (s *SFQ) complete(req *Request, devLat float64) {
	s.inflight--
	total := s.eng.Now() - req.arrive
	s.acct.add(req)
	if s.ctrl != nil {
		s.ctrl.Sample(devLat, req.Class.OpKind() == storage.Read)
	}
	if s.observer != nil {
		s.observer(req, total)
	}
	// Refill the dispatch window before surfacing the completion so the
	// device never idles while the queue is backlogged.
	s.dispatch()
	if s.probe != nil {
		s.probe.Observe(req, ProbeState{
			Event:    ProbeComplete,
			Time:     s.eng.Now(),
			Queued:   s.queue.Len(),
			InFlight: s.inflight,
			Depth:    s.Depth(),
			VTime:    s.vtime,
			Latency:  total,
		})
	}
	if req.OnDone != nil {
		req.OnDone(total)
	}
}

// reqHeap is a specialized min-heap over *Request ordered by
// (startTag, seq). Hand-rolled push/pop avoid container/heap's
// interface boxing and indirect calls on the scheduler hot path.
type reqHeap []*Request

func (h reqHeap) Len() int { return len(h) }

func reqLess(a, b *Request) bool {
	if a.startTag != b.startTag {
		return a.startTag < b.startTag
	}
	return a.seq < b.seq
}

func (h *reqHeap) push(r *Request) {
	q := append(*h, r)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !reqLess(r, q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].heapIndex = i
		i = parent
	}
	q[i] = r
	r.heapIndex = i
	*h = q
}

func (h *reqHeap) pop() *Request {
	q := *h
	min := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = nil
	q = q[:last]
	*h = q
	min.heapIndex = -1
	if last == 0 {
		return min
	}
	// Sift the relocated tail element down from the root.
	r := q[0]
	i := 0
	for {
		child := 2*i + 1
		if child >= last {
			break
		}
		if rc := child + 1; rc < last && reqLess(q[rc], q[child]) {
			child = rc
		}
		if !reqLess(q[child], r) {
			break
		}
		q[i] = q[child]
		q[i].heapIndex = i
		i = child
	}
	q[i] = r
	r.heapIndex = i
	return min
}
