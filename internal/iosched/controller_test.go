package iosched

import (
	"math"
	"testing"

	"ibis/internal/sim"
	"ibis/internal/storage"
)

func TestControllerDefaults(t *testing.T) {
	c := ControllerConfig{ReadLref: 0.01}
	c.defaults()
	if c.Period != 1 || c.Gain <= 0 || c.MinDepth != 1 || c.MaxDepth != 12 {
		t.Fatalf("defaults: %+v", c)
	}
	if c.WriteLref != c.ReadLref {
		t.Fatalf("WriteLref default = %v, want ReadLref", c.WriteLref)
	}
	if c.InitialDepth != c.MaxDepth {
		t.Fatalf("InitialDepth = %d, want MaxDepth", c.InitialDepth)
	}
}

func TestControllerValidation(t *testing.T) {
	bad := []ControllerConfig{
		{}, // no reference latency
		{ReadLref: 0.01, MinDepth: 9, MaxDepth: 3}, // inverted bounds
	}
	for i, cfg := range bad {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid config accepted", i)
				}
			}()
			eng := sim.NewEngine()
			NewSFQD2(eng, storage.NewDevice(eng, "d", flatSpec()), cfg)
		}()
	}
}

func TestControllerShrinksDepthUnderHighLatency(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := NewSFQD2(eng, dev, ControllerConfig{
		ReadLref: 0.001, // far below what the loaded device will show
		Gain:     100,
		Period:   1,
	})
	var served float64
	for i := 0; i < 12; i++ {
		backlog(eng, s, "A", 1, PersistentRead, 4e6, 1, 20, &served)
	}
	eng.RunUntil(20)
	if d := s.Depth(); d != 1 {
		t.Fatalf("depth = %d after sustained over-latency, want clamped to 1", d)
	}
}

func TestControllerGrowsDepthUnderLowLatency(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := NewSFQD2(eng, dev, ControllerConfig{
		ReadLref:     10, // far above observed latency
		Gain:         5,
		Period:       1,
		InitialDepth: 1,
	})
	var served float64
	backlog(eng, s, "A", 1, PersistentRead, 1e6, 6, 20, &served)
	eng.RunUntil(20)
	if d := s.Depth(); d != 12 {
		t.Fatalf("depth = %d after sustained under-latency, want grown to max 12", d)
	}
}

func TestControllerIdlePeriodsLeaveDepth(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := NewSFQD2(eng, dev, ControllerConfig{ReadLref: 0.01, InitialDepth: 5})
	// Keep the sim alive with a live no-op event past several periods.
	eng.Schedule(5.5, func() {})
	eng.Run()
	if s.Depth() != 5 {
		t.Fatalf("depth drifted to %d with no traffic, want 5", s.Depth())
	}
	if s.Controller().Periods() < 5 {
		t.Fatalf("controller ran %d periods, want >= 5", s.Controller().Periods())
	}
}

func TestControllerTrace(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	var pts []TracePoint
	s := NewSFQD2(eng, dev, ControllerConfig{
		ReadLref: 0.02,
		Trace:    func(p TracePoint) { pts = append(pts, p) },
	})
	var served float64
	backlog(eng, s, "A", 1, PersistentRead, 1e6, 4, 5, &served)
	eng.RunUntil(6)
	if len(pts) < 4 {
		t.Fatalf("trace points = %d, want >= 4", len(pts))
	}
	for i, p := range pts {
		if p.Depth < 1 || p.Depth > 12 {
			t.Fatalf("trace[%d] depth %d out of bounds", i, p.Depth)
		}
		if i > 0 && pts[i].Time <= pts[i-1].Time {
			t.Fatalf("trace times not increasing")
		}
	}
	busy := 0
	for _, p := range pts {
		if p.Samples > 0 {
			busy++
			if p.Latency <= 0 {
				t.Fatalf("busy period with zero latency: %+v", p)
			}
		}
	}
	if busy == 0 {
		t.Fatal("no busy periods traced")
	}
}

func TestControllerMixedReferenceWeighting(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := NewSFQD2(eng, dev, ControllerConfig{
		ReadLref:  0.010,
		WriteLref: 0.050,
		Gain:      0, // isolate the Lref computation via trace
	})
	// Gain 0 is coerced to default, so instead capture the trace Lref.
	_ = s
	var got []float64
	eng2 := sim.NewEngine()
	dev2 := storage.NewDevice(eng2, "d", flatSpec())
	s2 := NewSFQD2(eng2, dev2, ControllerConfig{
		ReadLref:  0.010,
		WriteLref: 0.050,
		Trace: func(p TracePoint) {
			if p.Samples > 0 {
				got = append(got, p.Lref)
			}
		},
	})
	// Pure writes for a few seconds: Lref should equal WriteLref.
	var served float64
	backlog(eng2, s2, "A", 1, PersistentWrite, 1e6, 2, 3, &served)
	eng2.RunUntil(4)
	if len(got) == 0 {
		t.Fatal("no busy trace periods")
	}
	for _, l := range got {
		if math.Abs(l-0.050) > 1e-12 {
			t.Fatalf("pure-write Lref = %v, want 0.050", l)
		}
	}
}

func TestControllerDepthRounding(t *testing.T) {
	c := &DepthController{cfg: ControllerConfig{MinDepth: 1, MaxDepth: 12}, d: 3.6}
	if c.Depth() != 4 {
		t.Fatalf("Depth() = %d for raw 3.6, want 4", c.Depth())
	}
	c.d = 0.2
	if c.Depth() != 1 {
		t.Fatalf("Depth() = %d for raw 0.2, want clamp 1", c.Depth())
	}
	c.d = 99
	if c.Depth() != 12 {
		t.Fatalf("Depth() = %d for raw 99, want clamp 12", c.Depth())
	}
	if c.Raw() != 99 {
		t.Fatalf("Raw() = %v", c.Raw())
	}
}

// SFQ(D2) should track a capacity disturbance: when the device slows
// down (latency spikes), depth should fall, then recover.
func TestControllerReactsToFlushDisturbance(t *testing.T) {
	eng := sim.NewEngine()
	// A device that rewards concurrency up to ~4 streams, so the
	// latency knee (and hence the controller's operating point) sits at
	// a depth well above 1.
	spec := storage.Spec{
		Name:       "curvy",
		ReadBW:     100e6,
		WriteBW:    100e6,
		Curve:      []float64{0.55, 0.70, 0.85, 1.0},
		CurveDecay: 1,
		MinCurve:   0.5,
	}
	dev := storage.NewDevice(eng, "d", spec)
	prof, err := storage.ProfileDevice(spec, storage.ProfileOptions{MaxConcurrency: 12, RequestSize: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	var minDepth, maxAfter int = 99, 0
	s := NewSFQD2(eng, dev, ControllerConfig{
		ReadLref: prof.ReadLref * 1.2,
		Gain:     200,
		Trace: func(p TracePoint) {
			if p.Time > 10 && p.Time < 20 && p.Depth < minDepth {
				minDepth = p.Depth
			}
			if p.Time > 40 && p.Depth > maxAfter {
				maxAfter = p.Depth
			}
		},
	})
	var served float64
	backlog(eng, s, "A", 1, PersistentRead, 1e6, 8, 50, &served)
	// Disturbance window [10, 20): device at 10% capacity.
	eng.Schedule(10, func() { dev.SetDisturbance(0.1) })
	eng.Schedule(20, func() { dev.SetDisturbance(1) })
	eng.RunUntil(50)
	if minDepth > 2 {
		t.Fatalf("depth only fell to %d during disturbance, want <= 2", minDepth)
	}
	if maxAfter < 4 {
		t.Fatalf("depth recovered only to %d after disturbance, want >= 4", maxAfter)
	}
}
