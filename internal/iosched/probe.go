package iosched

// ProbeEvent identifies a point in a request's lifecycle as it passes
// through a scheduler: arrival (tagged and queued), dispatch (handed to
// the device), and completion (device finished, scheduler settled).
type ProbeEvent uint8

const (
	// ProbeArrive fires once per request when the scheduler has tagged
	// and enqueued it (or is about to dispatch it immediately).
	ProbeArrive ProbeEvent = iota
	// ProbeDispatch fires when the request is handed to the device.
	ProbeDispatch
	// ProbeComplete fires when the device completes the request and the
	// scheduler has refilled its dispatch window, before the request's
	// own OnDone callback runs.
	ProbeComplete
)

// String names the event.
func (e ProbeEvent) String() string {
	switch e {
	case ProbeArrive:
		return "arrive"
	case ProbeDispatch:
		return "dispatch"
	case ProbeComplete:
		return "complete"
	default:
		return "probe(?)"
	}
}

// ProbeState is a snapshot of scheduler state at a probe event. It is
// passed by value so instrumentation costs nothing beyond a few stores
// and never allocates; with no probe installed the only cost is a nil
// check.
type ProbeState struct {
	// Event is the lifecycle point.
	Event ProbeEvent
	// Time is the virtual time of the event.
	Time float64
	// Queued and InFlight are the scheduler's queue depth and
	// outstanding dispatch count after the event took effect.
	Queued   int
	InFlight int
	// Depth is the dispatch bound in force (0 = unbounded).
	Depth int
	// VTime is the scheduler's SFQ virtual time (0 for untagged
	// schedulers).
	VTime float64
	// Latency is the request's total latency (arrival to completion);
	// only set for ProbeComplete.
	Latency float64
}

// Probe observes request lifecycle events on one scheduler. The tracing
// and auditing layers implement it; schedulers invoke it synchronously,
// so implementations must not submit new I/O from inside Observe.
type Probe interface {
	Observe(req *Request, st ProbeState)
}

// multiProbe fans one event stream out to several probes.
type multiProbe []Probe

// Observe implements Probe.
func (m multiProbe) Observe(req *Request, st ProbeState) {
	for _, p := range m {
		p.Observe(req, st)
	}
}

// MultiProbe combines probes into one; nil entries are dropped. It
// returns nil when nothing remains, so callers can install the result
// unconditionally.
func MultiProbe(ps ...Probe) Probe {
	out := make(multiProbe, 0, len(ps))
	for _, p := range ps {
		if p != nil {
			out = append(out, p)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
