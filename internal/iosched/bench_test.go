package iosched

import (
	"fmt"
	"testing"

	"ibis/internal/sim"
	"ibis/internal/storage"
)

// benchDev is a minimal Backend: unit cost per byte and a fixed
// in-device latency delivered through the engine, so the benchmark
// isolates scheduler tagging/queueing/dispatch cost from device
// modeling.
type benchDev struct {
	eng *sim.Engine
}

func (d benchDev) Cost(kind storage.OpKind, size float64) float64 { return size }

func (d benchDev) Submit(kind storage.OpKind, size float64, done func(latency float64)) {
	d.eng.Schedule(0.001, func() { done(0.001) })
}

// BenchmarkSFQSubmitDispatch drives a closed loop of requests from four
// weighted flows through SFQ(D): each op is one request's full
// submit → tag → queue → dispatch → complete cycle.
func BenchmarkSFQSubmitDispatch(b *testing.B) {
	eng := sim.NewEngine()
	s := NewSFQD(eng, benchDev{eng}, 4)
	const window = 64
	reqs := make([]*Request, window)
	done, submitted, target := 0, 0, 0
	for i := range reqs {
		r := &Request{
			App:    AppID(fmt.Sprintf("app%d", i%4)),
			Shares: FixedWeight(float64(1 + i%3)),
			Class:  PersistentRead,
			Size:   1000,
		}
		r.OnDone = func(float64) {
			done++
			if submitted < target {
				submitted++
				s.Submit(r)
			}
		}
		reqs[i] = r
	}
	b.ReportAllocs()
	b.ResetTimer()
	target = b.N
	first := window
	if first > target {
		first = target
	}
	submitted = first
	for _, r := range reqs[:first] {
		s.Submit(r)
	}
	for done < target {
		if !eng.Step() {
			b.Fatal("engine drained before all requests completed")
		}
	}
}
