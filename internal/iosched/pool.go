package iosched

// Request pooling and application-ID interning for scale runs.
//
// A hollow-datanode simulation keeps millions of requests in flight;
// allocating each *Request individually scatters them across the heap
// and charges the garbage collector for every one. RequestPool packs
// records into large contiguous slabs (structure-of-arrays at the slab
// level: one allocation holds thousands of adjacent Request structs)
// and recycles completed records through a free list, so steady-state
// submission allocates only when the live population grows past its
// previous peak.
//
// Interner complements the pool on the other axis: with thousands of
// generated tenants × apps, every request carrying its own copy of the
// AppID string header would duplicate the backing bytes per node.
// Interning canonicalizes each distinct ID to a single backing string
// shared by every request, flow-state map key, and accounting entry.

// requestSlabSize is the default number of Request records per slab.
// At ~128 B per record a slab is ~½ MB — large enough to amortize
// allocator overhead, small enough not to strand memory on tiny runs.
const requestSlabSize = 4096

// RequestPool is a slab-backed free-list allocator for Request records.
// It is not safe for concurrent use: in sharded simulations each shard
// owns its own pool, matching the single-owner engine discipline.
type RequestPool struct {
	slabs [][]Request
	free  []*Request
	next  int // records handed out of the newest slab
	slab  int // records per slab

	outstanding int
}

// NewRequestPool returns a pool with the given slab size (records per
// contiguous allocation); sizes < 1 take the default.
func NewRequestPool(slabSize int) *RequestPool {
	if slabSize < 1 {
		slabSize = requestSlabSize
	}
	return &RequestPool{slab: slabSize}
}

// Get returns a zeroed Request. The caller fills the public fields and
// submits it; ownership returns to the pool only through Put.
func (p *RequestPool) Get() *Request {
	p.outstanding++
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return r
	}
	if len(p.slabs) == 0 || p.next == p.slab {
		p.slabs = append(p.slabs, make([]Request, p.slab))
		p.next = 0
	}
	r := &p.slabs[len(p.slabs)-1][p.next]
	p.next++
	return r
}

// Put recycles a completed request. The record is zeroed — public
// fields, closures, and all private scheduling state — so a later Get
// hands out a Request indistinguishable from a freshly allocated one.
// The caller must guarantee no scheduler, probe, or observer still
// holds the pointer: the safe recycle point is the OnDone/Observer
// callback, which every scheduler in the tree invokes after its last
// touch of the record.
func (p *RequestPool) Put(r *Request) {
	*r = Request{}
	p.free = append(p.free, r)
	p.outstanding--
}

// Outstanding returns Get minus Put — the live record count.
func (p *RequestPool) Outstanding() int { return p.outstanding }

// Allocated returns the total records backed by slabs (the pool's
// memory footprint in records, reached at the historical peak).
func (p *RequestPool) Allocated() int {
	if len(p.slabs) == 0 {
		return 0
	}
	return (len(p.slabs)-1)*p.slab + p.next
}

// Interner canonicalizes AppID strings: every distinct ID maps to one
// shared backing string. Not safe for concurrent mutation; populate it
// before a sharded run (reads of a quiescent interner are safe from
// any shard).
type Interner struct {
	ids map[string]AppID
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]AppID)}
}

// Intern returns the canonical AppID for s, registering it on first
// use.
func (in *Interner) Intern(s string) AppID {
	if id, ok := in.ids[s]; ok {
		return id
	}
	id := AppID(s)
	in.ids[s] = id
	return id
}

// Len returns the number of distinct IDs interned.
func (in *Interner) Len() int { return len(in.ids) }
