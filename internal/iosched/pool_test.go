package iosched

import "testing"

func TestRequestPoolRecycleZeroes(t *testing.T) {
	p := NewRequestPool(4)
	r := p.Get()
	r.App = "a"
	r.Shares = FixedWeight(2)
	r.Size = 123
	r.OnDone = func(float64) {}
	r.weight = 2
	r.startTag = 9
	r.finishTag = 10
	r.seq = 7
	r.heapIndex = 3
	p.Put(r)
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after Put, want 0", p.Outstanding())
	}
	got := p.Get()
	if got != r {
		t.Fatalf("free list did not recycle the record")
	}
	if got.App != "" || got.Shares != nil || got.Size != 0 || got.OnDone != nil ||
		got.weight != 0 || got.startTag != 0 || got.finishTag != 0 ||
		got.seq != 0 || got.heapIndex != 0 {
		t.Fatalf("recycled record not zeroed: %+v", *got)
	}
}

func TestRequestPoolSlabGrowth(t *testing.T) {
	p := NewRequestPool(3)
	var live []*Request
	for i := 0; i < 10; i++ {
		live = append(live, p.Get())
	}
	if got := p.Allocated(); got != 10 {
		t.Fatalf("allocated = %d, want 10", got)
	}
	if got := p.Outstanding(); got != 10 {
		t.Fatalf("outstanding = %d, want 10", got)
	}
	// Records must be distinct.
	seen := map[*Request]bool{}
	for _, r := range live {
		if seen[r] {
			t.Fatal("pool handed out the same record twice")
		}
		seen[r] = true
	}
	// Recycle everything; the next 10 Gets must not grow the slabs.
	for _, r := range live {
		p.Put(r)
	}
	for i := 0; i < 10; i++ {
		p.Get()
	}
	if got := p.Allocated(); got != 10 {
		t.Fatalf("allocated grew to %d after steady-state churn, want 10", got)
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	a := in.Intern("tenant-0042/app-7")
	b := in.Intern("tenant-0042/app-7")
	if a != b {
		t.Fatal("interner returned different IDs for the same string")
	}
	if in.Len() != 1 {
		t.Fatalf("len = %d, want 1", in.Len())
	}
	c := in.Intern("tenant-0042/app-8")
	if c == a {
		t.Fatal("distinct strings interned to the same ID")
	}
	if in.Len() != 2 {
		t.Fatalf("len = %d, want 2", in.Len())
	}
}
