package iosched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ibis/internal/sim"
	"ibis/internal/storage"
)

// flatSpec is a simple device for scheduler tests: symmetric, no
// overhead, capacity independent of concurrency, no flushes. 100 MB/s.
func flatSpec() storage.Spec {
	return storage.Spec{
		Name:          "flat",
		ReadBW:        100e6,
		WriteBW:       100e6,
		PerOpOverhead: 0,
		Curve:         []float64{1},
		CurveDecay:    1,
		MinCurve:      1,
	}
}

func newTestSFQ(t *testing.T, depth int) (*sim.Engine, *SFQ) {
	t.Helper()
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	return eng, NewSFQD(eng, dev, depth)
}

// backlog keeps `outstanding` requests of the given size in flight for
// app until the engine passes `until`, tallying serviced bytes.
func backlog(eng *sim.Engine, s Scheduler, app AppID, weight float64, class Class, size float64, outstanding int, until float64, served *float64) {
	var issue func()
	issue = func() {
		s.Submit(&Request{
			App: app, Shares: FixedWeight(weight), Class: class, Size: size,
			OnDone: func(float64) {
				*served += size
				if eng.Now() < until {
					issue()
				}
			},
		})
	}
	for i := 0; i < outstanding; i++ {
		issue()
	}
}

func TestSFQProportionalSharing(t *testing.T) {
	for _, ratio := range []float64{1, 2, 4, 8} {
		eng, s := newTestSFQ(t, 1)
		var a, b float64
		backlog(eng, s, "A", ratio, PersistentRead, 1e6, 4, 60, &a)
		backlog(eng, s, "B", 1, PersistentRead, 1e6, 4, 60, &b)
		eng.RunUntil(60)
		got := a / b
		if math.Abs(got-ratio)/ratio > 0.1 {
			t.Errorf("weight ratio %v: service ratio %.3f (a=%.0f b=%.0f)", ratio, got, a, b)
		}
	}
}

func TestSFQProportionalSharingDeeper(t *testing.T) {
	// Fairness should hold (more loosely) at depth 4 as well.
	eng, s := newTestSFQ(t, 4)
	var a, b float64
	backlog(eng, s, "A", 3, PersistentRead, 1e6, 8, 60, &a)
	backlog(eng, s, "B", 1, PersistentRead, 1e6, 8, 60, &b)
	eng.RunUntil(60)
	if got := a / b; math.Abs(got-3)/3 > 0.25 {
		t.Errorf("service ratio %.3f, want ≈3", got)
	}
}

func TestSFQWorkConservingWhenOneFlowIdle(t *testing.T) {
	eng, s := newTestSFQ(t, 2)
	var a float64
	// Only one flow present: it should get the full device.
	backlog(eng, s, "A", 1, PersistentRead, 1e6, 2, 10, &a)
	eng.RunUntil(10)
	if a < 0.95*100e6*10 {
		t.Errorf("single flow served %.0f bytes in 10s, want ≈ full 1e9", a)
	}
}

func TestSFQDepthBoundsInFlight(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := NewSFQD(eng, dev, 3)
	maxIn := 0
	s.SetObserver(func(*Request, float64) {
		if s.InFlight() > maxIn {
			maxIn = s.InFlight()
		}
	})
	for i := 0; i < 20; i++ {
		s.Submit(&Request{App: "A", Shares: FixedWeight(1), Class: PersistentRead, Size: 1e6})
	}
	if s.InFlight() != 3 {
		t.Fatalf("InFlight = %d immediately after burst, want 3", s.InFlight())
	}
	if s.Queued() != 17 {
		t.Fatalf("Queued = %d, want 17", s.Queued())
	}
	eng.Run()
	if s.Queued() != 0 || s.InFlight() != 0 {
		t.Fatalf("left over: queued=%d inflight=%d", s.Queued(), s.InFlight())
	}
	if dev.Stats().ReadOps != 20 {
		t.Fatalf("device ops = %d, want 20", dev.Stats().ReadOps)
	}
}

func TestSFQVirtualTimeMonotone(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := NewSFQD(eng, dev, 2)
	last := -1.0
	s.SetObserver(func(*Request, float64) {
		v := s.VirtualTime()
		if v < last {
			t.Errorf("virtual time went backwards: %v -> %v", last, v)
		}
		last = v
	})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		app := AppID("A")
		if rng.Intn(2) == 0 {
			app = "B"
		}
		eng.Schedule(rng.Float64()*5, func() {
			s.Submit(&Request{App: app, Shares: FixedWeight(1 + rng.Float64()*3), Class: PersistentWrite, Size: 1e5 + rng.Float64()*1e6})
		})
	}
	eng.Run()
}

func TestSFQTagAlgebra(t *testing.T) {
	eng, s := newTestSFQ(t, 1)
	var reqs []*Request
	for i := 0; i < 3; i++ {
		r := &Request{App: "A", Shares: FixedWeight(2), Class: PersistentRead, Size: 2e6}
		reqs = append(reqs, r)
		s.Submit(r)
	}
	// cost = 2e6 bytes; finish = start + cost/weight = start + 1e6.
	if reqs[0].StartTag() != 0 {
		t.Fatalf("first start tag = %v, want 0", reqs[0].StartTag())
	}
	for i, r := range reqs {
		wantS := float64(i) * 1e6
		if math.Abs(r.StartTag()-wantS) > 1 {
			t.Errorf("req %d start tag %v, want %v", i, r.StartTag(), wantS)
		}
		if math.Abs(r.FinishTag()-(wantS+1e6)) > 1 {
			t.Errorf("req %d finish tag %v, want %v", i, r.FinishTag(), wantS+1e6)
		}
	}
	eng.Run()
}

func TestSFQLowerWeightMeansLaterFinishTags(t *testing.T) {
	_, s := newTestSFQ(t, 1)
	ra := &Request{App: "A", Shares: FixedWeight(4), Class: PersistentRead, Size: 1e6}
	rb := &Request{App: "B", Shares: FixedWeight(1), Class: PersistentRead, Size: 1e6}
	s.Submit(ra)
	s.Submit(rb)
	if rb.FinishTag() <= ra.FinishTag() {
		t.Fatalf("low-weight finish tag %v not after high-weight %v", rb.FinishTag(), ra.FinishTag())
	}
}

func TestSFQInvalidDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("depth 0 accepted")
		}
	}()
	eng := sim.NewEngine()
	NewSFQD(eng, storage.NewDevice(eng, "d", flatSpec()), 0)
}

func TestRequestValidation(t *testing.T) {
	cases := []Request{
		{App: "", Shares: FixedWeight(1), Class: PersistentRead, Size: 1},
		{App: "A", Shares: FixedWeight(0), Class: PersistentRead, Size: 1},
		{App: "A", Shares: FixedWeight(-1), Class: PersistentRead, Size: 1},
		{App: "A", Shares: FixedWeight(1), Class: PersistentRead, Size: -5},
		{App: "A", Shares: FixedWeight(1), Class: Class(99), Size: 1},
	}
	for i := range cases {
		req := cases[i]
		_, s := newTestSFQ(t, 1)
		if err := s.Submit(&req); err == nil {
			t.Errorf("case %d: invalid request accepted: %+v", i, req)
		}
		if s.Queued() != 0 || s.InFlight() != 0 {
			t.Errorf("case %d: rejected request left state behind", i)
		}
	}
}

func TestFIFOPassthrough(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	f := NewFIFO(eng, dev)
	if f.Name() != "native" {
		t.Fatalf("Name = %q", f.Name())
	}
	for i := 0; i < 10; i++ {
		f.Submit(&Request{App: "A", Shares: FixedWeight(1), Class: IntermediateWrite, Size: 1e6})
	}
	if f.InFlight() != 10 {
		t.Fatalf("InFlight = %d, want 10 (no admission control)", f.InFlight())
	}
	if f.Queued() != 0 {
		t.Fatalf("Queued = %d, want 0", f.Queued())
	}
	eng.Run()
	if got := f.Accounting().Service("A").Bytes; got != 10e6 {
		t.Fatalf("accounted bytes = %v, want 1e7", got)
	}
}

func TestFIFONoIsolation(t *testing.T) {
	// Under FIFO an aggressive flow crowds out a light one regardless of
	// weights — the motivating problem.
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	f := NewFIFO(eng, dev)
	var light, heavy float64
	backlog(eng, f, "light", 32, PersistentRead, 1e6, 1, 30, &light)
	backlog(eng, f, "heavy", 1, PersistentRead, 1e6, 16, 30, &heavy)
	eng.RunUntil(30)
	if light > heavy {
		t.Fatalf("FIFO honored weights?! light=%.0f heavy=%.0f", light, heavy)
	}
	if heavy < 8*light {
		t.Fatalf("heavy/light = %.2f, want heavy to dominate despite weights", heavy/light)
	}
}

func TestSFQIsolatesDespiteAggression(t *testing.T) {
	// Same scenario as above but SFQ(D=1) with 32:1 weights: the light
	// flow should now receive the majority of service.
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := NewSFQD(eng, dev, 1)
	var light, heavy float64
	backlog(eng, s, "light", 32, PersistentRead, 1e6, 1, 30, &light)
	backlog(eng, s, "heavy", 1, PersistentRead, 1e6, 16, 30, &heavy)
	eng.RunUntil(30)
	if light <= heavy {
		t.Fatalf("SFQ failed to isolate: light=%.0f heavy=%.0f", light, heavy)
	}
}

func TestAccountingPerClass(t *testing.T) {
	eng, s := newTestSFQ(t, 4)
	s.Submit(&Request{App: "A", Shares: FixedWeight(1), Class: PersistentRead, Size: 1e6})
	s.Submit(&Request{App: "A", Shares: FixedWeight(1), Class: IntermediateWrite, Size: 2e6})
	eng.Run()
	svc := s.Accounting().Service("A")
	if svc.ByClass[PersistentRead] != 1e6 || svc.ByClass[IntermediateWrite] != 2e6 {
		t.Fatalf("per-class bytes = %v", svc.ByClass)
	}
	if svc.Requests != 2 {
		t.Fatalf("requests = %d", svc.Requests)
	}
	if got := s.Accounting().TotalBytes(); got != 3e6 {
		t.Fatalf("total = %v", got)
	}
}

func TestAccountingAppsSorted(t *testing.T) {
	eng, s := newTestSFQ(t, 4)
	for _, app := range []AppID{"zeta", "alpha", "mid"} {
		s.Submit(&Request{App: app, Shares: FixedWeight(1), Class: PersistentRead, Size: 1e5})
	}
	eng.Run()
	apps := s.Accounting().Apps()
	if len(apps) != 3 || apps[0] != "alpha" || apps[1] != "mid" || apps[2] != "zeta" {
		t.Fatalf("Apps() = %v", apps)
	}
}

func TestAccountingUnknownApp(t *testing.T) {
	a := NewAccounting()
	if got := a.Service("nope"); got.Bytes != 0 || got.Requests != 0 {
		t.Fatalf("unknown app service = %+v", got)
	}
}

func TestCostVectorMatchesService(t *testing.T) {
	eng, s := newTestSFQ(t, 2)
	s.Submit(&Request{App: "A", Shares: FixedWeight(1), Class: PersistentRead, Size: 3e6})
	s.Submit(&Request{App: "B", Shares: FixedWeight(1), Class: PersistentWrite, Size: 5e6})
	eng.Run()
	v := s.Accounting().CostVector()
	if v["A"] != s.Accounting().Service("A").Cost || v["B"] != s.Accounting().Service("B").Cost {
		t.Fatalf("cost vector %v mismatches accounting", v)
	}
}

func TestClassProperties(t *testing.T) {
	if PersistentRead.OpKind() != storage.Read || IntermediateRead.OpKind() != storage.Read {
		t.Fatal("read classes must map to reads")
	}
	if PersistentWrite.OpKind() != storage.Write || IntermediateWrite.OpKind() != storage.Write {
		t.Fatal("write classes must map to writes")
	}
	if !PersistentRead.Persistent() || !PersistentWrite.Persistent() {
		t.Fatal("persistent classes misreported")
	}
	if IntermediateRead.Persistent() || IntermediateWrite.Persistent() {
		t.Fatal("intermediate classes misreported")
	}
	for _, c := range []Class{PersistentRead, PersistentWrite, IntermediateRead, IntermediateWrite} {
		if c.String() == "" {
			t.Fatal("empty class name")
		}
	}
	if Class(42).String() == "" {
		t.Fatal("unknown class should still render")
	}
}

// Property: under persistent backlog from two flows with random weights,
// SFQ(D=1) delivers service within 15% of the weight ratio.
func TestPropertySFQFairness(t *testing.T) {
	f := func(wRaw uint8) bool {
		w := 1 + float64(wRaw%16)
		eng, s := newTestSFQ(t, 1)
		var a, b float64
		backlog(eng, s, "A", w, PersistentRead, 1e6, 4, 40, &a)
		backlog(eng, s, "B", 1, PersistentRead, 1e6, 4, 40, &b)
		eng.RunUntil(40)
		if b == 0 {
			return false
		}
		got := a / b
		return math.Abs(got-w)/w < 0.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: all submitted requests complete exactly once, regardless of
// depth and arrival pattern.
func TestPropertySFQCompleteness(t *testing.T) {
	f := func(seed int64, depthRaw, nRaw uint8) bool {
		depth := 1 + int(depthRaw%8)
		n := 1 + int(nRaw%60)
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		dev := storage.NewDevice(eng, "d", flatSpec())
		s := NewSFQD(eng, dev, depth)
		completions := 0
		for i := 0; i < n; i++ {
			eng.Schedule(rng.Float64()*3, func() {
				s.Submit(&Request{
					App:    AppID([]string{"A", "B", "C"}[rng.Intn(3)]),
					Shares: FixedWeight(1 + rng.Float64()*7),
					Class:  Class(rng.Intn(4)),
					Size:   rng.Float64() * 4e6,
					OnDone: func(float64) { completions++ },
				})
			})
		}
		eng.Run()
		return completions == n && s.Queued() == 0 && s.InFlight() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSFQNames(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	if got := NewSFQD(eng, dev, 4).Name(); got != "sfq(d=4)" {
		t.Fatalf("Name = %q", got)
	}
	d2 := NewSFQD2(eng, dev, ControllerConfig{ReadLref: 0.01})
	if got := d2.Name(); got != "sfq(d2)" {
		t.Fatalf("Name = %q", got)
	}
	if d2.Controller() == nil {
		t.Fatal("SFQ(D2) without controller")
	}
}
