// Package iosched implements the core contribution of the IBIS paper:
// the interposed big-data I/O scheduling framework and its
// proportional-share schedulers — classic SFQ(D) with a static dispatch
// depth and the new SFQ(D2) whose depth is adapted online by an integral
// feedback controller steering observed I/O latency toward a profiled
// reference.
//
// Every I/O issued by an application phase (persistent HDFS reads and
// writes, intermediate local-FS spills and merges, and shuffle serving)
// is tagged with the application's identifier and I/O weight and routed
// through a per-device Scheduler, exactly as IBIS interposes the
// DFSClient, local I/O, and shuffle-servlet paths on every datanode.
package iosched

import (
	"fmt"
	"math"

	"ibis/internal/storage"
)

// AppID identifies an application (a MapReduce job, a Hive query, ...)
// across the entire cluster. IDs are assigned by the job scheduler and
// carried on every I/O request — the paper's DFSClient header extension.
type AppID string

// Class identifies the I/O phase a request belongs to. The scheduler
// treats all classes uniformly (that is the point of the interposition
// layer); classes exist for accounting and for wiring baselines that can
// only control a subset (cgroups sees intermediate I/O only).
type Class int

const (
	// PersistentRead is a map task reading its input split from the DFS.
	PersistentRead Class = iota
	// PersistentWrite is a reduce task writing final output to the DFS
	// (including replication pipeline copies).
	PersistentWrite
	// IntermediateRead covers merge reads and shuffle-serving reads of
	// map outputs from the local file system.
	IntermediateRead
	// IntermediateWrite covers spill/merge writes of in-progress data to
	// the local file system.
	IntermediateWrite
	// NetworkTransfer is a network hop (shuffle or replication
	// pipeline). Only used when the cluster schedules NIC bandwidth —
	// the paper's OpenFlow-style extension; by default IBIS controls
	// the network indirectly at the storage endpoints.
	NetworkTransfer
	numClasses
)

// NumClasses is the number of I/O classes, exported so weight sources
// (the shares tree) can size per-class tables.
const NumClasses = int(numClasses)

// String names the class.
func (c Class) String() string {
	switch c {
	case PersistentRead:
		return "persistent-read"
	case PersistentWrite:
		return "persistent-write"
	case IntermediateRead:
		return "intermediate-read"
	case IntermediateWrite:
		return "intermediate-write"
	case NetworkTransfer:
		return "network"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// OpKind maps the class to the device-level operation direction.
// Network transfers count as writes (they push data).
func (c Class) OpKind() storage.OpKind {
	switch c {
	case PersistentRead, IntermediateRead:
		return storage.Read
	default:
		return storage.Write
	}
}

// Persistent reports whether the class is DFS (distributed) I/O — the
// kind cgroups-style local controls cannot differentiate.
func (c Class) Persistent() bool {
	return c == PersistentRead || c == PersistentWrite
}

// WeightSource resolves an application's effective I/O weight at tag
// time. The shares tree implements it for the hierarchical runtime
// control plane; FixedWeight bridges direct request construction.
// Resolution happens when a scheduler computes the request's start and
// finish tags, so a weight change in the source takes effect on the
// next tagged request without touching queued ones.
type WeightSource interface {
	// EffectiveWeight returns the weight to tag (app, class) with,
	// plus the version (epoch) of the weight table it came from.
	// Weights must be positive and finite; only relative values
	// matter.
	EffectiveWeight(app AppID, class Class) (weight float64, epoch uint64)
}

// FixedWeight is a WeightSource that always resolves to a constant —
// the flat per-request weight the pre-tree code paths used.
type FixedWeight float64

// EffectiveWeight implements WeightSource.
func (f FixedWeight) EffectiveWeight(AppID, Class) (float64, uint64) { return float64(f), 0 }

// Request is one tagged I/O operation presented to a scheduler.
type Request struct {
	// App is the issuing application's cluster-wide identifier.
	App AppID
	// Shares resolves the application's effective I/O weight when the
	// scheduler tags the request (see WeightSource). Required.
	Shares WeightSource
	// Class is the I/O phase.
	Class Class
	// Size is the transfer size in bytes.
	Size float64
	// OnDone, if non-nil, fires at completion with the request's total
	// latency (arrival to completion, queueing included).
	OnDone func(latency float64)

	// Scheduling state (owned by the scheduler).
	weight    float64
	epoch     uint64
	arrive    float64
	dispatch  float64
	cost      float64
	startTag  float64
	finishTag float64
	seq       uint64
	heapIndex int
}

// Arrive returns the virtual time the request entered the scheduler.
func (r *Request) Arrive() float64 { return r.arrive }

// DispatchedAt returns the virtual time the request was handed to the
// device (zero until dispatched; schedulers outside this package may
// leave it zero).
func (r *Request) DispatchedAt() float64 { return r.dispatch }

// Cost returns the request's normalized device cost, assigned at
// submission (zero before then).
func (r *Request) Cost() float64 { return r.cost }

// Seq returns the scheduler-local arrival sequence number; together
// with the scheduler's identity it uniquely names a request.
func (r *Request) Seq() uint64 { return r.seq }

// Weight returns the effective weight the scheduler resolved at tag
// time (zero before submission).
func (r *Request) Weight() float64 { return r.weight }

// ShareEpoch returns the weight-table version the request's weight was
// resolved against (zero before submission, and for fixed sources).
func (r *Request) ShareEpoch() uint64 { return r.epoch }

// MarkExternalArrival records the arrival time and scheduler-local
// sequence number for a request handled by a scheduler implemented
// outside this package (the cgroups baselines). Schedulers in this
// package do this bookkeeping internally.
func (r *Request) MarkExternalArrival(seq uint64, now float64) {
	r.seq = seq
	r.arrive = now
}

// StartTag returns the SFQ start tag assigned at arrival (zero for
// schedulers that do not use tags).
func (r *Request) StartTag() float64 { return r.startTag }

// FinishTag returns the SFQ finish tag assigned at arrival.
func (r *Request) FinishTag() float64 { return r.finishTag }

// prepare validates the request and resolves its effective weight
// through the weight source. Schedulers call it at the top of Submit —
// the tag-time resolution point — and surface the error to the caller
// instead of panicking: with weights arriving from a runtime control
// plane, a malformed request is an input error, not a programming one.
func (r *Request) prepare() error {
	if r.App == "" {
		return fmt.Errorf("iosched: request without app id")
	}
	if r.Size < 0 {
		return fmt.Errorf("iosched: request for %q with negative size %g", r.App, r.Size)
	}
	if r.Class < 0 || r.Class >= numClasses {
		return fmt.Errorf("iosched: request for %q with unknown class %d", r.App, int(r.Class))
	}
	if r.Shares == nil {
		return fmt.Errorf("iosched: request for %q without a weight source", r.App)
	}
	w, epoch := r.Shares.EffectiveWeight(r.App, r.Class)
	if !(w > 0) || math.IsInf(w, 1) {
		return fmt.Errorf("iosched: request for %q resolved non-positive weight %g", r.App, w)
	}
	r.weight = w
	r.epoch = epoch
	return nil
}

// Resolve runs the same validation and weight resolution as a
// scheduler's Submit, for schedulers implemented outside this package
// (the cgroups baselines) whose uncontrolled paths bypass an inner
// SFQ.
func (r *Request) Resolve() error { return r.prepare() }
