package iosched

import (
	"sort"

	"ibis/internal/sim"
	"ibis/internal/storage"
)

// Backend is the resource a scheduler dispatches to. *storage.Device
// satisfies it; the cluster package also adapts NIC links so the same
// schedulers can manage network bandwidth (the paper's OpenFlow-style
// extension).
type Backend interface {
	// Cost converts an operation to service units.
	Cost(kind storage.OpKind, size float64) float64
	// Submit starts servicing; onDone receives the in-resource latency.
	Submit(kind storage.OpKind, size float64, onDone func(latency float64))
}

var _ Backend = (*storage.Device)(nil)

// Scheduler is the interposition seam: every I/O on a datanode device
// passes through exactly one Scheduler, which decides when to dispatch
// it to the underlying storage.
type Scheduler interface {
	// Submit presents a tagged request. On success the scheduler owns
	// it from this point and will eventually dispatch it and invoke
	// OnDone. A non-nil error means the request was rejected (malformed
	// or its weight failed to resolve) and the scheduler took no
	// ownership.
	Submit(*Request) error
	// Name identifies the policy, e.g. "native", "sfq(d=4)", "sfq(d2)".
	Name() string
	// Queued returns the number of requests waiting for dispatch.
	Queued() int
	// InFlight returns the number of requests dispatched to the device
	// and not yet completed.
	InFlight() int
	// Accounting exposes per-application service counters.
	Accounting() *Accounting
}

// Observer receives a completion notification for every request a
// scheduler finishes. Used by metrics collectors and experiment probes.
type Observer func(req *Request, latency float64)

// AppService records the cumulative service delivered to one app by one
// scheduler.
type AppService struct {
	// Bytes is the raw data volume serviced.
	Bytes float64
	// Cost is the normalized service (device cost units); this is what
	// proportional sharing and the DSFQ delay operate on.
	Cost float64
	// Requests is the completed request count.
	Requests uint64
	// ByClass splits bytes per I/O class.
	ByClass [numClasses]float64
}

// Accounting tracks cumulative per-app service for a scheduler. It backs
// both fairness measurements and the broker's coordination vectors.
type Accounting struct {
	apps map[AppID]*AppService
}

// NewAccounting returns an empty account book.
func NewAccounting() *Accounting {
	return &Accounting{apps: make(map[AppID]*AppService)}
}

func (a *Accounting) add(req *Request) {
	s := a.apps[req.App]
	if s == nil {
		s = &AppService{}
		a.apps[req.App] = s
	}
	s.Bytes += req.Size
	s.Cost += req.cost
	s.Requests++
	s.ByClass[req.Class] += req.Size
}

// AddExternal records a completed request serviced by a scheduler
// implemented outside this package (e.g. the cgroups baselines), with
// the device cost supplied explicitly.
func (a *Accounting) AddExternal(req *Request, cost float64) {
	req.cost = cost
	a.add(req)
}

// Service returns the counters for one app (zero value if unseen).
func (a *Accounting) Service(app AppID) AppService {
	if s := a.apps[app]; s != nil {
		return *s
	}
	return AppService{}
}

// Apps returns the app IDs seen, sorted for determinism.
func (a *Accounting) Apps() []AppID {
	ids := make([]AppID, 0, len(a.apps))
	for id := range a.apps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// CostVector returns a copy of the per-app cumulative cost — the message
// a local scheduler sends the Scheduling Broker each period.
func (a *Accounting) CostVector() map[AppID]float64 {
	v := make(map[AppID]float64, len(a.apps))
	for id, s := range a.apps {
		v[id] = s.Cost
	}
	return v
}

// TotalBytes sums serviced bytes across apps.
func (a *Accounting) TotalBytes() float64 {
	t := 0.0
	for _, s := range a.apps {
		t += s.Bytes
	}
	return t
}

// FIFO is the native baseline: requests are forwarded to the device the
// moment they arrive, with no admission control at all — TeraGen's I/Os
// "are sent to storage as soon as they come without any control".
type FIFO struct {
	eng      *sim.Engine
	dev      Backend
	acct     *Accounting
	observer Observer
	probe    Probe
	inflight int
	seq      uint64
}

// NewFIFO builds the native pass-through scheduler for a device.
func NewFIFO(eng *sim.Engine, dev Backend) *FIFO {
	return &FIFO{eng: eng, dev: dev, acct: NewAccounting()}
}

// SetObserver installs a completion observer.
func (f *FIFO) SetObserver(o Observer) { f.observer = o }

// SetProbe installs a lifecycle probe (tracing/auditing).
func (f *FIFO) SetProbe(p Probe) { f.probe = p }

// Name implements Scheduler.
func (f *FIFO) Name() string { return "native" }

// Queued implements Scheduler; FIFO never queues.
func (f *FIFO) Queued() int { return 0 }

// InFlight implements Scheduler.
func (f *FIFO) InFlight() int { return f.inflight }

// Accounting implements Scheduler.
func (f *FIFO) Accounting() *Accounting { return f.acct }

// Submit implements Scheduler.
func (f *FIFO) Submit(req *Request) error {
	if err := req.prepare(); err != nil {
		return err
	}
	req.arrive = f.eng.Now()
	req.dispatch = req.arrive
	req.cost = f.dev.Cost(req.Class.OpKind(), req.Size)
	req.seq = f.seq
	f.seq++
	f.inflight++
	if f.probe != nil {
		st := ProbeState{Event: ProbeArrive, Time: req.arrive, InFlight: f.inflight}
		f.probe.Observe(req, st)
		st.Event = ProbeDispatch
		f.probe.Observe(req, st)
	}
	f.dev.Submit(req.Class.OpKind(), req.Size, func(float64) {
		f.inflight--
		lat := f.eng.Now() - req.arrive
		f.acct.add(req)
		if f.probe != nil {
			f.probe.Observe(req, ProbeState{
				Event:    ProbeComplete,
				Time:     f.eng.Now(),
				InFlight: f.inflight,
				Latency:  lat,
			})
		}
		if f.observer != nil {
			f.observer(req, lat)
		}
		if req.OnDone != nil {
			req.OnDone(lat)
		}
	})
	return nil
}
