package iosched

// Native fuzz target for the Submit/Dispatch tag arithmetic. The fuzzer
// drives an SFQ scheduler — plain SFQ(D) or SFQ(D2), optionally under a
// monotone fake coordinator exercising the DSFQ delay rule — with an
// arbitrary byte-stream-decoded workload, and checks the invariants the
// property tests pin on curated inputs:
//
//   - F = S + cost/w for every tagged request (within float slack);
//   - per-flow start tags never regress;
//   - the scheduler's virtual time never regresses;
//   - every submitted request completes exactly once and the queue
//     fully drains;
//   - accounting totals equal the submitted totals.
//
// Seeds mirror the existing property-test corpora: random weights,
// random sizes, random classes, bursts and trickles.

import (
	"math"
	"testing"

	"ibis/internal/sim"
	"ibis/internal/storage"
)

// rampCoord is a deterministic monotone Coordinator: other-node service
// grows with each query, exercising the DSFQ delay path without a
// broker.
type rampCoord struct {
	step  float64
	total map[AppID]float64
}

func (f *rampCoord) OtherService(app AppID) float64 {
	if f.total == nil {
		f.total = make(map[AppID]float64)
	}
	f.total[app] += f.step
	return f.total[app]
}

// tagChecker validates tag arithmetic from the probe stream.
type tagChecker struct {
	t         *testing.T
	lastStart map[AppID]float64
	lastVTime float64
	completed int
}

func (tc *tagChecker) Observe(req *Request, st ProbeState) {
	switch st.Event {
	case ProbeArrive:
		s, fin := req.StartTag(), req.FinishTag()
		w := req.Weight()
		if w <= 0 {
			tc.t.Fatalf("non-positive weight %v", w)
		}
		wantF := s + req.Cost()/w
		if math.Abs(fin-wantF) > 1e-6*math.Max(1, math.Abs(wantF)) {
			tc.t.Fatalf("finish tag %v != start %v + cost/w %v", fin, s, wantF)
		}
		if last, ok := tc.lastStart[req.App]; ok && s < last-1e-9 {
			tc.t.Fatalf("flow %s start tag regressed: %v after %v", req.App, s, last)
		}
		tc.lastStart[req.App] = s
	case ProbeDispatch:
		if st.VTime < tc.lastVTime-1e-9 {
			tc.t.Fatalf("virtual time regressed: %v after %v", st.VTime, tc.lastVTime)
		}
		tc.lastVTime = st.VTime
	case ProbeComplete:
		tc.completed++
	}
}

func FuzzSFQTags(f *testing.F) {
	// Seeds shaped like the property-test corpora.
	f.Add(uint8(4), false, false, []byte{0x01, 0x40, 0x10, 0x82, 0x33, 0x05})
	f.Add(uint8(1), true, false, []byte{0xff, 0x00, 0x7f, 0x80, 0x01, 0x02, 0x03})
	f.Add(uint8(8), false, true, []byte{0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80})
	f.Add(uint8(2), true, true, []byte{0xde, 0xad, 0xbe, 0xef, 0xca, 0xfe})
	f.Fuzz(func(t *testing.T, depthRaw uint8, adaptive, coordinated bool, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		eng := sim.NewEngine()
		dev := storage.NewDevice(eng, "d", storage.Spec{
			Name: "flat", ReadBW: 100e6, WriteBW: 100e6,
			Curve: []float64{1}, CurveDecay: 1, MinCurve: 1,
		})
		var s *SFQ
		if adaptive {
			s = NewSFQD2(eng, dev, ControllerConfig{ReadLref: 0.02})
		} else {
			s = NewSFQD(eng, dev, 1+int(depthRaw%16))
		}
		if coordinated {
			s.SetCoordinator(&rampCoord{step: 1e5})
			s.SetDelayClamp(5e6)
		}
		tc := &tagChecker{t: t, lastStart: make(map[AppID]float64)}
		s.SetProbe(tc)

		apps := []AppID{"A", "B", "C", "D"}
		weights := []float64{1, 2, 4, 7.5}
		submitted := 0
		totalBytes := 0.0
		done := 0
		// Decode the byte stream: each op byte picks app/class/size/gap.
		at := 0.0
		for i := 0; i < len(ops); i++ {
			b := ops[i]
			app := apps[int(b)%len(apps)]
			w := weights[int(b>>2)%len(weights)]
			class := Class(int(b>>4) % 4)
			size := float64(1+int(b>>3)) * 1e5
			if b&0x80 != 0 {
				at += float64(b&0x7f) / 100
			}
			req := &Request{
				App:    app,
				Shares: FixedWeight(w),
				Class:  class,
				Size:   size,
				OnDone: func(float64) { done++ },
			}
			eng.Schedule(at, func() {
				if err := s.Submit(req); err != nil {
					t.Fatalf("submit rejected: %v", err)
				}
			})
			submitted++
			totalBytes += size
		}
		eng.Run()
		if done != submitted {
			t.Fatalf("completed %d of %d", done, submitted)
		}
		if tc.completed != submitted {
			t.Fatalf("probe saw %d completions of %d", tc.completed, submitted)
		}
		if s.Queued() != 0 || s.InFlight() != 0 {
			t.Fatalf("scheduler not drained: queued=%d inflight=%d", s.Queued(), s.InFlight())
		}
		var acctBytes float64
		acct := s.Accounting()
		for _, a := range acct.Apps() {
			acctBytes += acct.Service(a).Bytes
		}
		if math.Abs(acctBytes-totalBytes) > 1e-6 {
			t.Fatalf("accounting bytes %v != submitted %v", acctBytes, totalBytes)
		}
	})
}
