package iosched

import (
	"fmt"
	"sort"

	"ibis/internal/sim"
)

// Reservation is the paper's Section 9 "extreme case": a
// non-work-conserving scheduler that partitions the device bandwidth
// hard. Each application is paced at its reserved rate (cost units per
// second) regardless of what everyone else is doing, so isolation is
// strict — an app's service never depends on its neighbours — but
// bandwidth an app leaves unused is simply wasted. IBIS exposes this
// as one end of the fairness-versus-utilization spectrum that SFQ(D)
// and SFQ(D2) trade along.
type Reservation struct {
	eng      *sim.Engine
	dev      Backend
	acct     *Accounting
	observer Observer
	probe    Probe
	seq      uint64

	// rates maps each app to its reserved service rate (cost units/s);
	// defaultRate applies to apps not listed (0 = reject).
	rates       map[AppID]float64
	defaultRate float64

	flows    map[AppID]*resFlow
	inflight int
	queued   int
}

type resFlow struct {
	rate    float64
	credits float64 // accumulated cost units
	last    float64
	queue   []*Request
	release sim.Event
}

// NewReservation builds the strict-partitioning scheduler. rates gives
// each app's reserved rate in cost units per second; defaultRate
// applies to unlisted apps and must be positive if any such app may
// submit. Rates are validated here — reservation configs arrive from
// the public cluster config, so a bad one is an input error.
func NewReservation(eng *sim.Engine, dev Backend, rates map[AppID]float64, defaultRate float64) (*Reservation, error) {
	for app, r := range rates {
		if r <= 0 {
			return nil, fmt.Errorf("iosched: reservation rate for %q must be positive, got %g", app, r)
		}
	}
	if defaultRate < 0 {
		return nil, fmt.Errorf("iosched: default reservation rate must be non-negative, got %g", defaultRate)
	}
	return &Reservation{
		eng:         eng,
		dev:         dev,
		acct:        NewAccounting(),
		rates:       rates,
		defaultRate: defaultRate,
		flows:       make(map[AppID]*resFlow),
	}, nil
}

var _ Scheduler = (*Reservation)(nil)

// Name implements Scheduler.
func (r *Reservation) Name() string { return "reservation" }

// Queued implements Scheduler.
func (r *Reservation) Queued() int { return r.queued }

// InFlight implements Scheduler.
func (r *Reservation) InFlight() int { return r.inflight }

// Accounting implements Scheduler.
func (r *Reservation) Accounting() *Accounting { return r.acct }

// SetObserver installs a completion observer.
func (r *Reservation) SetObserver(o Observer) { r.observer = o }

// SetProbe installs a lifecycle probe (tracing/auditing).
func (r *Reservation) SetProbe(p Probe) { r.probe = p }

// Apps returns the configured apps, sorted (for introspection).
func (r *Reservation) Apps() []AppID {
	out := make([]AppID, 0, len(r.rates))
	for a := range r.rates {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Submit implements Scheduler. A request from an app with no
// reservation and no default rate is rejected with an error — the
// non-work-conserving partitioning has no bandwidth to give it.
func (r *Reservation) Submit(req *Request) error {
	if err := req.prepare(); err != nil {
		return err
	}
	f := r.flows[req.App]
	if f == nil {
		rate, ok := r.rates[req.App]
		if !ok {
			rate = r.defaultRate
		}
		if rate <= 0 {
			return fmt.Errorf("iosched: no reservation for app %q and no default rate", req.App)
		}
		f = &resFlow{rate: rate, last: r.eng.Now()}
		r.flows[req.App] = f
	}
	req.arrive = r.eng.Now()
	req.cost = r.dev.Cost(req.Class.OpKind(), req.Size)
	req.seq = r.seq
	r.seq++
	if r.probe != nil {
		r.probe.Observe(req, ProbeState{
			Event:    ProbeArrive,
			Time:     req.arrive,
			Queued:   r.queued,
			InFlight: r.inflight,
		})
	}

	r.refill(f)
	if len(f.queue) == 0 && f.credits >= req.cost {
		f.credits -= req.cost
		r.dispatch(req)
		return nil
	}
	f.queue = append(f.queue, req)
	r.queued++
	r.armRelease(f)
	return nil
}

func (r *Reservation) refill(f *resFlow) {
	now := r.eng.Now()
	f.credits += (now - f.last) * f.rate
	f.last = now
	// Credits do not accumulate beyond one second plus the head
	// request's cost (no long-horizon bursting), mirroring the
	// token-bucket shaping real reservations use.
	burst := f.rate
	if len(f.queue) > 0 && f.queue[0].cost > burst {
		burst = f.queue[0].cost
	}
	if f.credits > burst {
		f.credits = burst
	}
}

func (r *Reservation) armRelease(f *resFlow) {
	if f.release.Scheduled() || len(f.queue) == 0 {
		return
	}
	need := f.queue[0].cost - f.credits
	delay := 0.0
	if need > 0 {
		delay = need / f.rate
	}
	f.release = r.eng.Schedule(delay, func() {
		f.release = sim.Event{}
		r.refill(f)
		for len(f.queue) > 0 && f.credits >= f.queue[0].cost-creditEps(f.queue[0].cost) {
			req := f.queue[0]
			f.queue = f.queue[1:]
			f.credits -= req.cost
			if f.credits < 0 {
				f.credits = 0
			}
			r.queued--
			r.dispatch(req)
		}
		r.armRelease(f)
	})
}

// creditEps is the release slop guarding against float stagnation.
func creditEps(cost float64) float64 { return 1e-9 + cost*1e-9 }

func (r *Reservation) dispatch(req *Request) {
	r.inflight++
	req.dispatch = r.eng.Now()
	if r.probe != nil {
		r.probe.Observe(req, ProbeState{
			Event:    ProbeDispatch,
			Time:     req.dispatch,
			Queued:   r.queued,
			InFlight: r.inflight,
		})
	}
	r.dev.Submit(req.Class.OpKind(), req.Size, func(float64) {
		r.inflight--
		lat := r.eng.Now() - req.arrive
		r.acct.add(req)
		if r.probe != nil {
			r.probe.Observe(req, ProbeState{
				Event:    ProbeComplete,
				Time:     r.eng.Now(),
				Queued:   r.queued,
				InFlight: r.inflight,
				Latency:  lat,
			})
		}
		if r.observer != nil {
			r.observer(req, lat)
		}
		if req.OnDone != nil {
			req.OnDone(lat)
		}
	})
}
