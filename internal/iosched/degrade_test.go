package iosched

import (
	"math"
	"testing"

	"ibis/internal/sim"
	"ibis/internal/storage"
)

// These tests pin down the graceful-degradation contract the
// coordination plane relies on: SuspendCoordination cancels DSFQ tag
// debt (pure local fairness for the outage), ResumeCoordination
// re-snapshots remote totals instead of charging the outage's delta,
// and SetDelayClamp bounds the per-arrival delay a stale burst of
// totals can hand a flow.

func newDegradeSFQ(t *testing.T) (*sim.Engine, *SFQ, *storage.Device) {
	t.Helper()
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	return eng, NewSFQD(eng, dev, 1), dev
}

func TestSuspendCoordinationClampsQueuedTagDebt(t *testing.T) {
	_, s, dev := newDegradeSFQ(t)
	coord := &fakeCoord{other: map[AppID]float64{"A": 0}}
	s.SetCoordinator(coord)

	submit := func() *Request {
		r := &Request{App: "A", Shares: FixedWeight(1), Class: PersistentRead, Size: 1e6}
		s.Submit(r)
		return r
	}
	c := dev.Cost(PersistentRead.OpKind(), 1e6)

	r0 := submit() // dispatches (depth 1), snapshots other=0, vtime=0
	r1 := submit() // queued, startTag = c
	if r0.StartTag() != 0 || r1.StartTag() != c {
		t.Fatalf("setup tags: r0=%v r1=%v, want 0 and %v", r0.StartTag(), r1.StartTag(), c)
	}

	const remote = 1e9
	coord.other["A"] = remote
	r2 := submit() // queued with the full remote delta as tag debt
	if want := 2*c + remote; math.Abs(r2.StartTag()-want) > 1e-6 {
		t.Fatalf("pre-suspend r2 start tag = %v, want %v", r2.StartTag(), want)
	}

	s.SuspendCoordination()
	if !s.CoordinationSuspended() {
		t.Fatal("CoordinationSuspended() = false after suspend")
	}
	// Replay in arrival order from vtime=0: r1 clamps to 0, r2 stacks
	// fairly behind it at c. The 1e9 debt is gone.
	if r1.StartTag() != 0 {
		t.Errorf("post-suspend r1 start tag = %v, want 0", r1.StartTag())
	}
	if r2.StartTag() != c {
		t.Errorf("post-suspend r2 start tag = %v, want %v", r2.StartTag(), c)
	}
	if r2.FinishTag() != 2*c {
		t.Errorf("post-suspend r2 finish tag = %v, want %v", r2.FinishTag(), 2*c)
	}

	// Idempotent: a second suspend must not move tags again.
	s.SuspendCoordination()
	if r2.StartTag() != c {
		t.Errorf("second suspend moved r2 start tag to %v", r2.StartTag())
	}

	// While suspended the delay rule is off entirely: new arrivals are
	// tagged locally even though remote totals keep growing. (r0's
	// finish was clamped to vtime too, so the chain restarts from r1.)
	coord.other["A"] = 2 * remote
	r3 := submit()
	if want := r2.FinishTag(); math.Abs(r3.StartTag()-want) > 1e-6 {
		t.Errorf("suspended r3 start tag = %v, want %v (local-only)", r3.StartTag(), want)
	}
}

func TestResumeCoordinationReSnapshotsRemoteTotals(t *testing.T) {
	_, s, _ := newDegradeSFQ(t)
	coord := &fakeCoord{other: map[AppID]float64{"A": 0}}
	s.SetCoordinator(coord)

	submit := func() *Request {
		r := &Request{App: "A", Shares: FixedWeight(1), Class: PersistentRead, Size: 1e6}
		s.Submit(r)
		return r
	}
	submit() // snapshot other=0

	s.SuspendCoordination()
	coord.other["A"] = 7e8 // outage-accumulated remote service
	s.ResumeCoordination()
	if s.CoordinationSuspended() {
		t.Fatal("CoordinationSuspended() = true after resume")
	}

	// First post-recovery arrival re-snapshots: no delta charged (the
	// suspend also clamped the flow's finish chain to vtime=0).
	r1 := submit()
	if r1.StartTag() != 0 {
		t.Fatalf("post-resume r1 start tag = %v, want 0 (stale-total clamp)", r1.StartTag())
	}
	// The delay rule is back in force from the new snapshot.
	coord.other["A"] = 7e8 + 50
	r2 := submit()
	if want := r1.FinishTag() + 50; math.Abs(r2.StartTag()-want) > 1e-6 {
		t.Errorf("post-resume r2 start tag = %v, want %v (delay rule re-engaged)", r2.StartTag(), want)
	}

	// Resume without suspend is a no-op (must not wipe snapshots).
	s.ResumeCoordination()
	coord.other["A"] = 7e8 + 80
	r3 := submit()
	if want := r2.FinishTag() + 30; math.Abs(r3.StartTag()-want) > 1e-6 {
		t.Errorf("redundant resume reset snapshots: r3 start tag = %v, want %v", r3.StartTag(), want)
	}
}

func TestSetDelayClampCapsPerArrivalDelta(t *testing.T) {
	_, s, dev := newDegradeSFQ(t)
	coord := &fakeCoord{other: map[AppID]float64{"A": 0}}
	s.SetCoordinator(coord)
	s.SetDelayClamp(5)
	c := dev.Cost(PersistentRead.OpKind(), 1e6)

	submit := func() *Request {
		r := &Request{App: "A", Shares: FixedWeight(1), Class: PersistentRead, Size: 1e6}
		s.Submit(r)
		return r
	}
	submit() // snapshot other=0

	coord.other["A"] = 1000 // stale burst: way past the clamp
	r1 := submit()
	if want := c + 5; math.Abs(r1.StartTag()-want) > 1e-6 {
		t.Fatalf("clamped start tag = %v, want %v (delta capped at 5)", r1.StartTag(), want)
	}
	// The excess is forgiven, not deferred: the snapshot advanced to
	// the full total, so a small further delta charges only itself.
	coord.other["A"] = 1003
	r2 := submit()
	if want := r1.FinishTag() + 3; math.Abs(r2.StartTag()-want) > 1e-6 {
		t.Errorf("post-clamp start tag = %v, want %v (excess forgiven)", r2.StartTag(), want)
	}
}

func TestSuspendWithoutCoordinatorIsSafe(t *testing.T) {
	_, s, _ := newDegradeSFQ(t)
	s.SuspendCoordination()
	s.ResumeCoordination()
	r := &Request{App: "A", Shares: FixedWeight(1), Class: PersistentRead, Size: 1e6}
	s.Submit(r)
	if r.StartTag() != 0 {
		t.Errorf("start tag = %v, want 0", r.StartTag())
	}
}

// TestSuspendPreservesDispatchOrder verifies the replay re-heaps the
// queue: after clamping, requests still pop in start-tag order and the
// backlog drains under pure local fairness.
func TestSuspendPreservesDispatchOrder(t *testing.T) {
	eng, s, _ := newDegradeSFQ(t)
	coord := &fakeCoord{other: map[AppID]float64{"A": 0, "B": 0}}
	s.SetCoordinator(coord)

	var order []AppID
	submit := func(app AppID) {
		s.Submit(&Request{
			App: app, Shares: FixedWeight(1), Class: PersistentRead, Size: 1e6,
			OnDone: func(float64) { order = append(order, app) },
		})
	}
	submit("A") // dispatches; snapshots
	submit("B") // queued; snapshots
	// Hand A a huge delay, then interleave arrivals.
	coord.other["A"] = 1e9
	submit("A")
	submit("B")
	submit("A")

	s.SuspendCoordination()
	eng.Run()

	// With the debt cancelled the replayed tags alternate fairly; the
	// delayed A requests must not all be pushed to the back.
	want := []AppID{"A", "B", "A", "B", "A"}
	if len(order) != len(want) {
		t.Fatalf("completed %d requests, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order %v, want %v", order, want)
		}
	}
}
