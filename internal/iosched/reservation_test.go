package iosched

import (
	"math"
	"testing"

	"ibis/internal/sim"
	"ibis/internal/storage"
)

func newReservation(t *testing.T, rates map[AppID]float64, def float64) (*sim.Engine, *Reservation, *storage.Device) {
	t.Helper()
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s, err := NewReservation(eng, dev, rates, def)
	if err != nil {
		t.Fatalf("NewReservation: %v", err)
	}
	return eng, s, dev
}

func TestReservationPacesEachApp(t *testing.T) {
	eng, s, _ := newReservation(t, map[AppID]float64{"A": 20e6, "B": 10e6}, 0)
	var a, b float64
	backlog(eng, s, "A", 1, PersistentRead, 2e6, 4, 30, &a)
	backlog(eng, s, "B", 1, PersistentRead, 2e6, 4, 30, &b)
	eng.RunUntil(32)
	// Both apps should track their reserved rates, not the 100 MB/s
	// device. (Cost = size on the flat test device.)
	if rate := a / 30; math.Abs(rate-20e6)/20e6 > 0.2 {
		t.Errorf("A rate %.1f MB/s, want ≈20", rate/1e6)
	}
	if rate := b / 30; math.Abs(rate-10e6)/10e6 > 0.2 {
		t.Errorf("B rate %.1f MB/s, want ≈10", rate/1e6)
	}
}

func TestReservationStrictIsolation(t *testing.T) {
	// App A's service must be identical whether or not B floods the
	// scheduler — the definition of strict isolation.
	serve := func(withB bool) float64 {
		eng, s, _ := newReservation(t, map[AppID]float64{"A": 20e6, "B": 50e6}, 0)
		var a, b float64
		backlog(eng, s, "A", 1, PersistentRead, 2e6, 2, 30, &a)
		if withB {
			backlog(eng, s, "B", 1, PersistentWrite, 2e6, 16, 30, &b)
		}
		eng.RunUntil(32)
		return a
	}
	alone, contended := serve(false), serve(true)
	if math.Abs(alone-contended)/alone > 0.15 {
		t.Fatalf("A served %.1f MB alone vs %.1f MB contended; reservation leaked", alone/1e6, contended/1e6)
	}
}

func TestReservationNonWorkConserving(t *testing.T) {
	// Only A is active; the device idles even though B's reservation
	// is unused.
	eng, s, dev := newReservation(t, map[AppID]float64{"A": 10e6}, 0)
	var a float64
	backlog(eng, s, "A", 1, PersistentRead, 2e6, 4, 20, &a)
	eng.RunUntil(22)
	if rate := a / 20; rate > 12e6 {
		t.Fatalf("A got %.1f MB/s, above its 10 MB/s reservation (work conservation leaked)", rate/1e6)
	}
	// The 100 MB/s device is ~90% idle.
	if dev.BusyTime() > 6 {
		t.Fatalf("device busy %.1fs of 20s; should be mostly idle", dev.BusyTime())
	}
}

func TestReservationDefaultRate(t *testing.T) {
	eng, s, _ := newReservation(t, nil, 5e6)
	var a float64
	backlog(eng, s, "anyone", 1, PersistentRead, 1e6, 2, 10, &a)
	eng.RunUntil(12)
	if rate := a / 10; math.Abs(rate-5e6)/5e6 > 0.3 {
		t.Fatalf("default-rate app got %.1f MB/s, want ≈5", rate/1e6)
	}
}

func TestReservationUnknownAppRejected(t *testing.T) {
	_, s, _ := newReservation(t, map[AppID]float64{"A": 1e6}, 0)
	err := s.Submit(&Request{App: "ghost", Shares: FixedWeight(1), Class: PersistentRead, Size: 1e6})
	if err == nil {
		t.Fatal("unreserved app accepted with no default rate")
	}
	// A rejected request must leave no trace in the bookkeeping.
	if s.Queued() != 0 || s.InFlight() != 0 {
		t.Fatalf("rejected request left state: queued=%d inflight=%d", s.Queued(), s.InFlight())
	}
}

func TestReservationInvalidRateRejected(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	if _, err := NewReservation(eng, dev, map[AppID]float64{"A": 0}, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewReservation(eng, dev, nil, -1); err == nil {
		t.Fatal("negative default rate accepted")
	}
}

func TestReservationAccountingAndIntrospection(t *testing.T) {
	eng, s, _ := newReservation(t, map[AppID]float64{"B": 1e6, "A": 1e6}, 0)
	s.Submit(&Request{App: "A", Shares: FixedWeight(1), Class: PersistentRead, Size: 0.5e6})
	eng.Run()
	if got := s.Accounting().Service("A").Bytes; got != 0.5e6 {
		t.Fatalf("accounted %v bytes", got)
	}
	apps := s.Apps()
	if len(apps) != 2 || apps[0] != "A" || apps[1] != "B" {
		t.Fatalf("Apps = %v", apps)
	}
	if s.Name() != "reservation" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.Queued() != 0 || s.InFlight() != 0 {
		t.Fatal("leftovers")
	}
}

func TestReservationFIFOWithinApp(t *testing.T) {
	eng, s, _ := newReservation(t, map[AppID]float64{"A": 2e6}, 0)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Submit(&Request{
			App: "A", Shares: FixedWeight(1), Class: PersistentRead, Size: 1e6,
			OnDone: func(float64) { order = append(order, i) },
		})
	}
	eng.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("order %v, want FIFO", order)
		}
	}
}

func TestReservationObserver(t *testing.T) {
	eng, s, _ := newReservation(t, nil, 10e6)
	n := 0
	s.SetObserver(func(*Request, float64) { n++ })
	for i := 0; i < 3; i++ {
		s.Submit(&Request{App: "A", Shares: FixedWeight(1), Class: IntermediateRead, Size: 1e6})
	}
	eng.Run()
	if n != 3 {
		t.Fatalf("observer saw %d", n)
	}
}
