package iosched

import (
	"fmt"

	"ibis/internal/sim"
)

// ControllerConfig parameterizes the SFQ(D2) depth controller:
//
//	D(k+1) = D(k) + K · (Lref − L(k))
//
// where L(k) is the mean in-device latency observed over control period
// k. For devices with asymmetric read/write performance, Lref is the
// read/write-mix-weighted combination of per-direction references
// (Section 4 of the paper).
type ControllerConfig struct {
	// Period is the control interval in seconds. The paper uses 1 s.
	Period float64
	// Gain is the integral gain K, in depth units per second of latency
	// error. The paper quotes 10⁻⁶ for latencies counted in nanoseconds,
	// i.e. 1000 in depth-per-second terms; the effective value depends
	// on the device model, so it is calibrated per setup.
	Gain float64
	// ReadLref and WriteLref are the profiled reference latencies in
	// seconds (see storage.ProfileDevice). If WriteLref is zero,
	// ReadLref is used for both directions.
	ReadLref  float64
	WriteLref float64
	// MinDepth and MaxDepth clamp D. The paper bounds D in [1, 12].
	MinDepth int
	MaxDepth int
	// InitialDepth seeds D; defaults to MaxDepth (start permissive,
	// tighten under load).
	InitialDepth int
	// Trace, if non-nil, receives one record per control period —
	// exactly the data behind Figure 7.
	Trace func(TracePoint)
}

// TracePoint is one controller observation (Figure 7's series).
type TracePoint struct {
	Time     float64 // end of the control period
	Depth    int     // depth chosen for the next period
	DepthRaw float64 // unrounded controller state
	Latency  float64 // mean observed latency this period (0 if idle)
	Lref     float64 // reference used this period
	Samples  int     // completions observed this period
}

func (c *ControllerConfig) defaults() {
	if c.Period <= 0 {
		c.Period = 1
	}
	if c.Gain <= 0 {
		c.Gain = 120
	}
	if c.MinDepth <= 0 {
		c.MinDepth = 1
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.WriteLref <= 0 {
		c.WriteLref = c.ReadLref
	}
	if c.InitialDepth <= 0 {
		c.InitialDepth = c.MaxDepth
	}
}

func (c *ControllerConfig) validate() error {
	if c.ReadLref <= 0 {
		return fmt.Errorf("iosched: controller requires a positive reference latency (got %g)", c.ReadLref)
	}
	if c.MinDepth > c.MaxDepth {
		return fmt.Errorf("iosched: controller depth bounds inverted: [%d, %d]", c.MinDepth, c.MaxDepth)
	}
	return nil
}

// DepthController implements the SFQ(D2) integral feedback loop. It is
// driven by the simulation clock: one adjustment per control period.
type DepthController struct {
	cfg      ControllerConfig
	d        float64
	latSum   float64
	samples  int
	reads    int
	onChange func()
	periods  uint64
}

// newDepthController starts the periodic control loop on eng.
func newDepthController(eng *sim.Engine, cfg ControllerConfig, onChange func()) *DepthController {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	c := &DepthController{cfg: cfg, d: float64(cfg.InitialDepth), onChange: onChange}
	var tick func()
	tick = func() {
		c.step(eng.Now())
		eng.ScheduleDaemon(cfg.Period, tick)
	}
	eng.ScheduleDaemon(cfg.Period, tick)
	return c
}

// Depth returns the integer dispatch bound for the current period.
func (c *DepthController) Depth() int {
	d := int(c.d + 0.5)
	if d < c.cfg.MinDepth {
		d = c.cfg.MinDepth
	}
	if d > c.cfg.MaxDepth {
		d = c.cfg.MaxDepth
	}
	return d
}

// Raw returns the continuous controller state.
func (c *DepthController) Raw() float64 { return c.d }

// Periods returns how many control periods have elapsed.
func (c *DepthController) Periods() uint64 { return c.periods }

// SetTrace installs or replaces the per-period trace callback (the
// Figure 7 instrumentation).
func (c *DepthController) SetTrace(fn func(TracePoint)) { c.cfg.Trace = fn }

// Sample feeds one completed request's in-device latency to the
// controller. isRead tracks the read/write mix for the weighted
// reference.
func (c *DepthController) Sample(latency float64, isRead bool) {
	c.latSum += latency
	c.samples++
	if isRead {
		c.reads++
	}
}

// step closes the current control period and updates D.
func (c *DepthController) step(now float64) {
	c.periods++
	var lk, lref float64
	if c.samples > 0 {
		lk = c.latSum / float64(c.samples)
		readFrac := float64(c.reads) / float64(c.samples)
		lref = readFrac*c.cfg.ReadLref + (1-readFrac)*c.cfg.WriteLref
		c.d += c.cfg.Gain * (lref - lk)
		if c.d < float64(c.cfg.MinDepth) {
			c.d = float64(c.cfg.MinDepth)
		}
		if c.d > float64(c.cfg.MaxDepth) {
			c.d = float64(c.cfg.MaxDepth)
		}
	}
	// An idle period (no completions) leaves D unchanged: there is no
	// load signal to react to.
	if c.cfg.Trace != nil {
		c.cfg.Trace(TracePoint{
			Time:     now,
			Depth:    c.Depth(),
			DepthRaw: c.d,
			Latency:  lk,
			Lref:     lref,
			Samples:  c.samples,
		})
	}
	c.latSum, c.samples, c.reads = 0, 0, 0
	if c.onChange != nil {
		c.onChange()
	}
}
