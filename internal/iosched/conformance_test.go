package iosched_test

// Scheduler conformance suite: one table-driven harness exercised
// against every Scheduler implementation in the tree — FIFO, SFQ(D),
// SFQ(D2), the cgroups Weight and Throttle baselines, and the
// Reservation extreme. It pins the contract the rest of the system
// (broker, audit, trace, cluster wiring) relies on:
//
//   - accounting monotonicity: per-app Bytes/Cost/Requests never
//     decrease, and at quiescence they equal exactly what was submitted;
//   - Queued/InFlight bookkeeping balance: non-negative at every probe
//     event, zero at quiescence, and every accepted request is
//     eventually completed;
//   - probe event ordering: each request observes arrive → dispatch →
//     complete exactly once each, at non-decreasing virtual times.

import (
	"testing"

	"ibis/internal/cgroups"
	"ibis/internal/iosched"
	"ibis/internal/sim"
	"ibis/internal/storage"
)

func conformSpec() storage.Spec {
	return storage.Spec{
		Name: "flat", ReadBW: 100e6, WriteBW: 100e6,
		Curve: []float64{1}, CurveDecay: 1, MinCurve: 1,
	}
}

// probeSetter is satisfied by every scheduler in the tree.
type probeSetter interface {
	SetProbe(iosched.Probe)
}

// conformRecorder validates the probe stream online.
type conformRecorder struct {
	t     *testing.T
	name  string
	sched iosched.Scheduler

	lastTime float64
	stage    map[*iosched.Request]int // 1 arrived, 2 dispatched, 3 completed
	arrives  int
	counts   [3]int
	lastSvc  map[iosched.AppID]iosched.AppService
}

func (r *conformRecorder) Observe(req *iosched.Request, st iosched.ProbeState) {
	t := r.t
	if st.Time < r.lastTime {
		t.Fatalf("%s: probe time went backwards: %v after %v", r.name, st.Time, r.lastTime)
	}
	r.lastTime = st.Time
	if st.Queued < 0 || st.InFlight < 0 {
		t.Fatalf("%s: negative bookkeeping at %s: queued=%d inflight=%d",
			r.name, st.Event, st.Queued, st.InFlight)
	}
	want := map[iosched.ProbeEvent]int{
		iosched.ProbeArrive:   0,
		iosched.ProbeDispatch: 1,
		iosched.ProbeComplete: 2,
	}[st.Event]
	if got := r.stage[req]; got != want {
		t.Fatalf("%s: request %s/seq=%d got %s at stage %d", r.name, req.App, req.Seq(), st.Event, got)
	}
	r.stage[req] = want + 1
	r.counts[int(st.Event)]++

	if st.Event == iosched.ProbeComplete {
		// Accounting must only ever grow, for every app.
		for _, app := range r.sched.Accounting().Apps() {
			svc := r.sched.Accounting().Service(app)
			prev := r.lastSvc[app]
			if svc.Bytes < prev.Bytes || svc.Cost < prev.Cost || svc.Requests < prev.Requests {
				t.Fatalf("%s: accounting for %s went backwards: %+v after %+v", r.name, app, svc, prev)
			}
			r.lastSvc[app] = svc
		}
	}
}

// conformanceWorkload submits a deterministic multi-app, multi-class
// request mix in staggered batches and returns the per-app bytes and
// request counts that were accepted.
func conformanceWorkload(t *testing.T, eng *sim.Engine, s iosched.Scheduler, name string) (map[iosched.AppID]float64, map[iosched.AppID]uint64) {
	apps := []struct {
		id iosched.AppID
		w  float64
	}{{"A", 4}, {"B", 2}, {"C", 1}}
	classes := []iosched.Class{
		iosched.PersistentRead, iosched.IntermediateWrite,
		iosched.IntermediateRead, iosched.PersistentWrite,
	}
	bytes := make(map[iosched.AppID]float64)
	reqs := make(map[iosched.AppID]uint64)
	for batch := 0; batch < 6; batch++ {
		batch := batch
		eng.Schedule(float64(batch)*0.5, func() {
			for ai, app := range apps {
				for k := 0; k < 3; k++ {
					size := 1e5 * float64(1+(batch+ai+k)%7)
					req := &iosched.Request{
						App:    app.id,
						Shares: iosched.FixedWeight(app.w),
						Class:  classes[(batch+ai+k)%len(classes)],
						Size:   size,
					}
					if err := s.Submit(req); err != nil {
						t.Fatalf("%s: submit rejected: %v", name, err)
					}
					bytes[app.id] += size
					reqs[app.id]++
				}
			}
		})
	}
	return bytes, reqs
}

func TestSchedulerConformance(t *testing.T) {
	limits := map[iosched.AppID]float64{"B": 10e6}
	rates := map[iosched.AppID]float64{"A": 30e6, "B": 20e6, "C": 10e6}
	cases := []struct {
		name  string
		build func(eng *sim.Engine, dev *storage.Device) (iosched.Scheduler, error)
	}{
		{"fifo", func(eng *sim.Engine, dev *storage.Device) (iosched.Scheduler, error) {
			return iosched.NewFIFO(eng, dev), nil
		}},
		{"sfq(d)", func(eng *sim.Engine, dev *storage.Device) (iosched.Scheduler, error) {
			return iosched.NewSFQD(eng, dev, 4), nil
		}},
		{"sfq(d2)", func(eng *sim.Engine, dev *storage.Device) (iosched.Scheduler, error) {
			return iosched.NewSFQD2(eng, dev, iosched.ControllerConfig{ReadLref: 0.02}), nil
		}},
		{"cgroups-weight", func(eng *sim.Engine, dev *storage.Device) (iosched.Scheduler, error) {
			return cgroups.NewWeight(eng, dev, 4), nil
		}},
		{"cgroups-throttle", func(eng *sim.Engine, dev *storage.Device) (iosched.Scheduler, error) {
			return cgroups.NewThrottle(eng, dev, limits)
		}},
		{"reservation", func(eng *sim.Engine, dev *storage.Device) (iosched.Scheduler, error) {
			return iosched.NewReservation(eng, dev, rates, 5e6)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine()
			dev := storage.NewDevice(eng, "d", conformSpec())
			s, err := tc.build(eng, dev)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			rec := &conformRecorder{
				t: t, name: tc.name, sched: s,
				stage:   make(map[*iosched.Request]int),
				lastSvc: make(map[iosched.AppID]iosched.AppService),
			}
			s.(probeSetter).SetProbe(rec)

			wantBytes, wantReqs := conformanceWorkload(t, eng, s, tc.name)
			eng.Run()

			if s.Queued() != 0 || s.InFlight() != 0 {
				t.Fatalf("quiescent state leaked: queued=%d inflight=%d", s.Queued(), s.InFlight())
			}
			if rec.counts[0] != rec.counts[1] || rec.counts[1] != rec.counts[2] {
				t.Fatalf("probe stream unbalanced: arrive=%d dispatch=%d complete=%d",
					rec.counts[0], rec.counts[1], rec.counts[2])
			}
			for req, st := range rec.stage {
				if st != 3 {
					t.Fatalf("request %s/seq=%d stalled at stage %d", req.App, req.Seq(), st)
				}
			}
			for app, want := range wantBytes {
				svc := s.Accounting().Service(app)
				if svc.Bytes != want {
					t.Errorf("app %s accounted %g bytes, want %g", app, svc.Bytes, want)
				}
				if svc.Requests != wantReqs[app] {
					t.Errorf("app %s accounted %d requests, want %d", app, svc.Requests, wantReqs[app])
				}
				if svc.Cost <= 0 {
					t.Errorf("app %s cost %g, want positive", app, svc.Cost)
				}
				var byClass float64
				for _, b := range svc.ByClass {
					byClass += b
				}
				if byClass != want {
					t.Errorf("app %s per-class split sums to %g, want %g", app, byClass, want)
				}
			}
		})
	}
}
