package iosched

import (
	"math"
	"testing"

	"ibis/internal/sim"
	"ibis/internal/storage"
)

// fakeCoord is a scriptable Coordinator.
type fakeCoord struct {
	other map[AppID]float64
}

func (f *fakeCoord) OtherService(app AppID) float64 { return f.other[app] }

func TestDSFQFirstArrivalNotDelayed(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := NewSFQD(eng, dev, 1)
	coord := &fakeCoord{other: map[AppID]float64{"A": 1e9}}
	s.SetCoordinator(coord)
	// Even with huge other-node service already recorded, the first
	// local arrival only snapshots it (DSFQ's initialization rule).
	r := &Request{App: "A", Shares: FixedWeight(1), Class: PersistentRead, Size: 1e6}
	s.Submit(r)
	if r.StartTag() != 0 {
		t.Fatalf("first arrival start tag = %v, want 0 (no retroactive delay)", r.StartTag())
	}
	eng.Run()
}

func TestDSFQDelayProportionalToOtherService(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := NewSFQD(eng, dev, 1)
	coord := &fakeCoord{other: map[AppID]float64{"A": 0}}
	s.SetCoordinator(coord)

	r1 := &Request{App: "A", Shares: FixedWeight(2), Class: PersistentRead, Size: 1e6}
	s.Submit(r1) // snapshot other=0
	// The app then receives 50e6 cost units elsewhere.
	coord.other["A"] = 50e6
	r2 := &Request{App: "A", Shares: FixedWeight(2), Class: PersistentRead, Size: 1e6}
	s.Submit(r2)
	// S(r2) = F(r1) + delta/weight = (1e6/2) + 50e6/2.
	want := 1e6/2 + 50e6/2
	if math.Abs(r2.StartTag()-want) > 1 {
		t.Fatalf("delayed start tag = %v, want %v", r2.StartTag(), want)
	}
	eng.Run()
}

func TestDSFQNoDelayWhenOtherServiceUnchanged(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := NewSFQD(eng, dev, 1)
	coord := &fakeCoord{other: map[AppID]float64{"A": 7e6}}
	s.SetCoordinator(coord)
	r1 := &Request{App: "A", Shares: FixedWeight(1), Class: PersistentRead, Size: 1e6}
	r2 := &Request{App: "A", Shares: FixedWeight(1), Class: PersistentRead, Size: 1e6}
	s.Submit(r1)
	s.Submit(r2)
	if got, want := r2.StartTag(), r1.FinishTag(); math.Abs(got-want) > 1 {
		t.Fatalf("unchanged other-service delayed the flow: S=%v, want %v", got, want)
	}
	eng.Run()
}

func TestDSFQDecreasedOtherServiceIgnored(t *testing.T) {
	// Broker totals are cumulative; an apparent decrease (stale
	// response ordering) must not produce a negative delay.
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := NewSFQD(eng, dev, 1)
	coord := &fakeCoord{other: map[AppID]float64{"A": 10e6}}
	s.SetCoordinator(coord)
	r1 := &Request{App: "A", Shares: FixedWeight(1), Class: PersistentRead, Size: 1e6}
	s.Submit(r1)
	coord.other["A"] = 5e6 // stale, smaller
	r2 := &Request{App: "A", Shares: FixedWeight(1), Class: PersistentRead, Size: 1e6}
	s.Submit(r2)
	if r2.StartTag() < r1.FinishTag()-1 {
		t.Fatalf("stale decrease produced a negative delay: %v < %v", r2.StartTag(), r1.FinishTag())
	}
	eng.Run()
}

func TestDSFQDelayedFlowLosesLocalPriority(t *testing.T) {
	// Two backlogged flows, equal weights; flow A has received lots of
	// service elsewhere, so B should win most of this device.
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := NewSFQD(eng, dev, 1)
	coord := &fakeCoord{other: map[AppID]float64{}}
	s.SetCoordinator(coord)

	// Simulate A's other-node service growing continuously at the
	// device's own rate.
	eng.ScheduleDaemon(0.1, func() {})
	var tick func()
	tick = func() {
		coord.other["A"] += 10e6 // 100 MB/s elsewhere
		eng.ScheduleDaemon(0.1, tick)
	}
	eng.ScheduleDaemon(0.1, tick)

	var a, b float64
	backlog(eng, s, "A", 1, PersistentRead, 1e6, 4, 30, &a)
	backlog(eng, s, "B", 1, PersistentRead, 1e6, 4, 30, &b)
	eng.RunUntil(30)
	// With equal weights and A consuming a full device elsewhere, B
	// should get the large majority here (total-service fairness).
	if b < 3*a {
		t.Fatalf("B/A local service = %.2f, want ≫1 (A is delayed)", b/a)
	}
	// A must not starve completely (work conservation when B idles is
	// separate; here both are backlogged so A still trickles).
	if a == 0 {
		t.Fatal("delayed flow fully starved")
	}
}

func TestSFQWithoutCoordinatorIgnoresDelay(t *testing.T) {
	eng := sim.NewEngine()
	dev := storage.NewDevice(eng, "d", flatSpec())
	s := NewSFQD(eng, dev, 1)
	r1 := &Request{App: "A", Shares: FixedWeight(1), Class: PersistentRead, Size: 1e6}
	r2 := &Request{App: "A", Shares: FixedWeight(1), Class: PersistentRead, Size: 1e6}
	s.Submit(r1)
	s.Submit(r2)
	if got, want := r2.StartTag(), r1.FinishTag(); math.Abs(got-want) > 1 {
		t.Fatalf("no-sync SFQ produced a delay: %v vs %v", got, want)
	}
	eng.Run()
}
