// Federated coordination assembly: the broker plane split across
// partition shards.
//
// Topology. With Federation.Partitions = P (> 1, sharded mode only)
// the fabric grows P extra shards beyond the coordinator and the
// datanodes: shard 0 stays the coordinator and now hosts the root
// aggregator, shard 1+i is datanode i as before, and shard
// 1+Nodes+p is partition broker p. Node i's coordination clients talk
// to partition p(i) = i·P/Nodes — a contiguous slice assignment, so
// partition membership is a pure function of the node index. Client
// exchanges cross one fabric hop to the partition shard (not the
// coordinator), which is what finally moves the per-period
// O(nodes × apps) exchange work off the serial coordinator shard and
// splits it across workers; only the delta-compressed partition↔root
// syncs — O(changed entries), a few bytes each — still land on
// shard 0.
//
// Sync cadence. Each partition shard runs a daemon tick every
// Federation.AggregationPeriod: it uplinks the partition's per-app
// service quanta to the root, the root folds them and replies with the
// changed global tenant quanta, one lookahead per leg. Client
// responses merge fresh local totals with that root view, so the extra
// staleness a client can observe is bounded by roughly two aggregation
// periods plus the round trip — the bound the audit's share-federated
// regime enforces. A partition whose leader the fault schedule has
// killed answers ErrUnavailable (clients degrade to local SFQ(D) and
// recover, as under a centralized outage) and resyncs by snapshot
// after the outage.
package cluster

import (
	"fmt"

	"ibis/internal/broker"
	"ibis/internal/faults"
	"ibis/internal/iosched"
	"ibis/internal/sim"
)

// Federation configures the federated broker plane. The zero value
// disables it (centralized broker).
type Federation struct {
	// Partitions is the partition broker count; ≤ 1 keeps the
	// centralized broker. Requires sharded assembly and Coordinate.
	Partitions int
	// AggregationPeriod is the partition↔root sync period in seconds
	// (default: the coordination period).
	AggregationPeriod float64
	// StalenessK bounds tolerated root-view staleness: after K
	// aggregation periods without an applied downlink a partition fails
	// client exchanges, degrading its schedulers to local SFQ(D) rather
	// than running the delay rule on arbitrarily stale totals
	// (default 4).
	StalenessK int
}

func (f *Federation) defaults(coordPeriod float64) {
	if f.AggregationPeriod <= 0 {
		f.AggregationPeriod = coordPeriod
	}
	if f.StalenessK <= 0 {
		f.StalenessK = 4
	}
}

// Enabled reports whether the config asks for a federated plane.
func (f Federation) Enabled() bool { return f.Partitions > 1 }

// Staleness returns the extra coordination staleness the hierarchy
// introduces — the value the audit's share-federated regime adds to
// its bound: up to one aggregation period of uplink age plus one of
// downlink age.
func (f Federation) Staleness() float64 {
	if !f.Enabled() {
		return 0
	}
	return 2 * f.AggregationPeriod
}

// fedPlane is the assembled federation: the root on the coordinator
// shard and one Partition per partition shard.
type fedPlane struct {
	cfg   Federation
	root  *broker.Aggregator
	parts []*broker.Partition
	// shards[p] owns partition p; rootShard is the coordinator.
	shards    []*sim.Shard
	rootShard *sim.Shard
}

// partOf maps a node index to its partition: contiguous slices, the
// same discipline the trace/audit merge planes use for determinism.
func (f *fedPlane) partOf(node, nodes int) int {
	return node * len(f.parts) / nodes
}

// buildFederation assembles the plane and arms the per-partition sync
// daemons. Called from assemble with the fabric already sized for the
// partition shards.
func (c *Cluster) buildFederation(fab *sim.Fabric, cfg Config) error {
	fed := cfg.Federation
	if fab == nil {
		return fmt.Errorf("cluster: federation requires sharded assembly")
	}
	if fed.Partitions > cfg.Nodes {
		return fmt.Errorf("cluster: %d partitions exceed %d nodes", fed.Partitions, cfg.Nodes)
	}
	plane := &fedPlane{
		cfg:       fed,
		root:      broker.NewAggregator(c.shares),
		rootShard: fab.Shard(0),
	}
	for p := 0; p < fed.Partitions; p++ {
		part := broker.NewPartition(p, c.shares, float64(fed.StalenessK)*fed.AggregationPeriod)
		if inj := cfg.Faults; inj != nil {
			pid := p
			part.SetDownOracle(func(now float64) bool { return inj.LeaderDown(pid, now) })
		}
		ps := fab.Shard(1 + cfg.Nodes + p)
		plane.parts = append(plane.parts, part)
		plane.shards = append(plane.shards, ps)
		c.armPartitionSync(plane, p)
	}
	c.fed = plane
	return nil
}

// armPartitionSync schedules partition p's periodic root sync on its
// own shard engine: uplink to the coordinator shard, fold, downlink
// reply — each leg one fabric hop. Daemon events: coordination must
// not keep the simulation alive.
func (c *Cluster) armPartitionSync(plane *fedPlane, p int) {
	part := plane.parts[p]
	ps := plane.shards[p]
	eng := ps.Engine()
	rootShard := plane.rootShard
	psID := ps.ID()
	var tick func()
	tick = func() {
		if msg, _, ok := part.BuildUplink(eng.Now()); ok {
			ps.PostDaemon(rootShard.ID(), 0, func() {
				down, err := plane.root.HandleUplink(p, msg)
				if err != nil {
					return // sender detects the missed ack and snapshots
				}
				rootShard.PostDaemon(psID, 0, func() {
					_ = part.ApplyDownlink(down, eng.Now())
				})
			})
		}
		eng.ScheduleDaemon(plane.cfg.AggregationPeriod, tick)
	}
	eng.ScheduleDaemon(plane.cfg.AggregationPeriod, tick)
}

// FederationRoot returns the root aggregator, or nil when the plane is
// centralized.
func (c *Cluster) FederationRoot() *broker.Aggregator {
	if c.fed == nil {
		return nil
	}
	return c.fed.root
}

// Partitions returns the partition brokers in partition order (empty
// when centralized).
func (c *Cluster) Partitions() []*broker.Partition {
	if c.fed == nil {
		return nil
	}
	return c.fed.parts
}

// PartitionOf returns the partition index owning node i's coordination
// clients (-1 when centralized).
func (c *Cluster) PartitionOf(i int) int {
	if c.fed == nil {
		return -1
	}
	return c.fed.partOf(i, c.cfg.Nodes)
}

// FederationStats returns the root's federation-plane traffic counters
// (zero when centralized).
func (c *Cluster) FederationStats() broker.FedStats {
	if c.fed == nil {
		return broker.FedStats{}
	}
	return c.fed.root.Stats()
}

// CentralizedBaselineBytes returns the wire volume the centralized
// full-vector broker would have shipped for the same client exchange
// traffic: the partition brokers serve identical report/response
// rounds, so the sum of their approximate exchange bytes is the
// apples-to-apples baseline the federation plane's measured bytes are
// gated against.
func (c *Cluster) CentralizedBaselineBytes() uint64 {
	var total uint64
	if c.fed != nil {
		for _, p := range c.fed.parts {
			total += p.Broker().Stats().BytesApprox()
		}
	} else if c.Broker != nil {
		total = c.Broker.Stats().BytesApprox()
	}
	return total
}

// fedTransport carries one coordination client's traffic to its
// partition's shard — the federated analog of shardedTransport, with
// the same per-client fate counter discipline. Leader outages surface
// as ErrUnavailable from the partition itself.
type fedTransport struct {
	part   *broker.Partition
	inj    *faults.Injector // nil = reliable
	shard  *sim.Shard       // the client's node shard
	pshard *sim.Shard       // the partition broker's shard
	seq    uint64           // per-client fate counter, advanced on the partition shard
}

var _ broker.Transport = (*fedTransport)(nil)
var _ broker.AsyncTransport = (*fedTransport)(nil)

// ExchangeAsync implements broker.AsyncTransport.
func (t *fedTransport) ExchangeAsync(id string, vec map[iosched.AppID]float64, done func(broker.Response, error)) {
	src := t.shard.ID()
	t.shard.PostDaemon(t.pshard.ID(), 0, func() {
		now := t.pshard.Engine().Now()
		var fate faults.MsgFate
		if t.inj != nil {
			fate = t.inj.Fate(id, t.seq, now)
			t.seq++
		}
		if fate.Unavailable {
			t.pshard.PostDaemon(src, 0, func() { done(broker.Response{}, broker.ErrUnavailable) })
			return
		}
		if fate.ReqDrop {
			return // lost in flight; the client's timeout covers it
		}
		resp, err := t.part.Exchange(id, vec, now)
		if err != nil {
			t.pshard.PostDaemon(src, 0, func() { done(broker.Response{}, err) })
			return
		}
		if fate.RespDrop {
			return // report applied, response lost
		}
		t.pshard.PostDaemon(src, fate.Delay, func() { done(resp, nil) })
	})
}

// RegisterAsync implements broker.AsyncTransport.
func (t *fedTransport) RegisterAsync(id string, done func(error)) {
	src := t.shard.ID()
	t.shard.PostDaemon(t.pshard.ID(), 0, func() {
		now := t.pshard.Engine().Now()
		var fate faults.MsgFate
		if t.inj != nil {
			fate = t.inj.Fate(id, t.seq, now)
			t.seq++
		}
		if fate.Unavailable {
			t.pshard.PostDaemon(src, 0, func() { done(broker.ErrUnavailable) })
			return
		}
		if fate.ReqDrop {
			return
		}
		err := t.part.Register(id, now)
		if err != nil {
			t.pshard.PostDaemon(src, 0, func() { done(err) })
			return
		}
		if fate.RespDrop {
			return
		}
		t.pshard.PostDaemon(src, fate.Delay, func() { done(nil) })
	})
}

// Exchange implements broker.Transport (type only — never called).
func (t *fedTransport) Exchange(string, map[iosched.AppID]float64) (broker.Response, float64, error) {
	panic("cluster: federated transport is async-only")
}

// Register implements broker.Transport (type only — never called).
func (t *fedTransport) Register(string) (float64, error) {
	panic("cluster: federated transport is async-only")
}

// Unregister implements broker.Transport (out-of-band death
// detection, as in the sharded transport).
func (t *fedTransport) Unregister(id string) {
	t.shard.PostDaemon(t.pshard.ID(), 0, func() { t.part.Unregister(id) })
}
