package cluster

import (
	"strings"
	"testing"

	"ibis/internal/iosched"
	"ibis/internal/sim"
	"ibis/internal/storage"
)

func newCluster(t *testing.T, cfg Config) (*sim.Engine, *Cluster) {
	t.Helper()
	eng := sim.NewEngine()
	c, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

func TestDefaultsMatchPaperTestbed(t *testing.T) {
	_, c := newCluster(t, Config{})
	cfg := c.Config()
	if cfg.Nodes != 8 || cfg.CoresPerNode != 12 || cfg.MemGBPerNode != 24 {
		t.Fatalf("defaults = %d nodes × %d cores × %g GB", cfg.Nodes, cfg.CoresPerNode, cfg.MemGBPerNode)
	}
	if c.TotalCores() != 96 {
		t.Fatalf("total cores = %d, want 96", c.TotalCores())
	}
	if len(c.Nodes) != 8 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
}

func TestPolicyWiring(t *testing.T) {
	cases := []struct {
		policy    Policy
		hdfsName  string
		localName string
	}{
		{Native, "native", "native"},
		{SFQD, "sfq(d=4)", "sfq(d=4)"},
		{SFQD2, "sfq(d2)", "sfq(d2)"},
		{CGWeight, "native", "cgroups-weight"},
		{CGThrottle, "native", "cgroups-throttle"},
	}
	for _, cse := range cases {
		t.Run(cse.policy.String(), func(t *testing.T) {
			_, c := newCluster(t, Config{Nodes: 2, Policy: cse.policy})
			n := c.Nodes[0]
			if got := n.HDFSSched.Name(); got != cse.hdfsName {
				t.Errorf("HDFS scheduler = %q, want %q", got, cse.hdfsName)
			}
			if got := n.LocalSched.Name(); got != cse.localName {
				t.Errorf("local scheduler = %q, want %q", got, cse.localName)
			}
		})
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range []Policy{Native, SFQD, SFQD2, CGWeight, CGThrottle} {
		if p.String() == "" || strings.HasPrefix(p.String(), "Policy(") {
			t.Errorf("policy %d renders as %q", int(p), p.String())
		}
	}
	if Policy(99).String() != "Policy(99)" {
		t.Error("unknown policy should render with its number")
	}
}

func TestSubmitIORouting(t *testing.T) {
	eng, c := newCluster(t, Config{Nodes: 1, Policy: Native})
	n := c.Nodes[0]
	n.SubmitIO(&iosched.Request{App: "A", Shares: iosched.FixedWeight(1), Class: iosched.PersistentRead, Size: 1e6})
	n.SubmitIO(&iosched.Request{App: "A", Shares: iosched.FixedWeight(1), Class: iosched.IntermediateWrite, Size: 2e6})
	eng.Run()
	if got := n.HDFS.Stats().ReadBytes; got != 1e6 {
		t.Fatalf("HDFS device read %v bytes, want 1e6", got)
	}
	if got := n.Local.Stats().WriteBytes; got != 2e6 {
		t.Fatalf("local device wrote %v bytes, want 2e6", got)
	}
}

func TestSendTransfersThroughNICs(t *testing.T) {
	eng, c := newCluster(t, Config{Nodes: 2, NICBandwidth: 100e6})
	done := -1.0
	c.Nodes[0].Send(c.Nodes[1], 50e6, func() { done = eng.Now() })
	eng.Run()
	// 50 MB through 100 MB/s out then 100 MB/s in: 0.5s + 0.5s.
	if done < 0.9 || done > 1.1 {
		t.Fatalf("transfer completed at %v, want ≈1.0s", done)
	}
	if c.Nodes[0].NICOutBusy() == 0 || c.Nodes[1].NICInBusy() == 0 {
		t.Fatal("NIC busy counters empty")
	}
}

func TestSendZeroBytes(t *testing.T) {
	eng, c := newCluster(t, Config{Nodes: 2})
	fired := false
	c.Nodes[0].Send(c.Nodes[1], 0, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("zero-byte send never completed")
	}
}

func TestNICContention(t *testing.T) {
	eng, c := newCluster(t, Config{Nodes: 3, NICBandwidth: 100e6})
	var t1, t2 float64
	// Two concurrent sends share node 0's egress NIC.
	c.Nodes[0].Send(c.Nodes[1], 50e6, func() { t1 = eng.Now() })
	c.Nodes[0].Send(c.Nodes[2], 50e6, func() { t2 = eng.Now() })
	eng.Run()
	// Shared egress: each gets 50 MB/s for the first leg (1s), then
	// dedicated ingress 0.5s ⇒ ≈1.5s.
	if t1 < 1.2 || t2 < 1.2 {
		t.Fatalf("concurrent sends finished at %v/%v; egress sharing missing", t1, t2)
	}
}

func TestCoordinationCreatesBroker(t *testing.T) {
	_, c := newCluster(t, Config{Nodes: 2, Policy: SFQD, Coordinate: true})
	if c.Broker == nil {
		t.Fatal("Coordinate=true but no broker")
	}
	_, c2 := newCluster(t, Config{Nodes: 2, Policy: SFQD})
	if c2.Broker != nil {
		t.Fatal("Coordinate=false but broker present")
	}
}

func TestCoordinatedSchedulersReport(t *testing.T) {
	eng, c := newCluster(t, Config{Nodes: 2, Policy: SFQD, Coordinate: true, CoordinationPeriod: 0.5})
	c.Nodes[0].SubmitIO(&iosched.Request{App: "A", Shares: iosched.FixedWeight(1), Class: iosched.PersistentRead, Size: 10e6})
	eng.Schedule(3, func() {}) // keep alive for a few exchanges
	eng.Run()
	if c.Broker.Total("A") <= 0 {
		t.Fatal("broker never learned about app A's service")
	}
}

func TestSFQD2ControllerFilledFromProfile(t *testing.T) {
	_, c := newCluster(t, Config{Nodes: 1, Policy: SFQD2})
	sfq, ok := c.Nodes[0].HDFSSched.(*iosched.SFQ)
	if !ok {
		t.Fatal("SFQD2 policy did not produce an SFQ scheduler")
	}
	if sfq.Controller() == nil {
		t.Fatal("no controller attached")
	}
}

func TestIOObserverSeesAllTraffic(t *testing.T) {
	eng, c := newCluster(t, Config{Nodes: 2, Policy: SFQD})
	var events int
	var nodesSeen = map[int]bool{}
	c.SetIOObserver(func(node int, req *iosched.Request, lat float64) {
		events++
		nodesSeen[node] = true
		if lat < 0 {
			t.Errorf("negative latency %v", lat)
		}
	})
	c.Nodes[0].SubmitIO(&iosched.Request{App: "A", Shares: iosched.FixedWeight(1), Class: iosched.PersistentRead, Size: 1e6})
	c.Nodes[1].SubmitIO(&iosched.Request{App: "A", Shares: iosched.FixedWeight(1), Class: iosched.IntermediateWrite, Size: 1e6})
	eng.Run()
	if events != 2 {
		t.Fatalf("observer saw %d events, want 2", events)
	}
	if !nodesSeen[0] || !nodesSeen[1] {
		t.Fatalf("nodes seen: %v", nodesSeen)
	}
}

func TestNodeResourceBookkeeping(t *testing.T) {
	_, c := newCluster(t, Config{Nodes: 1})
	n := c.Nodes[0]
	if n.FreeCores() != 12 || n.FreeMemGB() != 24 {
		t.Fatalf("fresh node: %d cores, %g GB", n.FreeCores(), n.FreeMemGB())
	}
	n.UsedCores = 5
	n.UsedMemGB = 10
	if n.FreeCores() != 7 || n.FreeMemGB() != 14 {
		t.Fatalf("after alloc: %d cores, %g GB", n.FreeCores(), n.FreeMemGB())
	}
}

func TestProfileForCaches(t *testing.T) {
	spec := storage.HDDSpec()
	p1, err := ProfileFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ProfileFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p1.ReadLref != p2.ReadLref {
		t.Fatal("cache returned different profile")
	}
}

func TestSSDClusterBuilds(t *testing.T) {
	_, c := newCluster(t, Config{
		Nodes:     2,
		Policy:    SFQD2,
		HDFSDisk:  storage.SSDSpec(),
		LocalDisk: storage.SSDSpec(),
	})
	if c.Nodes[0].HDFS.Spec().Name != "ssd" {
		t.Fatal("SSD spec not applied")
	}
}
