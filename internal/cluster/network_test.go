package cluster

import (
	"math"
	"testing"

	"ibis/internal/iosched"
)

func TestReservePolicyWiring(t *testing.T) {
	_, c := newCluster(t, Config{
		Nodes:  1,
		Policy: Reserve,
		ReservationRates: map[iosched.AppID]float64{
			"A": 10e6,
		},
		ReservationDefault: 5e6,
	})
	if got := c.Nodes[0].HDFSSched.Name(); got != "reservation" {
		t.Fatalf("HDFS scheduler = %q", got)
	}
	if got := c.Nodes[0].LocalSched.Name(); got != "reservation" {
		t.Fatalf("local scheduler = %q", got)
	}
	if Reserve.String() != "Reservation" {
		t.Fatalf("Policy string = %q", Reserve.String())
	}
}

func TestReservePolicyPacesIO(t *testing.T) {
	eng, c := newCluster(t, Config{
		Nodes:            1,
		Policy:           Reserve,
		ReservationRates: map[iosched.AppID]float64{"A": 10e6},
	})
	var served float64
	n := c.Nodes[0]
	var issue func()
	issue = func() {
		n.SubmitIO(&iosched.Request{
			App: "A", Shares: iosched.FixedWeight(1), Class: iosched.PersistentRead, Size: 2e6,
			OnDone: func(float64) {
				served += 2e6
				if eng.Now() < 20 {
					issue()
				}
			},
		})
	}
	issue()
	eng.RunUntil(22)
	// Cost includes per-op overhead, so the byte rate lands slightly
	// below the 10 MB/s cost-unit reservation.
	if rate := served / 20; rate > 11e6 || rate < 5e6 {
		t.Fatalf("reserved app rate %.1f MB/s, want ≈9-10", rate/1e6)
	}
}

func TestSendTaggedWithoutNetSchedEqualsSend(t *testing.T) {
	eng, c := newCluster(t, Config{Nodes: 2, NICBandwidth: 100e6})
	var t1, t2 float64
	c.Nodes[0].Send(c.Nodes[1], 50e6, func() { t1 = eng.Now() })
	eng.Run()

	eng2, c2 := newCluster(t, Config{Nodes: 2, NICBandwidth: 100e6})
	c2.Nodes[0].SendTagged(c2.Nodes[1], "A", 50e6, func() { t2 = eng2.Now() })
	eng2.Run()
	if math.Abs(t1-t2) > 1e-9 {
		t.Fatalf("SendTagged without NetSched diverged: %v vs %v", t1, t2)
	}
}

func TestNetworkSchedulerWeightsTransfers(t *testing.T) {
	eng, c := newCluster(t, Config{
		Nodes:           2,
		NICBandwidth:    100e6,
		ScheduleNetwork: true,
		NetworkDepth:    1,
	})
	if c.Nodes[0].NetSched == nil {
		t.Fatal("NetSched missing with ScheduleNetwork=true")
	}
	src, dst := c.Nodes[0], c.Nodes[1]
	var hi, lo float64
	keep := func(app iosched.AppID, w float64, served *float64) {
		// Weights now come from the share tree, not the call site.
		if err := c.Shares().SetAppWeight(app, w); err != nil {
			t.Fatalf("SetAppWeight: %v", err)
		}
		var issue func()
		issue = func() {
			src.SendTagged(dst, app, 2e6, func() {
				*served += 2e6
				if eng.Now() < 20 {
					issue()
				}
			})
		}
		for i := 0; i < 4; i++ {
			issue()
		}
	}
	keep("hi", 8, &hi)
	keep("lo", 1, &lo)
	eng.RunUntil(20)
	if ratio := hi / lo; math.Abs(ratio-8)/8 > 0.25 {
		t.Fatalf("NIC service ratio %.2f, want ≈8 (weighted fair)", ratio)
	}
}

func TestNetworkSchedulerOffByDefault(t *testing.T) {
	_, c := newCluster(t, Config{Nodes: 1})
	if c.Nodes[0].NetSched != nil {
		t.Fatal("NetSched present without ScheduleNetwork")
	}
}

func TestZeroByteSendTagged(t *testing.T) {
	eng, c := newCluster(t, Config{Nodes: 2, ScheduleNetwork: true})
	fired := false
	c.Nodes[0].SendTagged(c.Nodes[1], "A", 0, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("zero-byte tagged send never completed")
	}
}
