// Hollow datanodes: the kubemark/clusterloader2 idea applied to the
// simulated cluster. A hollow node keeps only what the scale harness
// measures — one HDFS device, its interposed I/O scheduler, and (under
// coordination) its broker client — and drops everything else: the
// local intermediate device, both NIC processor-sharing resources, and
// the optional network scheduler. Per-node state shrinks to a few
// hundred bytes plus the scheduler's flow table, so thousands of nodes
// with millions of requests in flight fit one process.
//
// What a hollow cluster validates: scheduler tag arithmetic, dispatch
// and fairness at scale, broker coordination traffic and fault
// handling, fabric window scheduling under skew, and the memory/
// throughput envelope of the per-request structures. What it does not
// validate: anything involving the local device, shuffle transfers, or
// NIC contention — those paths are simply absent (SubmitIO rejects
// non-persistent classes, Send panics on the nil NIC).
package cluster

import "ibis/internal/sim"

// NewHollow assembles a hollow cluster on one engine: cfg.Hollow is
// forced, everything else follows New.
func NewHollow(eng *sim.Engine, cfg Config) (*Cluster, error) {
	cfg.Hollow = true
	return New(eng, cfg)
}

// NewHollowSharded assembles a hollow cluster across a fresh fabric of
// cfg.Nodes+1 shards (shard 0 the coordinator, shard 1+i datanode i),
// exactly like NewSharded but with hollow nodes.
func NewHollowSharded(cfg Config, lookahead float64, fo sim.FabricOptions) (*Cluster, error) {
	cfg.Hollow = true
	return NewSharded(cfg, lookahead, fo)
}
