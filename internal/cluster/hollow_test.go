package cluster

import (
	"testing"

	"ibis/internal/iosched"
	"ibis/internal/sim"
	"ibis/internal/storage"
)

func hollowSpec() storage.Spec {
	return storage.Spec{
		Name:          "flat",
		ReadBW:        100e6,
		WriteBW:       100e6,
		Curve:         []float64{1},
		CurveDecay:    1,
		MinCurve:      1,
		PerOpOverhead: 0,
	}
}

func TestHollowNodeShape(t *testing.T) {
	eng := sim.NewEngine()
	c, err := NewHollow(eng, Config{
		Nodes:    4,
		HDFSDisk: hollowSpec(),
		Policy:   SFQD,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		if n.HDFS == nil || n.HDFSSched == nil {
			t.Fatalf("node %d missing HDFS device or scheduler", n.Index)
		}
		if n.Local != nil || n.LocalSched != nil || n.NetSched != nil {
			t.Fatalf("node %d carries non-hollow state", n.Index)
		}
		if n.nicOut != nil || n.nicIn != nil {
			t.Fatalf("node %d has NICs", n.Index)
		}
	}
}

func TestHollowSubmitIO(t *testing.T) {
	eng := sim.NewEngine()
	c, err := NewHollow(eng, Config{Nodes: 1, HDFSDisk: hollowSpec(), Policy: SFQD})
	if err != nil {
		t.Fatal(err)
	}
	n := c.Nodes[0]
	done := 0
	req := &iosched.Request{
		App:    "a",
		Class:  iosched.PersistentRead,
		Size:   1e6,
		OnDone: func(float64) { done++ },
	}
	if err := n.SubmitIO(req); err != nil {
		t.Fatalf("persistent submit rejected: %v", err)
	}
	// Non-persistent classes have no device on a hollow node.
	bad := &iosched.Request{App: "a", Class: iosched.IntermediateWrite, Size: 1e6}
	if err := n.SubmitIO(bad); err == nil {
		t.Fatal("intermediate submit on a hollow node did not error")
	}
	eng.Run()
	if done != 1 {
		t.Fatalf("done = %d, want 1", done)
	}
}

func TestHollowShardedCoordinated(t *testing.T) {
	c, err := NewHollowSharded(Config{
		Nodes:      3,
		HDFSDisk:   hollowSpec(),
		Policy:     SFQD,
		Coordinate: true,
	}, 0, sim.FabricOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One coordination client per node (hdfs only), in node order.
	refs := c.Clients()
	if len(refs) != 3 {
		t.Fatalf("clients = %d, want 3 (one per hollow node)", len(refs))
	}
	for i, ref := range refs {
		if ref.Node != i || ref.Dev != "hdfs" {
			t.Fatalf("client %d = (node %d, %q), want (node %d, hdfs)", i, ref.Node, ref.Dev, i)
		}
	}
	// Instrument must visit exactly the hdfs scheduler of each node.
	visited := map[string]bool{}
	c.Instrument(func(node int, dev string, s iosched.Scheduler) iosched.Probe {
		visited[dev] = true
		return nil
	})
	if len(visited) != 1 || !visited["hdfs"] {
		t.Fatalf("instrumented devices = %v, want only hdfs", visited)
	}
	done := 0
	for i, n := range c.Nodes {
		n.SubmitIO(&iosched.Request{
			App:    iosched.AppID("app" + string(rune('A'+i))),
			Class:  iosched.PersistentRead,
			Size:   1e6,
			OnDone: func(float64) { done++ },
		})
	}
	c.Fabric().Run()
	if done != 3 {
		t.Fatalf("done = %d, want 3", done)
	}
}
