// Package cluster assembles the simulated big-data cluster: datanodes
// with two storage devices each (one for HDFS data, one for
// intermediate data, as in the paper's testbed), gigabit NICs, CPU
// slots and memory, plus the per-device interposed I/O schedulers wired
// according to the chosen policy and, optionally, the Scheduling Broker
// for distributed coordination.
package cluster

import (
	"fmt"
	"sync"

	"ibis/internal/broker"
	"ibis/internal/cgroups"
	"ibis/internal/faults"
	"ibis/internal/iosched"
	"ibis/internal/metrics"
	"ibis/internal/shares"
	"ibis/internal/sim"
	"ibis/internal/storage"
)

// Policy selects the I/O scheduling configuration of every datanode.
type Policy int

const (
	// Native is stock Hadoop/YARN: no I/O management at all.
	Native Policy = iota
	// SFQD interposes a classic SFQ(D) scheduler with a static depth on
	// both devices.
	SFQD
	// SFQD2 interposes the paper's SFQ(D2) adaptive-depth scheduler on
	// both devices.
	SFQD2
	// CGWeight models YARN extended with cgroups proportional weights:
	// intermediate I/O is weight-scheduled, HDFS I/O is uncontrolled.
	CGWeight
	// CGThrottle models cgroups bandwidth caps on intermediate I/O;
	// HDFS I/O is uncontrolled.
	CGThrottle
	// Reserve is the non-work-conserving strict-partitioning extreme
	// discussed in the paper's Section 9: every app is paced at its
	// reserved bandwidth on every device, isolation is absolute, and
	// unused reservations are wasted.
	Reserve
)

// String names the policy as the paper's figures label it.
func (p Policy) String() string {
	switch p {
	case Native:
		return "Native"
	case SFQD:
		return "SFQ(D)"
	case SFQD2:
		return "SFQ(D2)"
	case CGWeight:
		return "CG(weight)"
	case CGThrottle:
		return "CG(throttle)"
	case Reserve:
		return "Reservation"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config describes the cluster. The zero value is completed by
// defaults() to the paper's testbed shape: 8 worker datanodes, 12 cores
// and 24 GB of task memory each, two HDDs, gigabit Ethernet.
type Config struct {
	// Nodes is the number of datanodes (the paper uses 8 workers).
	Nodes int
	// CoresPerNode is the CPU slot count per node (2 × 6 cores).
	CoresPerNode int
	// MemGBPerNode is task memory per node (192 GB total / 8).
	MemGBPerNode float64
	// HDFSDisk and LocalDisk are the device models for persistent and
	// intermediate storage respectively.
	HDFSDisk  storage.Spec
	LocalDisk storage.Spec
	// NICBandwidth is the per-direction NIC rate in bytes/second
	// (gigabit Ethernet ≈ 117 MB/s effective).
	NICBandwidth float64

	// Policy picks the scheduler wiring.
	Policy Policy
	// SFQDepth is the static depth for SFQD and CGWeight.
	SFQDepth int
	// Controller parameterizes SFQD2. If its reference latencies are
	// zero they are filled by profiling the device specs.
	Controller iosched.ControllerConfig
	// ThrottleLimits maps capped apps to bytes/second for CGThrottle.
	ThrottleLimits map[iosched.AppID]float64
	// ReservationRates maps each app to its per-device reserved service
	// rate (cost units/second) for the Reserve policy;
	// ReservationDefault applies to unlisted apps.
	ReservationRates   map[iosched.AppID]float64
	ReservationDefault float64
	// ScheduleNetwork interposes a weighted fair (SFQ) scheduler on
	// every egress NIC as well — the paper's OpenFlow-style extension.
	// NetworkDepth is its dispatch depth; unlike disks, links gain
	// nothing from a small bound (it only breaks transfer pipelining),
	// so the default is a deep 128 — weighted fairness without
	// admission control.
	ScheduleNetwork bool
	NetworkDepth    int

	// Coordinate enables the Scheduling Broker (the paper's "Sync").
	Coordinate bool
	// CoordinationPeriod is the broker exchange period in seconds
	// (default 1, piggybacked on heartbeats in the prototype).
	CoordinationPeriod float64
	// Federation splits the broker plane into partition brokers under a
	// root aggregator (sharded assembly only). The zero value keeps the
	// centralized broker.
	Federation Federation
	// Faults, when non-nil, injects the compiled fault schedule into
	// the coordination plane: exchanges flow through a faulty
	// transport, scheduler restarts and device-degradation windows are
	// armed on the engine. Nil keeps the reliable direct transport —
	// the pre-fault fast path.
	Faults *faults.Injector
	// Retry tunes the clients' failure handling; zero fields take
	// defaults derived from CoordinationPeriod.
	Retry broker.RetryPolicy
	// DelayClamp caps the per-arrival DSFQ delay increment (cost
	// units; 0 disables). See iosched.SFQ.SetDelayClamp.
	DelayClamp float64

	// Shares is the runtime weight control plane every request resolves
	// through at tag time. Nil gets a fresh tree whose implicit
	// singleton tenants reproduce flat per-app weights exactly.
	Shares *shares.Tree

	// MetaShards is the number of dedicated metadata shards hosting the
	// partitioned namenode's placement draws (sharded assembly only).
	// 0 defaults to DefaultMetaShards for full nodes and none for
	// hollow nodes; negative disables the metadata plane explicitly.
	MetaShards int

	// Hollow strips each datanode to the scale-harness minimum: one
	// HDFS device with its interposed scheduler and (with Coordinate)
	// its broker client. No local device, no NICs, no network
	// scheduler — the kubemark-style hollow node. Hollow nodes accept
	// only persistent-class SubmitIO; Send/SendTagged are unsupported.
	Hollow bool
}

func (c *Config) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.CoresPerNode <= 0 {
		c.CoresPerNode = 12
	}
	if c.MemGBPerNode <= 0 {
		c.MemGBPerNode = 24
	}
	if c.HDFSDisk.Name == "" {
		c.HDFSDisk = storage.HDDSpec()
	}
	if c.LocalDisk.Name == "" {
		c.LocalDisk = storage.HDDSpec()
	}
	if c.NICBandwidth <= 0 {
		c.NICBandwidth = 117e6
	}
	if c.SFQDepth <= 0 {
		c.SFQDepth = 4
	}
	if c.CoordinationPeriod <= 0 {
		c.CoordinationPeriod = 1
	}
	if c.NetworkDepth <= 0 {
		c.NetworkDepth = 128
	}
	if c.Coordinate && c.Federation.Enabled() {
		c.Federation.defaults(c.CoordinationPeriod)
	}
}

// IOObserver receives every completed I/O in the cluster, with the node
// index and the scheduler-observed total latency. Used by experiment
// probes and throughput meters.
type IOObserver func(node int, req *iosched.Request, latency float64)

// Node is one datanode.
type Node struct {
	Index int

	// HDFS and Local are the two storage devices.
	HDFS  *storage.Device
	Local *storage.Device
	// HDFSSched and LocalSched are the interposed schedulers in front
	// of them.
	HDFSSched  iosched.Scheduler
	LocalSched iosched.Scheduler

	nicOut *sim.PSResource
	nicIn  *sim.PSResource
	// NetSched, when non-nil, schedules the egress NIC (the
	// OpenFlow-style extension); tagged sends pass through it.
	NetSched iosched.Scheduler

	// Cores and MemGB are the task resource capacities; UsedCores and
	// UsedMemGB are maintained by the slot scheduler.
	Cores     int
	MemGB     float64
	UsedCores int
	UsedMemGB float64

	// Dead marks a failed node: it accepts no new tasks and its local
	// data (map outputs, block replicas) is considered lost. In-flight
	// device operations drain (the failure model is node-level, not a
	// mid-request disk crash).
	Dead bool

	// shares is the cluster's weight control plane; tagged sends
	// resolve their weight through it.
	shares *shares.Tree

	// shard/coord are set only in sharded mode (NewSharded): shard owns
	// this node's devices, NICs and schedulers; coord is the
	// coordinator shard whose engine drives the control plane and to
	// which every completion callback bounces back.
	shard *sim.Shard
	coord *sim.Shard
}

// FreeCores returns unallocated CPU slots.
func (n *Node) FreeCores() int { return n.Cores - n.UsedCores }

// FreeMemGB returns unallocated task memory.
func (n *Node) FreeMemGB() float64 { return n.MemGB - n.UsedMemGB }

// Cluster is the assembled system. In sharded mode Eng is the
// coordinator shard's engine (shard 0); each node's devices live on
// that node's own shard engine.
type Cluster struct {
	Eng    *sim.Engine
	Nodes  []*Node
	Broker *broker.Broker
	cfg    Config
	shares *shares.Tree

	fabric    *sim.Fabric  // nil in single-engine mode
	meta      []*sim.Shard // dedicated metadata shards (sharded mode)
	fed       *fedPlane    // nil when the broker plane is centralized
	transport broker.Transport
	clients   []ClientRef
	byID      map[string]*broker.Client
	devByName map[string]*storage.Device
	// engByID maps "node<i>-<dev>" — both a device name and a
	// coordination-client id — to the engine that owns it, so fault
	// schedules arm on the right shard.
	engByID map[string]*sim.Engine
}

// Shares returns the cluster's weight control plane.
func (c *Cluster) Shares() *shares.Tree { return c.shares }

// ClientRef locates one coordination client: the node index, the
// device label ("hdfs"/"local"), and the client itself.
type ClientRef struct {
	Node int
	Dev  string
	C    *broker.Client
}

// observable is satisfied by every scheduler implementation.
type observable interface {
	SetObserver(iosched.Observer)
}

// probeSetter is satisfied by every scheduler that supports lifecycle
// probes (all of them, today).
type probeSetter interface {
	SetProbe(iosched.Probe)
}

// New assembles a cluster on the given engine. For SFQD2, zero
// reference latencies in cfg.Controller are filled by offline profiling
// of the device specs (one profile per distinct spec, as the paper's
// one-time calibration).
func New(eng *sim.Engine, cfg Config) (*Cluster, error) {
	return assemble(eng, nil, cfg)
}

// assemble builds the cluster on a single engine (fab == nil) or across
// a fabric of per-node shards (fab != nil; eng is then the coordinator
// shard's engine).
func assemble(eng *sim.Engine, fab *sim.Fabric, cfg Config) (*Cluster, error) {
	cfg.defaults()
	var hdfsCtrl, localCtrl iosched.ControllerConfig
	if cfg.Policy == SFQD2 {
		var err error
		hdfsCtrl, err = fillController(cfg.Controller, cfg.HDFSDisk)
		if err != nil {
			return nil, err
		}
		if !cfg.Hollow {
			localCtrl, err = fillController(cfg.Controller, cfg.LocalDisk)
			if err != nil {
				return nil, err
			}
		}
	}

	if cfg.Shares == nil {
		cfg.Shares = shares.NewTree()
	}
	cfg.Shares.SetClock(eng.Now)
	c := &Cluster{
		Eng: eng, cfg: cfg, shares: cfg.Shares, fabric: fab,
		byID:      make(map[string]*broker.Client),
		devByName: make(map[string]*storage.Device),
		engByID:   make(map[string]*sim.Engine),
	}
	if cfg.Coordinate {
		if cfg.Federation.Enabled() {
			if err := c.buildFederation(fab, cfg); err != nil {
				return nil, err
			}
		} else {
			c.Broker = broker.New()
			c.Broker.SetShares(c.shares)
			switch {
			case fab != nil:
				// Sharded: each client gets its own async transport bound
				// to its node's shard (built in attach); no shared one.
			case cfg.Faults != nil:
				c.transport = faults.NewTransport(eng, cfg.Faults, c.Broker)
			default:
				c.transport = broker.NewDirectTransport(c.Broker)
			}
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{
			Index:  i,
			Cores:  cfg.CoresPerNode,
			MemGB:  cfg.MemGBPerNode,
			shares: c.shares,
		}
		nodeEng := eng
		if fab != nil {
			n.shard = fab.Shard(i + 1)
			n.coord = fab.Shard(0)
			nodeEng = n.shard.Engine()
		}
		n.HDFS = storage.NewDevice(nodeEng, fmt.Sprintf("node%d-hdfs", i), cfg.HDFSDisk)
		c.devByName[fmt.Sprintf("node%d-hdfs", i)] = n.HDFS
		c.engByID[fmt.Sprintf("node%d-hdfs", i)] = nodeEng

		var err error
		n.HDFSSched, err = c.buildScheduler(nodeEng, n.HDFS, true, hdfsCtrl)
		if err != nil {
			return nil, err
		}
		if !cfg.Hollow {
			n.Local = storage.NewDevice(nodeEng, fmt.Sprintf("node%d-local", i), cfg.LocalDisk)
			c.devByName[fmt.Sprintf("node%d-local", i)] = n.Local
			c.engByID[fmt.Sprintf("node%d-local", i)] = nodeEng
			n.nicOut = sim.NewPSResource(nodeEng, fmt.Sprintf("node%d-nic-out", i), sim.ConstantCapacity(cfg.NICBandwidth))
			n.nicIn = sim.NewPSResource(nodeEng, fmt.Sprintf("node%d-nic-in", i), sim.ConstantCapacity(cfg.NICBandwidth))
			n.LocalSched, err = c.buildScheduler(nodeEng, n.Local, false, localCtrl)
			if err != nil {
				return nil, err
			}
			if cfg.ScheduleNetwork {
				n.NetSched = iosched.NewSFQD(nodeEng, &linkBackend{eng: nodeEng, res: n.nicOut}, cfg.NetworkDepth)
			}
		}

		if c.Broker != nil || c.fed != nil {
			c.attach(n, nodeEng, "hdfs", n.HDFSSched, fmt.Sprintf("node%d-hdfs", i))
			if !cfg.Hollow {
				c.attach(n, nodeEng, "local", n.LocalSched, fmt.Sprintf("node%d-local", i))
			}
		}
		c.Nodes = append(c.Nodes, n)
	}
	if cfg.Faults != nil {
		c.armFaults(cfg.Faults)
	}
	return c, nil
}

// armFaults schedules the injector's restarts and device-degradation
// windows, each on the engine owning the targeted client or device (in
// sharded mode that is the node's shard engine). Both schedules come
// pre-sorted, so event sequence numbers — and the whole run — stay
// deterministic.
func (c *Cluster) armFaults(inj *faults.Injector) {
	for _, r := range inj.RestartSchedule() {
		client := c.byID[r.ID]
		if client == nil {
			continue
		}
		c.engByID[r.ID].ScheduleDaemon(r.At, func() { client.Restart() })
	}
	for _, d := range inj.DegradeSchedule() {
		dev := c.devByName[d.Device]
		if dev == nil {
			continue
		}
		factor := d.Factor
		eng := c.engByID[d.Device]
		eng.ScheduleDaemon(d.Window.Start, func() { dev.SetDisturbance(factor) })
		eng.ScheduleDaemon(d.Window.End, func() { dev.SetDisturbance(1) })
	}
}

// buildScheduler wires one device according to the policy. persistent
// marks the HDFS device: cgroups policies leave it uncontrolled. The
// policy and its parameters arrive from the public config, so an
// unknown policy or a bad rate table is an input error surfaced from
// New, not a panic.
func (c *Cluster) buildScheduler(eng *sim.Engine, dev *storage.Device, persistent bool, ctrl iosched.ControllerConfig) (iosched.Scheduler, error) {
	switch c.cfg.Policy {
	case Native:
		return iosched.NewFIFO(eng, dev), nil
	case SFQD:
		return iosched.NewSFQD(eng, dev, c.cfg.SFQDepth), nil
	case SFQD2:
		return iosched.NewSFQD2(eng, dev, ctrl), nil
	case CGWeight:
		if persistent {
			return iosched.NewFIFO(eng, dev), nil
		}
		return cgroups.NewWeight(eng, dev, c.cfg.SFQDepth), nil
	case CGThrottle:
		if persistent {
			return iosched.NewFIFO(eng, dev), nil
		}
		return cgroups.NewThrottle(eng, dev, c.cfg.ThrottleLimits)
	case Reserve:
		return iosched.NewReservation(eng, dev, c.cfg.ReservationRates, c.cfg.ReservationDefault)
	default:
		return nil, fmt.Errorf("cluster: unknown policy %d", int(c.cfg.Policy))
	}
}

// linkBackend adapts an egress NIC to the scheduler Backend interface:
// the cost of a transfer is its size (links are symmetric).
type linkBackend struct {
	eng *sim.Engine
	res *sim.PSResource
}

// Cost implements iosched.Backend.
func (l *linkBackend) Cost(_ storage.OpKind, size float64) float64 { return size }

// Submit implements iosched.Backend.
func (l *linkBackend) Submit(_ storage.OpKind, size float64, onDone func(float64)) {
	t0 := l.eng.Now()
	l.res.Submit(size, func() {
		if onDone != nil {
			onDone(l.eng.Now() - t0)
		}
	})
}

// attach connects an SFQ scheduler to the broker; non-SFQ schedulers
// cannot coordinate and are skipped. The client lives on the node's
// engine; in sharded mode its exchanges cross the fabric through a
// per-client async transport.
func (c *Cluster) attach(n *Node, eng *sim.Engine, dev string, s iosched.Scheduler, id string) {
	sfq, ok := s.(*iosched.SFQ)
	if !ok {
		return
	}
	tr := c.transport
	if n.shard != nil {
		if c.fed != nil {
			p := c.fed.partOf(n.Index, c.cfg.Nodes)
			tr = &fedTransport{part: c.fed.parts[p], inj: c.cfg.Faults, shard: n.shard, pshard: c.fed.shards[p]}
		} else {
			tr = &shardedTransport{b: c.Broker, inj: c.cfg.Faults, shard: n.shard, coord: n.coord}
		}
	}
	client := broker.NewClientWithOptions(eng, id, sfq.Accounting(), broker.ClientOptions{
		Transport: tr,
		Period:    c.cfg.CoordinationPeriod,
		Retry:     c.cfg.Retry,
		Shares:    c.shares,
	})
	client.BindScheduler(sfq)
	sfq.SetDelayClamp(c.cfg.DelayClamp)
	sfq.SetCoordinator(client)
	c.clients = append(c.clients, ClientRef{Node: n.Index, Dev: dev, C: client})
	c.byID[id] = client
}

// Clients returns the coordination clients, one per SFQ scheduler, in
// node order (hdfs before local per node).
func (c *Cluster) Clients() []ClientRef { return c.clients }

// DetachNode permanently disconnects node i's coordination clients
// from the broker, as the cluster membership service would when the
// node is declared dead: its last-reported service vectors are
// withdrawn and surviving nodes stop being delayed on its behalf.
func (c *Cluster) DetachNode(i int) {
	for _, ref := range c.clients {
		if ref.Node == i {
			ref.C.Detach()
		}
	}
}

// RetireApp tells the broker the application has finished cluster-wide:
// its totals are dropped and late straggler reports for it are ignored,
// so a long-lived AppID cannot haunt future jobs with stale service.
// No-op without coordination.
func (c *Cluster) RetireApp(app iosched.AppID) {
	if c.fed != nil {
		c.fedEachPartition(func(p *broker.Partition) { p.Broker().Retire(app) })
		return
	}
	if c.Broker != nil {
		c.Broker.Retire(app)
	}
}

// ReviveApp undoes RetireApp for a reused AppID (e.g. consecutive Hive
// stages). No-op without coordination.
func (c *Cluster) ReviveApp(app iosched.AppID) {
	if c.fed != nil {
		c.fedEachPartition(func(p *broker.Partition) { p.Broker().Revive(app) })
		return
	}
	if c.Broker != nil {
		c.Broker.Revive(app)
	}
}

// fedEachPartition runs fn against every partition broker on its own
// shard (one daemon hop from the coordinator, whose context retire and
// revive are called from). The next uplink of each partition carries
// the resulting state change to the root as explicit-zero deltas.
func (c *Cluster) fedEachPartition(fn func(*broker.Partition)) {
	for i, part := range c.fed.parts {
		part := part
		c.fed.rootShard.PostDaemon(c.fed.shards[i].ID(), 0, func() { fn(part) })
	}
}

// CoordinationHealth merges the failure-handling counters of every
// coordination client into one cluster-wide view.
func (c *Cluster) CoordinationHealth() metrics.CoordinationHealth {
	var h metrics.CoordinationHealth
	for _, ref := range c.clients {
		h.Merge(ref.C.Health())
	}
	return h
}

// SetDegradeObserver registers cluster-level callbacks fired when any
// client degrades to local fairness or recovers, identified by (node,
// device label). The audit layer wires in here to switch invariant
// regimes in step with the schedulers.
func (c *Cluster) SetDegradeObserver(onDegrade, onRecover func(node int, dev string, t float64)) {
	for _, ref := range c.clients {
		ref := ref
		if onDegrade != nil {
			ref.C.SetOnDegrade(func(t float64) { onDegrade(ref.Node, ref.Dev, t) })
		}
		if onRecover != nil {
			ref.C.SetOnRecover(func(t float64) { onRecover(ref.Node, ref.Dev, t) })
		}
	}
}

// profileCache memoizes per-spec calibration: the paper's profiling
// "needs to be done only once for a given storage setup".
var profileCache sync.Map // string -> storage.Profile

// ProfileFor returns the (cached) offline calibration for a device spec.
func ProfileFor(spec storage.Spec) (storage.Profile, error) {
	key := fmt.Sprintf("%+v", spec)
	if p, ok := profileCache.Load(key); ok {
		return p.(storage.Profile), nil
	}
	prof, err := storage.ProfileDevice(spec, storage.ProfileOptions{})
	if err != nil {
		return storage.Profile{}, err
	}
	profileCache.Store(key, prof)
	return prof, nil
}

// fillController completes a controller config with profiled reference
// latencies for the given device spec if they are unset.
func fillController(base iosched.ControllerConfig, spec storage.Spec) (iosched.ControllerConfig, error) {
	if base.ReadLref > 0 {
		return base, nil
	}
	prof, err := ProfileFor(spec)
	if err != nil {
		return base, fmt.Errorf("cluster: profiling %s: %w", spec.Name, err)
	}
	base.ReadLref = prof.ReadLref
	base.WriteLref = prof.WriteLref
	return base, nil
}

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// SetIOObserver installs obs on every scheduler of every node.
func (c *Cluster) SetIOObserver(obs IOObserver) {
	for _, n := range c.Nodes {
		n := n
		for _, s := range []iosched.Scheduler{n.HDFSSched, n.LocalSched} {
			if o, ok := s.(observable); ok {
				o.SetObserver(func(req *iosched.Request, lat float64) {
					obs(n.Index, req, lat)
				})
			}
		}
	}
}

// Instrument installs a request-lifecycle probe on every scheduler of
// every node. build is called once per scheduler with the node index,
// the device label ("hdfs", "local", or "nic"), and the scheduler
// itself, and returns the probe to install (nil leaves that scheduler
// uninstrumented). Tracing and invariant auditing both wire in here.
func (c *Cluster) Instrument(build func(node int, dev string, s iosched.Scheduler) iosched.Probe) {
	for _, n := range c.Nodes {
		devs := []struct {
			label string
			sched iosched.Scheduler
		}{
			{"hdfs", n.HDFSSched},
			{"local", n.LocalSched},
			{"nic", n.NetSched},
		}
		for _, d := range devs {
			if d.sched == nil {
				continue
			}
			ps, ok := d.sched.(probeSetter)
			if !ok {
				continue
			}
			if p := build(n.Index, d.label, d.sched); p != nil {
				ps.SetProbe(p)
			}
		}
	}
}

// TotalCores returns the cluster-wide CPU slot count.
func (c *Cluster) TotalCores() int {
	t := 0
	for _, n := range c.Nodes {
		t += n.Cores
	}
	return t
}

// SubmitIO routes one tagged request on node n: persistent classes go
// to the HDFS device's scheduler, intermediate classes to the local
// device's scheduler — the routing the IBIS interposition layer
// performs in DataNode and NodeManager. A request without a weight
// source resolves through the cluster's share tree. A non-nil error
// means the request was rejected and will never complete.
func (n *Node) SubmitIO(req *iosched.Request) error {
	if req.Shares == nil {
		req.Shares = n.shares
	}
	if n.LocalSched == nil && !req.Class.Persistent() {
		return fmt.Errorf("cluster: node %d is hollow; class %v has no device", n.Index, req.Class)
	}
	if n.shard != nil {
		n.submitSharded(req)
		return nil
	}
	if req.Class.Persistent() {
		return n.HDFSSched.Submit(req)
	}
	return n.LocalSched.Submit(req)
}

// submitSharded routes a request across the fabric: the submit travels
// as a message to the node's shard, and the completion callback bounces
// back to the coordinator, each hop costing the fabric lookahead — the
// sharded model's RPC latency. Rejection cannot be reported to the
// caller synchronously; in the sharded configurations (validated specs,
// no mid-run control-plane surgery) a rejection is a wiring bug, so it
// panics on the node shard.
func (n *Node) submitSharded(req *iosched.Request) {
	orig := req.OnDone
	if orig != nil {
		coordID := n.coord.ID()
		req.OnDone = func(lat float64) {
			n.shard.Post(coordID, 0, func() { orig(lat) })
		}
	}
	n.coord.Post(n.shard.ID(), 0, func() {
		var err error
		if req.Class.Persistent() {
			err = n.HDFSSched.Submit(req)
		} else {
			err = n.LocalSched.Submit(req)
		}
		if err != nil {
			panic(fmt.Sprintf("cluster: sharded submit on node %d rejected: %v", n.Index, err))
		}
	})
}

// Send models a network transfer of size bytes from node n to dst: a
// processor-shared pass through n's egress NIC then dst's ingress NIC.
// done fires when the last byte arrives.
func (n *Node) Send(dst *Node, size float64, done func()) {
	if n.shard != nil {
		n.sendSharded(dst, size, done)
		return
	}
	if size <= 0 {
		n.nicOut.Submit(0, func() {
			if done != nil {
				done()
			}
		})
		return
	}
	n.nicOut.Submit(size, func() {
		dst.nicIn.Submit(size, func() {
			if done != nil {
				done()
			}
		})
	})
}

// sendSharded is Send across the fabric: egress on the source shard,
// one inter-shard hop (the lookahead is the wire latency), ingress on
// the destination shard, completion bounced to the coordinator.
func (n *Node) sendSharded(dst *Node, size float64, done func()) {
	coordID := n.coord.ID()
	finish := func() {
		if done != nil {
			dst.shard.Post(coordID, 0, done)
		}
	}
	n.coord.Post(n.shard.ID(), 0, func() {
		if size <= 0 {
			n.nicOut.Submit(0, func() {
				if done != nil {
					n.shard.Post(coordID, 0, done)
				}
			})
			return
		}
		n.nicOut.Submit(size, func() {
			n.shard.Post(dst.shard.ID(), 0, func() {
				dst.nicIn.Submit(size, finish)
			})
		})
	})
}

// SendTagged is Send with application attribution: when the cluster
// schedules network bandwidth, the egress hop passes through the NIC's
// weighted fair scheduler; otherwise it behaves exactly like Send. The
// transfer's weight resolves through the cluster's share tree at tag
// time, like any other scheduled I/O.
func (n *Node) SendTagged(dst *Node, app iosched.AppID, size float64, done func()) error {
	if n.NetSched == nil || size <= 0 {
		n.Send(dst, size, done)
		return nil
	}
	if n.shard != nil {
		coordID := n.coord.ID()
		req := &iosched.Request{
			App:    app,
			Shares: n.shares,
			Class:  iosched.NetworkTransfer,
			Size:   size,
			OnDone: func(float64) {
				n.shard.Post(dst.shard.ID(), 0, func() {
					dst.nicIn.Submit(size, func() {
						if done != nil {
							dst.shard.Post(coordID, 0, done)
						}
					})
				})
			},
		}
		n.coord.Post(n.shard.ID(), 0, func() {
			if err := n.NetSched.Submit(req); err != nil {
				panic(fmt.Sprintf("cluster: sharded tagged send on node %d rejected: %v", n.Index, err))
			}
		})
		return nil
	}
	return n.NetSched.Submit(&iosched.Request{
		App:    app,
		Shares: n.shares,
		Class:  iosched.NetworkTransfer,
		Size:   size,
		OnDone: func(float64) {
			dst.nicIn.Submit(size, func() {
				if done != nil {
					done()
				}
			})
		},
	})
}

// NICOutBusy returns seconds the egress NIC was busy (for overhead and
// saturation analysis).
func (n *Node) NICOutBusy() float64 { return n.nicOut.BusyTime() }

// NICInBusy returns seconds the ingress NIC was busy.
func (n *Node) NICInBusy() float64 { return n.nicIn.BusyTime() }
