// Sharded cluster assembly: one simulation shard per datanode plus a
// coordinator shard, advancing concurrently under the fabric's
// conservative synchronization.
//
// Partitioning. Shard 0 (the coordinator) owns what is genuinely
// cluster-global: the fair scheduler's slot accounting, per-job
// barriers (map/reduce completion counts), the broker root, and the
// share tree's clock. Shard 1+i owns datanode i: its two storage
// devices, its NIC processor-sharing resources, its interposed I/O
// schedulers, its coordination clients — and, since the coordinator
// decomposition, the running task attempts placed on it (their chunk
// pipelines, shuffle fetchers and merge loops execute on the owning
// node's engine; see mapreduce's sharded runtime). Block metadata is
// partitioned by block-id hash across dedicated metadata shards after
// the federation partitions (Config.MetaShards), so placement draws
// never serialize on shard 0. Every cross-shard interaction — a task
// launch, a completion report, a shuffle transfer landing on a remote
// NIC, a broker exchange, a fault-schedule event — travels as a
// timestamped inter-shard message, so each engine remains single-owner
// and the run is bit-identical for every worker count.
//
// The fabric lookahead plays the role of the cluster's control-plane
// RPC latency: a submit, a completion notification, a NIC-to-NIC hop
// and a broker exchange leg each take at least one lookahead of
// virtual time. The sharded model is therefore not bit-identical to
// the single-engine model (which has zero-latency control edges); it
// is its own deterministic system, pinned by comparing worker counts
// against each other.
//
// Constraints. The share tree must be fully populated before the
// fabric runs: node shards resolve weights at tag time, and the tree's
// auto-bind-on-read would be a cross-shard mutation. mapreduce.Submit
// binds every job's app synchronously at submission, so submitting all
// jobs before Run (as the experiments do) satisfies this; mid-run
// reweighting, Hive stage submission and FailNode are unsupported in
// sharded mode.
package cluster

import (
	"fmt"

	"ibis/internal/broker"
	"ibis/internal/faults"
	"ibis/internal/iosched"
	"ibis/internal/sim"
)

// DefaultLookahead is the default cross-shard latency (virtual
// seconds) when a caller passes none: a LAN-class control RPC, two
// orders of magnitude below the coordination period, far above float
// noise.
const DefaultLookahead = 0.02

// NewSharded assembles a cluster across a fresh fabric of cfg.Nodes+1
// shards: shard 0 is the coordinator (Cluster.Eng is its engine),
// shard 1+i is datanode i. lookahead (≤0 = DefaultLookahead) becomes
// the minimum virtual latency of every cross-shard edge; fo.Workers
// sets the physical parallelism and changes nothing else.
func NewSharded(cfg Config, lookahead float64, fo sim.FabricOptions) (*Cluster, error) {
	cfg.defaults()
	if lookahead <= 0 {
		lookahead = DefaultLookahead
	}
	extra := 0
	if cfg.Coordinate && cfg.Federation.Enabled() {
		extra = cfg.Federation.Partitions
	}
	// Metadata shards host the partitioned namenode's placement draws
	// (default 2 for full nodes; hollow nodes run no DFS). They sit
	// after the federation partitions.
	meta := cfg.MetaShards
	if meta == 0 && !cfg.Hollow {
		meta = DefaultMetaShards
	}
	if meta < 0 {
		meta = 0
	}
	f := sim.NewFabric(cfg.Nodes+1+extra+meta, lookahead, fo)
	c, err := assemble(f.Shard(0).Engine(), f, cfg)
	if err != nil {
		return nil, err
	}
	for p := 0; p < meta; p++ {
		c.meta = append(c.meta, f.Shard(1+cfg.Nodes+extra+p))
	}
	return c, nil
}

// DefaultMetaShards is the metadata shard count for full (non-hollow)
// sharded assemblies when Config.MetaShards is zero.
const DefaultMetaShards = 2

// MetaShards returns the dedicated metadata shards (empty in
// single-engine or hollow mode). The partitioned namenode's partition
// p draws on shard p%len.
func (c *Cluster) MetaShards() []*sim.Shard { return c.meta }

// Fabric returns the simulation fabric, or nil in single-engine mode.
func (c *Cluster) Fabric() *sim.Fabric { return c.fabric }

// SetNodeUplinkLatency raises the minimum virtual latency of messages
// leaving every datanode shard to lat seconds (≥ the fabric
// lookahead). Node→coordinator traffic is periodic control RPCs
// (heartbeat-piggybacked exchanges), so a looser uplink bound is
// faithful to real clusters — and it widens the conservative
// synchronization windows: the fabric can run each shard further ahead
// before a barrier, cutting barrier count roughly by lat/lookahead.
// Coordinator and partition shards keep the tight bound, so response
// legs stay fast. No-op in single-engine mode.
func (c *Cluster) SetNodeUplinkLatency(lat float64) {
	if c.fabric == nil {
		return
	}
	for i := range c.Nodes {
		c.fabric.SetShardOutLatency(1+i, lat)
	}
}

// NodeEngine returns the engine owning node i's devices (the cluster
// engine in single-engine mode).
func (c *Cluster) NodeEngine(i int) *sim.Engine {
	if c.fabric != nil {
		return c.fabric.Shard(i + 1).Engine()
	}
	return c.Eng
}

// Shard returns the node's fabric shard (nil in single-engine mode).
func (n *Node) Shard() *sim.Shard { return n.shard }

// CoordShard returns the coordinator shard (nil in single-engine
// mode).
func (c *Cluster) CoordShard() *sim.Shard {
	if c.fabric == nil {
		return nil
	}
	return c.fabric.Shard(0)
}

// Node-local I/O primitives for decomposed task execution. Unlike
// SubmitIO/SendTagged — which assume the coordinator is calling and
// route everything through shard 0 — these must be invoked from the
// owning node's shard context (a task pipeline running on the node's
// engine) and touch no coordinator state. Rejections panic, as on
// every sharded submit path: specs are validated at submission, so a
// rejection here is a wiring bug, not a recoverable condition.

// SubmitLocal submits a request directly to this node's scheduler.
// Caller must be executing on n's shard; OnDone fires there too.
func (n *Node) SubmitLocal(req *iosched.Request) {
	if req.Shares == nil {
		req.Shares = n.shares
	}
	var err error
	if req.Class.Persistent() {
		err = n.HDFSSched.Submit(req)
	} else {
		err = n.LocalSched.Submit(req)
	}
	if err != nil {
		panic(fmt.Sprintf("cluster: node-local submit on node %d rejected: %v", n.Index, err))
	}
}

// SendTaggedLocal ships size bytes from this node to dst with
// application attribution, entirely off the coordinator: egress
// through the NIC scheduler (or the raw NIC when the cluster does not
// schedule network), one inter-shard hop, ingress on dst — and done
// runs on dst's shard, where the receiving pipeline continues. Caller
// must be executing on n's shard.
func (n *Node) SendTaggedLocal(dst *Node, app iosched.AppID, size float64, done func()) {
	deliver := func() {
		n.shard.Post(dst.shard.ID(), 0, func() {
			dst.nicIn.Submit(size, func() {
				if done != nil {
					done()
				}
			})
		})
	}
	if n.NetSched == nil || size <= 0 {
		n.nicOut.Submit(size, deliver)
		return
	}
	err := n.NetSched.Submit(&iosched.Request{
		App:    app,
		Shares: n.shares,
		Class:  iosched.NetworkTransfer,
		Size:   size,
		OnDone: func(float64) { deliver() },
	})
	if err != nil {
		panic(fmt.Sprintf("cluster: node-local tagged send on node %d rejected: %v", n.Index, err))
	}
}

// shardedTransport carries one coordination client's broker traffic
// across the fabric: the request is a daemon message to the
// coordinator shard — where the broker lives and the fault model is
// evaluated — and the response a daemon message back. Daemon, because
// periodic coordination must not keep the simulation alive.
//
// It implements broker.AsyncTransport; the synchronous
// broker.Transport methods exist only to satisfy the interface type
// and panic if called (the client prefers the async protocol whenever
// a transport provides it).
type shardedTransport struct {
	b     *broker.Broker
	inj   *faults.Injector // nil = reliable
	shard *sim.Shard       // the client's node shard
	coord *sim.Shard
	seq   uint64 // per-client fate counter, advanced on the coordinator
}

var _ broker.Transport = (*shardedTransport)(nil)
var _ broker.AsyncTransport = (*shardedTransport)(nil)

// ExchangeAsync implements broker.AsyncTransport. Fates are evaluated
// on the coordinator at arrival time with a per-client sequence
// counter: messages from one client arrive in send order, so the
// counter — and with it every fault roll — is independent of how other
// clients' traffic interleaves.
func (t *shardedTransport) ExchangeAsync(id string, vec map[iosched.AppID]float64, done func(broker.Response, error)) {
	src := t.shard.ID()
	t.shard.PostDaemon(t.coord.ID(), 0, func() {
		var fate faults.MsgFate
		if t.inj != nil {
			fate = t.inj.Fate(id, t.seq, t.coord.Engine().Now())
			t.seq++
		}
		if fate.Unavailable {
			t.coord.PostDaemon(src, 0, func() { done(broker.Response{}, broker.ErrUnavailable) })
			return
		}
		if fate.ReqDrop {
			return // lost in flight; the client's timeout covers it
		}
		resp := t.b.Exchange(id, vec)
		if fate.RespDrop {
			return // report applied, response lost
		}
		t.coord.PostDaemon(src, fate.Delay, func() { done(resp, nil) })
	})
}

// RegisterAsync implements broker.AsyncTransport.
func (t *shardedTransport) RegisterAsync(id string, done func(error)) {
	src := t.shard.ID()
	t.shard.PostDaemon(t.coord.ID(), 0, func() {
		var fate faults.MsgFate
		if t.inj != nil {
			fate = t.inj.Fate(id, t.seq, t.coord.Engine().Now())
			t.seq++
		}
		if fate.Unavailable {
			t.coord.PostDaemon(src, 0, func() { done(broker.ErrUnavailable) })
			return
		}
		if fate.ReqDrop {
			return
		}
		t.b.Register(id)
		if fate.RespDrop {
			return
		}
		t.coord.PostDaemon(src, fate.Delay, func() { done(nil) })
	})
}

// Exchange implements broker.Transport (type only — never called).
func (t *shardedTransport) Exchange(string, map[iosched.AppID]float64) (broker.Response, float64, error) {
	panic("cluster: sharded transport is async-only")
}

// Register implements broker.Transport (type only — never called).
func (t *shardedTransport) Register(string) (float64, error) {
	panic("cluster: sharded transport is async-only")
}

// Unregister implements broker.Transport. Out-of-band death detection
// crosses the fabric like everything else; it is called from the
// client's shard (Detach).
func (t *shardedTransport) Unregister(id string) {
	t.shard.PostDaemon(t.coord.ID(), 0, func() { t.b.Unregister(id) })
}
