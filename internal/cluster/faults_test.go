package cluster

import (
	"testing"

	"ibis/internal/faults"
	"ibis/internal/iosched"
)

// keepBusy keeps a closed-loop read backlog on node n's HDFS scheduler
// until the horizon, tallying serviced bytes.
func keepBusy(eng interface {
	Now() float64
}, n *Node, app iosched.AppID, horizon float64, served *float64) {
	var issue func()
	issue = func() {
		n.SubmitIO(&iosched.Request{
			App: app, Shares: iosched.FixedWeight(1), Class: iosched.PersistentRead, Size: 1e6,
			OnDone: func(float64) {
				*served += 1e6
				if eng.Now() < horizon {
					issue()
				}
			},
		})
	}
	for i := 0; i < 4; i++ {
		issue()
	}
}

// TestArmFaultsSchedulesRestarts checks the restart arm of the fault
// wiring: the injected restart reaches the right client and shows up
// in its health counters (wipe + re-register).
func TestArmFaultsSchedulesRestarts(t *testing.T) {
	eng, c := newCluster(t, Config{
		Nodes: 2, Policy: SFQD, Coordinate: true, CoordinationPeriod: 0.5,
		Faults: faults.New(faults.Spec{
			Restarts: map[string][]float64{"node0-hdfs": {1.5}},
		}),
	})
	var served float64
	keepBusy(eng, c.Nodes[0], "A", 4, &served)
	eng.Schedule(5, func() {})
	eng.Run()

	for _, ref := range c.Clients() {
		h := ref.C.Health()
		wantRestarts := uint64(0)
		if ref.Node == 0 && ref.Dev == "hdfs" {
			wantRestarts = 1
		}
		if h.Restarts != wantRestarts {
			t.Errorf("node%d-%s: restarts = %d, want %d", ref.Node, ref.Dev, h.Restarts, wantRestarts)
		}
	}
	if h := c.CoordinationHealth(); h.Restarts != 1 || h.ReRegisters != 1 {
		t.Errorf("merged health restarts/reregisters = %d/%d, want 1/1", h.Restarts, h.ReRegisters)
	}
}

// TestArmFaultsDegradesDevice checks the device arm: capacity drops by
// the degrade factor inside the window and comes back after.
func TestArmFaultsDegradesDevice(t *testing.T) {
	eng, c := newCluster(t, Config{
		Nodes: 1, Policy: SFQD,
		Faults: faults.New(faults.Spec{
			DeviceDegrade: map[string][]faults.Window{"node0-hdfs": {{Start: 1, End: 2}}},
			DegradeFactor: 0.25,
		}),
	})
	var served float64
	keepBusy(eng, c.Nodes[0], "A", 3, &served)
	var atStart, atEnd, atRecovered float64
	eng.ScheduleDaemon(1, func() { atStart = served })
	eng.ScheduleDaemon(2, func() { atEnd = served })
	eng.ScheduleDaemon(3, func() { atRecovered = served })
	eng.Schedule(3, func() {})
	eng.Run()

	degraded := atEnd - atStart
	healthy := atRecovered - atEnd
	if degraded <= 0 || healthy <= 0 {
		t.Fatalf("no service measured (degraded=%v healthy=%v)", degraded, healthy)
	}
	// Factor 0.25 with identical windows: the degraded second should
	// serve roughly a quarter of the healthy one.
	if ratio := degraded / healthy; ratio > 0.45 {
		t.Errorf("degraded/healthy service ratio = %.2f, want ≈0.25 (window not applied?)", ratio)
	}
}

// TestDetachNodeUnregistersClients: membership-service path — the
// detached node's clients leave the broker and stay gone.
func TestDetachNodeUnregistersClients(t *testing.T) {
	eng, c := newCluster(t, Config{Nodes: 2, Policy: SFQD, Coordinate: true, CoordinationPeriod: 0.5})
	var s0, s1 float64
	keepBusy(eng, c.Nodes[0], "A", 4, &s0)
	keepBusy(eng, c.Nodes[1], "A", 4, &s1)
	eng.Schedule(2, func() {
		c.DetachNode(1)
		if got := len(c.Broker.Schedulers()); got != 2 {
			t.Errorf("schedulers after detach = %d, want 2", got)
		}
	})
	eng.Schedule(5, func() {})
	eng.Run()
	for _, id := range c.Broker.Schedulers() {
		if id == "node1-hdfs" || id == "node1-local" {
			t.Errorf("detached client %s re-registered", id)
		}
	}
}

// TestDegradeObserverReportsNodeAndDevice: the audit hook sees degrade
// and recover transitions labeled with the right (node, dev) and in
// matched pairs when an outage blankets the cluster.
func TestDegradeObserverReportsNodeAndDevice(t *testing.T) {
	eng, c := newCluster(t, Config{
		Nodes: 2, Policy: SFQD, Coordinate: true, CoordinationPeriod: 0.5,
		Faults: faults.New(faults.Spec{Outages: []faults.Window{{Start: 1, End: 3}}}),
	})
	type key struct {
		node int
		dev  string
	}
	degrades, recovers := map[key]int{}, map[key]int{}
	c.SetDegradeObserver(
		func(node int, dev string, _ float64) { degrades[key{node, dev}]++ },
		func(node int, dev string, _ float64) { recovers[key{node, dev}]++ },
	)
	var s0, s1 float64
	keepBusy(eng, c.Nodes[0], "A", 8, &s0)
	keepBusy(eng, c.Nodes[1], "A", 8, &s1)
	eng.Schedule(9, func() {})
	eng.Run()

	for _, want := range []key{{0, "hdfs"}, {0, "local"}, {1, "hdfs"}, {1, "local"}} {
		if degrades[want] != 1 {
			t.Errorf("%+v: degrades = %d, want 1", want, degrades[want])
		}
		if recovers[want] != 1 {
			t.Errorf("%+v: recovers = %d, want 1", want, recovers[want])
		}
	}
	if h := c.CoordinationHealth(); h.Degradations != 4 || h.Recoveries != 4 {
		t.Errorf("merged degradations/recoveries = %d/%d, want 4/4", h.Degradations, h.Recoveries)
	}
}
