package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// skewedRun exercises a heavily skewed population: shard 0 is a busy
// coordinator churning through a dense event schedule and pinging a few
// peers, while the vast majority of shards are idle except for daemon
// housekeeping — the hollow-datanode shape. Returns a per-shard trace.
func skewedRun(shards, workers int) [][]string {
	f := NewFabric(shards, 0.05, FabricOptions{Workers: workers})
	logs := make([][]string, shards)
	coord := f.Shard(0)

	// Dense self-rescheduling work on the coordinator.
	var tick func()
	n := 0
	tick = func() {
		logs[0] = append(logs[0], fmt.Sprintf("tick@%.3f", coord.Engine().Now()))
		n++
		if n%7 == 0 {
			// Ping a couple of far-flung peers; they reply.
			for _, p := range []int{shards / 3, shards - 2} {
				p := p
				coord.Post(p, 0.05, func() {
					s := f.Shard(p)
					logs[p] = append(logs[p], fmt.Sprintf("ping@%.3f", s.Engine().Now()))
					s.Post(0, 0.05, func() {
						logs[0] = append(logs[0], fmt.Sprintf("pong%d@%.3f", p, coord.Engine().Now()))
					})
				})
			}
		}
		if n < 60 {
			coord.Engine().Schedule(0.01, tick)
		}
	}
	coord.Engine().Schedule(0, tick)

	// A single sparse event in the far future on a high shard: the
	// starvation case — it must still fire even though every window
	// until then is driven by shard 0 alone.
	sparse := shards - 1
	f.Shard(sparse).Engine().Schedule(5.0, func() {
		logs[sparse] = append(logs[sparse], fmt.Sprintf("sparse@%.3f", f.Shard(sparse).Engine().Now()))
	})

	// Daemon-only heartbeats on every other shard must not keep the
	// fabric alive nor join windows needlessly.
	for i := 1; i < shards-1; i++ {
		s := f.Shard(i)
		var beat func()
		beat = func() {
			s.Engine().ScheduleDaemon(1.0, beat)
		}
		s.Engine().ScheduleDaemon(1.0, beat)
	}

	f.Run()
	return logs
}

// TestFabricSkewedStarvation pins that at 1000 shards a lone far-future
// event on the highest shard is not starved by a chatty coordinator,
// and that the run is bit-identical across worker counts.
func TestFabricSkewedStarvation(t *testing.T) {
	const shards = 1000
	base := skewedRun(shards, 1)
	last := base[shards-1]
	if len(last) != 1 || last[0] != "sparse@5.000" {
		t.Fatalf("sparse shard trace = %v, want the single far-future event", last)
	}
	if len(base[0]) == 0 {
		t.Fatal("coordinator trace empty")
	}
	for _, workers := range []int{4, 8} {
		got := skewedRun(shards, workers)
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d diverged from serial run", workers)
		}
	}
}

// TestFabricSkewedWindowCost pins the window-accounting complexity: the
// per-window work must not scan all shards, so the executed window
// count for the same coordinator schedule should be independent of how
// many idle shards surround it — and the whole run at 1000 shards must
// stay cheap enough that this test is instant.
func TestFabricSkewedWindowCost(t *testing.T) {
	statsFor := func(shards int) FabricStats {
		f := NewFabric(shards, 0.05, FabricOptions{Workers: 1})
		s0 := f.Shard(0)
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 100 {
				s0.Engine().Schedule(0.01, tick)
			}
		}
		s0.Engine().Schedule(0, tick)
		f.Run()
		return f.Stats()
	}
	small, big := statsFor(4), statsFor(1000)
	if small.Windows != big.Windows {
		t.Fatalf("window count depends on idle shard population: 4 shards → %d, 1000 shards → %d",
			small.Windows, big.Windows)
	}
}

// BenchmarkFabricSkewed measures the coordinator-plus-hollow-peers
// shape: 1000 shards, work on shard 0 only, occasional cross-shard
// messages. Before the lazy next-event heap this was O(shards) per
// window; now each window touches only the shards with work due.
func BenchmarkFabricSkewed(b *testing.B) {
	for _, shards := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f := NewFabric(shards, 0.05, FabricOptions{Workers: 1})
				s0 := f.Shard(0)
				n := 0
				var tick func()
				tick = func() {
					n++
					if n%10 == 0 {
						p := 1 + n%(shards-1)
						s0.Post(p, 0.05, func() {})
					}
					if n < 1000 {
						s0.Engine().Schedule(0.01, tick)
					}
				}
				s0.Engine().Schedule(0, tick)
				f.Run()
			}
		})
	}
}
