package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// fabricLog records one executed callback: which shard ran it, when,
// and a payload identifying it. Comparing the full per-shard logs
// across worker counts pins bit-determinism.
type fabricLogEntry struct {
	Shard int
	Time  float64
	Tag   string
}

// buildRandomWorkload wires a seeded random message-passing model onto
// f: each shard starts a few event chains; every event continues its
// chain locally or to a random shard (sometimes with a sub-lookahead
// delay, exercising the clamp) down to the given depth. All mutable
// state is per-shard, so random draws depend only on per-shard
// execution order — which the fabric guarantees is deterministic — and
// never on goroutine interleaving. The returned slices are the
// per-shard execution logs, only read after Run returns.
func buildRandomWorkload(f *Fabric, seed int64, depth int) [][]fabricLogEntry {
	logs := make([][]fabricLogEntry, f.Shards())
	rng := rand.New(rand.NewSource(seed))

	// One RNG per shard, seeded deterministically up front.
	shardRng := make([]*rand.Rand, f.Shards())
	for i := range shardRng {
		shardRng[i] = rand.New(rand.NewSource(seed + int64(i)*7919))
	}

	var spawn func(shard, left int, tag string)
	spawn = func(shard, left int, tag string) {
		s := f.Shard(shard)
		logs[shard] = append(logs[shard], fabricLogEntry{shard, s.Engine().Now(), tag})
		if left <= 0 {
			return
		}
		r := shardRng[shard]
		next := tag + "."
		switch r.Intn(3) {
		case 0: // local follow-up
			s.Engine().Schedule(r.Float64()*0.05, func() { spawn(shard, left-1, next+"l") })
		case 1: // remote, delay above lookahead
			dst := r.Intn(f.Shards())
			s.Post(dst, f.Lookahead()+r.Float64()*0.1, func() { spawn(dst, left-1, next+"r") })
		case 2: // remote, delay below lookahead (clamped)
			dst := r.Intn(f.Shards())
			s.Post(dst, r.Float64()*f.Lookahead()*0.5, func() { spawn(dst, left-1, next+"c") })
		}
	}
	for i := 0; i < f.Shards(); i++ {
		for j := 0; j < 3; j++ {
			i, j := i, j
			f.Shard(i).Engine().Schedule(rng.Float64()*0.1, func() {
				spawn(i, depth, fmt.Sprintf("s%d#%d", i, j))
			})
		}
	}
	return logs
}

// TestFabricDeterministicAcrossWorkers is the core property: the same
// seeded workload produces identical per-shard execution logs for every
// worker count, including serial.
func TestFabricDeterministicAcrossWorkers(t *testing.T) {
	const shards = 9 // coordinator + 8 nodes, the cluster topology
	for _, seed := range []int64{1, 42, 20260806} {
		var want [][]fabricLogEntry
		var wantEnd float64
		for _, workers := range []int{1, 2, 4, 8} {
			f := NewFabric(shards, 0.02, FabricOptions{Workers: workers, Debug: true})
			logs := buildRandomWorkload(f, seed, 150)
			end := f.Run()
			if workers == 1 {
				want, wantEnd = logs, end
				continue
			}
			if end != wantEnd {
				t.Fatalf("seed %d workers %d: end time %v, serial %v", seed, workers, end, wantEnd)
			}
			if !reflect.DeepEqual(logs, want) {
				t.Fatalf("seed %d workers %d: execution log diverged from serial run", seed, workers)
			}
		}
	}
}

// TestFabricLookaheadClamp: a sub-lookahead post is delivered exactly
// lookahead after the send time.
func TestFabricLookaheadClamp(t *testing.T) {
	f := NewFabric(2, 0.5, FabricOptions{})
	var deliveredAt float64
	f.Shard(0).Engine().Schedule(1.0, func() {
		f.Shard(0).Post(1, 0.001, func() {
			deliveredAt = f.Shard(1).Engine().Now()
		})
	})
	f.Run()
	if deliveredAt != 1.5 {
		t.Fatalf("sub-lookahead post delivered at %v, want 1.5 (send 1.0 + lookahead 0.5)", deliveredAt)
	}
}

// TestFabricDaemonIdleShardNoStarvation: a shard whose queue holds only
// a self-rescheduling daemon tick must neither stall the others nor
// keep the fabric alive once real work drains; a fully drained shard
// must not deadlock the window computation either.
func TestFabricDaemonIdleShardNoStarvation(t *testing.T) {
	f := NewFabric(4, 0.01, FabricOptions{Workers: 4, Debug: true})

	// Shard 1: daemon-only heartbeat, forever.
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		f.Shard(1).Engine().ScheduleDaemon(0.05, tick)
	}
	f.Shard(1).Engine().ScheduleDaemon(0.05, tick)

	// Shard 2: drains immediately (single event at t=0), then sits empty.
	f.Shard(2).Engine().Schedule(0, func() {})

	// Shard 0: a chain of live work out to t≈1.0, bouncing through
	// shard 3 to keep cross-shard traffic flowing. Each hop posts from
	// the shard currently executing it.
	hops := 0
	var hop func(cur int)
	hop = func(cur int) {
		hops++
		if hops >= 50 {
			return
		}
		dst := 3 - cur
		f.Shard(cur).Post(dst, 0.02, func() { hop(dst) })
	}
	f.Shard(0).Engine().Schedule(0, func() { hop(0) })

	end := f.Run()
	if hops != 50 {
		t.Fatalf("live chain ran %d hops, want 50 — an idle shard starved the fabric", hops)
	}
	if ticks == 0 {
		t.Fatal("daemon tick never ran while live work was in flight")
	}
	// The daemon alone must not have kept the fabric running: the end
	// time is bounded by the live chain (≈ 50 hops × ≥0.02s each).
	if end > 1.2 {
		t.Fatalf("fabric ran to t=%v after live work drained at ≈1.0 — daemon-only shard kept it alive", end)
	}
	if f.Shard(1).Engine().Pending() == 0 {
		t.Fatal("daemon tick should still be pending after termination")
	}
}

// TestFabricRunUntil: the horizon is exclusive and pending work
// survives it.
func TestFabricRunUntil(t *testing.T) {
	f := NewFabric(2, 0.1, FabricOptions{})
	var ran []float64
	for _, tt := range []float64{0.05, 0.25, 0.45} {
		tt := tt
		f.Shard(0).Engine().Schedule(tt, func() { ran = append(ran, tt) })
	}
	f.RunUntil(0.3)
	if len(ran) != 2 {
		t.Fatalf("RunUntil(0.3) executed %v, want the two events before 0.3", ran)
	}
	f.Run()
	if len(ran) != 3 {
		t.Fatalf("resumed Run executed %v, want all three", ran)
	}
}

// TestFabricOwnerGuard: in debug mode, touching a shard engine from
// outside its window panics instead of racing. The window flag is
// driven directly so the panic lands on the test goroutine.
func TestFabricOwnerGuard(t *testing.T) {
	f := NewFabric(2, 0.1, FabricOptions{Workers: 2, Debug: true})
	f.inWindow.Store(1)
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("scheduling on a non-running shard during a window did not panic")
			} else if !strings.Contains(fmt.Sprint(r), "touched during a parallel window") {
				t.Fatalf("unexpected panic: %v", r)
			}
		}()
		f.Shard(1).Engine().Schedule(0, func() {})
	}()
	// The running shard itself is allowed through.
	f.Shard(1).running.Store(1)
	f.Shard(1).Engine().Schedule(0, func() {})
	f.Shard(1).running.Store(0)
	f.inWindow.Store(0)

	// Outside any window (barrier / setup), everything is allowed.
	f.Shard(0).Engine().Schedule(0, func() {})
}

// TestFabricMailboxFreelistIsolation runs a message-heavy parallel
// workload and then proves no engine's freelist ever received a foreign
// record: every recycled event must have been allocated by the engine
// that holds it. Combined with -race (this test is in the default
// suite), this pins the single-owner contract at the mailbox boundary.
func TestFabricMailboxFreelistIsolation(t *testing.T) {
	f := NewFabric(8, 0.01, FabricOptions{Workers: 8, Debug: true})
	logs := buildRandomWorkload(f, 7, 400)
	f.Run()
	if f.Stats().ParallelWindows == 0 {
		t.Fatal("workload never exercised a parallel window")
	}
	total := 0
	for _, l := range logs {
		total += len(l)
	}
	if total < 5000 {
		t.Fatalf("workload executed %d events, want ≥ 5000", total)
	}

	// Each engine's freelist and queue must reference disjoint record
	// sets: a record delivered cross-shard is always scheduled via the
	// destination engine's own allocator, never moved between engines.
	owner := map[*event]int{}
	for i := 0; i < f.Shards(); i++ {
		e := f.Shard(i).Engine()
		for _, ev := range e.free {
			if prev, dup := owner[ev]; dup {
				t.Fatalf("event record shared between engines %d and %d", prev, i)
			}
			owner[ev] = i
		}
		for _, ev := range e.queue {
			if prev, dup := owner[ev]; dup {
				t.Fatalf("event record shared between engines %d and %d", prev, i)
			}
			owner[ev] = i
		}
	}
}

// TestFabricValidation covers constructor and Post argument checks.
func TestFabricValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero shards", func() { NewFabric(0, 0.1, FabricOptions{}) })
	mustPanic("zero lookahead", func() { NewFabric(1, 0, FabricOptions{}) })
	f := NewFabric(2, 0.1, FabricOptions{})
	mustPanic("nil fn", func() { f.Shard(0).Post(1, 0.1, nil) })
	mustPanic("bad dst", func() { f.Shard(0).Post(5, 0.1, func() {}) })
}
