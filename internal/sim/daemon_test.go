package sim

import (
	"testing"
)

func TestDaemonDoesNotKeepSimAlive(t *testing.T) {
	e := NewEngine()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		e.ScheduleDaemon(1, tick)
	}
	e.ScheduleDaemon(1, tick)
	end := e.Run()
	if end != 0 || ticks != 0 {
		t.Fatalf("daemon-only sim ran to %v with %d ticks, want immediate stop", end, ticks)
	}
}

func TestDaemonRunsWhileLiveWorkPending(t *testing.T) {
	e := NewEngine()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		e.ScheduleDaemon(1, tick)
	}
	e.ScheduleDaemon(1, tick)
	e.Schedule(5.5, func() {})
	e.Run()
	if ticks != 5 {
		t.Fatalf("ticks = %d over 5.5s at 1s period, want 5", ticks)
	}
}

func TestDaemonSpawnedLiveWorkExtendsRun(t *testing.T) {
	e := NewEngine()
	spawned := false
	e.ScheduleDaemon(1, func() {
		// A daemon may spawn live work; the run must continue for it.
		spawned = true
		e.Schedule(2, func() {})
	})
	e.Schedule(1.5, func() {}) // keeps the sim alive past the daemon tick
	end := e.Run()
	if !spawned {
		t.Fatal("daemon never fired")
	}
	if end != 3 {
		t.Fatalf("end = %v, want 3 (daemon-spawned live event at 1+2)", end)
	}
}

func TestCancelLiveEventReleasesRun(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(100, func() {})
	e.ScheduleDaemon(1, func() {})
	e.Cancel(ev)
	end := e.Run()
	if end != 0 {
		t.Fatalf("end = %v; cancelling the only live event should stop the run", end)
	}
	if e.Live() != 0 {
		t.Fatalf("Live = %d, want 0", e.Live())
	}
}

func TestCancelDaemonDoesNotUnderflowLive(t *testing.T) {
	e := NewEngine()
	d := e.ScheduleDaemon(5, func() {})
	e.Cancel(d)
	e.Cancel(d) // double cancel
	e.Schedule(1, func() {})
	if e.Live() != 1 {
		t.Fatalf("Live = %d, want 1", e.Live())
	}
	e.Run()
	if e.Live() != 0 {
		t.Fatalf("Live = %d after run, want 0", e.Live())
	}
}

func TestRunUntilWithDaemonsOnly(t *testing.T) {
	e := NewEngine()
	fired := false
	e.ScheduleDaemon(1, func() { fired = true })
	e.RunUntil(10)
	if fired {
		t.Fatal("daemon fired with no live work")
	}
}

func TestStepExecutesDaemons(t *testing.T) {
	// Step is a low-level debugging aid: it executes whatever is next,
	// daemon or not.
	e := NewEngine()
	fired := false
	e.ScheduleDaemon(1, func() { fired = true })
	if !e.Step() || !fired {
		t.Fatal("Step skipped the daemon event")
	}
}
