package sim

import (
	"testing"
)

// FuzzEngineOrder differentially fuzzes the hybrid wheel+heap engine
// against the pure min-heap reference (disableWheel): an identical
// randomized schedule/cancel/reschedule/advance script must fire the
// exact same events at the exact same (time, seq) order on both.
//
// The script decoder deliberately spreads delays across the wheel's
// regimes — same-instant runs (batch dispatch), sub-tick nears (heap
// direct), mid horizons (level 0/1 slots), and far horizons (level 2
// and overflow) — and advances through all three executors (RunBefore
// windows, RunUntil, Step) so cascades, flushes and batch drains all
// interleave with mutation.
func FuzzEngineOrder(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x01, 0x52, 0x02, 0xa4, 0x2d, 0x40, 0x03, 0x01, 0x2f, 0x80})
	f.Add([]byte{0x08, 0xff, 0x09, 0xfe, 0x0a, 0xfd, 0x2d, 0xff, 0x2e, 0x2f, 0xff})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x2d, 0x01, 0x03, 0x00, 0x03, 0x01})
	f.Add([]byte{0x10, 0xc3, 0x11, 0xc4, 0x04, 0x00, 0x91, 0x2d, 0xf0, 0x2e, 0x2e, 0x2e})
	// Found by fuzzing: a same-tick cross-level tie (one event filed
	// far, one filed near the same instant) that the settleHead
	// tie-break must cascade in the right order. See
	// TestWheelSameTickCrossLevelTie for the distilled case.
	f.Add([]byte("000000000000&0000000070000000000&000000071z00000000&00\xee700000000000711000700000000&0000000000000000700000"))
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 2048 {
			ops = ops[:2048]
		}
		type fire struct {
			id int
			t  float64
		}
		run := func(pureHeap bool) []fire {
			e := NewEngine()
			if pureHeap {
				e.disableWheel()
			}
			var log []fire
			var handles []Event
			id := 0
			var schedule func(delay float64, daemon bool)
			schedule = func(delay float64, daemon bool) {
				myID := id
				id++
				fn := func() {
					log = append(log, fire{myID, e.Now()})
					// Every third event schedules a child, so mutation
					// also happens from inside callbacks (including
					// mid-batch during RunBefore drains).
					if myID%3 == 0 {
						schedule(float64(myID%7)*0.37, false)
					}
				}
				if daemon {
					handles = append(handles, e.ScheduleDaemon(delay, fn))
				} else {
					handles = append(handles, e.Schedule(delay, fn))
				}
			}
			decodeDelay := func(d byte) float64 {
				switch d % 4 {
				case 0:
					return 0 // same instant: exercises batch runs
				case 1:
					return float64(d>>2) * 1e-3 // near: sub-tick, heap direct
				case 2:
					return float64(d>>2) * 1.9 // mid: wheel levels 0-1
				default:
					return 800 + float64(d>>2)*41.7 // far: level 2 / overflow
				}
			}
			i := 0
			next := func() byte {
				if i >= len(ops) {
					return 0
				}
				b := ops[i]
				i++
				return b
			}
			for i < len(ops) {
				b := next()
				switch b % 8 {
				case 0, 1, 2:
					schedule(decodeDelay(next()), false)
				case 3:
					schedule(decodeDelay(next()), true)
				case 4: // cancel a (possibly stale) handle
					if len(handles) > 0 {
						e.Cancel(handles[int(next())%len(handles)])
					}
				case 5: // reschedule: cancel + fresh schedule
					if len(handles) > 0 {
						e.Cancel(handles[int(next())%len(handles)])
					}
					schedule(decodeDelay(next()), false)
				case 6: // one conservative-sync window
					e.RunBefore(e.Now() + float64(next())*0.11)
				case 7:
					if next()%2 == 0 {
						e.Step()
					} else {
						e.RunUntil(e.Now() + float64(next())*2.3)
					}
				}
			}
			// Drain everything left, far timers included.
			e.RunBefore(1e12)
			return log
		}
		hybrid := run(false)
		reference := run(true)
		if len(hybrid) != len(reference) {
			t.Fatalf("hybrid fired %d events, pure heap fired %d", len(hybrid), len(reference))
		}
		for k := range hybrid {
			if hybrid[k] != reference[k] {
				t.Fatalf("fire %d diverged: hybrid (id=%d t=%v) vs pure heap (id=%d t=%v)",
					k, hybrid[k].id, hybrid[k].t, reference[k].id, reference[k].t)
			}
		}
	})
}
