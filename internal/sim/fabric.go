// Sharded parallel simulation: a Fabric partitions a model across
// several Engines ("shards") and advances them concurrently under
// conservative synchronization.
//
// The protocol is classic barrier-windowed conservative PDES. Let L be
// the fabric lookahead — the minimum virtual latency of any cross-shard
// interaction. Each round the fabric computes T, the earliest pending
// event or undelivered message anywhere, and executes every shard
// independently over the window [T, T+L). Any message posted at time
// s ∈ [T, T+L) is delivered no earlier than s+L ≥ T+L, i.e. strictly
// after the window, so no shard can receive an event inside a window it
// is already executing: shards never see each other mid-window and can
// run on separate goroutines.
//
// Determinism is by construction, independent of how many worker
// goroutines execute the windows:
//
//   - the logical shard topology and the window schedule are pure
//     functions of the model, not of the worker count;
//   - within a window each shard's engine is single-owner and executes
//     its own (time, seq)-ordered queue exactly as a serial run would;
//   - at each barrier, pending messages are delivered in the total
//     order (deliverTime, srcShard, srcSeq), so the destination
//     engine's sequence numbers — and therefore all later tie-breaks —
//     are identical whether the previous window ran on 1 worker or 16.
//
// A run with Workers: 1 is therefore bit-identical to one with
// Workers: N; the tests pin this with trace digests.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// fabricMsg is one timestamped inter-shard message.
type fabricMsg struct {
	deliver float64 // absolute delivery time at the destination
	src     int32
	dst     int32
	daemon  bool
	seq     uint64 // per-source sequence, the deterministic tie-break
	fn      func()
}

// FabricOptions configure NewFabric.
type FabricOptions struct {
	// Workers bounds how many shards execute a window concurrently.
	// 0 or 1 runs every window inline on the calling goroutine — the
	// serial mode parallel runs must be bit-identical to.
	Workers int
	// Debug enables the single-owner check: any Schedule/Cancel/Post
	// against a shard's engine while a window is executing and that
	// shard is not the one running panics instead of racing.
	Debug bool
}

// FabricStats counts fabric activity for diagnostics and tests.
type FabricStats struct {
	// Windows is the number of synchronization windows executed;
	// ParallelWindows the subset dispatched to the worker pool.
	Windows, ParallelWindows uint64
	// Messages is the number of cross-shard messages delivered.
	Messages uint64
	// MaxPending is the high-water mark of undelivered messages.
	MaxPending int
}

// Fabric owns a fixed set of shard engines and the conservative
// synchronization between them. Create one with NewFabric, wire the
// model so every cross-shard interaction goes through Shard.Post, then
// call Run.
type Fabric struct {
	shards    []*Shard
	lookahead float64
	workers   int
	debug     bool

	// Per-edge latency bounds. outLat[s] is the minimum virtual latency
	// of any message LEAVING shard s (≥ lookahead; Post clamps to it),
	// and minOut the fabric-wide minimum. When any shard's bound exceeds
	// the global lookahead (nonUniform), the window end is computed from
	// the per-shard bounds — see RunUntil — instead of the single global
	// clamp, widening windows around shards that only talk over slow
	// edges. boundHeap mirrors nextHeap with entries keyed by
	// next-event-time + outLat, sharing nextStamp invalidation.
	outLat     []float64
	minOut     float64
	nonUniform bool
	boundHeap  []nextEntry

	pending  msgHeap // undelivered messages, min-heap on (deliver, src, seq)
	liveMsgs int     // pending non-daemon messages
	inWindow atomic.Int32

	// Skew-friendly window accounting. With thousands of hollow shards
	// only a handful are active in any window, so the coordinator must
	// not scan every shard per window. nextHeap is a lazy min-heap of
	// (earliest event time, shard) entries — refreshNext pushes a fresh
	// entry and bumps the shard's stamp, invalidating older ones, which
	// are discarded when popped. liveSum tracks the cluster-wide
	// non-daemon event count incrementally via per-shard deltas. Both
	// are rebuilt from scratch at every RunUntil entry, the only point
	// where external callers may have scheduled work at a barrier.
	nextHeap  []nextEntry
	nextStamp []uint32
	prevLive  []int
	liveSum   int

	// Window dispatch. The coordinator publishes windowEnd and the
	// active set, then opens the window by bumping gen to an odd value;
	// workers (and the coordinating goroutine itself) claim shards off
	// active via the claim counter and bump done per shard finished.
	// Closing bumps gen back to even, and the coordinator waits for
	// busy == 0 — no worker inside a claim loop — before touching any
	// window state again, so stragglers never observe a half-built
	// window. Workers spin briefly between windows — barrier-to-barrier
	// gaps are microseconds — and park on cond after a bounded spin so
	// idle fabrics don't burn CPU.
	windowEnd float64
	active    []*Shard
	gen       atomic.Uint64 // odd = window open, even = closed
	claim     atomic.Int32
	done      atomic.Int32
	busy      atomic.Int32 // workers currently inside runClaims
	stop      atomic.Bool
	parked    atomic.Int32
	mu        sync.Mutex
	cond      *sync.Cond
	workerWG  sync.WaitGroup

	stats FabricStats
}

// nextEntry is one lazy next-event-time cache entry. An entry is valid
// only while its stamp matches the shard's current nextStamp; stale
// entries are skipped when they reach the heap top.
type nextEntry struct {
	time  float64
	shard int32
	stamp uint32
}

// Shard is one partition: an Engine plus the outbox that carries its
// cross-shard messages. All model state owned by the shard must only
// ever be touched from callbacks running on its engine (or at a
// barrier, before Run / between windows).
type Shard struct {
	f       *Fabric
	id      int32
	eng     *Engine
	outbox  []fabricMsg
	inbox   []fabricMsg // due messages, inserted by the shard's runner
	seq     uint64
	active  bool // member of the window being built (dedup flag)
	running atomic.Int32
	// busy accumulates wall-clock nanoseconds spent executing this
	// shard's windows. Written single-owner inside runWindow; the
	// window open/close atomics order it for barrier-time readers.
	busy int64
}

// NewFabric creates n shards, each with a fresh engine at time 0.
// lookahead is the fabric-wide minimum cross-shard latency L in virtual
// seconds; Post clamps smaller delays up to it.
func NewFabric(n int, lookahead float64, opts FabricOptions) *Fabric {
	if n < 1 {
		panic("sim: NewFabric needs at least one shard")
	}
	if lookahead <= 0 || math.IsNaN(lookahead) {
		panic("sim: NewFabric needs a positive lookahead")
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	f := &Fabric{lookahead: lookahead, workers: workers, debug: opts.Debug}
	f.cond = sync.NewCond(&f.mu)
	for i := 0; i < n; i++ {
		s := &Shard{f: f, id: int32(i), eng: NewEngine()}
		if opts.Debug {
			s := s
			s.eng.SetGuard(func() {
				if f.inWindow.Load() == 1 && s.running.Load() == 0 {
					panic(fmt.Sprintf("sim: engine of shard %d touched during a parallel window it is not executing", s.id))
				}
			})
		}
		f.shards = append(f.shards, s)
	}
	f.nextStamp = make([]uint32, n)
	f.prevLive = make([]int, n)
	f.outLat = make([]float64, n)
	for i := range f.outLat {
		f.outLat[i] = lookahead
	}
	f.minOut = lookahead
	return f
}

// SetShardOutLatency raises the minimum virtual latency of messages
// leaving shard i to lat (≥ the fabric lookahead). Posts from i are
// clamped up to it, and in exchange the conservative window bound
// treats i as unable to affect any other shard sooner — windows widen
// past the global lookahead whenever the shards due to run only talk
// over slow edges. Call before Run, as part of wiring the model; the
// bound is part of the model's timing, so it must not change mid-run.
func (f *Fabric) SetShardOutLatency(i int, lat float64) {
	if lat < f.lookahead || math.IsNaN(lat) {
		panic("sim: shard out-latency below fabric lookahead")
	}
	f.outLat[i] = lat
	f.nonUniform = false
	f.minOut = f.outLat[0]
	for _, l := range f.outLat {
		if l != f.lookahead {
			f.nonUniform = true
		}
		if l < f.minOut {
			f.minOut = l
		}
	}
}

// OutLatency returns shard i's outgoing-edge latency bound.
func (f *Fabric) OutLatency(i int) float64 { return f.outLat[i] }

// Shards returns the shard count.
func (f *Fabric) Shards() int { return len(f.shards) }

// Shard returns shard i.
func (f *Fabric) Shard(i int) *Shard { return f.shards[i] }

// Lookahead returns the fabric-wide minimum cross-shard latency.
func (f *Fabric) Lookahead() float64 { return f.lookahead }

// Workers returns the configured worker bound.
func (f *Fabric) Workers() int { return f.workers }

// Stats returns the accumulated fabric counters.
func (f *Fabric) Stats() FabricStats { return f.stats }

// InWindow reports whether a synchronization window is currently
// executing (used by debug assertions in higher layers).
func (f *Fabric) InWindow() bool { return f.inWindow.Load() == 1 }

// Now returns the maximum clock across all shards.
func (f *Fabric) Now() float64 {
	t := 0.0
	for _, s := range f.shards {
		if s.eng.now > t {
			t = s.eng.now
		}
	}
	return t
}

// Fired sums the executed-event counts of all shards.
func (f *Fabric) Fired() uint64 {
	var n uint64
	for _, s := range f.shards {
		n += s.eng.fired
	}
	return n
}

// ID returns the shard index.
func (s *Shard) ID() int { return int(s.id) }

// Engine returns the shard's engine. Schedule on it only from the
// shard's own callbacks (or before Run starts).
func (s *Shard) Engine() *Engine { return s.eng }

// Post sends fn to shard dst, to run after at least delay seconds of
// virtual time. Delays below the fabric lookahead are clamped up to it
// — that bound is what makes concurrent window execution safe. The
// message counts as live work (it keeps Run going); use PostDaemon for
// housekeeping traffic. Post must be called from a callback executing
// on this shard (or at a barrier).
func (s *Shard) Post(dst int, delay float64, fn func()) {
	s.post(dst, delay, fn, false)
}

// PostDaemon is Post for messages that should not keep the simulation
// alive (periodic control traffic, telemetry).
func (s *Shard) PostDaemon(dst int, delay float64, fn func()) {
	s.post(dst, delay, fn, true)
}

func (s *Shard) post(dst int, delay float64, fn func(), daemon bool) {
	if fn == nil {
		panic("sim: Post called with nil fn")
	}
	if dst < 0 || dst >= len(s.f.shards) {
		panic(fmt.Sprintf("sim: Post to unknown shard %d", dst))
	}
	if s.f.debug && s.f.inWindow.Load() == 1 && s.running.Load() == 0 {
		panic(fmt.Sprintf("sim: Post from shard %d outside its window", s.id))
	}
	if min := s.f.outLat[s.id]; delay < min || math.IsNaN(delay) {
		delay = min
	}
	s.outbox = append(s.outbox, fabricMsg{
		deliver: s.eng.now + delay,
		src:     s.id,
		dst:     int32(dst),
		daemon:  daemon,
		seq:     s.seq,
		fn:      fn,
	})
	s.seq++
}

// Run executes windows until no live work remains anywhere: every
// shard's non-daemon queue is drained and no non-daemon message is in
// flight (daemon-only activity does not keep the fabric alive, matching
// Engine.Run). It returns the final virtual time — the maximum shard
// clock.
func (f *Fabric) Run() float64 { return f.RunUntil(math.Inf(1)) }

// RunUntil is Run bounded by a virtual-time horizon: events and
// messages at or after limit are left pending. Unlike Engine.RunUntil
// the bound is exclusive and shard clocks are not advanced to it.
//
// Per-window cost is O(active·log shards + messages·log pending), not
// O(shards): with a heavily skewed population (a busy coordinator
// among thousands of mostly idle hollow datanode shards) the window
// loop touches only the shards that actually have work or mail due.
func (f *Fabric) RunUntil(limit float64) float64 {
	parallel := f.workers > 1 && len(f.shards) > 1
	if parallel {
		f.startWorkers()
		defer f.stopWorkers()
	}
	// External callers may have scheduled events, cancelled them, or
	// posted messages since the last run — rebuild the incremental
	// state from the ground truth once, then maintain it per window.
	f.refreshAll()
	for {
		if f.liveSum == 0 && f.liveMsgs == 0 {
			break
		}
		start, ok := f.peekNext()
		if !ok || start >= limit {
			break
		}
		// Conservative window end: the earliest instant anything running
		// in this window could affect another shard. With uniform edge
		// latencies that is exactly start + lookahead (the classic
		// global clamp); with per-shard bounds it is the minimum over
		// (a) each shard's next event plus its outgoing-edge bound and
		// (b) the earliest in-flight message plus the fabric-wide
		// minimum — any message delivered at d wakes computation no
		// earlier than d, whose posts land at d + outLat(dst) or later.
		var end float64
		if !f.nonUniform {
			end = start + f.lookahead
		} else {
			end = math.Inf(1)
			if b, ok := f.peekBound(); ok {
				end = b
			}
			if len(f.pending) > 0 {
				if mb := f.pending[0].deliver + f.minOut; mb < end {
					end = mb
				}
			}
		}
		if end > limit {
			end = limit
		}
		active := f.active[:0]
		// Route due mail; destinations join the window.
		for len(f.pending) > 0 && f.pending[0].deliver < end {
			m := f.popPending()
			dst := f.shards[m.dst]
			dst.inbox = append(dst.inbox, m)
			if !m.daemon {
				f.liveMsgs--
			}
			f.stats.Messages++
			if !dst.active {
				dst.active = true
				active = append(active, dst)
			}
		}
		// Shards whose next local event falls inside the window join
		// too. Their heap entries are consumed here; finishWindow
		// pushes fresh ones after the shard runs.
		for len(f.nextHeap) > 0 && f.nextHeap[0].time < end {
			e := f.popNext()
			if e.stamp != f.nextStamp[e.shard] {
				continue // stale
			}
			s := f.shards[e.shard]
			if !s.active {
				s.active = true
				active = append(active, s)
			}
		}
		f.active = active
		f.stats.Windows++
		if !parallel || len(active) < 2 {
			// Serial or single-shard window: run inline, no
			// synchronization cost.
			for _, s := range active {
				s.runWindow(end)
			}
			f.finishWindow()
			continue
		}
		f.stats.ParallelWindows++
		f.windowEnd = end
		f.claim.Store(0)
		f.done.Store(0)
		f.inWindow.Store(1)
		f.gen.Add(1) // open: gen becomes odd
		if f.parked.Load() > 0 {
			f.mu.Lock()
			f.cond.Broadcast()
			f.mu.Unlock()
		}
		// The coordinator is a worker too: claim shards until none are
		// left, then wait for every shard to finish and every straggler
		// to leave the claim loop before touching window state again.
		f.runClaims()
		for f.done.Load() != int32(len(active)) {
			runtime.Gosched()
		}
		f.gen.Add(1) // close: gen becomes even
		for f.busy.Load() != 0 {
			runtime.Gosched()
		}
		f.inWindow.Store(0)
		f.finishWindow()
	}
	return f.Now()
}

// finishWindow folds the shards that just ran back into the
// incremental window state: outboxes drain into the pending heap, the
// live-event sum absorbs each shard's delta, and a fresh next-event
// entry replaces the consumed one. Runs only at barriers.
func (f *Fabric) finishWindow() {
	for _, s := range f.active {
		s.active = false
		f.liveSum += s.eng.live - f.prevLive[s.id]
		f.prevLive[s.id] = s.eng.live
		for _, m := range s.outbox {
			if !m.daemon {
				f.liveMsgs++
			}
			f.pushPending(m)
		}
		s.outbox = s.outbox[:0]
		f.refreshNext(s)
	}
	if len(f.pending) > f.stats.MaxPending {
		f.stats.MaxPending = len(f.pending)
	}
}

// refreshAll rebuilds liveSum, the next-event heap, and the pending
// set from scratch — the O(shards) ground-truth scan, run once per
// RunUntil call to absorb any barrier-time scheduling by the caller.
func (f *Fabric) refreshAll() {
	f.liveSum = 0
	f.nextHeap = f.nextHeap[:0]
	f.boundHeap = f.boundHeap[:0]
	for _, s := range f.shards {
		f.liveSum += s.eng.live
		f.prevLive[s.id] = s.eng.live
		f.nextStamp[s.id]++
		if t, ok := s.eng.PeekTime(); ok {
			f.pushNext(nextEntry{time: t, shard: s.id, stamp: f.nextStamp[s.id]})
			if f.nonUniform {
				f.pushBound(nextEntry{time: t + f.outLat[s.id], shard: s.id, stamp: f.nextStamp[s.id]})
			}
		}
		for _, m := range s.outbox {
			if !m.daemon {
				f.liveMsgs++
			}
			f.pushPending(m)
		}
		s.outbox = s.outbox[:0]
	}
	if len(f.pending) > f.stats.MaxPending {
		f.stats.MaxPending = len(f.pending)
	}
}

// refreshNext replaces a shard's next-event cache entry. Bumping the
// stamp invalidates any older entry still in the heap; the new entry
// is pushed only if the shard has pending events.
func (f *Fabric) refreshNext(s *Shard) {
	f.nextStamp[s.id]++
	if t, ok := s.eng.PeekTime(); ok {
		f.pushNext(nextEntry{time: t, shard: s.id, stamp: f.nextStamp[s.id]})
		if f.nonUniform {
			f.pushBound(nextEntry{time: t + f.outLat[s.id], shard: s.id, stamp: f.nextStamp[s.id]})
		}
	}
}

// peekNext returns the earliest pending event or undelivered message
// anywhere, discarding stale next-event entries on the way.
func (f *Fabric) peekNext() (float64, bool) {
	for len(f.nextHeap) > 0 && f.nextHeap[0].stamp != f.nextStamp[f.nextHeap[0].shard] {
		f.popNext()
	}
	t, ok := math.Inf(1), false
	if len(f.nextHeap) > 0 {
		t, ok = f.nextHeap[0].time, true
	}
	if len(f.pending) > 0 && f.pending[0].deliver < t {
		t, ok = f.pending[0].deliver, true
	}
	return t, ok
}

// runWindow drains the shard's due-message inbox into its engine and
// executes every event before end. Single-owner: exactly one goroutine
// runs it per shard per window.
func (s *Shard) runWindow(end float64) {
	s.running.Store(1)
	t0 := time.Now()
	for i := range s.inbox {
		m := &s.inbox[i]
		s.eng.schedule(m.deliver, m.fn, m.daemon)
		m.fn = nil
	}
	s.inbox = s.inbox[:0]
	s.eng.RunBefore(end)
	s.busy += int64(time.Since(t0))
	s.running.Store(0)
}

// Occupancy reports per-shard execution load: events fired (a
// deterministic function of the model) and wall-clock seconds spent
// executing windows (host-dependent — the measured, not estimated,
// serial fraction). Call at a barrier or after Run.
func (f *Fabric) Occupancy() (events []uint64, busy []float64) {
	events = make([]uint64, len(f.shards))
	busy = make([]float64, len(f.shards))
	for i, s := range f.shards {
		events[i] = s.eng.fired
		busy[i] = float64(s.busy) / 1e9
	}
	return events, busy
}

// runClaims executes shards off the active set until none remain.
// Reading windowEnd/active here is safe: workers only enter between a
// window's open and close gen transitions (tracked in busy), and the
// coordinator never mutates either field while the window is open or a
// worker is still inside this loop.
func (f *Fabric) runClaims() {
	end := f.windowEnd
	for {
		i := int(f.claim.Add(1)) - 1
		if i >= len(f.active) {
			return
		}
		f.active[i].runWindow(end)
		f.done.Add(1)
	}
}

// worker is the spin-then-park loop of one pool goroutine. Between
// windows the coordinator is only microseconds away, so workers spin
// (yielding) for a bounded count before parking on the fabric's cond.
func (f *Fabric) worker() {
	defer f.workerWG.Done()
	const spinLimit = 1 << 13
	last := f.gen.Load()
	spins := 0
	for {
		g := f.gen.Load()
		if g != last && g&1 == 1 {
			// A window is open. Register in busy before claiming, then
			// re-check: if the window closed in between, back out —
			// the coordinator may already be mutating window state.
			f.busy.Add(1)
			if f.gen.Load() == g {
				f.runClaims()
			}
			f.busy.Add(-1)
			last, spins = g, 0
			continue
		}
		if f.stop.Load() {
			return
		}
		if spins < spinLimit {
			spins++
			runtime.Gosched()
			continue
		}
		f.mu.Lock()
		f.parked.Add(1)
		for g := f.gen.Load(); (g == last || g&1 == 0) && !f.stop.Load(); g = f.gen.Load() {
			f.cond.Wait()
		}
		f.parked.Add(-1)
		f.mu.Unlock()
		spins = 0
	}
}

func (f *Fabric) startWorkers() {
	f.stop.Store(false)
	n := f.workers
	if n > len(f.shards) {
		n = len(f.shards)
	}
	// The coordinating goroutine claims shards too: n-1 pool goroutines
	// plus the coordinator equal the configured parallelism.
	for i := 0; i < n-1; i++ {
		f.workerWG.Add(1)
		go f.worker()
	}
}

func (f *Fabric) stopWorkers() {
	f.stop.Store(true)
	f.mu.Lock()
	f.cond.Broadcast()
	f.mu.Unlock()
	f.workerWG.Wait()
}

// msgHeap is a binary min-heap of undelivered messages ordered by the
// deterministic delivery order (deliver, src, seq). Popping messages in
// heap order yields exactly the sequence a global sort would — the key
// is a total order (seq is unique per source), so heap and sort agree —
// which keeps routing independent of the order shards folded their
// outboxes in.
type msgHeap []fabricMsg

func msgAfter(a, b fabricMsg) bool {
	if a.deliver != b.deliver {
		return a.deliver > b.deliver
	}
	if a.src != b.src {
		return a.src > b.src
	}
	return a.seq > b.seq
}

func (f *Fabric) pushPending(m fabricMsg) {
	h := append(f.pending, m)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !msgAfter(h[p], h[i]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	f.pending = h
}

// popPending removes and returns the earliest pending message, clearing
// the vacated slot so the closure does not leak through the backing
// array.
func (f *Fabric) popPending() fabricMsg {
	h := f.pending
	m := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = fabricMsg{}
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && msgAfter(h[min], h[l]) {
			min = l
		}
		if r < n && msgAfter(h[min], h[r]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	f.pending = h
	return m
}

// peekBound returns the smallest valid per-shard affect bound
// (next-event time + outgoing-edge latency), discarding stale entries.
func (f *Fabric) peekBound() (float64, bool) {
	for len(f.boundHeap) > 0 && f.boundHeap[0].stamp != f.nextStamp[f.boundHeap[0].shard] {
		f.popBound()
	}
	if len(f.boundHeap) == 0 {
		return 0, false
	}
	return f.boundHeap[0].time, true
}

func (f *Fabric) pushBound(e nextEntry) {
	h := append(f.boundHeap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !nextAfter(h[p], h[i]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	f.boundHeap = h
}

func (f *Fabric) popBound() nextEntry {
	h := f.boundHeap
	e := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && nextAfter(h[min], h[l]) {
			min = l
		}
		if r < n && nextAfter(h[min], h[r]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	f.boundHeap = h
	return e
}

// nextAfter orders next-event cache entries by (time, shard); the
// shard tie-break keeps heap behavior deterministic, though window
// membership — a set — is what consumers read.
func nextAfter(a, b nextEntry) bool {
	if a.time != b.time {
		return a.time > b.time
	}
	return a.shard > b.shard
}

func (f *Fabric) pushNext(e nextEntry) {
	h := append(f.nextHeap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !nextAfter(h[p], h[i]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	f.nextHeap = h
}

func (f *Fabric) popNext() nextEntry {
	h := f.nextHeap
	e := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && nextAfter(h[min], h[l]) {
			min = l
		}
		if r < n && nextAfter(h[min], h[r]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	f.nextHeap = h
	return e
}
