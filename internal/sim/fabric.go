// Sharded parallel simulation: a Fabric partitions a model across
// several Engines ("shards") and advances them concurrently under
// conservative synchronization.
//
// The protocol is classic barrier-windowed conservative PDES. Let L be
// the fabric lookahead — the minimum virtual latency of any cross-shard
// interaction. Each round the fabric computes T, the earliest pending
// event or undelivered message anywhere, and executes every shard
// independently over the window [T, T+L). Any message posted at time
// s ∈ [T, T+L) is delivered no earlier than s+L ≥ T+L, i.e. strictly
// after the window, so no shard can receive an event inside a window it
// is already executing: shards never see each other mid-window and can
// run on separate goroutines.
//
// Determinism is by construction, independent of how many worker
// goroutines execute the windows:
//
//   - the logical shard topology and the window schedule are pure
//     functions of the model, not of the worker count;
//   - within a window each shard's engine is single-owner and executes
//     its own (time, seq)-ordered queue exactly as a serial run would;
//   - at each barrier, pending messages are delivered in the total
//     order (deliverTime, srcShard, srcSeq), so the destination
//     engine's sequence numbers — and therefore all later tie-breaks —
//     are identical whether the previous window ran on 1 worker or 16.
//
// A run with Workers: 1 is therefore bit-identical to one with
// Workers: N; the tests pin this with trace digests.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// fabricMsg is one timestamped inter-shard message.
type fabricMsg struct {
	deliver float64 // absolute delivery time at the destination
	src     int32
	dst     int32
	daemon  bool
	seq     uint64 // per-source sequence, the deterministic tie-break
	fn      func()
}

// FabricOptions configure NewFabric.
type FabricOptions struct {
	// Workers bounds how many shards execute a window concurrently.
	// 0 or 1 runs every window inline on the calling goroutine — the
	// serial mode parallel runs must be bit-identical to.
	Workers int
	// Debug enables the single-owner check: any Schedule/Cancel/Post
	// against a shard's engine while a window is executing and that
	// shard is not the one running panics instead of racing.
	Debug bool
}

// FabricStats counts fabric activity for diagnostics and tests.
type FabricStats struct {
	// Windows is the number of synchronization windows executed;
	// ParallelWindows the subset dispatched to the worker pool.
	Windows, ParallelWindows uint64
	// Messages is the number of cross-shard messages delivered.
	Messages uint64
	// MaxPending is the high-water mark of undelivered messages.
	MaxPending int
}

// Fabric owns a fixed set of shard engines and the conservative
// synchronization between them. Create one with NewFabric, wire the
// model so every cross-shard interaction goes through Shard.Post, then
// call Run.
type Fabric struct {
	shards    []*Shard
	lookahead float64
	workers   int
	debug     bool

	pending  []fabricMsg // undelivered cross-shard messages
	liveMsgs int         // pending non-daemon messages
	inWindow atomic.Int32

	// Window dispatch. The coordinator publishes windowEnd and the
	// active set, then opens the window by bumping gen to an odd value;
	// workers (and the coordinating goroutine itself) claim shards off
	// active via the claim counter and bump done per shard finished.
	// Closing bumps gen back to even, and the coordinator waits for
	// busy == 0 — no worker inside a claim loop — before touching any
	// window state again, so stragglers never observe a half-built
	// window. Workers spin briefly between windows — barrier-to-barrier
	// gaps are microseconds — and park on cond after a bounded spin so
	// idle fabrics don't burn CPU.
	windowEnd float64
	active    []*Shard
	gen       atomic.Uint64 // odd = window open, even = closed
	claim     atomic.Int32
	done      atomic.Int32
	busy      atomic.Int32 // workers currently inside runClaims
	stop      atomic.Bool
	parked    atomic.Int32
	mu        sync.Mutex
	cond      *sync.Cond
	workerWG  sync.WaitGroup

	// scratch buffer reused across windows.
	deliverBuf []fabricMsg

	stats FabricStats
}

// Shard is one partition: an Engine plus the outbox that carries its
// cross-shard messages. All model state owned by the shard must only
// ever be touched from callbacks running on its engine (or at a
// barrier, before Run / between windows).
type Shard struct {
	f       *Fabric
	id      int32
	eng     *Engine
	outbox  []fabricMsg
	inbox   []fabricMsg // due messages, inserted by the shard's runner
	seq     uint64
	running atomic.Int32
}

// NewFabric creates n shards, each with a fresh engine at time 0.
// lookahead is the fabric-wide minimum cross-shard latency L in virtual
// seconds; Post clamps smaller delays up to it.
func NewFabric(n int, lookahead float64, opts FabricOptions) *Fabric {
	if n < 1 {
		panic("sim: NewFabric needs at least one shard")
	}
	if lookahead <= 0 || math.IsNaN(lookahead) {
		panic("sim: NewFabric needs a positive lookahead")
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	f := &Fabric{lookahead: lookahead, workers: workers, debug: opts.Debug}
	f.cond = sync.NewCond(&f.mu)
	for i := 0; i < n; i++ {
		s := &Shard{f: f, id: int32(i), eng: NewEngine()}
		if opts.Debug {
			s := s
			s.eng.SetGuard(func() {
				if f.inWindow.Load() == 1 && s.running.Load() == 0 {
					panic(fmt.Sprintf("sim: engine of shard %d touched during a parallel window it is not executing", s.id))
				}
			})
		}
		f.shards = append(f.shards, s)
	}
	return f
}

// Shards returns the shard count.
func (f *Fabric) Shards() int { return len(f.shards) }

// Shard returns shard i.
func (f *Fabric) Shard(i int) *Shard { return f.shards[i] }

// Lookahead returns the fabric-wide minimum cross-shard latency.
func (f *Fabric) Lookahead() float64 { return f.lookahead }

// Workers returns the configured worker bound.
func (f *Fabric) Workers() int { return f.workers }

// Stats returns the accumulated fabric counters.
func (f *Fabric) Stats() FabricStats { return f.stats }

// InWindow reports whether a synchronization window is currently
// executing (used by debug assertions in higher layers).
func (f *Fabric) InWindow() bool { return f.inWindow.Load() == 1 }

// Now returns the maximum clock across all shards.
func (f *Fabric) Now() float64 {
	t := 0.0
	for _, s := range f.shards {
		if s.eng.now > t {
			t = s.eng.now
		}
	}
	return t
}

// Fired sums the executed-event counts of all shards.
func (f *Fabric) Fired() uint64 {
	var n uint64
	for _, s := range f.shards {
		n += s.eng.fired
	}
	return n
}

// ID returns the shard index.
func (s *Shard) ID() int { return int(s.id) }

// Engine returns the shard's engine. Schedule on it only from the
// shard's own callbacks (or before Run starts).
func (s *Shard) Engine() *Engine { return s.eng }

// Post sends fn to shard dst, to run after at least delay seconds of
// virtual time. Delays below the fabric lookahead are clamped up to it
// — that bound is what makes concurrent window execution safe. The
// message counts as live work (it keeps Run going); use PostDaemon for
// housekeeping traffic. Post must be called from a callback executing
// on this shard (or at a barrier).
func (s *Shard) Post(dst int, delay float64, fn func()) {
	s.post(dst, delay, fn, false)
}

// PostDaemon is Post for messages that should not keep the simulation
// alive (periodic control traffic, telemetry).
func (s *Shard) PostDaemon(dst int, delay float64, fn func()) {
	s.post(dst, delay, fn, true)
}

func (s *Shard) post(dst int, delay float64, fn func(), daemon bool) {
	if fn == nil {
		panic("sim: Post called with nil fn")
	}
	if dst < 0 || dst >= len(s.f.shards) {
		panic(fmt.Sprintf("sim: Post to unknown shard %d", dst))
	}
	if s.f.debug && s.f.inWindow.Load() == 1 && s.running.Load() == 0 {
		panic(fmt.Sprintf("sim: Post from shard %d outside its window", s.id))
	}
	if delay < s.f.lookahead || math.IsNaN(delay) {
		delay = s.f.lookahead
	}
	s.outbox = append(s.outbox, fabricMsg{
		deliver: s.eng.now + delay,
		src:     s.id,
		dst:     int32(dst),
		daemon:  daemon,
		seq:     s.seq,
		fn:      fn,
	})
	s.seq++
}

// Run executes windows until no live work remains anywhere: every
// shard's non-daemon queue is drained and no non-daemon message is in
// flight (daemon-only activity does not keep the fabric alive, matching
// Engine.Run). It returns the final virtual time — the maximum shard
// clock.
func (f *Fabric) Run() float64 { return f.RunUntil(math.Inf(1)) }

// RunUntil is Run bounded by a virtual-time horizon: events and
// messages at or after limit are left pending. Unlike Engine.RunUntil
// the bound is exclusive and shard clocks are not advanced to it.
func (f *Fabric) RunUntil(limit float64) float64 {
	parallel := f.workers > 1 && len(f.shards) > 1
	if parallel {
		f.startWorkers()
		defer f.stopWorkers()
	}
	for {
		f.collect()
		if f.totalLive() == 0 && f.liveMsgs == 0 {
			break
		}
		start, ok := f.nextTime()
		if !ok || start >= limit {
			break
		}
		end := start + f.lookahead
		if end > limit {
			end = limit
		}
		f.routeBefore(end)
		active := f.active[:0]
		for _, s := range f.shards {
			if len(s.inbox) > 0 {
				active = append(active, s)
			} else if t, ok := s.eng.PeekTime(); ok && t < end {
				active = append(active, s)
			}
		}
		f.active = active
		f.stats.Windows++
		if !parallel || len(active) < 2 {
			// Serial or single-shard window: run inline, no
			// synchronization cost.
			for _, s := range active {
				s.runWindow(end)
			}
			continue
		}
		f.stats.ParallelWindows++
		f.windowEnd = end
		f.claim.Store(0)
		f.done.Store(0)
		f.inWindow.Store(1)
		f.gen.Add(1) // open: gen becomes odd
		if f.parked.Load() > 0 {
			f.mu.Lock()
			f.cond.Broadcast()
			f.mu.Unlock()
		}
		// The coordinator is a worker too: claim shards until none are
		// left, then wait for every shard to finish and every straggler
		// to leave the claim loop before touching window state again.
		f.runClaims()
		for f.done.Load() != int32(len(active)) {
			runtime.Gosched()
		}
		f.gen.Add(1) // close: gen becomes even
		for f.busy.Load() != 0 {
			runtime.Gosched()
		}
		f.inWindow.Store(0)
	}
	return f.Now()
}

// runWindow drains the shard's due-message inbox into its engine and
// executes every event before end. Single-owner: exactly one goroutine
// runs it per shard per window.
func (s *Shard) runWindow(end float64) {
	s.running.Store(1)
	for i := range s.inbox {
		m := &s.inbox[i]
		s.eng.schedule(m.deliver, m.fn, m.daemon)
		m.fn = nil
	}
	s.inbox = s.inbox[:0]
	s.eng.RunBefore(end)
	s.running.Store(0)
}

// runClaims executes shards off the active set until none remain.
// Reading windowEnd/active here is safe: workers only enter between a
// window's open and close gen transitions (tracked in busy), and the
// coordinator never mutates either field while the window is open or a
// worker is still inside this loop.
func (f *Fabric) runClaims() {
	end := f.windowEnd
	for {
		i := int(f.claim.Add(1)) - 1
		if i >= len(f.active) {
			return
		}
		f.active[i].runWindow(end)
		f.done.Add(1)
	}
}

// worker is the spin-then-park loop of one pool goroutine. Between
// windows the coordinator is only microseconds away, so workers spin
// (yielding) for a bounded count before parking on the fabric's cond.
func (f *Fabric) worker() {
	defer f.workerWG.Done()
	const spinLimit = 1 << 13
	last := f.gen.Load()
	spins := 0
	for {
		g := f.gen.Load()
		if g != last && g&1 == 1 {
			// A window is open. Register in busy before claiming, then
			// re-check: if the window closed in between, back out —
			// the coordinator may already be mutating window state.
			f.busy.Add(1)
			if f.gen.Load() == g {
				f.runClaims()
			}
			f.busy.Add(-1)
			last, spins = g, 0
			continue
		}
		if f.stop.Load() {
			return
		}
		if spins < spinLimit {
			spins++
			runtime.Gosched()
			continue
		}
		f.mu.Lock()
		f.parked.Add(1)
		for g := f.gen.Load(); (g == last || g&1 == 0) && !f.stop.Load(); g = f.gen.Load() {
			f.cond.Wait()
		}
		f.parked.Add(-1)
		f.mu.Unlock()
		spins = 0
	}
}

func (f *Fabric) startWorkers() {
	f.stop.Store(false)
	n := f.workers
	if n > len(f.shards) {
		n = len(f.shards)
	}
	// The coordinating goroutine claims shards too: n-1 pool goroutines
	// plus the coordinator equal the configured parallelism.
	for i := 0; i < n-1; i++ {
		f.workerWG.Add(1)
		go f.worker()
	}
}

func (f *Fabric) stopWorkers() {
	f.stop.Store(true)
	f.mu.Lock()
	f.cond.Broadcast()
	f.mu.Unlock()
	f.workerWG.Wait()
}

// collect moves every shard's outbox into the pending set. Runs only at
// barriers (single-threaded).
func (f *Fabric) collect() {
	for _, s := range f.shards {
		for _, m := range s.outbox {
			if !m.daemon {
				f.liveMsgs++
			}
			f.pending = append(f.pending, m)
		}
		s.outbox = s.outbox[:0]
	}
	if len(f.pending) > f.stats.MaxPending {
		f.stats.MaxPending = len(f.pending)
	}
}

// totalLive sums the shards' pending non-daemon events.
func (f *Fabric) totalLive() int {
	n := 0
	for _, s := range f.shards {
		n += s.eng.live
	}
	return n
}

// nextTime returns the earliest pending event or message anywhere.
func (f *Fabric) nextTime() (float64, bool) {
	t, ok := math.Inf(1), false
	for _, s := range f.shards {
		if pt, has := s.eng.PeekTime(); has && pt < t {
			t, ok = pt, true
		}
	}
	for i := range f.pending {
		if f.pending[i].deliver < t {
			t, ok = f.pending[i].deliver, true
		}
	}
	return t, ok
}

// routeBefore moves every pending message with deliver < end into its
// destination shard's inbox, in the deterministic total order
// (deliverTime, srcShard, srcSeq). The destination's runner inserts its
// inbox — in that order — before executing the window, so the engine's
// event sequence numbers, and with them all same-instant tie-breaks,
// are identical for every worker count. Routing is the only serial
// message cost; the heap insertions happen on the shards, in parallel.
func (f *Fabric) routeBefore(end float64) {
	due := f.deliverBuf[:0]
	rest := f.pending[:0]
	for _, m := range f.pending {
		if m.deliver < end {
			due = append(due, m)
		} else {
			rest = append(rest, m)
		}
	}
	// Clear the tail so retained closures don't leak.
	for i := len(rest); i < len(f.pending); i++ {
		f.pending[i] = fabricMsg{}
	}
	f.pending = rest
	f.deliverBuf = due
	if len(due) == 0 {
		return
	}
	sortMsgs(due)
	for i := range due {
		m := &due[i]
		dst := f.shards[m.dst]
		dst.inbox = append(dst.inbox, *m)
		if !m.daemon {
			f.liveMsgs--
		}
		f.stats.Messages++
		m.fn = nil
	}
}

// sortMsgs orders messages by (deliver, src, seq) — insertion sort; the
// per-window batch is small and usually nearly sorted.
func sortMsgs(ms []fabricMsg) {
	for i := 1; i < len(ms); i++ {
		m := ms[i]
		j := i - 1
		for j >= 0 && msgAfter(ms[j], m) {
			ms[j+1] = ms[j]
			j--
		}
		ms[j+1] = m
	}
}

func msgAfter(a, b fabricMsg) bool {
	if a.deliver != b.deliver {
		return a.deliver > b.deliver
	}
	if a.src != b.src {
		return a.src > b.src
	}
	return a.seq > b.seq
}
