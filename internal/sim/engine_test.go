package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at float64 = -1
	e.Schedule(2.5, func() { at = e.Now() })
	e.Run()
	if at != 2.5 {
		t.Fatalf("event fired at %v, want 2.5", at)
	}
	if e.Now() != 2.5 {
		t.Fatalf("Now() = %v, want 2.5", e.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		e.Schedule(d, func() { got = append(got, d) })
	}
	e.Run()
	want := []float64{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time order = %v, want FIFO", got)
		}
	}
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(3, func() {
		e.Schedule(-5, func() {
			fired = true
			if e.Now() != 3 {
				t.Errorf("negative-delay event fired at %v, want 3", e.Now())
			}
		})
	})
	e.Run()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
}

func TestAtBeforeNowClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		e.At(2, func() {
			if e.Now() != 10 {
				t.Errorf("past At fired at %v, want 10", e.Now())
			}
		})
	})
	e.Run()
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestCancelZeroHandleIsNoop(t *testing.T) {
	e := NewEngine()
	e.Cancel(Event{}) // must not panic
}

func TestCancelFiredEventIsNoop(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(1, func() {})
	e.Run()
	e.Cancel(ev) // must not panic
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, d := range []float64{1, 2, 3, 4} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if e.Now() != 2.5 {
		t.Fatalf("Now() = %v, want clock advanced to limit 2.5", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("after Run fired %v, want all 4", fired)
	}
}

func TestRunUntilInclusiveAtLimit(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(2, func() { fired = true })
	e.RunUntil(2)
	if !fired {
		t.Fatal("event exactly at the limit did not fire")
	}
}

func TestHaltStopsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 5; i++ {
		e.Schedule(float64(i+1), func() {
			count++
			if count == 2 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d, want Run halted after 2 events", count)
	}
	// Run resumes afterwards.
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d after resume, want 5", count)
	}
}

func TestStepExecutesOneEvent(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func() { count++ })
	e.Schedule(2, func() { count++ })
	if !e.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if count != 1 {
		t.Fatalf("count = %d after one Step, want 1", count)
	}
	if !e.Step() || e.Step() {
		t.Fatal("Step count mismatch")
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(float64(i), func() {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.Schedule(0.01, recurse)
		}
	}
	e.Schedule(0, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if got, want := e.Now(), 0.01*99; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAtNilFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil) did not panic")
		}
	}()
	NewEngine().At(1, nil)
}

func TestNaNDelayTreatedAsZero(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(math.NaN(), func() { fired = true })
	e.Run()
	if !fired || e.Now() != 0 {
		t.Fatalf("NaN delay: fired=%v now=%v", fired, e.Now())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the engine terminates with Now equal to the max delay.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine()
		var fired []float64
		maxD := 0.0
		for _, r := range raw {
			d := float64(r) / 100.0
			if d > maxD {
				maxD = d
			}
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		return e.Now() == maxD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: random interleavings of scheduling and cancelling never fire a
// cancelled event and always fire every non-cancelled one.
func TestPropertyCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		n := 1 + rng.Intn(50)
		fired := make([]bool, n)
		evs := make([]Event, n)
		cancelled := make([]bool, n)
		for i := 0; i < n; i++ {
			i := i
			evs[i] = e.Schedule(rng.Float64()*10, func() { fired[i] = true })
		}
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				e.Cancel(evs[i])
				cancelled[i] = true
			}
		}
		e.Run()
		for i := 0; i < n; i++ {
			if cancelled[i] && fired[i] {
				t.Fatalf("trial %d: cancelled event %d fired", trial, i)
			}
			if !cancelled[i] && !fired[i] {
				t.Fatalf("trial %d: live event %d did not fire", trial, i)
			}
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []float64 {
		e := NewEngine()
		rng := rand.New(rand.NewSource(7))
		var trace []float64
		var spawn func()
		spawn = func() {
			trace = append(trace, e.Now())
			if len(trace) < 200 {
				e.Schedule(rng.Float64(), spawn)
				if rng.Intn(3) == 0 {
					e.Schedule(rng.Float64(), func() { trace = append(trace, -e.Now()) })
				}
			}
		}
		e.Schedule(0, spawn)
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestStringer(t *testing.T) {
	e := NewEngine()
	if e.String() == "" {
		t.Fatal("String() empty")
	}
}

// --- freelist & generation-counter behavior ---

func TestFreelistReusesFiredRecord(t *testing.T) {
	e := NewEngine()
	nop := func() {}
	h1 := e.Schedule(1, nop)
	e.Run()
	h2 := e.Schedule(1, nop)
	if h1.ev != h2.ev {
		t.Fatal("fired event record was not recycled")
	}
	if h1.Scheduled() {
		t.Fatal("stale handle reports Scheduled after its record was reused")
	}
	if !h2.Scheduled() {
		t.Fatal("fresh handle on recycled record not Scheduled")
	}
}

func TestStaleCancelDoesNotKillRecycledEvent(t *testing.T) {
	e := NewEngine()
	nop := func() {}
	h1 := e.Schedule(1, nop)
	e.Cancel(h1)
	fired := false
	h2 := e.Schedule(1, func() { fired = true })
	if h1.ev != h2.ev {
		t.Fatal("cancelled event record was not recycled")
	}
	e.Cancel(h1) // stale: generation mismatch, must be a no-op
	if !h2.Scheduled() {
		t.Fatal("stale Cancel removed the recycled event")
	}
	e.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestCancelRemovesFromQueueImmediately(t *testing.T) {
	e := NewEngine()
	nop := func() {}
	h := e.Schedule(1, nop)
	e.Schedule(2, nop)
	e.Schedule(3, nop)
	if e.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", e.Pending())
	}
	e.Cancel(h)
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d after Cancel, want 2 (no tombstones)", e.Pending())
	}
}

func TestCancelDuringOwnCallbackIsNoop(t *testing.T) {
	e := NewEngine()
	var self Event
	ok := true
	self = e.Schedule(1, func() {
		// The record is already recycled when fn runs; cancelling the
		// handle must not disturb anything.
		e.Cancel(self)
		ok = e.Pending() == 0
	})
	e.Run()
	if !ok {
		t.Fatal("self-cancel inside callback disturbed the queue")
	}
}

func TestHandleTimeSurvivesRecycling(t *testing.T) {
	e := NewEngine()
	nop := func() {}
	h1 := e.Schedule(2.5, nop)
	e.Run()
	e.Schedule(7, nop) // reuses the record with a different time
	if h1.Time() != 2.5 {
		t.Fatalf("stale handle Time = %v, want 2.5", h1.Time())
	}
}

func TestCancelledPropertyRandomized(t *testing.T) {
	// Interleave schedule/cancel/run and check the freelist never
	// double-frees: every live event fires exactly once.
	rng := rand.New(rand.NewSource(11))
	e := NewEngine()
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		count := 0
		handles := make([]Event, 0, n)
		for i := 0; i < n; i++ {
			handles = append(handles, e.Schedule(rng.Float64(), func() { count++ }))
		}
		cancelled := 0
		var dead []Event
		for _, h := range handles {
			if rng.Intn(3) == 0 {
				e.Cancel(h)
				dead = append(dead, h)
				cancelled++
			}
		}
		// Stale double-cancels must be no-ops.
		for _, h := range dead {
			if rng.Intn(2) == 0 {
				e.Cancel(h)
			}
		}
		e.Run()
		if count != n-cancelled {
			t.Fatalf("trial %d: fired %d, want %d", trial, count, n-cancelled)
		}
	}
}

// TestEventLoopSteadyStateAllocFree pins the tentpole guarantee behind
// BenchmarkEngineEventLoop in the regular test suite: once warm, the
// schedule/cancel/fire cycle performs zero heap allocations.
func TestEventLoopSteadyStateAllocFree(t *testing.T) {
	e := NewEngine()
	nop := func() {}
	cycle := func() {
		doomed := e.Schedule(1.0, nop)
		e.Schedule(0.5, nop)
		e.Cancel(doomed)
		e.Run()
	}
	for i := 0; i < 100; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(500, cycle); allocs != 0 {
		t.Fatalf("steady-state event loop allocates %v allocs/op, want 0", allocs)
	}
}
