package sim

import (
	"testing"
)

// BenchmarkEngineEventLoop measures the steady-state cost of one
// schedule/cancel/fire cycle. With the generation-counted freelist and
// the specialized heap it must report 0 allocs/op — CI fails otherwise.
func BenchmarkEngineEventLoop(b *testing.B) {
	e := NewEngine()
	nop := func() {}
	cycle := func() {
		doomed := e.Schedule(1.0, nop)
		e.Schedule(0.5, nop)
		e.Schedule(1.5, nop)
		e.Cancel(doomed)
		e.Run()
	}
	// Warm the freelist and heap capacity so one-time growth is not
	// attributed to the measured iterations (matters at -benchtime 1x).
	for i := 0; i < 64; i++ {
		cycle()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}

// BenchmarkPSResourceChurn measures submit/advance/complete churn on a
// processor-sharing resource with a concurrency-dependent capacity
// curve and ~32 jobs in flight — the pattern every simulated device
// produces under load.
func BenchmarkPSResourceChurn(b *testing.B) {
	e := NewEngine()
	curve := func(n int) float64 {
		if n > 4 {
			return 90
		}
		return 100
	}
	r := NewPSResource(e, "disk", curve)
	for i := 0; i < 64; i++ { // warm up the job heap and event freelist
		r.Submit(1+float64(i%17)*3.7, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Submit(1+float64(i%17)*3.7, nil)
		for r.InFlight() > 32 {
			if !e.Step() {
				b.Fatal("engine drained with jobs in flight")
			}
		}
	}
}
