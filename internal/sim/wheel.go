package sim

// Hierarchical timing wheel fronting the event min-heap.
//
// The heap alone makes every schedule and fire O(log n) in the total
// number of pending events — including far-future timers (fault
// schedules, coordination timeouts, job arrivals) that churn through
// every sift even though they will not fire for a long time. The wheel
// takes those out of the heap's way: an event further out than a
// couple of slots is filed O(1) under a slot keyed by its coarse tick,
// and only moves into the heap ("flushes") when the clock needs it.
//
// Order is preserved exactly. The wheel never fires anything itself;
// flushing pushes a slot's events into the heap, where the (time, seq)
// comparison re-establishes the precise total order the pure heap
// would have produced. The hybrid is therefore observationally
// identical to the inline min-heap — FuzzEngineOrder pins this.
//
// Geometry. wheelLevels levels of wheelSize slots each; level l slots
// are (wheelTick << wheelBits*l) seconds wide. With 3 levels of 256
// slots at a 1/64 s base tick the wheel spans ~2^24 ticks ≈ 3 virtual
// days; events beyond that (and events with absurd or non-finite
// times) simply stay in the heap, as they always did.
//
// Invariants:
//   - cursor is a tick no resident event precedes: slots below it are
//     flushed or empty. It advances only inside flushes, in tick order.
//   - at every level, an occupied slot holds events of a single slot
//     tick in [cursor>>sh, cursor>>sh + wheelSize) — inserts pick the
//     lowest level where that window covers the event.
//   - low is a conservative lower bound (in seconds) on the earliest
//     resident event; +Inf when the wheel is empty. Pop paths flush
//     while low is at or below the heap head, so the head they observe
//     is the true minimum.
//
// Cancellation unlinks eagerly (the slot is recoverable from the
// event's index encoding), so the wheel holds no tombstones and
// Pending stays exact.

import (
	"math"
	"math/bits"
)

const (
	wheelBits   = 8
	wheelSize   = 1 << wheelBits // slots per level
	wheelWords  = wheelSize / 64
	wheelLevels = 3

	// wheelTick is the level-0 slot width in virtual seconds. 1/64 s
	// keeps tick<->time conversion exact for dyadic times and puts the
	// simulator's near-term completion traffic (a few ms to a few tens
	// of ms) straight into the heap via the near check below.
	wheelTick    = 1.0 / 64
	wheelInvTick = 64.0

	// wheelNearSlots: events within this many slots of the cursor go
	// straight to the heap — they would flush almost immediately, so
	// filing them would only add constant overhead to the hot path.
	wheelNearSlots = 2

	// wheelMaxTime guards the float->tick conversion; times at or
	// beyond it (including +Inf and NaN-clamped values) stay heap-side.
	wheelMaxTime = float64(int64(1) << 40)
)

// event.index markers for records not resident in the heap.
const (
	idxFired     = -1 // popped (about to fire) or recycled
	idxBatch     = -3 // drained into the RunBefore same-instant batch
	idxWheelBase = -4 // wheel-resident; see wheelIdx
)

// wheelIdx encodes a wheel position into the event's index field so
// Cancel can find the slot without a search across levels.
func wheelIdx(level, slot int) int32 {
	return int32(idxWheelBase - (level<<wheelBits | slot))
}

// wheel is the engine-embedded timer wheel state.
type wheel struct {
	cursor int64   // first tick the wheel may still hold
	count  int     // resident events across all levels
	low    float64 // lower bound on the earliest resident time; +Inf when empty
	bitmap [wheelLevels][wheelWords]uint64
	slot   [wheelLevels][wheelSize]*event
}

// wheelInsert files ev under its slot, or pushes it on the heap when it
// is too near (a flush would be immediate), too far (beyond the top
// level's span), or the wheel is disabled.
func (e *Engine) wheelInsert(ev *event) {
	t := ev.time
	if e.noWheel || !(t < wheelMaxTime) {
		e.heapPush(ev)
		return
	}
	tick := int64(t * wheelInvTick)
	c := e.w.cursor
	if tick-c < wheelNearSlots {
		e.heapPush(ev)
		return
	}
	for l := 0; l < wheelLevels; l++ {
		sh := uint(wheelBits * l)
		if (tick>>sh)-(c>>sh) < wheelSize {
			s := int((tick >> sh) & (wheelSize - 1))
			head := e.w.slot[l][s]
			ev.next = head
			ev.prev = nil
			if head != nil {
				head.prev = ev
			}
			e.w.slot[l][s] = ev
			e.w.bitmap[l][s>>6] |= 1 << uint(s&63)
			ev.index = wheelIdx(l, s)
			e.w.count++
			if lt := float64(tick) * wheelTick; lt < e.w.low {
				e.w.low = lt
			}
			return
		}
	}
	e.heapPush(ev)
}

// wheelRemove unlinks a cancelled event from its slot (O(1) via the
// doubly-linked intrusive list) and recycles it.
func (e *Engine) wheelRemove(ev *event) {
	k := idxWheelBase - int(ev.index)
	l, s := k>>wheelBits, k&(wheelSize-1)
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		e.w.slot[l][s] = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	}
	if e.w.slot[l][s] == nil {
		e.w.bitmap[l][s>>6] &^= 1 << uint(s&63)
	}
	e.w.count--
	if e.w.count == 0 {
		e.w.low = math.Inf(1)
	}
	ev.prev = nil
	ev.next = nil
	e.recycle(ev)
}

// wheelScan returns the tick lower bound and slot of level l's earliest
// occupied slot, or ok=false when the level is empty. For level 0 the
// bound is the slot's exact tick.
func (e *Engine) wheelScan(l int) (lb int64, slot int, ok bool) {
	sh := uint(wheelBits * l)
	cl := e.w.cursor >> sh
	from := int(cl & (wheelSize - 1))
	slot, ok = nextSlot(&e.w.bitmap[l], from)
	if !ok {
		return 0, 0, false
	}
	u := cl + int64((slot-from)&(wheelSize-1))
	lb = u << sh
	if lb < e.w.cursor {
		lb = e.w.cursor
	}
	return lb, slot, true
}

// nextSlot finds the first occupied slot at or after from, scanning
// circularly, and reports whether any slot is occupied.
func nextSlot(bm *[wheelWords]uint64, from int) (int, bool) {
	w := from >> 6
	if word := bm[w] >> uint(from&63); word != 0 {
		return from + bits.TrailingZeros64(word), true
	}
	for i := 1; i <= wheelWords; i++ {
		idx := (w + i) & (wheelWords - 1)
		if bm[idx] != 0 {
			return idx<<6 + bits.TrailingZeros64(bm[idx]), true
		}
	}
	return 0, false
}

// wheelFlush drains the given slot toward the heap: a level-0 slot
// flushes directly (the heap re-establishes (time, seq) order), a
// higher-level slot cascades one level down. lb is the slot's tick
// bound, already known to be the minimum across levels, so advancing
// the cursor to it is safe: no resident event precedes it.
func (e *Engine) wheelFlush(l, slot int, lb int64) {
	e.w.cursor = lb
	head := e.w.slot[l][slot]
	e.w.slot[l][slot] = nil
	e.w.bitmap[l][slot>>6] &^= 1 << uint(slot&63)
	if l == 0 {
		// The slot holds exactly one tick; it is now fully drained.
		e.w.cursor = lb + 1
		for head != nil {
			nxt := head.next
			head.next = nil
			head.prev = nil
			e.w.count--
			e.heapPush(head)
			head = nxt
		}
	} else {
		// Cascade: with the cursor advanced, each event re-files at a
		// strictly lower level (or the heap, when near).
		for head != nil {
			nxt := head.next
			head.next = nil
			head.prev = nil
			e.w.count--
			e.wheelInsert(head)
			head = nxt
		}
	}
}

// settleHead flushes the wheel until the heap head is the true earliest
// pending event, and reports whether any event is pending. Every pop
// path goes through it; flushing is order-neutral, so the mutation is
// not observable through the engine's public surface.
//
// The fast path is one float compare: e.w.low is a conservative lower
// bound, so a heap head strictly below it is already exact. Otherwise
// each iteration scans the levels once, refreshing the bound and
// flushing the earliest slot only while the bound still ties or beats
// the head.
func (e *Engine) settleHead() bool {
	for e.w.count > 0 {
		if len(e.queue) > 0 && e.w.low > e.queue[0].time {
			break
		}
		// Tie-break toward the highest level: a level-0 flush advances
		// the cursor past its tick, so a higher-level slot sharing the
		// bound must cascade first or its residents at that exact tick
		// would be stranded behind the cursor and fire late.
		bestL, bestSlot := -1, 0
		var bestLB int64
		for l := 0; l < wheelLevels; l++ {
			lb, slot, ok := e.wheelScan(l)
			if ok && (bestL < 0 || lb <= bestLB) {
				bestL, bestLB, bestSlot = l, lb, slot
			}
		}
		if bestL < 0 {
			// count > 0 with every slot empty is an invariant breach.
			panic("sim: timing wheel count out of sync with slots")
		}
		// The scan refreshed the bound exactly; it may now clear a head
		// the stale bound appeared to tie.
		e.w.low = float64(bestLB) * wheelTick
		if len(e.queue) > 0 && e.w.low > e.queue[0].time {
			break
		}
		e.wheelFlush(bestL, bestSlot, bestLB)
		if e.w.count == 0 {
			e.w.low = math.Inf(1)
		}
		// After a flush the cached bound is stale-low (the flushed
		// slot's tick); the next iteration's scan refreshes it.
	}
	return len(e.queue) > 0
}
