package sim

import (
	"math"
	"math/rand"
	"testing"
)

// refPS is a reference port of the pre-virtual-service PSResource: it
// keeps an explicit remaining counter per job and rescans the whole job
// set on every event (O(n) advance). The only change from the original
// is that jobs live in a slice in submission order instead of a map, so
// float accumulation order — and hence rounding — is deterministic.
// The equivalence property test replays randomized workloads against
// both implementations and requires identical completion order and
// completion times within a rounding tolerance.
type refJob struct {
	remaining float64
	demand    float64
	seq       uint64
	onDone    func()
	active    bool
	queued    bool
}

type refPS struct {
	eng         *Engine
	capacity    CapacityFunc
	disturbance float64
	jobs        []*refJob // submission order
	lastUpdate  float64
	nextDone    Event
	jobSeq      uint64
}

func newRefPS(eng *Engine, capacity CapacityFunc) *refPS {
	return &refPS{eng: eng, capacity: capacity, disturbance: 1, lastUpdate: eng.Now()}
}

func (r *refPS) Submit(demand float64, onDone func()) *refJob {
	job := &refJob{remaining: demand, demand: demand, seq: r.jobSeq, onDone: onDone, active: true}
	r.jobSeq++
	if demand <= 0 {
		job.remaining = 0
		r.eng.Schedule(0, func() { r.finish(job) })
		return job
	}
	r.advance()
	job.queued = true
	r.jobs = append(r.jobs, job)
	r.reschedule()
	return job
}

func (r *refPS) Abort(job *refJob) {
	if job == nil || !job.active {
		return
	}
	r.advance()
	job.active = false
	r.remove(job)
	r.reschedule()
}

func (r *refPS) SetDisturbance(factor float64) {
	r.advance()
	r.disturbance = factor
	r.reschedule()
}

func (r *refPS) remove(job *refJob) {
	for i, j := range r.jobs {
		if j == job {
			r.jobs = append(r.jobs[:i], r.jobs[i+1:]...)
			job.queued = false
			return
		}
	}
}

func (r *refPS) advance() {
	now := r.eng.Now()
	dt := now - r.lastUpdate
	r.lastUpdate = now
	n := len(r.jobs)
	if dt <= 0 || n == 0 {
		return
	}
	perJob := r.capacity(n) * r.disturbance / float64(n)
	done := dt * perJob
	for _, j := range r.jobs {
		dec := done
		if j.remaining < dec {
			dec = j.remaining
		}
		j.remaining -= dec
	}
}

func (r *refPS) reschedule() {
	r.eng.Cancel(r.nextDone)
	r.nextDone = Event{}
	n := len(r.jobs)
	if n == 0 {
		return
	}
	perJob := r.capacity(n) * r.disturbance / float64(n)
	minRemaining := math.Inf(1)
	for _, j := range r.jobs {
		if j.remaining < minRemaining {
			minRemaining = j.remaining
		}
	}
	r.nextDone = r.eng.Schedule(minRemaining/perJob, r.completeDue)
}

func (r *refPS) completeDue() {
	r.nextDone = Event{}
	r.advance()
	var due []*refJob
	var minJob *refJob
	for _, j := range r.jobs {
		if j.remaining <= dueEpsilon(j.demand) {
			due = append(due, j)
		}
		if minJob == nil || j.remaining < minJob.remaining ||
			(j.remaining == minJob.remaining && j.seq < minJob.seq) {
			minJob = j
		}
	}
	if len(due) == 0 && minJob != nil {
		n := len(r.jobs)
		perJob := r.capacity(n) * r.disturbance / float64(n)
		if t := r.eng.Now(); t+minJob.remaining/perJob == t {
			due = append(due, minJob)
		}
	}
	for _, j := range due {
		r.remove(j)
		j.remaining = 0
	}
	r.reschedule()
	for _, j := range due {
		r.finish(j)
	}
}

func (r *refPS) finish(job *refJob) {
	if !job.active {
		return
	}
	job.active = false
	if job.onDone != nil {
		job.onDone()
	}
}

// psOp is one scripted action in a replayed workload.
type psOp struct {
	at          float64
	kind        int // 0 = submit, 1 = abort (by submit index), 2 = disturbance
	demand      float64
	target      int
	disturbance float64
}

type psCompletion struct {
	id int
	at float64
}

// genOps builds a randomized but deterministic workload script.
func genOps(rng *rand.Rand, n int) []psOp {
	ops := make([]psOp, 0, n)
	submits := 0
	for i := 0; i < n; i++ {
		at := rng.Float64() * 20
		switch k := rng.Intn(10); {
		case k < 7 || submits == 0:
			ops = append(ops, psOp{at: at, kind: 0, demand: 0.5 + rng.Float64()*400})
			submits++
		case k < 9:
			ops = append(ops, psOp{at: at, kind: 1, target: rng.Intn(submits)})
		default:
			ops = append(ops, psOp{at: at, kind: 2, disturbance: 0.2 + rng.Float64()*1.6})
		}
	}
	return ops
}

// replayNew runs the script against the production PSResource.
func replayNew(ops []psOp, capacity CapacityFunc) []psCompletion {
	e := NewEngine()
	r := NewPSResource(e, "disk", capacity)
	var out []psCompletion
	jobs := make(map[int]*PSJob)
	id := 0
	for _, op := range ops {
		op := op
		switch op.kind {
		case 0:
			myID := id
			id++
			e.Schedule(op.at, func() {
				jobs[myID] = r.Submit(op.demand, func() {
					out = append(out, psCompletion{id: myID, at: e.Now()})
				})
			})
		case 1:
			e.Schedule(op.at, func() { r.Abort(jobs[op.target]) })
		case 2:
			e.Schedule(op.at, func() { r.SetDisturbance(op.disturbance) })
		}
	}
	e.Run()
	return out
}

// replayRef runs the same script against the reference model.
func replayRef(ops []psOp, capacity CapacityFunc) []psCompletion {
	e := NewEngine()
	r := newRefPS(e, capacity)
	var out []psCompletion
	jobs := make(map[int]*refJob)
	id := 0
	for _, op := range ops {
		op := op
		switch op.kind {
		case 0:
			myID := id
			id++
			e.Schedule(op.at, func() {
				jobs[myID] = r.Submit(op.demand, func() {
					out = append(out, psCompletion{id: myID, at: e.Now()})
				})
			})
		case 1:
			e.Schedule(op.at, func() { r.Abort(jobs[op.target]) })
		case 2:
			e.Schedule(op.at, func() { r.SetDisturbance(op.disturbance) })
		}
	}
	e.Run()
	return out
}

// TestPSEquivalenceWithReferenceModel replays randomized
// submit/abort/disturbance scripts against the virtual-service
// PSResource and the O(n)-rescan reference semantics. Completion order
// must match exactly and completion times within float-rounding slop —
// the heap rewrite must not change observable scheduling behavior.
func TestPSEquivalenceWithReferenceModel(t *testing.T) {
	curves := map[string]CapacityFunc{
		"constant": ConstantCapacity(100),
		"hdd-thrash": func(n int) float64 {
			if n > 4 {
				return 70
			}
			return 100
		},
		"ssd-scaling": func(n int) float64 {
			if n > 8 {
				return 400
			}
			return 100 * float64(n) / 2
		},
	}
	for name, curve := range curves {
		for seed := int64(0); seed < 30; seed++ {
			rng := rand.New(rand.NewSource(seed))
			ops := genOps(rng, 40)
			got := replayNew(ops, curve)
			want := replayRef(ops, curve)
			if len(got) != len(want) {
				t.Fatalf("%s/seed %d: %d completions, reference saw %d", name, seed, len(got), len(want))
			}
			for i := range got {
				if got[i].id != want[i].id {
					t.Fatalf("%s/seed %d: completion %d is job %d, reference job %d",
						name, seed, i, got[i].id, want[i].id)
				}
				// Rounding tolerance: both models schedule the same ideal
				// completion instants but accumulate float error
				// differently (signed virtual-service total vs repeated
				// per-job subtraction).
				tol := 1e-6 * (1 + math.Abs(want[i].at))
				if math.Abs(got[i].at-want[i].at) > tol {
					t.Fatalf("%s/seed %d: job %d completes at %.12g, reference %.12g (Δ=%g)",
						name, seed, got[i].id, got[i].at, want[i].at, got[i].at-want[i].at)
				}
			}
		}
	}
}
