// Package sim provides a deterministic discrete-event simulation engine
// and a processor-sharing resource model used as the substrate for the
// IBIS cluster simulator.
//
// Virtual time is measured in float64 seconds. Events scheduled for the
// same instant fire in the order they were scheduled (FIFO tie-breaking
// on a monotonically increasing sequence number), which makes every run
// bit-for-bit reproducible.
package sim

import (
	"fmt"
	"math"
)

// event is the engine-owned record of one scheduled callback. Records
// are recycled through a generation-counted freelist once they fire or
// are cancelled, so steady-state scheduling does not allocate; callers
// hold Event handles, never *event.
type event struct {
	time   float64
	fn     func()
	seq    uint64
	gen    uint64
	next   *event // intrusive links while resident in a timing-wheel slot
	prev   *event
	index  int32  // position in Engine.queue when >= 0; see wheel.go markers
	daemon bool
}

// Event is a cancellable handle to a scheduled callback. The zero value
// is an inert handle: cancelling it is a no-op and Scheduled reports
// false. Handles are small values, safe to copy and to keep after the
// event fires — the generation counter guards against the underlying
// record being recycled for a later event.
type Event struct {
	ev   *event
	gen  uint64
	time float64
}

// Time returns the virtual time at which the event was scheduled to
// fire. It stays valid after the event fires or is cancelled.
func (h Event) Time() float64 { return h.time }

// Scheduled reports whether the handle still refers to a pending event
// (not yet fired, not cancelled).
func (h Event) Scheduled() bool { return h.ev != nil && h.ev.gen == h.gen }

// Canceled reports whether the event will never fire through this
// handle: it was cancelled, it already fired, or the handle is the zero
// value.
func (h Event) Canceled() bool { return h.ev == nil || h.ev.gen != h.gen }

// Engine is a discrete-event simulation executive. The zero value is not
// usable; create one with NewEngine.
type Engine struct {
	now    float64
	seq    uint64
	queue  []*event // min-heap ordered by (time, seq); near-term events
	free   []*event // recycled records; see event doc
	fired  uint64
	halted bool
	live   int // pending non-daemon events
	// guard, when non-nil, is invoked on every mutating entry point
	// (schedule, cancel). The sharded fabric installs an ownership
	// check here in debug mode; nil costs one branch.
	guard func()
	// w holds far-future events O(1) until the clock needs them; see
	// wheel.go. noWheel forces every event through the heap — the
	// pure-heap reference the differential fuzzer compares against.
	w            wheel
	noWheel      bool
	batch        []*event // reusable same-instant dispatch buffer (RunBefore)
	batchPending int      // drained-but-unfired batch events
}

// NewEngine returns an engine with virtual time 0.
func NewEngine() *Engine {
	e := &Engine{}
	e.w.low = math.Inf(1)
	return e
}

// disableWheel routes every schedule through the inline min-heap,
// turning the engine into the pure-heap reference implementation the
// differential fuzzer checks the hybrid against.
func (e *Engine) disableWheel() { e.noWheel = true }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events executed so far, a useful progress
// and complexity metric for experiments.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled-but-unfired events. Cancelled
// events are removed from the queue immediately, so they never count.
func (e *Engine) Pending() int { return len(e.queue) + e.w.count + e.batchPending }

// Schedule runs fn after delay seconds of virtual time. A negative delay
// is treated as zero. It returns a cancellable handle.
func (e *Engine) Schedule(delay float64, fn func()) Event {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t. Times before Now are clamped to
// Now (the event fires "immediately", after already-queued events for the
// current instant).
func (e *Engine) At(t float64, fn func()) Event {
	return e.schedule(t, fn, false)
}

// ScheduleDaemon is like Schedule, but the event does not keep the
// simulation alive: Run terminates once only daemon events remain.
// Periodic housekeeping (controller ticks, broker exchanges, metric
// sampling) should use daemon events so a simulation ends when the
// workload does.
func (e *Engine) ScheduleDaemon(delay float64, fn func()) Event {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return e.schedule(e.now+delay, fn, true)
}

func (e *Engine) schedule(t float64, fn func(), daemon bool) Event {
	if fn == nil {
		panic("sim: At called with nil fn")
	}
	if e.guard != nil {
		e.guard()
	}
	if t < e.now || math.IsNaN(t) {
		t = e.now
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.time = t
	ev.fn = fn
	ev.seq = e.seq
	ev.daemon = daemon
	e.seq++
	if !daemon {
		e.live++
	}
	e.wheelInsert(ev)
	return Event{ev: ev, gen: ev.gen, time: t}
}

// recycle retires a record that fired or was cancelled. Bumping the
// generation first invalidates every outstanding handle to it.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.next = nil
	e.free = append(e.free, ev)
}

// Cancel prevents a scheduled event from firing, removing it from the
// queue or its wheel slot immediately (no tombstones). Cancelling an
// event that already fired or was already cancelled is a no-op, as is
// cancelling the zero handle, so callers can cancel optional timers
// unconditionally. An event drained into the current RunBefore batch
// but not yet fired is still cancellable: its record is skipped when
// the batch reaches it.
func (e *Engine) Cancel(h Event) {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.index == idxFired {
		return
	}
	if e.guard != nil {
		e.guard()
	}
	if !ev.daemon {
		e.live--
	}
	switch {
	case ev.index >= 0:
		e.heapRemove(int(ev.index))
		e.recycle(ev)
	case ev.index == idxBatch:
		// Mid-batch: the record sits in the dispatch buffer. Invalidate
		// the handle now; the batch loop recycles the record in place.
		ev.gen++
		ev.fn = nil
		e.batchPending--
	default:
		e.wheelRemove(ev)
	}
}

// Halt stops the currently executing Run/RunUntil after the current event
// callback returns.
func (e *Engine) Halt() { e.halted = true }

// Run executes events until the queue is empty. It returns the final
// virtual time.
func (e *Engine) Run() float64 {
	return e.RunUntil(math.Inf(1))
}

// RunUntil executes events with time <= limit. Events exactly at limit
// are executed. It returns the final virtual time.
//
// Clock semantics: with a finite limit, RunUntil always leaves Now at
// the limit unless Halt was called — even when it stops early because
// the queue drained or only daemon events remain — so callers can
// compute rates over the full [start, limit] horizon. After Halt, and
// after Run (infinite limit), Now is the time of the last executed
// event.
func (e *Engine) RunUntil(limit float64) float64 {
	e.halted = false
	for e.live > 0 && e.settleHead() {
		next := e.queue[0]
		if next.time > limit {
			break
		}
		e.heapPopMin()
		e.now = next.time
		e.fired++
		if !next.daemon {
			e.live--
		}
		fn := next.fn
		// Recycle before running fn: the record is dead the moment it is
		// popped, and recycling first lets fn's own scheduling reuse it.
		e.recycle(next)
		fn()
		if e.halted {
			return e.now
		}
	}
	// Out of eligible work: the horizon was reached, the queue drained,
	// or only daemon events remain. Advance the clock to a finite
	// horizon so the whole interval is accounted for.
	if !math.IsInf(limit, 1) && limit > e.now {
		e.now = limit
	}
	return e.now
}

// Live returns the number of pending non-daemon events.
func (e *Engine) Live() int { return e.live }

// SetGuard installs fn on every mutating entry point (schedule,
// cancel); nil removes it. The sharded fabric uses this for its
// debug-build single-owner check.
func (e *Engine) SetGuard(fn func()) { e.guard = fn }

// PeekTime returns the time of the earliest pending event, or false if
// none is pending. It may flush timing-wheel slots into the heap to
// resolve the head exactly; the flush is order-neutral, so nothing is
// observable beyond this call's cost.
func (e *Engine) PeekTime() (float64, bool) {
	if !e.settleHead() {
		return 0, false
	}
	return e.queue[0].time, true
}

// RunBefore executes every event with time strictly less than limit —
// daemon events included, regardless of the live count — and returns
// how many fired. Unlike RunUntil it never advances the clock to the
// limit: Now stays at the last executed event, so a later window can
// deliver work anywhere in [Now, limit). This is the intra-window
// executor of the sharded conservative-sync fabric; ordinary callers
// want Run or RunUntil.
//
// Dispatch is batched: the whole same-instant run at the head is
// drained from the heap in one pass and fired in sequence order, so a
// window's worth of simultaneous completions costs one heap drain
// instead of interleaved pop/sift cycles. Events a callback schedules
// for the current instant carry higher sequence numbers and fire after
// the drained batch, exactly as they would under one-at-a-time popping;
// events it cancels mid-batch are skipped.
func (e *Engine) RunBefore(limit float64) int {
	if len(e.queue) == 0 && e.w.count == 0 {
		return 0 // empty window: nothing pending at any horizon
	}
	n := 0
	for e.settleHead() {
		t := e.queue[0].time
		if t >= limit {
			break
		}
		// Drain the full same-instant run. settleHead has flushed every
		// wheel slot at or below t, so the heap holds the complete run.
		batch := e.batch[:0]
		for len(e.queue) > 0 && e.queue[0].time == t {
			ev := e.heapPopMin()
			ev.index = idxBatch
			batch = append(batch, ev)
		}
		e.batch = batch
		e.batchPending = len(batch)
		e.now = t
		for i, ev := range batch {
			batch[i] = nil
			if ev.fn == nil { // cancelled mid-batch
				e.recycle(ev)
				continue
			}
			e.batchPending--
			e.fired++
			if !ev.daemon {
				e.live--
			}
			fn := ev.fn
			e.recycle(ev)
			fn()
			n++
		}
		e.batch = batch[:0]
	}
	return n
}

// Step executes exactly one event if one is pending and reports whether
// an event was executed. Step ignores Halt: a pending Halt from a
// previous run does not suppress it, and it executes daemon events even
// when no live work remains — it is a debugging aid, not a scheduling
// primitive.
func (e *Engine) Step() bool {
	if !e.settleHead() {
		return false
	}
	ev := e.heapPopMin()
	e.now = ev.time
	e.fired++
	if !ev.daemon {
		e.live--
	}
	fn := ev.fn
	e.recycle(ev)
	fn()
	return true
}

// String implements fmt.Stringer for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%.3fs pending=%d fired=%d}", e.now, e.Pending(), e.fired)
}

// --- specialized event min-heap, ordered by (time, seq) ---
//
// A hand-rolled heap over []*event avoids container/heap's interface
// boxing and per-op indirect calls; with the freelist above it makes the
// event loop allocation-free in steady state.

func eventLess(a, b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (e *Engine) heapPush(ev *event) {
	ev.index = int32(len(e.queue))
	e.queue = append(e.queue, ev)
	e.siftUp(len(e.queue) - 1)
}

// heapPopMin removes and returns the earliest event.
func (e *Engine) heapPopMin() *event {
	q := e.queue
	min := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = nil
	e.queue = q[:last]
	if last > 0 {
		q[0].index = 0
		e.siftDown(0)
	}
	min.index = -1
	return min
}

// heapRemove removes the event at queue position i.
func (e *Engine) heapRemove(i int) {
	q := e.queue
	last := len(q) - 1
	ev := q[i]
	if i != last {
		q[i] = q[last]
		q[i].index = int32(i)
	}
	q[last] = nil
	e.queue = q[:last]
	if i < last {
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	}
	ev.index = -1
}

func (e *Engine) siftUp(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(ev, q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].index = int32(i)
		i = parent
	}
	q[i] = ev
	ev.index = int32(i)
}

// siftDown restores heap order below i, reporting whether ev moved.
func (e *Engine) siftDown(i int) bool {
	q := e.queue
	n := len(q)
	ev := q[i]
	start := i
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && eventLess(q[r], q[child]) {
			child = r
		}
		if !eventLess(q[child], ev) {
			break
		}
		q[i] = q[child]
		q[i].index = int32(i)
		i = child
	}
	q[i] = ev
	ev.index = int32(i)
	return i > start
}
