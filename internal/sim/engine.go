// Package sim provides a deterministic discrete-event simulation engine
// and a processor-sharing resource model used as the substrate for the
// IBIS cluster simulator.
//
// Virtual time is measured in float64 seconds. Events scheduled for the
// same instant fire in the order they were scheduled (FIFO tie-breaking
// on a monotonically increasing sequence number), which makes every run
// bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a handle to a scheduled callback. It can be cancelled as long
// as it has not fired yet.
type Event struct {
	time     float64
	seq      uint64
	index    int // heap index, -1 once removed
	fn       func()
	canceled bool
	daemon   bool
}

// Time returns the virtual time at which the event is scheduled to fire.
func (e *Event) Time() float64 { return e.time }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Engine is a discrete-event simulation executive. The zero value is not
// usable; create one with NewEngine.
type Engine struct {
	now    float64
	seq    uint64
	queue  eventHeap
	fired  uint64
	halted bool
	live   int // pending non-daemon events
}

// NewEngine returns an engine with virtual time 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events executed so far, a useful progress
// and complexity metric for experiments.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled-but-unfired events, including
// cancelled events that have not yet been popped.
func (e *Engine) Pending() int { return e.queue.Len() }

// Schedule runs fn after delay seconds of virtual time. A negative delay
// is treated as zero. It returns a cancellable handle.
func (e *Engine) Schedule(delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t. Times before Now are clamped to
// Now (the event fires "immediately", after already-queued events for the
// current instant).
func (e *Engine) At(t float64, fn func()) *Event {
	if fn == nil {
		panic("sim: At called with nil fn")
	}
	if t < e.now || math.IsNaN(t) {
		t = e.now
	}
	ev := &Event{time: t, seq: e.seq, fn: fn}
	e.seq++
	e.live++
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleDaemon is like Schedule, but the event does not keep the
// simulation alive: Run terminates once only daemon events remain.
// Periodic housekeeping (controller ticks, broker exchanges, metric
// sampling) should use daemon events so a simulation ends when the
// workload does.
func (e *Engine) ScheduleDaemon(delay float64, fn func()) *Event {
	ev := e.Schedule(delay, fn)
	ev.daemon = true
	e.live--
	return ev
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired or was already cancelled is a no-op. Cancel(nil) is a
// no-op too, so callers can cancel optional timers unconditionally.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		return
	}
	ev.canceled = true
	if !ev.daemon {
		e.live--
	}
}

// Halt stops the currently executing Run/RunUntil after the current event
// callback returns.
func (e *Engine) Halt() { e.halted = true }

// Run executes events until the queue is empty. It returns the final
// virtual time.
func (e *Engine) Run() float64 {
	return e.RunUntil(math.Inf(1))
}

// RunUntil executes events with time <= limit. Events exactly at limit
// are executed. It returns the final virtual time.
//
// Clock semantics: with a finite limit, RunUntil always leaves Now at
// the limit unless Halt was called — even when it stops early because
// the queue drained or only daemon/cancelled events remain — so
// callers can compute rates over the full [start, limit] horizon.
// After Halt, and after Run (infinite limit), Now is the time of the
// last executed event.
func (e *Engine) RunUntil(limit float64) float64 {
	e.halted = false
	for e.queue.Len() > 0 && e.live > 0 {
		next := e.queue.Peek()
		if next.time > limit {
			break
		}
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.time
		e.fired++
		if !ev.daemon {
			e.live--
		}
		ev.fn()
		if e.halted {
			return e.now
		}
	}
	// Out of eligible work: the horizon was reached, the queue drained,
	// or only daemon/cancelled events remain. Advance the clock to a
	// finite horizon so the whole interval is accounted for.
	if !math.IsInf(limit, 1) && limit > e.now {
		e.now = limit
	}
	return e.now
}

// Live returns the number of pending non-daemon events.
func (e *Engine) Live() int { return e.live }

// Step executes exactly one (non-cancelled) event if one is pending and
// reports whether an event was executed. Step ignores Halt: a pending
// Halt from a previous run does not suppress it, and it executes daemon
// events even when no live work remains — it is a debugging aid, not a
// scheduling primitive.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.time
		e.fired++
		if !ev.daemon {
			e.live--
		}
		ev.fn()
		return true
	}
	return false
}

// String implements fmt.Stringer for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%.3fs pending=%d fired=%d}", e.now, e.queue.Len(), e.fired)
}

// eventHeap is a min-heap ordered by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

func (h eventHeap) Peek() *Event { return h[0] }
