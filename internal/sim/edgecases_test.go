package sim

import "testing"

// These tests pin down the RunUntil clock semantics at the edges: a
// finite-horizon run always ends with Now at the horizon unless it was
// halted, no matter why it stopped executing events early.

func TestRunUntilAdvancesClockWhenQueueDrains(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {})
	if end := e.RunUntil(10); end != 10 {
		t.Fatalf("RunUntil returned %v, want 10 (clock advances past drained queue)", end)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %v, want 10", e.Now())
	}
}

func TestRunUntilAdvancesClockOnEmptyQueue(t *testing.T) {
	e := NewEngine()
	if end := e.RunUntil(5); end != 5 {
		t.Fatalf("RunUntil on empty queue returned %v, want 5", end)
	}
}

func TestRunUntilAdvancesClockWithDaemonsOnly(t *testing.T) {
	e := NewEngine()
	fired := false
	e.ScheduleDaemon(1, func() { fired = true })
	if end := e.RunUntil(10); end != 10 {
		t.Fatalf("RunUntil returned %v, want 10 (daemon-only queue)", end)
	}
	if fired {
		t.Fatal("daemon fired with no live work")
	}
}

func TestRunUntilAdvancesClockWithCancelledOnly(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(1, func() { t.Error("cancelled event fired") })
	e.Cancel(ev)
	if end := e.RunUntil(10); end != 10 {
		t.Fatalf("RunUntil returned %v, want 10 (cancelled-only queue)", end)
	}
}

func TestRunUntilDaemonStopsFiringOnceLiveDrains(t *testing.T) {
	e := NewEngine()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		e.ScheduleDaemon(1, tick)
	}
	e.ScheduleDaemon(1, tick)
	e.Schedule(2.5, func() {})
	if end := e.RunUntil(10); end != 10 {
		t.Fatalf("RunUntil returned %v, want 10", end)
	}
	if ticks != 2 {
		t.Fatalf("daemon ticked %d times, want 2 (only while live work pending)", ticks)
	}
}

func TestRunUntilHaltDoesNotAdvanceClock(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, d := range []float64{1, 2, 3} {
		d := d
		e.Schedule(d, func() {
			fired = append(fired, d)
			if d == 2 {
				e.Halt()
			}
		})
	}
	if end := e.RunUntil(10); end != 2 {
		t.Fatalf("halted RunUntil returned %v, want 2 (time of halting event)", end)
	}
	if e.Now() != 2 {
		t.Fatalf("Now() = %v after Halt, want 2", e.Now())
	}
	// Resuming finishes the remaining work and then advances to the horizon.
	if end := e.RunUntil(10); end != 10 {
		t.Fatalf("resumed RunUntil returned %v, want 10", end)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %v, want all 3 events", fired)
	}
}

func TestRunInfiniteLimitDoesNotAdvanceClock(t *testing.T) {
	e := NewEngine()
	e.Schedule(1.5, func() {})
	if end := e.Run(); end != 1.5 {
		t.Fatalf("Run returned %v, want 1.5 (no artificial horizon)", end)
	}
}

func TestStepIgnoresPendingHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func() {
		count++
		e.Halt()
	})
	e.Schedule(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d after halted Run, want 1", count)
	}
	// The halt left by Run must not suppress single-stepping.
	if !e.Step() {
		t.Fatal("Step returned false despite a pending event")
	}
	if count != 2 {
		t.Fatalf("count = %d after Step, want 2", count)
	}
}

func TestStepAfterExplicitHalt(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(1, func() { fired = true })
	e.Halt()
	if !e.Step() || !fired {
		t.Fatal("Step honored Halt; it must execute regardless")
	}
}
