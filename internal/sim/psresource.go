package sim

import (
	"fmt"
	"math"
)

// CapacityFunc maps the number of concurrently serviced jobs to the
// aggregate service rate of a resource, in service units per second.
// It must be positive for every n >= 1.
type CapacityFunc func(n int) float64

// ConstantCapacity returns a CapacityFunc with a fixed aggregate rate
// regardless of concurrency.
func ConstantCapacity(rate float64) CapacityFunc {
	return func(int) float64 { return rate }
}

// PSJob is one unit of work being serviced by a PSResource.
type PSJob struct {
	res       *PSResource
	remaining float64 // service units left
	demand    float64 // total service units requested
	start     float64 // virtual time service began
	seq       uint64  // submission order, for deterministic tie-breaking
	onDone    func()
	active    bool
	// Payload lets callers attach arbitrary context to a job.
	Payload any
}

// Demand returns the total service units the job requested.
func (j *PSJob) Demand() float64 { return j.demand }

// Remaining returns the service units still owed to the job. It is only
// meaningful mid-update; callers that need an exact instantaneous value
// should call PSResource.Sync first.
func (j *PSJob) Remaining() float64 { return j.remaining }

// Start returns the virtual time at which service of the job began.
func (j *PSJob) Start() float64 { return j.start }

// Active reports whether the job is still in service.
func (j *PSJob) Active() bool { return j.active }

// PSResource models a processor-sharing server: all active jobs progress
// simultaneously, each receiving an equal share of the aggregate capacity,
// which may itself depend on the number of active jobs (seek thrashing on
// disks, internal parallelism on SSDs, ...).
//
// A capacity disturbance factor can be applied (SetDisturbance) to model
// transient slowdowns such as write-back flushes.
type PSResource struct {
	eng         *Engine
	capacity    CapacityFunc
	disturbance float64 // multiplier on capacity, default 1
	jobs        map[*PSJob]struct{}
	lastUpdate  float64
	nextDone    *Event
	name        string
	jobSeq      uint64

	// Cumulative accounting.
	servedUnits float64
	busyTime    float64
	completed   uint64
}

// NewPSResource creates a processor-sharing resource driven by eng.
func NewPSResource(eng *Engine, name string, capacity CapacityFunc) *PSResource {
	if capacity == nil {
		panic("sim: NewPSResource requires a capacity function")
	}
	return &PSResource{
		eng:         eng,
		capacity:    capacity,
		disturbance: 1,
		jobs:        make(map[*PSJob]struct{}),
		lastUpdate:  eng.Now(),
		name:        name,
	}
}

// Name returns the identifier given at construction.
func (r *PSResource) Name() string { return r.name }

// InFlight returns the number of jobs currently in service.
func (r *PSResource) InFlight() int { return len(r.jobs) }

// ServedUnits returns the cumulative service units delivered.
func (r *PSResource) ServedUnits() float64 { return r.servedUnits }

// BusyTime returns the cumulative virtual time during which at least one
// job was in service.
func (r *PSResource) BusyTime() float64 { return r.busyTime }

// Completed returns the number of jobs fully serviced.
func (r *PSResource) Completed() uint64 { return r.completed }

// Rate returns the current aggregate service rate (units/second), i.e.
// capacity at the current concurrency scaled by the disturbance factor.
// Zero when idle.
func (r *PSResource) Rate() float64 {
	n := len(r.jobs)
	if n == 0 {
		return 0
	}
	return r.capacity(n) * r.disturbance
}

// SetDisturbance scales the resource capacity by factor (e.g. 0.2 during
// a write-back flush). factor must be > 0.
func (r *PSResource) SetDisturbance(factor float64) {
	if factor <= 0 || math.IsNaN(factor) {
		panic(fmt.Sprintf("sim: invalid disturbance factor %v", factor))
	}
	r.advance()
	r.disturbance = factor
	r.reschedule()
}

// Disturbance returns the current capacity multiplier.
func (r *PSResource) Disturbance() float64 { return r.disturbance }

// Submit begins servicing a job of the given demand (service units).
// onDone fires when the job completes. Zero- or negative-demand jobs
// complete immediately (via a zero-delay event, preserving causality).
func (r *PSResource) Submit(demand float64, onDone func()) *PSJob {
	job := &PSJob{
		res:       r,
		remaining: demand,
		demand:    demand,
		start:     r.eng.Now(),
		seq:       r.jobSeq,
		onDone:    onDone,
		active:    true,
	}
	r.jobSeq++
	if demand <= 0 {
		job.remaining = 0
		r.eng.Schedule(0, func() { r.finish(job) })
		return job
	}
	r.advance()
	r.jobs[job] = struct{}{}
	r.reschedule()
	return job
}

// Abort removes a job from service without running its completion
// callback. Aborting an inactive job is a no-op.
func (r *PSResource) Abort(job *PSJob) {
	if job == nil || !job.active {
		return
	}
	r.advance()
	job.active = false
	delete(r.jobs, job)
	r.reschedule()
}

// Sync advances internal progress accounting to the current virtual time
// without changing the job set. Useful before inspecting Remaining.
func (r *PSResource) Sync() {
	r.advance()
	r.reschedule()
}

// advance applies service progress accumulated since lastUpdate to all
// active jobs.
func (r *PSResource) advance() {
	now := r.eng.Now()
	dt := now - r.lastUpdate
	r.lastUpdate = now
	n := len(r.jobs)
	if dt <= 0 || n == 0 {
		return
	}
	perJob := r.capacity(n) * r.disturbance / float64(n)
	done := dt * perJob
	for j := range r.jobs {
		dec := done
		if j.remaining < dec {
			// Completion events are scheduled at the earliest finish, so
			// underflow here is numerical noise only; charge actual work.
			dec = j.remaining
		}
		j.remaining -= dec
		r.servedUnits += dec
	}
	r.busyTime += dt
}

// reschedule recomputes the next completion event.
func (r *PSResource) reschedule() {
	r.eng.Cancel(r.nextDone)
	r.nextDone = nil
	n := len(r.jobs)
	if n == 0 {
		return
	}
	perJob := r.capacity(n) * r.disturbance / float64(n)
	if perJob <= 0 {
		panic(fmt.Sprintf("sim: resource %q has non-positive rate at n=%d", r.name, n))
	}
	minRemaining := math.Inf(1)
	for j := range r.jobs {
		if j.remaining < minRemaining {
			minRemaining = j.remaining
		}
	}
	delay := minRemaining / perJob
	r.nextDone = r.eng.Schedule(delay, r.completeDue)
}

// completeDue finishes every job whose remaining service has reached
// (numerically, nearly reached) zero.
func (r *PSResource) completeDue() {
	r.nextDone = nil
	r.advance()
	var due []*PSJob
	var minJob *PSJob
	for j := range r.jobs {
		if j.remaining <= dueEpsilon(j.demand) {
			due = append(due, j)
		}
		if minJob == nil || j.remaining < minJob.remaining ||
			(j.remaining == minJob.remaining && j.seq < minJob.seq) {
			minJob = j
		}
	}
	// Guard against float stagnation: this event was scheduled because
	// some job was predicted to finish now. If rounding left a sliver of
	// remaining work too small to advance virtual time, force-complete
	// the closest job rather than re-arming a zero-delay event forever.
	if len(due) == 0 && minJob != nil {
		n := len(r.jobs)
		perJob := r.capacity(n) * r.disturbance / float64(n)
		if t := r.eng.Now(); t+minJob.remaining/perJob == t {
			due = append(due, minJob)
		}
	}
	// Deterministic completion order: by start time, then demand.
	sortJobs(due)
	for _, j := range due {
		delete(r.jobs, j)
		r.servedUnits += j.remaining // epsilon remainder
		j.remaining = 0
	}
	r.reschedule()
	for _, j := range due {
		r.finish(j)
	}
}

// dueEpsilon is the completion slop for a job: absolute 1e-9 units plus
// one part in 1e12 of the demand, so giant (multi-GB) demands are not
// held hostage to float rounding.
func dueEpsilon(demand float64) float64 {
	return 1e-9 + demand*1e-12
}

func (r *PSResource) finish(job *PSJob) {
	if !job.active {
		return
	}
	job.active = false
	r.completed++
	if job.onDone != nil {
		job.onDone()
	}
}

// sortJobs orders jobs deterministically by submission sequence so that
// completion callbacks fire in a reproducible order even when several
// jobs finish in the same instant.
func sortJobs(js []*PSJob) {
	for i := 1; i < len(js); i++ {
		for k := i; k > 0 && js[k].seq < js[k-1].seq; k-- {
			js[k], js[k-1] = js[k-1], js[k]
		}
	}
}
