package sim

import (
	"fmt"
	"math"
)

// CapacityFunc maps the number of concurrently serviced jobs to the
// aggregate service rate of a resource, in service units per second.
// It must be positive for every n >= 1.
type CapacityFunc func(n int) float64

// ConstantCapacity returns a CapacityFunc with a fixed aggregate rate
// regardless of concurrency.
func ConstantCapacity(rate float64) CapacityFunc {
	return func(int) float64 { return rate }
}

// PSJob is one unit of work being serviced by a PSResource.
type PSJob struct {
	res      *PSResource
	demand   float64 // total service units requested
	finishV  float64 // virtual service point at which the job completes
	residual float64 // remaining units frozen at deactivation
	start    float64 // virtual time service began
	seq      uint64  // submission order, for deterministic tie-breaking
	index    int32   // position in PSResource.heap, -1 when not queued
	onDone   func()
	active   bool
	// Payload lets callers attach arbitrary context to a job.
	Payload any
}

// Demand returns the total service units the job requested.
func (j *PSJob) Demand() float64 { return j.demand }

// Remaining returns the service units still owed to the job. Progress is
// only applied at events; callers that need an exact instantaneous value
// should call PSResource.Sync first.
func (j *PSJob) Remaining() float64 {
	if !j.active {
		return j.residual
	}
	if rem := j.finishV - j.res.vserv; rem > 0 {
		return rem
	}
	return 0
}

// Start returns the virtual time at which service of the job began.
func (j *PSJob) Start() float64 { return j.start }

// Active reports whether the job is still in service.
func (j *PSJob) Active() bool { return j.active }

// PSResource models a processor-sharing server: all active jobs progress
// simultaneously, each receiving an equal share of the aggregate capacity,
// which may itself depend on the number of active jobs (seek thrashing on
// disks, internal parallelism on SSDs, ...).
//
// Progress is tracked with virtual-service accounting: vserv is the
// cumulative service every continuously-active job has received, and a
// job submitted at vserv = v with demand d completes when vserv reaches
// v + d. Because every active job accrues vserv at the same (possibly
// capacity-curve-dependent) per-job rate, advancing the clock is O(1) —
// one addition to vserv — instead of a rescan of all jobs, and the next
// completion is the minimum finishV in a heap, O(log n) to maintain.
//
// A capacity disturbance factor can be applied (SetDisturbance) to model
// transient slowdowns such as write-back flushes.
type PSResource struct {
	eng         *Engine
	capacity    CapacityFunc
	disturbance float64 // multiplier on capacity, default 1
	heap        []*PSJob
	vserv       float64 // cumulative per-job virtual service
	lastUpdate  float64
	nextDone    Event
	name        string
	jobSeq      uint64
	completeFn  func()   // cached completeDue method value (no per-reschedule alloc)
	due         []*PSJob // scratch reused by completeDue

	// Cumulative accounting.
	servedUnits float64
	busyTime    float64
	completed   uint64
}

// NewPSResource creates a processor-sharing resource driven by eng.
func NewPSResource(eng *Engine, name string, capacity CapacityFunc) *PSResource {
	if capacity == nil {
		panic("sim: NewPSResource requires a capacity function")
	}
	r := &PSResource{
		eng:         eng,
		capacity:    capacity,
		disturbance: 1,
		lastUpdate:  eng.Now(),
		name:        name,
	}
	r.completeFn = r.completeDue
	return r
}

// Name returns the identifier given at construction.
func (r *PSResource) Name() string { return r.name }

// InFlight returns the number of jobs currently in service.
func (r *PSResource) InFlight() int { return len(r.heap) }

// ServedUnits returns the cumulative service units delivered.
func (r *PSResource) ServedUnits() float64 { return r.servedUnits }

// BusyTime returns the cumulative virtual time during which at least one
// job was in service.
func (r *PSResource) BusyTime() float64 { return r.busyTime }

// Completed returns the number of jobs fully serviced.
func (r *PSResource) Completed() uint64 { return r.completed }

// Rate returns the current aggregate service rate (units/second), i.e.
// capacity at the current concurrency scaled by the disturbance factor.
// Zero when idle.
func (r *PSResource) Rate() float64 {
	n := len(r.heap)
	if n == 0 {
		return 0
	}
	return r.capacity(n) * r.disturbance
}

// SetDisturbance scales the resource capacity by factor (e.g. 0.2 during
// a write-back flush). factor must be > 0.
func (r *PSResource) SetDisturbance(factor float64) {
	if factor <= 0 || math.IsNaN(factor) {
		panic(fmt.Sprintf("sim: invalid disturbance factor %v", factor))
	}
	r.advance()
	r.disturbance = factor
	r.reschedule()
}

// Disturbance returns the current capacity multiplier.
func (r *PSResource) Disturbance() float64 { return r.disturbance }

// Submit begins servicing a job of the given demand (service units).
// onDone fires when the job completes. Zero- or negative-demand jobs
// complete immediately (via a zero-delay event, preserving causality).
func (r *PSResource) Submit(demand float64, onDone func()) *PSJob {
	job := &PSJob{
		res:    r,
		demand: demand,
		start:  r.eng.Now(),
		seq:    r.jobSeq,
		index:  -1,
		onDone: onDone,
		active: true,
	}
	r.jobSeq++
	if demand <= 0 {
		job.finishV = r.vserv
		r.eng.Schedule(0, func() { r.finish(job) })
		return job
	}
	r.advance()
	job.finishV = r.vserv + demand
	r.jobPush(job)
	r.reschedule()
	return job
}

// Abort removes a job from service without running its completion
// callback. Aborting an inactive job is a no-op.
func (r *PSResource) Abort(job *PSJob) {
	if job == nil || !job.active {
		return
	}
	r.advance()
	job.active = false
	if rem := job.finishV - r.vserv; rem > 0 {
		job.residual = rem
	}
	if job.index >= 0 {
		r.jobRemove(int(job.index))
	}
	r.reschedule()
}

// Sync advances internal progress accounting to the current virtual time
// without changing the job set. Useful before inspecting Remaining.
func (r *PSResource) Sync() {
	r.advance()
	r.reschedule()
}

// advance applies service progress accumulated since lastUpdate. With
// virtual-service accounting this is a single O(1) update regardless of
// how many jobs are in flight; no per-job state is touched.
func (r *PSResource) advance() {
	now := r.eng.Now()
	dt := now - r.lastUpdate
	r.lastUpdate = now
	n := len(r.heap)
	if dt <= 0 || n == 0 {
		return
	}
	dv := dt * r.capacity(n) * r.disturbance / float64(n)
	r.vserv += dv
	// Completion events are scheduled at the earliest finish, so any
	// per-job overshoot here is numerical noise; completeDue charges the
	// signed remainder back when the job is retired.
	r.servedUnits += dv * float64(n)
	r.busyTime += dt
}

// reschedule recomputes the next completion event: the heap minimum's
// finish point converted to a delay at the current per-job rate.
func (r *PSResource) reschedule() {
	r.eng.Cancel(r.nextDone)
	r.nextDone = Event{}
	n := len(r.heap)
	if n == 0 {
		return
	}
	perJob := r.capacity(n) * r.disturbance / float64(n)
	if perJob <= 0 {
		panic(fmt.Sprintf("sim: resource %q has non-positive rate at n=%d", r.name, n))
	}
	delay := (r.heap[0].finishV - r.vserv) / perJob
	if delay < 0 {
		delay = 0
	}
	r.nextDone = r.eng.Schedule(delay, r.completeFn)
}

// completeDue finishes every job whose remaining service has reached
// (numerically, nearly reached) zero. Due jobs are contiguous at the top
// of the finishV heap; popping stops at the first non-due minimum.
func (r *PSResource) completeDue() {
	r.nextDone = Event{}
	r.advance()
	due := r.due[:0]
	for len(r.heap) > 0 {
		top := r.heap[0]
		if top.finishV-r.vserv > dueEpsilon(top.demand) {
			break
		}
		r.jobPopMin()
		due = append(due, top)
	}
	// Guard against float stagnation: this event was scheduled because
	// some job was predicted to finish now. If rounding left a sliver of
	// remaining work too small to advance virtual time, force-complete
	// the closest job rather than re-arming a zero-delay event forever.
	if len(due) == 0 && len(r.heap) > 0 {
		n := len(r.heap)
		perJob := r.capacity(n) * r.disturbance / float64(n)
		top := r.heap[0]
		if t := r.eng.Now(); t+(top.finishV-r.vserv)/perJob == t {
			r.jobPopMin()
			due = append(due, top)
		}
	}
	// Deterministic completion order: by submission sequence.
	sortJobs(due)
	for _, j := range due {
		// Signed epsilon remainder: tops up the last sliver of a job
		// retired slightly early, or refunds overshoot past its finish
		// point, so a completed job is charged exactly its demand.
		r.servedUnits += j.finishV - r.vserv
	}
	r.reschedule()
	for _, j := range due {
		r.finish(j)
	}
	r.due = due[:0]
}

// dueEpsilon is the completion slop for a job: absolute 1e-9 units plus
// one part in 1e12 of the demand, so giant (multi-GB) demands are not
// held hostage to float rounding.
func dueEpsilon(demand float64) float64 {
	return 1e-9 + demand*1e-12
}

func (r *PSResource) finish(job *PSJob) {
	if !job.active {
		return
	}
	job.active = false
	job.residual = 0
	r.completed++
	if job.onDone != nil {
		job.onDone()
	}
}

// sortJobs orders jobs deterministically by submission sequence so that
// completion callbacks fire in a reproducible order even when several
// jobs finish in the same instant.
func sortJobs(js []*PSJob) {
	for i := 1; i < len(js); i++ {
		for k := i; k > 0 && js[k].seq < js[k-1].seq; k-- {
			js[k], js[k-1] = js[k-1], js[k]
		}
	}
}

// --- specialized job min-heap, ordered by (finishV, seq) ---

func jobLess(a, b *PSJob) bool {
	if a.finishV != b.finishV {
		return a.finishV < b.finishV
	}
	return a.seq < b.seq
}

func (r *PSResource) jobPush(j *PSJob) {
	j.index = int32(len(r.heap))
	r.heap = append(r.heap, j)
	r.jobSiftUp(len(r.heap) - 1)
}

func (r *PSResource) jobPopMin() *PSJob {
	h := r.heap
	min := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	r.heap = h[:last]
	if last > 0 {
		h[0].index = 0
		r.jobSiftDown(0)
	}
	min.index = -1
	return min
}

func (r *PSResource) jobRemove(i int) {
	h := r.heap
	last := len(h) - 1
	j := h[i]
	if i != last {
		h[i] = h[last]
		h[i].index = int32(i)
	}
	h[last] = nil
	r.heap = h[:last]
	if i < last {
		if !r.jobSiftDown(i) {
			r.jobSiftUp(i)
		}
	}
	j.index = -1
}

func (r *PSResource) jobSiftUp(i int) {
	h := r.heap
	j := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !jobLess(j, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].index = int32(i)
		i = parent
	}
	h[i] = j
	j.index = int32(i)
}

func (r *PSResource) jobSiftDown(i int) bool {
	h := r.heap
	n := len(h)
	j := h[i]
	start := i
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if rc := child + 1; rc < n && jobLess(h[rc], h[child]) {
			child = rc
		}
		if !jobLess(h[child], j) {
			break
		}
		h[i] = h[child]
		h[i].index = int32(i)
		i = child
	}
	h[i] = j
	j.index = int32(i)
	return i > start
}
