package sim

import (
	"math"
	"testing"
)

// TestRunBeforeBatchMidCancel: a same-instant run is drained as one
// batch; a callback early in the batch cancels a later member, which
// must be skipped — and the cancel must keep Pending/Live exact.
func TestRunBeforeBatchMidCancel(t *testing.T) {
	e := NewEngine()
	var fired []string
	var hC Event
	e.Schedule(1, func() {
		fired = append(fired, "A")
		e.Cancel(hC) // C is already drained into the batch buffer
	})
	e.Schedule(1, func() { fired = append(fired, "B") })
	hC = e.Schedule(1, func() { fired = append(fired, "C") })
	e.Schedule(1, func() { fired = append(fired, "D") })

	n := e.RunBefore(2)
	if n != 3 {
		t.Fatalf("RunBefore fired %d events, want 3", n)
	}
	want := []string{"A", "B", "D"}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if e.Pending() != 0 || e.Live() != 0 {
		t.Fatalf("after batch: pending=%d live=%d, want 0/0", e.Pending(), e.Live())
	}
}

// TestRunBeforeBatchSameInstantSchedule: events a batch callback
// schedules for the current instant carry higher sequence numbers and
// fire within the same RunBefore call, after the drained batch —
// exactly the one-at-a-time order.
func TestRunBeforeBatchSameInstantSchedule(t *testing.T) {
	e := NewEngine()
	var fired []string
	e.Schedule(1, func() {
		fired = append(fired, "A")
		e.Schedule(0, func() { fired = append(fired, "A-child") })
	})
	e.Schedule(1, func() { fired = append(fired, "B") })
	if n := e.RunBefore(2); n != 3 {
		t.Fatalf("RunBefore fired %d events, want 3", n)
	}
	want := []string{"A", "B", "A-child"}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

// TestRunBeforeEmptyWindowFastPath: a window with nothing pending at
// any horizon returns immediately without touching the clock, and a
// window strictly below every wheel-held timer fires nothing and
// leaves the wheel population intact.
func TestRunBeforeEmptyWindowFastPath(t *testing.T) {
	e := NewEngine()
	if n := e.RunBefore(1e9); n != 0 {
		t.Fatalf("empty engine fired %d events", n)
	}
	if e.Now() != 0 {
		t.Fatalf("empty window moved the clock to %v", e.Now())
	}
	// Far timers live in the wheel; a window below them must not
	// disturb them.
	e.Schedule(500, func() {})
	e.Schedule(900, func() {})
	before := e.Pending()
	for w := 0; w < 100; w++ {
		if n := e.RunBefore(float64(w)); n != 0 {
			t.Fatalf("window %d fired %d events below every timer", w, n)
		}
	}
	if e.Pending() != before {
		t.Fatalf("empty windows changed pending: %d -> %d", before, e.Pending())
	}
	if n := e.RunBefore(1000); n != 2 {
		t.Fatalf("final window fired %d events, want 2", n)
	}
}

// TestPeekTimeResolvesWheelHead: PeekTime must resolve the exact head
// even when the earliest event is parked in a far wheel slot, and
// report absence once everything fired.
func TestPeekTimeResolvesWheelHead(t *testing.T) {
	e := NewEngine()
	if _, ok := e.PeekTime(); ok {
		t.Fatal("PeekTime on empty engine reported an event")
	}
	e.Schedule(700, func() {})
	e.Schedule(300, func() {})
	e.Schedule(0.5, func() {})
	if tt, ok := e.PeekTime(); !ok || tt != 0.5 {
		t.Fatalf("PeekTime = %v,%v, want 0.5,true", tt, ok)
	}
	e.RunUntil(0.5)
	if tt, ok := e.PeekTime(); !ok || tt != 300 {
		t.Fatalf("PeekTime after first fire = %v,%v, want 300,true", tt, ok)
	}
	e.Run()
	if _, ok := e.PeekTime(); ok {
		t.Fatal("PeekTime after drain reported an event")
	}
}

// TestGuardCoversBatchMutations: the SetGuard hook (the fabric's
// single-owner check at shard handoff) must fire on every mutating
// entry — schedules and cancels issued by batch callbacks included —
// and never on dispatch itself.
func TestGuardCoversBatchMutations(t *testing.T) {
	e := NewEngine()
	var hB Event
	e.Schedule(1, func() {
		e.Cancel(hB)                   // mid-batch cancel: guarded
		e.Schedule(0.25, func() {})    // in-callback schedule: guarded
		e.ScheduleDaemon(2, func() {}) // daemon schedule: guarded
	})
	hB = e.Schedule(1, func() { t.Fatal("cancelled event fired") })

	guarded := 0
	e.SetGuard(func() { guarded++ })
	// A fires at t=1 and its in-callback schedule lands at t=1.25,
	// still inside the window — so 2 events fire.
	if n := e.RunBefore(1.5); n != 2 {
		t.Fatalf("RunBefore fired %d events, want 2", n)
	}
	if guarded != 3 {
		t.Fatalf("guard invoked %d times, want 3 (cancel + 2 schedules)", guarded)
	}
	// A guard that panics models the fabric's ownership violation: a
	// cross-shard schedule must surface, not corrupt the queue.
	e.SetGuard(func() { panic("cross-shard mutation") })
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("guarded schedule did not panic")
			}
		}()
		e.Schedule(1, func() {})
	}()
	e.SetGuard(nil)
	e.Run()
}

// TestRunBeforeBatchDaemonAccounting: daemons drained into a batch
// fire under RunBefore regardless of the live count, and a cancelled
// daemon does not disturb Live.
func TestRunBeforeBatchDaemonAccounting(t *testing.T) {
	e := NewEngine()
	fired := 0
	var hd Event
	e.ScheduleDaemon(1, func() { fired++; e.Cancel(hd) })
	hd = e.ScheduleDaemon(1, func() { fired++ })
	e.ScheduleDaemon(1, func() { fired++ })
	if e.Live() != 0 {
		t.Fatalf("daemons counted as live: %d", e.Live())
	}
	if n := e.RunBefore(2); n != 2 {
		t.Fatalf("RunBefore fired %d daemon events, want 2", n)
	}
	if fired != 2 || e.Pending() != 0 {
		t.Fatalf("fired=%d pending=%d, want 2/0", fired, e.Pending())
	}
}

// TestWheelSameTickCrossLevelTie: two events at the same absolute time
// can be resident at different wheel levels — one filed from far away
// (higher level), one filed after the cursor moved close (level 0).
// When their slot bounds tie, the higher level must cascade before the
// level-0 slot drains; flushing level 0 first advances the cursor past
// the shared tick and strands the higher-level resident, firing it
// late. Regression test for the tie-break in settleHead (found by
// FuzzEngineOrder; the triggering input is in testdata).
func TestWheelSameTickCrossLevelTie(t *testing.T) {
	e := NewEngine()
	var fired []int
	// tick 118784 = 464<<8: exactly a level-boundary tick, so the far
	// and near filings of the same instant land at different levels
	// with identical slot bounds.
	tie := 118784 * wheelTick
	e.At(tie, func() { fired = append(fired, 0) }) // far: higher level
	e.Schedule(tie-1.1, func() { fired = append(fired, 1) })
	// A heap-resident event below the tie keeps settleHead from
	// flushing the tie's slot early — the tie event must still be
	// wheel-resident at a higher level when the near filing arrives.
	e.At(tie-0.5, func() { fired = append(fired, 3) })
	e.RunUntil(tie - 1.1) // cursor now within a slot of the tie tick
	e.At(tie, func() { fired = append(fired, 2) }) // near: level 0
	e.Run()
	want := []int{1, 3, 0, 2}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("same-tick cross-level tie fired out of order: %v, want %v", fired, want)
		}
	}
}

// TestRunBeforeClockStaysAtLastEvent: unlike RunUntil, RunBefore must
// not advance Now to the limit — the fabric delivers the next window's
// messages anywhere in [Now, limit).
func TestRunBeforeClockStaysAtLastEvent(t *testing.T) {
	e := NewEngine()
	e.Schedule(0.75, func() {})
	e.RunBefore(10)
	if e.Now() != 0.75 {
		t.Fatalf("RunBefore advanced the clock to %v, want 0.75", e.Now())
	}
	e.RunBefore(math.Inf(1))
	if e.Now() != 0.75 {
		t.Fatalf("empty infinite window moved the clock to %v", e.Now())
	}
}
