package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPSSingleJobServiceTime(t *testing.T) {
	e := NewEngine()
	r := NewPSResource(e, "disk", ConstantCapacity(100))
	done := -1.0
	r.Submit(250, func() { done = e.Now() })
	e.Run()
	if math.Abs(done-2.5) > 1e-9 {
		t.Fatalf("completion at %v, want 2.5", done)
	}
}

func TestPSEqualSharing(t *testing.T) {
	e := NewEngine()
	r := NewPSResource(e, "disk", ConstantCapacity(100))
	var t1, t2 float64
	r.Submit(100, func() { t1 = e.Now() })
	r.Submit(100, func() { t2 = e.Now() })
	e.Run()
	// Two equal jobs sharing 100 u/s: both finish at 2s.
	if math.Abs(t1-2) > 1e-9 || math.Abs(t2-2) > 1e-9 {
		t.Fatalf("completions %v, %v; want both 2", t1, t2)
	}
}

func TestPSUnequalJobs(t *testing.T) {
	e := NewEngine()
	r := NewPSResource(e, "disk", ConstantCapacity(100))
	var small, large float64
	r.Submit(50, func() { small = e.Now() })
	r.Submit(150, func() { large = e.Now() })
	e.Run()
	// Shared until small finishes: small gets 50 u/s -> done at 1s.
	// Large has 100 left, alone at 100 u/s -> done at 2s.
	if math.Abs(small-1) > 1e-9 {
		t.Fatalf("small done at %v, want 1", small)
	}
	if math.Abs(large-2) > 1e-9 {
		t.Fatalf("large done at %v, want 2", large)
	}
}

func TestPSLateArrival(t *testing.T) {
	e := NewEngine()
	r := NewPSResource(e, "disk", ConstantCapacity(100))
	var a, b float64
	r.Submit(100, func() { a = e.Now() })
	e.Schedule(0.5, func() { r.Submit(100, func() { b = e.Now() }) })
	e.Run()
	// First runs alone 0.5s (50 units), then shares. 50 left at 50 u/s:
	// a done at 1.5. b: 100 units: 50 shared (1s), then alone 50 at 100:
	// b done at 2.0.
	if math.Abs(a-1.5) > 1e-9 {
		t.Fatalf("a done at %v, want 1.5", a)
	}
	if math.Abs(b-2.0) > 1e-9 {
		t.Fatalf("b done at %v, want 2.0", b)
	}
}

func TestPSCapacityCurve(t *testing.T) {
	e := NewEngine()
	// Capacity doubles with two jobs (perfect scaling).
	cap := func(n int) float64 { return 100 * float64(n) }
	r := NewPSResource(e, "ssd", cap)
	var a, b float64
	r.Submit(100, func() { a = e.Now() })
	r.Submit(100, func() { b = e.Now() })
	e.Run()
	if math.Abs(a-1) > 1e-9 || math.Abs(b-1) > 1e-9 {
		t.Fatalf("completions %v %v, want both 1 (no interference)", a, b)
	}
}

func TestPSZeroDemandCompletesImmediately(t *testing.T) {
	e := NewEngine()
	r := NewPSResource(e, "disk", ConstantCapacity(100))
	done := false
	r.Submit(0, func() { done = true })
	if done {
		t.Fatal("zero-demand job completed synchronously; want deferred event")
	}
	e.Run()
	if !done || e.Now() != 0 {
		t.Fatalf("zero-demand job: done=%v now=%v", done, e.Now())
	}
}

func TestPSAbort(t *testing.T) {
	e := NewEngine()
	r := NewPSResource(e, "disk", ConstantCapacity(100))
	var a float64
	aborted := false
	r.Submit(100, func() { a = e.Now() })
	victim := r.Submit(100, func() { aborted = true })
	e.Schedule(0.5, func() { r.Abort(victim) })
	e.Run()
	if aborted {
		t.Fatal("aborted job ran its completion callback")
	}
	// a: 0.5s shared (25 units), then alone: 75 left at 100 -> done 1.25.
	if math.Abs(a-1.25) > 1e-9 {
		t.Fatalf("survivor done at %v, want 1.25", a)
	}
	if victim.Active() {
		t.Fatal("victim still active after abort")
	}
}

func TestPSAbortInactiveNoop(t *testing.T) {
	e := NewEngine()
	r := NewPSResource(e, "disk", ConstantCapacity(100))
	j := r.Submit(10, nil)
	e.Run()
	r.Abort(j) // completed; must not panic
	r.Abort(nil)
}

func TestPSDisturbanceSlowsService(t *testing.T) {
	e := NewEngine()
	r := NewPSResource(e, "disk", ConstantCapacity(100))
	var done float64
	r.Submit(100, func() { done = e.Now() })
	e.Schedule(0.5, func() { r.SetDisturbance(0.5) })
	e.Run()
	// 50 units in first 0.5s; remaining 50 at 50 u/s -> 1 more second.
	if math.Abs(done-1.5) > 1e-9 {
		t.Fatalf("done at %v, want 1.5", done)
	}
	if r.Disturbance() != 0.5 {
		t.Fatalf("Disturbance() = %v", r.Disturbance())
	}
}

func TestPSDisturbanceInvalidPanics(t *testing.T) {
	e := NewEngine()
	r := NewPSResource(e, "disk", ConstantCapacity(100))
	defer func() {
		if recover() == nil {
			t.Fatal("SetDisturbance(0) did not panic")
		}
	}()
	r.SetDisturbance(0)
}

func TestPSAccounting(t *testing.T) {
	e := NewEngine()
	r := NewPSResource(e, "disk", ConstantCapacity(100))
	r.Submit(100, nil)
	r.Submit(200, nil)
	e.Run()
	if got := r.ServedUnits(); math.Abs(got-300) > 1e-6 {
		t.Fatalf("ServedUnits = %v, want 300", got)
	}
	if got := r.Completed(); got != 2 {
		t.Fatalf("Completed = %d, want 2", got)
	}
	if got := r.BusyTime(); math.Abs(got-3) > 1e-9 {
		t.Fatalf("BusyTime = %v, want 3", got)
	}
}

func TestPSWorkConservingIdleGap(t *testing.T) {
	e := NewEngine()
	r := NewPSResource(e, "disk", ConstantCapacity(100))
	r.Submit(100, nil)
	e.Schedule(5, func() { r.Submit(100, nil) })
	e.Run()
	if got := r.BusyTime(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("BusyTime = %v, want 2 (1s + 1s with idle gap)", got)
	}
	if e.Now() != 6 {
		t.Fatalf("Now = %v, want 6", e.Now())
	}
}

func TestPSInFlightAndRate(t *testing.T) {
	e := NewEngine()
	r := NewPSResource(e, "disk", ConstantCapacity(80))
	if r.Rate() != 0 {
		t.Fatalf("idle Rate = %v, want 0", r.Rate())
	}
	r.Submit(1000, nil)
	r.Submit(1000, nil)
	if r.InFlight() != 2 {
		t.Fatalf("InFlight = %d, want 2", r.InFlight())
	}
	if r.Rate() != 80 {
		t.Fatalf("Rate = %v, want 80", r.Rate())
	}
}

func TestPSSyncUpdatesRemaining(t *testing.T) {
	e := NewEngine()
	r := NewPSResource(e, "disk", ConstantCapacity(100))
	j := r.Submit(100, nil)
	e.Schedule(0.25, func() {
		r.Sync()
		if got := j.Remaining(); math.Abs(got-75) > 1e-9 {
			t.Errorf("Remaining = %v at 0.25s, want 75", got)
		}
	})
	e.Run()
}

func TestPSNilCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil capacity did not panic")
		}
	}()
	NewPSResource(NewEngine(), "x", nil)
}

// Property: work conservation. For any job mix, total served units equals
// total demand, and the makespan is at least totalDemand / maxCapacity.
func TestPropertyPSWorkConservation(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%20) + 1
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		r := NewPSResource(e, "disk", ConstantCapacity(100))
		total := 0.0
		completions := 0
		for i := 0; i < n; i++ {
			d := 1 + rng.Float64()*500
			total += d
			arrival := rng.Float64() * 3
			e.Schedule(arrival, func() { r.Submit(d, func() { completions++ }) })
		}
		e.Run()
		if completions != n {
			return false
		}
		if math.Abs(r.ServedUnits()-total) > 1e-6*total {
			return false
		}
		// Makespan lower bound.
		return e.Now() >= total/100-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a concave capacity curve the resource never serves more
// than peak capacity integrated over busy time.
func TestPropertyPSCapacityBound(t *testing.T) {
	capFn := func(n int) float64 {
		switch {
		case n <= 1:
			return 60
		case n <= 4:
			return 100
		default:
			return 90
		}
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		r := NewPSResource(e, "disk", capFn)
		for i := 0; i < 12; i++ {
			d := 1 + rng.Float64()*200
			e.Schedule(rng.Float64()*2, func() { r.Submit(d, nil) })
		}
		e.Run()
		return r.ServedUnits() <= 100*r.BusyTime()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPSDeterministicCompletionOrder(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		r := NewPSResource(e, "disk", ConstantCapacity(100))
		var order []int
		for i := 0; i < 8; i++ {
			i := i
			r.Submit(100, func() { order = append(order, i) })
		}
		e.Run()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("completion order not deterministic: %v vs %v", a, b)
		}
		if a[i] != i {
			t.Fatalf("completion order %v, want submission order", a)
		}
	}
}

// TestPSServedUnitsBitDeterminism pins the fix for the latent
// nondeterminism in the old map-based PSResource: advance/completeDue
// iterated a Go map, so the float accumulation order of servedUnits —
// and hence its rounding — varied run to run. With heap-ordered
// virtual-service accounting, repeated seeded runs must agree on every
// bit of the accounting totals.
func TestPSServedUnitsBitDeterminism(t *testing.T) {
	run := func(seed int64) (served, busy uint64) {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		curve := func(n int) float64 {
			if n > 4 {
				return 85
			}
			return 100
		}
		r := NewPSResource(e, "disk", curve)
		var jobs []*PSJob
		for i := 0; i < 60; i++ {
			d := 0.5 + rng.Float64()*300
			at := rng.Float64() * 10
			e.Schedule(at, func() { jobs = append(jobs, r.Submit(d, nil)) })
		}
		for i := 0; i < 8; i++ {
			at := rng.Float64() * 12
			e.Schedule(at, func() {
				if len(jobs) > 0 {
					r.Abort(jobs[len(jobs)/2])
				}
			})
			e.Schedule(rng.Float64()*12, func() { r.SetDisturbance(0.3 + rng.Float64()) })
		}
		e.Run()
		return math.Float64bits(r.ServedUnits()), math.Float64bits(r.BusyTime())
	}
	for _, seed := range []int64{1, 7, 42, 1234} {
		s1, b1 := run(seed)
		s2, b2 := run(seed)
		if s1 != s2 || b1 != b2 {
			t.Fatalf("seed %d: accounting not bit-identical across runs: served %x vs %x, busy %x vs %x",
				seed, s1, s2, b1, b2)
		}
	}
}

// TestPSAbortMidHeap exercises removal from the middle of the finishV
// heap: aborting a job that is neither the next completion nor the last
// inserted must leave the heap consistent.
func TestPSAbortMidHeap(t *testing.T) {
	e := NewEngine()
	r := NewPSResource(e, "disk", ConstantCapacity(100))
	var order []int
	var js []*PSJob
	for i := 0; i < 9; i++ {
		i := i
		js = append(js, r.Submit(float64(50+10*i), func() { order = append(order, i) }))
	}
	e.Schedule(0.1, func() { r.Abort(js[4]) })
	e.Schedule(0.2, func() { r.Abort(js[1]) })
	e.Run()
	want := []int{0, 2, 3, 5, 6, 7, 8}
	if len(order) != len(want) {
		t.Fatalf("completions %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order %v, want %v (shortest demand first)", order, want)
		}
	}
	if r.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain, want 0", r.InFlight())
	}
}
